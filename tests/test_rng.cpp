/**
 * @file
 * Unit tests for the deterministic RNG and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace aero
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(3.0, 5.0);
        ASSERT_GE(v, 3.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, GaussMoments)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = r.gauss();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, LognormFactorHasUnitMean)
{
    Rng r(17);
    for (const double sigma : {0.05, 0.2, 0.5}) {
        double sum = 0.0;
        const int n = 200000;
        for (int i = 0; i < n; ++i)
            sum += r.lognormFactor(sigma);
        EXPECT_NEAR(sum / n, 1.0, 0.02) << "sigma=" << sigma;
    }
}

TEST(Rng, ExpovariateMean)
{
    Rng r(19);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.expovariate(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ForkGivesIndependentStreams)
{
    Rng base(21);
    Rng a = base.fork(1);
    Rng b = base.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Zipf, SkewConcentratesMass)
{
    Rng r(23);
    ZipfGenerator zipf(10000, 0.9);
    int top_ranks = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        if (zipf.draw(r) < 100)  // top 1% of ranks
            ++top_ranks;
    }
    // Zipf(0.9) puts far more than 1% of mass on the top 1% of ranks.
    EXPECT_GT(static_cast<double>(top_ranks) / n, 0.3);
}

TEST(Zipf, ThetaZeroIsUniform)
{
    Rng r(29);
    ZipfGenerator zipf(1000, 0.0);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(zipf.draw(r));
    EXPECT_NEAR(sum / n, 499.5, 15.0);
}

TEST(Zipf, DrawsStayInRange)
{
    Rng r(31);
    ZipfGenerator zipf(50, 0.99);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(zipf.draw(r), 50u);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, ChanceMatchesProbability)
{
    Rng r(GetParam());
    const double p = 0.37;
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 42, 1337, 0xdeadbeef,
                                           0xffffffffffffffffULL));

} // namespace
} // namespace aero
