/**
 * @file
 * Unit tests for common helpers: time units, piecewise-linear curves and
 * their inversion, and the inverse normal CDF / quadrature.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/interp.hh"
#include "common/mathutil.hh"
#include "common/types.hh"

namespace aero
{
namespace
{

TEST(Types, TickConversions)
{
    EXPECT_EQ(msToTicks(3.5), 3'500'000u);
    EXPECT_DOUBLE_EQ(ticksToMs(3'500'000), 3.5);
    EXPECT_DOUBLE_EQ(ticksToUs(40'000), 40.0);
    EXPECT_EQ(kMs, 1'000'000u);
    EXPECT_EQ(kSec, 1'000'000'000u);
}

TEST(PiecewiseLinear, InterpolatesBetweenKnots)
{
    PiecewiseLinear f({{0.0, 0.0}, {10.0, 100.0}});
    EXPECT_DOUBLE_EQ(f(0.0), 0.0);
    EXPECT_DOUBLE_EQ(f(5.0), 50.0);
    EXPECT_DOUBLE_EQ(f(10.0), 100.0);
}

TEST(PiecewiseLinear, ExtrapolatesLinearly)
{
    PiecewiseLinear f({{0.0, 0.0}, {10.0, 100.0}, {20.0, 150.0}});
    EXPECT_DOUBLE_EQ(f(30.0), 200.0);  // last segment slope = 5
    EXPECT_DOUBLE_EQ(f(-10.0), -100.0);
}

TEST(PiecewiseLinear, MultiSegment)
{
    PiecewiseLinear f({{0.0, 1.0}, {1.0, 2.0}, {2.0, 10.0}});
    EXPECT_DOUBLE_EQ(f(0.5), 1.5);
    EXPECT_DOUBLE_EQ(f(1.5), 6.0);
}

TEST(PiecewiseLinear, InverseRoundTrips)
{
    PiecewiseLinear f({{0.0, 0.0}, {5.0, 20.0}, {10.0, 100.0}});
    for (const double x : {0.5, 2.0, 4.9, 5.1, 7.5, 9.9}) {
        EXPECT_NEAR(f.inverse(f(x)), x, 1e-9) << "x=" << x;
    }
}

TEST(PiecewiseLinear, InverseExtrapolates)
{
    PiecewiseLinear f({{0.0, 0.0}, {10.0, 100.0}});
    EXPECT_NEAR(f.inverse(200.0), 20.0, 1e-9);
}

TEST(PiecewiseLinear, RejectsNonIncreasingX)
{
    EXPECT_DEATH(PiecewiseLinear({{1.0, 0.0}, {1.0, 1.0}}), "increasing");
}

TEST(MathUtil, InverseNormalCdfKnownValues)
{
    EXPECT_NEAR(inverseNormalCdf(0.5), 0.0, 1e-8);
    EXPECT_NEAR(inverseNormalCdf(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(inverseNormalCdf(0.025), -1.959964, 1e-4);
    EXPECT_NEAR(inverseNormalCdf(0.8413447), 1.0, 1e-4);
    EXPECT_NEAR(inverseNormalCdf(0.9986501), 3.0, 1e-3);
}

TEST(MathUtil, QuadratureNodesAreStandardNormal)
{
    const auto zs = normalQuadratureNodes(101);
    double mean = 0.0, var = 0.0;
    for (const double z : zs)
        mean += z;
    mean /= zs.size();
    for (const double z : zs)
        var += (z - mean) * (z - mean);
    var /= zs.size();
    EXPECT_NEAR(mean, 0.0, 1e-6);
    EXPECT_NEAR(var, 1.0, 0.05);
}

class QuadratureSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(QuadratureSweep, LognormalMeanViaQuadrature)
{
    // E[exp(sigma Z - sigma^2/2)] must be ~1 for any node count.
    const int n = GetParam();
    const double sigma = 0.25;
    const auto zs = normalQuadratureNodes(n);
    double sum = 0.0;
    for (const double z : zs)
        sum += std::exp(sigma * z - 0.5 * sigma * sigma);
    EXPECT_NEAR(sum / n, 1.0, 0.01) << "nodes=" << n;
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, QuadratureSweep,
                         ::testing::Values(9, 17, 33, 65, 129));

} // namespace
} // namespace aero
