/**
 * @file
 * Build-sanity suite: asserts that the aero library links standalone and
 * that the factory chip presets carry the geometry/physics invariants the
 * rest of the repo depends on. If the CMake source list drops a
 * translation unit, the link of this minimal binary fails loudly.
 */

#include <gtest/gtest.h>

#include "nand/chip_params.hh"

namespace aero
{
namespace
{

TEST(BuildInfo, CxxStandardIsAtLeast20)
{
    EXPECT_GE(__cplusplus, 202002L);
}

TEST(BuildInfo, Tlc3dGeometryInvariants)
{
    const ChipParams p = ChipParams::tlc3d();

    EXPECT_EQ(p.type, ChipType::Tlc3d48L);
    EXPECT_STREQ(p.name.c_str(), chipTypeName(ChipType::Tlc3d48L));

    // ISPE timing: 0.5-ms slots, 7 slots per loop -> tEP = 3.5 ms.
    EXPECT_EQ(p.tSlot, msToTicks(0.5));
    EXPECT_EQ(p.slotsPerLoop, 7);
    EXPECT_EQ(p.defaultTep(), msToTicks(3.5));
    EXPECT_EQ(p.loopLatency(), p.defaultTep() + p.tVr);

    // The escalation cap must leave headroom over the canonical schedule.
    EXPECT_GT(p.maxLoops, p.nominalMaxNIspe);
    EXPECT_GE(p.maxLevel, p.maxLoops);

    // Canonical schedule: level 1 for the first loop, +1 per loop.
    EXPECT_EQ(p.scheduleLevel(0.0), 1);
    EXPECT_EQ(p.scheduleLevel(static_cast<double>(p.slotsPerLoop)), 2);

    // Damage grows with the ISPE level.
    EXPECT_DOUBLE_EQ(p.dmgPerSlot(1), 1.0);
    EXPECT_GT(p.dmgPerSlot(2), p.dmgPerSlot(1));
}

TEST(BuildInfo, AllPresetsRoundTripThroughForType)
{
    for (const auto t : {ChipType::Tlc3d48L, ChipType::Tlc2d,
                         ChipType::Mlc3d48L}) {
        const ChipParams p = ChipParams::forType(t);
        EXPECT_EQ(p.type, t);
        EXPECT_STREQ(p.name.c_str(), chipTypeName(t));
        EXPECT_GT(p.fPass, 0.0);
        EXPECT_GT(p.delta, 0.0);
        // The erase-requirement curve must be defined at both ends of the
        // lifetime range the benchmarks sweep.
        EXPECT_GT(p.anchorSlots(0.0), 0.0);
        EXPECT_GT(p.anchorSlots(8000.0), p.anchorSlots(0.0));
    }
}

} // namespace
} // namespace aero
