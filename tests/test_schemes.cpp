/**
 * @file
 * Unit tests for the comparison erase schemes: Baseline ISPE, i-ISPE,
 * and DPES, via the session interface.
 */

#include <gtest/gtest.h>

#include "core/aero_scheme.hh"
#include "erase/baseline_ispe.hh"
#include "erase/dpes.hh"
#include "erase/i_ispe.hh"
#include "nand/erase_model.hh"

namespace aero
{
namespace
{

NandChip
makeChip(std::uint64_t seed = 1)
{
    return NandChip(ChipParams::tlc3d(), ChipGeometry{1, 12, 16}, seed);
}

TEST(BaselineIspe, SingleLoopAtZeroPec)
{
    auto chip = makeChip();
    BaselineIspe scheme(chip, SchemeOptions{});
    const auto out = eraseNow(scheme, 0);
    EXPECT_TRUE(out.complete);
    EXPECT_EQ(out.loops, 1);
    EXPECT_EQ(out.eraseFailures, 0);
    EXPECT_EQ(out.latency, chip.params().loopLatency());
    EXPECT_EQ(out.maxLevel, 1);
}

TEST(BaselineIspe, MultiLoopAtHighPec)
{
    auto chip = makeChip();
    chip.ageBaseline(3, 2500);
    BaselineIspe scheme(chip, SchemeOptions{});
    const auto out = eraseNow(scheme, 3);
    EXPECT_TRUE(out.complete);
    EXPECT_GE(out.loops, 2);
    EXPECT_EQ(out.eraseFailures, out.loops - 1);
    EXPECT_EQ(out.latency,
              static_cast<Tick>(out.loops) * chip.params().loopLatency());
    EXPECT_EQ(out.slotsApplied, out.loops * chip.params().slotsPerLoop);
}

TEST(BaselineIspe, SegmentsAreLoopGranular)
{
    auto chip = makeChip();
    chip.ageBaseline(5, 2500);
    BaselineIspe scheme(chip, SchemeOptions{});
    auto session = scheme.begin(5);
    EraseSegment seg;
    int segments = 0;
    while (session->nextSegment(seg)) {
        EXPECT_EQ(seg.duration, chip.params().loopLatency());
        ++segments;
        if (seg.last)
            break;
    }
    EXPECT_EQ(segments, session->outcome().loops);
    EXPECT_FALSE(session->nextSegment(seg));  // exhausted
}

TEST(IIspe, MatchesBaselineOnFreshBlocks)
{
    auto chip = makeChip();
    IntelligentIspe scheme(chip, SchemeOptions{});
    const auto out = eraseNow(scheme, 0);
    EXPECT_TRUE(out.complete);
    EXPECT_EQ(out.loops, 1);
    EXPECT_EQ(out.maxLevel, 1);
    EXPECT_EQ(scheme.rememberedLevel(0), 1);
}

TEST(IIspe, SeedsMemoryFromPreAgedPec)
{
    auto chip = makeChip();
    for (int b = 0; b < chip.numBlocks(); ++b)
        chip.ageBaseline(b, 3000);
    IntelligentIspe scheme(chip, SchemeOptions{});
    EXPECT_GE(scheme.rememberedLevel(0), 2);
}

TEST(IIspe, SkipsPreambleLoops)
{
    auto chip = makeChip(3);
    for (int b = 0; b < chip.numBlocks(); ++b)
        chip.ageBaseline(b, 2500);
    IntelligentIspe scheme(chip, SchemeOptions{});
    // Successful jumps finish in one loop where Baseline needs 2-3.
    int single = 0, total = 0;
    for (int b = 0; b < chip.numBlocks(); ++b) {
        const auto out = eraseNow(scheme, b);
        EXPECT_TRUE(out.complete);
        single += out.loops == 1;
        ++total;
    }
    EXPECT_GT(single, 0);
}

TEST(IIspe, FailuresBecomeFrequentWithAge)
{
    auto chip = makeChip(5);
    IntelligentIspe scheme(chip, SchemeOptions{});
    auto failure_rate = [&](int pec) {
        for (int b = 0; b < chip.numBlocks(); ++b) {
            auto &blk = chip.block(b);
            if (blk.pec() < pec)
                chip.ageBaseline(b, pec - static_cast<int>(blk.pec()));
        }
        int fails = 0, total = 0;
        for (int round = 0; round < 30; ++round) {
            for (int b = 0; b < chip.numBlocks(); ++b) {
                const auto out = eraseNow(scheme, b);
                fails += out.eraseFailures > 0;
                ++total;
            }
        }
        return static_cast<double>(fails) / total;
    };
    const double young = failure_rate(500);
    const double old_rate = failure_rate(3000);
    EXPECT_LT(young, 0.15);
    EXPECT_GT(old_rate, young + 0.1);
}

TEST(Dpes, ReducesDamageWhileActive)
{
    auto a = makeChip(7);
    auto b = makeChip(7);
    BaselineIspe base(a, SchemeOptions{});
    Dpes dpes(b, SchemeOptions{});
    EXPECT_TRUE(dpes.active(0));
    const auto ob = eraseNow(base, 0);
    const auto od = eraseNow(dpes, 0);
    EXPECT_TRUE(od.complete);
    EXPECT_NEAR(od.damage,
                ob.damage * a.params().dpesStressFactor,
                ob.damage * 0.01);
}

TEST(Dpes, DegeneratesToBaselineAfter3kPec)
{
    auto chip = makeChip(9);
    chip.ageBaseline(0, 3500);
    Dpes dpes(chip, SchemeOptions{});
    EXPECT_FALSE(dpes.active(0));
    EXPECT_EQ(dpes.programLatency(0), chip.params().tProg);
    EXPECT_DOUBLE_EQ(dpes.extraRber(0), 0.0);
}

TEST(Dpes, ProgramPenaltyGrowsTowardLimit)
{
    auto chip = makeChip(11);
    Dpes dpes(chip, SchemeOptions{});
    const Tick young = dpes.programLatency(0);
    EXPECT_NEAR(static_cast<double>(young),
                1.10 * static_cast<double>(chip.params().tProg),
                static_cast<double>(kUs));
    chip.ageBaseline(0, 2500);
    const Tick old_lat = dpes.programLatency(0);
    EXPECT_GT(old_lat, young);
    EXPECT_NEAR(static_cast<double>(old_lat),
                1.30 * static_cast<double>(chip.params().tProg),
                2.0 * static_cast<double>(kUs));
}

TEST(Dpes, ExtraRberWhileActive)
{
    auto chip = makeChip(13);
    Dpes dpes(chip, SchemeOptions{});
    EXPECT_GT(dpes.extraRber(0), 0.0);
}

TEST(Factory, CreatesAllKinds)
{
    auto chip = makeChip(15);
    for (const auto k : {SchemeKind::Baseline, SchemeKind::IIspe,
                         SchemeKind::Dpes, SchemeKind::AeroCons,
                         SchemeKind::Aero}) {
        auto s = makeEraseScheme(k, chip, SchemeOptions{});
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->kind(), k);
        EXPECT_STRNE(s->name(), "unknown");
    }
}

/** All schemes must terminate and commit exactly one erase per call. */
class SchemeTerminationSweep
    : public ::testing::TestWithParam<std::tuple<SchemeKind, int>>
{
};

TEST_P(SchemeTerminationSweep, EraseTerminatesAndCommits)
{
    const auto [kind, pec] = GetParam();
    auto chip = makeChip(17);
    for (int b = 0; b < chip.numBlocks(); ++b)
        chip.ageBaseline(b, pec);
    auto scheme = makeEraseScheme(kind, chip, SchemeOptions{});
    const auto before = chip.eraseOpsCompleted();
    for (int b = 0; b < chip.numBlocks(); ++b) {
        const auto out = eraseNow(*scheme, b);
        EXPECT_GT(out.latency, 0u);
        EXPECT_GE(out.loops, 1);
    }
    EXPECT_EQ(chip.eraseOpsCompleted(),
              before + static_cast<std::uint64_t>(chip.numBlocks()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeTerminationSweep,
    ::testing::Combine(::testing::Values(SchemeKind::Baseline,
                                         SchemeKind::IIspe,
                                         SchemeKind::Dpes,
                                         SchemeKind::AeroCons,
                                         SchemeKind::Aero),
                       ::testing::Values(0, 1000, 3000, 5000)));

} // namespace
} // namespace aero
