/**
 * @file
 * End-to-end SSD simulator tests: request completion, GC activity, erase
 * suspension, write stalls, and cross-scheme behaviour on a tiny drive.
 */

#include <gtest/gtest.h>

#include "devchar/simstudy.hh"
#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace aero
{
namespace
{

SsdConfig
tinyCfg(SchemeKind scheme = SchemeKind::Baseline)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.scheme = scheme;
    cfg.seed = 99;
    return cfg;
}

Trace
makeTrace(const Ssd &ssd, std::uint64_t n, double intensity = 1.0,
          const char *wl = "prxy")
{
    SyntheticConfig wc;
    wc.spec = workloadByName(wl);
    wc.footprintPages = ssd.config().logicalPages();
    wc.numRequests = n;
    wc.seed = 31;
    wc.intensityScale = intensity;
    return generateTrace(wc);
}

TEST(Ssd, CompletesEveryRequest)
{
    Ssd ssd(tinyCfg());
    const auto trace = makeTrace(ssd, 3000);
    std::uint64_t reads = 0, writes = 0;
    for (const auto &r : trace)
        (r.op == IoOp::Read ? reads : writes) += 1;
    ssd.run(trace);
    const auto &m = ssd.metrics();
    EXPECT_EQ(m.reads, reads);
    EXPECT_EQ(m.writes, writes);
    EXPECT_GT(m.readLatency.mean(), 0.0);
    EXPECT_GT(m.writeLatency.mean(), 0.0);
    EXPECT_GT(m.iops(), 0.0);
}

TEST(Ssd, LatencyFloorsAreSane)
{
    Ssd ssd(tinyCfg());
    const auto trace = makeTrace(ssd, 2000);
    ssd.run(trace);
    const auto &m = ssd.metrics();
    const auto &cfg = ssd.config();
    // A read can never be faster than sense + transfer + host overhead.
    EXPECT_GE(m.readLatency.min(),
              40 * kUs + cfg.channelXferPerPage + cfg.hostOverhead);
    // A write can never be faster than transfer + program + overhead.
    EXPECT_GE(m.writeLatency.min(),
              cfg.channelXferPerPage + 350 * kUs + cfg.hostOverhead);
}

TEST(Ssd, GarbageCollectionRunsAndConservesCapacity)
{
    Ssd ssd(tinyCfg());
    const auto trace = makeTrace(ssd, 6000, 1.0, "ali.A");  // write-heavy
    ssd.run(trace);
    const auto &m = ssd.metrics();
    EXPECT_GT(m.erases, 0u);
    EXPECT_GT(m.gcInvocations, 0u);
    EXPECT_GE(m.writeAmplification(), 1.0);
    // After the run every plane must still have blocks available.
    auto &ftl = ssd.ftl();
    const auto &bm = ftl.blockManager();
    for (int c = 0; c < ssd.config().totalChips(); ++c) {
        for (int p = 0; p < ssd.config().geometry.planes; ++p)
            EXPECT_GT(bm.freeBlocks(c, p), 0);
    }
}

TEST(Ssd, MappingStaysConsistentAfterGc)
{
    Ssd ssd(tinyCfg());
    const auto trace = makeTrace(ssd, 6000, 1.0, "ali.A");
    ssd.run(trace);
    const auto &mapping = ssd.ftl().pageMapping();
    // Every mapped LPN must reverse-map to itself.
    std::uint64_t mapped = 0;
    for (Lpn lpn = 0; lpn < mapping.logicalPages(); ++lpn) {
        const Ppn ppn = mapping.lookup(lpn);
        if (ppn == kInvalidPpn)
            continue;
        EXPECT_EQ(mapping.reverseLookup(ppn), lpn);
        ++mapped;
    }
    EXPECT_EQ(mapped, mapping.mappedCount());
    EXPECT_GT(mapped, 0u);
}

TEST(Ssd, SuspensionModeControlsPreemption)
{
    auto run_with = [&](SuspensionMode mode) {
        SsdConfig cfg = tinyCfg();
        cfg.suspension = mode;
        Ssd ssd(cfg);
        ssd.run(makeTrace(ssd, 6000, 2.0));
        return ssd.metrics().eraseSuspensions;
    };
    EXPECT_GT(run_with(SuspensionMode::MidSegment), 0u);
    EXPECT_EQ(run_with(SuspensionMode::None), 0u);
}

TEST(Ssd, SuspensionImprovesReadTail)
{
    auto tail = [&](SuspensionMode mode) {
        SsdConfig cfg = tinyCfg();
        cfg.suspension = mode;
        cfg.initialPec = 2500;
        Ssd ssd(cfg);
        ssd.run(makeTrace(ssd, 8000, 2.0));
        return ssd.metrics().readLatency.percentile(0.999);
    };
    EXPECT_LT(tail(SuspensionMode::MidSegment),
              tail(SuspensionMode::None));
}

TEST(Ssd, DpesSlowsWrites)
{
    SsdConfig base_cfg = tinyCfg(SchemeKind::Baseline);
    SsdConfig dpes_cfg = tinyCfg(SchemeKind::Dpes);
    Ssd base(base_cfg), dpes(dpes_cfg);
    const auto trace = makeTrace(base, 4000);
    base.run(trace);
    dpes.run(trace);
    EXPECT_GT(dpes.metrics().writeLatency.mean(),
              base.metrics().writeLatency.mean() * 1.05);
    // Reads are not directly affected on average.
    EXPECT_NEAR(dpes.metrics().readLatency.mean(),
                base.metrics().readLatency.mean(),
                base.metrics().readLatency.mean() * 0.3);
}

TEST(Ssd, AeroShortensErases)
{
    SsdConfig a = tinyCfg(SchemeKind::Baseline);
    SsdConfig b = tinyCfg(SchemeKind::Aero);
    a.initialPec = 2500;
    b.initialPec = 2500;
    Ssd base(a), aero(b);
    const auto trace = makeTrace(base, 5000, 1.0, "ali.A");
    base.run(trace);
    aero.run(trace);
    ASSERT_GT(base.metrics().erases, 0u);
    ASSERT_GT(aero.metrics().erases, 0u);
    EXPECT_LT(aero.metrics().avgEraseLatencyMs(),
              base.metrics().avgEraseLatencyMs() * 0.97);
}

TEST(Ssd, RunsBackToBack)
{
    Ssd ssd(tinyCfg());
    ssd.run(makeTrace(ssd, 1000));
    const auto t1 = ssd.eventQueue().now();
    const auto reads1 = ssd.metrics().reads;
    ssd.run(makeTrace(ssd, 1000));
    EXPECT_GT(ssd.eventQueue().now(), t1);
    EXPECT_GT(ssd.metrics().reads, reads1);
}

TEST(Ssd, ConfigSummaryMentionsScheme)
{
    SsdConfig cfg = tinyCfg(SchemeKind::Aero);
    EXPECT_NE(cfg.summary().find("AERO"), std::string::npos);
    EXPECT_GT(cfg.logicalPages(), 0u);
    EXPECT_LT(cfg.logicalPages(), cfg.physicalPages());
}

TEST(SimStudy, RunSimPointProducesConsistentResult)
{
    SimPoint pt;
    pt.workload = "hm";
    pt.requests = 4000;
    pt.pec = 500.0;
    const auto r = runSimPoint(pt);
    EXPECT_GT(r.avgReadUs, 50.0);
    EXPECT_GT(r.avgWriteUs, 350.0);
    EXPECT_GE(r.p999999Us, r.p9999Us);
    EXPECT_GE(r.p9999Us, r.p999Us);
    EXPECT_GT(r.iops, 0.0);
}

TEST(SimStudy, DeterministicForSeed)
{
    SimPoint pt;
    pt.workload = "stg";
    pt.requests = 2000;
    const auto a = runSimPoint(pt);
    const auto b = runSimPoint(pt);
    EXPECT_DOUBLE_EQ(a.p9999Us, b.p9999Us);
    EXPECT_EQ(a.erases, b.erases);
}

} // namespace
} // namespace aero
