/**
 * @file
 * Tests for the Json value type's parser and round-trip contract:
 * `parse(dump(x)) == x` over a corpus covering escapes, unicode,
 * nested containers, the int64/uint64 boundaries, and doubles
 * (dump() emits the shortest form that round-trips bit-exactly);
 * malformed-input error positions; file-level write/read round trips;
 * and the documented NaN/infinity dump policy (null).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "exp/report.hh"

namespace aero
{
namespace
{

Json
parsed(const std::string &text)
{
    Json out;
    Json::ParseError err;
    const bool ok = Json::parse(text, &out, &err);
    EXPECT_TRUE(ok) << text << " -> " << err.toString();
    return out;
}

Json::ParseError
parseError(const std::string &text)
{
    Json out;
    Json::ParseError err;
    const bool ok = Json::parse(text, &out, &err);
    EXPECT_FALSE(ok) << "'" << text << "' unexpectedly parsed";
    EXPECT_TRUE(out.isNull());  // failed parses leave the output null
    return err;
}

// --------------------------------------------------------------------------
// Round trips
// --------------------------------------------------------------------------

TEST(JsonRoundTrip, ScalarCorpus)
{
    const std::vector<Json> corpus = {
        Json(),
        Json(true),
        Json(false),
        Json(0),
        Json(-1),
        Json(std::int64_t{42}),
        Json(std::numeric_limits<std::int64_t>::max()),
        Json(std::numeric_limits<std::int64_t>::min()),
        Json(std::uint64_t{0}),
        Json(std::numeric_limits<std::uint64_t>::max()),
        Json(0.5),
        Json(-3.25),
        Json(1e10),
        Json(-2.5e-3),
        Json(123456789.25),
        // Not exact in 12 significant digits — the shortest-form
        // serializer must still round-trip them bit-exactly.
        Json(0.1 + 0.2),
        Json(1.0 / 3.0),
        Json(std::numeric_limits<double>::min()),
        Json(std::numeric_limits<double>::max()),
        Json(std::numeric_limits<double>::denorm_min()),
        Json(""),
        Json("plain"),
        Json("with \"quotes\" and \\backslashes\\"),
        Json("tab\there\nnewline\rreturn"),
        Json(std::string("control\x01\x1f chars")),
        Json("caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80"),  // é € emoji
    };
    for (const auto &value : corpus) {
        for (const int indent : {0, 2}) {
            const std::string text = value.dump(indent);
            const Json back = parsed(text);
            EXPECT_TRUE(back == value) << text;
            // dump is canonical: a second trip is textually identical.
            EXPECT_EQ(back.dump(indent), text);
        }
    }
}

TEST(JsonRoundTrip, NestedContainersPreserveShapeAndKeyOrder)
{
    Json doc = Json::object();
    doc["zeta"] = 1;
    doc["alpha"] = "second, not sorted first";
    Json rows = Json::array();
    Json row = Json::object();
    row["x"] = 0.5;
    row["flags"] = Json::array();
    row["flags"].push(true).push(Json()).push("mixed");
    rows.push(row);
    rows.push(Json::array());   // empty array stays an array
    rows.push(Json::object());  // empty object stays an object
    doc["rows"] = std::move(rows);

    for (const int indent : {0, 2}) {
        const Json back = parsed(doc.dump(indent));
        EXPECT_TRUE(back == doc);
        EXPECT_EQ(back.member(0).first, "zeta");
        EXPECT_EQ(back.member(1).first, "alpha");
        EXPECT_TRUE(back.find("rows")->at(1).isArray());
        EXPECT_TRUE(back.find("rows")->at(2).isObject());
    }
}

TEST(JsonRoundTrip, IntegerBoundariesKeepExactTypes)
{
    const Json i64max = parsed("9223372036854775807");
    EXPECT_TRUE(i64max.isIntegral());
    EXPECT_EQ(i64max.asInt64(), std::numeric_limits<std::int64_t>::max());

    const Json i64min = parsed("-9223372036854775808");
    EXPECT_TRUE(i64min.isIntegral());
    EXPECT_EQ(i64min.asInt64(), std::numeric_limits<std::int64_t>::min());

    // One past int64: still exact, as uint64.
    const Json above = parsed("9223372036854775808");
    EXPECT_TRUE(above.isIntegral());
    EXPECT_EQ(above.asUint64(), std::uint64_t{9223372036854775808u});

    const Json u64max = parsed("18446744073709551615");
    EXPECT_TRUE(u64max.isIntegral());
    EXPECT_EQ(u64max.asUint64(),
              std::numeric_limits<std::uint64_t>::max());

    // Past uint64: falls back to double rather than failing.
    const Json beyond = parsed("18446744073709551616");
    EXPECT_TRUE(beyond.isNumeric());
    EXPECT_FALSE(beyond.isIntegral());
    EXPECT_DOUBLE_EQ(beyond.asDouble(), 1.8446744073709552e19);

    // Past int64 on the negative side too.
    const Json belowMin = parsed("-9223372036854775809");
    EXPECT_FALSE(belowMin.isIntegral());
}

TEST(JsonRoundTrip, UnicodeEscapesDecodeToUtf8)
{
    EXPECT_EQ(parsed("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(parsed("\"\\u20ac\"").asString(), "\xe2\x82\xac");
    // Surrogate pair -> one 4-byte code point.
    EXPECT_EQ(parsed("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
    // Escaped controls round-trip through dump()'s \uXXXX spelling.
    EXPECT_EQ(parsed("\"\\u0001\"").asString(), std::string(1, '\x01'));
    EXPECT_EQ(parsed("\"\\b\\f\\/\"").asString(), "\b\f/");
}

TEST(JsonRoundTrip, DuplicateKeysKeepTheLastValue)
{
    const Json doc = parsed("{\"a\": 1, \"a\": 2}");
    ASSERT_EQ(doc.size(), 1u);
    EXPECT_EQ(doc.find("a")->asInt64(), 2);
}

// --------------------------------------------------------------------------
// Equality semantics
// --------------------------------------------------------------------------

TEST(JsonEquality, NumericValuesCompareAcrossTypes)
{
    EXPECT_TRUE(Json(std::uint64_t{5}) == Json(std::int64_t{5}));
    EXPECT_TRUE(Json(5.0) == Json(std::int64_t{5}));
    EXPECT_FALSE(Json(std::uint64_t{5}) == Json(std::int64_t{-5}));
    // Exact even where double would lose precision.
    EXPECT_FALSE(Json(std::numeric_limits<std::uint64_t>::max()) ==
                 Json(std::int64_t{9223372036854775807}));
    EXPECT_FALSE(Json(std::nan("")) == Json(std::nan("")));
}

TEST(JsonEquality, ObjectsAreKeyOrderSensitive)
{
    Json ab = Json::object();
    ab["a"] = 1;
    ab["b"] = 2;
    Json ba = Json::object();
    ba["b"] = 2;
    ba["a"] = 1;
    EXPECT_FALSE(ab == ba);
    EXPECT_TRUE(ab != ba);
    EXPECT_FALSE(ab == Json(1));
    EXPECT_FALSE(Json() == Json(false));
}

// --------------------------------------------------------------------------
// Non-finite policy
// --------------------------------------------------------------------------

TEST(JsonPolicy, NonFiniteDumpsAsNullAndParsesBackAsNull)
{
    Json doc = Json::object();
    doc["nan"] = std::nan("");
    doc["inf"] = std::numeric_limits<double>::infinity();
    doc["ninf"] = -std::numeric_limits<double>::infinity();
    const std::string text = doc.dump();
    EXPECT_EQ(text, "{\"nan\":null,\"inf\":null,\"ninf\":null}");
    const Json back = parsed(text);
    EXPECT_TRUE(back.find("nan")->isNull());
    EXPECT_TRUE(back.find("inf")->isNull());
    EXPECT_TRUE(back.find("ninf")->isNull());
}

// --------------------------------------------------------------------------
// Malformed input: error positions
// --------------------------------------------------------------------------

TEST(JsonParseErrors, ReportLineAndColumn)
{
    {
        const auto err = parseError("");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 1u);
    }
    {
        // The trailing comma makes '}' appear where a key must be.
        const auto err = parseError("{\n  \"a\": 1,\n}");
        EXPECT_EQ(err.line, 3u);
        EXPECT_EQ(err.column, 1u);
    }
    {
        const auto err = parseError("{\"a\" 1}");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 6u);
        EXPECT_NE(err.message.find("':'"), std::string::npos);
    }
    {
        const auto err = parseError("[1, 2");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 6u);
    }
    {
        const auto err = parseError("1 2");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 3u);
        EXPECT_NE(err.message.find("trailing"), std::string::npos);
    }
    {
        const auto err = parseError("\"ab\\x\"");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 5u);
    }
    {
        const auto err = parseError("01");
        EXPECT_EQ(err.column, 2u);
        EXPECT_NE(err.message.find("leading zero"), std::string::npos);
    }
    EXPECT_NE(parseError("{\"a\": nul}").message.find("invalid token"),
              std::string::npos);
    parseError("\"unterminated");
    parseError("\"raw\ncontrol\"");
    parseError("[1,]");
    parseError("[1 2]");
    parseError("-");
    parseError("1.");
    parseError(".5");
    parseError("1e");
    parseError("\"\\ud800\"");        // unpaired high surrogate
    parseError("\"\\udc00\"");        // unpaired low surrogate
    parseError("\"\\ud83d\\u0041\""); // high surrogate + non-surrogate
    parseError("\"\\u12g4\"");        // bad hex digit
    parseError("{\"a\": 1");          // unterminated object
    parseError("tru");
    parseError(std::string(300, '['));  // past the depth limit
}

TEST(JsonParseErrors, ToStringMentionsPosition)
{
    const auto err = parseError("[\n  42,\n  oops\n]");
    EXPECT_EQ(err.line, 3u);
    EXPECT_EQ(err.column, 3u);
    EXPECT_EQ(err.toString(), "line 3, column 3: invalid token");
}

TEST(JsonParseErrors, ParseOrDieDiesWithPosition)
{
    EXPECT_DEATH((void)Json::parseOrDie("{oops", "test input"),
                 "line 1, column 2");
}

// --------------------------------------------------------------------------
// Accessors
// --------------------------------------------------------------------------

TEST(JsonFiles, WriteReadRoundTripThroughDisk)
{
    Json doc = Json::object();
    doc["schema"] = "aero-devchar/1";
    doc["rows"] = Json::array();
    doc["rows"].push(Json(std::int64_t{42})).push(Json(0.5));
    const std::string path =
        testing::TempDir() + "aero_json_roundtrip.json";
    writeJsonFile(path, doc);
    EXPECT_EQ(readTextFile(path), doc.dump(2) + "\n");
    EXPECT_TRUE(readJsonFile(path) == doc);
    EXPECT_DEATH((void)readJsonFile(path + ".does-not-exist"),
                 "cannot open");
}

TEST(JsonAccessors, FindContainsAtMember)
{
    const Json doc = parsed(
        "{\"name\": \"aero\", \"rows\": [1, 2, 3], \"ok\": true}");
    EXPECT_TRUE(doc.contains("name"));
    EXPECT_FALSE(doc.contains("absent"));
    EXPECT_EQ(doc.find("absent"), nullptr);
    EXPECT_EQ(Json(1).find("anything"), nullptr);
    EXPECT_EQ(doc.find("name")->asString(), "aero");
    EXPECT_TRUE(doc.find("ok")->asBool());
    const Json &rows = *doc.find("rows");
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows.at(2).asInt64(), 3);
    EXPECT_EQ(doc.member(1).first, "rows");
    EXPECT_EQ(Json("scalar").size(), 0u);
}

} // namespace
} // namespace aero
