/**
 * @file
 * Tests for the Json value type's parser and round-trip contract:
 * `parse(dump(x)) == x` over a corpus covering escapes, unicode,
 * nested containers, the int64/uint64 boundaries, and doubles
 * (dump() emits the shortest form that round-trips bit-exactly);
 * malformed-input error positions; file-level write/read round trips;
 * and the documented NaN/infinity dump policy (null).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "exp/report.hh"

namespace aero
{
namespace
{

Json
parsed(const std::string &text)
{
    Json out;
    Json::ParseError err;
    const bool ok = Json::parse(text, &out, &err);
    EXPECT_TRUE(ok) << text << " -> " << err.toString();
    return out;
}

Json::ParseError
parseError(const std::string &text)
{
    Json out;
    Json::ParseError err;
    const bool ok = Json::parse(text, &out, &err);
    EXPECT_FALSE(ok) << "'" << text << "' unexpectedly parsed";
    EXPECT_TRUE(out.isNull());  // failed parses leave the output null
    return err;
}

// --------------------------------------------------------------------------
// Round trips
// --------------------------------------------------------------------------

TEST(JsonRoundTrip, ScalarCorpus)
{
    const std::vector<Json> corpus = {
        Json(),
        Json(true),
        Json(false),
        Json(0),
        Json(-1),
        Json(std::int64_t{42}),
        Json(std::numeric_limits<std::int64_t>::max()),
        Json(std::numeric_limits<std::int64_t>::min()),
        Json(std::uint64_t{0}),
        Json(std::numeric_limits<std::uint64_t>::max()),
        Json(0.5),
        Json(-3.25),
        Json(1e10),
        Json(-2.5e-3),
        Json(123456789.25),
        // Not exact in 12 significant digits — the shortest-form
        // serializer must still round-trip them bit-exactly.
        Json(0.1 + 0.2),
        Json(1.0 / 3.0),
        Json(std::numeric_limits<double>::min()),
        Json(std::numeric_limits<double>::max()),
        Json(std::numeric_limits<double>::denorm_min()),
        Json(""),
        Json("plain"),
        Json("with \"quotes\" and \\backslashes\\"),
        Json("tab\there\nnewline\rreturn"),
        Json(std::string("control\x01\x1f chars")),
        Json("caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80"),  // é € emoji
    };
    for (const auto &value : corpus) {
        for (const int indent : {0, 2}) {
            const std::string text = value.dump(indent);
            const Json back = parsed(text);
            EXPECT_TRUE(back == value) << text;
            // dump is canonical: a second trip is textually identical.
            EXPECT_EQ(back.dump(indent), text);
        }
    }
}

TEST(JsonRoundTrip, NestedContainersPreserveShapeAndKeyOrder)
{
    Json doc = Json::object();
    doc["zeta"] = 1;
    doc["alpha"] = "second, not sorted first";
    Json rows = Json::array();
    Json row = Json::object();
    row["x"] = 0.5;
    row["flags"] = Json::array();
    row["flags"].push(true).push(Json()).push("mixed");
    rows.push(row);
    rows.push(Json::array());   // empty array stays an array
    rows.push(Json::object());  // empty object stays an object
    doc["rows"] = std::move(rows);

    for (const int indent : {0, 2}) {
        const Json back = parsed(doc.dump(indent));
        EXPECT_TRUE(back == doc);
        EXPECT_EQ(back.member(0).first, "zeta");
        EXPECT_EQ(back.member(1).first, "alpha");
        EXPECT_TRUE(back.find("rows")->at(1).isArray());
        EXPECT_TRUE(back.find("rows")->at(2).isObject());
    }
}

TEST(JsonRoundTrip, IntegerBoundariesKeepExactTypes)
{
    const Json i64max = parsed("9223372036854775807");
    EXPECT_TRUE(i64max.isIntegral());
    EXPECT_EQ(i64max.asInt64(), std::numeric_limits<std::int64_t>::max());

    const Json i64min = parsed("-9223372036854775808");
    EXPECT_TRUE(i64min.isIntegral());
    EXPECT_EQ(i64min.asInt64(), std::numeric_limits<std::int64_t>::min());

    // One past int64: still exact, as uint64.
    const Json above = parsed("9223372036854775808");
    EXPECT_TRUE(above.isIntegral());
    EXPECT_EQ(above.asUint64(), std::uint64_t{9223372036854775808u});

    const Json u64max = parsed("18446744073709551615");
    EXPECT_TRUE(u64max.isIntegral());
    EXPECT_EQ(u64max.asUint64(),
              std::numeric_limits<std::uint64_t>::max());

    // Past uint64: falls back to double rather than failing.
    const Json beyond = parsed("18446744073709551616");
    EXPECT_TRUE(beyond.isNumeric());
    EXPECT_FALSE(beyond.isIntegral());
    EXPECT_DOUBLE_EQ(beyond.asDouble(), 1.8446744073709552e19);

    // Past int64 on the negative side too.
    const Json belowMin = parsed("-9223372036854775809");
    EXPECT_FALSE(belowMin.isIntegral());
}

TEST(JsonRoundTrip, UnicodeEscapesDecodeToUtf8)
{
    EXPECT_EQ(parsed("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(parsed("\"\\u20ac\"").asString(), "\xe2\x82\xac");
    // Surrogate pair -> one 4-byte code point.
    EXPECT_EQ(parsed("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
    // Escaped controls round-trip through dump()'s \uXXXX spelling.
    EXPECT_EQ(parsed("\"\\u0001\"").asString(), std::string(1, '\x01'));
    EXPECT_EQ(parsed("\"\\b\\f\\/\"").asString(), "\b\f/");
}

TEST(JsonRoundTrip, DuplicateKeysKeepTheLastValue)
{
    const Json doc = parsed("{\"a\": 1, \"a\": 2}");
    ASSERT_EQ(doc.size(), 1u);
    EXPECT_EQ(doc.find("a")->asInt64(), 2);
}

// --------------------------------------------------------------------------
// Equality semantics
// --------------------------------------------------------------------------

TEST(JsonEquality, NumericValuesCompareAcrossTypes)
{
    EXPECT_TRUE(Json(std::uint64_t{5}) == Json(std::int64_t{5}));
    EXPECT_TRUE(Json(5.0) == Json(std::int64_t{5}));
    EXPECT_FALSE(Json(std::uint64_t{5}) == Json(std::int64_t{-5}));
    // Exact even where double would lose precision.
    EXPECT_FALSE(Json(std::numeric_limits<std::uint64_t>::max()) ==
                 Json(std::int64_t{9223372036854775807}));
    EXPECT_FALSE(Json(std::nan("")) == Json(std::nan("")));
}

TEST(JsonEquality, ObjectsAreKeyOrderSensitive)
{
    Json ab = Json::object();
    ab["a"] = 1;
    ab["b"] = 2;
    Json ba = Json::object();
    ba["b"] = 2;
    ba["a"] = 1;
    EXPECT_FALSE(ab == ba);
    EXPECT_TRUE(ab != ba);
    EXPECT_FALSE(ab == Json(1));
    EXPECT_FALSE(Json() == Json(false));
}

// --------------------------------------------------------------------------
// Non-finite policy
// --------------------------------------------------------------------------

TEST(JsonPolicy, NonFiniteDumpsAsNullAndParsesBackAsNull)
{
    Json doc = Json::object();
    doc["nan"] = std::nan("");
    doc["inf"] = std::numeric_limits<double>::infinity();
    doc["ninf"] = -std::numeric_limits<double>::infinity();
    const std::string text = doc.dump();
    EXPECT_EQ(text, "{\"nan\":null,\"inf\":null,\"ninf\":null}");
    const Json back = parsed(text);
    EXPECT_TRUE(back.find("nan")->isNull());
    EXPECT_TRUE(back.find("inf")->isNull());
    EXPECT_TRUE(back.find("ninf")->isNull());
}

// --------------------------------------------------------------------------
// Malformed input: error positions
// --------------------------------------------------------------------------

TEST(JsonParseErrors, ReportLineAndColumn)
{
    {
        const auto err = parseError("");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 1u);
    }
    {
        // The trailing comma makes '}' appear where a key must be.
        const auto err = parseError("{\n  \"a\": 1,\n}");
        EXPECT_EQ(err.line, 3u);
        EXPECT_EQ(err.column, 1u);
    }
    {
        const auto err = parseError("{\"a\" 1}");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 6u);
        EXPECT_NE(err.message.find("':'"), std::string::npos);
    }
    {
        const auto err = parseError("[1, 2");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 6u);
    }
    {
        const auto err = parseError("1 2");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 3u);
        EXPECT_NE(err.message.find("trailing"), std::string::npos);
    }
    {
        const auto err = parseError("\"ab\\x\"");
        EXPECT_EQ(err.line, 1u);
        EXPECT_EQ(err.column, 5u);
    }
    {
        const auto err = parseError("01");
        EXPECT_EQ(err.column, 2u);
        EXPECT_NE(err.message.find("leading zero"), std::string::npos);
    }
    EXPECT_NE(parseError("{\"a\": nul}").message.find("invalid token"),
              std::string::npos);
    parseError("\"unterminated");
    parseError("\"raw\ncontrol\"");
    parseError("[1,]");
    parseError("[1 2]");
    parseError("-");
    parseError("1.");
    parseError(".5");
    parseError("1e");
    parseError("\"\\ud800\"");        // unpaired high surrogate
    parseError("\"\\udc00\"");        // unpaired low surrogate
    parseError("\"\\ud83d\\u0041\""); // high surrogate + non-surrogate
    parseError("\"\\u12g4\"");        // bad hex digit
    parseError("{\"a\": 1");          // unterminated object
    parseError("tru");
    parseError(std::string(300, '['));  // past the depth limit
}

TEST(JsonParseErrors, ToStringMentionsPosition)
{
    const auto err = parseError("[\n  42,\n  oops\n]");
    EXPECT_EQ(err.line, 3u);
    EXPECT_EQ(err.column, 3u);
    EXPECT_EQ(err.toString(), "line 3, column 3: invalid token");
}

TEST(JsonParseErrors, ParseOrDieDiesWithPosition)
{
    EXPECT_DEATH((void)Json::parseOrDie("{oops", "test input"),
                 "line 1, column 2");
}

// --------------------------------------------------------------------------
// Accessors
// --------------------------------------------------------------------------

TEST(JsonFiles, WriteReadRoundTripThroughDisk)
{
    Json doc = Json::object();
    doc["schema"] = "aero-devchar/1";
    doc["rows"] = Json::array();
    doc["rows"].push(Json(std::int64_t{42})).push(Json(0.5));
    const std::string path =
        testing::TempDir() + "aero_json_roundtrip.json";
    writeJsonFile(path, doc);
    EXPECT_EQ(readTextFile(path), doc.dump(2) + "\n");
    EXPECT_TRUE(readJsonFile(path) == doc);
    EXPECT_DEATH((void)readJsonFile(path + ".does-not-exist"),
                 "cannot open");
}

TEST(JsonAccessors, FindContainsAtMember)
{
    const Json doc = parsed(
        "{\"name\": \"aero\", \"rows\": [1, 2, 3], \"ok\": true}");
    EXPECT_TRUE(doc.contains("name"));
    EXPECT_FALSE(doc.contains("absent"));
    EXPECT_EQ(doc.find("absent"), nullptr);
    EXPECT_EQ(Json(1).find("anything"), nullptr);
    EXPECT_EQ(doc.find("name")->asString(), "aero");
    EXPECT_TRUE(doc.find("ok")->asBool());
    const Json &rows = *doc.find("rows");
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows.at(2).asInt64(), 3);
    EXPECT_EQ(doc.member(1).first, "rows");
    EXPECT_EQ(Json("scalar").size(), 0u);
}

// --------------------------------------------------------------------------
// Randomized round-trip fuzzing: parse(dump(x)) == x over ~10k
// generated documents covering deep nesting, the int64/uint64 edges,
// surrogate-pair strings, and shortest-round-trip doubles. The campaign
// journal and golden gate both lean on this exact-round-trip contract.
// --------------------------------------------------------------------------

/** Seeded generator of arbitrary Json values. */
class JsonFuzzer
{
  public:
    explicit JsonFuzzer(std::uint64_t seed) : rng(seed) {}

    Json
    value(int depth = 0)
    {
        // Containers get rarer with depth so documents terminate, but
        // a dedicated branch still drives nesting to ~10 levels.
        const int pick = depth >= 10
            ? static_cast<int>(rng() % 6)
            : static_cast<int>(rng() % 8);
        switch (pick) {
          case 0: return Json();
          case 1: return Json(rng() % 2 == 0);
          case 2: return integer();
          case 3: return unsignedInteger();
          case 4: return finiteDouble();
          case 5: return Json(randomString());
          case 6: return array(depth);
          default: return object(depth);
        }
    }

    Json
    integer()
    {
        switch (rng() % 4) {
          case 0:
            return Json(std::numeric_limits<std::int64_t>::min());
          case 1:
            return Json(std::numeric_limits<std::int64_t>::max());
          case 2:
            return Json(static_cast<std::int64_t>(rng()) % 1000);
          default:
            return Json(static_cast<std::int64_t>(rng()));
        }
    }

    Json
    unsignedInteger()
    {
        if (rng() % 4 == 0)
            return Json(std::numeric_limits<std::uint64_t>::max());
        return Json(static_cast<std::uint64_t>(rng()));
    }

    Json
    finiteDouble()
    {
        switch (rng() % 8) {
          case 0: return Json(0.1);
          case 1: return Json(1.0 / 3.0);
          case 2: return Json(5e-324);   // smallest denormal
          case 3: return Json(1.7976931348623157e308);
          case 4: return Json(-0.0);
          case 5: return Json(static_cast<double>(rng()) / 7.0);
          default: {
            // An arbitrary finite bit pattern: the hardest doubles
            // for a shortest-round-trip serializer.
            for (;;) {
                std::uint64_t bits = rng();
                double d;
                std::memcpy(&d, &bits, sizeof(d));
                if (std::isfinite(d))
                    return Json(d);
            }
          }
        }
    }

    std::string
    randomString()
    {
        std::string out;
        const std::size_t len = rng() % 12;
        for (std::size_t i = 0; i < len; ++i) {
            switch (rng() % 6) {
              case 0:  // printable ASCII incl. quote/backslash
                out.push_back(static_cast<char>(0x20 + rng() % 0x5f));
                break;
              case 1:  // control characters (escaped as \uXXXX)
                out.push_back(static_cast<char>(rng() % 0x20));
                break;
              case 2:  // popular escapes
                out += "\"\\\n\t";
                break;
              case 3:  // two-byte UTF-8 (U+0080..U+07FF)
                appendUtf8(out, 0x80 + rng() % 0x780);
                break;
              case 4:  // three-byte UTF-8, surrogate range excluded
                appendUtf8(out, 0x800 + rng() % (0xd800 - 0x800));
                break;
              default:  // astral plane: a surrogate pair when escaped
                appendUtf8(out, 0x10000 + rng() % 0x10000);
                break;
            }
        }
        return out;
    }

  private:
    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    Json
    array(int depth)
    {
        Json arr = Json::array();
        const std::size_t n = rng() % 5;
        for (std::size_t i = 0; i < n; ++i)
            arr.push(value(depth + 1));
        return arr;
    }

    Json
    object(int depth)
    {
        Json obj = Json::object();
        const std::size_t n = rng() % 5;
        for (std::size_t i = 0; i < n; ++i)
            obj[randomString()] = value(depth + 1);
        return obj;
    }

    std::mt19937_64 rng;
};

TEST(JsonFuzzRoundTrip, TenThousandRandomDocuments)
{
    JsonFuzzer fuzz(0xae20c0de2026ull);
    for (int i = 0; i < 10000; ++i) {
        const Json x = fuzz.value();
        const std::string compact = x.dump();
        const std::string pretty = x.dump(2);

        Json fromCompact;
        Json::ParseError err;
        ASSERT_TRUE(Json::parse(compact, &fromCompact, &err))
            << "case " << i << ": " << err.toString() << "\n"
            << compact;
        ASSERT_TRUE(fromCompact == x) << "case " << i << "\n" << compact;

        Json fromPretty;
        ASSERT_TRUE(Json::parse(pretty, &fromPretty, &err))
            << "case " << i << ": " << err.toString();
        ASSERT_TRUE(fromPretty == x) << "case " << i;

        // The serializer is a fixed point after one round trip — the
        // byte-identity property resumed artifacts rely on.
        ASSERT_EQ(fromCompact.dump(), compact) << "case " << i;
    }
}

TEST(JsonFuzzRoundTrip, DeeplyNestedDocumentsRoundTrip)
{
    // Straight-line nesting beyond what the random generator reaches:
    // 100 levels of alternating arrays/objects, well under the
    // parser's 256-depth limit.
    Json leaf = Json(std::uint64_t{18446744073709551615ull});
    for (int level = 0; level < 100; ++level) {
        if (level % 2 == 0) {
            Json arr = Json::array();
            arr.push(std::move(leaf));
            leaf = std::move(arr);
        } else {
            Json obj = Json::object();
            obj["k"] = std::move(leaf);
            leaf = std::move(obj);
        }
    }
    const std::string text = leaf.dump();
    Json back;
    ASSERT_TRUE(Json::parse(text, &back, nullptr));
    EXPECT_TRUE(back == leaf);
    EXPECT_EQ(back.dump(), text);
}

TEST(JsonFuzzRoundTrip, RandomizedMalformedInputsReportPositions)
{
    // Mutate valid documents at random byte positions; whatever the
    // parser rejects must carry a position inside the input (1-based
    // line/column, offset within [0, size]).
    JsonFuzzer fuzz(0x5eed);
    std::mt19937_64 rng(99);
    const char junk[] = {'#', '}', ']', ',', ':', '"', '\\', '\x01'};
    int rejected = 0;
    for (int i = 0; i < 2000; ++i) {
        std::string text = fuzz.value().dump();
        if (text.empty())
            continue;
        const std::size_t pos = rng() % text.size();
        text[pos] = junk[rng() % sizeof(junk)];
        Json out;
        Json::ParseError err;
        if (Json::parse(text, &out, &err))
            continue;  // some mutations stay valid JSON
        rejected += 1;
        EXPECT_GE(err.line, 1u) << text;
        EXPECT_GE(err.column, 1u) << text;
        EXPECT_LE(err.offset, text.size()) << text;
        EXPECT_TRUE(out.isNull());
        EXPECT_FALSE(err.toString().empty());
    }
    EXPECT_GT(rejected, 500);  // the mutator must actually bite
}

TEST(JsonParseErrors, MalformedCorpusPinsExactLineAndColumn)
{
    // A curated malformed corpus with hand-checked 1-based positions —
    // multi-line documents, truncated escapes, bad unicode, trailing
    // garbage — pinning the error-position contract precisely.
    struct Case
    {
        const char *text;
        std::size_t line;
        std::size_t column;
    };
    const Case cases[] = {
        {"", 1, 1},                      // empty input
        {"{", 1, 2},                     // unterminated object
        {"[1,]", 1, 4},                  // trailing comma
        {"{\"a\":1,}", 1, 8},            // trailing comma in object
        {"[1 2]", 1, 4},                 // missing comma
        {"{\"a\" 1}", 1, 6},             // missing colon
        {"tru", 1, 1},                   // truncated literal
        {"01", 1, 2},                    // leading zero
        {"1e", 1, 3},                    // truncated exponent
        {"\"\\x\"", 1, 3},               // unknown escape
        {"\"\\u12G4\"", 1, 6},           // bad unicode escape digit
        {"\"\\ud800\"", 1, 8},           // lone high surrogate
        {"\"abc", 1, 5},                 // unterminated string
        {"[1,\n2,\n3,]", 3, 3},          // error on line 3
        {"{\n  \"a\": 1,\n  \"b\" 2\n}", 3, 7},  // line 3 colon
        {"[\"ok\"] junk", 1, 8},         // trailing garbage
        {"[1]\n[2]", 2, 1},              // second document
        {"{\"a\":\n\tnul}", 2, 2},       // bad literal after tab
    };
    for (const auto &c : cases) {
        Json out;
        Json::ParseError err;
        ASSERT_FALSE(Json::parse(c.text, &out, &err))
            << "'" << c.text << "' unexpectedly parsed";
        EXPECT_EQ(err.line, c.line) << "'" << c.text << "': "
                                    << err.toString();
        EXPECT_EQ(err.column, c.column)
            << "'" << c.text << "': " << err.toString();
    }
}

} // namespace
} // namespace aero
