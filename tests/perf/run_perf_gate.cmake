# The simulation-kernel perf gate, run as a CTest driver:
#
#   cmake -DBENCH=<bench_kernel-binary> -DDIFF=<aero_diff-binary>
#         -DBASELINE=<checked-in BENCH_kernel.json> -DOUT=<scratch json>
#         [-DREL_TOL=<tol>] -P run_perf_gate.cmake
#
# Regenerates the --small kernel-bench artifact and diffs it against the
# checked-in baseline. What is gated, and how, differs from the golden
# gate because perf numbers are machine-dependent:
#
#   * deterministic counts (events_total, final_tick, loops_total, ...)
#     compare exactly — any drift means the kernel changed behaviour;
#   * the tagged-vs-legacy speedups are gated through their threshold
#     booleans (summary.speedup_headline_ge_1_5, .speedup_all_ge_1_2),
#     which compare exactly: the legacy reference is re-measured in the
#     same run, so a genuine >30% kernel regression flips a boolean on
#     any machine, while machine-to-machine ratio noise cannot;
#   * machine-absolute rates (mevents_per_sec, requests_per_sec,
#     ns_per_erase_step) and the raw speedup ratios are recorded for
#     trajectory plots but ignored by the diff.
#
# To refresh the baseline after an intentional change:
#   cmake --build build --target regen-perf-baseline

if(NOT DEFINED REL_TOL)
    # Only reaches deterministic floats (events_per_request); everything
    # noisy is either thresholded or ignored.
    set(REL_TOL 1e-6)
endif()

execute_process(
    COMMAND "${BENCH}" --small --json "${OUT}"
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "bench '${BENCH}' failed (exit ${bench_rc})")
endif()

execute_process(
    COMMAND "${DIFF}" "${BASELINE}" "${OUT}" --rel-tol "${REL_TOL}"
        --ignore mevents_per_sec
        --ignore requests_per_sec
        --ignore ns_per_erase_step
        --ignore dispatch_speedup_p16
        --ignore dispatch_speedup_p64
        --ignore dispatch_speedup_p256
        --ignore dispatch_speedup_p1024
    RESULT_VARIABLE diff_rc
    OUTPUT_VARIABLE diff_out
    ECHO_OUTPUT_VARIABLE)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "kernel bench drifted from ${BASELINE} "
        "(aero_diff exit ${diff_rc}); deterministic-count drift means a "
        "behaviour change, a flipped speedup threshold means a kernel "
        "perf regression. If intentional, refresh with the "
        "'regen-perf-baseline' target")
endif()
