# The channel-arbitration perf gate, run as a CTest driver:
#
#   cmake -DBENCH=<bench_contention-binary> -DDIFF=<aero_diff-binary>
#         -DBASELINE=<checked-in BENCH_contention.json> -DOUT=<scratch json>
#         [-DREL_TOL=<tol>] -P run_contention_gate.cmake
#
# Regenerates the --small contention artifact and diffs it against the
# checked-in baseline, with the same gating split as run_perf_gate.cmake:
#
#   * deterministic counts (events_total, final_tick, erases, channel
#     grants, events_per_request, event_ratio_queued_over_legacy) compare
#     exactly — drift under either arbitration model means the kernel or
#     the grant path changed behaviour;
#   * the queued-vs-legacy wall-clock multiple is gated through its
#     threshold boolean (summary.queued_slowdown_le_3), which is
#     machine-normalized: legacy is re-measured in the same run;
#   * machine-absolute rates (requests_per_sec) and the raw slowdown
#     ratio are recorded for trajectory plots but ignored by the diff.
#
# To refresh the baseline after an intentional change:
#   cmake --build build --target regen-perf-baseline

if(NOT DEFINED REL_TOL)
    # Only reaches deterministic floats (events_per_request and the
    # event-count ratio); everything noisy is thresholded or ignored.
    set(REL_TOL 1e-6)
endif()

execute_process(
    COMMAND "${BENCH}" --small --json "${OUT}"
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "bench '${BENCH}' failed (exit ${bench_rc})")
endif()

execute_process(
    COMMAND "${DIFF}" "${BASELINE}" "${OUT}" --rel-tol "${REL_TOL}"
        --ignore requests_per_sec
        --ignore replay_slowdown_queued
    RESULT_VARIABLE diff_rc
    OUTPUT_VARIABLE diff_out
    ECHO_OUTPUT_VARIABLE)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "contention bench drifted from ${BASELINE} "
        "(aero_diff exit ${diff_rc}); deterministic-count drift means a "
        "behaviour change in an arbitration model, a flipped slowdown "
        "threshold means the queued grant path regressed. If "
        "intentional, refresh with the 'regen-perf-baseline' target")
endif()
