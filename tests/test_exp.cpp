/**
 * @file
 * Tests for the experiment API: the string-keyed EraseSchemeRegistry,
 * SweepBuilder grid expansion, SweepRunner thread-count determinism, the
 * JSON/CSV report serializers, and the hardened env parsing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "core/aero_scheme.hh"
#include "core/ept_builder.hh"
#include "devchar/experiments.hh"
#include "devchar/lifetime.hh"
#include "erase/scheme_registry.hh"
#include "exp/report.hh"
#include "exp/sweep.hh"
#include "workload/presets.hh"

namespace aero
{
namespace
{

// --------------------------------------------------------------------------
// EraseSchemeRegistry
// --------------------------------------------------------------------------

TEST(SchemeRegistry, RoundTripsAllFiveSchemes)
{
    auto &reg = EraseSchemeRegistry::instance();
    ASSERT_EQ(reg.names().size(), 5u);
    for (const auto kind : allSchemes()) {
        const std::string name = schemeKindName(kind);
        EXPECT_TRUE(reg.contains(name)) << name;
        EXPECT_EQ(reg.kindOf(name), kind);
        EXPECT_EQ(reg.nameOf(kind), name);
        EXPECT_EQ(schemeKindFromName(name), kind);

        NandChip chip(ChipParams::tlc3d(), ChipGeometry{1, 4, 8}, 1);
        const auto scheme = reg.make(name, chip, SchemeOptions{});
        ASSERT_NE(scheme, nullptr);
        EXPECT_EQ(scheme->kind(), kind);
        const auto by_kind = reg.make(kind, chip, SchemeOptions{});
        EXPECT_EQ(by_kind->kind(), kind);
    }
}

TEST(SchemeRegistry, NamesInPaperComparisonOrder)
{
    const auto names = EraseSchemeRegistry::instance().names();
    const std::vector<std::string> expected = {
        "Baseline", "i-ISPE", "DPES", "AERO-CONS", "AERO"};
    EXPECT_EQ(names, expected);
}

TEST(SchemeRegistry, LookupTolleratesCaseAndSeparators)
{
    EXPECT_EQ(schemeKindFromName("baseline"), SchemeKind::Baseline);
    EXPECT_EQ(schemeKindFromName("aero"), SchemeKind::Aero);
    EXPECT_EQ(schemeKindFromName("AERO_CONS"), SchemeKind::AeroCons);
    EXPECT_EQ(schemeKindFromName("aero-cons"), SchemeKind::AeroCons);
    EXPECT_EQ(schemeKindFromName("iispe"), SchemeKind::IIspe);
    EXPECT_EQ(schemeKindFromName("dpes"), SchemeKind::Dpes);
}

TEST(SchemeRegistry, UnknownNameListsValidSchemes)
{
    EXPECT_DEATH(schemeKindFromName("sandisk-turbo"), "AERO-CONS");
    EXPECT_DEATH(schemeKindFromName(""), "Baseline");
}

TEST(SchemeRegistry, CompatFactoryStillWorks)
{
    NandChip chip(ChipParams::tlc3d(), ChipGeometry{1, 4, 8}, 1);
    const auto scheme =
        makeEraseScheme(SchemeKind::AeroCons, chip, SchemeOptions{});
    EXPECT_EQ(scheme->kind(), SchemeKind::AeroCons);
    const auto by_name = makeEraseScheme("AERO", chip, SchemeOptions{});
    EXPECT_EQ(by_name->kind(), SchemeKind::Aero);
}

TEST(Workloads, UnknownNameListsValidWorkloads)
{
    EXPECT_DEATH(workloadByName("not-a-trace"), "prxy");
}

// --------------------------------------------------------------------------
// Env parsing
// --------------------------------------------------------------------------

TEST(SimRequestsEnv, FallbackAndOverride)
{
    unsetenv("AERO_SIM_REQUESTS");
    EXPECT_EQ(defaultSimRequests(1234), 1234u);
    setenv("AERO_SIM_REQUESTS", "5000", 1);
    EXPECT_EQ(defaultSimRequests(1234), 5000u);
    unsetenv("AERO_SIM_REQUESTS");
}

TEST(SimRequestsEnv, RejectsMalformedValues)
{
    setenv("AERO_SIM_REQUESTS", "12k", 1);
    EXPECT_DEATH(defaultSimRequests(), "AERO_SIM_REQUESTS");
    setenv("AERO_SIM_REQUESTS", "", 1);
    EXPECT_DEATH(defaultSimRequests(), "AERO_SIM_REQUESTS");
    setenv("AERO_SIM_REQUESTS", "0", 1);
    EXPECT_DEATH(defaultSimRequests(), "AERO_SIM_REQUESTS");
    setenv("AERO_SIM_REQUESTS", "-5", 1);
    EXPECT_DEATH(defaultSimRequests(), "AERO_SIM_REQUESTS");
    unsetenv("AERO_SIM_REQUESTS");
}

TEST(SweepThreadsEnv, OverrideAndRejects)
{
    setenv("AERO_SWEEP_THREADS", "3", 1);
    EXPECT_EQ(sweepThreads(), 3);
    setenv("AERO_SWEEP_THREADS", "zero", 1);
    EXPECT_DEATH(sweepThreads(), "AERO_SWEEP_THREADS");
    setenv("AERO_SWEEP_THREADS", "0", 1);
    EXPECT_DEATH(sweepThreads(), "AERO_SWEEP_THREADS");
    unsetenv("AERO_SWEEP_THREADS");
    EXPECT_GE(sweepThreads(), 1);
}

// --------------------------------------------------------------------------
// SweepBuilder / SweepSpec expansion
// --------------------------------------------------------------------------

TEST(SweepBuilder, ExpandsGridInDeclaredNestingOrder)
{
    const SweepSpec spec =
        SweepBuilder()
            .workloads({"prxy", "usr"})
            .schemes({SchemeKind::Baseline, SchemeKind::Aero})
            .pecs({500.0, 2500.0})
            .seeds({7, 1007})
            .requests(100)
            .build();
    ASSERT_EQ(spec.size(), 16u);
    const auto points = spec.expand();
    ASSERT_EQ(points.size(), 16u);

    // Innermost axis (seed) varies fastest...
    EXPECT_EQ(points[0].seed, 7u);
    EXPECT_EQ(points[1].seed, 1007u);
    EXPECT_EQ(points[0].scheme, SchemeKind::Baseline);
    EXPECT_EQ(points[2].scheme, SchemeKind::Aero);
    // ...then scheme, then workload, then (outermost) PEC.
    EXPECT_EQ(points[0].workload, "prxy");
    EXPECT_EQ(points[4].workload, "usr");
    EXPECT_EQ(points[0].pec, 500.0);
    EXPECT_EQ(points[8].pec, 2500.0);
    for (const auto &pt : points)
        EXPECT_EQ(pt.requests, 100u);

    // index() agrees with expand() for every point.
    for (std::size_t pi = 0; pi < 2; ++pi) {
        for (std::size_t wi = 0; wi < 2; ++wi) {
            for (std::size_t si = 0; si < 2; ++si) {
                for (std::size_t se = 0; se < 2; ++se) {
                    const auto &pt =
                        points[spec.index(pi, 0, wi, si, 0, 0, se)];
                    EXPECT_EQ(pt.pec, spec.pecs[pi]);
                    EXPECT_EQ(pt.workload, spec.workloads[wi]);
                    EXPECT_EQ(pt.scheme, spec.schemes[si]);
                    EXPECT_EQ(pt.seed, spec.seeds[se]);
                }
            }
        }
    }
}

TEST(SweepBuilder, SingularSettersCollapseAxes)
{
    const SweepSpec spec = SweepBuilder()
                               .workload("hm")
                               .scheme(SchemeKind::Dpes)
                               .pec(4500.0)
                               .suspension(SuspensionMode::None)
                               .mispredictionRate(0.05)
                               .rberRequirement(31)
                               .seed(42)
                               .requests(10)
                               .build();
    ASSERT_EQ(spec.size(), 1u);
    const auto pt = spec.expand().front();
    EXPECT_EQ(pt.workload, "hm");
    EXPECT_EQ(pt.scheme, SchemeKind::Dpes);
    EXPECT_EQ(pt.pec, 4500.0);
    EXPECT_EQ(pt.suspension, SuspensionMode::None);
    EXPECT_EQ(pt.mispredictionRate, 0.05);
    EXPECT_EQ(pt.rberRequirement, 31);
    EXPECT_EQ(pt.seed, 42u);
}

TEST(SweepBuilder, RepeatsMatchTheBenchSeedIdiom)
{
    const SweepSpec spec = SweepBuilder().repeats(3).build();
    EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{7, 1007, 2007}));
}

TEST(SweepBuilder, SchemeNamesResolveThroughRegistry)
{
    const SweepSpec spec =
        SweepBuilder().schemeNames({"baseline", "AERO"}).build();
    EXPECT_EQ(spec.schemes,
              (std::vector<SchemeKind>{SchemeKind::Baseline,
                                       SchemeKind::Aero}));
}

TEST(SweepBuilder, RejectsIllFormedGrids)
{
    EXPECT_DEATH(SweepBuilder().workloads({}).build(), "no workloads");
    EXPECT_DEATH(SweepBuilder().schemes({}).build(), "no schemes");
    EXPECT_DEATH(SweepBuilder().requests(0).build(), "zero requests");
    EXPECT_DEATH(SweepBuilder().workload("bogus").build(), "unknown");
}

TEST(SweepSpec, AllTable3AllSchemesPaperGridSize)
{
    const SweepSpec spec = SweepBuilder()
                               .allTable3Workloads()
                               .allSchemes()
                               .paperPecs()
                               .build();
    EXPECT_EQ(spec.size(), 11u * 5u * 3u);
}

// --------------------------------------------------------------------------
// SweepRunner
// --------------------------------------------------------------------------

SweepSpec
tinySweep()
{
    SsdConfig base = SsdConfig::tiny();
    return SweepBuilder()
        .workloads({"prxy", "hm"})
        .schemes({SchemeKind::Baseline, SchemeKind::Aero})
        .pec(2500.0)
        .requests(1500)
        .baseConfig(base)
        .build();
}

TEST(SweepRunner, DeterministicAcrossThreadCounts)
{
    const SweepSpec spec = tinySweep();
    const auto serial = SweepRunner(1).run(spec);
    const auto parallel = SweepRunner(4).run(spec);
    ASSERT_EQ(serial.size(), spec.size());
    ASSERT_EQ(parallel.size(), spec.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].point.workload, parallel[i].point.workload);
        EXPECT_EQ(serial[i].point.scheme, parallel[i].point.scheme);
        EXPECT_EQ(serial[i].avgReadUs, parallel[i].avgReadUs);
        EXPECT_EQ(serial[i].avgWriteUs, parallel[i].avgWriteUs);
        EXPECT_EQ(serial[i].iops, parallel[i].iops);
        EXPECT_EQ(serial[i].p999Us, parallel[i].p999Us);
        EXPECT_EQ(serial[i].p9999Us, parallel[i].p9999Us);
        EXPECT_EQ(serial[i].p999999Us, parallel[i].p999999Us);
        EXPECT_EQ(serial[i].erases, parallel[i].erases);
        EXPECT_EQ(serial[i].writeAmplification,
                  parallel[i].writeAmplification);
    }
}

TEST(DevcharExperiments, ChipShardedDeterministicAcrossThreadCounts)
{
    // The golden gate assumes the chip-sharded campaign engine
    // (devchar/chip_shard.hh) folds records in the serial (pec, chip,
    // block) order for any pool size; pin that down at the unit level
    // for both a fig experiment and the EptBuilder campaign.
    FarmConfig fc;
    fc.numChips = 4;
    fc.blocksPerChip = 6;
    const std::vector<double> pecs = {1000.0, 2500.0};
    setenv("AERO_SWEEP_THREADS", "1", 1);
    const auto serial = runFig7Experiment(fc, pecs);
    setenv("AERO_SWEEP_THREADS", "4", 1);
    const auto parallel = runFig7Experiment(fc, pecs);
    // Restore the default before any assertion can return early, so a
    // failure here cannot leak a forced pool size into later tests.
    unsetenv("AERO_SWEEP_THREADS");
    EXPECT_EQ(serial.gammaEstimate, parallel.gammaEstimate);
    EXPECT_EQ(serial.deltaEstimate, parallel.deltaEstimate);
    ASSERT_EQ(serial.rows.size(), parallel.rows.size());
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
        EXPECT_EQ(serial.rows[i].nIspe, parallel.rows[i].nIspe);
        EXPECT_EQ(serial.rows[i].samples, parallel.rows[i].samples);
        EXPECT_EQ(serial.rows[i].maxFailByRemaining,
                  parallel.rows[i].maxFailByRemaining);
        EXPECT_EQ(serial.rows[i].meanFailByRemaining,
                  parallel.rows[i].meanFailByRemaining);
    }

    PopulationConfig pc;
    pc.numChips = 6;
    pc.geometry = ChipGeometry{1, 16, 8};
    pc.seed = 99;
    EptBuilderConfig bc;
    bc.blocksPerChip = 6;
    bc.pecPoints = {0, 1500, 3000};
    setenv("AERO_SWEEP_THREADS", "1", 1);
    ChipPopulation popSerial(pc);
    EptBuilder builderSerial(popSerial, bc);
    const Ept eptSerial = builderSerial.build();
    setenv("AERO_SWEEP_THREADS", "4", 1);
    ChipPopulation popParallel(pc);
    EptBuilder builderParallel(popParallel, bc);
    const Ept eptParallel = builderParallel.build();
    unsetenv("AERO_SWEEP_THREADS");
    EXPECT_EQ(builderSerial.measurements(),
              builderParallel.measurements());
    for (int row = 1; row <= Ept::kRows; ++row) {
        for (int rg = 0; rg < Ept::kRanges; ++rg) {
            EXPECT_EQ(eptSerial.consSlots(row, rg),
                      eptParallel.consSlots(row, rg));
            EXPECT_EQ(eptSerial.aggrSlots(row, rg),
                      eptParallel.aggrSlots(row, rg));
        }
    }
}

TEST(LifetimeTester, DeterministicAcrossThreadCounts)
{
    // The per-checkpoint farm loop is sharded chip-per-task; partials
    // fold in chip order, so 1 thread and 4 threads must agree exactly
    // (bit-for-bit), including the early-exit crossing checkpoint.
    LifetimeConfig cfg;
    cfg.farm.numChips = 4;
    cfg.farm.blocksPerChip = 5;
    cfg.maxPec = 1000;
    cfg.checkpointEvery = 250;
    cfg.threads = 1;
    const auto serial = LifetimeTester(cfg).run(SchemeKind::Aero);
    cfg.threads = 4;
    const auto parallel = LifetimeTester(cfg).run(SchemeKind::Aero);
    ASSERT_EQ(serial.curve.size(), parallel.curve.size());
    for (std::size_t i = 0; i < serial.curve.size(); ++i) {
        EXPECT_EQ(serial.curve[i].first, parallel.curve[i].first);
        EXPECT_EQ(serial.curve[i].second, parallel.curve[i].second);
    }
    EXPECT_EQ(serial.crossed, parallel.crossed);
    EXPECT_EQ(serial.lifetimePec, parallel.lifetimePec);
    EXPECT_EQ(serial.avgEraseLatencyMs, parallel.avgEraseLatencyMs);
    EXPECT_EQ(serial.avgLoops, parallel.avgLoops);
    EXPECT_EQ(serial.freshMrber, parallel.freshMrber);
}

TEST(SweepRunner, ProgressCoversEveryPointExactlyOnce)
{
    const SweepSpec spec = tinySweep();
    std::vector<int> seen(spec.size(), 0);
    std::size_t calls = 0;
    const auto points = spec.expand();
    SweepRunner(2).run(
        spec, [&](std::size_t done, std::size_t total,
                  const SimResult &latest) {
            EXPECT_LE(done, total);
            EXPECT_EQ(total, points.size());
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (points[i].workload == latest.point.workload &&
                    points[i].scheme == latest.point.scheme)
                    seen[i] += 1;
            }
            calls += 1;
        });
    EXPECT_EQ(calls, spec.size());
    for (const int n : seen)
        EXPECT_EQ(n, 1);
}

TEST(ParallelMap, PreservesInputOrder)
{
    std::vector<int> items(37);
    for (std::size_t i = 0; i < items.size(); ++i)
        items[i] = static_cast<int>(i);
    const auto out =
        parallelMap(items, [](int v) { return v * v; }, 4);
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

// --------------------------------------------------------------------------
// Reports
// --------------------------------------------------------------------------

TEST(Json, SerializesScalarsArraysAndObjects)
{
    Json doc = Json::object();
    doc["text"] = "quote \" backslash \\ newline \n";
    doc["flag"] = true;
    doc["count"] = 42;
    doc["ratio"] = 0.5;
    doc["nothing"] = Json{};
    Json arr = Json::array();
    arr.push(1).push("two").push(3.0);
    doc["list"] = std::move(arr);
    EXPECT_EQ(doc.dump(),
              "{\"text\":\"quote \\\" backslash \\\\ newline \\n\","
              "\"flag\":true,\"count\":42,\"ratio\":0.5,\"nothing\":null,"
              "\"list\":[1,\"two\",3.0]}");
}

TEST(Json, LargeUnsignedValuesSurvive)
{
    Json doc = Json::array();
    doc.push(std::numeric_limits<std::uint64_t>::max());
    doc.push(std::uint64_t{7});
    EXPECT_EQ(doc.dump(), "[18446744073709551615,7]");
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    Json doc = Json::array();
    doc.push(std::numeric_limits<double>::infinity());
    doc.push(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(doc.dump(), "[null,null]");
}

TEST(Report, SweepReportHasStableKeysAndSpecOrder)
{
    const SweepSpec spec = SweepBuilder()
                               .workload("prxy")
                               .schemes({SchemeKind::Baseline,
                                         SchemeKind::Aero})
                               .requests(10)
                               .build();
    std::vector<SimResult> results(2);
    results[0].point = spec.expand()[0];
    results[0].avgReadUs = 100.0;
    results[1].point = spec.expand()[1];
    results[1].avgReadUs = 90.0;
    const std::string json = sweepReport(spec, results).dump();
    EXPECT_NE(json.find("\"schema\":\"aero-sweep/1\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"prxy\""), std::string::npos);
    EXPECT_NE(json.find("\"scheme\":\"Baseline\""), std::string::npos);
    EXPECT_NE(json.find("\"scheme\":\"AERO\""), std::string::npos);
    EXPECT_NE(json.find("\"p999999_us\""), std::string::npos);
    // Baseline row precedes the AERO row (spec order).
    EXPECT_LT(json.find("\"scheme\":\"Baseline\""),
              json.find("\"scheme\":\"AERO\""));

    const std::string csv = toCsv(results);
    EXPECT_EQ(csv.substr(0, 15), "workload,scheme");
    EXPECT_NE(csv.find("prxy,Baseline"), std::string::npos);
    EXPECT_NE(csv.find("prxy,AERO"), std::string::npos);
}

TEST(Report, SuspensionModeNamesRoundTrip)
{
    EXPECT_STREQ(suspensionModeName(SuspensionMode::None), "none");
    EXPECT_STREQ(suspensionModeName(SuspensionMode::MidSegment),
                 "mid-segment");
    EXPECT_EQ(suspensionModeFromName("none"), SuspensionMode::None);
    EXPECT_EQ(suspensionModeFromName("on"), SuspensionMode::MidSegment);
    EXPECT_DEATH(suspensionModeFromName("sometimes"), "mid-segment");
}

} // namespace
} // namespace aero
