/**
 * @file
 * Wear-leveling policy battery: registry round-trips and exact death
 * diagnostics, the `none` policy's bit-exact LIFO reuse, `dynamic`'s
 * least-erased free-block choice, `static`'s cold-victim threshold, and
 * an end-to-end check that leveling actually narrows the erase-count
 * spread on a churned drive.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ssd/block_manager.hh"
#include "ssd/ssd.hh"
#include "ssd/wear_level.hh"
#include "workload/synthetic.hh"

namespace aero
{
namespace
{

TEST(WearLevelRegistry, RoundTripsEveryPolicy)
{
    EXPECT_EQ(makeWearLevelPolicy("none")->name(), std::string("none"));
    EXPECT_EQ(makeWearLevelPolicy("static")->name(),
              std::string("static"));
    EXPECT_EQ(makeWearLevelPolicy("dynamic")->name(),
              std::string("dynamic"));
    EXPECT_STREQ(wearLevelPolicyNames(), "none, static, dynamic");
}

TEST(WearLevelRegistryDeathTest, UnknownNameDiesWithValidList)
{
    EXPECT_DEATH((void)makeWearLevelPolicy("hot-cold"),
                 "unknown wear-level policy 'hot-cold' \\(valid: none, "
                 "static, dynamic\\)");
}

// A tiny drive whose per-(chip, plane) pools the tests can steer.
struct WearFixture
{
    SsdConfig cfg = SsdConfig::tiny();
    BlockManager blocks{cfg};

    // Fill every page of the open block of (chip, plane) so it goes
    // Full, then erase it, leaving its erase count bumped.
    BlockId
    churnOneBlock(int chip, int plane)
    {
        BlockId block = kInvalidBlock;
        int page = 0;
        for (int i = 0; i < cfg.geometry.pagesPerBlock; ++i)
            EXPECT_TRUE(blocks.allocate(chip, plane, block, page));
        blocks.onBlockErased(chip, block);
        return block;
    }
};

TEST(WearLevelNone, ReusesTheLastFreedBlockFirst)
{
    WearFixture fx;
    const NoneWearLevelPolicy none;
    fx.blocks.setWearPolicy(&none);
    // LIFO: the block just erased must be the next one opened.
    const BlockId churned = fx.churnOneBlock(0, 0);
    BlockId block = kInvalidBlock;
    int page = 0;
    ASSERT_TRUE(fx.blocks.allocate(0, 0, block, page));
    EXPECT_EQ(block, churned);
    EXPECT_EQ(fx.blocks.eraseCount(0, churned), 1u);
}

TEST(WearLevelDynamic, OpensTheLeastErasedFreeBlock)
{
    WearFixture fx;
    const DynamicWearLevelPolicy dynamic;
    fx.blocks.setWearPolicy(&dynamic);
    // Churn one block so it carries the only nonzero erase count; the
    // dynamic policy must *not* reuse it while colder blocks remain.
    const BlockId churned = fx.churnOneBlock(0, 0);
    BlockId block = kInvalidBlock;
    int page = 0;
    ASSERT_TRUE(fx.blocks.allocate(0, 0, block, page));
    EXPECT_NE(block, churned);
    EXPECT_EQ(fx.blocks.eraseCount(0, block), 0u);
}

TEST(WearLevelDynamic, BreaksEraseCountTiesByLowestBlockId)
{
    WearFixture fx;
    const DynamicWearLevelPolicy dynamic;
    // All-equal erase counts: the policy must pick deterministically.
    std::vector<BlockId> free_list = {7, 3, 11};
    const std::size_t slot =
        dynamic.chooseFreeSlot(free_list, /*chip=*/0, fx.blocks);
    EXPECT_EQ(free_list[slot], 3);
}

TEST(WearLevelStatic, ColdVictimRequiresTheFullSpread)
{
    WearFixture fx;
    const StaticWearLevelPolicy static_wl;
    // No Full block anywhere: nothing to migrate.
    EXPECT_EQ(static_wl.pickColdVictim(0, 0, fx.blocks, 1), kInvalidBlock);

    // Fill one block (leave it Full) and churn another plane-0 block
    // until the spread reaches the threshold.
    BlockId cold = kInvalidBlock;
    int page = 0;
    for (int i = 0; i < fx.cfg.geometry.pagesPerBlock; ++i)
        ASSERT_TRUE(fx.blocks.allocate(0, 0, cold, page));
    ASSERT_EQ(fx.blocks.state(0, cold), BlockState::Full);

    // Spread 1 < delta 2: below threshold, no victim yet.
    fx.churnOneBlock(0, 0);
    EXPECT_EQ(static_wl.pickColdVictim(0, 0, fx.blocks, 2), kInvalidBlock);
    // Second churn reuses the same LIFO block: spread reaches 2.
    fx.churnOneBlock(0, 0);
    EXPECT_EQ(static_wl.pickColdVictim(0, 0, fx.blocks, 2), cold);
    // A stricter threshold still declines.
    EXPECT_EQ(static_wl.pickColdVictim(0, 0, fx.blocks, 3), kInvalidBlock);
}

// ---------------------------------------------------------------------------
// End to end: on a churned drive, both leveling policies must keep the
// per-plane erase spread no worse than no leveling at all — and dynamic
// must strictly narrow it (LIFO reuse concentrates erases by design).
// ---------------------------------------------------------------------------

// Peak (max - min) erase count over every (chip, plane).
std::uint64_t
maxEraseSpread(const BlockManager &blocks)
{
    std::uint64_t spread = 0;
    for (int c = 0; c < blocks.chips(); ++c)
        for (int p = 0; p < blocks.planes(); ++p)
            spread = std::max(spread, blocks.maxEraseCount(c, p) -
                                          blocks.minEraseCount(c, p));
    return spread;
}

std::uint64_t
runSpread(const char *wear_level)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.wearLevel = wear_level;
    cfg.wlEraseDelta = 2;
    cfg.seed = 99;
    Ssd ssd(cfg);

    SyntheticConfig wc;
    wc.spec = workloadByName("ali.A");  // write-heavy churn
    wc.footprintPages = ssd.config().logicalPages();
    wc.numRequests = 6000;
    wc.seed = 31;
    ssd.run(generateTrace(wc));
    EXPECT_GT(ssd.metrics().erases, 0u);
    return maxEraseSpread(ssd.ftl().blockManager());
}

TEST(WearLevelSystem, LevelingNarrowsTheEraseSpread)
{
    const std::uint64_t none = runSpread("none");
    const std::uint64_t dynamic = runSpread("dynamic");
    const std::uint64_t static_wl = runSpread("static");
    EXPECT_GT(none, 0u);
    EXPECT_LT(dynamic, none);
    EXPECT_LE(static_wl, none);
}

} // namespace
} // namespace aero
