/**
 * @file
 * Unit tests for multi-plane erase composition (paper section 6) and the
 * trace file I/O round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/aero_scheme.hh"
#include "erase/baseline_ispe.hh"
#include "erase/multi_plane.hh"
#include "workload/synthetic.hh"

namespace aero
{
namespace
{

NandChip
makeChip(std::uint64_t seed = 1)
{
    return NandChip(ChipParams::tlc3d(), ChipGeometry{4, 8, 16}, seed);
}

TEST(MultiPlane, JointLatencyIsMaxNotSum)
{
    auto chip = makeChip(3);
    for (int b = 0; b < chip.numBlocks(); ++b)
        chip.ageBaseline(b, 2500);
    BaselineIspe scheme(chip, SchemeOptions{});
    const std::vector<BlockId> blocks = {0, 8, 16, 24};  // one per plane
    const auto out = MultiPlaneErase::eraseNow(scheme, blocks);
    ASSERT_EQ(out.perBlock.size(), 4u);
    Tick max_member = 0;
    for (const auto &o : out.perBlock) {
        EXPECT_TRUE(o.complete);
        max_member = std::max(max_member, o.latency);
    }
    EXPECT_EQ(out.latency, max_member);
    EXPECT_LT(out.latency, out.serialLatency);
}

TEST(MultiPlane, EarlyMembersAreInhibited)
{
    // Damage of a multi-plane erase must equal the sum of the members'
    // own needs: a finished block takes no pulses from later loops.
    auto joint_chip = makeChip(5);
    auto solo_chip = makeChip(5);
    for (int b = 0; b < joint_chip.numBlocks(); ++b) {
        joint_chip.ageBaseline(b, 2500);
        solo_chip.ageBaseline(b, 2500);
    }
    BaselineIspe joint_scheme(joint_chip, SchemeOptions{});
    BaselineIspe solo_scheme(solo_chip, SchemeOptions{});
    const std::vector<BlockId> blocks = {0, 8, 16, 24};
    const auto joint = MultiPlaneErase::eraseNow(joint_scheme, blocks);
    double solo_damage = 0.0;
    for (const BlockId b : blocks)
        solo_damage += eraseNow(solo_scheme, b).damage;
    EXPECT_NEAR(joint.totalDamage, solo_damage, 1e-9);
}

TEST(MultiPlane, WorksWithAeroAndKeepsReduction)
{
    auto base_chip = makeChip(7);
    auto aero_chip = makeChip(7);
    for (int b = 0; b < base_chip.numBlocks(); ++b) {
        base_chip.ageBaseline(b, 2500);
        aero_chip.ageBaseline(b, 2500);
    }
    BaselineIspe base(base_chip, SchemeOptions{});
    auto aero = makeEraseScheme(SchemeKind::Aero, aero_chip,
                                SchemeOptions{});
    const std::vector<BlockId> blocks = {1, 9, 17, 25};
    const auto jb = MultiPlaneErase::eraseNow(base, blocks);
    const auto ja = MultiPlaneErase::eraseNow(*aero, blocks);
    EXPECT_LT(ja.totalDamage, jb.totalDamage);
    EXPECT_LE(ja.latency, jb.latency + msToTicks(0.5));
}

TEST(MultiPlane, SingleBlockDegenerates)
{
    auto chip = makeChip(9);
    BaselineIspe scheme(chip, SchemeOptions{});
    const auto out = MultiPlaneErase::eraseNow(scheme, {2});
    EXPECT_EQ(out.latency, out.serialLatency);
    EXPECT_EQ(out.perBlock.size(), 1u);
}

TEST(MultiPlane, RejectsTooManyBlocks)
{
    auto chip = makeChip(11);
    BaselineIspe scheme(chip, SchemeOptions{});
    EXPECT_DEATH(MultiPlaneErase(scheme, {0, 1, 2, 3, 4}),
                 "more blocks than planes");
}

TEST(TraceIo, SaveLoadRoundTrip)
{
    SyntheticConfig cfg;
    cfg.spec = workloadByName("hm");
    cfg.footprintPages = 4096;
    cfg.numRequests = 500;
    const auto trace = generateTrace(cfg);
    const std::string path = "/tmp/aero_trace_roundtrip.csv";
    saveTrace(trace, path);
    const auto loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i].arrival, trace[i].arrival);
        EXPECT_EQ(loaded[i].op, trace[i].op);
        EXPECT_EQ(loaded[i].startPage, trace[i].startPage);
        EXPECT_EQ(loaded[i].pages, trace[i].pages);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_DEATH(loadTrace("/nonexistent/path/trace.csv"),
                 "cannot open");
}

TEST(TraceIo, MalformedRecordIsFatal)
{
    const std::string path = "/tmp/aero_trace_bad.csv";
    {
        FILE *f = std::fopen(path.c_str(), "w");
        std::fputs("timestamp_ns,op,start_page,pages\n", f);
        std::fputs("123,X,4,1\n", f);
        std::fclose(f);
    }
    EXPECT_DEATH(loadTrace(path), "malformed");
    std::remove(path.c_str());
}

} // namespace
} // namespace aero
