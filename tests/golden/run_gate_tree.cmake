# Whole-tree golden gate, one aero_diff invocation for all baselines:
#
#   cmake -DBENCH_DIR=<dir with bench binaries> -DDIFF=<aero_diff>
#         -DGOLDEN=<tests/golden> -DOUT=<scratch dir> [-DREL_TOL=<tol>]
#         -P run_gate_tree.cmake
#
# Regenerates every bench's --small artifact (one bench binary per
# <name>.json baseline in GOLDEN) into OUT, then runs `aero_diff GOLDEN
# OUT` in directory mode: every baseline is paired with its regenerated
# counterpart, unpaired files fail the gate, and the per-metric delta
# tables for every drifting bench land in one report. This is the
# single-command CI gate; per-bench granularity stays available as the
# golden.* CTest tests.
#
# Variant baselines don't map 1:1 onto a bench binary: the table below
# names the binary and extra flags that regenerate them (kept in sync
# with the golden.* tests and regen-golden in the top-level
# CMakeLists.txt).
#
# To refresh the baselines after an intentional change:
#   cmake --build build --target regen-golden

foreach(required BENCH_DIR DIFF GOLDEN OUT)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "run_gate_tree.cmake needs -D${required}=...")
    endif()
endforeach()
if(NOT DEFINED REL_TOL)
    # Same default as run_gate.cmake: absorbs last-ulp libm differences
    # in floating-point metrics while integer metrics compare exactly.
    set(REL_TOL 1e-6)
endif()

# file(GLOB RELATIVE) needs absolute paths to behave; accept relative
# arguments (resolved against the caller's working directory).
foreach(pathvar BENCH_DIR DIFF GOLDEN OUT)
    get_filename_component(${pathvar} "${${pathvar}}" ABSOLUTE)
endforeach()

file(REMOVE_RECURSE "${OUT}")
file(MAKE_DIRECTORY "${OUT}")

file(GLOB baselines RELATIVE "${GOLDEN}" "${GOLDEN}/*.json")
if(NOT baselines)
    message(FATAL_ERROR "no *.json baselines under '${GOLDEN}'")
endif()
list(SORT baselines)

# Variant table: baseline name -> (bench binary, extra flags).
set(variant_tenant_qos_slo_BENCH tenant_qos)
set(variant_tenant_qos_slo_ARGS --slo noisy)

foreach(baseline IN LISTS baselines)
    string(REPLACE ".json" "" bench "${baseline}")
    set(extra_args)
    if(DEFINED variant_${bench}_BENCH)
        set(extra_args ${variant_${bench}_ARGS})
        set(bench "${variant_${bench}_BENCH}")
    endif()
    set(bench_bin "${BENCH_DIR}/${bench}")
    if(NOT EXISTS "${bench_bin}")
        message(FATAL_ERROR
            "baseline '${baseline}' has no bench binary at "
            "'${bench_bin}' — build the bench target first")
    endif()
    execute_process(
        COMMAND "${bench_bin}" --small ${extra_args}
            --json "${OUT}/${baseline}"
        RESULT_VARIABLE bench_rc
        OUTPUT_QUIET)
    if(NOT bench_rc EQUAL 0)
        message(FATAL_ERROR "bench '${bench}' failed (exit ${bench_rc})")
    endif()
endforeach()

execute_process(
    COMMAND "${DIFF}" "${GOLDEN}" "${OUT}" --rel-tol "${REL_TOL}"
    RESULT_VARIABLE diff_rc
    OUTPUT_VARIABLE diff_out
    ECHO_OUTPUT_VARIABLE)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "regenerated artifacts drifted from ${GOLDEN} "
        "(aero_diff exit ${diff_rc}); if the change is intentional, "
        "rebuild the baselines with the 'regen-golden' target")
endif()
