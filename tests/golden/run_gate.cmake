# One golden regression-gate check, run as a CTest driver:
#
#   cmake -DBENCH=<bench-binary> -DDIFF=<aero_diff-binary>
#         -DGOLDEN=<checked-in baseline> -DOUT=<scratch artifact>
#         [-DREL_TOL=<tol>] [-DARGS=<extra bench flags>]
#         -P run_gate.cmake
#
# Regenerates the bench's --small artifact and diffs it against the
# checked-in baseline; any metric drifting beyond tolerance fails the
# test with aero_diff's per-metric delta table in the output. -DARGS
# passes extra flags (space-separated) to the bench, for baselines that
# pin a non-default configuration (e.g. `--slo noisy`).
#
# To refresh the baselines after an intentional change:
#   cmake --build build --target regen-golden

if(NOT DEFINED REL_TOL)
    # Zero would do in a fixed toolchain; the default absorbs last-ulp
    # libm differences in *floating-point* metrics across compilers
    # while still catching real drift. Integer metrics always compare
    # exactly — if a toolchain change flips a count, regenerate the
    # baselines (regen-golden) and review the delta.
    set(REL_TOL 1e-6)
endif()

set(extra_args)
if(DEFINED ARGS)
    separate_arguments(extra_args UNIX_COMMAND "${ARGS}")
endif()

execute_process(
    COMMAND "${BENCH}" --small ${extra_args} --json "${OUT}"
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "bench '${BENCH}' failed (exit ${bench_rc})")
endif()

execute_process(
    COMMAND "${DIFF}" "${GOLDEN}" "${OUT}" --rel-tol "${REL_TOL}"
    RESULT_VARIABLE diff_rc
    OUTPUT_VARIABLE diff_out
    ECHO_OUTPUT_VARIABLE)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "regenerated artifact drifted from ${GOLDEN} "
        "(aero_diff exit ${diff_rc}); if the change is intentional, "
        "rebuild the baselines with the 'regen-golden' target")
endif()
