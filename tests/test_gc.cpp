/**
 * @file
 * Unit tests for GC victim selection (ssd/gc.hh): the greedy policy's
 * min-valid choice and tie-breaking, the fifo baseline, and the
 * name-based policy registry the SsdConfig::gcPolicy knob resolves
 * through.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "ssd/config.hh"
#include "ssd/gc.hh"

namespace aero
{
namespace
{

/**
 * A plane with three full blocks holding a controlled number of valid
 * pages each: fill blocks back-to-back through the BlockManager, then
 * invalidate LPNs until block i keeps `valid[i]` pages.
 */
struct PlaneFixture
{
    SsdConfig cfg = SsdConfig::tiny();
    BlockManager blocks;
    PageMapping mapping;
    std::vector<BlockId> full;

    explicit PlaneFixture(const std::vector<int> &valid)
        : blocks(cfg),
          mapping(cfg.logicalPages(), cfg.totalChips(),
                  cfg.blocksPerChip(), cfg.geometry.pagesPerBlock)
    {
        Lpn next_lpn = 0;
        for (const int keep : valid) {
            BlockId blk = kInvalidBlock;
            int page = 0;
            for (int i = 0; i < cfg.geometry.pagesPerBlock; ++i) {
                AERO_CHECK(blocks.allocate(0, 0, blk, page),
                           "fixture plane ran out of blocks");
                mapping.update(next_lpn++, mapping.encode(0, blk, page));
            }
            full.push_back(blk);
            // Invalidate from the tail so `keep` valid pages remain.
            for (int i = 0; i < cfg.geometry.pagesPerBlock - keep; ++i)
                mapping.invalidateLpn(next_lpn - 1 - i);
        }
    }
};

TEST(GcPolicy, GreedyPicksFewestValidPages)
{
    PlaneFixture fx({5, 2, 9});
    GreedyGcPolicy greedy;
    EXPECT_EQ(greedy.pickVictim(fx.mapping, fx.blocks, 0, 0), fx.full[1]);
}

TEST(GcPolicy, GreedyBreaksTiesTowardLowestBlockId)
{
    PlaneFixture fx({4, 4, 4});
    GreedyGcPolicy greedy;
    const BlockId victim =
        greedy.pickVictim(fx.mapping, fx.blocks, 0, 0);
    EXPECT_EQ(victim, *std::min_element(fx.full.begin(), fx.full.end()));
}

TEST(GcPolicy, FifoPicksLowestBlockIdRegardlessOfValidCount)
{
    PlaneFixture fx({9, 1, 5});
    FifoGcPolicy fifo;
    EXPECT_EQ(fifo.pickVictim(fx.mapping, fx.blocks, 0, 0),
              *std::min_element(fx.full.begin(), fx.full.end()));
}

TEST(GcPolicy, NoFullBlocksMeansNoVictim)
{
    const SsdConfig cfg = SsdConfig::tiny();
    BlockManager blocks(cfg);
    PageMapping mapping(cfg.logicalPages(), cfg.totalChips(),
                        cfg.blocksPerChip(), cfg.geometry.pagesPerBlock);
    GreedyGcPolicy greedy;
    FifoGcPolicy fifo;
    EXPECT_EQ(greedy.pickVictim(mapping, blocks, 0, 0), kInvalidBlock);
    EXPECT_EQ(fifo.pickVictim(mapping, blocks, 0, 0), kInvalidBlock);
}

TEST(GcPolicy, RegistryRoundTripsNames)
{
    const auto greedy = makeGcPolicy("greedy");
    const auto fifo = makeGcPolicy("fifo");
    EXPECT_STREQ(greedy->name(), "greedy");
    EXPECT_STREQ(fifo->name(), "fifo");
    EXPECT_NE(std::string(gcPolicyNames()).find("greedy"),
              std::string::npos);
    EXPECT_NE(std::string(gcPolicyNames()).find("fifo"),
              std::string::npos);
}

TEST(GcPolicy, UnknownNameIsFatalAndListsChoices)
{
    EXPECT_DEATH((void)makeGcPolicy("lru"), "greedy");
}

} // namespace
} // namespace aero
