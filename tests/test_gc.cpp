/**
 * @file
 * GC victim-selection battery (ssd/gc.hh + ssd/line_manager.hh): policy
 * scoring units, the name registry, the fifo-log reuse-cycle regression,
 * a randomized differential check of the incremental victim heap against
 * a brute-force rescan (10k sequences per registered policy), and a
 * 50k-op mixed host/GC/WL fuzz asserting mapping bijectivity, free-page
 * accounting and wear-count conservation after every reclamation cycle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "ssd/block_manager.hh"
#include "ssd/config.hh"
#include "ssd/gc.hh"
#include "ssd/line_manager.hh"
#include "ssd/mapping.hh"
#include "ssd/wear_level.hh"

namespace aero
{
namespace
{

GcLineInfo
line(BlockId block, int valid, int ppb, std::uint64_t open_seq,
     std::uint64_t ec)
{
    GcLineInfo info;
    info.block = block;
    info.validPages = valid;
    info.pagesPerBlock = ppb;
    info.openSeq = open_seq;
    info.eraseCount = ec;
    return info;
}

TEST(GcPolicyScore, GreedyOrdersByValidPagesAndBreaksTiesByBlockId)
{
    GreedyGcPolicy greedy;
    EXPECT_LT(greedy.score(line(0, 2, 32, 9, 0)),
              greedy.score(line(1, 5, 32, 1, 0)));
    // Equal valid counts: the lower block id must win the tie-break so
    // the heap reproduces the old ascending plane scan exactly.
    EXPECT_EQ(greedy.score(line(3, 4, 32, 1, 0)),
              greedy.score(line(7, 4, 32, 2, 0)));
    EXPECT_LT(greedy.tieBreak(line(3, 4, 32, 9, 0)),
              greedy.tieBreak(line(7, 4, 32, 1, 0)));
}

TEST(GcPolicyScore, CostBenefitPrefersEmptierAndYoungerBlocks)
{
    CostBenefitGcPolicy cb;
    // Fewer valid pages -> cheaper migration and more reclaimed space.
    EXPECT_LT(cb.score(line(0, 2, 32, 1, 0)), cb.score(line(1, 20, 32, 1, 0)));
    // Same occupancy but more wear -> worse victim.
    EXPECT_LT(cb.score(line(0, 8, 32, 1, 1)), cb.score(line(1, 8, 32, 1, 5)));
    // An empty block scores zero regardless of wear.
    EXPECT_EQ(cb.score(line(0, 0, 32, 1, 100)), 0.0);
}

TEST(GcPolicyScore, FifoLogOrdersByFillGeneration)
{
    FifoLogGcPolicy fifo;
    EXPECT_LT(fifo.score(line(9, 30, 32, 1, 0)),
              fifo.score(line(0, 0, 32, 2, 0)));
}

TEST(GcPolicy, RegistryRoundTripsNames)
{
    EXPECT_STREQ(makeGcPolicy("greedy")->name(), "greedy");
    EXPECT_STREQ(makeGcPolicy("cost-benefit")->name(), "cost-benefit");
    EXPECT_STREQ(makeGcPolicy("fifo-log")->name(), "fifo-log");
    // The old "fifo" spelling stays accepted as an alias.
    EXPECT_STREQ(makeGcPolicy("fifo")->name(), "fifo-log");
    const std::string names = gcPolicyNames();
    EXPECT_NE(names.find("greedy"), std::string::npos);
    EXPECT_NE(names.find("cost-benefit"), std::string::npos);
    EXPECT_NE(names.find("fifo-log"), std::string::npos);
}

TEST(GcPolicy, UnknownNameIsFatalAndListsChoices)
{
    EXPECT_DEATH((void)makeGcPolicy("lru"),
                 "greedy, cost-benefit, fifo-log");
}

/**
 * A tiny drive's worth of BlockManager + LineManager + PageMapping wired
 * together the way the FTL wires them, with functional write/trim/GC
 * helpers mirroring Ftl::remap() and functionalGc().
 */
struct LineFixture
{
    SsdConfig cfg;
    std::unique_ptr<GcPolicy> policy;
    BlockManager blocks;
    LineManager lines;
    PageMapping mapping;
    Lpn nextLpn = 0;

    explicit LineFixture(const std::string &policy_name = "greedy")
        : cfg(SsdConfig::tiny()), policy(makeGcPolicy(policy_name)),
          blocks(cfg), lines(cfg, *policy, blocks),
          mapping(cfg.logicalPages(), cfg.totalChips(), cfg.blocksPerChip(),
                  cfg.geometry.pagesPerBlock)
    {
        blocks.setLineManager(&lines);
    }

    int pagesPerBlock() const { return cfg.geometry.pagesPerBlock; }

    /** Mirror of Ftl::remap(): map and report both deltas to the lines. */
    void
    remap(Lpn lpn, Ppn ppn)
    {
        const Ppn old = mapping.update(lpn, ppn);
        const PpnParts parts = mapping.decode(ppn);
        lines.onPageMapped(parts.chip, parts.block);
        if (old != kInvalidPpn) {
            const PpnParts prev = mapping.decode(old);
            lines.onPageInvalidated(prev.chip, prev.block);
        }
    }

    /** @return false when the plane is out of user space. */
    bool
    writePage(Lpn lpn, int chip, int plane)
    {
        BlockId blk = kInvalidBlock;
        int page = 0;
        if (!blocks.allocate(chip, plane, blk, page))
            return false;
        remap(lpn, mapping.encode(chip, blk, page));
        return true;
    }

    /** Write pagesPerBlock fresh LPNs; @return the block they filled. */
    BlockId
    fillBlock(int chip, int plane)
    {
        BlockId blk = kInvalidBlock;
        for (int i = 0; i < pagesPerBlock(); ++i) {
            int page = 0;
            AERO_CHECK(blocks.allocate(chip, plane, blk, page),
                       "fixture plane ran out of blocks");
            remap(nextLpn++, mapping.encode(chip, blk, page));
        }
        return blk;
    }

    void
    trim(Lpn lpn)
    {
        const Ppn old = mapping.lookup(lpn);
        if (old == kInvalidPpn)
            return;
        mapping.invalidateLpn(lpn);
        const PpnParts parts = mapping.decode(old);
        lines.onPageInvalidated(parts.chip, parts.block);
    }

    /** Functional GC: migrate every valid page off `victim`, erase it. */
    void
    collect(int chip, BlockId victim)
    {
        const int plane = blocks.planeOf(victim);
        for (int page = 0; page < pagesPerBlock(); ++page) {
            const Lpn lpn =
                mapping.reverseLookup(mapping.encode(chip, victim, page));
            if (lpn == kInvalidLpn)
                continue;
            BlockId dst = kInvalidBlock;
            int dst_page = 0;
            AERO_CHECK(blocks.allocate(chip, plane, dst, dst_page, true),
                       "GC found no relocation target");
            remap(lpn, mapping.encode(chip, dst, dst_page));
        }
        mapping.onBlockErased(chip, victim);
        blocks.onBlockErased(chip, victim);
    }
};

TEST(LineManager, GreedyPicksFewestValidPages)
{
    LineFixture fx;
    const std::vector<int> keep = {5, 2, 9};
    std::vector<BlockId> full;
    for (const int k : keep) {
        full.push_back(fx.fillBlock(0, 0));
        for (int i = 0; i < fx.pagesPerBlock() - k; ++i)
            fx.trim(fx.nextLpn - 1 - static_cast<Lpn>(i));
    }
    EXPECT_EQ(fx.lines.pickVictim(0, 0), full[1]);
    EXPECT_EQ(fx.lines.bruteForceVictim(0, 0), full[1]);
}

TEST(LineManager, GreedyBreaksTiesTowardLowestBlockId)
{
    LineFixture fx;
    std::vector<BlockId> full;
    for (int b = 0; b < 3; ++b) {
        full.push_back(fx.fillBlock(0, 0));
        for (int i = 0; i < fx.pagesPerBlock() - 4; ++i)
            fx.trim(fx.nextLpn - 1 - static_cast<Lpn>(i));
    }
    EXPECT_EQ(fx.lines.pickVictim(0, 0),
              *std::min_element(full.begin(), full.end()));
}

TEST(LineManager, NoFullBlocksMeansNoVictim)
{
    LineFixture fx;
    EXPECT_EQ(fx.lines.pickVictim(0, 0), kInvalidBlock);
    EXPECT_EQ(fx.lines.bruteForceVictim(0, 0), kInvalidBlock);
    EXPECT_EQ(fx.lines.fullCount(0, 0), 0u);
    // An Open (not yet Full) block is not a candidate either.
    BlockId blk = kInvalidBlock;
    int page = 0;
    ASSERT_TRUE(fx.blocks.allocate(0, 0, blk, page));
    EXPECT_EQ(fx.lines.pickVictim(0, 0), kInvalidBlock);
}

TEST(LineManager, ErasedVictimLeavesTheHeap)
{
    LineFixture fx;
    const BlockId a = fx.fillBlock(0, 0);
    const BlockId b = fx.fillBlock(0, 0);
    // Empty block a entirely so collecting it migrates nothing.
    for (Lpn lpn = 0; lpn < static_cast<Lpn>(fx.pagesPerBlock()); ++lpn)
        fx.trim(lpn);
    ASSERT_EQ(fx.lines.pickVictim(0, 0), a);
    fx.collect(0, a);
    EXPECT_EQ(fx.lines.pickVictim(0, 0), b);
    const auto remaining = fx.lines.fullBlocks(0, 0);
    EXPECT_EQ(remaining, std::vector<BlockId>{b});
}

/**
 * Reuse-cycle regression: the old fifo policy ordered victims by numeric
 * block id, which replays an erased-and-refilled low-id block ahead of
 * data written long before it. fifo-log must pick the oldest *fill*.
 */
TEST(LineManager, FifoLogSurvivesBlockReuse)
{
    LineFixture fx("fifo-log");
    const BlockId a = fx.fillBlock(0, 0);
    const BlockId b = fx.fillBlock(0, 0);
    ASSERT_LT(a, b);
    // Invalidate and erase a, then refill it: a's fill is now the newest.
    for (Lpn lpn = 0; lpn < static_cast<Lpn>(fx.pagesPerBlock()); ++lpn)
        fx.trim(lpn);
    fx.collect(0, a);
    const BlockId a_again = fx.fillBlock(0, 0);
    ASSERT_EQ(a_again, a);  // LIFO free list hands the same block back
    const BlockId c = fx.fillBlock(0, 0);
    ASSERT_NE(c, a);
    // Block-id order would pick a; log order must pick b.
    EXPECT_EQ(fx.lines.pickVictim(0, 0), b);
    EXPECT_LT(fx.lines.lineInfo(0, b).openSeq,
              fx.lines.lineInfo(0, a).openSeq);
}

TEST(LineManager, TracksValidCountsAgainstTheMapping)
{
    LineFixture fx;
    for (int b = 0; b < 4; ++b)
        fx.fillBlock(0, 0);
    std::mt19937_64 rng(17);
    for (int i = 0; i < 64; ++i)
        fx.trim(rng() % fx.nextLpn);
    for (const BlockId blk : fx.lines.fullBlocks(0, 0))
        EXPECT_EQ(fx.lines.trackedValid(0, blk),
                  fx.mapping.validPages(0, blk));
}

/**
 * Differential engine: one randomized churn step (overwrite / trim /
 * GC), then require the incremental heap and the brute-force rescan to
 * agree on every plane. Each step is one randomized invalidation
 * sequence against a drive state no other step has seen.
 */
void
differentialChurn(const std::string &policy_name, std::uint64_t seed,
                  int steps)
{
    LineFixture fx(policy_name);
    std::mt19937_64 rng(seed);
    // Start from a mostly-written drive so Full blocks exist early.
    const Lpn span = fx.cfg.logicalPages();
    for (Lpn lpn = 0; lpn < span / 2; ++lpn) {
        const int chip = static_cast<int>(rng() % fx.cfg.totalChips());
        const int plane = static_cast<int>(rng() % fx.cfg.geometry.planes);
        ASSERT_TRUE(fx.writePage(lpn, chip, plane));
    }
    for (int step = 0; step < steps; ++step) {
        const int chip = static_cast<int>(rng() % fx.cfg.totalChips());
        const int plane = static_cast<int>(rng() % fx.cfg.geometry.planes);
        // Reclaim ahead of the writes so allocation never wedges.
        if (fx.blocks.freeBlocks(chip, plane) <=
            fx.cfg.gcLowWatermark) {
            const BlockId victim = fx.lines.pickVictim(chip, plane);
            if (victim != kInvalidBlock)
                fx.collect(chip, victim);
        }
        const std::uint64_t dice = rng() % 10;
        if (dice < 7) {
            ASSERT_TRUE(fx.writePage(rng() % span, chip, plane));
        } else if (dice < 9) {
            fx.trim(rng() % span);
        } else {
            const BlockId victim = fx.lines.pickVictim(chip, plane);
            if (victim != kInvalidBlock)
                fx.collect(chip, victim);
        }
        for (int c = 0; c < fx.cfg.totalChips(); ++c) {
            for (int p = 0; p < fx.cfg.geometry.planes; ++p) {
                ASSERT_EQ(fx.lines.pickVictim(c, p),
                          fx.lines.bruteForceVictim(c, p))
                    << policy_name << " diverged at step " << step
                    << " chip " << c << " plane " << p;
            }
        }
    }
}

TEST(LineManagerDifferential, GreedyMatchesBruteForceOver10kSequences)
{
    differentialChurn("greedy", 0xAE01, 10000);
}

TEST(LineManagerDifferential, CostBenefitMatchesBruteForceOver10kSequences)
{
    differentialChurn("cost-benefit", 0xAE02, 10000);
}

TEST(LineManagerDifferential, FifoLogMatchesBruteForceOver10kSequences)
{
    differentialChurn("fifo-log", 0xAE03, 10000);
}

/** Ring buffer of the ops leading up to a fuzz failure. */
struct OpLog
{
    std::deque<std::string> ops;
    std::uint64_t dropped = 0;

    void
    push(std::string op)
    {
        if (ops.size() >= 48) {
            ops.pop_front();
            dropped += 1;
        }
        ops.push_back(std::move(op));
    }

    std::string
    dump() const
    {
        std::ostringstream os;
        os << "last " << ops.size() << " ops (" << dropped
           << " earlier ops elided):\n";
        for (const auto &op : ops)
            os << "  " << op << "\n";
        return os.str();
    }
};

/**
 * The fuzz's whole-drive invariant check:
 *  - mapping bijectivity: L2P and P2L are exact inverses;
 *  - valid-page accounting: the line manager, the mapping and the
 *    global mapped count all agree;
 *  - free-page accounting: the free lists match the block states;
 *  - wear conservation: per-block erase counts are monotone and sum to
 *    the drive-wide total.
 */
void
checkFuzzInvariants(LineFixture &fx,
                    std::vector<std::uint64_t> &last_erase_counts,
                    const OpLog &log)
{
    const int chips = fx.cfg.totalChips();
    const int planes = fx.cfg.geometry.planes;
    const int blocks_per_chip = fx.cfg.blocksPerChip();
    // Bijectivity, forward: every mapped LPN owns the PPA it points at.
    std::uint64_t mapped = 0;
    for (Lpn lpn = 0; lpn < fx.cfg.logicalPages(); ++lpn) {
        const Ppn ppn = fx.mapping.lookup(lpn);
        if (ppn == kInvalidPpn)
            continue;
        mapped += 1;
        ASSERT_EQ(fx.mapping.reverseLookup(ppn), lpn)
            << "L2P/P2L diverged at lpn " << lpn << "\n" << log.dump();
    }
    ASSERT_EQ(mapped, fx.mapping.mappedCount()) << log.dump();
    std::uint64_t total_valid = 0;
    std::uint64_t total_erases = 0;
    for (int c = 0; c < chips; ++c) {
        for (BlockId b = 0; b < static_cast<BlockId>(blocks_per_chip);
             ++b) {
            // Bijectivity, reverse: every owned PPA is pointed back at.
            for (int pg = 0; pg < fx.pagesPerBlock(); ++pg) {
                const Ppn ppn = fx.mapping.encode(c, b, pg);
                const Lpn lpn = fx.mapping.reverseLookup(ppn);
                if (lpn == kInvalidLpn)
                    continue;
                ASSERT_EQ(fx.mapping.lookup(lpn), ppn)
                    << "P2L names an lpn mapped elsewhere\n" << log.dump();
            }
            const int valid = fx.mapping.validPages(c, b);
            total_valid += static_cast<std::uint64_t>(valid);
            ASSERT_EQ(fx.lines.trackedValid(c, b), valid)
                << "line manager lost a valid-count delta on chip " << c
                << " block " << b << "\n" << log.dump();
            // A Free block must hold no valid data.
            if (fx.blocks.state(c, b) == BlockState::Free) {
                ASSERT_EQ(valid, 0) << log.dump();
            }
            const std::uint64_t ec = fx.blocks.eraseCount(c, b);
            auto &last = last_erase_counts[static_cast<std::size_t>(c) *
                                               blocks_per_chip +
                                           b];
            ASSERT_GE(ec, last)
                << "erase count went backwards\n" << log.dump();
            last = ec;
            total_erases += ec;
        }
        // Free-list sizes match the per-block states.
        for (int p = 0; p < planes; ++p) {
            int free_state = 0;
            for (int b = 0; b < fx.cfg.geometry.blocksPerPlane; ++b) {
                const auto id = static_cast<BlockId>(
                    p * fx.cfg.geometry.blocksPerPlane + b);
                if (fx.blocks.state(c, id) == BlockState::Free)
                    free_state += 1;
            }
            ASSERT_EQ(fx.blocks.freeBlocks(c, p), free_state)
                << "free list disagrees with block states\n" << log.dump();
        }
    }
    ASSERT_EQ(total_valid, fx.mapping.mappedCount()) << log.dump();
    ASSERT_EQ(total_erases, fx.blocks.totalErases()) << log.dump();
}

/**
 * 50k randomized ops of mixed host, GC and wear-leveling traffic. The
 * wear policy is wired for real (dynamic allocation choice) and static-
 * style cold migrations are injected; the invariants above are checked
 * after every reclamation cycle.
 */
TEST(GcFuzz, MixedTrafficPreservesInvariantsOver50kOps)
{
    LineFixture fx("greedy");
    const auto wear = makeWearLevelPolicy("dynamic");
    fx.blocks.setWearPolicy(wear.get());
    StaticWearLevelPolicy cold_picker;
    std::mt19937_64 rng(0xA3205024);
    OpLog log;
    std::vector<std::uint64_t> last_erase_counts(
        static_cast<std::size_t>(fx.cfg.totalChips()) *
            fx.cfg.blocksPerChip(),
        0);
    const Lpn span = fx.cfg.logicalPages();
    auto note = [&](const char *what, int chip, int plane,
                    std::uint64_t detail) {
        std::ostringstream os;
        os << what << " chip=" << chip << " plane=" << plane << " "
           << detail;
        log.push(os.str());
    };
    for (std::uint64_t op = 0; op < 50000; ++op) {
        const int chip = static_cast<int>(rng() % fx.cfg.totalChips());
        const int plane = static_cast<int>(rng() % fx.cfg.geometry.planes);
        if (fx.blocks.freeBlocks(chip, plane) <= fx.cfg.gcLowWatermark) {
            const BlockId victim = fx.lines.pickVictim(chip, plane);
            if (victim != kInvalidBlock) {
                note("gc", chip, plane, victim);
                fx.collect(chip, victim);
                ASSERT_NO_FATAL_FAILURE(
                    checkFuzzInvariants(fx, last_erase_counts, log));
            }
        }
        const std::uint64_t dice = rng() % 100;
        if (dice < 80) {
            const Lpn lpn = rng() % span;
            note("write", chip, plane, lpn);
            ASSERT_TRUE(fx.writePage(lpn, chip, plane)) << log.dump();
        } else if (dice < 90) {
            const Lpn lpn = rng() % span;
            note("trim", chip, plane, lpn);
            fx.trim(lpn);
        } else {
            // Wear-leveling traffic: relocate the cold block the static
            // policy would pick at an aggressive spread threshold.
            const BlockId cold =
                cold_picker.pickColdVictim(chip, plane, fx.blocks, 1);
            if (cold != kInvalidBlock &&
                fx.blocks.freeBlocks(chip, plane) >
                    fx.cfg.gcLowWatermark) {
                note("wear-level", chip, plane, cold);
                fx.collect(chip, cold);
                ASSERT_NO_FATAL_FAILURE(
                    checkFuzzInvariants(fx, last_erase_counts, log));
            }
        }
    }
    ASSERT_NO_FATAL_FAILURE(
        checkFuzzInvariants(fx, last_erase_counts, log));
    // The run must have actually exercised reclamation.
    EXPECT_GT(fx.blocks.totalErases(), 0u);
}

} // namespace
} // namespace aero
