/**
 * @file
 * Tests for the sweep checkpoint/resume subsystem: crash recovery from
 * torn journal tails, bit-identical resumed artifacts at 1 and 4
 * threads (in both directions across thread counts), loud fingerprint
 * mismatches naming the offending spec field, and the exhaustive
 * SweepSpec::index()-vs-expand() cross-check the axis-keyed journal
 * relies on.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "exp/checkpoint.hh"
#include "exp/report.hh"
#include "exp/sweep.hh"
#include "workload/presets.hh"

namespace aero
{
namespace
{

/** The tiny 2x2 grid every resume test replays (seconds, not hours). */
SweepSpec
tinySpec()
{
    return SweepBuilder()
        .workloads({"prxy", "hm"})
        .schemes({SchemeKind::Baseline, SchemeKind::Aero})
        .pec(2500.0)
        .requests(1500)
        .baseConfig(SsdConfig::tiny())
        .build();
}

std::string
tempJournal(const std::string &name)
{
    const auto path =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove(path);
    return path.string();
}

/** The canonical artifact body two runs are compared by. */
std::string
artifactOf(const SweepSpec &spec, const std::vector<SimResult> &results)
{
    return sweepReport(spec, results).dump(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
}

/** Chop the last @p bytes off a file — a torn final write. */
void
tearTail(const std::string &path, std::uintmax_t bytes)
{
    const auto size = std::filesystem::file_size(path);
    ASSERT_GT(size, bytes);
    std::filesystem::resize_file(path, size - bytes);
}

/** Keep only the first @p n lines — a run killed between records. */
void
keepLines(const std::string &path, std::size_t n)
{
    const std::string text = readFile(path);
    std::size_t pos = 0;
    for (std::size_t line = 0; line < n; ++line) {
        pos = text.find('\n', pos);
        ASSERT_NE(pos, std::string::npos);
        pos += 1;
    }
    writeFile(path, text.substr(0, pos));
}

// --------------------------------------------------------------------------
// Crash recovery
// --------------------------------------------------------------------------

TEST(CheckpointResume, TornTailResumesBitIdentical)
{
    const SweepSpec spec = tinySpec();
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));

    for (const int resumeThreads : {1, 4}) {
        const std::string path = tempJournal("torn.jsonl");
        {
            SweepCheckpoint ckpt(path, spec);
            SweepRunner(1).run(spec, ckpt);
        }
        // Tear the journal mid-record, as a crash during the final
        // write would: the last record loses its tail.
        tearTail(path, 41);
        SweepCheckpoint resumed(path, spec);
        EXPECT_EQ(resumed.cachedCount(), spec.size() - 1);
        const auto results = SweepRunner(resumeThreads).run(spec, resumed);
        EXPECT_EQ(artifactOf(spec, results), reference)
            << "resume at " << resumeThreads << " threads drifted";
    }
}

TEST(CheckpointResume, FullyJournaledRunSimulatesNothing)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("full.jsonl");
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    SweepCheckpoint reopened(path, spec);
    EXPECT_EQ(reopened.cachedCount(), spec.size());
    std::size_t simulated = 0;
    const auto results = SweepRunner(4).run(
        spec, reopened,
        [&](std::size_t, std::size_t, const SimResult &) {
            simulated += 1;
        });
    EXPECT_EQ(simulated, 0u);
    EXPECT_EQ(artifactOf(spec, results), reference);
}

TEST(CheckpointResume, ResumeAfterTruncationIsIdempotent)
{
    // Crash, resume, crash again, resume again: the journal must stay
    // parseable and the final artifact must still match the reference.
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("twice.jsonl");
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    tearTail(path, 17);
    {
        SweepCheckpoint resumed(path, spec);
        SweepRunner(1).run(spec, resumed);
    }
    tearTail(path, 23);
    SweepCheckpoint again(path, spec);
    const auto results = SweepRunner(1).run(spec, again);
    EXPECT_EQ(artifactOf(spec, results), reference);
}

// --------------------------------------------------------------------------
// Thread-count cross-resume
// --------------------------------------------------------------------------

TEST(CheckpointResume, CrossesThreadCountsInBothDirections)
{
    const SweepSpec spec = tinySpec();
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));

    // A journal written under AERO_SWEEP_THREADS=4 resumes under =1,
    // and vice versa; both reproduce the uncheckpointed artifact.
    const std::pair<const char *, const char *> directions[] = {
        {"4", "1"}, {"1", "4"}};
    for (const auto &[writer, resumer] : directions) {
        const std::string path = tempJournal("cross.jsonl");
        setenv("AERO_SWEEP_THREADS", writer, 1);
        {
            SweepCheckpoint ckpt(path, spec);
            SweepRunner().run(spec, ckpt);
        }
        // Kill the run after two completed records (a 4-thread writer
        // journals in completion order, so these need not be the first
        // two points in spec order).
        keepLines(path, 3);
        setenv("AERO_SWEEP_THREADS", resumer, 1);
        SweepCheckpoint resumed(path, spec);
        EXPECT_EQ(resumed.cachedCount(), 2u);
        const auto results = SweepRunner().run(spec, resumed);
        unsetenv("AERO_SWEEP_THREADS");
        EXPECT_EQ(artifactOf(spec, results), reference)
            << "journal written at " << writer
            << " threads, resumed at " << resumer;
    }
}

// --------------------------------------------------------------------------
// Fingerprint mismatches
// --------------------------------------------------------------------------

TEST(CheckpointFingerprint, ChangedRequestsDiesNamingRequests)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("mismatch_requests.jsonl");
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    SweepSpec changed = spec;
    changed.requests = 2000;
    EXPECT_DEATH(SweepCheckpoint(path, changed),
                 "different sweep spec.*requests");
}

TEST(CheckpointFingerprint, ChangedAxisDiesNamingAxis)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("mismatch_axis.jsonl");
    {
        SweepCheckpoint ckpt(path, spec);  // header only, no results
    }
    SweepSpec moreWorkloads = spec;
    moreWorkloads.workloads.push_back("usr");
    EXPECT_DEATH(SweepCheckpoint(path, moreWorkloads),
                 "different sweep spec.*workloads");

    SweepSpec otherSchemes = spec;
    otherSchemes.schemes = {SchemeKind::Baseline, SchemeKind::Dpes};
    EXPECT_DEATH(SweepCheckpoint(path, otherSchemes),
                 "different sweep spec.*schemes");

    SweepSpec otherSeeds = spec;
    otherSeeds.seeds = {11};
    EXPECT_DEATH(SweepCheckpoint(path, otherSeeds),
                 "different sweep spec.*seeds");
}

TEST(CheckpointFingerprint, WrongSchemaDies)
{
    const std::string path = tempJournal("not_a_journal.jsonl");
    writeFile(path, "{\"schema\":\"aero-sweep/1\",\"results\":[]}\n");
    EXPECT_DEATH(SweepCheckpoint(path, tinySpec()),
                 "not an aero-checkpoint/1 journal");
}

TEST(CheckpointFingerprint, NonJournalFileIsNeverTruncated)
{
    // Torn-tail tolerance must not extend to the header line: pointing
    // --checkpoint at some precious non-journal file has to fail
    // loudly, not truncate it to zero and write a header over it.
    const std::string path = tempJournal("precious.txt");
    const std::string contents = "my precious data, not a checkpoint";
    writeFile(path, contents);
    EXPECT_DEATH(SweepCheckpoint(path, tinySpec()),
                 "not a sweep journal");
    EXPECT_EQ(readFile(path), contents);
}

TEST(CheckpointFingerprint, CorruptMidJournalDies)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("corrupt.jsonl");
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    // Damage a record in the middle: tolerance is for torn *tails*
    // only, anything else must fail loudly.
    std::string text = readFile(path);
    const std::size_t mid = text.find("\n{") + 1;
    text[mid] = '#';
    writeFile(path, text);
    EXPECT_DEATH(SweepCheckpoint(path, spec), "corrupt");
}

TEST(CheckpointFingerprint, ForeignRecordFingerprintDies)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("foreign.jsonl");
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    // Splice a record stamped with another sweep's fingerprint.
    std::string text = readFile(path);
    const std::size_t firstRecord = text.find("\n{") + 1;
    std::string forged = text.substr(firstRecord);
    forged = forged.substr(0, forged.find('\n') + 1);
    const std::size_t fpAt = forged.find("\"fingerprint\":\"") +
                             std::string("\"fingerprint\":\"").size();
    forged[fpAt] = forged[fpAt] == '0' ? '1' : '0';
    writeFile(path, text + forged);
    EXPECT_DEATH(SweepCheckpoint(path, spec),
                 "different sweep");
}

// --------------------------------------------------------------------------
// SweepSpec::index() vs expand() — the invariant axis-keyed resume
// (and every bench's printed table) depends on.
// --------------------------------------------------------------------------

TEST(SweepSpecIndex, AgreesWithExpandOverRandomizedGrids)
{
    std::mt19937 rng(20240731);
    const auto &table3 = table3Workloads();
    const std::vector<SchemeKind> schemePool = allSchemes();
    const std::vector<SuspensionMode> suspPool = {
        SuspensionMode::None, SuspensionMode::MidSegment};

    for (int trial = 0; trial < 25; ++trial) {
        // A distinct prefix of each axis pool, randomized lengths.
        const auto len = [&](std::size_t max) {
            return 1 + rng() % max;
        };
        SweepSpec spec;
        spec.workloads.clear();
        for (std::size_t i = 0; i < len(4); ++i)
            spec.workloads.push_back(table3[i].name);
        spec.schemes.assign(schemePool.begin(),
                            schemePool.begin() +
                                static_cast<long>(len(schemePool.size())));
        spec.pecs.clear();
        for (std::size_t i = 0; i < len(3); ++i)
            spec.pecs.push_back(500.0 + 1000.0 * static_cast<double>(i));
        spec.suspensions.assign(
            suspPool.begin(),
            suspPool.begin() + static_cast<long>(len(2)));
        spec.mispredictionRates.clear();
        for (std::size_t i = 0; i < len(3); ++i)
            spec.mispredictionRates.push_back(0.05 *
                                              static_cast<double>(i));
        spec.rberRequirements.clear();
        for (std::size_t i = 0; i < len(3); ++i)
            spec.rberRequirements.push_back(63 - static_cast<int>(i));
        spec.seeds.clear();
        for (std::size_t i = 0; i < len(3); ++i)
            spec.seeds.push_back(7 + 1000 * i);

        const auto points = spec.expand();
        ASSERT_EQ(points.size(), spec.size());
        // Decompose every flat position into per-axis indices with an
        // independent mixed-radix walk (seed varies fastest), then
        // require index() to invert it and expand() to have put the
        // matching axis values there.
        const std::size_t sizes[7] = {
            spec.pecs.size(),          spec.suspensions.size(),
            spec.workloads.size(),     spec.schemes.size(),
            spec.mispredictionRates.size(),
            spec.rberRequirements.size(), spec.seeds.size()};
        for (std::size_t flat = 0; flat < points.size(); ++flat) {
            std::size_t ix[7];
            std::size_t rem = flat;
            for (int axis = 6; axis >= 0; --axis) {
                ix[axis] = rem % sizes[axis];
                rem /= sizes[axis];
            }
            ASSERT_EQ(spec.index(ix[0], ix[1], ix[2], ix[3], ix[4],
                                 ix[5], ix[6]),
                      flat)
                << "trial " << trial;
            const SimPoint &pt = points[flat];
            ASSERT_EQ(pt.pec, spec.pecs[ix[0]]);
            ASSERT_EQ(pt.suspension, spec.suspensions[ix[1]]);
            ASSERT_EQ(pt.workload, spec.workloads[ix[2]]);
            ASSERT_EQ(pt.scheme, spec.schemes[ix[3]]);
            ASSERT_EQ(pt.mispredictionRate,
                      spec.mispredictionRates[ix[4]]);
            ASSERT_EQ(pt.rberRequirement,
                      spec.rberRequirements[ix[5]]);
            ASSERT_EQ(pt.seed, spec.seeds[ix[6]]);
        }
    }
}

// --------------------------------------------------------------------------
// Round-trip plumbing
// --------------------------------------------------------------------------

TEST(SimResultJson, RoundTripsExactly)
{
    SimResult r;
    r.point.workload = "prn";
    r.point.scheme = SchemeKind::Dpes;
    r.point.pec = 2500.0;
    r.point.suspension = SuspensionMode::None;
    r.point.mispredictionRate = 0.05;
    r.point.rberRequirement = 31;
    r.point.requests = 123456789;
    r.point.seed = 18446744073709551615ull;  // uint64 max survives
    r.avgReadUs = 101.375;
    r.avgWriteUs = 0.1;  // not exactly representable: dump/parse must
                         // still round-trip it bit-for-bit
    r.iops = 1.0 / 3.0;
    r.p999Us = 1e-300;
    r.p9999Us = 4.9e6;
    r.p999999Us = 123.456;
    r.erases = 42;
    r.avgEraseMs = 3.5;
    r.suspensions = 7;
    r.writeAmplification = 1.0000000000000002;

    const Json row = toJson(r);
    const Json reparsed = Json::parseOrDie(row.dump());
    const SimResult back = simResultFromJson(reparsed);
    EXPECT_EQ(toJson(back).dump(), row.dump());
    EXPECT_EQ(back.point.seed, r.point.seed);
    EXPECT_EQ(back.avgWriteUs, r.avgWriteUs);
    EXPECT_EQ(back.iops, r.iops);
    EXPECT_EQ(back.p999Us, r.p999Us);
}

TEST(SimResultJson, MissingFieldDies)
{
    SimResult r;
    Json row = toJson(r);
    Json pruned = Json::object();
    for (std::size_t i = 0; i < row.size(); ++i) {
        const auto &[key, value] = row.member(i);
        if (key != "iops")
            pruned[key] = value;
    }
    EXPECT_DEATH(simResultFromJson(pruned), "missing 'iops'");
}

} // namespace
} // namespace aero
