/**
 * @file
 * Tests for the sweep checkpoint/resume subsystem: crash recovery from
 * torn journal tails, bit-identical resumed artifacts at 1 and 4
 * threads (in both directions across thread counts), loud fingerprint
 * mismatches naming the offending spec field, and the exhaustive
 * SweepSpec::index()-vs-expand() cross-check the axis-keyed journal
 * relies on.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "devchar/experiments.hh"
#include "exp/campaign.hh"
#include "exp/checkpoint.hh"
#include "exp/report.hh"
#include "exp/sweep.hh"
#include "workload/presets.hh"

namespace aero
{
namespace
{

/** The tiny 2x2 grid every resume test replays (seconds, not hours). */
SweepSpec
tinySpec()
{
    return SweepBuilder()
        .workloads({"prxy", "hm"})
        .schemes({SchemeKind::Baseline, SchemeKind::Aero})
        .pec(2500.0)
        .requests(1500)
        .baseConfig(SsdConfig::tiny())
        .build();
}

std::string
tempJournal(const std::string &name)
{
    const auto path =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove(path);
    return path.string();
}

/** The canonical artifact body two runs are compared by. */
std::string
artifactOf(const SweepSpec &spec, const std::vector<SimResult> &results)
{
    return sweepReport(spec, results).dump(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
}

/** Chop the last @p bytes off a file — a torn final write. */
void
tearTail(const std::string &path, std::uintmax_t bytes)
{
    const auto size = std::filesystem::file_size(path);
    ASSERT_GT(size, bytes);
    std::filesystem::resize_file(path, size - bytes);
}

/** Keep only the first @p n lines — a run killed between records. */
void
keepLines(const std::string &path, std::size_t n)
{
    const std::string text = readFile(path);
    std::size_t pos = 0;
    for (std::size_t line = 0; line < n; ++line) {
        pos = text.find('\n', pos);
        ASSERT_NE(pos, std::string::npos);
        pos += 1;
    }
    writeFile(path, text.substr(0, pos));
}

// --------------------------------------------------------------------------
// Crash recovery
// --------------------------------------------------------------------------

TEST(CheckpointResume, TornTailResumesBitIdentical)
{
    const SweepSpec spec = tinySpec();
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));

    for (const int resumeThreads : {1, 4}) {
        const std::string path = tempJournal("torn.jsonl");
        {
            SweepCheckpoint ckpt(path, spec);
            SweepRunner(1).run(spec, ckpt);
        }
        // Tear the journal mid-record, as a crash during the final
        // write would: the last record loses its tail.
        tearTail(path, 41);
        SweepCheckpoint resumed(path, spec);
        EXPECT_EQ(resumed.cachedCount(), spec.size() - 1);
        const auto results = SweepRunner(resumeThreads).run(spec, resumed);
        EXPECT_EQ(artifactOf(spec, results), reference)
            << "resume at " << resumeThreads << " threads drifted";
    }
}

TEST(CheckpointResume, FullyJournaledRunSimulatesNothing)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("full.jsonl");
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    SweepCheckpoint reopened(path, spec);
    EXPECT_EQ(reopened.cachedCount(), spec.size());
    std::size_t simulated = 0;
    const auto results = SweepRunner(4).run(
        spec, reopened,
        [&](std::size_t, std::size_t, const SimResult &) {
            simulated += 1;
        });
    EXPECT_EQ(simulated, 0u);
    EXPECT_EQ(artifactOf(spec, results), reference);
}

TEST(CheckpointResume, ResumeAfterTruncationIsIdempotent)
{
    // Crash, resume, crash again, resume again: the journal must stay
    // parseable and the final artifact must still match the reference.
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("twice.jsonl");
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    tearTail(path, 17);
    {
        SweepCheckpoint resumed(path, spec);
        SweepRunner(1).run(spec, resumed);
    }
    tearTail(path, 23);
    SweepCheckpoint again(path, spec);
    const auto results = SweepRunner(1).run(spec, again);
    EXPECT_EQ(artifactOf(spec, results), reference);
}

// --------------------------------------------------------------------------
// Thread-count cross-resume
// --------------------------------------------------------------------------

TEST(CheckpointResume, CrossesThreadCountsInBothDirections)
{
    const SweepSpec spec = tinySpec();
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));

    // A journal written under AERO_SWEEP_THREADS=4 resumes under =1,
    // and vice versa; both reproduce the uncheckpointed artifact.
    const std::pair<const char *, const char *> directions[] = {
        {"4", "1"}, {"1", "4"}};
    for (const auto &[writer, resumer] : directions) {
        const std::string path = tempJournal("cross.jsonl");
        setenv("AERO_SWEEP_THREADS", writer, 1);
        {
            SweepCheckpoint ckpt(path, spec);
            SweepRunner().run(spec, ckpt);
        }
        // Kill the run after two completed records (a 4-thread writer
        // journals in completion order, so these need not be the first
        // two points in spec order).
        keepLines(path, 3);
        setenv("AERO_SWEEP_THREADS", resumer, 1);
        SweepCheckpoint resumed(path, spec);
        EXPECT_EQ(resumed.cachedCount(), 2u);
        const auto results = SweepRunner().run(spec, resumed);
        unsetenv("AERO_SWEEP_THREADS");
        EXPECT_EQ(artifactOf(spec, results), reference)
            << "journal written at " << writer
            << " threads, resumed at " << resumer;
    }
}

// --------------------------------------------------------------------------
// Fingerprint mismatches
// --------------------------------------------------------------------------

TEST(CheckpointFingerprint, ChangedRequestsDiesNamingRequests)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("mismatch_requests.jsonl");
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    SweepSpec changed = spec;
    changed.requests = 2000;
    EXPECT_DEATH(SweepCheckpoint(path, changed),
                 "different 'sweep' campaign.*requests: 1500 vs 2000");
}

TEST(CheckpointFingerprint, ChangedAxisDiesNamingAxis)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("mismatch_axis.jsonl");
    {
        SweepCheckpoint ckpt(path, spec);  // header only, no results
    }
    SweepSpec moreWorkloads = spec;
    moreWorkloads.workloads.push_back("usr");
    EXPECT_DEATH(SweepCheckpoint(path, moreWorkloads),
                 "different 'sweep' campaign.*workloads");

    SweepSpec otherSchemes = spec;
    otherSchemes.schemes = {SchemeKind::Baseline, SchemeKind::Dpes};
    EXPECT_DEATH(SweepCheckpoint(path, otherSchemes),
                 "different 'sweep' campaign.*schemes");

    SweepSpec otherSeeds = spec;
    otherSeeds.seeds = {11};
    EXPECT_DEATH(SweepCheckpoint(path, otherSeeds),
                 "different 'sweep' campaign.*seeds");
}

TEST(CheckpointFingerprint, WrongSchemaDies)
{
    const std::string path = tempJournal("not_a_journal.jsonl");
    writeFile(path, "{\"schema\":\"aero-sweep/1\",\"results\":[]}\n");
    EXPECT_DEATH(SweepCheckpoint(path, tinySpec()),
                 "not an aero-campaign/1 journal");
}

TEST(CheckpointFingerprint, NonJournalFileIsNeverTruncated)
{
    // Torn-tail tolerance must not extend to the header line: pointing
    // --checkpoint at some precious non-journal file has to fail
    // loudly, not truncate it to zero and write a header over it.
    const std::string path = tempJournal("precious.txt");
    const std::string contents = "my precious data, not a checkpoint";
    writeFile(path, contents);
    EXPECT_DEATH(SweepCheckpoint(path, tinySpec()),
                 "not a campaign journal");
    EXPECT_EQ(readFile(path), contents);
}

TEST(CheckpointFingerprint, CorruptMidJournalDies)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("corrupt.jsonl");
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    // Damage a record in the middle: tolerance is for torn *tails*
    // only, anything else must fail loudly.
    std::string text = readFile(path);
    const std::size_t mid = text.find("\n{") + 1;
    text[mid] = '#';
    writeFile(path, text);
    EXPECT_DEATH(SweepCheckpoint(path, spec), "corrupt");
}

TEST(CheckpointFingerprint, ForeignRecordFingerprintDies)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempJournal("foreign.jsonl");
    {
        SweepCheckpoint ckpt(path, spec);
        SweepRunner(1).run(spec, ckpt);
    }
    // Splice a record stamped with another sweep's fingerprint.
    std::string text = readFile(path);
    const std::size_t firstRecord = text.find("\n{") + 1;
    std::string forged = text.substr(firstRecord);
    forged = forged.substr(0, forged.find('\n') + 1);
    const std::size_t fpAt = forged.find("\"fingerprint\":\"") +
                             std::string("\"fingerprint\":\"").size();
    forged[fpAt] = forged[fpAt] == '0' ? '1' : '0';
    writeFile(path, text + forged);
    EXPECT_DEATH(SweepCheckpoint(path, spec),
                 "refusing to splice records from a different campaign");
}

// --------------------------------------------------------------------------
// SweepSpec::index() vs expand() — the invariant axis-keyed resume
// (and every bench's printed table) depends on.
// --------------------------------------------------------------------------

TEST(SweepSpecIndex, AgreesWithExpandOverRandomizedGrids)
{
    std::mt19937 rng(20240731);
    const auto &table3 = table3Workloads();
    const std::vector<SchemeKind> schemePool = allSchemes();
    const std::vector<SuspensionMode> suspPool = {
        SuspensionMode::None, SuspensionMode::MidSegment};

    for (int trial = 0; trial < 25; ++trial) {
        // A distinct prefix of each axis pool, randomized lengths.
        const auto len = [&](std::size_t max) {
            return 1 + rng() % max;
        };
        SweepSpec spec;
        spec.workloads.clear();
        for (std::size_t i = 0; i < len(4); ++i)
            spec.workloads.push_back(table3[i].name);
        spec.schemes.assign(schemePool.begin(),
                            schemePool.begin() +
                                static_cast<long>(len(schemePool.size())));
        spec.pecs.clear();
        for (std::size_t i = 0; i < len(3); ++i)
            spec.pecs.push_back(500.0 + 1000.0 * static_cast<double>(i));
        spec.suspensions.assign(
            suspPool.begin(),
            suspPool.begin() + static_cast<long>(len(2)));
        spec.mispredictionRates.clear();
        for (std::size_t i = 0; i < len(3); ++i)
            spec.mispredictionRates.push_back(0.05 *
                                              static_cast<double>(i));
        spec.rberRequirements.clear();
        for (std::size_t i = 0; i < len(3); ++i)
            spec.rberRequirements.push_back(63 - static_cast<int>(i));
        spec.seeds.clear();
        for (std::size_t i = 0; i < len(3); ++i)
            spec.seeds.push_back(7 + 1000 * i);

        const auto points = spec.expand();
        ASSERT_EQ(points.size(), spec.size());
        // Decompose every flat position into per-axis indices with an
        // independent mixed-radix walk (seed varies fastest), then
        // require index() to invert it and expand() to have put the
        // matching axis values there.
        const std::size_t sizes[7] = {
            spec.pecs.size(),          spec.suspensions.size(),
            spec.workloads.size(),     spec.schemes.size(),
            spec.mispredictionRates.size(),
            spec.rberRequirements.size(), spec.seeds.size()};
        for (std::size_t flat = 0; flat < points.size(); ++flat) {
            std::size_t ix[7];
            std::size_t rem = flat;
            for (int axis = 6; axis >= 0; --axis) {
                ix[axis] = rem % sizes[axis];
                rem /= sizes[axis];
            }
            ASSERT_EQ(spec.index(ix[0], ix[1], ix[2], ix[3], ix[4],
                                 ix[5], ix[6]),
                      flat)
                << "trial " << trial;
            const SimPoint &pt = points[flat];
            ASSERT_EQ(pt.pec, spec.pecs[ix[0]]);
            ASSERT_EQ(pt.suspension, spec.suspensions[ix[1]]);
            ASSERT_EQ(pt.workload, spec.workloads[ix[2]]);
            ASSERT_EQ(pt.scheme, spec.schemes[ix[3]]);
            ASSERT_EQ(pt.mispredictionRate,
                      spec.mispredictionRates[ix[4]]);
            ASSERT_EQ(pt.rberRequirement,
                      spec.rberRequirements[ix[5]]);
            ASSERT_EQ(pt.seed, spec.seeds[ix[6]]);
        }
    }
}

// --------------------------------------------------------------------------
// Round-trip plumbing
// --------------------------------------------------------------------------

TEST(SimResultJson, RoundTripsExactly)
{
    SimResult r;
    r.point.workload = "prn";
    r.point.scheme = SchemeKind::Dpes;
    r.point.pec = 2500.0;
    r.point.suspension = SuspensionMode::None;
    r.point.mispredictionRate = 0.05;
    r.point.rberRequirement = 31;
    r.point.requests = 123456789;
    r.point.seed = 18446744073709551615ull;  // uint64 max survives
    r.avgReadUs = 101.375;
    r.avgWriteUs = 0.1;  // not exactly representable: dump/parse must
                         // still round-trip it bit-for-bit
    r.iops = 1.0 / 3.0;
    r.p999Us = 1e-300;
    r.p9999Us = 4.9e6;
    r.p999999Us = 123.456;
    r.erases = 42;
    r.avgEraseMs = 3.5;
    r.suspensions = 7;
    r.writeAmplification = 1.0000000000000002;

    const Json row = toJson(r);
    const Json reparsed = Json::parseOrDie(row.dump());
    const SimResult back = simResultFromJson(reparsed);
    EXPECT_EQ(toJson(back).dump(), row.dump());
    EXPECT_EQ(back.point.seed, r.point.seed);
    EXPECT_EQ(back.avgWriteUs, r.avgWriteUs);
    EXPECT_EQ(back.iops, r.iops);
    EXPECT_EQ(back.p999Us, r.p999Us);
}

TEST(SimResultJson, MissingFieldDies)
{
    SimResult r;
    Json row = toJson(r);
    Json pruned = Json::object();
    for (std::size_t i = 0; i < row.size(); ++i) {
        const auto &[key, value] = row.member(i);
        if (key != "iops")
            pruned[key] = value;
    }
    EXPECT_DEATH(simResultFromJson(pruned), "missing 'iops'");
}

// --------------------------------------------------------------------------
// The generic campaign journal every checkpointed campaign sits on.
// --------------------------------------------------------------------------

Json
campaignConfig(int chips = 4, int blocks = 8)
{
    Json config = Json::object();
    config["num_chips"] = chips;
    config["blocks_per_chip"] = blocks;
    Json pecs = Json::array();
    pecs.push(500.0);
    pecs.push(2500.0);
    config["pecs"] = std::move(pecs);
    return config;
}

Json
chipKey(int chip)
{
    Json key = Json::object();
    key["chip"] = chip;
    return key;
}

TEST(CampaignJournal, RecordsSurviveReopen)
{
    const std::string path = tempJournal("campaign_roundtrip.jsonl");
    Json payload = Json::object();
    payload["value"] = 0.1;  // must round-trip bit-for-bit
    payload["count"] = std::uint64_t{18446744073709551615ull};
    {
        CampaignJournal journal(path, "unit-test", campaignConfig());
        EXPECT_EQ(journal.cachedCount(), 0u);
        EXPECT_FALSE(journal.has(chipKey(0)));
        journal.record(chipKey(0), payload);
        journal.record(chipKey(3), Json(true));
        EXPECT_EQ(journal.cachedCount(), 2u);
    }
    CampaignJournal reopened(path, "unit-test", campaignConfig());
    EXPECT_EQ(reopened.cachedCount(), 2u);
    ASSERT_TRUE(reopened.has(chipKey(0)));
    ASSERT_TRUE(reopened.has(chipKey(3)));
    EXPECT_FALSE(reopened.has(chipKey(1)));
    EXPECT_EQ(reopened.cached(chipKey(0)).dump(), payload.dump());
    EXPECT_TRUE(reopened.cached(chipKey(3)).asBool());

    std::size_t visited = 0;
    reopened.forEachCached([&](const Json &key, const Json &) {
        EXPECT_TRUE(key.contains("chip"));
        visited += 1;
    });
    EXPECT_EQ(visited, 2u);
}

TEST(CampaignJournal, TornTailIsDroppedWithTheRestIntact)
{
    const std::string path = tempJournal("campaign_torn.jsonl");
    {
        CampaignJournal journal(path, "unit-test", campaignConfig());
        for (int c = 0; c < 4; ++c)
            journal.record(chipKey(c), Json(c));
    }
    tearTail(path, 9);  // mid-way through the chip-3 record
    CampaignJournal resumed(path, "unit-test", campaignConfig());
    EXPECT_EQ(resumed.cachedCount(), 3u);
    EXPECT_TRUE(resumed.has(chipKey(2)));
    EXPECT_FALSE(resumed.has(chipKey(3)));
    // Appending after the truncation keeps the journal parseable.
    resumed.record(chipKey(3), Json(3));
    CampaignJournal again(path, "unit-test", campaignConfig());
    EXPECT_EQ(again.cachedCount(), 4u);
}

TEST(CampaignJournal, RandomizedCrashPointsAlwaysResume)
{
    // Crash battery: truncate a full journal at arbitrary byte offsets
    // (any of which a SIGKILL mid-write could produce) and require the
    // loader to recover every intact record and never a corrupt one.
    const std::string full = tempJournal("campaign_fuzz_full.jsonl");
    std::vector<std::uint64_t> recordEnds;  // byte offset after line i
    {
        CampaignJournal journal(full, "unit-test", campaignConfig());
        for (int c = 0; c < 6; ++c) {
            Json payload = Json::object();
            payload["mtbers"] = 2.5 + 0.125 * c;
            journal.record(chipKey(c), payload);
        }
    }
    const std::string text = readFile(full);
    for (std::size_t pos = 0;
         (pos = text.find('\n', pos)) != std::string::npos; ++pos)
        recordEnds.push_back(pos + 1);
    ASSERT_EQ(recordEnds.size(), 7u);  // header + 6 records

    std::mt19937 rng(20260730);
    for (int trial = 0; trial < 60; ++trial) {
        // Any offset from just after the header to the full size.
        const auto lo = recordEnds.front();
        const std::uint64_t cut =
            lo + rng() % (text.size() - lo + 1);
        const std::string path = tempJournal("campaign_fuzz.jsonl");
        writeFile(path, text.substr(0, cut));
        CampaignJournal resumed(path, "unit-test", campaignConfig());
        // Every record wholly before the cut must be recovered.
        std::size_t wholeRecords = 0;
        for (std::size_t i = 1; i < recordEnds.size(); ++i)
            wholeRecords += recordEnds[i] <= cut ? 1 : 0;
        EXPECT_EQ(resumed.cachedCount(), wholeRecords)
            << "cut at byte " << cut;
        for (std::size_t i = 0; i < wholeRecords; ++i) {
            ASSERT_TRUE(resumed.has(chipKey(static_cast<int>(i))));
            EXPECT_EQ(resumed.cached(chipKey(static_cast<int>(i)))
                          .get("mtbers")
                          .asDouble(),
                      2.5 + 0.125 * static_cast<double>(i));
        }
    }
}

TEST(CampaignJournal, DuplicateKeysLastWins)
{
    const std::string path = tempJournal("campaign_dup.jsonl");
    {
        CampaignJournal journal(path, "unit-test", campaignConfig());
        journal.record(chipKey(1), Json(1));
        journal.record(chipKey(1), Json(2));
        EXPECT_EQ(journal.cachedCount(), 1u);
        EXPECT_EQ(journal.cached(chipKey(1)).asInt64(), 2);
    }
    CampaignJournal reopened(path, "unit-test", campaignConfig());
    EXPECT_EQ(reopened.cachedCount(), 1u);
    EXPECT_EQ(reopened.cached(chipKey(1)).asInt64(), 2);
}

TEST(CampaignJournalDeath, OtherCampaignsJournalIsRejected)
{
    const std::string path = tempJournal("campaign_wrong_name.jsonl");
    {
        CampaignJournal journal(path, "fig07_failbits_vs_tep",
                                campaignConfig());
    }
    EXPECT_DEATH(CampaignJournal(path, "fig04_erase_latency_cdf",
                                 campaignConfig()),
                 "belongs to campaign 'fig07_failbits_vs_tep', "
                 "expected 'fig04_erase_latency_cdf'");
}

TEST(CampaignJournalDeath, ChangedConfigDiesNamingTheNestedField)
{
    const std::string path = tempJournal("campaign_config.jsonl");
    {
        CampaignJournal journal(path, "unit-test", campaignConfig());
    }
    EXPECT_DEATH(CampaignJournal(path, "unit-test",
                                 campaignConfig(/*chips=*/5)),
                 "different 'unit-test' campaign.*num_chips: 4 vs 5");

    // A mismatch inside a nested array names the element's path.
    Json changed = campaignConfig();
    Json pecs = Json::array();
    pecs.push(500.0);
    pecs.push(4500.0);
    changed["pecs"] = std::move(pecs);
    EXPECT_DEATH(
        CampaignJournal(path, "unit-test", std::move(changed)),
        "pecs\\[1\\]: 2500.0 vs 4500.0");
}

TEST(CampaignJournalDeath, MissingParentDirectoryNamesThePath)
{
    // Regression: a bad --checkpoint path must fail up front naming
    // the path and the missing directory, not as a raw stream error
    // after the campaign started.
    EXPECT_DEATH(CampaignJournal("no/such/dir/journal.jsonl",
                                 "unit-test", campaignConfig()),
                 "cannot create checkpoint 'no/such/dir/journal.jsonl':"
                 " parent directory 'no/such/dir' does not exist");
}

TEST(SweepCheckpointDeath, MissingParentDirectoryNamesThePath)
{
    EXPECT_DEATH(SweepCheckpoint("nowhere/at/all/ck.jsonl", tinySpec()),
                 "parent directory 'nowhere/at/all' does not exist");
}

// --------------------------------------------------------------------------
// Devchar campaign resume: the chip-sharded engine behind figs. 4-11 /
// tab01 must reproduce its records bit-for-bit from a partial journal,
// at any thread count.
// --------------------------------------------------------------------------

/** Canonical rendering of a Fig7 result for bit-exact comparison. */
std::string
fig7Fingerprint(const Fig7Data &data)
{
    Json doc = Json::object();
    doc["gamma"] = data.gammaEstimate;
    doc["delta"] = data.deltaEstimate;
    Json rows = Json::array();
    for (const auto &row : data.rows) {
        Json r = Json::object();
        r["n_ispe"] = row.nIspe;
        Json maxes = Json::array();
        Json means = Json::array();
        Json counts = Json::array();
        for (int i = 0; i < 8; ++i) {
            maxes.push(row.maxFailByRemaining[i]);
            means.push(row.meanFailByRemaining[i]);
            counts.push(row.samples[i]);
        }
        r["max"] = std::move(maxes);
        r["mean"] = std::move(means);
        r["samples"] = std::move(counts);
        rows.push(std::move(r));
    }
    doc["rows"] = std::move(rows);
    return doc.dump();
}

TEST(DevcharCampaignResume, PartialJournalResumesBitIdentical)
{
    FarmConfig fc;
    fc.numChips = 4;
    fc.blocksPerChip = 6;
    const std::vector<double> pecs = {1500.0, 3500.0};
    const std::string reference =
        fig7Fingerprint(runFig7Experiment(fc, pecs));

    Json config = Json::object();
    config["what"] = "fig7 resume test";
    const std::string full = tempJournal("devchar_full.jsonl");
    {
        CampaignJournal journal(full, "fig7-test", config);
        const std::string journaled = fig7Fingerprint(
            runFig7Experiment(fc, pecs, {&journal}));
        EXPECT_EQ(journaled, reference);
        EXPECT_EQ(journal.cachedCount(),
                  static_cast<std::size_t>(fc.numChips));
    }
    const std::string fullText = readFile(full);

    // Resume from every truncation prefix (complete records and torn
    // tails alike), across thread counts; the folded statistics must
    // be byte-identical each time.
    std::mt19937 rng(7);
    for (int trial = 0; trial < 8; ++trial) {
        const std::string path = tempJournal("devchar_part.jsonl");
        const std::size_t header = fullText.find('\n') + 1;
        const std::size_t cut =
            header + rng() % (fullText.size() - header + 1);
        writeFile(path, fullText.substr(0, cut));
        const char *threads = trial % 2 ? "4" : "1";
        setenv("AERO_SWEEP_THREADS", threads, 1);
        CampaignJournal journal(path, "fig7-test", config);
        const std::string resumed = fig7Fingerprint(
            runFig7Experiment(fc, pecs, {&journal}));
        unsetenv("AERO_SWEEP_THREADS");
        EXPECT_EQ(resumed, reference)
            << "cut at " << cut << ", " << threads << " threads";
        EXPECT_EQ(journal.cachedCount(),
                  static_cast<std::size_t>(fc.numChips));
    }
}

TEST(DevcharCampaignResume, FullyJournaledRunRecomputesNothing)
{
    FarmConfig fc;
    fc.numChips = 3;
    fc.blocksPerChip = 4;
    const std::vector<double> pecs = {2500.0};
    Json config = Json::object();
    config["what"] = "fig7 cache test";
    const std::string path = tempJournal("devchar_cached.jsonl");
    std::string reference;
    {
        CampaignJournal journal(path, "fig7-test", config);
        reference =
            fig7Fingerprint(runFig7Experiment(fc, pecs, {&journal}));
    }
    // A fully journaled campaign decodes instead of measuring: a farm
    // with a *different seed* would measure different numbers, so a
    // byte-identical result proves nothing was recomputed.
    FarmConfig other = fc;
    other.seed = fc.seed + 999;
    CampaignJournal journal(path, "fig7-test", config);
    EXPECT_EQ(fig7Fingerprint(runFig7Experiment(other, pecs, {&journal})),
              reference);
}

} // namespace
} // namespace aero
