/**
 * @file
 * Drive-topology battery: the DriveGeometry page-index encoding is a
 * bijection that agrees with PageMapping's PPN layout, misconfigured
 * geometries die with exact diagnostics, queued channel arbitration
 * conserves every request and keeps its grant accounting consistent,
 * and a sweep over the reclamation axes is bit-identical at 1 and N
 * worker threads.
 */

#include <gtest/gtest.h>

#include "exp/report.hh"
#include "exp/sweep.hh"
#include "ssd/geometry.hh"
#include "ssd/mapping.hh"
#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace aero
{
namespace
{

DriveGeometry
geomOf(const SsdConfig &cfg)
{
    return DriveGeometry::of(cfg);
}

TEST(Topology, TinyGeometryDerivesFromConfig)
{
    const SsdConfig cfg = SsdConfig::tiny();
    const DriveGeometry g = geomOf(cfg);
    EXPECT_EQ(g.channels, cfg.channels);
    EXPECT_EQ(g.diesPerChannel, cfg.chipsPerChannel);
    EXPECT_EQ(g.planesPerDie, cfg.geometry.planes);
    EXPECT_EQ(g.blocksPerPlane, cfg.geometry.blocksPerPlane);
    EXPECT_EQ(g.pagesPerBlock, cfg.geometry.pagesPerBlock);
    EXPECT_EQ(g.totalDies(), cfg.channels * cfg.chipsPerChannel);
    EXPECT_EQ(g.totalPages(),
              static_cast<std::uint64_t>(g.totalDies()) *
                  g.planesPerDie * g.blocksPerPlane * g.pagesPerBlock);
}

// pgidx -> Ppa -> pgidx is the identity over the whole drive, and every
// decomposed field stays inside its level's bounds.
void
expectBijective(const DriveGeometry &g)
{
    for (std::uint64_t idx = 0; idx < g.totalPages(); ++idx) {
        const Ppa ppa = g.ppaOf(idx);
        ASSERT_GE(ppa.channel, 0);
        ASSERT_LT(ppa.channel, g.channels);
        ASSERT_GE(ppa.die, 0);
        ASSERT_LT(ppa.die, g.diesPerChannel);
        ASSERT_GE(ppa.plane, 0);
        ASSERT_LT(ppa.plane, g.planesPerDie);
        ASSERT_GE(ppa.block, 0);
        ASSERT_LT(ppa.block, g.blocksPerPlane);
        ASSERT_GE(ppa.page, 0);
        ASSERT_LT(ppa.page, g.pagesPerBlock);
        ASSERT_EQ(g.pageIndex(ppa), idx);
    }
}

TEST(Topology, PageIndexIsABijectionOnTiny)
{
    expectBijective(geomOf(SsdConfig::tiny()));
}

TEST(Topology, PageIndexIsABijectionOnBench)
{
    expectBijective(geomOf(SsdConfig::bench()));
}

TEST(Topology, PageIndexIsDenseInNestedOrder)
{
    const DriveGeometry g = geomOf(SsdConfig::tiny());
    std::uint64_t expect = 0;
    for (int ch = 0; ch < g.channels; ++ch)
        for (int die = 0; die < g.diesPerChannel; ++die)
            for (int pl = 0; pl < g.planesPerDie; ++pl)
                for (int b = 0; b < g.blocksPerPlane; ++b)
                    for (int pg = 0; pg < g.pagesPerBlock; ++pg)
                        ASSERT_EQ(g.pageIndex({ch, die, pl, b, pg}),
                                  expect++);
    EXPECT_EQ(expect, g.totalPages());
}

TEST(Topology, ChipIndexingRoundTrips)
{
    const DriveGeometry g = geomOf(SsdConfig::bench());
    for (int ch = 0; ch < g.channels; ++ch) {
        for (int die = 0; die < g.diesPerChannel; ++die) {
            const Ppa ppa{ch, die, 0, 0, 0};
            const int chip = g.chipOf(ppa);
            EXPECT_EQ(g.channelOfChip(chip), ch);
            EXPECT_EQ(chip % g.diesPerChannel, die);
        }
    }
}

// The flat page index must agree with PageMapping's (chip, chip-block,
// page) PPN encode — the FTL's mapping and the geometry's addressing are
// the same coordinate system.
TEST(Topology, PageIndexAgreesWithMappingEncode)
{
    const SsdConfig cfg = SsdConfig::tiny();
    const DriveGeometry g = geomOf(cfg);
    PageMapping mapping(cfg.logicalPages(), g.totalDies(),
                        g.blocksPerDie(), g.pagesPerBlock);
    for (std::uint64_t idx = 0; idx < g.totalPages(); ++idx) {
        const Ppa ppa = g.ppaOf(idx);
        const Ppn ppn = mapping.encode(g.chipOf(ppa), g.chipBlockOf(ppa),
                                       ppa.page);
        ASSERT_EQ(static_cast<std::uint64_t>(ppn), idx)
            << "ppn/pgidx disagree at channel " << ppa.channel << " die "
            << ppa.die << " plane " << ppa.plane << " block " << ppa.block
            << " page " << ppa.page;
    }
}

TEST(Topology, ChipBlockIsPlaneMajor)
{
    const DriveGeometry g = geomOf(SsdConfig::bench());
    EXPECT_EQ(g.chipBlockOf({0, 0, 0, 5, 0}), 5);
    EXPECT_EQ(g.chipBlockOf({0, 0, 1, 0, 0}), g.blocksPerPlane);
    EXPECT_EQ(g.chipBlockOf({0, 0, 3, 7, 0}), 3 * g.blocksPerPlane + 7);
}

// ---------------------------------------------------------------------------
// Misconfiguration death tests: exact diagnostics, not just "it died".
// ---------------------------------------------------------------------------

DriveGeometry
validGeom()
{
    return geomOf(SsdConfig::tiny());
}

TEST(TopologyDeathTest, ZeroChannelsDies)
{
    DriveGeometry g = validGeom();
    g.channels = 0;
    EXPECT_DEATH(g.validate(),
                 "geometry: channel count must be positive, got 0");
}

TEST(TopologyDeathTest, ZeroDiesPerChannelDies)
{
    DriveGeometry g = validGeom();
    g.diesPerChannel = 0;
    EXPECT_DEATH(g.validate(),
                 "geometry: dies per channel must be positive, got 0");
}

TEST(TopologyDeathTest, NegativePlaneCountDies)
{
    DriveGeometry g = validGeom();
    g.planesPerDie = -1;
    EXPECT_DEATH(g.validate(),
                 "geometry: plane count must be positive, got -1");
}

TEST(TopologyDeathTest, PlaneCountBeyondDieLimitDies)
{
    DriveGeometry g = validGeom();
    g.planesPerDie = 9;
    EXPECT_DEATH(g.validate(),
                 "geometry: plane count 9 exceeds the per-die limit of 8");
}

TEST(TopologyDeathTest, ZeroBlocksPerPlaneDies)
{
    DriveGeometry g = validGeom();
    g.blocksPerPlane = 0;
    EXPECT_DEATH(g.validate(),
                 "geometry: blocks per plane must be positive, got 0");
}

TEST(TopologyDeathTest, ZeroPagesPerBlockDies)
{
    DriveGeometry g = validGeom();
    g.pagesPerBlock = 0;
    EXPECT_DEATH(g.validate(),
                 "geometry: pages per block must be positive, got 0");
}

TEST(TopologyDeathTest, NonPowerOfTwoPagesRejectedOnlyWhenQueued)
{
    // The paper's Table 2 drive (2112 pages/block) is legal under legacy
    // arbitration and rejected only by the queued fast path.
    const DriveGeometry g = geomOf(SsdConfig::paper());
    g.validate();  // must not die
    EXPECT_DEATH(g.validateQueued(),
                 "geometry: pages per block must be a power of two for "
                 "queued arbitration, got 2112");
}

// ---------------------------------------------------------------------------
// Queued-arbitration conservation: an end-to-end run under the
// event-driven channel model completes every request, does real GC, and
// keeps the grant/busy accounting consistent with simulated time.
// ---------------------------------------------------------------------------

TEST(TopologyQueued, ConservesRequestsAndAccounting)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.arbitration = Arbitration::Queued;
    cfg.seed = 99;
    Ssd ssd(cfg);

    SyntheticConfig wc;
    wc.spec = workloadByName("ali.A");  // write-heavy: forces GC
    wc.footprintPages = ssd.config().logicalPages();
    wc.numRequests = 6000;
    wc.seed = 31;
    const Trace trace = generateTrace(wc);

    std::uint64_t reads = 0, writes = 0;
    for (const auto &r : trace)
        (r.op == IoOp::Read ? reads : writes) += 1;
    ssd.run(trace);

    const SsdMetrics &m = ssd.metrics();
    EXPECT_EQ(m.reads, reads);
    EXPECT_EQ(m.writes, writes);
    EXPECT_GT(m.erases, 0u);
    EXPECT_GT(m.gcInvocations, 0u);
    EXPECT_GE(m.writeAmplification(), 1.0);

    // Queued mode accounts every transfer through a grant; the host
    // side must have granted at least one bus slice per completed op.
    EXPECT_GT(m.hostChannelGrants, 0u);
    EXPECT_GT(m.gcChannelGrants, 0u);
    EXPECT_GT(m.eraseChannelGrants, 0u);

    // No channel can be busy longer than the run lasted, and at least
    // one channel did real work.
    ASSERT_EQ(m.channelBusyTicks.size(),
              static_cast<std::size_t>(cfg.channels));
    for (int ch = 0; ch < cfg.channels; ++ch) {
        EXPECT_LE(m.channelBusyTicks[ch], m.simulatedTime);
        EXPECT_GE(m.channelUtilization(ch), 0.0);
        EXPECT_LE(m.channelUtilization(ch), 1.0);
    }
    EXPECT_GT(m.maxChannelUtilization(), 0.0);
    EXPECT_GE(m.avgHostChannelWaitUs(), 0.0);
    EXPECT_GE(m.avgGcChannelWaitUs(), 0.0);
}

TEST(TopologyQueued, LegacyAndQueuedConserveTheSameWork)
{
    // The two arbitration models may time requests differently, but the
    // *work* is conserved identically: same trace, same completed ops,
    // same user-visible write amplification drivers.
    SyntheticConfig wc;
    wc.spec = workloadByName("prxy");
    wc.footprintPages = SsdConfig::tiny().logicalPages();
    wc.numRequests = 4000;
    wc.seed = 31;
    const Trace trace = generateTrace(wc);

    SsdMetrics results[2];
    const Arbitration models[2] = {Arbitration::Legacy,
                                   Arbitration::Queued};
    for (int i = 0; i < 2; ++i) {
        SsdConfig cfg = SsdConfig::tiny();
        cfg.arbitration = models[i];
        cfg.seed = 99;
        Ssd ssd(cfg);
        ssd.run(trace);
        results[i] = ssd.metrics();
    }
    EXPECT_EQ(results[0].reads, results[1].reads);
    EXPECT_EQ(results[0].writes, results[1].writes);
    // Grant counters only move under queued arbitration.
    EXPECT_EQ(results[0].hostChannelGrants, 0u);
    EXPECT_GT(results[1].hostChannelGrants, 0u);
}

// ---------------------------------------------------------------------------
// Thread-count invariance: a sweep over the new reclamation axes is
// bit-identical at 1 and 4 worker threads, including the JSON report.
// ---------------------------------------------------------------------------

TEST(TopologySweep, ReclamationAxesAreThreadCountInvariant)
{
    const SweepSpec spec = SweepBuilder()
                               .workloads({"prxy"})
                               .schemes({SchemeKind::Baseline})
                               .pecs({500.0})
                               .gcPolicies({"greedy", "fifo-log"})
                               .wearLevels({"none", "dynamic"})
                               .requests(800)
                               .seeds({7})
                               .build();
    ASSERT_EQ(spec.size(), 4u);

    const auto one = SweepRunner(1).run(spec);
    const auto four = SweepRunner(4).run(spec);
    ASSERT_EQ(one.size(), spec.size());
    ASSERT_EQ(four.size(), spec.size());

    // The swept axes must land on the points in expand() order...
    bool saw_fifo = false, saw_dynamic = false;
    for (const auto &r : one) {
        saw_fifo |= r.point.gcPolicy == "fifo-log";
        saw_dynamic |= r.point.wearLevel == "dynamic";
    }
    EXPECT_TRUE(saw_fifo);
    EXPECT_TRUE(saw_dynamic);

    // ...and the full report (axes, points, metrics) is bit-identical.
    EXPECT_EQ(sweepReport(spec, one).dump(2),
              sweepReport(spec, four).dump(2));
    EXPECT_EQ(toCsv(one), toCsv(four));
}

} // namespace
} // namespace aero
