/**
 * @file
 * Tests for multi-process campaign execution: directory-mode
 * (`aero-campaign/2`) journals merged from per-worker files, file-locked
 * claim records with stale-claim reaping, journal compaction, the
 * per-record fsync durability knob, and — the capstone — a fork-based
 * battery that runs real worker processes against one journal directory
 * with randomized SIGKILLs and requires the merged resume to be
 * byte-identical to a clean single-process run. The single-file
 * `aero-campaign/1` format is pinned byte-for-byte so directory mode
 * can never leak into existing journals.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "exp/campaign.hh"
#include "exp/checkpoint.hh"
#include "exp/report.hh"
#include "exp/sweep.hh"

namespace aero
{
namespace
{

namespace fs = std::filesystem;

/** The tiny 2x2 grid every resume test replays (seconds, not hours). */
SweepSpec
tinySpec()
{
    return SweepBuilder()
        .workloads({"prxy", "hm"})
        .schemes({SchemeKind::Baseline, SchemeKind::Aero})
        .pec(2500.0)
        .requests(1500)
        .baseConfig(SsdConfig::tiny())
        .build();
}

std::string
tempPath(const std::string &name)
{
    const auto path = fs::path(::testing::TempDir()) / name;
    fs::remove_all(path);
    return path.string();
}

std::string
artifactOf(const SweepSpec &spec, const std::vector<SimResult> &results)
{
    return sweepReport(spec, results).dump(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
}

Json
unitConfig()
{
    Json config = Json::object();
    config["what"] = "multi-process unit test";
    return config;
}

Json
taskKey(int task)
{
    Json key = Json::object();
    key["task"] = task;
    return key;
}

JournalOptions
workerOptions(const std::string &id, bool claims = false)
{
    JournalOptions options;
    options.workerId = id;
    options.claims = claims;
    return options;
}

/** A pid guaranteed dead: fork a child that exits, then reap it. */
pid_t
deadPid()
{
    const pid_t pid = fork();
    if (pid == 0)
        std::_Exit(0);
    int status = 0;
    waitpid(pid, &status, 0);
    return pid;
}

// --------------------------------------------------------------------------
// Directory-mode journals: per-worker files, merged reads, last-wins.
// --------------------------------------------------------------------------

TEST(DirectoryJournal, WorkersMergeAcrossFiles)
{
    const std::string dir = tempPath("dir_merge");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0"));
        w0.record(taskKey(0), Json(10));
        w0.record(taskKey(1), Json(11));
    }
    {
        CampaignJournal w1(dir, "unit-test", unitConfig(),
                           workerOptions("w1"));
        // w1 sees w0's records through the merge...
        EXPECT_EQ(w1.cachedCount(), 2u);
        EXPECT_EQ(w1.cached(taskKey(0)).asInt64(), 10);
        w1.record(taskKey(2), Json(12));
    }
    EXPECT_TRUE(fs::exists(fs::path(dir) / "journal.w0.jsonl"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "journal.w1.jsonl"));

    CampaignJournal reader(dir, "unit-test", unitConfig(),
                           workerOptions("reader"));
    EXPECT_EQ(reader.cachedCount(), 3u);
    for (int t = 0; t < 3; ++t) {
        ASSERT_TRUE(reader.has(taskKey(t)));
        EXPECT_EQ(reader.cached(taskKey(t)).asInt64(), 10 + t);
    }
}

TEST(DirectoryJournal, DuplicateKeysLastFileWins)
{
    // Files merge in sorted filename order, so a key journaled by both
    // w0 and w1 resolves to w1's payload on every reader.
    const std::string dir = tempPath("dir_dup");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0"));
        w0.record(taskKey(7), Json(1));
    }
    {
        CampaignJournal w1(dir, "unit-test", unitConfig(),
                           workerOptions("w1"));
        w1.record(taskKey(7), Json(2));
    }
    CampaignJournal reader(dir, "unit-test", unitConfig(),
                           workerOptions("reader"));
    EXPECT_EQ(reader.cachedCount(), 1u);
    EXPECT_EQ(reader.cached(taskKey(7)).asInt64(), 2);
}

TEST(DirectoryJournal, SiblingTornTailIsIgnoredNotTruncated)
{
    // A sibling worker's file may end mid-append (it could still be
    // live): its torn tail must be skipped on merge but the file left
    // untouched — only our own file is ever truncated.
    const std::string dir = tempPath("dir_torn");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0"));
        w0.record(taskKey(0), Json(10));
        w0.record(taskKey(1), Json(11));
    }
    const std::string w0Path =
        (fs::path(dir) / "journal.w0.jsonl").string();
    const std::string before = readFile(w0Path);
    writeFile(w0Path, before + "{\"fingerprint\":\"tor");

    CampaignJournal w1(dir, "unit-test", unitConfig(),
                       workerOptions("w1"));
    EXPECT_EQ(w1.cachedCount(), 2u);
    EXPECT_EQ(readFile(w0Path), before + "{\"fingerprint\":\"tor")
        << "merging must never modify another worker's file";

    // Our *own* torn tail is truncated as in single-file mode.
    CampaignJournal w0Again(dir, "unit-test", unitConfig(),
                            workerOptions("w0"));
    EXPECT_EQ(readFile(w0Path), before);
}

TEST(DirectoryJournalDeath, ForeignWorkerFileFailsTheMerge)
{
    const std::string dir = tempPath("dir_foreign");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0"));
        w0.record(taskKey(0), Json(0));
    }
    // Forge another campaign's worker file into the directory (it has
    // to be forged — opening the shared directory under a different
    // campaign name would already refuse the merge).
    const std::string foreign = tempPath("dir_foreign_src");
    {
        CampaignJournal other(foreign, "other-campaign", unitConfig(),
                              workerOptions("w1"));
        other.record(taskKey(1), Json(1));
    }
    fs::copy_file(fs::path(foreign) / "journal.w1.jsonl",
                  fs::path(dir) / "journal.w1.jsonl");
    EXPECT_DEATH(CampaignJournal(dir, "unit-test", unitConfig(),
                                 workerOptions("w2")),
                 "belongs to campaign 'other-campaign'");
}

TEST(DirectoryJournalDeath, BadWorkerIdAndMisuseAreFatal)
{
    EXPECT_DEATH(CampaignJournal(tempPath("bad_id"), "unit-test",
                                 unitConfig(),
                                 workerOptions("w0/../evil")),
                 "may only contain");
    JournalOptions claimsOnly;
    claimsOnly.claims = true;
    EXPECT_DEATH(CampaignJournal(tempPath("claims_only.jsonl"),
                                 "unit-test", unitConfig(), claimsOnly),
                 "claims need a directory-mode journal");
}

TEST(DirectoryJournalDeath, LiveWorkerIdIsLocked)
{
    // Two live processes must not share a worker id: the second would
    // interleave torn lines into the first's append stream.
    const std::string dir = tempPath("dir_lock");
    CampaignJournal held(dir, "unit-test", unitConfig(),
                         workerOptions("w0"));
    held.record(taskKey(0), Json(0));
    EXPECT_DEATH(CampaignJournal(dir, "unit-test", unitConfig(),
                                 workerOptions("w0")),
                 "already active");
    // A different worker id coexists fine.
    CampaignJournal other(dir, "unit-test", unitConfig(),
                          workerOptions("w1"));
    EXPECT_EQ(other.cachedCount(), 1u);
}

// --------------------------------------------------------------------------
// The single-file format must stay pinned byte-for-byte.
// --------------------------------------------------------------------------

TEST(SingleFileFormat, HeaderAndRecordBytesArePinned)
{
    // PR 9 added directory mode; the aero-campaign/1 single-file
    // format these exact bytes pin must never change (existing
    // journals resume bit-identically).
    const std::string path = tempPath("pinned.jsonl");
    Json config = Json::object();
    config["n"] = 3;
    {
        CampaignJournal journal(path, "pin-test", config);
        journal.record(taskKey(1), Json(0.1));
    }
    const std::string fp =
        CampaignJournal::fingerprint("pin-test", config);
    EXPECT_EQ(readFile(path),
              "{\"schema\":\"aero-campaign/1\",\"campaign\":\"pin-test\","
              "\"fingerprint\":\"" + fp + "\",\"config\":{\"n\":3}}\n"
              "{\"fingerprint\":\"" + fp + "\",\"key\":{\"task\":1},"
              "\"payload\":0.1}\n");
}

// --------------------------------------------------------------------------
// Claims: file-locked task arbitration with stale-claim reaping.
// --------------------------------------------------------------------------

TEST(Claims, DisabledClaimsAlwaysGrant)
{
    const std::string path = tempPath("noclaims.jsonl");
    CampaignJournal journal(path, "unit-test", unitConfig());
    EXPECT_FALSE(journal.claimsEnabled());
    EXPECT_TRUE(journal.tryClaim(taskKey(0)));
    EXPECT_EQ(journal.claimSyncCount(), 0u);
}

TEST(Claims, LiveSiblingClaimDeniesOthersButNotOwner)
{
    const std::string dir = tempPath("claims_live");
    CampaignJournal w0(dir, "unit-test", unitConfig(),
                       workerOptions("w0", /*claims=*/true));
    CampaignJournal w1(dir, "unit-test", unitConfig(),
                       workerOptions("w1", /*claims=*/true));
    EXPECT_TRUE(w0.tryClaim(taskKey(0)));
    // Both handles live in this (live) process, so w1 is denied...
    EXPECT_FALSE(w1.tryClaim(taskKey(0)));
    // ...but the owner may re-claim its own key (a resumed worker).
    EXPECT_TRUE(w0.tryClaim(taskKey(0)));
    // An unrelated key is free.
    EXPECT_TRUE(w1.tryClaim(taskKey(1)));
    EXPECT_GE(w0.claimSyncCount(), 2u);  // claims are always fsync'ed
}

TEST(Claims, DeadWorkersClaimIsReaped)
{
    const std::string dir = tempPath("claims_stale");
    const pid_t stale = deadPid();
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0", /*claims=*/true));
        ASSERT_TRUE(w0.tryClaim(taskKey(0)));
    }
    // Forge the claims file so the claim belongs to a pid that is
    // definitely dead (w0's claim actually carries our live pid, which
    // would deny w1 even though w0's handle is closed — pid liveness,
    // not handle liveness, is the contract).
    const std::string claimsPath =
        (fs::path(dir) / "claims.jsonl").string();
    std::string text = readFile(claimsPath);
    const std::string needle = "\"pid\":";
    const std::size_t at = text.rfind(needle);
    ASSERT_NE(at, std::string::npos);
    const std::size_t valueAt = at + needle.size();
    const std::size_t valueEnd = text.find_first_of(",}", valueAt);
    text = text.substr(0, valueAt) + std::to_string(stale) +
           text.substr(valueEnd);
    writeFile(claimsPath, text);

    CampaignJournal w1(dir, "unit-test", unitConfig(),
                       workerOptions("w1", /*claims=*/true));
    EXPECT_TRUE(w1.tryClaim(taskKey(0)))
        << "a dead worker's claim must be silently reaped";
}

TEST(Claims, TornClaimTailNeverTookEffect)
{
    const std::string dir = tempPath("claims_torn");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0", /*claims=*/true));
        ASSERT_TRUE(w0.tryClaim(taskKey(0)));
    }
    // A crash mid-claim leaves a torn final line; the claim is void.
    const std::string claimsPath =
        (fs::path(dir) / "claims.jsonl").string();
    writeFile(claimsPath,
              readFile(claimsPath) + "{\"fingerprint\":\"to");
    CampaignJournal w1(dir, "unit-test", unitConfig(),
                       workerOptions("w1", /*claims=*/true));
    EXPECT_TRUE(w1.tryClaim(taskKey(9)));
}

// --------------------------------------------------------------------------
// Durability: the per-record fsync knob and its env override.
// --------------------------------------------------------------------------

TEST(Durability, FsyncRecordsCountsEveryAppend)
{
    const std::string path = tempPath("fsync.jsonl");
    JournalOptions options;
    options.fsyncRecords = true;
    CampaignJournal journal(path, "unit-test", unitConfig(), options);
    EXPECT_EQ(journal.recordSyncCount(), 1u);  // the header
    journal.record(taskKey(0), Json(0));
    journal.record(taskKey(1), Json(1));
    EXPECT_EQ(journal.recordSyncCount(), 3u);
}

TEST(Durability, DefaultIsFlushOnlyAndEnvOverridesBothWays)
{
    {
        CampaignJournal journal(tempPath("nofsync.jsonl"), "unit-test",
                                unitConfig());
        journal.record(taskKey(0), Json(0));
        EXPECT_EQ(journal.recordSyncCount(), 0u);
    }
    setenv("AERO_JOURNAL_FSYNC", "1", 1);
    {
        CampaignJournal journal(tempPath("envfsync.jsonl"), "unit-test",
                                unitConfig());
        journal.record(taskKey(0), Json(0));
        EXPECT_EQ(journal.recordSyncCount(), 2u);
    }
    setenv("AERO_JOURNAL_FSYNC", "0", 1);
    {
        JournalOptions options;
        options.fsyncRecords = true;  // env wins in both directions
        CampaignJournal journal(tempPath("envoff.jsonl"), "unit-test",
                                unitConfig(), options);
        journal.record(taskKey(0), Json(0));
        EXPECT_EQ(journal.recordSyncCount(), 0u);
    }
    unsetenv("AERO_JOURNAL_FSYNC");
}

TEST(DurabilityDeath, MalformedEnvIsFatal)
{
    setenv("AERO_JOURNAL_FSYNC", "yes", 1);
    EXPECT_DEATH(CampaignJournal(tempPath("envbad.jsonl"), "unit-test",
                                 unitConfig()),
                 "AERO_JOURNAL_FSYNC must be 0 or 1");
    unsetenv("AERO_JOURNAL_FSYNC");
}

// --------------------------------------------------------------------------
// Compaction.
// --------------------------------------------------------------------------

TEST(Compaction, DirectoryBecomesOneDeduplicatedFile)
{
    const std::string dir = tempPath("compact_dir");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0", /*claims=*/true));
        ASSERT_TRUE(w0.tryClaim(taskKey(0)));
        w0.record(taskKey(0), Json(10));
        w0.record(taskKey(1), Json(99));  // superseded below
    }
    {
        CampaignJournal w1(dir, "unit-test", unitConfig(),
                           workerOptions("w1"));
        w1.record(taskKey(1), Json(11));
        w1.record(taskKey(2), Json(12));
    }
    const CompactStats stats = compactCampaignJournal(dir);
    EXPECT_EQ(stats.files, 2u);
    EXPECT_EQ(stats.recordsIn, 4u);
    EXPECT_EQ(stats.recordsOut, 3u);

    std::vector<std::string> remaining;
    for (const auto &entry : fs::directory_iterator(dir))
        remaining.push_back(entry.path().filename().string());
    EXPECT_EQ(remaining,
              std::vector<std::string>{"journal.compacted.jsonl"})
        << "worker files and claims.jsonl must be gone";

    CampaignJournal reader(dir, "unit-test", unitConfig(),
                           workerOptions("reader"));
    EXPECT_EQ(reader.cachedCount(), 3u);
    for (int t = 0; t < 3; ++t)
        EXPECT_EQ(reader.cached(taskKey(t)).asInt64(), 10 + t);
}

TEST(Compaction, SingleFileDeduplicatesInPlaceAndIsIdempotent)
{
    const std::string path = tempPath("compact_file.jsonl");
    {
        CampaignJournal journal(path, "unit-test", unitConfig());
        journal.record(taskKey(0), Json(1));
        journal.record(taskKey(0), Json(2));
        journal.record(taskKey(1), Json(3));
    }
    const CompactStats stats = compactCampaignJournal(path);
    EXPECT_EQ(stats.files, 1u);
    EXPECT_EQ(stats.recordsIn, 3u);
    EXPECT_EQ(stats.recordsOut, 2u);
    const std::string once = readFile(path);

    const CompactStats again = compactCampaignJournal(path);
    EXPECT_EQ(again.recordsIn, 2u);
    EXPECT_EQ(again.recordsOut, 2u);
    EXPECT_EQ(readFile(path), once) << "compaction must be idempotent";

    CampaignJournal reopened(path, "unit-test", unitConfig());
    EXPECT_EQ(reopened.cachedCount(), 2u);
    EXPECT_EQ(reopened.cached(taskKey(0)).asInt64(), 2);
}

TEST(CompactionDeath, MismatchedFingerprintsRefuse)
{
    const std::string dir = tempPath("compact_mixed");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0"));
        w0.record(taskKey(0), Json(0));
    }
    // Forge a same-name worker file with a different configuration
    // (a journal handle on the shared directory would refuse to open).
    Json other = unitConfig();
    other["spliced"] = true;
    const std::string foreign = tempPath("compact_mixed_src");
    {
        CampaignJournal w1(foreign, "unit-test", other,
                           workerOptions("w1"));
        w1.record(taskKey(1), Json(1));
    }
    fs::copy_file(fs::path(foreign) / "journal.w1.jsonl",
                  fs::path(dir) / "journal.w1.jsonl");
    EXPECT_DEATH(compactCampaignJournal(dir),
                 "belongs to a different campaign configuration");
    EXPECT_DEATH(compactCampaignJournal(tempPath("compact_missing")),
                 "no campaign journal");
}

// --------------------------------------------------------------------------
// Status snapshots: per-worker progress and claim ownership.
// --------------------------------------------------------------------------

TEST(Status, SyntheticDirectoryReportsProgressClaimsAndLiveness)
{
    // Build an aero-campaign/2 directory by hand: w0 claimed and
    // finished a task, w1 holds a live pending claim, and a forged
    // third claim belongs to a worker whose pid is definitely dead.
    const std::string dir = tempPath("status_dir");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0", /*claims=*/true));
        ASSERT_TRUE(w0.tryClaim(taskKey(0)));
        w0.record(taskKey(0), Json(10));
    }
    {
        CampaignJournal w1(dir, "unit-test", unitConfig(),
                           workerOptions("w1", /*claims=*/true));
        ASSERT_TRUE(w1.tryClaim(taskKey(1)));
    }
    const std::string fp =
        CampaignJournal::fingerprint("unit-test", unitConfig());
    const std::string claimsPath =
        (fs::path(dir) / "claims.jsonl").string();
    writeFile(claimsPath,
              readFile(claimsPath) + "{\"fingerprint\":\"" + fp +
                  "\",\"key\":{\"task\":2},\"worker\":\"w2\",\"pid\":" +
                  std::to_string(deadPid()) + "}\n");

    const CampaignStatus status = campaignStatus(dir);
    EXPECT_EQ(status.schema, "aero-campaign/2");
    EXPECT_EQ(status.campaign, "unit-test");
    EXPECT_EQ(status.fingerprint, fp);
    EXPECT_EQ(status.records, 1u);
    EXPECT_EQ(status.distinctKeys, 1u);
    ASSERT_EQ(status.workers.size(), 2u);
    EXPECT_EQ(status.workers[0].file, "journal.w0.jsonl");
    EXPECT_EQ(status.workers[0].worker, "w0");
    EXPECT_EQ(status.workers[0].records, 1u);
    EXPECT_EQ(status.workers[1].worker, "w1");
    EXPECT_EQ(status.workers[1].records, 0u);

    // Claims carry this (live) test process's pid except the forgery.
    ASSERT_EQ(status.claims.size(), 3u);
    EXPECT_EQ(status.claims[0].key.dump(), taskKey(0).dump());
    EXPECT_EQ(status.claims[0].worker, "w0");
    EXPECT_TRUE(status.claims[0].live);
    EXPECT_TRUE(status.claims[0].completed);
    EXPECT_EQ(status.claims[1].worker, "w1");
    EXPECT_TRUE(status.claims[1].live);
    EXPECT_FALSE(status.claims[1].completed);
    EXPECT_EQ(status.claims[2].worker, "w2");
    EXPECT_FALSE(status.claims[2].live);
    EXPECT_FALSE(status.claims[2].completed);

    const std::string text = formatCampaignStatus(status);
    EXPECT_NE(text.find("campaign 'unit-test' (aero-campaign/2)"),
              std::string::npos);
    EXPECT_NE(text.find("1 distinct task(s) journaled (1 record(s) "
                        "across 2 file(s))"),
              std::string::npos);
    EXPECT_NE(text.find("3 claim(s), 2 pending"), std::string::npos);
    EXPECT_NE(text.find("{\"task\":2} -> worker w2"),
              std::string::npos);
    EXPECT_NE(text.find("dead), pending"), std::string::npos);
}

TEST(Status, ReclaimedTaskReportsTheLastClaimant)
{
    // Re-claiming a dead worker's task appends a new claim line; the
    // status must attribute the task to the latest claimant only.
    const std::string dir = tempPath("status_reclaim");
    const std::string fp =
        CampaignJournal::fingerprint("unit-test", unitConfig());
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0", /*claims=*/true));
        ASSERT_TRUE(w0.tryClaim(taskKey(0)));
    }
    const std::string claimsPath =
        (fs::path(dir) / "claims.jsonl").string();
    writeFile(claimsPath,
              readFile(claimsPath) + "{\"fingerprint\":\"" + fp +
                  "\",\"key\":{\"task\":0},\"worker\":\"w1\",\"pid\":" +
                  std::to_string(deadPid()) + "}\n");
    const CampaignStatus status = campaignStatus(dir);
    ASSERT_EQ(status.claims.size(), 1u);
    EXPECT_EQ(status.claims[0].worker, "w1");
    EXPECT_FALSE(status.claims[0].live);
}

TEST(Status, SingleFileJournalHasNoClaims)
{
    const std::string path = tempPath("status_file.jsonl");
    {
        CampaignJournal journal(path, "unit-test", unitConfig());
        journal.record(taskKey(0), Json(0));
        journal.record(taskKey(0), Json(1));  // duplicate key
        journal.record(taskKey(1), Json(2));
    }
    const CampaignStatus status = campaignStatus(path);
    EXPECT_EQ(status.schema, "aero-campaign/1");
    EXPECT_EQ(status.campaign, "unit-test");
    EXPECT_EQ(status.records, 3u);
    EXPECT_EQ(status.distinctKeys, 2u);
    ASSERT_EQ(status.workers.size(), 1u);
    EXPECT_EQ(status.workers[0].worker, "");
    EXPECT_EQ(status.workers[0].records, 3u);
    EXPECT_TRUE(status.claims.empty());
    const std::string text = formatCampaignStatus(status);
    EXPECT_NE(text.find("2 distinct task(s) journaled (3 record(s) "
                        "across 1 file(s))"),
              std::string::npos);
    EXPECT_EQ(text.find("claim(s)"), std::string::npos);
}

TEST(Status, TornTailsAreSkippedNotFatal)
{
    // Status may race live appends: a torn final journal line and a
    // torn final claim line are both in-flight writes, not corruption.
    const std::string dir = tempPath("status_torn");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0", /*claims=*/true));
        ASSERT_TRUE(w0.tryClaim(taskKey(0)));
        w0.record(taskKey(0), Json(0));
    }
    const std::string journalPath =
        (fs::path(dir) / "journal.w0.jsonl").string();
    writeFile(journalPath, readFile(journalPath) + "{\"fingerp");
    const std::string claimsPath =
        (fs::path(dir) / "claims.jsonl").string();
    writeFile(claimsPath, readFile(claimsPath) + "{\"fingerp");
    const CampaignStatus status = campaignStatus(dir);
    EXPECT_EQ(status.records, 1u);
    ASSERT_EQ(status.claims.size(), 1u);
    EXPECT_TRUE(status.claims[0].completed);
}

TEST(StatusDeath, MissingAndMismatchedJournalsAreFatal)
{
    EXPECT_DEATH(campaignStatus(tempPath("status_missing")),
                 "no campaign journal");
    // Splice in a worker file from a differently-configured campaign.
    const std::string dir = tempPath("status_mixed");
    {
        CampaignJournal w0(dir, "unit-test", unitConfig(),
                           workerOptions("w0"));
        w0.record(taskKey(0), Json(0));
    }
    Json other = unitConfig();
    other["spliced"] = true;
    const std::string foreign = tempPath("status_mixed_src");
    {
        CampaignJournal w1(foreign, "unit-test", other,
                           workerOptions("w1"));
        w1.record(taskKey(1), Json(1));
    }
    fs::copy_file(fs::path(foreign) / "journal.w1.jsonl",
                  fs::path(dir) / "journal.w1.jsonl");
    EXPECT_DEATH(campaignStatus(dir),
                 "belongs to a different campaign configuration");
}

// --------------------------------------------------------------------------
// Sharded checkpointed runs: disjoint expand() slices into one journal.
// --------------------------------------------------------------------------

TEST(ShardedSweep, ShardsUnionToTheCleanArtifact)
{
    const SweepSpec spec = tinySpec();
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));
    const std::string path = tempPath("sharded.jsonl");
    {
        SweepCheckpoint shard0(path, spec);
        SweepRunner(1).run(spec, shard0, {}, /*shardIndex=*/0,
                           /*shardCount=*/2);
        EXPECT_EQ(shard0.cachedCount(), spec.size() / 2);
    }
    SweepCheckpoint shard1(path, spec);
    const auto results = SweepRunner(1).run(spec, shard1, {},
                                            /*shardIndex=*/1,
                                            /*shardCount=*/2);
    EXPECT_EQ(shard1.cachedCount(), spec.size());
    EXPECT_EQ(artifactOf(spec, results), reference);
}

TEST(ShardedSweep, OffShardPointsAreNeverSimulated)
{
    const SweepSpec spec = tinySpec();
    const std::string path = tempPath("shard_skip.jsonl");
    SweepCheckpoint ckpt(path, spec);
    std::size_t simulated = 0;
    SweepRunner(1).run(
        spec, ckpt,
        [&](std::size_t, std::size_t, const SimResult &) {
            simulated += 1;
        },
        /*shardIndex=*/1, /*shardCount=*/4);
    EXPECT_EQ(simulated, spec.size() / 4);
    EXPECT_EQ(ckpt.cachedCount(), spec.size() / 4);
}

// --------------------------------------------------------------------------
// The capstone: real forked worker processes, randomized SIGKILLs, and
// a merged resume that must be byte-identical to a clean run.
// --------------------------------------------------------------------------

/** Run one forked worker over @p spec in @p dir; never returns. */
[[noreturn]] void
workerMain(const std::string &dir, const SweepSpec &spec, int worker)
{
    JournalOptions options;
    // Built by append (not operator+) to dodge GCC 12's -Wrestrict
    // false positive on char* + std::string&&.
    options.workerId = "w";
    options.workerId += std::to_string(worker);
    options.claims = true;
    SweepCheckpoint ckpt(dir, spec, "sweep", options);
    SweepRunner(1).run(spec, ckpt);
    std::_Exit(0);
}

TEST(MultiProcessSweep, RandomlyKilledWorkersMergeBitIdentical)
{
    const SweepSpec spec = tinySpec();
    const std::string reference =
        artifactOf(spec, SweepRunner(1).run(spec));

    std::mt19937 rng(20260808);
    for (int trial = 0; trial < 3; ++trial) {
        const std::string dir =
            tempPath("mp_trial" + std::to_string(trial));
        constexpr int kWorkers = 3;
        std::vector<pid_t> pids;
        for (int w = 0; w < kWorkers; ++w) {
            const pid_t pid = fork();
            ASSERT_GE(pid, 0);
            if (pid == 0)
                workerMain(dir, spec, w);  // never returns
            pids.push_back(pid);
        }
        // SIGKILL one worker at a random moment — possibly mid-claim,
        // mid-simulation, or mid-append.
        const int victim = static_cast<int>(rng() % kWorkers);
        usleep(1000 * (rng() % 120));
        kill(pids[static_cast<std::size_t>(victim)], SIGKILL);
        for (const pid_t pid : pids) {
            int status = 0;
            ASSERT_EQ(waitpid(pid, &status, 0), pid);
            if (pid != pids[static_cast<std::size_t>(victim)]) {
                EXPECT_TRUE(WIFEXITED(status) &&
                            WEXITSTATUS(status) == 0)
                    << "surviving worker died, trial " << trial;
            }
        }
        // The merged resume completes whatever the victim dropped and
        // must reproduce the clean artifact byte-for-byte.
        SweepCheckpoint merged(dir, spec, "sweep",
                               workerOptions("merge"));
        const auto results = SweepRunner(2).run(spec, merged);
        EXPECT_EQ(artifactOf(spec, results), reference)
            << "trial " << trial << " (killed w" << victim << ")";

        // And compaction of the survivor files round-trips.
        const CompactStats stats = compactCampaignJournal(dir);
        EXPECT_EQ(stats.recordsOut, spec.size());
        SweepCheckpoint compacted(dir, spec, "sweep",
                                  workerOptions("merge"));
        EXPECT_EQ(compacted.cachedCount(), spec.size());
        const auto again = SweepRunner(1).run(spec, compacted);
        EXPECT_EQ(artifactOf(spec, again), reference);
    }
}

} // namespace
} // namespace aero
