/**
 * @file
 * Unit tests for the ECC model: decode outcomes, margins, requirement.
 */

#include <gtest/gtest.h>

#include "ecc/ecc_model.hh"

namespace aero
{
namespace
{

TEST(Ecc, DefaultConfigMatchesPaper)
{
    EccModel ecc;
    EXPECT_EQ(ecc.config().capability, 72);
    EXPECT_EQ(ecc.config().requirement, 63);
}

TEST(Ecc, CleanDecodeIsHardPath)
{
    EccModel ecc;
    const auto r = ecc.decode(10.0);
    EXPECT_TRUE(r.correctable);
    EXPECT_FALSE(r.usedSoftDecode);
    EXPECT_EQ(r.latency, ecc.config().hardDecodeLatency);
    EXPECT_EQ(r.margin, 53);
}

TEST(Ecc, GuardBandTriggersSoftDecode)
{
    EccModel ecc;
    const auto r = ecc.decode(68.0);  // between requirement and capability
    EXPECT_TRUE(r.correctable);
    EXPECT_TRUE(r.usedSoftDecode);
    EXPECT_GT(r.latency, ecc.config().hardDecodeLatency);
}

TEST(Ecc, BeyondCapabilityIsUncorrectable)
{
    EccModel ecc;
    const auto r = ecc.decode(80.0);
    EXPECT_FALSE(r.correctable);
    EXPECT_LT(r.margin, 0);
}

TEST(Ecc, MarginClampsAtZero)
{
    EccModel ecc;
    EXPECT_EQ(ecc.marginFor(100.0), 0);
    EXPECT_EQ(ecc.marginFor(20.0), 43);
    EXPECT_EQ(ecc.marginFor(0.0), 63);
}

TEST(Ecc, MeetsRequirementBoundary)
{
    EccModel ecc;
    EXPECT_TRUE(ecc.meetsRequirement(63.0));
    EXPECT_FALSE(ecc.meetsRequirement(63.5));
}

TEST(Ecc, WeakerCodeViaConfig)
{
    EccConfig cfg;
    cfg.capability = 45;
    cfg.requirement = 40;
    EccModel ecc(cfg);
    EXPECT_TRUE(ecc.decode(39.0).correctable);
    EXPECT_FALSE(ecc.decode(46.0).correctable);
    EXPECT_EQ(ecc.marginFor(16.0), 24);
}

TEST(Ecc, InvalidConfigPanics)
{
    EccConfig cfg;
    cfg.capability = 40;
    cfg.requirement = 60;
    EXPECT_DEATH(EccModel{cfg}, "requirement");
}

} // namespace
} // namespace aero
