/**
 * @file
 * The streaming trace subsystem: `aero-trace/1` format encode/decode,
 * the chunk-buffered file reader (including its malformed-input battery
 * and a randomized-mutation fuzz pass), the MSRC CSV importer, the
 * tenant-mix merge layer, and the bounded-memory replay contract for
 * multi-million-request traces.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "exp/sweep_impl.hh"
#include "ssd/ssd.hh"
#include "workload/synthetic.hh"
#include "workload/trace_io/import.hh"
#include "workload/trace_io/stream.hh"
#include "workload/trace_io/tenant.hh"

using namespace aero;

namespace
{

/** A /tmp path removed when the guard leaves scope. */
struct TempFile
{
    explicit TempFile(const std::string &name) : path("/tmp/" + name) {}
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

Trace
smallSyntheticTrace(std::uint64_t requests = 3000, std::uint64_t seed = 7)
{
    SyntheticConfig cfg;
    cfg.spec = workloadByName("prxy");
    cfg.footprintPages = 1 << 14;
    cfg.numRequests = requests;
    cfg.seed = seed;
    return generateTrace(cfg);
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(static_cast<bool>(out)) << path;
}

bool
sameRecord(const TraceRecord &a, const TraceRecord &b)
{
    return a.arrival == b.arrival && a.op == b.op &&
           a.startPage == b.startPage && a.pages == b.pages &&
           a.tenant == b.tenant;
}

} // namespace

// ---------------------------------------------------------------------------
// Format layer
// ---------------------------------------------------------------------------

TEST(TraceFormat, RecordEncodeDecodeRoundTrips)
{
    std::mt19937_64 rng(42);
    Tick arrival = 0;
    for (int i = 0; i < 1000; ++i) {
        TraceRecord rec;
        arrival += rng() % 100000;
        rec.arrival = arrival;
        rec.op = rng() % 2 == 0 ? IoOp::Read : IoOp::Write;
        rec.startPage = rng() % (1ULL << 40);
        rec.pages = static_cast<std::uint32_t>(1 + rng() % 4096);
        rec.tenant = static_cast<TenantId>(rng() % 16);
        std::array<std::uint8_t, trace_io::kRecordBytes> raw;
        trace_io::encodeRecord(rec, raw);
        TraceRecord out;
        std::string err;
        ASSERT_TRUE(trace_io::decodeRecord(raw.data(), &out, &err)) << err;
        EXPECT_TRUE(sameRecord(rec, out));
    }
}

TEST(TraceFormat, DecodeRejectsStructurallyInvalidRecords)
{
    TraceRecord rec;
    rec.pages = 4;
    std::array<std::uint8_t, trace_io::kRecordBytes> raw;
    trace_io::encodeRecord(rec, raw);
    TraceRecord out;
    std::string err;

    auto mutated = raw;
    mutated[20] = 2;  // op
    EXPECT_FALSE(trace_io::decodeRecord(mutated.data(), &out, &err));
    EXPECT_NE(err.find("op"), std::string::npos);

    mutated = raw;
    mutated[21] = 1;  // reserved
    EXPECT_FALSE(trace_io::decodeRecord(mutated.data(), &out, &err));
    EXPECT_NE(err.find("reserved"), std::string::npos);

    mutated = raw;
    for (int i = 16; i < 20; ++i)
        mutated[i] = 0;  // pages = 0
    EXPECT_FALSE(trace_io::decodeRecord(mutated.data(), &out, &err));
    EXPECT_NE(err.find("zero page count"), std::string::npos);

    mutated = raw;
    for (int i = 8; i < 16; ++i)
        mutated[i] = 0xff;  // startPage = UINT64_MAX with pages = 4
    EXPECT_FALSE(trace_io::decodeRecord(mutated.data(), &out, &err));
    EXPECT_NE(err.find("overflows"), std::string::npos);
}

TEST(TraceFormat, HeaderEncodeDecodeRoundTripsAndValidates)
{
    trace_io::TraceFileHeader header;
    header.flags = trace_io::kFlagTenantTags;
    header.pageKB = 4;
    std::array<std::uint8_t, trace_io::kHeaderBytes> raw;
    trace_io::encodeHeader(header, raw);
    trace_io::TraceFileHeader out;
    std::string err;
    ASSERT_TRUE(trace_io::decodeHeader(raw.data(), &out, &err)) << err;
    EXPECT_EQ(out.flags, header.flags);
    EXPECT_EQ(out.pageKB, 4u);
    EXPECT_TRUE(out.hasTenantTags());

    auto mutated = raw;
    mutated[0] = 'X';
    EXPECT_FALSE(trace_io::decodeHeader(mutated.data(), &out, &err));
    EXPECT_NE(err.find("magic"), std::string::npos);

    mutated = raw;
    mutated[8] = 9;  // version
    EXPECT_FALSE(trace_io::decodeHeader(mutated.data(), &out, &err));
    EXPECT_NE(err.find("version"), std::string::npos);

    mutated = raw;
    mutated[12] = 23;  // record size
    EXPECT_FALSE(trace_io::decodeHeader(mutated.data(), &out, &err));
    EXPECT_NE(err.find("record size"), std::string::npos);

    mutated = raw;
    mutated[17] = 0x80;  // unknown flag bit
    EXPECT_FALSE(trace_io::decodeHeader(mutated.data(), &out, &err));
    EXPECT_NE(err.find("flag"), std::string::npos);

    mutated = raw;
    for (int i = 20; i < 24; ++i)
        mutated[i] = 0;  // page size 0
    EXPECT_FALSE(trace_io::decodeHeader(mutated.data(), &out, &err));
    EXPECT_NE(err.find("page size"), std::string::npos);

    mutated = raw;
    mutated[30] = 1;  // reserved
    EXPECT_FALSE(trace_io::decodeHeader(mutated.data(), &out, &err));
    EXPECT_NE(err.find("reserved"), std::string::npos);
}

TEST(TraceFormat, PageSpanRoundsSubPageRequestsUp)
{
    constexpr std::uint32_t kPage = 16 * 1024;
    trace_io::PageSpan span;

    // Wholly inside one page.
    ASSERT_TRUE(trace_io::pageSpanForBytes(8192, 4096, kPage, &span));
    EXPECT_EQ(span.startPage, 0u);
    EXPECT_EQ(span.pages, 1u);

    // A 8-byte request straddling the page-0/page-1 boundary occupies
    // both pages — the explicit contract for sub-page CSV requests.
    ASSERT_TRUE(trace_io::pageSpanForBytes(kPage - 4, 8, kPage, &span));
    EXPECT_EQ(span.startPage, 0u);
    EXPECT_EQ(span.pages, 2u);

    // Exactly page-aligned.
    ASSERT_TRUE(trace_io::pageSpanForBytes(kPage, kPage, kPage, &span));
    EXPECT_EQ(span.startPage, 1u);
    EXPECT_EQ(span.pages, 1u);

    // One byte past a whole page spills into the next.
    ASSERT_TRUE(
        trace_io::pageSpanForBytes(2 * kPage, kPage + 1, kPage, &span));
    EXPECT_EQ(span.startPage, 2u);
    EXPECT_EQ(span.pages, 2u);

    // Zero-size and overflowing ranges are rejected.
    EXPECT_FALSE(trace_io::pageSpanForBytes(0, 0, kPage, &span));
    EXPECT_FALSE(trace_io::pageSpanForBytes(
        std::numeric_limits<std::uint64_t>::max(), 2, kPage, &span));
}

// ---------------------------------------------------------------------------
// Writer / reader round trip
// ---------------------------------------------------------------------------

TEST(TraceStreamIo, WriteStreamRoundTripsAtOneAndFourThreads)
{
    const Trace trace = smallSyntheticTrace();
    TempFile file("aero_trace_roundtrip.trc");
    writeTraceFile(trace, file.path, 16, /*tenant_tags=*/false);

    // Four workers stream the same file independently (own reader each);
    // every pass must reproduce the written records exactly.
    for (const int threads : {1, 4}) {
        std::vector<int> lanes(static_cast<std::size_t>(threads));
        const auto oks = parallelMap(
            lanes,
            [&](int) {
                FileTraceStream stream(file.path);
                EXPECT_EQ(stream.pageKB(), 16u);
                EXPECT_FALSE(stream.hasTenantTags());
                TraceRecord rec;
                std::size_t i = 0;
                while (stream.next(rec)) {
                    if (i >= trace.size() || !sameRecord(rec, trace[i]))
                        return false;
                    ++i;
                }
                return i == trace.size() &&
                       stream.recordsRead() == trace.size();
            },
            threads);
        for (const auto ok : oks)
            EXPECT_TRUE(ok);
    }
}

TEST(TraceStreamIo, StreamStatsMatchVectorStatsExactly)
{
    const Trace trace = smallSyntheticTrace(2000, 13);
    TempFile file("aero_trace_stats.trc");
    writeTraceFile(trace, file.path, 16);

    const TraceStats vec = computeStats(trace, 16);
    FileTraceStream stream(file.path);
    const StreamTraceStats st = computeStreamStats(stream, 16);
    EXPECT_EQ(st.total.requests, vec.requests);
    EXPECT_EQ(st.total.readRatio, vec.readRatio);
    EXPECT_EQ(st.total.avgReqSizeKB, vec.avgReqSizeKB);
    EXPECT_EQ(st.total.avgInterArrivalMs, vec.avgInterArrivalMs);
    EXPECT_EQ(st.total.maxPage, vec.maxPage);
    // Single-tenant trace: the tenant-0 bucket IS the total.
    ASSERT_EQ(st.perTenant.size(), 1u);
    EXPECT_EQ(st.perTenant[0].requests, vec.requests);
}

TEST(TraceStreamIo, WriterEnforcesValidityAtAppendTime)
{
    TempFile file("aero_trace_writer_checks.trc");
    EXPECT_DEATH(
        {
            TraceWriter w(file.path, 16, false);
            w.append({100, IoOp::Read, 0, 1, 0});
            w.append({50, IoOp::Read, 0, 1, 0});
        },
        "out of order");
    EXPECT_DEATH(
        {
            TraceWriter w(file.path, 16, false);
            w.append({0, IoOp::Read, 0, 0, 0});
        },
        "zero page count");
}

// ---------------------------------------------------------------------------
// Malformed-input battery (reader, OnError::Flag)
// ---------------------------------------------------------------------------

TEST(TraceStreamMalformed, TruncatedHeaderIsRejectedWithPosition)
{
    TempFile file("aero_trace_truncated_header.trc");
    const Trace trace = smallSyntheticTrace(10);
    writeTraceFile(trace, file.path, 16);
    const std::string bytes = readAll(file.path);
    writeAll(file.path, bytes.substr(0, 10));

    FileTraceStream stream(file.path, FileTraceStream::OnError::Flag);
    EXPECT_FALSE(stream.ok());
    EXPECT_NE(stream.error().message.find("truncated header"),
              std::string::npos);
    EXPECT_EQ(stream.error().byteOffset, 10u);
    TraceRecord rec;
    EXPECT_FALSE(stream.next(rec));
}

TEST(TraceStreamMalformed, TornFinalRecordIsDetected)
{
    TempFile file("aero_trace_torn_tail.trc");
    const Trace trace = smallSyntheticTrace(10);
    writeTraceFile(trace, file.path, 16);
    const std::string bytes = readAll(file.path);
    // Chop 7 bytes off the final record: a mid-append crash.
    writeAll(file.path, bytes.substr(0, bytes.size() - 7));

    FileTraceStream stream(file.path, FileTraceStream::OnError::Flag);
    ASSERT_TRUE(stream.ok());
    TraceRecord rec;
    std::size_t n = 0;
    while (stream.next(rec))
        ++n;
    EXPECT_EQ(n, trace.size() - 1);  // every whole record still streams
    EXPECT_FALSE(stream.ok());
    EXPECT_NE(stream.error().message.find("torn final record"),
              std::string::npos);
    EXPECT_EQ(stream.error().record, trace.size());
    EXPECT_NE(stream.error().toString().find("byte"), std::string::npos);
}

TEST(TraceStreamMalformed, OutOfOrderArrivalsAreRejected)
{
    TempFile file("aero_trace_ooo.trc");
    // Hand-assemble the file: the writer would refuse to produce it.
    trace_io::TraceFileHeader header;
    header.pageKB = 16;
    std::array<std::uint8_t, trace_io::kHeaderBytes> hraw;
    trace_io::encodeHeader(header, hraw);
    std::string bytes(reinterpret_cast<const char *>(hraw.data()),
                      hraw.size());
    std::array<std::uint8_t, trace_io::kRecordBytes> rraw;
    trace_io::encodeRecord({2000, IoOp::Read, 0, 1, 0}, rraw);
    bytes.append(reinterpret_cast<const char *>(rraw.data()), rraw.size());
    trace_io::encodeRecord({1000, IoOp::Read, 0, 1, 0}, rraw);
    bytes.append(reinterpret_cast<const char *>(rraw.data()), rraw.size());
    writeAll(file.path, bytes);

    FileTraceStream stream(file.path, FileTraceStream::OnError::Flag);
    TraceRecord rec;
    EXPECT_TRUE(stream.next(rec));
    EXPECT_FALSE(stream.next(rec));
    EXPECT_FALSE(stream.ok());
    EXPECT_NE(stream.error().message.find("out-of-order"),
              std::string::npos);
    EXPECT_EQ(stream.error().record, 2u);
}

TEST(TraceStreamMalformed, FatalModeDiesWithPositionedMessage)
{
    TempFile file("aero_trace_fatal.trc");
    writeAll(file.path, "not a trace at all, clearly");
    EXPECT_DEATH(FileTraceStream stream(file.path), "trace file");
    EXPECT_DEATH(FileTraceStream stream("/nonexistent/path.trc"),
                 "cannot open");
}

TEST(TraceStreamMalformed, RandomizedMutationsNeverCrashAndPosition)
{
    // The trace analog of the JSON parser's randomized-mutation fuzz:
    // flip one byte of a valid file at a random position; whatever the
    // reader rejects must carry an in-range byte offset, and nothing may
    // crash. Many mutations keep the file valid (payload bytes) — the
    // floor asserts the mutator actually bites.
    TempFile file("aero_trace_fuzz.trc");
    const Trace trace = smallSyntheticTrace(64, 3);
    writeTraceFile(trace, file.path, 16);
    const std::string pristine = readAll(file.path);

    std::mt19937_64 rng(0x5eed);
    int rejected = 0;
    for (int i = 0; i < 400; ++i) {
        std::string bytes = pristine;
        const std::size_t pos = rng() % bytes.size();
        const char flip = static_cast<char>(rng() % 256);
        if (bytes[pos] == flip)
            continue;
        bytes[pos] = flip;
        writeAll(file.path, bytes);

        FileTraceStream stream(file.path,
                               FileTraceStream::OnError::Flag);
        TraceRecord rec;
        std::uint64_t streamed = 0;
        while (stream.next(rec))
            ++streamed;
        if (stream.ok()) {
            EXPECT_EQ(streamed, trace.size());
            continue;
        }
        rejected += 1;
        EXPECT_LE(stream.error().byteOffset, bytes.size());
        EXPECT_FALSE(stream.error().toString().empty());
        EXPECT_LE(streamed, trace.size());
    }
    EXPECT_GT(rejected, 50);
}

// ---------------------------------------------------------------------------
// MSRC CSV importer
// ---------------------------------------------------------------------------

namespace
{

/** Import CSV text through the flag-mode surface into a Trace. */
bool
importString(const std::string &csv, Trace *out,
             trace_io::TraceError *err,
             MsrcImportOptions opts = MsrcImportOptions{})
{
    std::istringstream in(csv);
    out->clear();
    return importMsrcCsv(
        in, opts, [&](const TraceRecord &rec) { out->push_back(rec); },
        nullptr, err);
}

} // namespace

TEST(TraceImport, ParsesMsrcLinesAndRoundsPages)
{
    // 16 KiB pages: the third line straddles the page-0/page-1 boundary
    // with an 8-byte request and must round to two pages.
    const std::string csv =
        "128166372003061629,src1,0,Read,8192,4096,321\n"
        "128166372003062000,src1,0,Write,16384,16384,502\n"
        "128166372003065000,src1,0,read,16380,8,115\n";
    Trace out;
    trace_io::TraceError err;
    ASSERT_TRUE(importString(csv, &out, &err)) << err.toString();
    ASSERT_EQ(out.size(), 3u);

    EXPECT_EQ(out[0].arrival, 0u);  // rebased to zero
    EXPECT_EQ(out[0].op, IoOp::Read);
    EXPECT_EQ(out[0].startPage, 0u);
    EXPECT_EQ(out[0].pages, 1u);

    EXPECT_EQ(out[1].arrival, 371u * 100u);  // 100 ns filetime ticks
    EXPECT_EQ(out[1].op, IoOp::Write);
    EXPECT_EQ(out[1].startPage, 1u);
    EXPECT_EQ(out[1].pages, 1u);

    EXPECT_EQ(out[2].op, IoOp::Read);  // case-insensitive type
    EXPECT_EQ(out[2].startPage, 0u);
    EXPECT_EQ(out[2].pages, 2u);  // sub-page straddle rounds to both
}

TEST(TraceImport, AcceptsCrlfAndBlankLines)
{
    const std::string csv =
        "1000,h,0,Read,0,512,9\r\n"
        "\r\n"
        "2000,h,0,Write,16384,512,9\r\n";
    Trace out;
    trace_io::TraceError err;
    ASSERT_TRUE(importString(csv, &out, &err)) << err.toString();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].startPage, 1u);
}

TEST(TraceImport, RejectsMalformedLinesWithLineNumbers)
{
    Trace out;
    trace_io::TraceError err;

    EXPECT_FALSE(importString("1000,h,0,Read,0,512\nbogus\n", &out, &err));
    EXPECT_EQ(err.line, 2u);
    EXPECT_NE(err.message.find("6 comma-separated fields"),
              std::string::npos);
    EXPECT_NE(err.toString().find("line 2"), std::string::npos);

    EXPECT_FALSE(
        importString("abc,h,0,Read,0,512,9\n", &out, &err));
    EXPECT_EQ(err.line, 1u);
    EXPECT_NE(err.message.find("timestamp"), std::string::npos);

    EXPECT_FALSE(
        importString("1000,h,0,Erase,0,512,9\n", &out, &err));
    EXPECT_NE(err.message.find("unknown request type"),
              std::string::npos);

    EXPECT_FALSE(
        importString("1000,h,0,Read,0,0,9\n", &out, &err));
    EXPECT_NE(err.message.find("zero-byte"), std::string::npos);

    // Out-of-order timestamps are rejected, naming the offending line.
    EXPECT_FALSE(importString("2000,h,0,Read,0,512,9\n"
                              "1000,h,0,Read,0,512,9\n",
                              &out, &err));
    EXPECT_EQ(err.line, 2u);
    EXPECT_NE(err.message.find("out-of-order"), std::string::npos);

    // A 21-digit offset overflows u64 and must be caught, not wrapped.
    EXPECT_FALSE(importString(
        "1000,h,0,Read,184467440737095516160,512,9\n", &out, &err));
    EXPECT_NE(err.message.find("offset"), std::string::npos);

    // An in-range offset whose byte span overflows is also rejected.
    EXPECT_FALSE(importString(
        "1000,h,0,Read,18446744073709551615,512,9\n", &out, &err));
    EXPECT_NE(err.message.find("overflows"), std::string::npos);
}

TEST(TraceImport, RandomizedMutationsRejectCleanly)
{
    const std::string pristine =
        "1000,host,0,Read,8192,4096,10\n"
        "2000,host,0,Write,16384,16384,20\n"
        "3000,host,0,Read,32768,512,30\n"
        "4000,host,0,Write,65536,8192,40\n";
    std::mt19937_64 rng(77);
    const char junk[] = {',', 'x', '-', '.', ' ', '\x01', '9', '\0'};
    int rejected = 0;
    for (int i = 0; i < 400; ++i) {
        std::string csv = pristine;
        const std::size_t pos = rng() % csv.size();
        csv[pos] = junk[rng() % sizeof(junk)];
        Trace out;
        trace_io::TraceError err;
        if (importString(csv, &out, &err))
            continue;
        rejected += 1;
        EXPECT_GE(err.line, 1u) << csv;
        EXPECT_LE(err.line, 4u) << csv;
        EXPECT_FALSE(err.toString().empty());
    }
    EXPECT_GT(rejected, 100);
}

TEST(TraceImport, FileImportRoundTripsThroughBinaryFormat)
{
    TempFile csv("aero_import_rt.csv");
    TempFile trc("aero_import_rt.trc");
    writeAll(csv.path, "1000,h,0,Read,8192,4096,9\n"
                       "2000,h,0,Write,16380,8,9\n"
                       "3000,h,0,Read,1048576,65536,9\n");
    MsrcImportOptions opts;
    opts.tenant = 3;
    const ImportSummary summary =
        importMsrcCsvFile(csv.path, trc.path, opts);
    EXPECT_EQ(summary.records, 3u);
    EXPECT_EQ(summary.reads, 2u);
    EXPECT_EQ(summary.writes, 1u);

    FileTraceStream stream(trc.path);
    EXPECT_TRUE(stream.hasTenantTags());
    TraceRecord rec;
    ASSERT_TRUE(stream.next(rec));
    EXPECT_EQ(rec.tenant, 3u);
    ASSERT_TRUE(stream.next(rec));
    EXPECT_EQ(rec.pages, 2u);  // 8 bytes straddling the page boundary
    ASSERT_TRUE(stream.next(rec));
    EXPECT_EQ(rec.pages, 4u);  // 64 KiB = four 16-KiB pages
    EXPECT_FALSE(stream.next(rec));
    EXPECT_TRUE(stream.ok());
}

// ---------------------------------------------------------------------------
// Tenant mix
// ---------------------------------------------------------------------------

TEST(TenantMix, MergesByArrivalWithStableTieBreak)
{
    Trace a = {{100, IoOp::Read, 0, 1, 0}, {300, IoOp::Read, 1, 1, 0}};
    Trace b = {{100, IoOp::Write, 2, 1, 0}, {200, IoOp::Write, 3, 1, 0}};
    std::vector<std::unique_ptr<TraceStream>> streams;
    streams.push_back(std::make_unique<VectorTraceStream>(std::move(a)));
    streams.push_back(std::make_unique<VectorTraceStream>(std::move(b)));
    TenantMix mix(std::move(streams));
    EXPECT_EQ(mix.tenantCount(), 2u);

    TraceRecord rec;
    // Tie at t=100: tenant 0 wins (stable, lowest index).
    ASSERT_TRUE(mix.next(rec));
    EXPECT_EQ(rec.tenant, 0u);
    EXPECT_EQ(rec.startPage, 0u);
    ASSERT_TRUE(mix.next(rec));
    EXPECT_EQ(rec.tenant, 1u);
    EXPECT_EQ(rec.startPage, 2u);
    ASSERT_TRUE(mix.next(rec));
    EXPECT_EQ(rec.tenant, 1u);
    EXPECT_EQ(rec.arrival, 200u);
    ASSERT_TRUE(mix.next(rec));
    EXPECT_EQ(rec.tenant, 0u);
    EXPECT_EQ(rec.arrival, 300u);
    EXPECT_FALSE(mix.next(rec));
}

TEST(TenantMix, SpecParsingAndValidation)
{
    const auto sources =
        parseTenantMixSpec("prxy:2000:7,hm,@/data/web.trc");
    ASSERT_EQ(sources.size(), 3u);
    EXPECT_EQ(sources[0].preset, "prxy");
    EXPECT_EQ(sources[0].requests, 2000u);
    EXPECT_TRUE(sources[0].hasSeed);
    EXPECT_EQ(sources[0].seed, 7u);
    EXPECT_EQ(sources[1].preset, "hm");
    EXPECT_EQ(sources[1].requests, 0u);
    EXPECT_FALSE(sources[1].hasSeed);
    EXPECT_EQ(sources[2].tracePath, "/data/web.trc");

    EXPECT_DEATH(parseTenantMixSpec(""), "empty");
    EXPECT_DEATH(parseTenantMixSpec("prxy,,hm"), "empty entry");
    EXPECT_DEATH(parseTenantMixSpec("prxy:abc"), "not a number");
    EXPECT_DEATH(parseTenantMixSpec("prxy:0"), "zero request count");
    EXPECT_DEATH(parseTenantMixSpec("prxy:1:2:3"), "too many fields");
    EXPECT_DEATH(parseTenantMixSpec("@"), "empty trace path");
    // Unknown presets fail at open time via workloadByName.
    SyntheticConfig base;
    TenantSource bogus;
    bogus.preset = "nope";
    EXPECT_DEATH(openTenantSource(bogus, base), "unknown workload");
}

TEST(TenantMix, PerTenantMetricsPartitionTheGlobalCounters)
{
    SsdConfig cfg = SsdConfig::tiny();
    Ssd ssd(cfg);
    ssd.metrics().enableTenantTracking(2);

    SyntheticConfig base;
    base.footprintPages = ssd.config().logicalPages();
    base.pageSizeKB = cfg.pageSizeKB;
    base.numRequests = 400;
    std::vector<std::unique_ptr<TraceStream>> streams;
    for (const std::uint64_t seed : {11ULL, 23ULL}) {
        SyntheticConfig wc = base;
        wc.spec = workloadByName("hm");
        wc.seed = seed;
        streams.push_back(
            std::make_unique<VectorTraceStream>(generateTrace(wc)));
    }
    TenantMix mix(std::move(streams));
    ssd.run(mix);

    const SsdMetrics &m = ssd.metrics();
    ASSERT_EQ(m.tenants.size(), 2u);
    EXPECT_EQ(m.tenants[0].reads + m.tenants[1].reads, m.reads);
    EXPECT_EQ(m.tenants[0].writes + m.tenants[1].writes, m.writes);
    EXPECT_GT(m.tenants[0].reads, 0u);
    EXPECT_GT(m.tenants[1].reads, 0u);
    EXPECT_EQ(m.tenants[0].readLatency.count() +
                  m.tenants[1].readLatency.count(),
              m.readLatency.count());
}

// ---------------------------------------------------------------------------
// Replay equivalence and bounded memory
// ---------------------------------------------------------------------------

TEST(TraceStreamReplay, FileStreamReplayMatchesVectorReplayExactly)
{
    const Trace trace = smallSyntheticTrace(1500, 21);
    TempFile file("aero_trace_replay.trc");
    writeTraceFile(trace, file.path, 16);

    SsdConfig cfg = SsdConfig::tiny();
    Ssd vec(cfg);
    vec.run(trace);
    Ssd streamed(cfg);
    FileTraceStream stream(file.path);
    streamed.run(stream);

    const SsdMetrics &a = vec.metrics();
    const SsdMetrics &b = streamed.metrics();
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.erases, b.erases);
    EXPECT_EQ(a.simulatedTime, b.simulatedTime);
    EXPECT_EQ(a.readLatency.percentile(0.999),
              b.readLatency.percentile(0.999));
    EXPECT_EQ(a.writeLatency.percentile(0.999),
              b.writeLatency.percentile(0.999));
}

TEST(TraceStreamReplay, TenMillionRecordsStreamInChunkBoundedMemory)
{
    // The acceptance contract: a >=10M-request trace streams end to end
    // while the reader never buffers more than one chunk — the full
    // trace is never materialized (no Trace vector exists anywhere in
    // this test's streaming pass; 10M records would be ~240 MB).
    constexpr std::uint64_t kRecords = 10'000'000;
    TempFile file("aero_trace_10m.trc");
    {
        TraceWriter writer(file.path, 16, false);
        std::mt19937_64 rng(5);
        Tick arrival = 0;
        TraceRecord rec;
        for (std::uint64_t i = 0; i < kRecords; ++i) {
            arrival += rng() % 2000;
            rec.arrival = arrival;
            rec.op = (rng() % 4 == 0) ? IoOp::Write : IoOp::Read;
            rec.startPage = rng() % (1ULL << 30);
            rec.pages = 1 + static_cast<std::uint32_t>(rng() % 8);
            writer.append(rec);
        }
        writer.close();
        EXPECT_EQ(writer.recordsWritten(), kRecords);
    }

    FileTraceStream stream(file.path);
    const StreamTraceStats stats =
        computeStreamStats(stream, 16, /*per_tenant=*/false);
    EXPECT_EQ(stats.total.requests, kRecords);
    EXPECT_EQ(stream.recordsRead(), kRecords);
    EXPECT_TRUE(stream.ok());
    EXPECT_GT(stream.maxBufferedRecords(), 0u);
    EXPECT_LE(stream.maxBufferedRecords(), FileTraceStream::kChunkRecords);
}
