/**
 * @file
 * Unit tests for the NAND chip model: micro-op protocol, erase-before-
 * write enforcement, aging, and determinism.
 */

#include <gtest/gtest.h>

#include "nand/nand_chip.hh"
#include "nand/erase_model.hh"
#include "nand/population.hh"

namespace aero
{
namespace
{

NandChip
makeChip(std::uint64_t seed = 42)
{
    return NandChip(ChipParams::tlc3d(), ChipGeometry{2, 8, 16}, seed);
}

TEST(NandChip, GeometryAndBlockCount)
{
    auto chip = makeChip();
    EXPECT_EQ(chip.numBlocks(), 16);
    EXPECT_EQ(chip.geometry().totalBlocks(), 16);
}

TEST(NandChip, FullEraseProtocol)
{
    auto chip = makeChip();
    chip.beginErase(0);
    const double req = chip.opRequirement(0);
    EXPECT_GE(req, 1.0);
    int loop = 0;
    VerifyResult vr;
    do {
        ++loop;
        const auto pr =
            chip.erasePulse(0, loop, chip.params().slotsPerLoop);
        EXPECT_EQ(pr.duration, chip.params().defaultTep());
        vr = chip.verifyRead(0);
        EXPECT_EQ(vr.duration, chip.params().tVr);
    } while (!vr.pass && loop < 10);
    EXPECT_TRUE(vr.pass);
    EXPECT_EQ(loop, nIspeFor(chip.params(), req));
    const auto commit = chip.finishErase(0);
    EXPECT_TRUE(commit.complete);
    EXPECT_DOUBLE_EQ(commit.leftoverSlots, 0.0);
    EXPECT_GT(commit.damage, 0.0);
    EXPECT_EQ(chip.block(0).pec(), 1.0);
    EXPECT_EQ(chip.eraseOpsCompleted(), 1u);
}

TEST(NandChip, IncompleteEraseLeavesLeftover)
{
    auto chip = makeChip();
    chip.ageBaseline(0, 2500);  // multi-loop territory
    chip.beginErase(0);
    chip.erasePulse(0, 1, chip.params().slotsPerLoop);  // one loop only
    const auto vr = chip.verifyRead(0);
    EXPECT_FALSE(vr.pass);
    const auto commit = chip.finishErase(0);
    EXPECT_FALSE(commit.complete);
    EXPECT_GT(commit.leftoverSlots, 0.0);
    EXPECT_GT(chip.maxRber(0),
              chip.wearModel().rberBase(
                  chip.wearModel().equivalentPec(chip.block(0).wear())));
}

TEST(NandChip, ProtocolViolationsPanic)
{
    auto chip = makeChip();
    EXPECT_DEATH(chip.erasePulse(0, 1, 7), "beginErase");
    EXPECT_DEATH(chip.verifyRead(0), "beginErase");
    EXPECT_DEATH(chip.finishErase(0), "beginErase");
    chip.beginErase(0);
    EXPECT_DEATH(chip.beginErase(0), "in-flight");
    EXPECT_DEATH(chip.programPage(0), "during in-flight");
    EXPECT_DEATH(chip.erasePulse(0, 99, 1), "V_ERASE range");
}

TEST(NandChip, EraseBeforeWriteEnforced)
{
    auto chip = makeChip();
    const int pages = chip.geometry().pagesPerBlock;
    for (int i = 0; i < pages; ++i)
        EXPECT_EQ(chip.programPage(1), chip.params().tProg);
    EXPECT_DEATH(chip.programPage(1), "erase-before-write");
    // Erase resets the page cursor.
    chip.beginErase(1);
    chip.erasePulse(1, 1, 7);
    chip.finishErase(1);
    EXPECT_EQ(chip.block(1).programmedPages(), 0);
    EXPECT_EQ(chip.programPage(1), chip.params().tProg);
}

TEST(NandChip, ProgramLatencyOverride)
{
    auto chip = makeChip();
    EXPECT_EQ(chip.programPage(2, 455 * kUs), 455 * kUs);
}

TEST(NandChip, ReadPageLatency)
{
    auto chip = makeChip();
    EXPECT_EQ(chip.readPage(0, 3), chip.params().tRead);
    EXPECT_DEATH(chip.readPage(0, 999), "page out of range");
}

TEST(NandChip, AgeBaselineMatchesExplicitCycling)
{
    // Analytic aging must land near the wear of actually running the
    // Baseline loops (population-average equivalence).
    auto aged = makeChip(7);
    aged.ageBaseline(0, 1000);
    EXPECT_EQ(aged.block(0).pec(), 1000.0);
    const double analytic_peq =
        aged.wearModel().equivalentPec(aged.block(0).wear());
    EXPECT_NEAR(analytic_peq, 1000.0, 50.0);
}

TEST(NandChip, DeterministicAcrossInstances)
{
    auto a = makeChip(99);
    auto b = makeChip(99);
    for (int i = 0; i < 3; ++i) {
        a.beginErase(4);
        b.beginErase(4);
        EXPECT_DOUBLE_EQ(a.opRequirement(4), b.opRequirement(4));
        a.erasePulse(4, 1, 7);
        b.erasePulse(4, 1, 7);
        EXPECT_DOUBLE_EQ(a.verifyRead(4).failBits,
                         b.verifyRead(4).failBits);
        a.finishErase(4);
        b.finishErase(4);
    }
}

TEST(NandChip, MaxRberGrowsWithWear)
{
    auto chip = makeChip();
    const double fresh = chip.maxRber(5);
    chip.ageBaseline(5, 3000);
    EXPECT_GT(chip.maxRber(5), fresh + 10.0);
}

TEST(Population, ChipsVaryButAreDeterministic)
{
    PopulationConfig cfg;
    cfg.numChips = 8;
    cfg.geometry = ChipGeometry{1, 4, 8};
    ChipPopulation a(cfg), b(cfg);
    EXPECT_EQ(a.numChips(), 8);
    EXPECT_EQ(a.totalBlocks(), 32);
    // Chip pv factors differ across chips but match across instances.
    bool any_diff = false;
    for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(a.chip(i).chipPv(), b.chip(i).chipPv());
        if (i > 0 && a.chip(i).chipPv() != a.chip(0).chipPv())
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Population, SampledBlockVisitCounts)
{
    PopulationConfig cfg;
    cfg.numChips = 4;
    cfg.geometry = ChipGeometry{1, 10, 8};
    ChipPopulation pop(cfg);
    int visits = 0;
    pop.forEachSampledBlock(5, [&](NandChip &, BlockId id) {
        EXPECT_LT(id, 10u);
        ++visits;
    });
    EXPECT_EQ(visits, 20);
    // Requesting more blocks than exist clamps to the chip size.
    visits = 0;
    pop.forEachSampledBlock(99, [&](NandChip &, BlockId) { ++visits; });
    EXPECT_EQ(visits, 40);
}

} // namespace
} // namespace aero
