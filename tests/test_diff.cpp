/**
 * @file
 * Tests for the report-diff engine behind `aero_diff`: axis-keyed row
 * matching (reorders are not differences, missing rows are), exact
 * integer metrics vs toleranced floating-point metrics (including
 * exactly-at-tolerance), NaN/infinity handling, ignored keys at every
 * level, and the `aero-sweep/1` fallback axis set.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "common/logging.hh"
#include "exp/diff.hh"

namespace aero
{
namespace
{

Json
doc(const std::string &text)
{
    return Json::parseOrDie(text, "test document");
}

/** A small two-row aero-devchar/1 report. */
std::string
baseReport()
{
    return R"({"schema": "aero-devchar/1", "bench": "t",
               "axes": ["kind", "pec"],
               "spec": {"num_chips": 4},
               "results": [
                 {"kind": "a", "pec": 500, "iops": 100.0, "erases": 7},
                 {"kind": "a", "pec": 1000, "iops": 50.0, "erases": 9}
               ],
               "summary": {"gamma": 440.0}})";
}

TEST(DiffReports, IdenticalDocumentsMatch)
{
    const Json a = doc(baseReport());
    const auto result = diffReports(a, a);
    EXPECT_TRUE(result.match);
    EXPECT_TRUE(result.deltas.empty());
    EXPECT_EQ(result.rowsCompared, 2u);
    // 2 rows x {iops, erases} + summary gamma.
    EXPECT_EQ(result.metricsCompared, 5u);
    EXPECT_EQ(result.table(), "");
}

TEST(DiffReports, ReorderedRowsMatch)
{
    const Json a = doc(baseReport());
    Json b = doc(baseReport());
    // Rebuild with the rows swapped.
    Json swapped = Json::array();
    swapped.push(b.find("results")->at(1));
    swapped.push(b.find("results")->at(0));
    b["results"] = std::move(swapped);
    const auto result = diffReports(a, b);
    EXPECT_TRUE(result.match) << result.table();
}

TEST(DiffReports, MissingAndExtraRowsAreDeltas)
{
    const Json a = doc(baseReport());
    Json b = doc(baseReport());
    Json one = Json::array();
    one.push(b.find("results")->at(0));
    Json extra = Json::object();
    extra["kind"] = "a";
    extra["pec"] = 2000;
    extra["iops"] = 10.0;
    extra["erases"] = 1;
    one.push(std::move(extra));
    b["results"] = std::move(one);
    const auto result = diffReports(a, b);
    EXPECT_FALSE(result.match);
    ASSERT_EQ(result.deltas.size(), 2u);
    // Row only in A (pec=1000), then row only in B (pec=2000).
    EXPECT_EQ(result.deltas[0].what, "row");
    EXPECT_NE(result.deltas[0].row.find("pec=1000"), std::string::npos);
    EXPECT_EQ(result.deltas[0].b, "(absent)");
    EXPECT_EQ(result.deltas[1].what, "row");
    EXPECT_NE(result.deltas[1].row.find("pec=2000"), std::string::npos);
    EXPECT_EQ(result.deltas[1].a, "(absent)");
    EXPECT_NE(result.table().find("pec=2000"), std::string::npos);
}

TEST(DiffReports, FloatToleranceEdgeCases)
{
    const Json a = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "x": 1.0}]})");
    const Json b = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "x": 1.25}]})");
    DiffOptions opts;
    EXPECT_FALSE(diffReports(a, b, opts).match);
    // |1.25 - 1.0| = 0.25 exactly at the absolute tolerance: passes.
    opts.absTol = 0.25;
    EXPECT_TRUE(diffReports(a, b, opts).match);
    opts.absTol = 0.2499;
    EXPECT_FALSE(diffReports(a, b, opts).match);
    // Relative: 0.25/1.25 = 0.2 exactly at the tolerance: passes.
    opts.absTol = 0.0;
    opts.relTol = 0.2;
    EXPECT_TRUE(diffReports(a, b, opts).match);
    opts.relTol = 0.1999;
    const auto result = diffReports(a, b, opts);
    EXPECT_FALSE(result.match);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_EQ(result.deltas[0].metric, "x");
    EXPECT_DOUBLE_EQ(result.deltas[0].absDelta, 0.25);
    EXPECT_DOUBLE_EQ(result.deltas[0].relDelta, 0.2);
}

TEST(DiffReports, IntegerMetricsIgnoreTolerances)
{
    const Json a = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "erases": 100}]})");
    const Json b = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "erases": 101}]})");
    DiffOptions opts;
    opts.absTol = 10.0;
    opts.relTol = 0.5;
    const auto result = diffReports(a, b, opts);
    EXPECT_FALSE(result.match);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_DOUBLE_EQ(result.deltas[0].absDelta, 1.0);
    // But an integer against the same value as a double is no delta
    // (goldens store 5, a regenerated artifact may print 5.0).
    const Json c = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "erases": 100.0}]})");
    EXPECT_TRUE(diffReports(a, c).match);
}

TEST(DiffReports, NanAndInfinityPolicy)
{
    const double inf = std::numeric_limits<double>::infinity();
    const auto make = [](double x) {
        Json d = Json::object();
        d["schema"] = "s";
        Json axes = Json::array();
        axes.push("i");
        d["axes"] = std::move(axes);
        Json row = Json::object();
        row["i"] = 1;
        row["x"] = x;
        Json rows = Json::array();
        rows.push(std::move(row));
        d["results"] = std::move(rows);
        return d;
    };
    // In-memory documents can carry non-finite doubles directly.
    EXPECT_TRUE(diffReports(make(std::nan("")), make(std::nan(""))).match);
    EXPECT_TRUE(diffReports(make(inf), make(inf)).match);
    EXPECT_FALSE(diffReports(make(inf), make(-inf)).match);
    EXPECT_FALSE(diffReports(make(std::nan("")), make(1.0)).match);
    DiffOptions loose;
    loose.absTol = 1e300;
    EXPECT_FALSE(diffReports(make(inf), make(1.0), loose).match);
    // Serialized non-finite values become null; null==null matches and
    // null-vs-number is a type mismatch.
    const Json nan_doc =
        Json::parseOrDie(make(std::nan("")).dump(), "nan doc");
    EXPECT_TRUE(diffReports(nan_doc, nan_doc).match);
    const auto typed = diffReports(nan_doc, make(1.0));
    EXPECT_FALSE(typed.match);
    ASSERT_EQ(typed.deltas.size(), 1u);
    EXPECT_EQ(typed.deltas[0].what, "type");
}

TEST(DiffReports, MissingMetricIsADelta)
{
    const Json a = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "x": 1.0, "extra": 2.0}]})");
    const Json b = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "x": 1.0}]})");
    const auto result = diffReports(a, b);
    EXPECT_FALSE(result.match);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_EQ(result.deltas[0].metric, "extra");
    EXPECT_EQ(result.deltas[0].what, "metric");
    EXPECT_EQ(result.deltas[0].b, "(absent)");
}

TEST(DiffReports, IgnoredKeysAreSkippedEverywhere)
{
    const Json a = doc(R"({"schema": "s", "axes": ["i"],
        "generated_at": "2026-07-30T10:00:00Z",
        "spec": {"host": "alpha", "chips": 4},
        "results": [{"i": 1, "x": 1.0, "elapsed_s": 1.5}]})");
    const Json b = doc(R"({"schema": "s", "axes": ["i"],
        "generated_at": "2026-07-30T11:11:11Z",
        "spec": {"host": "beta", "chips": 4},
        "results": [{"i": 1, "x": 1.0, "elapsed_s": 9.0}]})");
    EXPECT_FALSE(diffReports(a, b).match);
    DiffOptions opts;
    opts.ignoreKeys = {"generated_at", "host", "elapsed_s"};
    const auto result = diffReports(a, b, opts);
    EXPECT_TRUE(result.match) << result.table();
}

TEST(DiffReports, SchemaAndSpecChangesAreDeltas)
{
    const Json a = doc(baseReport());
    Json b = doc(baseReport());
    b["schema"] = "aero-devchar/2";
    b["spec"]["num_chips"] = 8;
    const auto result = diffReports(a, b);
    EXPECT_FALSE(result.match);
    ASSERT_GE(result.deltas.size(), 2u);
    EXPECT_EQ(result.deltas[0].metric, "schema");
    EXPECT_EQ(result.deltas[0].what, "schema");
    bool sawSpec = false;
    for (const auto &d : result.deltas)
        sawSpec = sawSpec || d.metric == "spec";
    EXPECT_TRUE(sawSpec);
}

TEST(DiffReports, SummaryUsesNumericTolerances)
{
    const Json a = doc(baseReport());
    Json b = doc(baseReport());
    b["summary"]["gamma"] = 440.1;
    EXPECT_FALSE(diffReports(a, b).match);
    DiffOptions opts;
    opts.relTol = 1e-3;
    EXPECT_TRUE(diffReports(a, b, opts).match);
}

TEST(DiffReports, DuplicateAxisKeysAreDeltas)
{
    const Json a = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "x": 1.0}, {"i": 1, "x": 2.0}]})");
    const auto result = diffReports(a, a);
    EXPECT_FALSE(result.match);
    for (const auto &d : result.deltas)
        EXPECT_EQ(d.what, "row");
}

TEST(DiffReports, SweepSchemaFallsBackToFixedAxes)
{
    const std::string sweep = R"({"schema": "aero-sweep/1",
        "spec": {"requests": 1000},
        "results": [
          {"workload": "prxy", "scheme": "Baseline", "pec": 500.0,
           "suspension": "mid-segment", "misprediction_rate": 0.0,
           "rber_requirement": 63, "requests": 1000, "seed": 7,
           "iops": 5000.0},
          {"workload": "prxy", "scheme": "AERO", "pec": 500.0,
           "suspension": "mid-segment", "misprediction_rate": 0.0,
           "rber_requirement": 63, "requests": 1000, "seed": 7,
           "iops": 6000.0}
        ]})";
    const Json a = doc(sweep);
    EXPECT_EQ(reportAxes(a).size(), 8u);
    Json b = doc(sweep);
    Json swapped = Json::array();
    swapped.push(b.find("results")->at(1));
    swapped.push(b.find("results")->at(0));
    b["results"] = std::move(swapped);
    EXPECT_TRUE(diffReports(a, b).match);
    // And a changed metric is still caught, keyed by the sweep axes.
    std::string drifted = sweep;
    drifted.replace(drifted.find("6000.0"), 6, "6001.0");
    const auto result = diffReports(a, doc(drifted));
    EXPECT_FALSE(result.match);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_EQ(result.deltas[0].metric, "iops");
    EXPECT_NE(result.deltas[0].row.find("scheme=\"AERO\""),
              std::string::npos);
}

TEST(DiffReports, PositionalFallbackWithoutAxes)
{
    const Json a = doc(R"({"schema": "unknown/1",
        "results": [{"x": 1.0}, {"x": 2.0}]})");
    const Json b = doc(R"({"schema": "unknown/1",
        "results": [{"x": 2.0}, {"x": 1.0}]})");
    // Without axes rows pair up by position, so a reorder IS a diff.
    EXPECT_FALSE(diffReports(a, b).match);
    EXPECT_TRUE(diffReports(a, a).match);
    const Json c = doc(R"({"schema": "unknown/1",
        "results": [{"x": 1.0}]})");
    const auto result = diffReports(a, c);
    EXPECT_FALSE(result.match);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_EQ(result.deltas[0].what, "row");
}

TEST(DiffReports, NonArrayResultsIsADelta)
{
    const Json a = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "x": 1.0}]})");
    const Json b = doc(R"({"schema": "s", "axes": ["i"],
        "results": null})");
    const auto result = diffReports(a, b);
    EXPECT_FALSE(result.match);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_EQ(result.deltas[0].metric, "results");
    // Absent on both sides (a summary-only document) is fine.
    const Json c = doc(R"({"schema": "s", "summary": {"x": 1.0}})");
    EXPECT_TRUE(diffReports(c, c).match);
}

// --------------------------------------------------------------------------
// CSV artifacts through the same matcher
// --------------------------------------------------------------------------

/** A two-row sweep-shaped CSV, as toCsv() writes it. */
std::string
sweepCsv()
{
    return "workload,scheme,pec,suspension,misprediction_rate,"
           "rber_requirement,requests,seed,iops,erases\n"
           "prxy,Baseline,500,mid-segment,0,63,1000,7,5000.25,11\n"
           "prxy,AERO,500,mid-segment,0,63,1000,7,6000.5,9\n";
}

TEST(CsvReports, CellsAreTypedLikeTheSerializers)
{
    const Json report = csvToReport(sweepCsv());
    EXPECT_EQ(report.find("schema")->asString(), "aero-csv/1");
    EXPECT_EQ(reportAxes(report).size(), 8u);
    const Json &row = report.find("results")->at(0);
    EXPECT_TRUE(row.find("workload")->isString());
    EXPECT_TRUE(row.find("pec")->isIntegral());      // "500"
    EXPECT_TRUE(row.find("erases")->isIntegral());   // exact compare
    EXPECT_FALSE(row.find("iops")->isIntegral());    // "5000.25"
    EXPECT_TRUE(row.find("iops")->isNumeric());
    EXPECT_EQ(row.find("seed")->asUint64(), 7u);
}

TEST(CsvReports, IdenticalAndReorderedCsvsMatch)
{
    const Json a = csvToReport(sweepCsv());
    EXPECT_TRUE(diffReports(a, a).match);
    // Sweep-shaped CSVs are axis-keyed: a row reorder is not a diff.
    const std::string reordered =
        "workload,scheme,pec,suspension,misprediction_rate,"
        "rber_requirement,requests,seed,iops,erases\n"
        "prxy,AERO,500,mid-segment,0,63,1000,7,6000.5,9\n"
        "prxy,Baseline,500,mid-segment,0,63,1000,7,5000.25,11\n";
    EXPECT_TRUE(diffReports(a, csvToReport(reordered)).match);
}

TEST(CsvReports, FloatToleranceEdgesApply)
{
    const Json a = csvToReport(sweepCsv());
    std::string driftedText = sweepCsv();
    // iops 6000.5 -> 7500.625 (x1.25): abs delta 1500.125, rel delta
    // exactly 0.2 — both ends exactly representable.
    driftedText.replace(driftedText.find("6000.5"), 6, "7500.625");
    const Json b = csvToReport(driftedText);
    DiffOptions opts;
    EXPECT_FALSE(diffReports(a, b, opts).match);
    // Exactly at the absolute tolerance: passes; a hair under: fails.
    opts.absTol = 1500.125;
    EXPECT_TRUE(diffReports(a, b, opts).match);
    opts.absTol = 1500.0;
    EXPECT_FALSE(diffReports(a, b, opts).match);
    // Exactly at the relative tolerance: passes; under: fails.
    opts.absTol = 0.0;
    opts.relTol = 0.2;
    EXPECT_TRUE(diffReports(a, b, opts).match);
    opts.relTol = 0.1999;
    const auto result = diffReports(a, b, opts);
    EXPECT_FALSE(result.match);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_EQ(result.deltas[0].metric, "iops");
    EXPECT_DOUBLE_EQ(result.deltas[0].absDelta, 1500.125);
    EXPECT_DOUBLE_EQ(result.deltas[0].relDelta, 0.2);
}

TEST(CsvReports, IntegerCellsCompareExactlyDespiteTolerances)
{
    const Json a = csvToReport(sweepCsv());
    std::string driftedText = sweepCsv();
    driftedText.replace(driftedText.find(",11\n"), 4, ",12\n");
    const Json b = csvToReport(driftedText);
    DiffOptions loose;
    loose.absTol = 100.0;
    loose.relTol = 0.5;
    const auto result = diffReports(a, b, loose);
    EXPECT_FALSE(result.match);
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_EQ(result.deltas[0].metric, "erases");
}

TEST(CsvReports, QuotedCellsAndCrlfParse)
{
    const std::string quoted =
        "name,note,x\r\n"
        "\"a,b\",\"says \"\"hi\"\"\",1.5\r\n"
        "plain,,2\r\n";
    const Json report = csvToReport(quoted);
    const Json &rows = *report.find("results");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows.at(0).find("name")->asString(), "a,b");
    EXPECT_EQ(rows.at(0).find("note")->asString(), "says \"hi\"");
    EXPECT_TRUE(rows.at(1).find("note")->isNull());
    // No sweep axis columns: rows match by position.
    EXPECT_TRUE(reportAxes(report).empty());
    EXPECT_TRUE(diffReports(report, report).match);
}

TEST(CsvReports, MalformedCsvDies)
{
    EXPECT_DEATH(csvToReport(""), "no header");
    EXPECT_DEATH(csvToReport("a,b\n1\n"), "has 1 cells");
    EXPECT_DEATH(csvToReport("a,b\n\"unterminated,1\n"),
                 "quoted cell");
}

TEST(CsvReports, NonFatalParserReportsErrors)
{
    // The variant aero_diff uses to map parse failures to exit code 2
    // (distinct from exit 1, "reports differ").
    Json doc;
    std::string error;
    EXPECT_FALSE(csvToReport("a,b\n1\n", &doc, &error));
    EXPECT_NE(error.find("has 1 cells"), std::string::npos);
    EXPECT_FALSE(csvToReport("", &doc, &error));
    EXPECT_NE(error.find("no header"), std::string::npos);
    error.clear();
    EXPECT_TRUE(csvToReport("a,b\n1,2\n", &doc, &error));
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(doc.find("results")->size(), 1u);
}

TEST(CsvReports, NegativeAndWhitespaceIntegerCellsNeverWrap)
{
    // Regression: strtoull accepts a (possibly whitespace-prefixed)
    // '-' sign by wrapping modulo 2^64, so a " -1" cell became
    // 18446744073709551615 and "passed" exact integer comparison.
    const Json report = csvToReport("x,y,z\n-42, -1,-0\n");
    const Json &row = report.find("results")->at(0);
    ASSERT_TRUE(row.find("x")->isIntegral());
    EXPECT_EQ(row.find("x")->asInt64(), -42);
    // A whitespace-prefixed numeral is not how any serializer writes
    // integers; it types as a double (and must never wrap).
    ASSERT_FALSE(row.find("y")->isIntegral());
    ASSERT_TRUE(row.find("y")->isNumeric());
    EXPECT_EQ(row.find("y")->asDouble(), -1.0);
    ASSERT_TRUE(row.find("z")->isIntegral());
    EXPECT_EQ(row.find("z")->asInt64(), 0);
}

TEST(CsvReports, IntegerOverflowIsAPositionedErrorNotADouble)
{
    // Regression: an out-of-range integer cell used to degrade
    // silently to a lossy double, letting a corrupted count pass the
    // exact-integer comparison. It must fail naming row and column.
    Json doc;
    std::string error;
    EXPECT_FALSE(csvToReport("erases,ok\n18446744073709551616,1\n",
                             &doc, &error));
    EXPECT_NE(error.find("row 2, column 1 ('erases')"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("overflows an unsigned 64-bit value"),
              std::string::npos)
        << error;

    error.clear();
    EXPECT_FALSE(csvToReport(
        "a,delta\n1,-9223372036854775809\n", &doc, &error));
    EXPECT_NE(error.find("row 2, column 2 ('delta')"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("overflows a signed 64-bit value"),
              std::string::npos)
        << error;

    // The fatal wrapper dies with the same positioned message.
    EXPECT_DEATH(csvToReport("erases\n18446744073709551616\n"),
                 "row 2, column 1 \\('erases'\\)");

    // The extremes themselves still parse exactly.
    const Json edge = csvToReport(
        "hi,lo\n18446744073709551615,-9223372036854775808\n");
    const Json &row = edge.find("results")->at(0);
    EXPECT_EQ(row.find("hi")->asUint64(), 18446744073709551615ull);
    EXPECT_EQ(row.find("lo")->asInt64(),
              std::numeric_limits<std::int64_t>::min());
}

TEST(DiffReports, IgnoredAxisKeyDropsOutOfRowIdentity)
{
    const Json a = doc(R"({"schema": "s", "axes": ["i", "seed"],
        "results": [{"i": 1, "seed": 7, "x": 1.0}]})");
    const Json b = doc(R"({"schema": "s", "axes": ["i", "seed"],
        "results": [{"i": 1, "seed": 1007, "x": 1.0}]})");
    // Without --ignore the seeds keep the rows from pairing up.
    EXPECT_FALSE(diffReports(a, b).match);
    DiffOptions opts;
    opts.ignoreKeys = {"seed"};
    EXPECT_TRUE(diffReports(a, b, opts).match);
}

TEST(DiffReports, MalformedShapesAreDeltasNotCrashes)
{
    // Non-string axes entries are skipped; non-object rows are row
    // deltas — a diff tool must diagnose a broken artifact, not abort.
    const Json a = doc(R"({"schema": "s", "axes": [1, "i"],
        "results": [{"i": 1, "x": 1.0}]})");
    EXPECT_EQ(reportAxes(a).size(), 1u);
    EXPECT_TRUE(diffReports(a, a).match);
    const Json b = doc(R"({"schema": "s", "axes": ["i"],
        "results": [[1, 2]]})");
    const auto result = diffReports(b, b);
    EXPECT_FALSE(result.match);
    for (const auto &d : result.deltas) {
        EXPECT_EQ(d.what, "row");
    }
}

TEST(DiffReports, TableClipsOversizedCellsToWholeLines)
{
    // A missing row dumps the whole row object into one cell; the
    // table must stay line-structured with every line terminated.
    Json row = Json::object();
    row["i"] = 1;
    for (int m = 0; m < 30; ++m)
        row["metric_with_a_long_name_" + std::to_string(m)] = 0.125 * m;
    Json a = Json::object();
    a["schema"] = "s";
    Json axes = Json::array();
    axes.push("i");
    a["axes"] = std::move(axes);
    Json rows = Json::array();
    rows.push(std::move(row));
    a["results"] = std::move(rows);
    Json b = a;
    b["results"] = Json::array();
    const auto result = diffReports(a, b);
    ASSERT_EQ(result.deltas.size(), 1u);
    const std::string table = result.table();
    ASSERT_FALSE(table.empty());
    EXPECT_EQ(table.back(), '\n');
    std::size_t lines = 0, start = 0;
    for (std::size_t end; (end = table.find('\n', start)) !=
                          std::string::npos; start = end + 1) {
        EXPECT_LT(end - start, 200u);  // clipped, not sprawling
        lines += 1;
    }
    EXPECT_EQ(lines, 3u);  // header + separator + one delta row
    EXPECT_NE(table.find("..."), std::string::npos);
}

TEST(DiffReports, TableListsEveryColumnAndTruncates)
{
    const Json a = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "x": 1.0, "y": 2.0, "z": 3.0}]})");
    const Json b = doc(R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "x": 1.5, "y": 2.5, "z": 3.5}]})");
    const auto result = diffReports(a, b);
    ASSERT_EQ(result.deltas.size(), 3u);
    const std::string full = result.table();
    EXPECT_NE(full.find("abs-delta"), std::string::npos);
    EXPECT_NE(full.find("i=1"), std::string::npos);
    EXPECT_NE(full.find(" y "), std::string::npos);
    const std::string truncated = result.table(2);
    EXPECT_NE(truncated.find("and 1 more"), std::string::npos);
}

// --------------------------------------------------------------------------
// Directory mode: pair *.json/*.csv files by relative path, diff each
// pair, report unpaired files, and honor the 0/1/2 exit-code contract.
// --------------------------------------------------------------------------

/** A scratch A/B directory pair, deleted and recreated per test. */
struct DirPair
{
    std::filesystem::path a, b;

    explicit DirPair(const std::string &name)
    {
        const auto root =
            std::filesystem::path(::testing::TempDir()) / name;
        std::filesystem::remove_all(root);
        a = root / "a";
        b = root / "b";
        std::filesystem::create_directories(a);
        std::filesystem::create_directories(b);
    }

    void
    write(const std::filesystem::path &rel, const std::string &content,
          bool sideA, bool sideB) const
    {
        for (const auto &side : {sideA ? &a : nullptr,
                                 sideB ? &b : nullptr}) {
            if (!side)
                continue;
            const auto path = *side / rel;
            std::filesystem::create_directories(path.parent_path());
            std::ofstream out(path, std::ios::binary);
            out << content;
        }
    }
};

std::string
tinyReport(double iops)
{
    return detail::concat(
        R"({"schema": "aero-devchar/1", "bench": "t", "axes": ["i"],)",
        R"( "results": [{"i": 1, "iops": )", iops, "}]}");
}

TEST(DirDiff, MatchingTreesMatchIncludingNestedSubdirectories)
{
    const DirPair dirs("dirdiff_match");
    dirs.write("r1.json", tinyReport(10.0), true, true);
    dirs.write("nested/deep/r2.json", tinyReport(20.0), true, true);
    dirs.write("rows.csv", "i,iops\n1,10\n", true, true);
    dirs.write("README.txt", "not a report", true, false);  // ignored

    const auto result =
        diffReportDirs(dirs.a.string(), dirs.b.string());
    EXPECT_TRUE(result.match());
    EXPECT_EQ(result.exitCode(), 0);
    ASSERT_EQ(result.compared.size(), 3u);
    EXPECT_EQ(result.matched, 3u);
    EXPECT_EQ(result.compared[0].name, "nested/deep/r2.json");
    EXPECT_EQ(result.compared[1].name, "r1.json");
    EXPECT_EQ(result.compared[2].name, "rows.csv");
    EXPECT_TRUE(result.onlyA.empty());
    EXPECT_TRUE(result.onlyB.empty());
}

TEST(DirDiff, OneSidedFilesAreUnpairedAndFailTheGate)
{
    const DirPair dirs("dirdiff_unpaired");
    dirs.write("shared.json", tinyReport(1.0), true, true);
    dirs.write("gone.json", tinyReport(2.0), true, false);
    dirs.write("new.csv", "i,iops\n1,3\n", false, true);

    const auto result =
        diffReportDirs(dirs.a.string(), dirs.b.string());
    EXPECT_FALSE(result.match());
    EXPECT_EQ(result.exitCode(), 1);
    EXPECT_EQ(result.compared.size(), 1u);
    EXPECT_EQ(result.matched, 1u);
    ASSERT_EQ(result.onlyA.size(), 1u);
    EXPECT_EQ(result.onlyA[0], "gone.json");
    ASSERT_EQ(result.onlyB.size(), 1u);
    EXPECT_EQ(result.onlyB[0], "new.csv");
}

TEST(DirDiff, MixedJsonAndCsvPairsDiffThroughTheirOwnParsers)
{
    const DirPair dirs("dirdiff_mixed");
    dirs.write("doc.json", tinyReport(10.0), true, true);
    dirs.write("rows.csv", "i,iops\n1,10\n", true, false);
    dirs.write("rows.csv", "i,iops\n1,11\n", false, true);

    const auto result =
        diffReportDirs(dirs.a.string(), dirs.b.string());
    EXPECT_EQ(result.exitCode(), 1);
    ASSERT_EQ(result.compared.size(), 2u);
    EXPECT_TRUE(result.compared[0].diff.match) << "doc.json";
    EXPECT_FALSE(result.compared[1].diff.match) << "rows.csv";
    // The CSV delta rides the integer-exact comparison rules.
    ASSERT_EQ(result.compared[1].diff.deltas.size(), 1u);
    EXPECT_EQ(result.compared[1].diff.deltas[0].metric, "iops");
}

TEST(DirDiff, TolerancesApplyToEveryPairedFile)
{
    const DirPair dirs("dirdiff_tol");
    const char *base = R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "iops": 100.0}]})";
    const char *drifted = R"({"schema": "s", "axes": ["i"],
        "results": [{"i": 1, "iops": 100.00000001}]})";
    dirs.write("r.json", base, true, false);
    dirs.write("r.json", drifted, false, true);

    EXPECT_EQ(diffReportDirs(dirs.a.string(), dirs.b.string())
                  .exitCode(), 1);
    DiffOptions tol;
    tol.relTol = 1e-6;
    const auto result =
        diffReportDirs(dirs.a.string(), dirs.b.string(), tol);
    EXPECT_EQ(result.exitCode(), 0);
}

TEST(DirDiff, UnparseableFileIsAnErrorButOthersStillCompare)
{
    const DirPair dirs("dirdiff_error");
    dirs.write("ok.json", tinyReport(1.0), true, true);
    dirs.write("bad.json", tinyReport(2.0), true, false);
    dirs.write("bad.json", "{not json", false, true);

    const auto result =
        diffReportDirs(dirs.a.string(), dirs.b.string());
    EXPECT_TRUE(result.anyError);
    EXPECT_EQ(result.exitCode(), 2);
    ASSERT_EQ(result.compared.size(), 2u);
    EXPECT_FALSE(result.compared[0].loaded);
    EXPECT_NE(result.compared[0].error.find("bad.json"),
              std::string::npos);
    EXPECT_TRUE(result.compared[1].loaded);
    EXPECT_TRUE(result.compared[1].diff.match);
}

TEST(DirDiffDeath, NonDirectoryIsFatal)
{
    const DirPair dirs("dirdiff_nodir");
    EXPECT_DEATH(diffReportDirs(dirs.a.string(), "/no/such/dir"),
                 "not a directory");
}

// --------------------------------------------------------------------------
// The exit-code contract via the installed CLI. AERO_DIFF_BIN is
// injected by CMake when the aero_diff example target is built.
// --------------------------------------------------------------------------

#ifdef AERO_DIFF_BIN

int
runAeroDiff(const std::string &args)
{
    const std::string cmd = std::string(AERO_DIFF_BIN) + " " + args +
                            " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WEXITSTATUS(status);
}

TEST(DirDiffCli, ExitCodeContract)
{
    const DirPair dirs("dirdiff_cli");
    dirs.write("r.json", tinyReport(5.0), true, true);
    dirs.write("sub/s.csv", "i,iops\n1,5\n", true, true);

    // 0: matching trees.
    EXPECT_EQ(runAeroDiff(dirs.a.string() + " " + dirs.b.string()), 0);

    // 1: a metric drifted.
    dirs.write("r.json", tinyReport(6.0), false, true);
    EXPECT_EQ(runAeroDiff(dirs.a.string() + " " + dirs.b.string()), 1);

    // 1: unpaired file (content otherwise identical again).
    dirs.write("r.json", tinyReport(5.0), false, true);
    dirs.write("extra.json", tinyReport(1.0), false, true);
    EXPECT_EQ(runAeroDiff(dirs.a.string() + " " + dirs.b.string()), 1);
    std::filesystem::remove(dirs.b / "extra.json");
    EXPECT_EQ(runAeroDiff(dirs.a.string() + " " + dirs.b.string()), 0);

    // 2: unparseable artifact.
    dirs.write("r.json", "{broken", false, true);
    EXPECT_EQ(runAeroDiff(dirs.a.string() + " " + dirs.b.string()), 2);

    // 2: directory vs file.
    EXPECT_EQ(runAeroDiff(dirs.a.string() + " " +
                          (dirs.b / "sub/s.csv").string()), 2);

    // 2: missing operand.
    EXPECT_EQ(runAeroDiff(dirs.a.string()), 2);
}

#endif // AERO_DIFF_BIN

} // namespace
} // namespace aero
