/**
 * @file
 * Unit tests for the statistics substrate: exact percentiles, histograms,
 * empirical CDFs.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "stats/cdf.hh"
#include "stats/histogram.hh"
#include "stats/percentile.hh"

namespace aero
{
namespace
{

TEST(Percentile, EmptyTrackerIsZero)
{
    PercentileTracker t;
    EXPECT_EQ(t.percentile(0.5), 0u);
    EXPECT_EQ(t.count(), 0u);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(Percentile, NearestRankSemantics)
{
    PercentileTracker t;
    for (std::uint64_t v = 1; v <= 100; ++v)
        t.add(v);
    EXPECT_EQ(t.percentile(0.50), 50u);
    EXPECT_EQ(t.percentile(0.99), 99u);
    EXPECT_EQ(t.percentile(1.0), 100u);
    EXPECT_EQ(t.percentile(0.0), 1u);
    EXPECT_EQ(t.min(), 1u);
    EXPECT_EQ(t.max(), 100u);
    EXPECT_DOUBLE_EQ(t.mean(), 50.5);
}

TEST(Percentile, ExtremeTailEqualsMaxForSmallSamples)
{
    PercentileTracker t;
    for (std::uint64_t v = 0; v < 1000; ++v)
        t.add(v);
    // 99.9999th percentile of 1000 samples = last sample.
    EXPECT_EQ(t.percentile(0.999999), 999u);
}

TEST(Percentile, InterleavedAddAndQuery)
{
    PercentileTracker t;
    t.add(5);
    EXPECT_EQ(t.percentile(0.5), 5u);
    t.add(1);
    t.add(9);
    EXPECT_EQ(t.percentile(0.5), 5u);
    EXPECT_EQ(t.max(), 9u);
}

TEST(Histogram, BinsAndBounds)
{
    Histogram h(0.0, 1.0, 10);
    h.add(0.5);
    h.add(9.99);
    h.add(-1.0);
    h.add(10.0);
    h.add(42.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.2);
    EXPECT_DOUBLE_EQ(h.binLeft(3), 3.0);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 3.5);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h(0.0, 1.0, 4);
    h.add(1.5, 10);
    EXPECT_EQ(h.binCount(1), 10u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(Cdf, FractionAndQuantiles)
{
    Cdf c;
    for (int i = 1; i <= 10; ++i)
        c.add(i);
    EXPECT_DOUBLE_EQ(c.fractionAtOrBelow(5.0), 0.5);
    EXPECT_DOUBLE_EQ(c.fractionAtOrBelow(0.0), 0.0);
    EXPECT_DOUBLE_EQ(c.fractionAtOrBelow(10.0), 1.0);
    EXPECT_DOUBLE_EQ(c.quantile(0.5), 5.0);
    EXPECT_NEAR(c.mean(), 5.5, 1e-12);
}

TEST(Cdf, StddevOfConstantIsZero)
{
    Cdf c;
    c.add(3.0);
    c.add(3.0);
    c.add(3.0);
    EXPECT_DOUBLE_EQ(c.stddev(), 0.0);
}

TEST(Cdf, EvaluateAtGrid)
{
    Cdf c;
    for (int i = 0; i < 100; ++i)
        c.add(i);
    const auto ys = c.evaluateAt({-1.0, 49.0, 99.0});
    EXPECT_DOUBLE_EQ(ys[0], 0.0);
    EXPECT_DOUBLE_EQ(ys[1], 0.5);
    EXPECT_DOUBLE_EQ(ys[2], 1.0);
}

class PercentileRandomSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PercentileRandomSweep, MatchesSortedReference)
{
    Rng rng(GetParam());
    PercentileTracker t;
    std::vector<std::uint64_t> ref;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.below(1'000'000);
        t.add(v);
        ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    for (const double p : {0.1, 0.5, 0.9, 0.99, 0.999}) {
        const auto rank = static_cast<std::size_t>(
            std::ceil(p * ref.size()));
        EXPECT_EQ(t.percentile(p), ref[rank - 1]) << "p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileRandomSweep,
                         ::testing::Values(3, 17, 99));

} // namespace
} // namespace aero
