/**
 * @file
 * Workload-substrate tests: Table 3 presets and the synthetic generator's
 * fidelity to the published trace characteristics.
 */

#include <gtest/gtest.h>

#include "workload/presets.hh"
#include "workload/synthetic.hh"
#include "workload/trace_stats.hh"

namespace aero
{
namespace
{

TEST(Presets, AllElevenWorkloadsPresent)
{
    const auto &ws = table3Workloads();
    ASSERT_EQ(ws.size(), 11u);
    EXPECT_EQ(ws.front().name, "ali.A");
    EXPECT_EQ(ws.back().name, "usr");
}

TEST(Presets, LookupByNameAndSource)
{
    EXPECT_DOUBLE_EQ(workloadByName("prxy").readRatio, 0.65);
    EXPECT_DOUBLE_EQ(workloadByName("prxy_1").readRatio, 0.65);
    // The message must list the valid names AND point at the
    // trace-backed '@<file>' alternative.
    EXPECT_DEATH(workloadByName("nope"),
                 "unknown workload.*ali\\.A.*trace-backed");
}

TEST(Presets, MsrcTracesAccelerated10x)
{
    const auto &rsrch = workloadByName("rsrch");
    EXPECT_TRUE(rsrch.msrc);
    EXPECT_NEAR(rsrch.effectiveInterArrivalMs(), 42.19, 1e-9);
    const auto &ali = workloadByName("ali.E");
    EXPECT_FALSE(ali.msrc);
    EXPECT_NEAR(ali.effectiveInterArrivalMs(), 5.1, 1e-9);
}

TEST(Synthetic, TraceIsTimeOrderedAndBounded)
{
    SyntheticConfig cfg;
    cfg.spec = workloadByName("hm");
    cfg.footprintPages = 10000;
    cfg.numRequests = 5000;
    const auto trace = generateTrace(cfg);
    ASSERT_EQ(trace.size(), 5000u);
    Tick prev = 0;
    for (const auto &r : trace) {
        EXPECT_GE(r.arrival, prev);
        prev = r.arrival;
        EXPECT_GE(r.pages, 1u);
        EXPECT_LE(r.startPage + r.pages, cfg.footprintPages);
    }
}

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticConfig cfg;
    cfg.spec = workloadByName("ali.C");
    cfg.footprintPages = 5000;
    cfg.numRequests = 1000;
    const auto a = generateTrace(cfg);
    const auto b = generateTrace(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].startPage, b[i].startPage);
    }
}

TEST(Synthetic, IntensityScaleSpeedsArrivals)
{
    SyntheticConfig cfg;
    cfg.spec = workloadByName("stg");
    cfg.footprintPages = 5000;
    cfg.numRequests = 4000;
    const auto slow = computeStats(generateTrace(cfg), cfg.pageSizeKB);
    cfg.intensityScale = 4.0;
    const auto fast = computeStats(generateTrace(cfg), cfg.pageSizeKB);
    EXPECT_NEAR(slow.avgInterArrivalMs / fast.avgInterArrivalMs, 4.0,
                0.5);
}

TEST(Synthetic, ZipfLocalityConcentratesAccesses)
{
    SyntheticConfig cfg;
    cfg.spec = workloadByName("ali.E");
    cfg.footprintPages = 100000;
    cfg.numRequests = 20000;
    const auto stats =
        computeExtendedStats(generateTrace(cfg), cfg.pageSizeKB);
    // The hottest 1% of touched pages absorb far more than 1% of hits.
    EXPECT_GT(stats.hot1pctFraction, 0.05);
    EXPECT_GT(stats.distinctPages, 1000u);
}

TEST(TraceStats, RowFormatting)
{
    Trace t;
    t.push_back({0, IoOp::Read, 0, 2});
    t.push_back({msToTicks(10.0), IoOp::Write, 4, 1});
    const auto s = computeStats(t, 16);
    EXPECT_DOUBLE_EQ(s.readRatio, 0.5);
    EXPECT_DOUBLE_EQ(s.avgReqSizeKB, 24.0);
    EXPECT_DOUBLE_EQ(s.avgInterArrivalMs, 10.0);
    const auto row = statsRow("x", s);
    EXPECT_NE(row.find("50.0%"), std::string::npos);
}

/** Table 3 fidelity: every workload's generated trace reproduces the
 *  published read ratio, request size, and inter-arrival time. */
class Table3Sweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Table3Sweep, GeneratedTraceMatchesPublishedMoments)
{
    const auto &spec = workloadByName(GetParam());
    SyntheticConfig cfg;
    cfg.spec = spec;
    cfg.footprintPages = 200000;
    cfg.numRequests = 20000;
    const auto stats = computeStats(generateTrace(cfg), cfg.pageSizeKB);
    EXPECT_NEAR(stats.readRatio, spec.readRatio, 0.02);
    // Sizes are quantized to whole 16-KiB flash pages (how the FTL
    // services them), so small-request traces (rsrch/hm: 8-9 KB) land at
    // the one-page floor; allow one page of quantization slack.
    EXPECT_NEAR(stats.avgReqSizeKB, spec.avgReqSizeKB,
                0.25 * spec.avgReqSizeKB + cfg.pageSizeKB * 0.75);
    EXPECT_NEAR(stats.avgInterArrivalMs, spec.effectiveInterArrivalMs(),
                0.05 * spec.effectiveInterArrivalMs());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Table3Sweep,
    ::testing::Values("ali.A", "ali.B", "ali.C", "ali.D", "ali.E",
                      "rsrch", "stg", "hm", "prxy", "proj", "usr"));

} // namespace
} // namespace aero
