/**
 * @file
 * Unit tests for the paper's core contribution: the EPT (Table 1), FELP,
 * the SEF bitmap, the AERO erase scheme, and the EPT builder.
 */

#include <gtest/gtest.h>

#include "core/aero_scheme.hh"
#include "core/ept.hh"
#include "core/ept_builder.hh"
#include "core/felp.hh"
#include "core/sef.hh"
#include "erase/baseline_ispe.hh"
#include "nand/erase_model.hh"

namespace aero
{
namespace
{

NandChip
makeChip(std::uint64_t seed = 1)
{
    return NandChip(ChipParams::tlc3d(), ChipGeometry{1, 16, 16}, seed);
}

TEST(Ept, RangeIndexBoundaries)
{
    const auto p = ChipParams::tlc3d();
    EXPECT_EQ(Ept::rangeIndex(p, 0.0), 0);
    EXPECT_EQ(Ept::rangeIndex(p, p.gamma), 0);
    EXPECT_EQ(Ept::rangeIndex(p, p.gamma + 1.0), 1);
    EXPECT_EQ(Ept::rangeIndex(p, p.gamma + p.delta), 1);
    EXPECT_EQ(Ept::rangeIndex(p, p.gamma + 3.5 * p.delta), 4);
    EXPECT_EQ(Ept::rangeIndex(p, p.gamma + 7.0 * p.delta), 7);
    EXPECT_EQ(Ept::rangeIndex(p, p.gamma + 7.1 * p.delta), 8);
}

TEST(Ept, CanonicalMatchesTable1)
{
    const auto p = ChipParams::tlc3d();
    const auto t = Ept::canonical(p);
    // Spot-check the paper's Table 1 (values in 0.5-ms slots).
    EXPECT_EQ(t.consSlots(1, 0), 1);   // N=1, <=g: 0.5 ms
    EXPECT_EQ(t.consSlots(1, 4), 5);   // N=1, <=4d: 2.5 ms (cap)
    EXPECT_EQ(t.consSlots(1, 7), 5);   // N=1, <=7d: 2.5 ms
    EXPECT_EQ(t.consSlots(2, 1), 2);   // N=2, <=d: 1.0 ms
    EXPECT_EQ(t.consSlots(2, 6), 7);   // N=2, <=6d: 3.5 ms
    EXPECT_EQ(t.aggrSlots(2, 0), 0);   // N=2, <=g: skip
    EXPECT_EQ(t.aggrSlots(4, 0), 0);   // N=4, <=g: skip
    EXPECT_EQ(t.aggrSlots(4, 1), 1);   // N=4, <=d: 0.5 ms
    EXPECT_EQ(t.aggrSlots(5, 0), 1);   // N=5: no margin spending
    EXPECT_EQ(t.aggrSlots(5, 3), t.consSlots(5, 3));
    // Rows past the table clamp to row 5.
    EXPECT_EQ(t.consSlots(9, 3), t.consSlots(5, 3));
}

TEST(Ept, AggressiveNeverExceedsConservative)
{
    const auto t = Ept::canonical(ChipParams::tlc3d());
    for (int row = 1; row <= Ept::kRows; ++row) {
        for (int rg = 0; rg < Ept::kRanges; ++rg)
            EXPECT_LE(t.aggrSlots(row, rg), t.consSlots(row, rg));
    }
}

TEST(Ept, ToStringContainsHeader)
{
    const auto p = ChipParams::tlc3d();
    const auto s = Ept::canonical(p).toString(p);
    EXPECT_NE(s.find("EPT"), std::string::npos);
    EXPECT_NE(s.find("<=g"), std::string::npos);
}

TEST(Sef, DefaultsToTrueAndTracks)
{
    SefBitmap sef(130);
    EXPECT_EQ(sef.size(), 130u);
    EXPECT_EQ(sef.popcount(), 130u);
    for (BlockId b = 0; b < 130; ++b)
        EXPECT_TRUE(sef.get(b));
    sef.set(5, false);
    sef.set(129, false);
    EXPECT_FALSE(sef.get(5));
    EXPECT_FALSE(sef.get(129));
    EXPECT_TRUE(sef.get(6));
    EXPECT_EQ(sef.popcount(), 128u);
    sef.set(5, true);
    EXPECT_TRUE(sef.get(5));
    EXPECT_EQ(sef.storageBytes(), 24u);  // 130 bits -> 3 words
}

TEST(Felp, ConservativePredictionIsExactFit)
{
    const auto p = ChipParams::tlc3d();
    WearModel wear(p);
    Felp felp(p, wear, Ept::canonical(p),
              FelpConfig{false, 12.0, 63});
    // F for `rem` slots remaining predicts exactly `rem` slots.
    for (const double rem : {1.0, 2.0, 4.0, 6.0}) {
        const auto pred =
            felp.predict(2, expectedFailBits(p, rem), 2000.0);
        EXPECT_EQ(pred.slots, static_cast<int>(rem)) << "rem=" << rem;
        EXPECT_DOUBLE_EQ(pred.allowedLeftover, 0.0);
    }
}

TEST(Felp, NoReductionAboveFHigh)
{
    const auto p = ChipParams::tlc3d();
    WearModel wear(p);
    Felp felp(p, wear, Ept::canonical(p), FelpConfig{true, 12.0, 63});
    const auto pred =
        felp.predict(2, p.gamma + 8.0 * p.delta, 1000.0);
    EXPECT_EQ(pred.slots, p.slotsPerLoop);
    EXPECT_FALSE(pred.reduced);
    EXPECT_EQ(pred.range, 8);
}

TEST(Felp, MarginShrinksWithPec)
{
    const auto p = ChipParams::tlc3d();
    WearModel wear(p);
    Felp felp(p, wear, Ept::canonical(p), FelpConfig{true, 12.0, 63});
    const double young = felp.allowedLeftoverSlots(0.0);
    const double old_margin = felp.allowedLeftoverSlots(5000.0);
    EXPECT_GT(young, 1.5);
    EXPECT_LT(old_margin, young);
    EXPECT_DOUBLE_EQ(felp.allowedLeftoverSlots(20000.0), 0.0);
}

TEST(Felp, AggressiveSpendsMarginAtLowPecOnly)
{
    const auto p = ChipParams::tlc3d();
    WearModel wear(p);
    Felp felp(p, wear, Ept::canonical(p), FelpConfig{true, 12.0, 63});
    const double f = expectedFailBits(p, 2.0);  // range <=d
    const auto young = felp.predict(2, f, 500.0);
    const auto old_pred = felp.predict(2, f, 5200.0);
    EXPECT_LT(young.slots, old_pred.slots);
    EXPECT_GT(young.allowedLeftover, 0.0);
    EXPECT_EQ(old_pred.slots, 2);  // falls back to conservative
}

TEST(Felp, WeakerEccReducesAggression)
{
    const auto p = ChipParams::tlc3d();
    WearModel wear(p);
    Felp strong(p, wear, Ept::canonical(p), FelpConfig{true, 12.0, 63});
    Felp weak(p, wear, Ept::canonical(p), FelpConfig{true, 12.0, 40});
    EXPECT_LT(weak.allowedLeftoverSlots(1000.0),
              strong.allowedLeftoverSlots(1000.0));
}

TEST(AeroScheme, CompletesFreshBlockWithShallowErasure)
{
    auto chip = makeChip();
    AeroScheme aero(chip, SchemeOptions{}, false,
                    Ept::canonical(chip.params()));
    const auto out = eraseNow(aero, 0);
    EXPECT_TRUE(out.usedShallow);
    EXPECT_TRUE(out.complete);
    EXPECT_EQ(aero.stats().shallowProbes, 1u);
    // Shallow + remainder must beat the default loop for easy blocks.
    EXPECT_LE(out.slotsApplied, chip.params().slotsPerLoop + 1);
}

TEST(AeroScheme, ConsIsAlwaysPhysicallyComplete)
{
    auto chip = makeChip(3);
    for (int b = 0; b < chip.numBlocks(); ++b)
        chip.ageBaseline(b, 2500);
    AeroScheme cons(chip, SchemeOptions{}, false,
                    Ept::canonical(chip.params()));
    for (int round = 0; round < 10; ++round) {
        for (int b = 0; b < chip.numBlocks(); ++b) {
            const auto out = eraseNow(cons, b);
            EXPECT_TRUE(out.complete);
            EXPECT_FALSE(out.acceptedIncomplete);
        }
    }
}

TEST(AeroScheme, AeroIsFasterThanBaseline)
{
    auto a = makeChip(5);
    auto b = makeChip(5);
    for (int blk = 0; blk < a.numBlocks(); ++blk) {
        a.ageBaseline(blk, 2500);
        b.ageBaseline(blk, 2500);
    }
    BaselineIspe base(a, SchemeOptions{});
    AeroScheme aero(b, SchemeOptions{}, true,
                    Ept::canonical(b.params()));
    Tick base_lat = 0, aero_lat = 0;
    double base_dmg = 0, aero_dmg = 0;
    for (int round = 0; round < 5; ++round) {
        for (int blk = 0; blk < a.numBlocks(); ++blk) {
            const auto ob = eraseNow(base, blk);
            const auto oa = eraseNow(aero, blk);
            base_lat += ob.latency;
            aero_lat += oa.latency;
            base_dmg += ob.damage;
            aero_dmg += oa.damage;
        }
    }
    EXPECT_LT(aero_lat, base_lat);
    EXPECT_LT(aero_dmg, base_dmg * 0.95);
}

TEST(AeroScheme, AggressiveLeftoverStaysWithinMargin)
{
    auto chip = makeChip(7);
    AeroScheme aero(chip, SchemeOptions{}, true,
                    Ept::canonical(chip.params()));
    const double requirement = 63.0;
    for (int round = 0; round < 20; ++round) {
        for (int b = 0; b < chip.numBlocks(); ++b) {
            eraseNow(aero, b);
            // Reliability invariant: max RBER never exceeds the
            // requirement while AERO spends margin at low PEC.
            EXPECT_LE(chip.maxRber(b), requirement)
                << "block " << b << " round " << round;
        }
    }
    EXPECT_GT(aero.stats().incompleteAccepts, 0u);
}

TEST(AeroScheme, SefClearsForHardBlocksAndSkipsProbe)
{
    auto chip = makeChip(9);
    for (int b = 0; b < chip.numBlocks(); ++b)
        chip.ageBaseline(b, 2500);  // multi-loop: shallow probing futile
    AeroScheme aero(chip, SchemeOptions{}, false,
                    Ept::canonical(chip.params()));
    for (int b = 0; b < chip.numBlocks(); ++b)
        eraseNow(aero, b);
    EXPECT_EQ(aero.sef().popcount(), 0u);
    const auto probes_before = aero.stats().shallowProbes;
    for (int b = 0; b < chip.numBlocks(); ++b) {
        const auto out = eraseNow(aero, b);
        EXPECT_FALSE(out.usedShallow);
    }
    EXPECT_EQ(aero.stats().shallowProbes, probes_before);
}

TEST(AeroScheme, MispredictionInjectionAddsPenalty)
{
    auto clean_chip = makeChip(11);
    SchemeOptions opts;
    AeroScheme clean(clean_chip, opts, true,
                     Ept::canonical(clean_chip.params()));
    auto noisy_chip = makeChip(11);
    opts.mispredictionRate = 1.0;  // every reduced erase pays the step
    AeroScheme noisy(noisy_chip, opts, true,
                     Ept::canonical(noisy_chip.params()));
    Tick t_clean = 0, t_noisy = 0;
    for (int b = 0; b < clean_chip.numBlocks(); ++b) {
        t_clean += eraseNow(clean, b).latency;
        t_noisy += eraseNow(noisy, b).latency;
    }
    EXPECT_GT(t_noisy, t_clean);
    EXPECT_GT(noisy.stats().injectedMispredictions, 0u);
    EXPECT_EQ(clean.stats().injectedMispredictions, 0u);
}

TEST(AeroScheme, DisabledShallowErasureFallsBackToFullFirstLoop)
{
    auto chip = makeChip(13);
    SchemeOptions opts;
    opts.shallowErasure = false;
    AeroScheme aero(chip, opts, false, Ept::canonical(chip.params()));
    const auto out = eraseNow(aero, 0);
    EXPECT_FALSE(out.usedShallow);
    EXPECT_TRUE(out.complete);
    EXPECT_GE(out.slotsApplied, chip.params().slotsPerLoop);
}

TEST(EptBuilder, BuildsTableCloseToCanonical)
{
    PopulationConfig pc;
    pc.numChips = 10;
    pc.geometry = ChipGeometry{1, 16, 8};
    pc.seed = 77;
    ChipPopulation pop(pc);
    EptBuilderConfig cfg;
    cfg.blocksPerChip = 12;
    EptBuilder builder(pop, cfg);
    const Ept built = builder.build();
    EXPECT_GT(builder.measurements(), 100u);
    const Ept canon = Ept::canonical(pop.params());
    // The built conservative column must cover the canonical one for
    // the ranges that characterization observed, within one slot.
    for (int row = 1; row <= Ept::kRows; ++row) {
        int prev = 0;
        for (int rg = 0; rg < Ept::kRanges; ++rg) {
            const int slots = built.consSlots(row, rg);
            EXPECT_GE(slots, prev);  // monotone in the fail-bit range
            prev = slots;
            EXPECT_NEAR(slots, canon.consSlots(row, rg), 1.01)
                << "row " << row << " range " << rg;
        }
    }
}

} // namespace
} // namespace aero
