/**
 * @file
 * Focused tests of the per-chip scheduler: priorities, erase atomicity,
 * suspension mechanics (entry latency, resume penalty, per-op cap), and
 * channel contention — driven through a hand-built FTL stub so each
 * behaviour is observable in isolation.
 */

#include <gtest/gtest.h>

#include "core/aero_scheme.hh"
#include "ssd/chip_agent.hh"

namespace aero
{
namespace
{

/** Minimal FtlCallbacks that records completions. */
class StubFtl : public FtlCallbacks
{
  public:
    void
    onPageOpDone(const PageOp &op) override
    {
        completions.push_back(op);
    }

    void
    onEraseDone(int, BlockId block, const EraseOutcome &outcome,
                GcJob *) override
    {
        erases.emplace_back(block, outcome);
    }

    bool
    eraseUrgent(int, BlockId) override
    {
        return urgent;
    }

    std::vector<PageOp> completions;
    std::vector<std::pair<BlockId, EraseOutcome>> erases;
    bool urgent = false;
};

struct Rig
{
    explicit Rig(SuspensionMode mode = SuspensionMode::MidSegment,
                 double pec = 2500.0)
        : cfg(SsdConfig::tiny()),
          chip(ChipParams::forType(cfg.chipType), cfg.geometry, 11)
    {
        cfg.suspension = mode;
        for (int b = 0; b < chip.numBlocks(); ++b)
            chip.ageBaseline(b, static_cast<int>(pec));
        scheme = makeEraseScheme(SchemeKind::Baseline, chip,
                                 SchemeOptions{});
        agent = std::make_unique<ChipAgent>(0, chip, *scheme, eq, cfg,
                                            channel, ftl, metrics);
    }

    PageOp
    read(Lpn lpn = 0)
    {
        PageOp op;
        op.kind = PageOp::Kind::UserRead;
        op.lpn = lpn;
        return op;
    }

    SsdConfig cfg;
    EventQueue eq;
    NandChip chip;
    std::unique_ptr<EraseScheme> scheme;
    Channel channel;
    StubFtl ftl;
    SsdMetrics metrics;
    std::unique_ptr<ChipAgent> agent;
};

TEST(ChipAgent, ReadLatencyIsSensePlusTransfer)
{
    Rig rig;
    rig.agent->enqueue(rig.read());
    rig.eq.run();
    ASSERT_EQ(rig.ftl.completions.size(), 1u);
    EXPECT_EQ(rig.eq.now(),
              rig.chip.params().tRead + rig.cfg.channelXferPerPage);
}

TEST(ChipAgent, ChannelSerializesTransfers)
{
    Rig rig;
    // Two reads on the same chip: second waits for the chip; channel
    // contention applies on top for chips sharing a channel.
    rig.agent->enqueue(rig.read(0));
    rig.agent->enqueue(rig.read(1));
    rig.eq.run();
    ASSERT_EQ(rig.ftl.completions.size(), 2u);
    EXPECT_EQ(rig.eq.now(), 2 * (rig.chip.params().tRead +
                                 rig.cfg.channelXferPerPage));
}

TEST(ChipAgent, EraseIsAtomicWithoutSuspension)
{
    Rig rig(SuspensionMode::None);
    rig.agent->enqueueErase(0, nullptr);
    // Let the erase start, then a read arrives 1 ms in.
    rig.eq.run(1 * kMs);
    rig.agent->enqueue(rig.read());
    rig.eq.run();
    ASSERT_EQ(rig.ftl.erases.size(), 1u);
    ASSERT_EQ(rig.ftl.completions.size(), 1u);
    EXPECT_EQ(rig.metrics.eraseSuspensions, 0u);
    // The read had to wait for the whole multi-loop erase operation.
    const auto &outcome = rig.ftl.erases[0].second;
    EXPECT_GE(outcome.loops, 2);
    EXPECT_GE(rig.eq.now(), outcome.latency);
}

TEST(ChipAgent, SuspensionPreemptsAndChargesOverheads)
{
    Rig rig(SuspensionMode::MidSegment);
    rig.agent->enqueueErase(0, nullptr);
    rig.eq.run(1 * kMs);
    const Tick read_enq = rig.eq.now();
    rig.agent->enqueue(rig.read());
    rig.eq.run();
    EXPECT_EQ(rig.metrics.eraseSuspensions, 1u);
    ASSERT_EQ(rig.ftl.completions.size(), 1u);
    ASSERT_EQ(rig.ftl.erases.size(), 1u);
    // The read waited only the voltage-quiesce entry, not the erase.
    // Reconstruct its completion time from the schedule: enqueue +
    // entry + sense + transfer.
    const Tick expected_read_done = read_enq + rig.cfg.suspendEntryLatency +
                                    rig.chip.params().tRead +
                                    rig.cfg.channelXferPerPage;
    // The erase resumed afterwards with the resume penalty, so total
    // time = erase latency + entry + read service + resume overhead.
    const auto &outcome = rig.ftl.erases[0].second;
    EXPECT_EQ(rig.eq.now(), outcome.latency +
                                rig.cfg.suspendEntryLatency +
                                (expected_read_done - read_enq -
                                 rig.cfg.suspendEntryLatency) +
                                rig.cfg.suspendResumeOverhead);
}

TEST(ChipAgent, SuspensionCapBoundsPreemptionsPerOperation)
{
    Rig rig(SuspensionMode::MidSegment);
    rig.agent->enqueueErase(0, nullptr);
    // Spaced read arrivals throughout the erase: only the first
    // kMaxSuspensionsPerOp can preempt; the rest must wait, so at least
    // one read sees a multi-millisecond delay.
    std::vector<Tick> enqueue_times;
    for (int i = 0; i < 10; ++i) {
        rig.eq.run(rig.eq.now() + 400 * kUs);
        enqueue_times.push_back(rig.eq.now());
        rig.agent->enqueue(rig.read(i));
    }
    rig.eq.run();
    ASSERT_EQ(rig.ftl.erases.size(), 1u);
    ASSERT_EQ(rig.ftl.completions.size(), 10u);
    EXPECT_GT(rig.metrics.eraseSuspensions, 0u);
    EXPECT_LE(rig.metrics.eraseSuspensions,
              static_cast<std::uint64_t>(
                  ChipAgent::kMaxSuspensionsPerOp));
    // With the cap at its default (2) and 10 spaced arrivals across a
    // multi-loop erase, the operation cannot have been fully hidden:
    // total time extends past the last enqueue by more than one read.
    EXPECT_GT(rig.eq.now(), enqueue_times.back() + 1 * kMs);
}

TEST(ChipAgent, UrgentEraseBeatsWrites)
{
    Rig rig;
    rig.ftl.urgent = true;
    PageOp w;
    w.kind = PageOp::Kind::UserWrite;
    rig.agent->enqueueErase(0, nullptr);
    rig.agent->enqueue(w);
    rig.eq.run();
    ASSERT_EQ(rig.ftl.erases.size(), 1u);
    ASSERT_EQ(rig.ftl.completions.size(), 1u);
    // The erase finished before the write started: total time >= erase
    // latency + write path.
    EXPECT_GE(rig.eq.now(), rig.ftl.erases[0].second.latency +
                                rig.cfg.channelXferPerPage +
                                rig.chip.params().tProg);
}

TEST(ChipAgent, BackgroundEraseYieldsToWrites)
{
    Rig rig;
    rig.ftl.urgent = false;
    PageOp w;
    w.kind = PageOp::Kind::UserWrite;
    rig.agent->enqueueErase(0, nullptr);
    rig.agent->enqueue(w);
    rig.eq.step();  // dispatch decision happens at the first event
    rig.eq.run();
    ASSERT_EQ(rig.ftl.completions.size(), 1u);
    ASSERT_EQ(rig.ftl.erases.size(), 1u);
}

TEST(ChipAgent, IdleReflectsQueues)
{
    Rig rig;
    EXPECT_TRUE(rig.agent->idle());
    rig.agent->enqueue(rig.read());
    EXPECT_FALSE(rig.agent->idle());
    rig.eq.run();
    EXPECT_TRUE(rig.agent->idle());
}

} // namespace
} // namespace aero
