/**
 * @file
 * Per-tenant SLO enforcement property battery: the TenantSloSpec
 * grammar, token-bucket admission throttling in the TracePump, and
 * weighted-fair channel arbitration, proven as properties rather than
 * pinned values — work conservation, no starvation under adversarial
 * mixes, weighted-share convergence, bucket-refill determinism across
 * worker counts, and a randomized multi-tenant fuzz with per-tenant
 * conservation invariants.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/aero_scheme.hh"
#include "exp/report.hh"
#include "exp/sweep.hh"
#include "ssd/chip_agent.hh"
#include "ssd/ssd.hh"
#include "workload/synthetic.hh"
#include "workload/trace_io/stream.hh"
#include "workload/trace_io/tenant.hh"

namespace aero
{
namespace
{

// ---------------------------------------------------------------------------
// TenantSloSpec grammar
// ---------------------------------------------------------------------------

TEST(TenantSloSpec, ParsesEveryKey)
{
    const TenantSloSpec spec = parseTenantSloSpec(
        "0:weight=8:p99=1500,1:iops=2000:bw=50000:burst=32,7:weight=1");
    ASSERT_EQ(spec.tenants.size(), 3u);

    const TenantSlo &victim = spec.tenants[0];
    EXPECT_EQ(victim.tenant, 0u);
    EXPECT_EQ(victim.weight, 8u);
    EXPECT_EQ(victim.iopsBudget, 0u);
    EXPECT_EQ(victim.bwBudgetKBps, 0u);
    EXPECT_EQ(victim.burst, kDefaultSloBurst);
    EXPECT_EQ(victim.p99TargetUs, 1500u);

    const TenantSlo &hog = spec.tenants[1];
    EXPECT_EQ(hog.tenant, 1u);
    EXPECT_EQ(hog.weight, 1u);
    EXPECT_EQ(hog.iopsBudget, 2000u);
    EXPECT_EQ(hog.bwBudgetKBps, 50000u);
    EXPECT_EQ(hog.burst, 32u);
    EXPECT_EQ(hog.p99TargetUs, 0u);

    EXPECT_EQ(spec.maxTenant(), 7u);
    ASSERT_NE(spec.find(7), nullptr);
    EXPECT_EQ(spec.find(3), nullptr);
    EXPECT_FALSE(spec.empty());
    EXPECT_TRUE(TenantSloSpec{}.empty());
}

TEST(TenantSloSpec, RenderRoundTrips)
{
    const char *specs[] = {
        "0:weight=8:p99=1500,1:iops=2000:burst=32",
        "0:weight=1",  // all-default entry must stay re-parseable
        "3:iops=1:bw=1:burst=1:p99=1:weight=1024",
    };
    for (const char *s : specs) {
        const TenantSloSpec a = parseTenantSloSpec(s);
        const std::string canon = renderTenantSloSpec(a);
        const TenantSloSpec b = parseTenantSloSpec(canon);
        // Canonical form is a fixed point.
        EXPECT_EQ(renderTenantSloSpec(b), canon) << "spec: " << s;
        ASSERT_EQ(b.tenants.size(), a.tenants.size());
        for (std::size_t i = 0; i < a.tenants.size(); ++i) {
            EXPECT_EQ(b.tenants[i].tenant, a.tenants[i].tenant);
            EXPECT_EQ(b.tenants[i].weight, a.tenants[i].weight);
            EXPECT_EQ(b.tenants[i].iopsBudget, a.tenants[i].iopsBudget);
            EXPECT_EQ(b.tenants[i].bwBudgetKBps, a.tenants[i].bwBudgetKBps);
            EXPECT_EQ(b.tenants[i].burst, a.tenants[i].burst);
            EXPECT_EQ(b.tenants[i].p99TargetUs, a.tenants[i].p99TargetUs);
        }
    }
}

TEST(TenantSloSpecDeathTest, RejectsMalformedSpecs)
{
    EXPECT_DEATH(parseTenantSloSpec(""), "empty tenant SLO spec");
    EXPECT_DEATH(parseTenantSloSpec("0:weight=2,,1:weight=3"),
                 "empty entry");
    EXPECT_DEATH(parseTenantSloSpec("5"), "no settings");
    EXPECT_DEATH(parseTenantSloSpec("0:weight=0"),
                 "weight 0 out of range \\[1, 1024\\]");
    EXPECT_DEATH(parseTenantSloSpec("0:weight=2000"),
                 "weight 2000 out of range \\[1, 1024\\]");
    EXPECT_DEATH(parseTenantSloSpec("0:iops=0"), "zero iops budget");
    EXPECT_DEATH(parseTenantSloSpec("0:bw=0"), "zero bandwidth budget");
    EXPECT_DEATH(parseTenantSloSpec("0:burst=0"), "zero burst allowance");
    EXPECT_DEATH(parseTenantSloSpec("0:p99=0"), "zero p99 target");
    EXPECT_DEATH(parseTenantSloSpec("0:weight=2,0:weight=3"),
                 "duplicate tenant 0");
    EXPECT_DEATH(parseTenantSloSpec("70000:weight=2"),
                 "tenant id 70000 out of range \\(max 65535\\)");
    EXPECT_DEATH(parseTenantSloSpec("0:weight=1:weight=2"),
                 "duplicate key 'weight'");
    EXPECT_DEATH(parseTenantSloSpec("0:magic=1"), "unknown key 'magic'");
    EXPECT_DEATH(parseTenantSloSpec("0:weight=abc"), "is not a number");
    EXPECT_DEATH(parseTenantSloSpec("0:weight"),
                 "is not <key>=<value>");
    EXPECT_DEATH(parseTenantSloSpec("x:weight=2"), "is not a number");
}

TEST(TenantSloSpec, SweepReportEmitsSpecKeysOnlyWhenSwept)
{
    // Default spec: no SLO keys anywhere (the 16 pre-SLO goldens depend
    // on this staying true).
    const SweepSpec plain = SweepBuilder().build();
    const Json plain_json = toJson(plain);
    EXPECT_EQ(plain_json.find("slo_policies"), nullptr);
    EXPECT_EQ(plain_json.find("slo_spec"), nullptr);

    SweepBuilder builder;
    builder.sloPolicies({"none", "throttle+wfq"});
    SweepSpec swept = builder.build();
    swept.base.slo = parseTenantSloSpec("0:weight=8:iops=2000");
    const Json swept_json = toJson(swept);
    ASSERT_NE(swept_json.find("slo_policies"), nullptr);
    ASSERT_NE(swept_json.find("slo_spec"), nullptr);
    EXPECT_EQ(swept_json.get("slo_spec").asString(),
              "0:weight=8:iops=2000");

    // Row key rides through the SimResult round trip.
    SimResult r;
    r.point.sloPolicy = "throttle+wfq";
    const SimResult back = simResultFromJson(toJson(r));
    EXPECT_EQ(back.point.sloPolicy, "throttle+wfq");
}

// ---------------------------------------------------------------------------
// Scheduler properties
// ---------------------------------------------------------------------------

/** Minimal FtlCallbacks recording completions in completion order. */
class StubFtl : public FtlCallbacks
{
  public:
    void
    onPageOpDone(const PageOp &op) override
    {
        completions.push_back(op);
    }

    void
    onEraseDone(int, BlockId, const EraseOutcome &, GcJob *) override
    {
    }

    bool
    eraseUrgent(int, BlockId) override
    {
        return false;
    }

    std::vector<PageOp> completions;
};

SsdConfig
sloCfg(SloPolicy policy, const std::string &spec)
{
    SsdConfig cfg = SsdConfig::tiny();
    // Several chips per channel, so the bus regularly has waiters from
    // different tenants and weighted-fair arbitration has real choices
    // to make (one chip per channel never contends with itself).
    cfg.chipsPerChannel = 4;
    cfg.seed = 99;
    cfg.arbitration = Arbitration::Queued;
    cfg.sloPolicy = policy;
    if (!spec.empty())
        cfg.slo = parseTenantSloSpec(spec);
    return cfg;
}

Trace
tenantTrace(const SsdConfig &cfg, std::uint64_t n, double intensity,
            std::uint64_t seed, const char *wl = "prxy")
{
    SyntheticConfig wc;
    wc.spec = workloadByName(wl);
    wc.footprintPages = SsdConfig(cfg).logicalPages();
    wc.numRequests = n;
    wc.seed = seed;
    wc.intensityScale = intensity;
    return generateTrace(wc);
}

struct MixOutcome
{
    std::vector<TenantLatency> tenants;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double avgReadUs = 0.0;
    double p999Us = 0.0;
    std::uint64_t throttleDeferrals = 0;
};

MixOutcome
runMix(const SsdConfig &cfg, std::vector<Trace> traces)
{
    Ssd ssd(cfg);
    ssd.metrics().enableTenantTracking(traces.size());
    std::vector<std::unique_ptr<TraceStream>> streams;
    for (Trace &t : traces)
        streams.push_back(std::make_unique<VectorTraceStream>(std::move(t)));
    TenantMix mix(std::move(streams));
    ssd.run(mix);

    const SsdMetrics &m = ssd.metrics();
    MixOutcome out;
    out.tenants = m.tenants;
    out.reads = m.reads;
    out.writes = m.writes;
    out.avgReadUs = m.readLatency.mean() / static_cast<double>(kUs);
    out.p999Us = ticksToUs(m.readLatency.percentile(0.999));
    out.throttleDeferrals = m.throttleDeferrals;
    return out;
}

TEST(SloScheduler, SingleTenantWfqMatchesFifoExactly)
{
    // With one tenant the SFQ tags are monotone, so weighted-fair
    // arbitration must be grant-for-grant identical to FIFO: enforcement
    // is work-conserving and intrusion-free when there is no contention
    // to arbitrate.
    const SsdConfig none = sloCfg(SloPolicy::None, "");
    const SsdConfig wfq = sloCfg(SloPolicy::Wfq, "0:weight=64");
    const Trace trace = tenantTrace(none, 6000, 4.0, 31);

    const MixOutcome a = runMix(none, {trace});
    const MixOutcome b = runMix(wfq, {trace});
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_DOUBLE_EQ(a.avgReadUs, b.avgReadUs);
    EXPECT_DOUBLE_EQ(a.p999Us, b.p999Us);
}

TEST(SloScheduler, UnreachableBudgetsNeverDefer)
{
    // A throttle whose budgets exceed the offered load must admit every
    // request instantly: zero deferrals and bit-identical latency.
    const SsdConfig none = sloCfg(SloPolicy::None, "");
    const SsdConfig throttled =
        sloCfg(SloPolicy::Throttle, "0:iops=1000000000:bw=1000000000");
    const Trace trace = tenantTrace(none, 6000, 4.0, 31);

    const MixOutcome a = runMix(none, {trace});
    const MixOutcome b = runMix(throttled, {trace});
    EXPECT_EQ(b.throttleDeferrals, 0u);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_DOUBLE_EQ(a.avgReadUs, b.avgReadUs);
    EXPECT_DOUBLE_EQ(a.p999Us, b.p999Us);
}

TEST(SloScheduler, NoStarvationUnderAdversarialMix)
{
    // A write-heavy aggressor at 40x arrival intensity against a tightly
    // budgeted spec: every request of both tenants still completes (the
    // throttle defers, never drops) and the victim keeps making
    // progress.
    const SsdConfig cfg = sloCfg(SloPolicy::ThrottleWfq,
                                 "0:weight=8,1:weight=1:iops=800");
    const Trace victim = tenantTrace(cfg, 3000, 1.0, 31, "usr");
    const Trace hog = tenantTrace(cfg, 6000, 40.0, 77, "ali.A");

    std::uint64_t submitted[2][2] = {};  // [tenant][op]
    for (const auto &r : victim)
        submitted[0][r.op == IoOp::Write ? 1 : 0] += 1;
    for (const auto &r : hog)
        submitted[1][r.op == IoOp::Write ? 1 : 0] += 1;

    const MixOutcome out = runMix(cfg, {victim, hog});
    ASSERT_EQ(out.tenants.size(), 2u);
    EXPECT_EQ(out.tenants[0].reads, submitted[0][0]);
    EXPECT_EQ(out.tenants[0].writes, submitted[0][1]);
    EXPECT_EQ(out.tenants[1].reads, submitted[1][0]);
    EXPECT_EQ(out.tenants[1].writes, submitted[1][1]);

    // The aggressor overran its budget and paid for it; the unbudgeted
    // victim was never deferred.
    EXPECT_GT(out.tenants[1].throttleDeferrals, 0u);
    EXPECT_GT(out.tenants[1].throttleDeferredTicks, 0u);
    EXPECT_EQ(out.tenants[0].throttleDeferrals, 0u);
}

TEST(SloScheduler, ThrottleShieldsTheVictimsTail)
{
    // Same adversarial mix with and without enforcement: the victim's
    // read tail must improve when the aggressor is held to its budget
    // and out-weighted on the channels.
    const SsdConfig none = sloCfg(SloPolicy::None, "");
    const SsdConfig enforced = sloCfg(SloPolicy::ThrottleWfq,
                                      "0:weight=8,1:weight=1:iops=800");
    const Trace victim = tenantTrace(none, 3000, 1.0, 31, "usr");
    const Trace hog = tenantTrace(none, 6000, 40.0, 77, "ali.A");

    const MixOutcome base = runMix(none, {victim, hog});
    const MixOutcome slo = runMix(enforced, {victim, hog});
    ASSERT_EQ(base.tenants.size(), 2u);
    ASSERT_EQ(slo.tenants.size(), 2u);
    EXPECT_LT(slo.tenants[0].readP99Us(), base.tenants[0].readP99Us());
}

/**
 * A bus-bound arbiter rig: one channel, two chip agents per tenant,
 * each agent fed a deep single-tenant read backlog. The transfer time
 * dwarfs the sense time, so the bus is the bottleneck and the grant
 * sequence is pure weighted-fair arbitration — the cleanest window onto
 * the scheduler, with none of the per-chip FIFO mixing an end-to-end
 * multi-tenant run layers on top. Two chips per tenant matter: a chip
 * leaves the wait queue while it senses its next page, so a
 * single-chip tenant is absent at the very pick that follows its own
 * grant and the arbiter could never award back-to-back grants however
 * large the weight.
 */
struct ArbiterRig
{
    static constexpr std::size_t kChipsPerTenant = 2;

    explicit ArbiterRig(const std::vector<std::uint32_t> &weights)
        : cfg(SsdConfig::tiny())
    {
        cfg.arbitration = Arbitration::Queued;
        cfg.channelXferPerPage = 2000 * kUs;  // bus-bound on purpose
        channel.init(0, &eq, &metrics);
        channel.enableWfq(weights);
        metrics.enableTenantTracking(weights.size());
        for (std::size_t a = 0; a < weights.size() * kChipsPerTenant; ++a) {
            chips.push_back(std::make_unique<NandChip>(
                ChipParams::forType(cfg.chipType), cfg.geometry, 11));
            for (int b = 0; b < chips[a]->numBlocks(); ++b)
                chips[a]->ageBaseline(b, 2500);
            schemes.push_back(makeEraseScheme(SchemeKind::Baseline,
                                              *chips[a], SchemeOptions{}));
            agents.push_back(std::make_unique<ChipAgent>(
                static_cast<int>(a), *chips[a], *schemes[a], eq, cfg,
                channel, ftl, metrics));
        }
    }

    void
    backlog(std::size_t tenant, std::size_t n)
    {
        for (std::size_t c = 0; c < kChipsPerTenant; ++c) {
            ChipAgent &agent = *agents[tenant * kChipsPerTenant + c];
            for (std::size_t i = 0; i < n / kChipsPerTenant; ++i) {
                PageOp op;
                op.kind = PageOp::Kind::UserRead;
                op.lpn = i;
                op.tenant = static_cast<TenantId>(tenant);
                agent.enqueueDeferred(op);
            }
            agent.flush();
        }
    }

    SsdConfig cfg;
    EventQueue eq;
    Channel channel;
    StubFtl ftl;
    SsdMetrics metrics;
    std::vector<std::unique_ptr<NandChip>> chips;
    std::vector<std::unique_ptr<EraseScheme>> schemes;
    std::vector<std::unique_ptr<ChipAgent>> agents;
};

TEST(SloScheduler, WeightedShareConverges)
{
    // Three perpetually backlogged tenants at weights 1:2:4 must split
    // the bus 1:2:4: in any window where all three are still queued,
    // completion counts converge to the weight vector (SFQ's bounded
    // unfairness shrinks against a 140-grant window).
    ArbiterRig rig({1, 2, 4});
    for (std::size_t t = 0; t < 3; ++t)
        rig.backlog(t, 200);
    rig.eq.run();
    ASSERT_EQ(rig.ftl.completions.size(), 600u);

    // First 140 completions: all tenants still backlogged (the fastest
    // drains only at 200), so the fluid-model split is 20/40/80.
    std::size_t counts[3] = {};
    for (std::size_t i = 0; i < 140; ++i)
        counts[rig.ftl.completions[i].tenant] += 1;
    EXPECT_NEAR(static_cast<double>(counts[0]), 20.0, 5.0);
    EXPECT_NEAR(static_cast<double>(counts[1]), 40.0, 8.0);
    EXPECT_NEAR(static_cast<double>(counts[2]), 80.0, 12.0);

    // Work conservation: every queued op completes, and the per-tenant
    // channel-held time the metrics saw matches the grant count (each
    // grant holds the bus for exactly one transfer slot).
    for (std::size_t t = 0; t < 3; ++t) {
        EXPECT_EQ(rig.metrics.tenants[t].channelGrants, 200u);
        EXPECT_EQ(rig.metrics.tenants[t].channelHeldTicks,
                  200u * rig.cfg.channelXferPerPage);
    }
}

TEST(SloScheduler, UnlistedTenantWeighsOneAndIsNeverStarved)
{
    // A zero (or missing) entry in the weight table defaults to weight
    // 1: the unlisted tenant still gets its 1-in-5 share against a
    // weight-4 neighbour instead of starving.
    ArbiterRig rig({4, 0});  // explicit zero defaults to weight 1
    rig.backlog(0, 200);
    rig.backlog(1, 200);
    rig.eq.run();
    ASSERT_EQ(rig.ftl.completions.size(), 400u);
    std::size_t counts[2] = {};
    for (std::size_t i = 0; i < 150; ++i)
        counts[rig.ftl.completions[i].tenant] += 1;
    // 4:1 split of 150 -> 120/30.
    EXPECT_NEAR(static_cast<double>(counts[0]), 120.0, 12.0);
    EXPECT_NEAR(static_cast<double>(counts[1]), 30.0, 12.0);
    EXPECT_GT(counts[1], 0u);  // never starved
}

TEST(SloScheduler, BucketRefillIsDeterministicAcrossWorkerCounts)
{
    // The same swept grid — SLO policy as an axis, budgets on the base
    // config — must produce bit-identical results at 1 and 4 sweep
    // threads: bucket state lives per-drive, so worker count can't leak
    // into admission timing.
    SweepBuilder builder;
    builder.workload("prxy");
    builder.schemes({SchemeKind::Baseline, SchemeKind::Aero});
    builder.pec(2500.0);
    builder.sloPolicies({"none", "throttle", "wfq", "throttle+wfq"});
    builder.requests(2500);
    SweepSpec spec = builder.build();
    spec.base = SsdConfig::tiny();
    spec.base.arbitration = Arbitration::Queued;
    // prxy offers ~280 req/s; a 150/s budget makes every throttled
    // point genuinely defer.
    spec.base.slo = parseTenantSloSpec("0:weight=4:iops=150");

    const auto serial = SweepRunner(1).run(spec);
    const auto parallel = SweepRunner(4).run(spec);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 8u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].point.sloPolicy, parallel[i].point.sloPolicy);
        EXPECT_DOUBLE_EQ(serial[i].avgReadUs, parallel[i].avgReadUs);
        EXPECT_DOUBLE_EQ(serial[i].avgWriteUs, parallel[i].avgWriteUs);
        EXPECT_DOUBLE_EQ(serial[i].iops, parallel[i].iops);
        EXPECT_DOUBLE_EQ(serial[i].p999Us, parallel[i].p999Us);
        EXPECT_EQ(serial[i].erases, parallel[i].erases);
    }
    // The throttled points actually throttled (the axis is live): the
    // budget must bite somewhere or this test proves nothing.
    bool throttle_differs = false;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        if (serial[i].point.sloPolicy != "throttle")
            continue;
        for (std::size_t j = 0; j < serial.size(); ++j) {
            if (parallel[j].point.sloPolicy == "none" &&
                serial[i].point.scheme == parallel[j].point.scheme &&
                serial[i].avgReadUs != parallel[j].avgReadUs)
                throttle_differs = true;
        }
    }
    EXPECT_TRUE(throttle_differs);
}

TEST(SloScheduler, RandomizedFuzzConservesEveryTenant)
{
    // 50k randomized multi-tenant ops through throttle+wfq with random
    // budgets and weights: whatever the admission schedule, every
    // tenant's completed counts must equal its submitted counts, and
    // only budgeted tenants may ever be deferred.
    constexpr std::uint64_t kFuzzSeed = 0xA3305EED;
    constexpr std::size_t kTenants = 4;
    constexpr std::size_t kOps = 50000;
    std::mt19937_64 rng(kFuzzSeed);

    // Random spec: tenant 0 unbudgeted (control), the rest random.
    std::ostringstream spec;
    spec << "0:weight=" << (1 + rng() % 16);
    for (std::size_t t = 1; t < kTenants; ++t) {
        spec << "," << t << ":weight=" << (1 + rng() % 16);
        if (rng() % 2)
            spec << ":iops=" << (2000 + rng() % 18000);
        if (rng() % 2)
            spec << ":bw=" << (50000 + rng() % 400000);
        spec << ":burst=" << (4 + rng() % 60);
    }
    const SsdConfig cfg = sloCfg(SloPolicy::ThrottleWfq, spec.str());
    const TenantSloSpec parsed = cfg.slo;

    const Lpn footprint = SsdConfig(cfg).logicalPages();
    std::vector<Trace> traces(kTenants);
    std::uint64_t submitted[kTenants][2] = {};
    Tick arrival = 0;
    for (std::size_t i = 0; i < kOps; ++i) {
        arrival += rng() % (200 * kUs / 100);
        TraceRecord rec;
        rec.arrival = arrival;
        rec.op = (rng() % 10 < 7) ? IoOp::Read : IoOp::Write;
        rec.pages = 1 + static_cast<std::uint32_t>(rng() % 4);
        rec.startPage = rng() % (footprint - rec.pages);
        const std::size_t tenant = rng() % kTenants;
        traces[tenant].push_back(rec);
        submitted[tenant][rec.op == IoOp::Write ? 1 : 0] += 1;
    }

    const MixOutcome out = runMix(cfg, std::move(traces));
    ASSERT_EQ(out.tenants.size(), kTenants);
    for (std::size_t t = 0; t < kTenants; ++t) {
        const TenantLatency &m = out.tenants[t];
        const TenantSlo *slo = parsed.find(static_cast<TenantId>(t));
        const bool budgeted =
            slo != nullptr && (slo->iopsBudget != 0 || slo->bwBudgetKBps != 0);
        if (m.reads != submitted[t][0] || m.writes != submitted[t][1] ||
            (!budgeted && m.throttleDeferrals != 0)) {
            // Minimal op-log dump: the seed plus the per-tenant ledger
            // is enough to replay the exact failing schedule.
            std::ostringstream dump;
            dump << "fuzz seed 0x" << std::hex << kFuzzSeed << std::dec
                 << ", spec '" << spec.str() << "'\n";
            for (std::size_t u = 0; u < kTenants; ++u) {
                dump << "  tenant " << u << ": submitted "
                     << submitted[u][0] << "r/" << submitted[u][1]
                     << "w, completed " << out.tenants[u].reads << "r/"
                     << out.tenants[u].writes << "w, deferrals "
                     << out.tenants[u].throttleDeferrals << "\n";
            }
            FAIL() << "per-tenant conservation violated\n" << dump.str();
        }
    }
    // The fuzz must exercise the throttle path, not just FIFO-admit.
    EXPECT_GT(out.throttleDeferrals, 0u);
}

} // namespace
} // namespace aero
