# Kill-and-resume crash harness, run as a CTest driver:
#
#   cmake -DBENCH=<bench-binary> -DDIFF=<aero_diff-binary>
#         -DWORK=<scratch dir> -DTHREADS=<n> [-DMAX_KILLS=<n>]
#         [-DWORKERS=<n>] [-DEXTRA_ARGS=<extra bench flags>]
#         -P run_crash_resume.cmake
#
# -DEXTRA_ARGS passes extra flags (space-separated) to every bench
# invocation — clean run, kill loop, and final resume alike — so a
# non-default configuration (e.g. `--slo noisy`) gets the same
# crash/resume treatment as the default campaign.
#
# With -DWORKERS=<n> every checkpointed attempt runs `--workers <n>`
# against a journal *directory* (ck.dir), so the kill loop exercises the
# multi-process path: SIGKILLing the driver tears down its forked
# workers mid-claim (PDEATHSIG), and each restart must merge the
# per-worker journal files — torn tails, stale claims and all.
#
# Procedure (the checkpoint contract, end to end on the real binary):
#   1. Run `<bench> --small` uninterrupted -> clean.json / clean.csv.
#   2. Repeatedly start the same bench with `--checkpoint ck.jsonl` and
#      SIGKILL it at a randomized point (growing, jittered timeouts), so
#      successive attempts die at different stages of the campaign and
#      each restart must resume from the journal the previous victim
#      left behind — torn tails included. Each attempt also runs under a
#      *random* AERO_SWEEP_THREADS (1-4), so resumes cross worker
#      counts: the journal is axis-keyed, not position-keyed, and this
#      is where that claim is exercised. The loop ends when an attempt
#      survives to completion (a final untimed run guarantees that).
#   3. Require the resumed artifacts to be *byte-identical* to the clean
#      run's (cmake -E compare_files), and `aero_diff` to agree.
#
# `timeout --signal=KILL` delivers a true SIGKILL where coreutils is
# available (Linux CI and dev boxes); elsewhere the harness falls back
# to execute_process(TIMEOUT), whose kill is equally abrupt for a
# process that installs no handlers.

foreach(required BENCH DIFF WORK THREADS)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "run_crash_resume.cmake needs -D${required}=...")
    endif()
endforeach()
if(NOT DEFINED MAX_KILLS)
    set(MAX_KILLS 20)
endif()
set(extra_args)
if(DEFINED EXTRA_ARGS)
    separate_arguments(extra_args UNIX_COMMAND "${EXTRA_ARGS}")
endif()
if(DEFINED WORKERS AND WORKERS GREATER 1)
    set(ck_path "${WORK}/ck.dir")
    set(worker_flags --workers "${WORKERS}")
else()
    set(ck_path "${WORK}/ck.jsonl")
    set(worker_flags)
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")
set(ENV{AERO_SWEEP_THREADS} "${THREADS}")

# ---------------------------------------------------------------------------
# 1. Clean, uninterrupted reference run.
# ---------------------------------------------------------------------------
execute_process(
    COMMAND "${BENCH}" --small ${extra_args}
        --json "${WORK}/clean.json" --csv "${WORK}/clean.csv"
    RESULT_VARIABLE clean_rc
    OUTPUT_QUIET)
if(NOT clean_rc EQUAL 0)
    message(FATAL_ERROR "clean run of '${BENCH}' failed (exit ${clean_rc})")
endif()

# ---------------------------------------------------------------------------
# 2. Kill loop: SIGKILL the checkpointed bench at randomized points until
#    one attempt completes. Timeouts start small (die early in the
#    campaign) and grow geometrically with a random jitter, so the kill
#    points spread across the whole run instead of clustering.
# ---------------------------------------------------------------------------
find_program(TIMEOUT_TOOL timeout)

set(kill_ms 120)
set(completed FALSE)
set(kills 0)
foreach(attempt RANGE 1 ${MAX_KILLS})
    # kill_ms plus up to ~50% random jitter, in whole milliseconds.
    # (No zeros in the alphabet: math(EXPR) rejects leading zeros.)
    string(RANDOM LENGTH 3 ALPHABET "123456789" jitter)
    math(EXPR this_ms "${kill_ms} + (${kill_ms} * ${jitter}) / 2000")
    math(EXPR timeout_s "${this_ms} / 1000")
    math(EXPR timeout_frac "${this_ms} % 1000")
    string(LENGTH "${timeout_frac}" frac_len)
    if(frac_len EQUAL 1)
        set(timeout_frac "00${timeout_frac}")
    elseif(frac_len EQUAL 2)
        set(timeout_frac "0${timeout_frac}")
    endif()
    set(budget "${timeout_s}.${timeout_frac}")

    # Resume under a different worker count than the journal was
    # written with (restored to ${THREADS} after the loop).
    string(RANDOM LENGTH 1 ALPHABET "1234" attempt_threads)
    set(ENV{AERO_SWEEP_THREADS} "${attempt_threads}")

    if(TIMEOUT_TOOL)
        execute_process(
            COMMAND "${TIMEOUT_TOOL}" --signal=KILL "${budget}"
                "${BENCH}" --small ${extra_args} --checkpoint "${ck_path}"
                ${worker_flags}
                --json "${WORK}/resumed.json" --csv "${WORK}/resumed.csv"
            RESULT_VARIABLE rc
            OUTPUT_QUIET ERROR_QUIET)
    else()
        execute_process(
            COMMAND "${BENCH}" --small ${extra_args}
                --checkpoint "${ck_path}" ${worker_flags}
                --json "${WORK}/resumed.json" --csv "${WORK}/resumed.csv"
            TIMEOUT "${budget}"
            RESULT_VARIABLE rc
            OUTPUT_QUIET ERROR_QUIET)
    endif()
    if(rc EQUAL 0)
        set(completed TRUE)
        break()
    endif()
    math(EXPR kills "${kills} + 1")
    math(EXPR kill_ms "(${kill_ms} * 14) / 10")
endforeach()

set(ENV{AERO_SWEEP_THREADS} "${THREADS}")
if(NOT completed)
    # Pathologically slow machine: let the final resume run to the end.
    execute_process(
        COMMAND "${BENCH}" --small ${extra_args}
            --checkpoint "${ck_path}" ${worker_flags}
            --json "${WORK}/resumed.json" --csv "${WORK}/resumed.csv"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "resumed run of '${BENCH}' failed (exit ${rc})")
    endif()
endif()
message(STATUS "crash harness: ${kills} SIGKILLed attempt(s) before a "
               "run completed")

# ---------------------------------------------------------------------------
# 3. Byte-identity against the clean run, plus the semantic gate.
# ---------------------------------------------------------------------------
foreach(artifact clean.json clean.csv resumed.json resumed.csv)
    if(NOT EXISTS "${WORK}/${artifact}")
        message(FATAL_ERROR "missing artifact ${WORK}/${artifact}")
    endif()
endforeach()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
        "${WORK}/clean.json" "${WORK}/resumed.json"
    RESULT_VARIABLE json_cmp)
if(NOT json_cmp EQUAL 0)
    message(FATAL_ERROR
        "resumed JSON artifact is not byte-identical to the clean run "
        "(${WORK}/clean.json vs ${WORK}/resumed.json)")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
        "${WORK}/clean.csv" "${WORK}/resumed.csv"
    RESULT_VARIABLE csv_cmp)
if(NOT csv_cmp EQUAL 0)
    message(FATAL_ERROR
        "resumed CSV artifact is not byte-identical to the clean run "
        "(${WORK}/clean.csv vs ${WORK}/resumed.csv)")
endif()

execute_process(
    COMMAND "${DIFF}" "${WORK}/clean.json" "${WORK}/resumed.json"
    RESULT_VARIABLE diff_rc
    OUTPUT_QUIET)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "aero_diff disagrees with cmp (exit ${diff_rc})")
endif()

message(STATUS "crash harness: resumed artifacts byte-identical to the "
               "clean run at ${THREADS} thread(s)")
