/**
 * @file
 * Unit tests for the event queue, page mapping, and block manager —
 * including the tagged-kernel surface (EventId cancellation, arena
 * recycling, same-tick ordering across kinds) and a randomized
 * 1-vs-4-thread determinism check over full-drive replays.
 */

#include <gtest/gtest.h>

#include <random>

#include "exp/report.hh"
#include "exp/sweep.hh"
#include "sim/event_queue.hh"
#include "ssd/block_manager.hh"
#include "ssd/mapping.hh"

namespace aero
{
namespace
{

/** Timer-payload probe: appends its tag to a shared order vector. */
struct OrderProbe
{
    std::vector<int> *order;
    int tag;
};

void
recordTag(void *ctx)
{
    const auto *probe = static_cast<OrderProbe *>(ctx);
    probe->order->push_back(probe->tag);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.processed(), 3u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 5)
            eq.schedule(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(5, [] {}), "past");
}

TEST(EventQueue, TaggedTimerFiresAndInvalidatesHandle)
{
    EventQueue eq;
    std::vector<int> order;
    OrderProbe probe{&order, 1};
    const EventId id = eq.scheduleTimerAt(10, recordTag, &probe);
    EXPECT_TRUE(static_cast<bool>(id));
    EXPECT_TRUE(eq.pendingEvent(id));
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(eq.processed(), 1u);
    // The handle is stale once the event fired: not pending, not
    // cancellable. A never-valid default handle behaves the same.
    EXPECT_FALSE(eq.pendingEvent(id));
    EXPECT_FALSE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(EventId{}));
    EXPECT_FALSE(eq.pendingEvent(EventId{}));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue eq;
    std::vector<int> order;
    OrderProbe keep{&order, 1};
    OrderProbe drop{&order, 2};
    const EventId kept = eq.scheduleTimerAt(10, recordTag, &keep);
    const EventId dropped = eq.scheduleTimerAt(10, recordTag, &drop);
    EXPECT_TRUE(eq.cancel(dropped));
    EXPECT_FALSE(eq.pendingEvent(dropped));
    EXPECT_FALSE(eq.cancel(dropped));  // second cancel: stale handle
    EXPECT_TRUE(eq.pendingEvent(kept));
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1}));
}

TEST(EventQueue, CancelledSlotIsSkippedAmongSameTickPeers)
{
    EventQueue eq;
    std::vector<int> order;
    OrderProbe a{&order, 1};
    OrderProbe b{&order, 2};
    OrderProbe c{&order, 3};
    eq.scheduleTimerAt(10, recordTag, &a);
    const EventId mid = eq.scheduleTimerAt(10, recordTag, &b);
    eq.scheduleTimerAt(10, recordTag, &c);
    EXPECT_TRUE(eq.cancel(mid));
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SameTickMixedKindsFireInScheduleOrder)
{
    // FIFO-at-a-tick must hold across event kinds, not just within one:
    // compat callbacks and tagged timers interleaved at one tick fire
    // in exactly the order they were scheduled.
    EventQueue eq;
    std::vector<int> order;
    OrderProbe t1{&order, 1};
    OrderProbe t3{&order, 3};
    eq.scheduleTimerAt(5, recordTag, &t1);
    eq.scheduleAt(5, [&order] { order.push_back(2); });
    eq.scheduleTimerAt(5, recordTag, &t3);
    eq.scheduleAt(5, [&order] { order.push_back(4); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, NextEventTickTracksHeapRoot)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), kTickMax);
    eq.schedule(42, [] {});
    eq.schedule(17, [] {});
    EXPECT_EQ(eq.nextEventTick(), 17u);
    eq.run();
    EXPECT_EQ(eq.nextEventTick(), kTickMax);
}

TEST(EventQueue, ArenaSlotsAreRecycledAfterDrain)
{
    EventQueue eq;
    int fired = 0;
    const auto wave = [&](Tick base) {
        for (int i = 0; i < 100; ++i)
            eq.scheduleTimerAt(base + static_cast<Tick>(i),
                               [](void *ctx) {
                                   *static_cast<int *>(ctx) += 1;
                               },
                               &fired);
        eq.run();
    };
    wave(1);
    const std::size_t after_first = eq.arenaSlots();
    EXPECT_GE(after_first, 100u);
    // Every later wave re-uses the drained slots: the arena never grows
    // again, so steady-state simulation does zero event allocation.
    for (int w = 1; w < 5; ++w)
        wave(eq.now() + 1);
    EXPECT_EQ(eq.arenaSlots(), after_first);
    EXPECT_EQ(fired, 500);
}

TEST(EventQueue, CancelledSlotsAreRecycledToo)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 64; ++i)
        ids.push_back(eq.scheduleTimerAt(10, [](void *) {}, nullptr));
    for (const EventId id : ids)
        EXPECT_TRUE(eq.cancel(id));
    eq.run();  // surfaces and recycles the dead slots
    EXPECT_TRUE(eq.empty());
    const std::size_t slots = eq.arenaSlots();
    for (int i = 0; i < 64; ++i)
        eq.scheduleTimerAt(eq.now() + 1, [](void *) {}, nullptr);
    for (int i = 0; i < 64; ++i)
        EXPECT_TRUE(eq.step());
    EXPECT_EQ(eq.arenaSlots(), slots);
}

TEST(EventQueue, ThreadCountCannotPerturbReplays)
{
    // The determinism claim behind `ctest -L golden`: a full-drive
    // replay is a pure function of its SimPoint, so a randomized set of
    // points must produce bit-identical results from a 1-thread and a
    // 4-thread pool (each point owns its Ssd and EventQueue; threads
    // shard points, never a drive's chips).
    std::mt19937 rng(20240808u);
    const std::vector<std::string> workloads = {"prxy", "proj", "hm"};
    std::vector<SimPoint> points;
    for (int i = 0; i < 6; ++i) {
        SimPoint pt;
        pt.workload = workloads[rng() % workloads.size()];
        pt.scheme = (rng() % 2 == 0) ? SchemeKind::Baseline
                                     : SchemeKind::Aero;
        pt.pec = (rng() % 2 == 0) ? 500.0 : 2500.0;
        pt.requests = 1500 + rng() % 500;
        pt.seed = rng();
        points.push_back(pt);
    }
    const SsdConfig base = SsdConfig::tiny();
    const auto one = SweepRunner(1).run(points, base);
    const auto four = SweepRunner(4).run(points, base);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        EXPECT_EQ(toJson(one[i]).dump(), toJson(four[i]).dump())
            << "replay " << i << " diverged across thread counts";
}

TEST(Mapping, UpdateAndLookupRoundTrip)
{
    PageMapping m(64, 2, 4, 8);
    EXPECT_EQ(m.lookup(0), kInvalidPpn);
    const Ppn ppn = m.encode(1, 2, 3);
    EXPECT_EQ(m.update(7, ppn), kInvalidPpn);
    EXPECT_EQ(m.lookup(7), ppn);
    EXPECT_EQ(m.reverseLookup(ppn), 7u);
    EXPECT_EQ(m.mappedCount(), 1u);
    const auto parts = m.decode(ppn);
    EXPECT_EQ(parts.chip, 1);
    EXPECT_EQ(parts.block, 2u);
    EXPECT_EQ(parts.page, 3);
}

TEST(Mapping, OverwriteInvalidatesOldLocation)
{
    PageMapping m(64, 2, 4, 8);
    const Ppn a = m.encode(0, 1, 0);
    const Ppn b = m.encode(1, 3, 5);
    m.update(9, a);
    EXPECT_EQ(m.validPages(0, 1), 1);
    EXPECT_EQ(m.update(9, b), a);
    EXPECT_EQ(m.reverseLookup(a), kInvalidLpn);
    EXPECT_EQ(m.validPages(0, 1), 0);
    EXPECT_EQ(m.validPages(1, 3), 1);
    EXPECT_EQ(m.mappedCount(), 1u);
}

TEST(Mapping, DoubleProgramSamePpnPanics)
{
    PageMapping m(64, 2, 4, 8);
    const Ppn ppn = m.encode(0, 0, 0);
    m.update(1, ppn);
    EXPECT_DEATH(m.update(2, ppn), "still mapped");
}

TEST(Mapping, EraseRequiresNoValidPages)
{
    PageMapping m(64, 2, 4, 8);
    m.update(3, m.encode(0, 2, 1));
    EXPECT_DEATH(m.onBlockErased(0, 2), "valid pages");
    m.invalidateLpn(3);
    m.onBlockErased(0, 2);  // now fine
    EXPECT_EQ(m.validPages(0, 2), 0);
}

TEST(Mapping, EncodeDecodeExhaustive)
{
    PageMapping m(64, 3, 5, 7);
    for (int c = 0; c < 3; ++c) {
        for (BlockId b = 0; b < 5; ++b) {
            for (int pg = 0; pg < 7; ++pg) {
                const auto parts = m.decode(m.encode(c, b, pg));
                EXPECT_EQ(parts.chip, c);
                EXPECT_EQ(parts.block, b);
                EXPECT_EQ(parts.page, pg);
            }
        }
    }
}

SsdConfig
tinyCfg()
{
    return SsdConfig::tiny();
}

TEST(BlockManager, AllocatesSequentiallyWithinOpenBlock)
{
    BlockManager bm(tinyCfg());
    BlockId blk;
    int page;
    ASSERT_TRUE(bm.allocate(0, 0, blk, page));
    EXPECT_EQ(page, 0);
    const BlockId first = blk;
    EXPECT_EQ(bm.state(0, first), BlockState::Open);
    for (int i = 1; i < tinyCfg().geometry.pagesPerBlock; ++i) {
        ASSERT_TRUE(bm.allocate(0, 0, blk, page));
        EXPECT_EQ(blk, first);
        EXPECT_EQ(page, i);
    }
    EXPECT_EQ(bm.state(0, first), BlockState::Full);
    // Next allocation opens a new block.
    ASSERT_TRUE(bm.allocate(0, 0, blk, page));
    EXPECT_NE(blk, first);
    EXPECT_EQ(page, 0);
}

TEST(BlockManager, PlaneExhaustionAndEraseRecovery)
{
    const auto cfg = tinyCfg();
    BlockManager bm(cfg);
    BlockId blk;
    int page;
    std::vector<BlockId> filled;
    // User allocations must stop with the GC reserve still intact.
    while (bm.allocate(0, 0, blk, page)) {
        if (page == cfg.geometry.pagesPerBlock - 1)
            filled.push_back(blk);
    }
    EXPECT_EQ(bm.freeBlocks(0, 0), BlockManager::kGcReservedBlocks);
    EXPECT_EQ(static_cast<int>(filled.size()),
              cfg.geometry.blocksPerPlane -
                  BlockManager::kGcReservedBlocks);
    // GC can still allocate from the reserve...
    ASSERT_TRUE(bm.allocate(0, 0, blk, page, true));
    EXPECT_EQ(bm.freeBlocks(0, 0), 0);
    // ...and an erase replenishes the pool for user writes again.
    bm.onBlockErased(0, filled.front());
    EXPECT_EQ(bm.freeBlocks(0, 0), 1);
    EXPECT_EQ(bm.state(0, filled.front()), BlockState::Free);
    EXPECT_FALSE(bm.allocate(0, 0, blk, page));  // reserve again
    ASSERT_TRUE(bm.allocate(0, 0, blk, page, true));
}

TEST(BlockManager, GcWritePointIsSeparate)
{
    BlockManager bm(tinyCfg());
    BlockId user_blk, gc_blk;
    int page;
    ASSERT_TRUE(bm.allocate(0, 0, user_blk, page));
    ASSERT_TRUE(bm.allocate(0, 0, gc_blk, page, true));
    EXPECT_NE(user_blk, gc_blk);
    EXPECT_EQ(page, 0);  // GC stream has its own cursor
}

TEST(BlockManager, PlanesAreIndependent)
{
    BlockManager bm(tinyCfg());
    BlockId a, b;
    int pa, pb;
    ASSERT_TRUE(bm.allocate(0, 0, a, pa));
    ASSERT_TRUE(bm.allocate(0, 1, b, pb));
    EXPECT_NE(bm.planeOf(a), bm.planeOf(b));
    EXPECT_EQ(bm.planeOf(a), 0);
    EXPECT_EQ(bm.planeOf(b), 1);
}

TEST(BlockManager, FullBlocksListsOnlyFull)
{
    const auto cfg = tinyCfg();
    BlockManager bm(cfg);
    BlockId blk;
    int page;
    for (int i = 0; i < cfg.geometry.pagesPerBlock; ++i)
        ASSERT_TRUE(bm.allocate(1, 0, blk, page));
    const auto full = bm.fullBlocks(1, 0);
    ASSERT_EQ(full.size(), 1u);
    EXPECT_EQ(full[0], blk);
    EXPECT_TRUE(bm.fullBlocks(1, 1).empty());
}

TEST(BlockManager, EraseOfNonFullBlockPanics)
{
    BlockManager bm(tinyCfg());
    EXPECT_DEATH(bm.onBlockErased(0, 0), "Full state");
}

} // namespace
} // namespace aero
