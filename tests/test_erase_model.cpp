/**
 * @file
 * Unit and property tests for the erase-pulse physics: requirement
 * sampling, canonical-schedule progress, jump depth, fail-bit readout.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "nand/erase_model.hh"

namespace aero
{
namespace
{

ChipParams
params()
{
    return ChipParams::tlc3d();
}

EraseOpState
opWithRequirement(double r)
{
    EraseOpState op;
    op.active = true;
    op.requirement = r;
    return op;
}

TEST(EraseModel, RequirementGrowsWithPec)
{
    const auto p = params();
    Rng rng(5);
    double prev = 0.0;
    for (const double pec : {0.0, 1000.0, 2000.0, 3000.0, 5000.0}) {
        double sum = 0.0;
        const int n = 2000;
        for (int i = 0; i < n; ++i)
            sum += sampleRequirement(p, pec, 0.0, 1.0, rng);
        const double mean = sum / n;
        EXPECT_GT(mean, prev) << "pec=" << pec;
        EXPECT_NEAR(mean, p.anchorSlots(pec), 0.05 * p.anchorSlots(pec));
        prev = mean;
    }
}

TEST(EraseModel, RequirementRespectsLoopBudget)
{
    const auto p = params();
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
        const double r = sampleRequirement(p, 15000.0, 2.0, 1.3, rng);
        EXPECT_LE(r, p.maxLoops * p.slotsPerLoop - 1);
        EXPECT_GE(r, 1.0);
    }
}

TEST(EraseModel, HardBlocksNeedMoreThanEasyBlocks)
{
    const auto p = params();
    Rng rng(7);
    double hard = 0.0, easy = 0.0;
    for (int i = 0; i < 500; ++i) {
        hard += sampleRequirement(p, 3000.0, 1.5, 1.0, rng);
        easy += sampleRequirement(p, 3000.0, -1.5, 1.0, rng);
    }
    EXPECT_GT(hard, easy * 1.3);
}

TEST(EraseModel, BaselineLoopAdvancesExactlySevenSlots)
{
    const auto p = params();
    auto op = opWithRequirement(21.0);
    // Canonical schedule: loop i at level i moves one position per slot.
    for (int loop = 1; loop <= 3; ++loop) {
        const double before = op.progress;
        applyPulse(p, op, loop, p.slotsPerLoop);
        EXPECT_NEAR(op.progress - before, 7.0, 1e-9) << "loop " << loop;
    }
    EXPECT_GE(op.progress, op.requirement);
}

TEST(EraseModel, JumpDepthMatchesPreamble)
{
    const auto p = params();
    EXPECT_DOUBLE_EQ(pulseJumpDepth(p, 1), 0.0);
    EXPECT_DOUBLE_EQ(pulseJumpDepth(p, 3),
                     p.preambleEff * 2.0 * p.slotsPerLoop);
}

TEST(EraseModel, OverLeveledPulseInheritsPreambleDepth)
{
    const auto p = params();
    auto op = opWithRequirement(20.0);
    applyPulse(p, op, 3, p.slotsPerLoop);
    // Jump to preambleEff*14 then 7 linear slots.
    EXPECT_NEAR(op.progress, p.preambleEff * 14.0 + 7.0, 1e-9);
}

TEST(EraseModel, UnderLeveledPulseBarelyAdvances)
{
    const auto p = params();
    auto op = opWithRequirement(20.0);
    op.progress = 14.0;  // needs level 3 now
    const double before = op.progress;
    applyPulse(p, op, 1, 4);
    const double adv = op.progress - before;
    EXPECT_LT(adv, 4.0 * std::pow(p.underEff, 2) + 1e-9);
}

TEST(EraseModel, DamageGrowsSteeplyWithLevel)
{
    const auto p = params();
    EXPECT_DOUBLE_EQ(p.dmgPerSlot(1), 1.0);
    EXPECT_GT(p.dmgPerSlot(2), 2.0);
    EXPECT_GT(p.dmgPerSlot(5), 10.0 * p.dmgPerSlot(2));
}

TEST(EraseModel, StressScaleReducesDamageOnly)
{
    const auto p = params();
    auto a = opWithRequirement(10.0);
    auto b = opWithRequirement(10.0);
    applyPulse(p, a, 1, 7, 1.0);
    applyPulse(p, b, 1, 7, 0.5);
    EXPECT_DOUBLE_EQ(a.progress, b.progress);
    EXPECT_DOUBLE_EQ(b.damage, 0.5 * a.damage);
}

TEST(EraseModel, FailBitsFollowFig7Relation)
{
    const auto p = params();
    // One slot remaining reads the gamma floor; each further slot adds
    // delta (the paper's linear relation).
    EXPECT_DOUBLE_EQ(expectedFailBits(p, 1.0), p.gamma);
    EXPECT_DOUBLE_EQ(expectedFailBits(p, 2.0), p.gamma + p.delta);
    EXPECT_DOUBLE_EQ(expectedFailBits(p, 5.0), p.gamma + 4.0 * p.delta);
    EXPECT_DOUBLE_EQ(expectedFailBits(p, 0.0), 0.0);
}

TEST(EraseModel, RemainingSlotsInvertsFailBits)
{
    const auto p = params();
    for (const double rem : {1.0, 1.5, 3.0, 6.5}) {
        EXPECT_NEAR(remainingSlotsFor(p, expectedFailBits(p, rem)), rem,
                    1e-9);
    }
}

TEST(EraseModel, FailBitsPassAfterCompletion)
{
    const auto p = params();
    Rng rng(9);
    auto op = opWithRequirement(5.0);
    applyPulse(p, op, 1, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_LE(failBits(p, op, rng), p.fPass);
}

TEST(EraseModel, NIspeAndFinalLoopSlots)
{
    const auto p = params();
    EXPECT_EQ(nIspeFor(p, 1.0), 1);
    EXPECT_EQ(nIspeFor(p, 7.0), 1);
    EXPECT_EQ(nIspeFor(p, 7.5), 2);
    EXPECT_EQ(nIspeFor(p, 21.0), 3);
    EXPECT_EQ(finalLoopSlotsFor(p, 7.0), 7);
    EXPECT_EQ(finalLoopSlotsFor(p, 8.0), 1);
    EXPECT_EQ(finalLoopSlotsFor(p, 16.5), 3);
}

TEST(EraseModel, BaselineDamageSumsLoopCosts)
{
    const auto p = params();
    const double one = baselineEraseDamage(p, 5.0);
    EXPECT_DOUBLE_EQ(one, 7.0 * p.dmgPerSlot(1));
    const double three = baselineEraseDamage(p, 20.0);
    EXPECT_DOUBLE_EQ(three, 7.0 * (p.dmgPerSlot(1) + p.dmgPerSlot(2) +
                                   p.dmgPerSlot(3)));
}

/** Property sweep: for any requirement, Baseline-style full loops always
 *  complete within nIspeFor() loops. */
class CompletionSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CompletionSweep, BaselineLoopsCompleteAtPredictedN)
{
    const auto p = params();
    const double r = GetParam();
    auto op = opWithRequirement(r);
    const int n = nIspeFor(p, r);
    for (int loop = 1; loop <= n; ++loop)
        applyPulse(p, op, loop, p.slotsPerLoop);
    EXPECT_GE(op.progress + 1e-9, r);
    // And one fewer loop must NOT complete (tightness).
    if (n > 1) {
        auto op2 = opWithRequirement(r);
        for (int loop = 1; loop < n; ++loop)
            applyPulse(p, op2, loop, p.slotsPerLoop);
        EXPECT_LT(op2.progress, r);
    }
}

INSTANTIATE_TEST_SUITE_P(Requirements, CompletionSweep,
                         ::testing::Values(1.0, 3.7, 7.0, 8.2, 13.9, 14.1,
                                           20.9, 27.3, 34.9, 48.0));

} // namespace
} // namespace aero
