/**
 * @file
 * Reproduction-band tests: lock the calibrated model to the paper's
 * characterization results (Figs. 4 and 7-11) and the headline lifetime
 * ordering (Fig. 13) with generous tolerance bands. These are the tests
 * that fail if someone "optimizes" a constant and silently breaks the
 * reproduction.
 */

#include <gtest/gtest.h>

#include "devchar/experiments.hh"
#include "devchar/lifetime.hh"

namespace aero
{
namespace
{

FarmConfig
smallFarm(std::uint64_t seed = 0xfa51)
{
    FarmConfig fc;
    fc.numChips = 12;
    fc.blocksPerChip = 20;
    fc.seed = seed;
    return fc;
}

TEST(Fig4, NIspeBandsTrackThePaper)
{
    const auto data =
        runFig4Experiment(smallFarm(), {0, 1000, 2000, 3000, 5000});
    ASSERT_EQ(data.curves.size(), 5u);
    const auto &at0 = data.curves[0];
    const auto &at1k = data.curves[1];
    const auto &at2k = data.curves[2];
    const auto &at3k = data.curves[3];
    const auto &at5k = data.curves[4];

    // PEC 0: every block single-loop, the majority within 2.5 ms.
    EXPECT_GT(at0.fracSingleLoop, 0.99);
    EXPECT_GT(at0.fracWithin2_5Ms, 0.70);
    // PEC 1K: ~76.5% single-loop in the paper.
    EXPECT_NEAR(at1k.fracSingleLoop, 0.765, 0.15);
    // PEC 2K: essentially every erase needs >= 2 loops.
    EXPECT_LT(at2k.fracSingleLoop, 0.02);
    // PEC 3K: N_ISPE = 3 is the mode (paper: 40%).
    int mode_n = 0, mode_cnt = 0, total3k = 0;
    for (const auto &[n, cnt] : at3k.nIspeCounts) {
        total3k += cnt;
        if (cnt > mode_cnt) {
            mode_cnt = cnt;
            mode_n = n;
        }
    }
    EXPECT_EQ(mode_n, 3);
    EXPECT_NEAR(static_cast<double>(
                    at3k.nIspeCounts.count(3) ? at3k.nIspeCounts.at(3)
                                              : 0) / total3k,
                0.40, 0.25);
    // PEC 5K: loop counts reach (roughly) the paper's maximum of 5.
    int max_n = 0;
    for (const auto &[n, cnt] : at5k.nIspeCounts)
        max_n = std::max(max_n, n);
    EXPECT_GE(max_n, 4);
    EXPECT_LE(max_n, 6);
    // Latency variation peaks mid-life (paper: std ~2.7 ms at 3.5K).
    EXPECT_GT(at3k.stddevMtBersMs, 1.2);
    EXPECT_LT(at3k.stddevMtBersMs, 4.5);
    // mtBERS grows monotonically in the mean.
    EXPECT_LT(at0.meanMtBersMs, at1k.meanMtBersMs);
    EXPECT_LT(at1k.meanMtBersMs, at3k.meanMtBersMs);
    EXPECT_LT(at3k.meanMtBersMs, at5k.meanMtBersMs);
}

TEST(Fig7, FailBitsAreLinearWithFloorGamma)
{
    const auto p = ChipParams::tlc3d();
    const auto data =
        runFig7Experiment(smallFarm(3), {1500, 2500, 3500, 4500});
    // gamma floor at one slot remaining; slope delta per slot.
    EXPECT_NEAR(data.gammaEstimate, p.gamma, 0.25 * p.gamma);
    EXPECT_NEAR(data.deltaEstimate, p.delta, 0.15 * p.delta);
    // The linear relation holds within every N_ISPE group.
    for (const auto &row : data.rows) {
        for (int r = 1; r < 7; ++r) {
            if (row.samples[r] > 10 && row.samples[r + 1] > 10) {
                EXPECT_GT(row.meanFailByRemaining[r + 1],
                          row.meanFailByRemaining[r])
                    << "N=" << row.nIspe << " r=" << r;
            }
        }
    }
}

TEST(Fig8, FelpRangesPredictFinalLoopLatency)
{
    const auto data =
        runFig8Experiment(smallFarm(5), {2000, 2500, 3000, 3500, 4500});
    ASSERT_FALSE(data.rows.empty());
    for (const auto &row : data.rows) {
        if (row.samples < 200)
            continue;
        // Paper: a majority of blocks in the same fail-bit range need
        // the same mtEP (>= 66% in their data; we require a majority).
        double weighted_modal = 0.0;
        double covered = 0.0;
        for (int rg = 0; rg < 9; ++rg) {
            weighted_modal += row.rangeFraction[rg] * row.modalProb[rg];
            covered += row.rangeFraction[rg];
        }
        ASSERT_GT(covered, 0.99);
        EXPECT_GT(weighted_modal, 0.55) << "N=" << row.nIspe;
    }
}

TEST(Fig9, ShallowErasureBenefitsMostBlocks)
{
    const auto data =
        runFig9Experiment(smallFarm(7), {2, 4}, {100, 500});
    ASSERT_EQ(data.cells.size(), 4u);
    for (const auto &cell : data.cells) {
        // Paper: 80-88% of blocks erase faster than the default tEP.
        EXPECT_GT(cell.benefitFraction, 0.55)
            << "tSE=" << cell.tseSlots << " pec=" << cell.pec;
        // Average latency close to the paper's 2.5-2.9 ms.
        EXPECT_LT(cell.avgTbersMs, 3.6);
        EXPECT_GT(cell.avgTbersMs, 1.5);
    }
}

TEST(Fig10, ReliabilityMarginAndSafetyConditions)
{
    const auto data = runFig10Experiment(
        smallFarm(9), {500, 1500, 2500, 3500, 4500});
    // (a) Complete erasure: max RBER grows with N_ISPE and there is a
    // positive margin at N=1 (paper: up to 47 bits).
    double prev = 0.0;
    for (const auto &row : data.complete) {
        EXPECT_GE(row.maxMrber, prev);
        prev = row.maxMrber;
        if (row.nIspe == 1) {
            EXPECT_GT(row.margin, 20.0);
        }
    }
    // (b) Insufficient erasure: C1 (N<=3, F<=d) safe; 2d unsafe; the
    // N=5 rows must never be safe above gamma.
    bool saw_c1 = false;
    for (const auto &row : data.insufficient) {
        if (row.samples < 5)
            continue;
        if (row.nIspe >= 2 && row.nIspe <= 3 && row.range <= 1) {
            EXPECT_TRUE(row.safe)
                << "C1 violated at N=" << row.nIspe
                << " range=" << row.range;
            saw_c1 = true;
        }
        if (row.nIspe <= 3 && row.range >= 3) {
            EXPECT_FALSE(row.safe)
                << "unexpectedly safe at N=" << row.nIspe
                << " range=" << row.range;
        }
        if (row.nIspe == 5 && row.range >= 1) {
            EXPECT_FALSE(row.safe);
        }
    }
    EXPECT_TRUE(saw_c1);
}

TEST(Fig11, OtherChipTypesShowSameStructure)
{
    for (const auto type : {ChipType::Tlc2d, ChipType::Mlc3d48L}) {
        const auto data = runFig11Experiment(type, 0xbeef);
        const auto p = ChipParams::forType(type);
        EXPECT_NEAR(data.gammaEstimate, p.gamma, 0.3 * p.gamma)
            << chipTypeName(type);
        EXPECT_NEAR(data.deltaEstimate, p.delta, 0.2 * p.delta)
            << chipTypeName(type);
        // Insufficient erasure stays safe somewhere (aggressive tEP
        // reduction is feasible on these chips too).
        bool any_safe = false;
        for (const auto &row : data.reliability.insufficient)
            any_safe |= row.safe && row.samples >= 5;
        EXPECT_TRUE(any_safe) << chipTypeName(type);
    }
}

TEST(Fig13, LifetimeOrderingMatchesPaper)
{
    // Small, coarse endurance run: the ordering and rough ratios are the
    // paper's headline claim (i-ISPE < Baseline < DPES ~ CONS < AERO).
    // Same farm as bench/fig13_lifetime so the numbers line up with
    // EXPERIMENTS.md (the global-average crossing is sensitive to the
    // chip-level process-variation draw on small farms).
    LifetimeConfig cfg;
    cfg.farm.numChips = 16;
    cfg.farm.blocksPerChip = 24;
    cfg.checkpointEvery = 250;
    LifetimeTester tester(cfg);

    const auto base = tester.run(SchemeKind::Baseline);
    const auto iispe = tester.run(SchemeKind::IIspe);
    const auto dpes = tester.run(SchemeKind::Dpes);
    const auto cons = tester.run(SchemeKind::AeroCons);
    const auto aero = tester.run(SchemeKind::Aero);

    ASSERT_TRUE(base.crossed);
    // Baseline lifetime anchored near the paper's 5.3K.
    EXPECT_NEAR(base.lifetimePec, 5300.0, 600.0);
    // Ordering.
    EXPECT_LT(iispe.lifetimePec, base.lifetimePec);
    EXPECT_GT(dpes.lifetimePec, base.lifetimePec);
    EXPECT_GT(cons.lifetimePec, base.lifetimePec);
    EXPECT_GT(aero.lifetimePec, cons.lifetimePec);
    // Rough ratios (paper: -25%, +26%, +30%, +43%).
    EXPECT_NEAR(iispe.lifetimePec / base.lifetimePec, 0.75, 0.15);
    EXPECT_NEAR(dpes.lifetimePec / base.lifetimePec, 1.26, 0.15);
    EXPECT_NEAR(cons.lifetimePec / base.lifetimePec, 1.30, 0.15);
    EXPECT_NEAR(aero.lifetimePec / base.lifetimePec, 1.45, 0.25);
    // AERO trades fresh-block margin for slower growth (paper Fig. 13).
    EXPECT_GT(aero.freshMrber, base.freshMrber + 5.0);
    // And erases faster on average.
    EXPECT_LT(aero.avgEraseLatencyMs, base.avgEraseLatencyMs * 0.9);
}

TEST(Fig16, MispredictionsDegradeGracefully)
{
    LifetimeConfig cfg;
    cfg.farm = smallFarm(13);
    cfg.farm.numChips = 4;
    cfg.farm.blocksPerChip = 10;
    LifetimeTester tester(cfg);
    const auto clean = tester.run(SchemeKind::Aero);
    cfg.schemeOptions.mispredictionRate = 0.20;
    LifetimeTester noisy_tester(cfg);
    const auto noisy = noisy_tester.run(SchemeKind::Aero);
    // Paper: even at 20% misprediction AERO keeps most of its benefit.
    EXPECT_GT(noisy.lifetimePec, clean.lifetimePec * 0.85);
    EXPECT_LE(noisy.lifetimePec, clean.lifetimePec * 1.05);
}

TEST(Fig17, WeakerEccShrinksButKeepsAeroBenefit)
{
    LifetimeConfig cfg;
    cfg.farm = smallFarm(15);
    cfg.farm.numChips = 4;
    cfg.farm.blocksPerChip = 10;
    cfg.rberRequirement = 40.0;
    cfg.schemeOptions.rberRequirement = 40;
    LifetimeTester tester(cfg);
    const auto cons = tester.run(SchemeKind::AeroCons);
    const auto aero = tester.run(SchemeKind::Aero);
    // Paper: AERO retains an advantage over CONS at weaker ECC; in our
    // model the 40-bit margin is nearly exhausted, so allow a tie.
    EXPECT_GE(aero.lifetimePec, cons.lifetimePec);
}

} // namespace
} // namespace aero
