/**
 * @file
 * Unit tests for wear accounting and the RBER model.
 */

#include <gtest/gtest.h>

#include "nand/erase_model.hh"
#include "nand/wear_model.hh"

namespace aero
{
namespace
{

TEST(WearModel, CumulativeDamageIsMonotone)
{
    WearModel w(ChipParams::tlc3d());
    double prev = 0.0;
    for (double p = 0.0; p <= 8000.0; p += 250.0) {
        const double c = w.baselineCumDamage(p);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(WearModel, EquivalentPecInvertsCumDamage)
{
    WearModel w(ChipParams::tlc3d());
    for (const double p : {100.0, 1000.0, 3000.0, 5300.0, 7000.0}) {
        EXPECT_NEAR(w.equivalentPec(w.baselineCumDamage(p)), p,
                    p * 0.01 + 1.0);
    }
    EXPECT_DOUBLE_EQ(w.equivalentPec(0.0), 0.0);
}

TEST(WearModel, DamagePerEraseGrowsWithPec)
{
    WearModel w(ChipParams::tlc3d());
    EXPECT_GT(w.baselineDamagePerErase(3000.0),
              5.0 * w.baselineDamagePerErase(0.0));
    EXPECT_GT(w.baselineDamagePerErase(5000.0),
              w.baselineDamagePerErase(3000.0));
}

TEST(WearModel, PopulationAverageDamageExceedsMeanBlockDamage)
{
    // Jensen: damage is convex in the requirement, so the pv-averaged
    // per-erase damage must exceed the damage of the mean requirement.
    const auto p = ChipParams::tlc3d();
    WearModel w(p);
    const double at_mean = baselineEraseDamage(p, p.anchorSlots(3000.0));
    EXPECT_GT(w.baselineDamagePerErase(3000.0), at_mean);
}

TEST(WearModel, RberBaseIsLinearAndCrossesAt5300)
{
    const auto p = ChipParams::tlc3d();
    WearModel w(p);
    EXPECT_DOUBLE_EQ(w.rberBase(0.0), p.rber0);
    // Linearity.
    const double a = w.rberBase(1000.0) - w.rberBase(0.0);
    const double b = w.rberBase(4000.0) - w.rberBase(3000.0);
    EXPECT_NEAR(a, b, 1e-9);
    // The paper's Baseline lifetime anchor: requirement 63 near 5.3K.
    const double crossing = (63.0 - p.rber0) / p.rberCoeff * 1000.0;
    EXPECT_NEAR(crossing, 5300.0, 500.0);
}

TEST(WearModel, ResidualRberShape)
{
    WearModel w(ChipParams::tlc3d());
    // The last ~slot of leftover is absorbed by data randomization.
    EXPECT_DOUBLE_EQ(w.residualRber(0.0), 0.0);
    EXPECT_DOUBLE_EQ(w.residualRber(1.0), 0.0);
    EXPECT_GT(w.residualRber(2.0), 10.0);
    EXPECT_GT(w.residualRber(3.0), w.residualRber(2.0));
    // Deep leftovers blow up: an unerased block must never look usable.
    EXPECT_GT(w.residualRber(4.0) - w.residualRber(3.0),
              w.residualRber(3.0) - w.residualRber(2.0));
    EXPECT_GT(w.residualRber(6.0), 100.0);
}

TEST(WearModel, Fig10SafetyConditions)
{
    // [C1]: N_ISPE <= 3 and F < delta -> skipping the final loop keeps
    // M_RBER under the requirement. [C2]: N = 4 needs F < gamma.
    // Typical PECs per row: N=2 ~2K, N=3 ~3K, N=4 ~4.2K (Fig. 4).
    WearModel w(ChipParams::tlc3d());
    const double req = 63.0;
    // F <= delta => leftover ~2 slots; F <= gamma => leftover ~1 slot.
    EXPECT_LT(w.rberBase(2000.0) + w.residualRber(2.0), req);  // C1, N=2
    EXPECT_LT(w.rberBase(3000.0) + w.residualRber(2.0), req);  // C1, N=3
    EXPECT_GT(w.rberBase(3000.0) + w.residualRber(3.2), req);  // !C1 @2d
    EXPECT_LT(w.rberBase(4200.0) + w.residualRber(1.0), req);  // C2, N=4
    EXPECT_GT(w.rberBase(4200.0) + w.residualRber(2.2), req);  // !C2 @d
}

TEST(WearModel, MaxRberCombinesBaseAndResidual)
{
    WearModel w(ChipParams::tlc3d());
    const double wear = w.baselineCumDamage(2000.0);
    EXPECT_DOUBLE_EQ(w.maxRber(wear, 0.0), w.rberBase(2000.0));
    EXPECT_DOUBLE_EQ(w.maxRber(wear, 2.5),
                     w.rberBase(2000.0) + w.residualRber(2.5));
}

TEST(WearModel, LeftoverForResidualInverts)
{
    WearModel w(ChipParams::tlc3d());
    for (const double budget : {5.0, 15.0, 30.0, 60.0}) {
        const double l = w.leftoverForResidual(budget);
        EXPECT_LE(w.residualRber(l), budget + 1e-6);
        EXPECT_GT(w.residualRber(l + 0.05), budget - 1.0);
    }
    EXPECT_DOUBLE_EQ(w.leftoverForResidual(0.0),
                     ChipParams::tlc3d().residualOffset);
}

TEST(WearModel, PredictorIsConservative)
{
    // The FTL-side predictor assumes Baseline wear, so for a block erased
    // more gently (lower true wear) it must over-estimate the base RBER.
    WearModel w(ChipParams::tlc3d());
    const double gentle_wear = 0.7 * w.baselineCumDamage(3000.0);
    EXPECT_GE(w.predictedBaseRber(3000.0),
              w.rberBase(w.equivalentPec(gentle_wear)));
}

TEST(WearModel, OtherChipTypesHaveOwnCurves)
{
    WearModel tlc(ChipParams::tlc3d());
    WearModel mlc(ChipParams::mlc3d());
    EXPECT_LT(mlc.rberBase(3000.0), tlc.rberBase(3000.0));
}

} // namespace
} // namespace aero
