/**
 * @file
 * google-benchmark microbenchmarks for the hot paths of the library:
 * EPT lookups, FELP predictions, erase sessions, event-queue throughput,
 * mapping updates, and full erase operations per scheme. These quantify
 * the (negligible) FTL-side overhead AERO adds per erase, supporting the
 * paper's implementation-overhead argument (section 6).
 */

#include <benchmark/benchmark.h>

#include "core/aero_scheme.hh"
#include "core/felp.hh"
#include "sim/event_queue.hh"
#include "ssd/mapping.hh"

namespace aero
{
namespace
{

void
BM_EptLookup(benchmark::State &state)
{
    const auto p = ChipParams::tlc3d();
    const auto t = Ept::canonical(p);
    int rg = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.consSlots(1 + (rg % 5), rg % 9));
        ++rg;
    }
}
BENCHMARK(BM_EptLookup);

void
BM_FelpPredict(benchmark::State &state)
{
    const auto p = ChipParams::tlc3d();
    WearModel wear(p);
    Felp felp(p, wear, Ept::canonical(p), FelpConfig{});
    double f = p.gamma;
    for (auto _ : state) {
        benchmark::DoNotOptimize(felp.predict(2, f, 1500.0));
        f += p.delta / 3.0;
        if (f > p.gamma + 8.0 * p.delta)
            f = p.gamma;
    }
}
BENCHMARK(BM_FelpPredict);

void
BM_RangeIndex(benchmark::State &state)
{
    const auto p = ChipParams::tlc3d();
    double f = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(Ept::rangeIndex(p, f));
        f += 997.0;
        if (f > 50000.0)
            f = 0.0;
    }
}
BENCHMARK(BM_RangeIndex);

void
BM_EraseOperation(benchmark::State &state)
{
    const auto kind = static_cast<SchemeKind>(state.range(0));
    NandChip chip(ChipParams::tlc3d(), ChipGeometry{1, 64, 8}, 7);
    for (int b = 0; b < chip.numBlocks(); ++b)
        chip.ageBaseline(b, 2000);
    auto scheme = makeEraseScheme(kind, chip, SchemeOptions{});
    int b = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            eraseNow(*scheme, static_cast<BlockId>(b)));
        b = (b + 1) % chip.numBlocks();
    }
    state.SetLabel(schemeKindName(kind));
}
BENCHMARK(BM_EraseOperation)
    ->Arg(static_cast<int>(SchemeKind::Baseline))
    ->Arg(static_cast<int>(SchemeKind::Aero));

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>((i * 7919) % 1000),
                        [&fired] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void
BM_EventQueueTagged(benchmark::State &state)
{
    // The allocation-free tagged lane the simulator actually runs on,
    // measured against BM_EventQueue's std::function compat lane.
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleTimerAt(
                static_cast<Tick>((i * 7919) % 1000),
                [](void *ctx) { ++*static_cast<int *>(ctx); }, &fired);
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueTagged);

void
BM_MappingUpdate(benchmark::State &state)
{
    PageMapping m(1 << 16, 4, 256, 64);
    Lpn lpn = 0;
    Ppn ppn = 0;
    const Ppn max_ppn = static_cast<Ppn>(4) * 256 * 64;
    for (auto _ : state) {
        m.invalidateLpn(lpn);
        benchmark::DoNotOptimize(m.update(lpn, ppn));
        lpn = (lpn + 1) % (1 << 16);
        ppn = (ppn + 1) % max_ppn;
    }
}
BENCHMARK(BM_MappingUpdate);

void
BM_WearModelQueries(benchmark::State &state)
{
    WearModel w(ChipParams::tlc3d());
    double wear = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(w.maxRber(wear, 1.5));
        wear += 1000.0;
        if (wear > 1e7)
            wear = 0.0;
    }
}
BENCHMARK(BM_WearModelQueries);

} // namespace
} // namespace aero

BENCHMARK_MAIN();
