/**
 * @file
 * GC/host contention campaign: runs the write-heavy prxy workload under
 * *queued* channel arbitration (ssd/channel.hh) over a (scheme, GC
 * policy, wear leveling) grid, and reports what the reclamation knobs
 * cost the host — write amplification split into its GC and WL parts,
 * erase counts, per-channel utilization, and the bus-queueing delay host
 * transfers suffer behind GC copies and erase command issue.
 *
 * Cells fan out over parallelMapJournaled, so `--checkpoint` resumes a
 * killed campaign and artifacts are byte-identical at any
 * AERO_SWEEP_THREADS. `--small` runs the Baseline-scheme slice of the
 * grid for the golden regression gate; every number emitted is a
 * deterministic simulation output, so the gate diffs at tight tolerance.
 */

#include "bench_util.hh"
#include "devchar/simstudy.hh"
#include "erase/scheme_registry.hh"
#include "exp/sweep.hh"
#include "ssd/gc.hh"
#include "ssd/wear_level.hh"
#include "workload/synthetic.hh"

using namespace aero;

namespace
{

struct Cell
{
    SchemeKind scheme = SchemeKind::Baseline;
    std::string gcPolicy = "greedy";
    std::string wearLevel = "none";
};

struct CellResult
{
    double avgReadUs = 0.0;
    double p999Us = 0.0;
    double writeAmplification = 0.0;
    double gcWriteAmplification = 0.0;
    std::uint64_t gcMigratedPages = 0;
    std::uint64_t wlMigratedPages = 0;
    std::uint64_t wlInvocations = 0;
    std::uint64_t erases = 0;
    double maxChannelUtil = 0.0;
    double hostWaitUs = 0.0;
    double gcWaitUs = 0.0;
};

Json
toJson(const CellResult &r)
{
    Json row = Json::object();
    row["avg_read_us"] = r.avgReadUs;
    row["p999_us"] = r.p999Us;
    row["write_amplification"] = r.writeAmplification;
    row["gc_write_amplification"] = r.gcWriteAmplification;
    row["gc_migrated_pages"] = r.gcMigratedPages;
    row["wl_migrated_pages"] = r.wlMigratedPages;
    row["wl_invocations"] = r.wlInvocations;
    row["erases"] = r.erases;
    row["max_channel_util"] = r.maxChannelUtil;
    row["host_wait_us"] = r.hostWaitUs;
    row["gc_wait_us"] = r.gcWaitUs;
    return row;
}

CellResult
cellFromJson(const Json &row)
{
    CellResult r;
    r.avgReadUs = row.get("avg_read_us").asDouble();
    r.p999Us = row.get("p999_us").asDouble();
    r.writeAmplification = row.get("write_amplification").asDouble();
    r.gcWriteAmplification = row.get("gc_write_amplification").asDouble();
    r.gcMigratedPages = row.get("gc_migrated_pages").asUint64();
    r.wlMigratedPages = row.get("wl_migrated_pages").asUint64();
    r.wlInvocations = row.get("wl_invocations").asUint64();
    r.erases = row.get("erases").asUint64();
    r.maxChannelUtil = row.get("max_channel_util").asDouble();
    r.hostWaitUs = row.get("host_wait_us").asDouble();
    r.gcWaitUs = row.get("gc_wait_us").asDouble();
    return r;
}

CellResult
runCell(const Cell &cell, std::uint64_t requests)
{
    // A deliberately small drive (8 dies over 4 channels, 8K pages) so
    // even the gate run overwrites its footprint several times: GC and
    // WL must do real work for the cells to differ.
    SsdConfig cfg = SsdConfig::tiny();
    cfg.channels = 4;
    cfg.chipsPerChannel = 2;
    cfg.arbitration = Arbitration::Queued;
    cfg.scheme = cell.scheme;
    cfg.gcPolicy = cell.gcPolicy;
    cfg.wearLevel = cell.wearLevel;
    // Low enough that static WL actually migrates within a short run.
    cfg.wlEraseDelta = 2;
    cfg.initialPec = 2500.0;
    cfg.seed = 2024;

    Ssd ssd(cfg);

    SyntheticConfig wc;
    wc.spec = workloadByName("prxy");  // write-heavy: GC does real work
    wc.footprintPages = ssd.config().logicalPages();
    wc.numRequests = requests;
    wc.seed = 7;
    ssd.run(generateTrace(wc));

    const SsdMetrics &m = ssd.metrics();
    CellResult r;
    r.avgReadUs = m.readLatency.mean() / static_cast<double>(kUs);
    r.p999Us = ticksToUs(m.readLatency.percentile(0.999));
    r.writeAmplification = m.writeAmplification();
    r.gcWriteAmplification = m.gcWriteAmplification();
    r.gcMigratedPages = m.gcMigratedPages;
    r.wlMigratedPages = m.wlMigratedPages;
    r.wlInvocations = m.wlInvocations;
    r.erases = m.erases;
    r.maxChannelUtil = m.maxChannelUtilization();
    r.hostWaitUs = m.avgHostChannelWaitUs();
    r.gcWaitUs = m.avgGcChannelWaitUs();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    auto artifacts = bench::parseArtifactArgs(
        argc, argv, /*allow_small=*/true, /*allow_checkpoint=*/true,
        /*allow_workers=*/true);

    bench::header("GC contention: reclamation policies under queued "
                  "channel arbitration");

    const std::vector<SchemeKind> schemes =
        artifacts.small
            ? std::vector<SchemeKind>{SchemeKind::Baseline}
            : std::vector<SchemeKind>{SchemeKind::Baseline,
                                      SchemeKind::Aero};
    const std::vector<std::string> gc_policies = {"greedy", "cost-benefit",
                                                  "fifo-log"};
    const std::vector<std::string> wear_levels = {"none", "dynamic",
                                                  "static"};
    const std::uint64_t requests = artifacts.small ? 4000 : 40000;

    std::vector<Cell> cells;
    for (const SchemeKind scheme : schemes)
        for (const auto &gc : gc_policies)
            for (const auto &wl : wear_levels)
                cells.push_back({scheme, gc, wl});

    std::printf("%zu cells (scheme x GC policy x wear leveling), %llu "
                "requests each, on %d threads (env AERO_SWEEP_THREADS)\n",
                cells.size(), static_cast<unsigned long long>(requests),
                SweepRunner().threads());

    Json journal_cfg = Json::object();
    Json scheme_names = Json::array();
    for (const SchemeKind k : schemes)
        scheme_names.push(schemeKindName(k));
    journal_cfg["schemes"] = std::move(scheme_names);
    journal_cfg["gc_policies"] = bench::jsonArray(gc_policies);
    journal_cfg["wear_levels"] = bench::jsonArray(wear_levels);
    journal_cfg["requests"] = requests;
    journal_cfg["arbitration"] = "queued";
    journal_cfg["small"] = artifacts.small;
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, runs its share of the map, and
    // exits; the parent then reopens the merged directory with every
    // cell cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal =
        artifacts.openJournal("gc_contention", std::move(journal_cfg));
    const CampaignScope scope{journal.get()};

    const auto results = parallelMapJournaled(
        scope.journal, cells,
        [&](std::size_t, const Cell &c) {
            Json key = scope.key("scheme", schemeKindName(c.scheme));
            key["gc_policy"] = c.gcPolicy;
            key["wear_level"] = c.wearLevel;
            return key;
        },
        [&](const Cell &c) { return runCell(c, requests); },
        [](const CellResult &r) { return toJson(r); }, cellFromJson);
    if (artifacts.isWorker())
        artifacts.exitWorker();

    for (std::size_t si = 0; si < schemes.size(); ++si) {
        std::printf("\nscheme = %s\n", schemeKindName(schemes[si]));
        bench::rule();
        std::printf("%-13s %-8s %6s %6s %8s %9s %6s %8s %8s\n", "gc",
                    "wl", "WA", "gcWA", "wl-pages", "erases", "util",
                    "hostWus", "gcWus");
        bench::rule();
        for (std::size_t gi = 0; gi < gc_policies.size(); ++gi) {
            for (std::size_t wi = 0; wi < wear_levels.size(); ++wi) {
                const std::size_t idx =
                    (si * gc_policies.size() + gi) * wear_levels.size() +
                    wi;
                const CellResult &r = results[idx];
                std::printf("%-13s %-8s %6.3f %6.3f %8llu %9llu %5.1f%% "
                            "%8.1f %8.1f\n",
                            gc_policies[gi].c_str(),
                            wear_levels[wi].c_str(),
                            r.writeAmplification,
                            r.gcWriteAmplification,
                            static_cast<unsigned long long>(
                                r.wlMigratedPages),
                            static_cast<unsigned long long>(r.erases),
                            r.maxChannelUtil * 100.0, r.hostWaitUs,
                            r.gcWaitUs);
            }
        }
    }
    bench::rule();
    bench::note("WA counts GC+WL copies; host/GC waits are mean bus-"
                "queueing delays under queued arbitration");

    bench::DevcharReport report("gc_contention",
                                {"scheme", "gc_policy", "wear_level"});
    report.spec["requests"] = requests;
    report.spec["arbitration"] = "queued";
    report.spec["workload"] = "prxy";
    report.spec["small"] = artifacts.small;
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
        Json row = Json::object();
        row["scheme"] = schemeKindName(cells[ci].scheme);
        row["gc_policy"] = cells[ci].gcPolicy;
        row["wear_level"] = cells[ci].wearLevel;
        const Json metrics = toJson(results[ci]);
        for (std::size_t m = 0; m < metrics.size(); ++m) {
            const auto &[name, value] = metrics.member(m);
            row[name] = value;
        }
        report.addRow(std::move(row));
    }
    Json doc = report.doc();
    doc["schema"] = "aero-gc/1";
    if (artifacts.wantJson())
        writeJsonFile(artifacts.jsonPath, doc);
    if (artifacts.wantCsv())
        writeTextFile(artifacts.csvPath, bench::devcharCsv(report.results));
    return 0;
}
