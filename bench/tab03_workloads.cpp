/**
 * @file
 * Reproduces Tables 2 and 3: the simulated-SSD configuration and the
 * I/O characteristics of the eleven evaluation workloads, measured on
 * the synthetic traces actually used by the system-level benches.
 */

#include "bench_util.hh"
#include "ssd/config.hh"
#include "workload/synthetic.hh"
#include "workload/trace_stats.hh"

using namespace aero;

int
main()
{
    bench::header("Table 2: simulated SSD configurations");
    std::printf("paper scale:\n%s\n", SsdConfig::paper().summary().c_str());
    std::printf("bench scale (capacity-reduced, same topology):\n%s",
                SsdConfig::bench().summary().c_str());

    bench::header("Table 3: workload characteristics (generated traces)");
    bench::rule();
    std::printf("%-7s | %8s | %9s | %9s | %11s | %8s\n", "trace",
                "read[%]", "spec[KB]", "meas[KB]", "inter[ms]",
                "hot1%[%]");
    bench::rule();
    for (const auto &spec : table3Workloads()) {
        SyntheticConfig cfg;
        cfg.spec = spec;
        cfg.footprintPages = 1 << 18;
        cfg.numRequests = 20000;
        const auto trace = generateTrace(cfg);
        const auto s = computeExtendedStats(trace, cfg.pageSizeKB);
        std::printf("%-7s | %7.1f%% | %9.1f | %9.1f | %11.2f | %7.1f%%\n",
                    spec.name.c_str(), 100.0 * s.basic.readRatio,
                    spec.avgReqSizeKB, s.basic.avgReqSizeKB,
                    s.basic.avgInterArrivalMs, 100.0 * s.hot1pctFraction);
    }
    bench::rule();
    bench::note("MSRC traces accelerated 10x as in the paper; sizes are "
                "quantized to 16-KiB flash pages");
    return 0;
}
