/**
 * @file
 * Reproduces Tables 2 and 3: the simulated-SSD configuration and the
 * I/O characteristics of the eleven evaluation workloads, measured on
 * the synthetic traces actually used by the system-level benches. Trace
 * generation fans out over parallelMap; `--json`/`--csv` drop the
 * measured characteristics as machine-readable artifacts.
 */

#include "bench_util.hh"
#include "exp/sweep.hh"
#include "ssd/config.hh"
#include "workload/synthetic.hh"
#include "workload/trace_stats.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Table 2: simulated SSD configurations");
    std::printf("paper scale:\n%s\n", SsdConfig::paper().summary().c_str());
    std::printf("bench scale (capacity-reduced, same topology):\n%s",
                SsdConfig::bench().summary().c_str());

    bench::header("Table 3: workload characteristics (generated traces)");
    // --small: shorter traces over a smaller footprint for the gate.
    const std::uint64_t footprint_pages =
        artifacts.small ? 1 << 16 : 1 << 18;
    const std::uint64_t num_requests = artifacts.small ? 5000 : 20000;
    Json journal_cfg = Json::object();
    journal_cfg["footprint_pages"] = footprint_pages;
    journal_cfg["num_requests"] = num_requests;
    journal_cfg["small"] = artifacts.small;
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("tab03_workloads",
                                               std::move(journal_cfg));
    const CampaignScope scope{journal.get()};
    const auto stats = parallelMapJournaled(
        scope.journal, table3Workloads(),
        [&](std::size_t, const WorkloadSpec &w) {
            return scope.key("workload", w.name);
        },
        [&](const WorkloadSpec &spec) {
            SyntheticConfig cfg;
            cfg.spec = spec;
            cfg.footprintPages = footprint_pages;
            cfg.numRequests = num_requests;
            return computeExtendedStats(generateTrace(cfg),
                                        cfg.pageSizeKB);
        },
        [](const ExtendedTraceStats &s) { return toJson(s); },
        extendedStatsFromJson);
    if (artifacts.isWorker())
        artifacts.exitWorker();

    bench::rule();
    std::printf("%-7s | %8s | %9s | %9s | %11s | %8s\n", "trace",
                "read[%]", "spec[KB]", "meas[KB]", "inter[ms]",
                "hot1%[%]");
    bench::rule();
    const auto &specs = table3Workloads();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &s = stats[i];
        std::printf("%-7s | %7.1f%% | %9.1f | %9.1f | %11.2f | %7.1f%%\n",
                    specs[i].name.c_str(), 100.0 * s.basic.readRatio,
                    specs[i].avgReqSizeKB, s.basic.avgReqSizeKB,
                    s.basic.avgInterArrivalMs, 100.0 * s.hot1pctFraction);
    }
    bench::rule();
    bench::note("MSRC traces accelerated 10x as in the paper; sizes are "
                "quantized to 16-KiB flash pages");

    if (artifacts.wantJson()) {
        Json doc = Json::object();
        doc["schema"] = "aero-tab03/1";
        Json axes = Json::array();
        axes.push("workload");
        doc["axes"] = std::move(axes);
        Json spec = Json::object();
        spec["footprint_pages"] = footprint_pages;
        spec["num_requests"] = num_requests;
        spec["small"] = artifacts.small;
        doc["spec"] = std::move(spec);
        Json rows = Json::array();
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const auto &s = stats[i];
            Json row = Json::object();
            row["workload"] = specs[i].name;
            row["source_trace"] = specs[i].sourceTrace;
            row["read_ratio"] = s.basic.readRatio;
            row["spec_req_size_kb"] = specs[i].avgReqSizeKB;
            row["measured_req_size_kb"] = s.basic.avgReqSizeKB;
            row["inter_arrival_ms"] = s.basic.avgInterArrivalMs;
            row["hot_1pct_fraction"] = s.hot1pctFraction;
            rows.push(std::move(row));
        }
        doc["results"] = std::move(rows);
        artifacts.writeJson(doc);
    }
    if (artifacts.wantCsv()) {
        std::string csv = "workload,source_trace,read_ratio,"
                          "spec_req_size_kb,measured_req_size_kb,"
                          "inter_arrival_ms,hot_1pct_fraction\n";
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const auto &s = stats[i];
            csv += specs[i].name + ',' + specs[i].sourceTrace;
            csv += ',' + std::to_string(s.basic.readRatio);
            csv += ',' + std::to_string(specs[i].avgReqSizeKB);
            csv += ',' + std::to_string(s.basic.avgReqSizeKB);
            csv += ',' + std::to_string(s.basic.avgInterArrivalMs);
            csv += ',' + std::to_string(s.hot1pctFraction) + '\n';
        }
        writeTextFile(artifacts.csvPath, csv);
    }
    return 0;
}
