/**
 * @file
 * Shared helpers for the figure/table reproduction binaries. Each bench
 * prints the rows/series of one table or figure of the paper, side by
 * side with the paper's reference numbers where applicable, and — via
 * Artifacts — drops a machine-readable JSON/CSV copy of the same numbers
 * when invoked with `--json <path>` and/or `--csv <path>`.
 */

#ifndef AERO_BENCH_BENCH_UTIL_HH
#define AERO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "exp/report.hh"

namespace aero::bench
{

inline void
header(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
rule()
{
    std::printf("%s\n", std::string(78, '-').c_str());
}

inline void
note(const std::string &text)
{
    std::printf("  [%s]\n", text.c_str());
}

/** Where a bench should drop machine-readable copies of its output. */
struct Artifacts
{
    std::string jsonPath;
    std::string csvPath;

    bool wantJson() const { return !jsonPath.empty(); }
    bool wantCsv() const { return !csvPath.empty(); }

    /** Write the standard sweep artifacts (whichever were requested). */
    void
    writeSweep(const SweepSpec &spec,
               const std::vector<SimResult> &results) const
    {
        if (wantJson())
            writeJsonFile(jsonPath, sweepReport(spec, results));
        if (wantCsv())
            writeTextFile(csvPath, toCsv(results));
    }

    /** Write a bench-specific JSON document (fig13, tab03, ...). */
    void
    writeJson(const Json &doc) const
    {
        if (wantJson())
            writeJsonFile(jsonPath, doc);
    }
};

/** Parse `--json <path>` / `--csv <path>`; fatal on anything else. */
inline Artifacts
parseArtifactArgs(int argc, char **argv)
{
    Artifacts out;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        std::string *dest = nullptr;
        if (std::strcmp(arg, "--json") == 0)
            dest = &out.jsonPath;
        else if (std::strcmp(arg, "--csv") == 0)
            dest = &out.csvPath;
        else
            AERO_FATAL("unknown argument '", arg,
                       "' (usage: ", argv[0],
                       " [--json <path>] [--csv <path>])");
        if (i + 1 >= argc)
            AERO_FATAL(arg, " needs a file path");
        *dest = argv[++i];
    }
    return out;
}

} // namespace aero::bench

#endif // AERO_BENCH_BENCH_UTIL_HH
