/**
 * @file
 * Shared helpers for the figure/table reproduction binaries. Each bench
 * prints the rows/series of one table or figure of the paper, side by
 * side with the paper's reference numbers where applicable, and — via
 * Artifacts — drops a machine-readable JSON/CSV copy of the same numbers
 * when invoked with `--json <path>` and/or `--csv <path>`.
 */

#ifndef AERO_BENCH_BENCH_UTIL_HH
#define AERO_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "exp/report.hh"

namespace aero::bench
{

inline void
header(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
rule()
{
    std::printf("%s\n", std::string(78, '-').c_str());
}

inline void
note(const std::string &text)
{
    std::printf("  [%s]\n", text.c_str());
}

/**
 * One `aero-devchar/1` artifact under construction: the device-
 * characterization counterpart of the `aero-sweep/1` report. The
 * document shape is
 *
 *   {"schema": "aero-devchar/1", "bench": .., "axes": [..],
 *    "spec": {..}, "results": [..], "summary": {..}}
 *
 * where `axes` names the row-identity keys `aero_diff` matches rows by,
 * `results` holds one flat object per printed table row, and the
 * optional `summary` holds axis-less scalars (gamma/delta estimates,
 * agreement counts, ...) compared with the same numeric tolerances as
 * row metrics.
 */
struct DevcharReport
{
    DevcharReport(std::string bench_name,
                  std::vector<std::string> axis_keys)
        : bench(std::move(bench_name)), axes(std::move(axis_keys))
    {
    }

    std::string bench;
    std::vector<std::string> axes;
    Json spec = Json::object();
    Json summary;  //!< stays null (and omitted) unless assigned
    Json results = Json::array();

    void addRow(Json row) { results.push(std::move(row)); }

    Json
    doc() const
    {
        Json d = Json::object();
        d["schema"] = "aero-devchar/1";
        d["bench"] = bench;
        Json ax = Json::array();
        for (const auto &a : axes)
            ax.push(a);
        d["axes"] = std::move(ax);
        d["spec"] = spec;
        d["results"] = results;
        if (!summary.isNull())
            d["summary"] = summary;
        return d;
    }
};

/** One scalar cell of the CSV projection (RFC 4180 quoting). */
inline std::string
csvCell(const Json *v)
{
    if (!v || v->isNull())
        return "";
    if (!v->isString())
        return v->dump();
    const std::string &s = v->asString();
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string quoted = "\"";
    for (const char c : s) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

/**
 * Project an array of flat result objects to CSV: the header is the
 * union of row keys in first-appearance order; absent cells are empty.
 */
inline std::string
devcharCsv(const Json &results)
{
    std::vector<std::string> columns;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Json &row = results.at(i);
        for (std::size_t m = 0; m < row.size(); ++m) {
            const std::string &key = row.member(m).first;
            if (std::find(columns.begin(), columns.end(), key) ==
                columns.end())
                columns.push_back(key);
        }
    }
    std::string out;
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c)
            out += ',';
        out += columns[c];
    }
    out += '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Json &row = results.at(i);
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (c)
                out += ',';
            out += csvCell(row.find(columns[c]));
        }
        out += '\n';
    }
    return out;
}

/** Where a bench should drop machine-readable copies of its output. */
struct Artifacts
{
    std::string jsonPath;
    std::string csvPath;
    /**
     * `--small`: run a reduced configuration sized for the golden-file
     * regression gate (seconds, stable numbers, compact artifacts)
     * instead of the paper-scale study. Only the devchar benches accept
     * it.
     */
    bool small = false;

    bool wantJson() const { return !jsonPath.empty(); }
    bool wantCsv() const { return !csvPath.empty(); }

    /** Write the standard sweep artifacts (whichever were requested). */
    void
    writeSweep(const SweepSpec &spec,
               const std::vector<SimResult> &results) const
    {
        if (wantJson())
            writeJsonFile(jsonPath, sweepReport(spec, results));
        if (wantCsv())
            writeTextFile(csvPath, toCsv(results));
    }

    /** Write a bench-specific JSON document (fig13, tab03, ...). */
    void
    writeJson(const Json &doc) const
    {
        if (wantJson())
            writeJsonFile(jsonPath, doc);
    }

    /** Write an `aero-devchar/1` report (whichever formats requested). */
    void
    writeDevchar(const DevcharReport &report) const
    {
        if (wantJson())
            writeJsonFile(jsonPath, report.doc());
        if (wantCsv())
            writeTextFile(csvPath, devcharCsv(report.results));
    }
};

/**
 * Parse `--json <path>` / `--csv <path>` (and `--small` when
 * @p allow_small); fatal on anything else.
 */
inline Artifacts
parseArtifactArgs(int argc, char **argv, bool allow_small = false)
{
    Artifacts out;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (allow_small && std::strcmp(arg, "--small") == 0) {
            out.small = true;
            continue;
        }
        std::string *dest = nullptr;
        if (std::strcmp(arg, "--json") == 0)
            dest = &out.jsonPath;
        else if (std::strcmp(arg, "--csv") == 0)
            dest = &out.csvPath;
        else
            AERO_FATAL("unknown argument '", arg,
                       "' (usage: ", argv[0],
                       " [--json <path>] [--csv <path>]",
                       allow_small ? " [--small]" : "", ")");
        if (i + 1 >= argc)
            AERO_FATAL(arg, " needs a file path");
        *dest = argv[++i];
    }
    return out;
}

} // namespace aero::bench

#endif // AERO_BENCH_BENCH_UTIL_HH
