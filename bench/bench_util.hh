/**
 * @file
 * Shared formatting helpers for the figure/table reproduction binaries.
 * Each bench prints the rows/series of one table or figure of the paper,
 * side by side with the paper's reference numbers where applicable.
 */

#ifndef AERO_BENCH_BENCH_UTIL_HH
#define AERO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

namespace aero::bench
{

inline void
header(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
rule()
{
    std::printf("%s\n", std::string(78, '-').c_str());
}

inline void
note(const std::string &text)
{
    std::printf("  [%s]\n", text.c_str());
}

} // namespace aero::bench

#endif // AERO_BENCH_BENCH_UTIL_HH
