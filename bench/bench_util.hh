/**
 * @file
 * Shared helpers for the figure/table reproduction binaries. Each bench
 * prints the rows/series of one table or figure of the paper, side by
 * side with the paper's reference numbers where applicable, and — via
 * Artifacts — drops a machine-readable JSON/CSV copy of the same numbers
 * when invoked with `--json <path>` and/or `--csv <path>`.
 */

#ifndef AERO_BENCH_BENCH_UTIL_HH
#define AERO_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "exp/campaign.hh"
#include "exp/report.hh"

namespace aero::bench
{

inline void
header(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
rule()
{
    std::printf("%s\n", std::string(78, '-').c_str());
}

inline void
note(const std::string &text)
{
    std::printf("  [%s]\n", text.c_str());
}

/**
 * One `aero-devchar/1` artifact under construction: the device-
 * characterization counterpart of the `aero-sweep/1` report. The
 * document shape is
 *
 *   {"schema": "aero-devchar/1", "bench": .., "axes": [..],
 *    "spec": {..}, "results": [..], "summary": {..}}
 *
 * where `axes` names the row-identity keys `aero_diff` matches rows by,
 * `results` holds one flat object per printed table row, and the
 * optional `summary` holds axis-less scalars (gamma/delta estimates,
 * agreement counts, ...) compared with the same numeric tolerances as
 * row metrics.
 */
struct DevcharReport
{
    DevcharReport(std::string bench_name,
                  std::vector<std::string> axis_keys)
        : bench(std::move(bench_name)), axes(std::move(axis_keys))
    {
    }

    std::string bench;
    std::vector<std::string> axes;
    Json spec = Json::object();
    Json summary;  //!< stays null (and omitted) unless assigned
    Json results = Json::array();

    void addRow(Json row) { results.push(std::move(row)); }

    Json
    doc() const
    {
        Json d = Json::object();
        d["schema"] = "aero-devchar/1";
        d["bench"] = bench;
        Json ax = Json::array();
        for (const auto &a : axes)
            ax.push(a);
        d["axes"] = std::move(ax);
        d["spec"] = spec;
        d["results"] = results;
        if (!summary.isNull())
            d["summary"] = summary;
        return d;
    }
};

/**
 * The journal-config base every farm-driven campaign shares. Benches
 * append their remaining knobs (PEC points, tSE slots, specs, ...) —
 * every knob that influences the numbers must land in the config, so
 * a resumed run can never splice stale records.
 */
inline Json
farmJournalConfig(int num_chips, int blocks_per_chip,
                  std::uint64_t seed, bool small)
{
    Json config = Json::object();
    config["num_chips"] = num_chips;
    config["blocks_per_chip"] = blocks_per_chip;
    config["seed"] = seed;
    config["small"] = small;
    return config;
}

/** A JSON array of scalar values (journal-config helper). */
template <typename T>
inline Json
jsonArray(const std::vector<T> &values)
{
    Json arr = Json::array();
    for (const T &v : values)
        arr.push(v);
    return arr;
}

/** One scalar cell of the CSV projection (RFC 4180 quoting). */
inline std::string
csvCell(const Json *v)
{
    if (!v || v->isNull())
        return "";
    if (!v->isString())
        return v->dump();
    const std::string &s = v->asString();
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string quoted = "\"";
    for (const char c : s) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

/**
 * Project an array of flat result objects to CSV: the header is the
 * union of row keys in first-appearance order; absent cells are empty.
 */
inline std::string
devcharCsv(const Json &results)
{
    std::vector<std::string> columns;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Json &row = results.at(i);
        for (std::size_t m = 0; m < row.size(); ++m) {
            const std::string &key = row.member(m).first;
            if (std::find(columns.begin(), columns.end(), key) ==
                columns.end())
                columns.push_back(key);
        }
    }
    std::string out;
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c)
            out += ',';
        out += columns[c];
    }
    out += '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Json &row = results.at(i);
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (c)
                out += ',';
            out += csvCell(row.find(columns[c]));
        }
        out += '\n';
    }
    return out;
}

/** Where a bench should drop machine-readable copies of its output. */
struct Artifacts
{
    std::string jsonPath;
    std::string csvPath;
    /**
     * `--checkpoint <path>`: journal every completed campaign task to
     * this file and, on a rerun, resume from it instead of restarting
     * from zero (see exp/campaign.hh). All fourteen gated benches
     * accept it; the resumed artifacts are byte-identical to an
     * uninterrupted run at any thread count.
     */
    std::string checkpointPath;
    /**
     * `--small`: run a reduced configuration sized for the golden-file
     * regression gate (seconds, stable numbers, compact artifacts)
     * instead of the paper-scale study. Only the devchar benches accept
     * it.
     */
    bool small = false;
    /**
     * `--workers <n>`: fork n campaign worker processes sharing the
     * `--checkpoint` path as an aero-campaign/2 journal *directory*
     * (requires `--checkpoint`; see exp/campaign.hh). Zero means
     * single-process.
     */
    int workers = 0;
    /** This process's worker index after forkWorkers(); -1 = driver. */
    int workerIndex = -1;

    bool wantJson() const { return !jsonPath.empty(); }
    bool wantCsv() const { return !csvPath.empty(); }
    bool wantCheckpoint() const { return !checkpointPath.empty(); }

    /**
     * Fork the `--workers` processes (no-op without the flag). Call
     * before openJournal(): each child then opens its own worker file
     * with claims armed, the parent waits for all children and opens
     * the merged directory. A forked worker must exitWorker() as soon
     * as its share of the campaign is journaled — artifact assembly
     * belongs to the parent, which resumes with every record cached.
     */
    void
    forkWorkers()
    {
        if (workers <= 1)
            return;
        if (!wantCheckpoint()) {
            AERO_FATAL("--workers needs --checkpoint <dir>: the worker "
                       "processes coordinate through the shared journal "
                       "directory");
        }
        workerIndex = forkCampaignWorkers(workers);
    }

    /** Is this process a forked campaign worker (not the driver)? */
    bool isWorker() const { return workerIndex >= 0; }

    /** A worker's exit point once its tasks are journaled. */
    [[noreturn]] void
    exitWorker() const
    {
        // _Exit, not exit(): the child shares the parent's stdio
        // buffers, and flushing them here would duplicate output.
        std::_Exit(0);
    }

    /**
     * Open this bench's campaign journal (null without `--checkpoint`).
     * @p bench pins the journal to this bench (resuming another
     * bench's journal fails loudly) and @p config fingerprints the
     * campaign configuration — every knob that influences the numbers
     * must be in it, so a resumed run can never splice stale records.
     *
     * With `--workers` (or when the checkpoint path is already a
     * journal directory from an earlier multi-worker run), the journal
     * opens in directory mode: a forked worker appends to
     * `journal.w<i>.jsonl` with file-locked claims armed; the driver
     * merges every worker file under the id "merge" with claims off.
     */
    std::unique_ptr<CampaignJournal>
    openJournal(const std::string &bench, Json config) const
    {
        if (!wantCheckpoint())
            return nullptr;
        JournalOptions options;
        if (isWorker()) {
            // Built by append (not operator+) to dodge GCC 12's
            // -Wrestrict false positive on char* + std::string&&.
            options.workerId = "w";
            options.workerId += std::to_string(workerIndex);
            options.claims = true;
        } else if (workers > 1 ||
                   std::filesystem::is_directory(checkpointPath)) {
            options.workerId = "merge";
        }
        auto journal = std::make_unique<CampaignJournal>(
            checkpointPath, bench, std::move(config), options);
        if (!isWorker() && journal->cachedCount() > 0) {
            std::printf("checkpoint: resuming %zu journaled task(s) "
                        "from %s\n",
                        journal->cachedCount(), checkpointPath.c_str());
        }
        return journal;
    }

    /** Write the standard sweep artifacts (whichever were requested). */
    void
    writeSweep(const SweepSpec &spec,
               const std::vector<SimResult> &results) const
    {
        if (wantJson())
            writeJsonFile(jsonPath, sweepReport(spec, results));
        if (wantCsv())
            writeTextFile(csvPath, toCsv(results));
    }

    /** Write a bench-specific JSON document (fig13, tab03, ...). */
    void
    writeJson(const Json &doc) const
    {
        if (wantJson())
            writeJsonFile(jsonPath, doc);
    }

    /** Write an `aero-devchar/1` report (whichever formats requested). */
    void
    writeDevchar(const DevcharReport &report) const
    {
        if (wantJson())
            writeJsonFile(jsonPath, report.doc());
        if (wantCsv())
            writeTextFile(csvPath, devcharCsv(report.results));
    }
};

/**
 * Parse `--json <path>` / `--csv <path>` (plus `--small` when
 * @p allow_small, `--checkpoint <path>` when @p allow_checkpoint, and
 * `--workers <n>` when @p allow_workers); fatal on anything else, so a
 * bench that has not wired a journal rejects `--checkpoint` instead of
 * silently ignoring it.
 */
inline Artifacts
parseArtifactArgs(int argc, char **argv, bool allow_small = false,
                  bool allow_checkpoint = false,
                  bool allow_workers = false)
{
    Artifacts out;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (allow_small && std::strcmp(arg, "--small") == 0) {
            out.small = true;
            continue;
        }
        if (allow_workers && std::strcmp(arg, "--workers") == 0) {
            if (i + 1 >= argc)
                AERO_FATAL("--workers needs a count");
            char *end = nullptr;
            const long v = std::strtol(argv[++i], &end, 10);
            if (end == nullptr || *end != '\0' || v < 1 || v > 256)
                AERO_FATAL("--workers: '", argv[i],
                           "' is not a worker count in [1, 256]");
            out.workers = static_cast<int>(v);
            continue;
        }
        std::string *dest = nullptr;
        if (std::strcmp(arg, "--json") == 0)
            dest = &out.jsonPath;
        else if (std::strcmp(arg, "--csv") == 0)
            dest = &out.csvPath;
        else if (allow_checkpoint &&
                 std::strcmp(arg, "--checkpoint") == 0)
            dest = &out.checkpointPath;
        else
            AERO_FATAL("unknown argument '", arg,
                       "' (usage: ", argv[0],
                       " [--json <path>] [--csv <path>]",
                       allow_checkpoint ? " [--checkpoint <path>]" : "",
                       allow_workers ? " [--workers <n>]" : "",
                       allow_small ? " [--small]" : "", ")");
        if (i + 1 >= argc)
            AERO_FATAL(arg, " needs a file path");
        *dest = argv[++i];
    }
    return out;
}

} // namespace aero::bench

#endif // AERO_BENCH_BENCH_UTIL_HH
