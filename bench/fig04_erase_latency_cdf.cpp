/**
 * @file
 * Reproduces Fig. 4: CDF of the minimum erase latency (mtBERS) across
 * blocks at P/E cycle counts 0-5K, with the N_ISPE band annotations.
 *
 * Paper reference points: all blocks single-loop at PEC 0 (>70% within
 * 2.5 ms); 76.5% single-loop at 1K; every block >= 2 loops at 2K; 40%
 * at N_ISPE = 3 at 3K; up to 5 loops at 5K; mtBERS std ~2.7 ms at 3.5K.
 */

#include <algorithm>

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main()
{
    bench::header("Figure 4: erase latency variation vs P/E cycles");
    FarmConfig fc;
    fc.numChips = 24;
    fc.blocksPerChip = 30;
    const auto data = runFig4Experiment(
        fc, {0, 1000, 2000, 3000, 3500, 4000, 5000});
    std::printf("%zu blocks per curve (paper: 19200 across 160 chips)\n",
                static_cast<std::size_t>(data.blocksPerCurve));
    bench::rule();
    std::printf("%6s | %-28s | %9s | %7s | %7s\n", "PEC",
                "N_ISPE distribution [%]", "mean [ms]", "std[ms]",
                "<=2.5ms");
    bench::rule();
    for (const auto &c : data.curves) {
        std::string bands;
        for (const auto &[n, cnt] : c.nIspeCounts) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "N%d:%4.1f ", n,
                          100.0 * cnt / c.mtBersMs.size());
            bands += buf;
        }
        std::printf("%6.0f | %-28s | %9.2f | %7.2f | %6.1f%%\n", c.pec,
                    bands.c_str(), c.meanMtBersMs, c.stddevMtBersMs,
                    100.0 * c.fracWithin2_5Ms);
    }
    bench::rule();

    // CDF series (the figure's curves), on a 0.5-ms grid.
    std::printf("\nCDF of mtBERS [%% of blocks completely erased]\n");
    std::printf("%9s", "ms");
    for (const auto &c : data.curves)
        std::printf(" | PEC%5.0f", c.pec);
    std::printf("\n");
    for (double ms = 1.0; ms <= 18.0; ms += 1.0) {
        std::printf("%9.1f", ms);
        for (const auto &c : data.curves) {
            const auto n = static_cast<double>(c.mtBersMs.size());
            const auto below = std::count_if(
                c.mtBersMs.begin(), c.mtBersMs.end(),
                [ms](double v) { return v <= ms; });
            std::printf(" | %7.1f", 100.0 * below / n);
        }
        std::printf("\n");
    }
    bench::note("paper: single-loop fractions 100%/76.5% at PEC 0/1K; "
                "every block multi-loop at 2K");
    return 0;
}
