/**
 * @file
 * Reproduces Fig. 4: CDF of the minimum erase latency (mtBERS) across
 * blocks at P/E cycle counts 0-5K, with the N_ISPE band annotations.
 * The underlying experiment is chip-sharded across the sweep thread
 * pool; `--json`/`--csv` drop an `aero-devchar/1` artifact and
 * `--small` runs the reduced regression-gate configuration.
 *
 * Paper reference points: all blocks single-loop at PEC 0 (>70% within
 * 2.5 ms); 76.5% single-loop at 1K; every block >= 2 loops at 2K; 40%
 * at N_ISPE = 3 at 3K; up to 5 loops at 5K; mtBERS std ~2.7 ms at 3.5K.
 */

#include <algorithm>

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 4: erase latency variation vs P/E cycles");
    FarmConfig fc;
    fc.numChips = artifacts.small ? 6 : 24;
    fc.blocksPerChip = artifacts.small ? 10 : 30;
    const std::vector<double> pecs = {0,    1000, 2000, 3000,
                                      3500, 4000, 5000};
    Json journal_cfg = bench::farmJournalConfig(
        fc.numChips, fc.blocksPerChip, fc.seed, artifacts.small);
    journal_cfg["pecs"] = bench::jsonArray(pecs);
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("fig04_erase_latency_cdf",
                                               std::move(journal_cfg));
    const auto data = runFig4Experiment(fc, pecs, {journal.get()});
    if (artifacts.isWorker())
        artifacts.exitWorker();
    std::printf("%zu blocks per curve (paper: 19200 across 160 chips)\n",
                static_cast<std::size_t>(data.blocksPerCurve));
    bench::rule();
    std::printf("%6s | %-28s | %9s | %7s | %7s\n", "PEC",
                "N_ISPE distribution [%]", "mean [ms]", "std[ms]",
                "<=2.5ms");
    bench::rule();
    for (const auto &c : data.curves) {
        std::string bands;
        for (const auto &[n, cnt] : c.nIspeCounts) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "N%d:%4.1f ", n,
                          100.0 * cnt / c.mtBersMs.size());
            bands += buf;
        }
        std::printf("%6.0f | %-28s | %9.2f | %7.2f | %6.1f%%\n", c.pec,
                    bands.c_str(), c.meanMtBersMs, c.stddevMtBersMs,
                    100.0 * c.fracWithin2_5Ms);
    }
    bench::rule();

    // CDF series (the figure's curves), on a 0.5-ms grid.
    std::printf("\nCDF of mtBERS [%% of blocks completely erased]\n");
    std::printf("%9s", "ms");
    for (const auto &c : data.curves)
        std::printf(" | PEC%5.0f", c.pec);
    std::printf("\n");
    for (double ms = 1.0; ms <= 18.0; ms += 1.0) {
        std::printf("%9.1f", ms);
        for (const auto &c : data.curves) {
            const auto n = static_cast<double>(c.mtBersMs.size());
            const auto below = std::count_if(
                c.mtBersMs.begin(), c.mtBersMs.end(),
                [ms](double v) { return v <= ms; });
            std::printf(" | %7.1f", 100.0 * below / n);
        }
        std::printf("\n");
    }
    bench::note("paper: single-loop fractions 100%/76.5% at PEC 0/1K; "
                "every block multi-loop at 2K");

    bench::DevcharReport report("fig04_erase_latency_cdf",
                                {"kind", "pec", "ms"});
    report.spec["num_chips"] = fc.numChips;
    report.spec["blocks_per_chip"] = fc.blocksPerChip;
    report.spec["seed"] = fc.seed;
    report.spec["small"] = artifacts.small;
    report.summary["blocks_per_curve"] = data.blocksPerCurve;
    for (const auto &c : data.curves) {
        Json row = Json::object();
        row["kind"] = "summary";
        row["pec"] = c.pec;
        row["mean_mtbers_ms"] = c.meanMtBersMs;
        row["stddev_mtbers_ms"] = c.stddevMtBersMs;
        row["within_2_5ms_frac"] = c.fracWithin2_5Ms;
        row["single_loop_frac"] = c.fracSingleLoop;
        for (const auto &[n, cnt] : c.nIspeCounts) {
            row[detail::concat("n_ispe_", n, "_count")] = cnt;
        }
        report.addRow(std::move(row));
        for (double ms = 1.0; ms <= 18.0; ms += 1.0) {
            const auto n = static_cast<double>(c.mtBersMs.size());
            const auto below = std::count_if(
                c.mtBersMs.begin(), c.mtBersMs.end(),
                [ms](double v) { return v <= ms; });
            Json cdf = Json::object();
            cdf["kind"] = "cdf";
            cdf["pec"] = c.pec;
            cdf["ms"] = ms;
            cdf["erased_frac"] = below / n;
            report.addRow(std::move(cdf));
        }
    }
    artifacts.writeDevchar(report);
    return 0;
}
