/**
 * @file
 * Reproduces Fig. 8: the probability that a block needs mtEP(N_ISPE) = y
 * given that F(N_ISPE - 1) fell in fail-bit range x, plus the fraction of
 * blocks per range. The paper's headline: a majority (>= 66%) of blocks
 * in the same range need the same final-loop latency, making the fail-bit
 * count an accurate mtEP predictor.
 * Chip-sharded across the sweep thread pool; `--json`/`--csv` drop an
 * `aero-devchar/1` artifact, `--small` runs the regression-gate config.
 */

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 8: mtEP(N_ISPE) probability by fail-bit range");
    FarmConfig fc;
    fc.numChips = artifacts.small ? 8 : 28;
    fc.blocksPerChip = artifacts.small ? 10 : 24;
    const std::vector<double> pecs = {2000, 2500, 3000, 3500,
                                      4000, 4500, 5200};
    Json journal_cfg = bench::farmJournalConfig(
        fc.numChips, fc.blocksPerChip, fc.seed, artifacts.small);
    journal_cfg["pecs"] = bench::jsonArray(pecs);
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("fig08_felp_accuracy",
                                               std::move(journal_cfg));
    const auto data = runFig8Experiment(fc, pecs, {journal.get()});
    if (artifacts.isWorker())
        artifacts.exitWorker();
    for (const auto &row : data.rows) {
        std::printf("\nN_ISPE = %d (%d samples)\n", row.nIspe,
                    row.samples);
        bench::rule();
        std::printf("%6s | %8s | %5s | P(mtEP = 0.5..3.5 ms)\n", "range",
                    "blocks%", "modal");
        for (int rg = 0; rg < 9; ++rg) {
            if (row.rangeFraction[rg] < 0.005)
                continue;
            std::printf("%6s | %7.1f%% | %4.0f%% |",
                        Ept::rangeLabel(rg).c_str(),
                        100.0 * row.rangeFraction[rg],
                        100.0 * row.modalProb[rg]);
            for (int s = 0; s < 7; ++s)
                std::printf(" %4.0f%%", 100.0 * row.mtepProb[rg][s]);
            std::printf("\n");
        }
    }
    bench::rule();
    bench::note("paper: majority (>=66%) of blocks per range share one "
                "mtEP; ranges are occupied fairly evenly");

    bench::DevcharReport report("fig08_felp_accuracy",
                                {"n_ispe", "range"});
    report.spec["num_chips"] = fc.numChips;
    report.spec["blocks_per_chip"] = fc.blocksPerChip;
    report.spec["seed"] = fc.seed;
    report.spec["small"] = artifacts.small;
    for (const auto &row : data.rows) {
        for (int rg = 0; rg < 9; ++rg) {
            Json j = Json::object();
            j["n_ispe"] = row.nIspe;
            j["range"] = rg;
            j["range_label"] = Ept::rangeLabel(rg);
            j["samples"] = row.samples;
            j["range_frac"] = row.rangeFraction[rg];
            j["modal_prob"] = row.modalProb[rg];
            for (int s = 0; s < 7; ++s)
                j[detail::concat("p_slots_", s + 1)] =
                    row.mtepProb[rg][s];
            report.addRow(std::move(j));
        }
    }
    artifacts.writeDevchar(report);
    return 0;
}
