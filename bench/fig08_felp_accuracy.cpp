/**
 * @file
 * Reproduces Fig. 8: the probability that a block needs mtEP(N_ISPE) = y
 * given that F(N_ISPE - 1) fell in fail-bit range x, plus the fraction of
 * blocks per range. The paper's headline: a majority (>= 66%) of blocks
 * in the same range need the same final-loop latency, making the fail-bit
 * count an accurate mtEP predictor.
 */

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main()
{
    bench::header("Figure 8: mtEP(N_ISPE) probability by fail-bit range");
    FarmConfig fc;
    fc.numChips = 28;
    fc.blocksPerChip = 24;
    const auto data = runFig8Experiment(
        fc, {2000, 2500, 3000, 3500, 4000, 4500, 5200});
    for (const auto &row : data.rows) {
        std::printf("\nN_ISPE = %d (%d samples)\n", row.nIspe,
                    row.samples);
        bench::rule();
        std::printf("%6s | %8s | %5s | P(mtEP = 0.5..3.5 ms)\n", "range",
                    "blocks%", "modal");
        for (int rg = 0; rg < 9; ++rg) {
            if (row.rangeFraction[rg] < 0.005)
                continue;
            std::printf("%6s | %7.1f%% | %4.0f%% |",
                        Ept::rangeLabel(rg).c_str(),
                        100.0 * row.rangeFraction[rg],
                        100.0 * row.modalProb[rg]);
            for (int s = 0; s < 7; ++s)
                std::printf(" %4.0f%%", 100.0 * row.mtepProb[rg][s]);
            std::printf("\n");
        }
    }
    bench::rule();
    bench::note("paper: majority (>=66%) of blocks per range share one "
                "mtEP; ranges are occupied fairly evenly");
    return 0;
}
