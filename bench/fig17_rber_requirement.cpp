/**
 * @file
 * Reproduces Fig. 17: sensitivity to the RBER requirement {40, 50, 63}
 * bits per 1 KiB (weaker ECC shrinks the margin AERO can spend).
 *
 * Paper reference: AERO still beats AERO-CONS by ~14% in lifetime at the
 * 40-bit requirement, with the largest benefit around 2.5K PEC.
 */

#include "bench_util.hh"
#include "devchar/lifetime.hh"
#include "devchar/simstudy.hh"

using namespace aero;

int
main()
{
    bench::header("Figure 17: impact of the RBER requirement");
    const int requirements[] = {40, 50, 63};

    std::printf("lifetime under each requirement (PEC)\n");
    bench::rule();
    std::printf("%5s | %9s | %10s | %10s | %12s\n", "req", "Baseline",
                "AERO-CONS", "AERO", "AERO vs CONS");
    for (const int req : requirements) {
        LifetimeConfig cfg;
        cfg.farm.numChips = 6;
        cfg.farm.blocksPerChip = 12;
        cfg.rberRequirement = req;
        cfg.schemeOptions.rberRequirement = req;
        LifetimeTester tester(cfg);
        const auto base = tester.run(SchemeKind::Baseline);
        const auto cons = tester.run(SchemeKind::AeroCons);
        const auto aero = tester.run(SchemeKind::Aero);
        std::printf("%5d | %9.0f | %10.0f | %10.0f | %+11.1f%%\n", req,
                    base.lifetimePec, cons.lifetimePec, aero.lifetimePec,
                    100.0 * (aero.lifetimePec - cons.lifetimePec) /
                        cons.lifetimePec);
    }
    bench::rule();

    const auto requests = defaultSimRequests();
    std::printf("\nAERO read-tail latency vs requirement (prxy, "
                "normalized to Baseline at same requirement)\n");
    bench::rule();
    std::printf("%5s | %6s | %10s | %10s\n", "req", "PEC", "p99.99",
                "p99.9999");
    for (const int req : requirements) {
        for (const double pec : {500.0, 2500.0}) {
            SimPoint bp;
            bp.workload = "prxy";
            bp.pec = pec;
            bp.requests = requests;
            bp.rberRequirement = req;
            const auto base = runSimPoint(bp);
            SimPoint ap = bp;
            ap.scheme = SchemeKind::Aero;
            const auto aero = runSimPoint(ap);
            std::printf("%5d | %6.0f | %10.2f | %10.2f\n", req, pec,
                        aero.p9999Us / base.p9999Us,
                        aero.p999999Us / base.p999999Us);
        }
    }
    bench::rule();
    bench::note("paper: weaker ECC shrinks but does not erase AERO's "
                "advantage (+14% over CONS at 40 bits)");
    return 0;
}
