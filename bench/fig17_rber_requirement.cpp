/**
 * @file
 * Reproduces Fig. 17: sensitivity to the RBER requirement {40, 50, 63}
 * bits per 1 KiB (weaker ECC shrinks the margin AERO can spend).
 * The three requirements run as independent thread-pool tasks (each
 * lifetime run is itself chip-sharded), as do the latency grid points;
 * `--json`/`--csv` drop an `aero-devchar/1` artifact, `--small` runs
 * the regression-gate config.
 *
 * Paper reference: AERO still beats AERO-CONS by ~14% in lifetime at the
 * 40-bit requirement, with the largest benefit around 2.5K PEC.
 */

#include "bench_util.hh"
#include "devchar/lifetime.hh"
#include "devchar/simstudy.hh"
#include "exp/sweep.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 17: impact of the RBER requirement");
    const std::vector<int> requirements = {40, 50, 63};
    const int farm_chips = artifacts.small ? 4 : 6;
    const int farm_blocks = artifacts.small ? 8 : 12;

    bench::DevcharReport report("fig17_rber_requirement",
                                {"kind", "rber_requirement", "pec"});
    report.spec["num_chips"] = farm_chips;
    report.spec["blocks_per_chip"] = farm_blocks;
    report.spec["small"] = artifacts.small;

    const auto requests = artifacts.small
        ? std::uint64_t{10000}
        : defaultSimRequests();
    Json journal_cfg = bench::farmJournalConfig(
        farm_chips, farm_blocks, FarmConfig{}.seed, artifacts.small);
    journal_cfg["rber_requirements"] = bench::jsonArray(requirements);
    journal_cfg["requests"] = requests;
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("fig17_rber_requirement",
                                               std::move(journal_cfg));
    const CampaignScope scope{journal.get()};

    struct LifetimeRow
    {
        LifetimeResult base, cons, aero;
    };
    const auto lifetimes = parallelMapJournaled(
        scope.journal, requirements,
        [&](std::size_t, int req) {
            Json key = scope.base();
            key["stage"] = "lifetime";
            key["rber_requirement"] = req;
            return key;
        },
        [&](int req) {
            LifetimeConfig cfg;
            cfg.farm.numChips = farm_chips;
            cfg.farm.blocksPerChip = farm_blocks;
            cfg.rberRequirement = req;
            cfg.schemeOptions.rberRequirement = req;
            LifetimeTester tester(cfg);
            return LifetimeRow{tester.run(SchemeKind::Baseline),
                               tester.run(SchemeKind::AeroCons),
                               tester.run(SchemeKind::Aero)};
        },
        [](const LifetimeRow &row) {
            Json j = Json::object();
            j["baseline"] = toJson(row.base);
            j["aero_cons"] = toJson(row.cons);
            j["aero"] = toJson(row.aero);
            return j;
        },
        [](const Json &j) {
            return LifetimeRow{
                lifetimeResultFromJson(j.get("baseline")),
                lifetimeResultFromJson(j.get("aero_cons")),
                lifetimeResultFromJson(j.get("aero"))};
        });

    struct LatencyPoint
    {
        int req;
        double pec;
    };
    std::vector<LatencyPoint> points;
    for (const int req : requirements) {
        for (const double pec : {500.0, 2500.0})
            points.push_back({req, pec});
    }
    struct LatencyRow
    {
        SimResult base, aero;
    };
    const auto latencies = parallelMapJournaled(
        scope.journal, points,
        [&](std::size_t, const LatencyPoint &pt) {
            Json key = scope.base();
            key["stage"] = "latency";
            key["rber_requirement"] = pt.req;
            key["pec"] = pt.pec;
            return key;
        },
        [&](const LatencyPoint &pt) {
            SimPoint bp;
            bp.workload = "prxy";
            bp.pec = pt.pec;
            bp.requests = requests;
            bp.rberRequirement = pt.req;
            SimPoint ap = bp;
            ap.scheme = SchemeKind::Aero;
            return LatencyRow{runSimPoint(bp), runSimPoint(ap)};
        },
        [](const LatencyRow &row) {
            Json j = Json::object();
            j["baseline"] = toJson(row.base);
            j["aero"] = toJson(row.aero);
            return j;
        },
        [](const Json &j) {
            return LatencyRow{simResultFromJson(j.get("baseline")),
                              simResultFromJson(j.get("aero"))};
        });
    // A worker's share is journaled once both stages have run; the
    // tables and the devchar artifact belong to the driver, which
    // resumes with every record cached.
    if (artifacts.isWorker())
        artifacts.exitWorker();

    std::printf("lifetime under each requirement (PEC)\n");
    bench::rule();
    std::printf("%5s | %9s | %10s | %10s | %12s\n", "req", "Baseline",
                "AERO-CONS", "AERO", "AERO vs CONS");
    for (std::size_t i = 0; i < requirements.size(); ++i) {
        const auto &row = lifetimes[i];
        const double gain =
            100.0 * (row.aero.lifetimePec - row.cons.lifetimePec) /
            row.cons.lifetimePec;
        std::printf("%5d | %9.0f | %10.0f | %10.0f | %+11.1f%%\n",
                    requirements[i], row.base.lifetimePec,
                    row.cons.lifetimePec, row.aero.lifetimePec, gain);
        Json j = Json::object();
        j["kind"] = "lifetime";
        j["rber_requirement"] = requirements[i];
        j["baseline_pec"] = row.base.lifetimePec;
        j["aero_cons_pec"] = row.cons.lifetimePec;
        j["aero_pec"] = row.aero.lifetimePec;
        j["aero_vs_cons_frac"] =
            (row.aero.lifetimePec - row.cons.lifetimePec) /
            row.cons.lifetimePec;
        report.addRow(std::move(j));
    }
    bench::rule();

    report.spec["requests"] = requests;

    std::printf("\nAERO read-tail latency vs requirement (prxy, "
                "normalized to Baseline at same requirement)\n");
    bench::rule();
    std::printf("%5s | %6s | %10s | %10s\n", "req", "PEC", "p99.99",
                "p99.9999");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &pt = points[i];
        const auto &row = latencies[i];
        std::printf("%5d | %6.0f | %10.2f | %10.2f\n", pt.req, pt.pec,
                    row.aero.p9999Us / row.base.p9999Us,
                    row.aero.p999999Us / row.base.p999999Us);
        Json j = Json::object();
        j["kind"] = "latency";
        j["rber_requirement"] = pt.req;
        j["pec"] = pt.pec;
        j["p9999_vs_baseline"] = row.aero.p9999Us / row.base.p9999Us;
        j["p999999_vs_baseline"] =
            row.aero.p999999Us / row.base.p999999Us;
        report.addRow(std::move(j));
    }
    bench::rule();
    bench::note("paper: weaker ECC shrinks but does not erase AERO's "
                "advantage (+14% over CONS at 40 bits)");
    artifacts.writeDevchar(report);
    return 0;
}
