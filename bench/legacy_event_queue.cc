#include "legacy_event_queue.hh"

#include "common/logging.hh"

namespace aero::legacy
{

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    AERO_CHECK(when >= currentTick, "scheduling into the past: ", when,
               " < ", currentTick);
    events.push(Event{when, nextSeq++, std::move(cb)});
}

void
EventQueue::run(Tick until)
{
    while (!events.empty() && events.top().when <= until) {
        if (!step())
            break;
    }
    if (currentTick < until && until != kTickMax)
        currentTick = until;
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;
    // priority_queue::top returns const ref; the const_cast move is safe
    // because the element is popped immediately after.
    Event ev = std::move(const_cast<Event &>(events.top()));
    events.pop();
    AERO_CHECK(ev.when >= currentTick, "event queue time went backwards");
    currentTick = ev.when;
    ++processedCount;
    ev.cb();
    return true;
}

} // namespace aero::legacy
