/**
 * @file
 * Reproduces Table 1: the final mtEP(N_ISPE) model. Prints the canonical
 * table transcribed from the paper next to one derived from scratch by
 * the EptBuilder's m-ISPE characterization campaign on the virtual farm
 * (the paper's offline-profiling procedure).
 */

#include "bench_util.hh"
#include "core/ept_builder.hh"

using namespace aero;

int
main()
{
    bench::header("Table 1: erase-timing parameter table (EPT)");
    const auto params = ChipParams::tlc3d();

    std::printf("\ncanonical (transcribed from the paper):\n%s",
                Ept::canonical(params).toString(params).c_str());

    PopulationConfig pc;
    pc.numChips = 20;
    pc.geometry = ChipGeometry{1, 24, 16};
    pc.seed = 4242;
    ChipPopulation pop(pc);
    EptBuilderConfig bcfg;
    bcfg.blocksPerChip = 20;
    EptBuilder builder(pop, bcfg);
    const Ept built = builder.build();
    std::printf("\nderived by m-ISPE characterization "
                "(%llu measurements):\n%s",
                static_cast<unsigned long long>(builder.measurements()),
                built.toString(params).c_str());

    int matches = 0, cells = 0;
    for (int row = 1; row <= Ept::kRows; ++row) {
        for (int rg = 0; rg < Ept::kRanges; ++rg) {
            cells += 1;
            matches += built.consSlots(row, rg) ==
                       Ept::canonical(params).consSlots(row, rg);
        }
    }
    std::printf("\nconservative-column agreement with the canonical "
                "table: %d/%d cells\n", matches, cells);
    bench::note("storage cost: 35 entries x 4 B = 140 B (the paper's "
                "overhead argument)");
    return 0;
}
