/**
 * @file
 * Reproduces Table 1: the final mtEP(N_ISPE) model. Prints the canonical
 * table transcribed from the paper next to one derived from scratch by
 * the EptBuilder's m-ISPE characterization campaign on the virtual farm
 * (the paper's offline-profiling procedure). The campaign is
 * chip-sharded across the sweep thread pool; `--json`/`--csv` drop an
 * `aero-devchar/1` artifact, `--small` runs the regression-gate config.
 */

#include "bench_util.hh"
#include "core/ept_builder.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Table 1: erase-timing parameter table (EPT)");
    const auto params = ChipParams::tlc3d();

    std::printf("\ncanonical (transcribed from the paper):\n%s",
                Ept::canonical(params).toString(params).c_str());

    PopulationConfig pc;
    pc.numChips = artifacts.small ? 8 : 20;
    pc.geometry = ChipGeometry{1, 24, 16};
    pc.seed = 4242;
    ChipPopulation pop(pc);
    EptBuilderConfig bcfg;
    bcfg.blocksPerChip = artifacts.small ? 10 : 20;
    Json journal_cfg = bench::farmJournalConfig(
        pc.numChips, bcfg.blocksPerChip, pc.seed, artifacts.small);
    journal_cfg["pec_points"] = bench::jsonArray(bcfg.pecPoints);
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("tab01_ept_model",
                                               std::move(journal_cfg));
    EptBuilder builder(pop, bcfg);
    const Ept built = builder.build({journal.get()});
    if (artifacts.isWorker())
        artifacts.exitWorker();
    std::printf("\nderived by m-ISPE characterization "
                "(%llu measurements):\n%s",
                static_cast<unsigned long long>(builder.measurements()),
                built.toString(params).c_str());

    const Ept canonical = Ept::canonical(params);
    int matches = 0, cells = 0;
    bench::DevcharReport report("tab01_ept_model", {"row", "range"});
    report.spec["num_chips"] = pc.numChips;
    report.spec["blocks_per_chip"] = bcfg.blocksPerChip;
    report.spec["seed"] = pc.seed;
    report.spec["small"] = artifacts.small;
    for (int row = 1; row <= Ept::kRows; ++row) {
        for (int rg = 0; rg < Ept::kRanges; ++rg) {
            cells += 1;
            matches += built.consSlots(row, rg) ==
                       canonical.consSlots(row, rg);
            Json j = Json::object();
            j["row"] = row;
            j["range"] = rg;
            j["range_label"] = Ept::rangeLabel(rg);
            j["cons_slots"] = built.consSlots(row, rg);
            j["aggr_slots"] = built.aggrSlots(row, rg);
            j["canonical_cons_slots"] = canonical.consSlots(row, rg);
            j["canonical_aggr_slots"] = canonical.aggrSlots(row, rg);
            j["cons_matches_canonical"] =
                built.consSlots(row, rg) == canonical.consSlots(row, rg);
            report.addRow(std::move(j));
        }
    }
    std::printf("\nconservative-column agreement with the canonical "
                "table: %d/%d cells\n", matches, cells);
    bench::note("storage cost: 35 entries x 4 B = 140 B (the paper's "
                "overhead argument)");
    report.summary["measurements"] =
        static_cast<std::uint64_t>(builder.measurements());
    report.summary["cons_agreement_cells"] = matches;
    report.summary["cells"] = cells;
    artifacts.writeDevchar(report);
    return 0;
}
