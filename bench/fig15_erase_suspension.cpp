/**
 * @file
 * Reproduces Fig. 15: impact of erase suspension on read tail latency.
 * Compares Baseline / AERO-CONS / AERO with suspension enabled and
 * disabled, at the three PEC points, normalized to Baseline WITHOUT
 * suspension.
 *
 * Paper reference: without suspension AERO cuts the 99.9999th percentile
 * by <45,44,16>% vs <43,23,5>% with suspension; suspension itself
 * helps everyone, and AERO composes with it.
 */

#include "bench_util.hh"
#include "devchar/simstudy.hh"

using namespace aero;

int
main()
{
    bench::header("Figure 15: erase suspension vs AERO");
    const auto requests = defaultSimRequests();
    const SchemeKind kinds[] = {SchemeKind::Baseline,
                                SchemeKind::AeroCons, SchemeKind::Aero};
    const char *wl = "prxy";
    std::printf("workload %s, %llu requests/run\n", wl,
                static_cast<unsigned long long>(requests));
    bench::rule();
    std::printf("%6s | %-10s | %10s | %18s | %18s\n", "PEC", "scheme",
                "suspension", "p99.99 (norm)", "p99.9999 (norm)");
    bench::rule();
    for (const double pec : paperPecPoints()) {
        double base9999 = 0.0, base6 = 0.0;
        for (const auto mode :
             {SuspensionMode::None, SuspensionMode::MidSegment}) {
            for (const auto k : kinds) {
                SimPoint pt;
                pt.workload = wl;
                pt.scheme = k;
                pt.pec = pec;
                pt.suspension = mode;
                pt.requests = requests;
                const auto r = runSimPoint(pt);
                if (mode == SuspensionMode::None &&
                    k == SchemeKind::Baseline) {
                    base9999 = r.p9999Us;
                    base6 = r.p999999Us;
                }
                std::printf("%6.0f | %-10s | %10s | %9.0fus (%4.2f) | "
                            "%9.0fus (%4.2f)\n",
                            pec, schemeKindName(k),
                            mode == SuspensionMode::None ? "off" : "on",
                            r.p9999Us, r.p9999Us / base9999,
                            r.p999999Us, r.p999999Us / base6);
            }
        }
        bench::rule();
    }
    bench::note("normalized to Baseline without suspension; paper: AERO "
                "benefits are larger without suspension");
    return 0;
}
