/**
 * @file
 * Reproduces Fig. 15: impact of erase suspension on read tail latency.
 * Compares Baseline / AERO-CONS / AERO with suspension enabled and
 * disabled, at the three PEC points, normalized to Baseline WITHOUT
 * suspension. The 3 x 2 x 3 grid runs through SweepRunner; `--json` /
 * `--csv` drop the raw rows.
 *
 * Paper reference: without suspension AERO cuts the 99.9999th percentile
 * by <45,44,16>% vs <43,23,5>% with suspension; suspension itself
 * helps everyone, and AERO composes with it.
 */

#include "bench_util.hh"
#include "exp/checkpoint.hh"
#include "exp/sweep.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 15: erase suspension vs AERO");

    // --small pins a fixed request count so the golden baselines do not
    // depend on AERO_SIM_REQUESTS; the grid shape is already compact.
    const SweepSpec spec =
        SweepBuilder()
            .workload("prxy")
            .schemes({SchemeKind::Baseline, SchemeKind::AeroCons,
                      SchemeKind::Aero})
            .paperPecs()
            .suspensions(
                {SuspensionMode::None, SuspensionMode::MidSegment})
            .requests(artifacts.small ? 2000 : defaultSimRequests())
            .build();
    std::printf("workload prxy, %llu requests/run, %zu points on %d "
                "threads\n",
                static_cast<unsigned long long>(spec.requests), spec.size(),
                SweepRunner().threads());
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal(
        "fig15_erase_suspension", SweepCheckpoint::configOf(spec));
    std::vector<SimResult> results;
    if (journal) {
        SweepCheckpoint checkpoint(*journal, spec);
        results = SweepRunner().run(spec, checkpoint);
    } else {
        results = SweepRunner().run(spec);
    }
    if (artifacts.isWorker())
        artifacts.exitWorker();
    artifacts.writeSweep(spec, results);

    bench::rule();
    std::printf("%6s | %-10s | %10s | %18s | %18s\n", "PEC", "scheme",
                "suspension", "p99.99 (norm)", "p99.9999 (norm)");
    bench::rule();
    for (std::size_t pi = 0; pi < spec.pecs.size(); ++pi) {
        // Normalize to Baseline without suspension (susp index 0).
        const auto &base = results[spec.index(pi, 0, 0, 0, 0, 0, 0)];
        for (std::size_t mi = 0; mi < spec.suspensions.size(); ++mi) {
            for (std::size_t si = 0; si < spec.schemes.size(); ++si) {
                const auto &r = results[spec.index(pi, mi, 0, si, 0, 0, 0)];
                std::printf("%6.0f | %-10s | %10s | %9.0fus (%4.2f) | "
                            "%9.0fus (%4.2f)\n",
                            spec.pecs[pi], schemeKindName(spec.schemes[si]),
                            spec.suspensions[mi] == SuspensionMode::None
                                ? "off"
                                : "on",
                            r.p9999Us, r.p9999Us / base.p9999Us,
                            r.p999999Us, r.p999999Us / base.p999999Us);
            }
        }
        bench::rule();
    }
    bench::note("normalized to Baseline without suspension; paper: AERO "
                "benefits are larger without suspension");
    return 0;
}
