/**
 * @file
 * Reproduces Fig. 13: average max-RBER vs P/E cycles for the five erase
 * schemes, and the lifetimes where each crosses the 63-bit requirement.
 * The five endurance runs are independent, so they fan out over
 * parallelMap; `--json` drops the lifetimes and the full RBER curves,
 * `--csv` the per-scheme summary rows.
 *
 * Paper reference: Baseline 5.3K; i-ISPE -25%; DPES +26%; AERO-CONS
 * +30%; AERO +43%. AERO starts high (M_RBER(0) = 46) but grows slowly.
 */

#include "bench_util.hh"
#include "devchar/lifetime.hh"
#include "exp/sweep.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 13: SSD lifetime and reliability comparison");
    LifetimeConfig cfg;
    cfg.farm.numChips = artifacts.small ? 6 : 16;
    cfg.farm.blocksPerChip = artifacts.small ? 10 : 24;
    cfg.checkpointEvery = 250;
    Json journal_cfg = bench::farmJournalConfig(
        cfg.farm.numChips, cfg.farm.blocksPerChip, cfg.farm.seed,
        artifacts.small);
    journal_cfg["checkpoint_every"] = cfg.checkpointEvery;
    journal_cfg["max_pec"] = cfg.maxPec;
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("fig13_lifetime",
                                               std::move(journal_cfg));
    const LifetimeTester tester(cfg);
    // Parallel across schemes; one journal record per finished scheme.
    const auto results = tester.runAll({journal.get()});
    if (artifacts.isWorker())
        artifacts.exitWorker();

    const double base_life = results.front().lifetimePec;
    bench::rule();
    std::printf("%-10s | %9s | %8s | %10s | %9s | %8s\n", "scheme",
                "lifetime", "vs base", "fresh RBER", "avg tBERS",
                "avgLoops");
    bench::rule();
    const double paper_delta[] = {0.0, -25.0, 26.0, 30.0, 43.0};
    int idx = 0;
    for (const auto &r : results) {
        std::printf("%-10s | %9.0f | %+7.1f%% | %10.1f | %7.2fms | %8.2f"
                    "   (paper: %+.0f%%)\n",
                    schemeKindName(r.scheme), r.lifetimePec,
                    100.0 * (r.lifetimePec - base_life) / base_life,
                    r.freshMrber, r.avgEraseLatencyMs, r.avgLoops,
                    paper_delta[idx++]);
    }
    bench::rule();

    std::printf("\naverage M_RBER vs PEC (the figure's curves)\n");
    std::printf("%6s", "PEC");
    for (const auto &r : results)
        std::printf(" | %9s", schemeKindName(r.scheme));
    std::printf("\n");
    for (std::size_t i = 3; i < results[4].curve.size(); i += 4) {
        const double pec = results[4].curve[i].first;
        std::printf("%6.0f", pec);
        for (const auto &r : results) {
            if (i < r.curve.size())
                std::printf(" | %9.1f", r.curve[i].second);
            else
                std::printf(" | %9s", "eol");
        }
        std::printf("\n");
    }
    bench::note("requirement = 63 raw bit errors per 1 KiB");

    if (artifacts.wantJson()) {
        Json doc = Json::object();
        doc["schema"] = "aero-fig13/1";
        Json axes = Json::array();
        axes.push("scheme");
        doc["axes"] = std::move(axes);
        Json spec = Json::object();
        spec["num_chips"] = cfg.farm.numChips;
        spec["blocks_per_chip"] = cfg.farm.blocksPerChip;
        spec["small"] = artifacts.small;
        doc["spec"] = std::move(spec);
        doc["rber_requirement"] = cfg.rberRequirement;
        Json rows = Json::array();
        for (const auto &r : results) {
            Json row = Json::object();
            row["scheme"] = schemeKindName(r.scheme);
            row["lifetime_pec"] = r.lifetimePec;
            row["crossed"] = r.crossed;
            row["fresh_mrber"] = r.freshMrber;
            row["avg_erase_ms"] = r.avgEraseLatencyMs;
            row["avg_loops"] = r.avgLoops;
            Json curve = Json::array();
            for (const auto &[pec, mrber] : r.curve) {
                Json pt = Json::array();
                pt.push(pec);
                pt.push(mrber);
                curve.push(std::move(pt));
            }
            row["curve"] = std::move(curve);
            rows.push(std::move(row));
        }
        doc["results"] = std::move(rows);
        artifacts.writeJson(doc);
    }
    if (artifacts.wantCsv()) {
        std::string csv = "scheme,lifetime_pec,crossed,fresh_mrber,"
                          "avg_erase_ms,avg_loops\n";
        for (const auto &r : results) {
            csv += schemeKindName(r.scheme);
            csv += ',' + std::to_string(r.lifetimePec);
            csv += r.crossed ? ",1" : ",0";
            csv += ',' + std::to_string(r.freshMrber);
            csv += ',' + std::to_string(r.avgEraseLatencyMs);
            csv += ',' + std::to_string(r.avgLoops) + '\n';
        }
        writeTextFile(artifacts.csvPath, csv);
    }
    return 0;
}
