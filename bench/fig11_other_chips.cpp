/**
 * @file
 * Reproduces Fig. 11: the erase characteristics of the two additional
 * chip types (2D TLC and 3D MLC) -- gamma/delta consistency and the
 * reliability impact of insufficient erasure -- showing AERO's method
 * generalizes beyond the primary 3D TLC population.
 * The two chip types run as independent thread-pool tasks (and each
 * experiment is chip-sharded internally); `--json`/`--csv` drop an
 * `aero-devchar/1` artifact, `--small` runs the regression-gate config.
 */

#include "bench_util.hh"
#include "devchar/experiments.hh"
#include "exp/sweep.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 11: erase characteristics of other chip types");
    const int farm_chips = artifacts.small ? 6 : 16;
    const int farm_blocks = artifacts.small ? 10 : 24;
    const std::uint64_t farm_seed = 0xfeed;
    const std::vector<ChipType> types = {ChipType::Tlc2d,
                                         ChipType::Mlc3d48L};
    Json journal_cfg = bench::farmJournalConfig(
        farm_chips, farm_blocks, farm_seed, artifacts.small);
    Json journal_types = Json::array();
    for (const ChipType type : types)
        journal_types.push(chipTypeName(type));
    journal_cfg["chip_types"] = std::move(journal_types);
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("fig11_other_chips",
                                               std::move(journal_cfg));
    const CampaignScope scope{journal.get()};
    const auto results = parallelMap(types, [&](ChipType type) {
        FarmConfig fc;
        fc.type = type;
        fc.numChips = farm_chips;
        fc.blocksPerChip = farm_blocks;
        fc.seed = farm_seed;
        return runFig11Experiment(
            fc, scope.with("chip_type", chipTypeName(type)));
    });
    if (artifacts.isWorker())
        artifacts.exitWorker();

    bench::DevcharReport report("fig11_other_chips",
                                {"chip", "kind", "n_ispe", "range"});
    report.spec["num_chips"] = farm_chips;
    report.spec["blocks_per_chip"] = farm_blocks;
    report.spec["seed"] = farm_seed;
    report.spec["small"] = artifacts.small;

    for (const auto &data : results) {
        const auto p = ChipParams::forType(data.type);
        std::printf("\n%s\n", chipTypeName(data.type));
        bench::rule();
        std::printf("(a) fail-bit constants: gamma %.0f (model %.0f), "
                    "delta %.0f (model %.0f)\n",
                    data.gammaEstimate, p.gamma, data.deltaEstimate,
                    p.delta);
        std::printf("(b) max MRBER after insufficient erasure:\n");
        std::printf("%7s | %6s | %9s | %5s | %8s\n", "N_ISPE", "range",
                    "max MRBER", "safe", "samples");
        for (const auto &row : data.reliability.insufficient) {
            if (row.samples < 3 || row.nIspe > 4 || row.range > 3)
                continue;
            std::printf("%7d | %6s | %9.1f | %5s | %8d\n", row.nIspe,
                        Ept::rangeLabel(row.range).c_str(),
                        row.maxMrber, row.safe ? "yes" : "NO",
                        row.samples);
        }

        Json consts = Json::object();
        consts["chip"] = chipTypeName(data.type);
        consts["kind"] = "constants";
        consts["gamma_estimate"] = data.gammaEstimate;
        consts["gamma_model"] = p.gamma;
        consts["delta_estimate"] = data.deltaEstimate;
        consts["delta_model"] = p.delta;
        report.addRow(std::move(consts));
        for (const auto &row : data.reliability.insufficient) {
            Json j = Json::object();
            j["chip"] = chipTypeName(data.type);
            j["kind"] = "insufficient";
            j["n_ispe"] = row.nIspe;
            j["range"] = row.range;
            j["samples"] = row.samples;
            j["max_mrber"] = row.maxMrber;
            j["safe"] = row.safe;
            report.addRow(std::move(j));
        }
    }
    bench::rule();
    bench::note("paper: gamma/delta consistent within each chip type; "
                "insufficient-erasure safety trends mirror 3D TLC");
    artifacts.writeDevchar(report);
    return 0;
}
