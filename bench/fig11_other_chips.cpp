/**
 * @file
 * Reproduces Fig. 11: the erase characteristics of the two additional
 * chip types (2D TLC and 3D MLC) -- gamma/delta consistency and the
 * reliability impact of insufficient erasure -- showing AERO's method
 * generalizes beyond the primary 3D TLC population.
 */

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main()
{
    bench::header("Figure 11: erase characteristics of other chip types");
    for (const auto type : {ChipType::Tlc2d, ChipType::Mlc3d48L}) {
        const auto data = runFig11Experiment(type, 0xfeed);
        const auto p = ChipParams::forType(type);
        std::printf("\n%s\n", chipTypeName(type));
        bench::rule();
        std::printf("(a) fail-bit constants: gamma %.0f (model %.0f), "
                    "delta %.0f (model %.0f)\n",
                    data.gammaEstimate, p.gamma, data.deltaEstimate,
                    p.delta);
        std::printf("(b) max MRBER after insufficient erasure:\n");
        std::printf("%7s | %6s | %9s | %5s | %8s\n", "N_ISPE", "range",
                    "max MRBER", "safe", "samples");
        for (const auto &row : data.reliability.insufficient) {
            if (row.samples < 3 || row.nIspe > 4 || row.range > 3)
                continue;
            std::printf("%7d | %6s | %9.1f | %5s | %8d\n", row.nIspe,
                        Ept::rangeLabel(row.range).c_str(),
                        row.maxMrber, row.safe ? "yes" : "NO",
                        row.samples);
        }
    }
    bench::rule();
    bench::note("paper: gamma/delta consistent within each chip type; "
                "insufficient-erasure safety trends mirror 3D TLC");
    return 0;
}
