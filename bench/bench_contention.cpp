/**
 * @file
 * Channel-arbitration performance trajectory. Replays the same trace
 * through the same drive under the legacy closed-form channel model and
 * under queued (event-driven) arbitration, and records what the extra
 * ChannelGrant/DieOpComplete events cost the simulator — the queued
 * model roughly doubles the event count per page op, and this bench pins
 * the actual multiple so it cannot silently grow.
 *
 * Emits an `aero-contention-bench/1` artifact (BENCH_contention.json in
 * CI). The gate (tests/perf/run_contention_gate.cmake) compares the
 * deterministic event counts and final ticks exactly — under *both*
 * arbitration models, so a behaviour change in either trips it — and
 * gates the relative simulation cost through a machine-normalized
 * threshold boolean, while machine-absolute rates are ignored.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "bench_util.hh"
#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace aero
{
namespace
{

using Clock = std::chrono::steady_clock;

struct ReplayResult
{
    double requestsPerSec = 0.0;      //!< best trial
    std::uint64_t eventsTotal = 0;    //!< deterministic
    std::uint64_t finalTick = 0;      //!< deterministic
    std::uint64_t erases = 0;         //!< deterministic
    std::uint64_t hostGrants = 0;     //!< deterministic (queued only)
    std::uint64_t gcGrants = 0;       //!< deterministic (queued only)
};

double
replayOnce(Arbitration arb, const Trace &trace, ReplayResult &out)
{
    SsdConfig cfg = SsdConfig::tiny();
    // Queued arbitration requires a power-of-two page count; tiny's 32
    // already is, so both models run the identical drive.
    cfg.arbitration = arb;
    cfg.seed = 99;

    Ssd ssd(cfg);
    const auto t0 = Clock::now();
    ssd.run(trace);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    out.requestsPerSec = std::max(
        out.requestsPerSec, static_cast<double>(trace.size()) / secs);
    out.eventsTotal = ssd.eventQueue().processed();
    out.finalTick = ssd.eventQueue().now();
    out.erases = ssd.metrics().erases;
    out.hostGrants = ssd.metrics().hostChannelGrants;
    out.gcGrants = ssd.metrics().gcChannelGrants;
    return secs;
}

Json
replayRow(const char *arbitration, const ReplayResult &r,
          std::uint64_t requests)
{
    Json row = Json::object();
    row["metric"] = "replay";
    row["arbitration"] = arbitration;
    row["requests_per_sec"] = r.requestsPerSec;
    row["requests_total"] = requests;
    row["events_total"] = r.eventsTotal;
    row["final_tick"] = r.finalTick;
    row["erases"] = r.erases;
    row["host_channel_grants"] = r.hostGrants;
    row["gc_channel_grants"] = r.gcGrants;
    row["events_per_request"] = static_cast<double>(r.eventsTotal) /
                                static_cast<double>(requests);
    return row;
}

int
benchMain(int argc, char **argv)
{
    const auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true);

    const int trials = artifacts.small ? 7 : 11;
    const std::uint64_t requests = artifacts.small ? 6000 : 20000;

    bench::header("Channel-arbitration cost (legacy vs queued replay)");

    SyntheticConfig wc;
    wc.spec = workloadByName("prxy");
    wc.footprintPages = SsdConfig::tiny().logicalPages();
    wc.numRequests = requests;
    wc.seed = 31;
    const Trace trace = generateTrace(wc);

    // The two models run *interleaved* per trial and the slowdown is the
    // median per-trial ratio: a loaded machine inflates both halves of
    // the same trial window, and the median sheds the trials where the
    // scheduler hit one side only — the gated multiple stays a property
    // of the code, not of what else the host was running.
    ReplayResult legacy, queued;
    std::vector<double> ratios;
    for (int t = 0; t < trials; ++t) {
        const double secs_legacy =
            replayOnce(Arbitration::Legacy, trace, legacy);
        const double secs_queued =
            replayOnce(Arbitration::Queued, trace, queued);
        ratios.push_back(secs_queued / secs_legacy);
    }
    std::sort(ratios.begin(), ratios.end());
    const double slowdown = ratios[ratios.size() / 2];
    const double event_ratio = static_cast<double>(queued.eventsTotal) /
                               static_cast<double>(legacy.eventsTotal);

    std::printf("  %-8s %12s %14s %12s\n", "model", "requests/s",
                "events total", "final tick");
    std::printf("  %-8s %12.0f %14llu %12llu\n", "legacy",
                legacy.requestsPerSec,
                static_cast<unsigned long long>(legacy.eventsTotal),
                static_cast<unsigned long long>(legacy.finalTick));
    std::printf("  %-8s %12.0f %14llu %12llu\n", "queued",
                queued.requestsPerSec,
                static_cast<unsigned long long>(queued.eventsTotal),
                static_cast<unsigned long long>(queued.finalTick));
    std::printf("  queued costs %.2fx the wall clock and %.2fx the "
                "events of legacy\n",
                slowdown, event_ratio);
    bench::note("the slowdown threshold is machine-normalized (legacy "
                "re-measured per run); raw rates are not gated");

    Json doc = Json::object();
    doc["schema"] = "aero-contention-bench/1";
    doc["bench"] = "bench_contention";
    Json axes = Json::array();
    axes.push("metric");
    axes.push("arbitration");
    doc["axes"] = std::move(axes);

    Json spec = Json::object();
    spec["small"] = artifacts.small;
    spec["trials"] = trials;
    spec["requests"] = requests;
    doc["spec"] = std::move(spec);

    Json results = Json::array();
    results.push(replayRow("legacy", legacy, requests));
    results.push(replayRow("queued", queued, requests));
    doc["results"] = std::move(results);

    Json summary = Json::object();
    summary["event_ratio_queued_over_legacy"] = event_ratio;
    summary["replay_slowdown_queued"] = slowdown;
    // Gated form: queued arbitration pays for explicit bus queueing with
    // more events, but it must stay the same order of magnitude — a >3x
    // wall-clock multiple means the grant path regressed structurally.
    summary["queued_slowdown_le_3"] =
        static_cast<std::uint64_t>(slowdown <= 3.0 ? 1 : 0);
    doc["summary"] = std::move(summary);

    artifacts.writeJson(doc);
    if (artifacts.wantCsv())
        writeTextFile(artifacts.csvPath,
                      bench::devcharCsv(doc["results"]));
    return 0;
}

} // namespace
} // namespace aero

int
main(int argc, char **argv)
{
    return aero::benchMain(argc, argv);
}
