/**
 * @file
 * Reproduces Table 4: average read/write latency and IOPS of the four
 * non-baseline schemes, normalized to Baseline, geometric-mean across
 * the eleven workloads at PEC {0.5K, 2.5K, 4.5K}.
 *
 * Paper reference: all schemes ~100% except DPES, whose write latency
 * grows to 110.8% / 135.6% (and IOPS drops) while its voltage scaling is
 * active; i-ISPE is not evaluated at 4.5K (cannot meet the requirement).
 */

#include <cmath>
#include <map>

#include "bench_util.hh"
#include "devchar/simstudy.hh"

using namespace aero;

int
main()
{
    bench::header("Table 4: average I/O performance (normalized %)");
    const auto requests = defaultSimRequests();
    std::printf("requests/run: %llu\n",
                static_cast<unsigned long long>(requests));
    bench::rule();
    std::printf("%-10s | %6s | %10s | %11s | %9s\n", "scheme", "PEC",
                "avg read", "avg write", "IOPS");
    bench::rule();
    struct Acc { double gr = 0, gw = 0, gi = 0; int n = 0; };
    std::map<std::pair<int, int>, Acc> acc;  // (scheme, pec index)
    const auto &pecs = paperPecPoints();
    for (std::size_t pi = 0; pi < pecs.size(); ++pi) {
        for (const auto &wl : table3Workloads()) {
            SimResult base;
            for (std::size_t si = 0; si < allSchemes().size(); ++si) {
                SimPoint pt;
                pt.workload = wl.name;
                pt.pec = pecs[pi];
                pt.requests = requests;
                pt.scheme = allSchemes()[si];
                const auto r = runSimPoint(pt);
                if (si == 0) {
                    base = r;
                    continue;
                }
                auto &a = acc[{static_cast<int>(si),
                               static_cast<int>(pi)}];
                a.gr += std::log(r.avgReadUs / base.avgReadUs);
                a.gw += std::log(r.avgWriteUs / base.avgWriteUs);
                a.gi += std::log(r.iops / base.iops);
                a.n += 1;
            }
        }
    }
    for (std::size_t si = 1; si < allSchemes().size(); ++si) {
        for (std::size_t pi = 0; pi < pecs.size(); ++pi) {
            const auto &a = acc[{static_cast<int>(si),
                                 static_cast<int>(pi)}];
            std::printf("%-10s | %6.0f | %9.1f%% | %10.1f%% | %8.1f%%\n",
                        schemeKindName(allSchemes()[si]), pecs[pi],
                        100.0 * std::exp(a.gr / a.n),
                        100.0 * std::exp(a.gw / a.n),
                        100.0 * std::exp(a.gi / a.n));
        }
        bench::rule();
    }
    bench::note("paper: DPES write latency 110.8%/135.6% at 0.5K/2.5K, "
                "back to 100% at 4.5K; everything else ~100%");
    return 0;
}
