/**
 * @file
 * Reproduces Table 4: average read/write latency and IOPS of the four
 * non-baseline schemes, normalized to Baseline, geometric-mean across
 * the eleven workloads at PEC {0.5K, 2.5K, 4.5K}. The 11 x 5 x 3 grid
 * runs through SweepRunner; `--json`/`--csv` drop the raw rows.
 *
 * Paper reference: all schemes ~100% except DPES, whose write latency
 * grows to 110.8% / 135.6% (and IOPS drops) while its voltage scaling is
 * active; i-ISPE is not evaluated at 4.5K (cannot meet the requirement).
 */

#include <cmath>

#include "bench_util.hh"
#include "exp/checkpoint.hh"
#include "exp/sweep.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Table 4: average I/O performance (normalized %)");

    // --small: the regression-gate grid (three workloads, two PEC
    // points, fixed request count so the baselines are hermetic).
    SweepBuilder builder;
    if (artifacts.small) {
        builder.workloads({"prxy", "hm", "usr"})
            .allSchemes()
            .pecs({500.0, 2500.0})
            .requests(2000);
    } else {
        builder.allTable3Workloads()
            .allSchemes()
            .paperPecs()
            .requests(defaultSimRequests());
    }
    const SweepSpec spec = builder.build();
    std::printf("requests/run: %llu, %zu points on %d threads\n",
                static_cast<unsigned long long>(spec.requests), spec.size(),
                SweepRunner().threads());
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal(
        "tab04_avg_performance", SweepCheckpoint::configOf(spec));
    std::vector<SimResult> results;
    if (journal) {
        SweepCheckpoint checkpoint(*journal, spec);
        results = SweepRunner().run(spec, checkpoint);
    } else {
        results = SweepRunner().run(spec);
    }
    if (artifacts.isWorker())
        artifacts.exitWorker();
    artifacts.writeSweep(spec, results);

    bench::rule();
    std::printf("%-10s | %6s | %10s | %11s | %9s\n", "scheme", "PEC",
                "avg read", "avg write", "IOPS");
    bench::rule();
    for (std::size_t si = 1; si < spec.schemes.size(); ++si) {
        for (std::size_t pi = 0; pi < spec.pecs.size(); ++pi) {
            double gr = 0, gw = 0, gi = 0;
            for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi) {
                const auto &base =
                    results[spec.index(pi, 0, wi, 0, 0, 0, 0)];
                const auto &r =
                    results[spec.index(pi, 0, wi, si, 0, 0, 0)];
                gr += std::log(r.avgReadUs / base.avgReadUs);
                gw += std::log(r.avgWriteUs / base.avgWriteUs);
                gi += std::log(r.iops / base.iops);
            }
            const double n = static_cast<double>(spec.workloads.size());
            std::printf("%-10s | %6.0f | %9.1f%% | %10.1f%% | %8.1f%%\n",
                        schemeKindName(spec.schemes[si]), spec.pecs[pi],
                        100.0 * std::exp(gr / n), 100.0 * std::exp(gw / n),
                        100.0 * std::exp(gi / n));
        }
        bench::rule();
    }
    bench::note("paper: DPES write latency 110.8%/135.6% at 0.5K/2.5K, "
                "back to 100% at 4.5K; everything else ~100%");
    return 0;
}
