/**
 * @file
 * Reproduces Fig. 7: the fail-bit count as a function of accumulated tEP
 * in the final erase loop, for N_ISPE = 2..5. The paper's observations:
 * F decreases almost linearly with slope delta (~5000) per 0.5 ms, and
 * settles at a consistent floor gamma (<< delta) when 0.5 ms remains.
 * Chip-sharded across the sweep thread pool; `--json`/`--csv` drop an
 * `aero-devchar/1` artifact, `--small` runs the regression-gate config.
 */

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 7: fail-bit count vs accumulated tEP");
    FarmConfig fc;
    fc.numChips = artifacts.small ? 8 : 24;
    fc.blocksPerChip = artifacts.small ? 10 : 24;
    const std::vector<double> pecs = {1500, 2500, 3500, 4500};
    Json journal_cfg = bench::farmJournalConfig(
        fc.numChips, fc.blocksPerChip, fc.seed, artifacts.small);
    journal_cfg["pecs"] = bench::jsonArray(pecs);
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("fig07_failbits_vs_tep",
                                               std::move(journal_cfg));
    const auto data = runFig7Experiment(fc, pecs, {journal.get()});
    if (artifacts.isWorker())
        artifacts.exitWorker();
    const auto p = ChipParams::tlc3d();
    std::printf("max F(N_ISPE) by remaining erase time "
                "(columns: slots of 0.5 ms still needed)\n");
    bench::rule();
    std::printf("%7s", "N_ISPE");
    for (int r = 7; r >= 1; --r)
        std::printf(" | %6.1fms", 0.5 * r);
    std::printf("\n");
    bench::rule();
    for (const auto &row : data.rows) {
        if (row.nIspe < 2 || row.nIspe > 5)
            continue;
        std::printf("%7d", row.nIspe);
        for (int r = 7; r >= 1; --r) {
            if (row.samples[r] > 0)
                std::printf(" | %8.0f", row.maxFailByRemaining[r]);
            else
                std::printf(" | %8s", "-");
        }
        std::printf("\n");
    }
    bench::rule();
    std::printf("estimated gamma = %.0f (model %.0f), "
                "delta = %.0f (model %.0f)\n",
                data.gammaEstimate, p.gamma, data.deltaEstimate, p.delta);
    bench::note("paper: F decreases by ~delta per 0.5 ms in all groups "
                "and floors at gamma << delta");

    bench::DevcharReport report("fig07_failbits_vs_tep",
                                {"n_ispe", "remaining_slots"});
    report.spec["num_chips"] = fc.numChips;
    report.spec["blocks_per_chip"] = fc.blocksPerChip;
    report.spec["seed"] = fc.seed;
    report.spec["small"] = artifacts.small;
    report.summary["gamma_estimate"] = data.gammaEstimate;
    report.summary["delta_estimate"] = data.deltaEstimate;
    report.summary["gamma_model"] = p.gamma;
    report.summary["delta_model"] = p.delta;
    for (const auto &row : data.rows) {
        for (int r = 1; r <= 7; ++r) {
            if (row.samples[r] == 0)
                continue;
            Json j = Json::object();
            j["n_ispe"] = row.nIspe;
            j["remaining_slots"] = r;
            j["max_fail"] = row.maxFailByRemaining[r];
            j["mean_fail"] = row.meanFailByRemaining[r];
            j["samples"] = row.samples[r];
            report.addRow(std::move(j));
        }
    }
    artifacts.writeDevchar(report);
    return 0;
}
