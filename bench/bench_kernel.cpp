/**
 * @file
 * Simulation-kernel performance trajectory. Unlike the figure benches,
 * this binary measures the *simulator itself*: raw event dispatch through
 * the tagged kernel (and through the compat std::function lane) across a
 * sweep of pending-set sizes, full-system replay throughput, and the
 * erase-path step rate. The pre-tagged kernel (bench/legacy_event_queue)
 * runs alongside as the reference, so the headline speedup is recomputed
 * on every machine the bench runs on instead of being a stale constant.
 * The sim-realistic pending regime is small — one in-flight operation
 * per chip plus the trace pump — which is why the sweep leads with small
 * sets and the headline row is pending=64.
 *
 * Emits an `aero-kernel-bench/1` JSON artifact (BENCH_kernel.json in CI).
 * The perf gate (tests/perf/run_perf_gate.cmake) diffs it against the
 * checked-in baseline: deterministic counts compare exactly, machine-
 * normalized speedups at a generous tolerance, and machine-absolute
 * rates are ignored.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hh"
#include "core/aero_scheme.hh"
#include "legacy_event_queue.hh"
#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace aero
{
namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct BenchScale
{
    int trials = 5;
    std::uint64_t dispatchEvents = 2048 * 1024;  //!< per trial, per batch
    std::uint64_t replayRequests = 20000;
    int eraseOps = 2000;    //!< erase operations per scheme
};

/** Pending-set sizes for the dispatch sweep (64 is the headline). */
constexpr int kPendingSweep[] = {16, 64, 256, 1024};

struct DispatchResult
{
    double meventsPerSec = 0.0;     //!< best trial
    std::uint64_t eventsTotal = 0;  //!< per trial (deterministic)
};

void
bumpCounter(void *ctx)
{
    *static_cast<std::uint64_t *>(ctx) += 1;
}

/**
 * Drive one queue flavour through the shared workload shape: fill the
 * pending set with scattered ticks, drain, repeat. `schedule(eq, base,
 * i, fired)` hides which lane/kernel is being measured.
 */
template <typename Queue, typename ScheduleFn>
DispatchResult
benchDispatch(const BenchScale &s, int batch, ScheduleFn schedule)
{
    const auto reps =
        static_cast<int>(s.dispatchEvents / static_cast<unsigned>(batch));
    DispatchResult out;
    for (int t = 0; t < s.trials; ++t) {
        Queue eq;
        std::uint64_t fired = 0;
        const auto t0 = Clock::now();
        for (int r = 0; r < reps; ++r) {
            const Tick base = eq.now();
            for (int i = 0; i < batch; ++i)
                schedule(eq, base + (i * 7919) % batch + 1, fired);
            eq.run();
        }
        const double secs = secondsSince(t0);
        AERO_CHECK(fired == static_cast<std::uint64_t>(reps) * batch,
                   "dispatch bench lost events");
        out.eventsTotal = fired;
        out.meventsPerSec =
            std::max(out.meventsPerSec,
                     static_cast<double>(fired) / secs / 1e6);
    }
    return out;
}

DispatchResult
benchTagged(const BenchScale &s, int batch)
{
    return benchDispatch<EventQueue>(
        s, batch, [](EventQueue &eq, Tick when, std::uint64_t &fired) {
            eq.scheduleTimerAt(when, &bumpCounter, &fired);
        });
}

DispatchResult
benchCompat(const BenchScale &s, int batch)
{
    return benchDispatch<EventQueue>(
        s, batch, [](EventQueue &eq, Tick when, std::uint64_t &fired) {
            eq.scheduleAt(when, [&fired] { ++fired; });
        });
}

DispatchResult
benchLegacy(const BenchScale &s, int batch)
{
    return benchDispatch<legacy::EventQueue>(
        s, batch,
        [](legacy::EventQueue &eq, Tick when, std::uint64_t &fired) {
            eq.scheduleAt(when, [&fired] { ++fired; });
        });
}

struct ReplayResult
{
    double requestsPerSec = 0.0;       //!< best trial
    std::uint64_t requestsTotal = 0;
    std::uint64_t eventsTotal = 0;     //!< eq.processed() (deterministic)
    std::uint64_t finalTick = 0;       //!< eq.now() (deterministic)
};

/** Full-system replay: trace admission through chip-op completions. */
ReplayResult
benchReplay(const BenchScale &s)
{
    SsdConfig cfg = SsdConfig::tiny();
    cfg.seed = 99;

    SyntheticConfig wc;
    wc.spec = workloadByName("prxy");
    wc.footprintPages = cfg.logicalPages();
    wc.numRequests = s.replayRequests;
    wc.seed = 31;
    const Trace trace = generateTrace(wc);

    ReplayResult out;
    out.requestsTotal = trace.size();
    const int replay_trials = std::max(2, s.trials / 2);
    for (int t = 0; t < replay_trials; ++t) {
        Ssd ssd(cfg);
        const auto t0 = Clock::now();
        ssd.run(trace);
        const double secs = secondsSince(t0);
        out.requestsPerSec =
            std::max(out.requestsPerSec,
                     static_cast<double>(trace.size()) / secs);
        out.eventsTotal = ssd.eventQueue().processed();
        out.finalTick = ssd.eventQueue().now();
    }
    return out;
}

struct EraseResult
{
    double nsPerStep = 0.0;          //!< elapsed / loops, best trial
    std::uint64_t erasesTotal = 0;   //!< per trial (deterministic)
    std::uint64_t loopsTotal = 0;    //!< per trial (deterministic)
};

/** Erase-path step rate: session begin / nextSegment / outcome. */
EraseResult
benchEraseSteps(SchemeKind kind, const BenchScale &s)
{
    const auto params = ChipParams::forType(ChipType::Tlc3d48L);
    const ChipGeometry geom{1, 64, 8};
    EraseResult out;
    double best_secs = 0.0;
    for (int t = 0; t < s.trials; ++t) {
        NandChip chip(params, geom, 2024, 1.0);
        for (int b = 0; b < chip.numBlocks(); ++b)
            chip.ageBaseline(static_cast<BlockId>(b), 2000);
        SchemeOptions opts;
        opts.seed = 7;
        auto scheme = makeEraseScheme(kind, chip, opts);
        std::uint64_t loops = 0;
        const auto t0 = Clock::now();
        for (int i = 0; i < s.eraseOps; ++i) {
            const auto blk =
                static_cast<BlockId>(i % chip.numBlocks());
            loops += eraseNow(*scheme, blk).loops;
        }
        const double secs = secondsSince(t0);
        out.erasesTotal = static_cast<std::uint64_t>(s.eraseOps);
        out.loopsTotal = loops;
        if (best_secs == 0.0 || secs < best_secs)
            best_secs = secs;
    }
    out.nsPerStep =
        best_secs * 1e9 / static_cast<double>(out.loopsTotal);
    return out;
}

Json
dispatchRow(const char *kernel, int pending, const DispatchResult &r)
{
    Json row = Json::object();
    row["metric"] = "dispatch";
    row["kernel"] = kernel;
    row["pending"] = pending;
    row["mevents_per_sec"] = r.meventsPerSec;
    row["events_total"] = r.eventsTotal;
    return row;
}

int
benchMain(int argc, char **argv)
{
    const auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true);

    BenchScale s;
    if (artifacts.small) {
        s.trials = 3;
        s.dispatchEvents = 512 * 1024;
        s.replayRequests = 6000;
        s.eraseOps = 500;
    }

    bench::header("Simulation-kernel performance (tagged-event kernel)");

    Json results = Json::array();
    Json summary = Json::object();
    double headline = 0.0;
    double minSpeedup = 0.0;
    std::printf("  raw dispatch (Mevents/s, best of %d trials)\n",
                s.trials);
    std::printf("  %8s %10s %10s %10s %10s\n", "pending", "tagged",
                "compat", "legacy", "speedup");
    for (const int pending : kPendingSweep) {
        const DispatchResult tagged = benchTagged(s, pending);
        const DispatchResult compat = benchCompat(s, pending);
        const DispatchResult legacy = benchLegacy(s, pending);
        const double speedup =
            tagged.meventsPerSec / legacy.meventsPerSec;
        std::printf("  %8d %10.2f %10.2f %10.2f %9.2fx\n", pending,
                    tagged.meventsPerSec, compat.meventsPerSec,
                    legacy.meventsPerSec, speedup);
        results.push(dispatchRow("tagged", pending, tagged));
        results.push(dispatchRow("compat", pending, compat));
        results.push(dispatchRow("legacy", pending, legacy));
        summary["dispatch_speedup_p" + std::to_string(pending)] = speedup;
        if (pending == 64)
            headline = speedup;
        if (minSpeedup == 0.0 || speedup < minSpeedup)
            minSpeedup = speedup;
    }
    // The gated form of the speedups: threshold booleans compare exactly
    // and are machine-portable, where the raw ratios (recorded above,
    // ignored by the gate) swing with cache sizes and CPU contention. A
    // kernel change that costs >30% of the ~2x headline trips the first;
    // one that loses the advantage outright trips the second.
    summary["speedup_headline_ge_1_5"] =
        static_cast<std::uint64_t>(headline >= 1.5 ? 1 : 0);
    summary["speedup_all_ge_1_2"] =
        static_cast<std::uint64_t>(minSpeedup >= 1.2 ? 1 : 0);

    const ReplayResult replay = benchReplay(s);
    const EraseResult eraseBase = benchEraseSteps(SchemeKind::Baseline, s);
    const EraseResult eraseAero = benchEraseSteps(SchemeKind::Aero, s);

    std::printf("  full replay   %10.0f requests/s  (%llu events, "
                "%.1f events/request)\n",
                replay.requestsPerSec,
                static_cast<unsigned long long>(replay.eventsTotal),
                static_cast<double>(replay.eventsTotal) /
                    static_cast<double>(replay.requestsTotal));
    std::printf("  erase steps   baseline %7.1f ns/step   aero %7.1f "
                "ns/step\n",
                eraseBase.nsPerStep, eraseAero.nsPerStep);
    std::printf("  headline (pending=64): %.2fx vs pre-tagged kernel\n",
                headline);
    bench::note("speedups are machine-normalized (legacy reference "
                "re-measured per run); raw rates are not gated");

    Json doc = Json::object();
    doc["schema"] = "aero-kernel-bench/1";
    doc["bench"] = "bench_kernel";
    Json axes = Json::array();
    axes.push("metric");
    axes.push("kernel");
    axes.push("pending");
    doc["axes"] = std::move(axes);

    Json spec = Json::object();
    spec["small"] = artifacts.small;
    spec["trials"] = s.trials;
    spec["dispatch_events"] = s.dispatchEvents;
    spec["replay_requests"] = s.replayRequests;
    spec["erase_ops"] = s.eraseOps;
    doc["spec"] = std::move(spec);

    {
        Json row = Json::object();
        row["metric"] = "replay";
        row["requests_per_sec"] = replay.requestsPerSec;
        row["requests_total"] = replay.requestsTotal;
        row["events_total"] = replay.eventsTotal;
        row["final_tick"] = replay.finalTick;
        row["events_per_request"] =
            static_cast<double>(replay.eventsTotal) /
            static_cast<double>(replay.requestsTotal);
        results.push(std::move(row));
    }
    const std::pair<const char *, const EraseResult *> erows[] = {
        {"erase_baseline", &eraseBase},
        {"erase_aero", &eraseAero},
    };
    for (const auto &[name, r] : erows) {
        Json row = Json::object();
        row["metric"] = name;
        row["ns_per_erase_step"] = r->nsPerStep;
        row["erases_total"] = r->erasesTotal;
        row["loops_total"] = r->loopsTotal;
        results.push(std::move(row));
    }
    doc["results"] = std::move(results);
    doc["summary"] = std::move(summary);

    artifacts.writeJson(doc);
    if (artifacts.wantCsv())
        writeTextFile(artifacts.csvPath,
                      bench::devcharCsv(doc["results"]));
    return 0;
}

} // namespace
} // namespace aero

int
main(int argc, char **argv)
{
    return aero::benchMain(argc, argv);
}
