/**
 * @file
 * Reproduces Fig. 14: normalized 99.99th and 99.9999th percentile read
 * latency for the eleven Table-3 workloads at PEC {0.5K, 2.5K, 4.5K},
 * across the five erase schemes (all normalized to Baseline).
 *
 * The whole 11 x 5 x 3 x 3-seed grid is declared once as a SweepSpec and
 * executed by SweepRunner across AERO_SWEEP_THREADS worker threads; the
 * printed table walks the deterministic result order via SweepSpec::index.
 * `--json`/`--csv` drop the raw per-point rows as machine-readable
 * artifacts.
 *
 * Paper reference: AERO reduces the two tail percentiles by 22% / 26% on
 * average, with benefits of <26,25,13>% / <43,23,5>% at the three PEC
 * points; DPES sometimes regresses (write-latency penalty); i-ISPE
 * matches Baseline at 0.5K where no loop can be skipped.
 *
 * Request count per run: AERO_SIM_REQUESTS (default 60000).
 */

#include <cmath>

#include "bench_util.hh"
#include "exp/checkpoint.hh"
#include "exp/sweep.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 14: read tail latency (normalized to Baseline)");

    // --small: the regression-gate grid — three workloads, two PEC
    // points, one seed, a fixed request count (not AERO_SIM_REQUESTS,
    // so the golden baselines are hermetic).
    SweepBuilder builder;
    if (artifacts.small) {
        builder.workloads({"prxy", "hm", "usr"})
            .allSchemes()
            .pecs({500.0, 2500.0})
            .requests(2000);
    } else {
        constexpr int kSeeds = 3;  // tail noise reduction
        builder.allTable3Workloads()
            .allSchemes()
            .paperPecs()
            .repeats(kSeeds)
            .requests(defaultSimRequests());
    }
    const SweepSpec spec = builder.build();
    std::printf("requests/run: %llu (env AERO_SIM_REQUESTS), "
                "%zu points on %d threads (env AERO_SWEEP_THREADS)\n",
                static_cast<unsigned long long>(spec.requests), spec.size(),
                SweepRunner().threads());
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal(
        "fig14_tail_latency", SweepCheckpoint::configOf(spec));
    std::vector<SimResult> results;
    if (journal) {
        SweepCheckpoint checkpoint(*journal, spec);
        results = SweepRunner().run(spec, checkpoint);
    } else {
        results = SweepRunner().run(spec);
    }
    if (artifacts.isWorker())
        artifacts.exitWorker();
    artifacts.writeSweep(spec, results);

    // Geometric mean over seeds of one result metric.
    const auto geoSeeds = [&](std::size_t pi, std::size_t wi,
                              std::size_t si, double SimResult::*metric) {
        double acc = 0.0;
        for (std::size_t se = 0; se < spec.seeds.size(); ++se)
            acc += std::log(results[spec.index(pi, 0, wi, si, 0, 0, se)].*
                            metric);
        return std::exp(acc / static_cast<double>(spec.seeds.size()));
    };

    for (std::size_t pi = 0; pi < spec.pecs.size(); ++pi) {
        std::printf("\nPEC = %.1fK\n", spec.pecs[pi] / 1000.0);
        bench::rule();
        std::printf("%-7s", "wl");
        for (const auto k : spec.schemes)
            std::printf(" | %9s", schemeKindName(k));
        std::printf("   (p99.99 / p99.9999)\n");
        bench::rule();
        // Geometric means across workloads, per scheme.
        std::vector<std::pair<double, double>> geo(spec.schemes.size());
        for (std::size_t wi = 0; wi < spec.workloads.size(); ++wi) {
            const double base9999 =
                geoSeeds(pi, wi, 0, &SimResult::p9999Us);
            const double base6 =
                geoSeeds(pi, wi, 0, &SimResult::p999999Us);
            std::printf("%-7s", spec.workloads[wi].c_str());
            for (std::size_t si = 0; si < spec.schemes.size(); ++si) {
                const double n9999 =
                    geoSeeds(pi, wi, si, &SimResult::p9999Us) / base9999;
                const double n6 =
                    geoSeeds(pi, wi, si, &SimResult::p999999Us) / base6;
                std::printf(" | %4.2f %4.2f", n9999, n6);
                geo[si].first += std::log(n9999);
                geo[si].second += std::log(n6);
            }
            std::printf("\n");
        }
        bench::rule();
        std::printf("%-7s", "G.M.");
        const double n = static_cast<double>(spec.workloads.size());
        for (const auto &[g1, g2] : geo)
            std::printf(" | %4.2f %4.2f", std::exp(g1 / n),
                        std::exp(g2 / n));
        std::printf("\n");
    }
    bench::note("paper G.M. for AERO: p99.9999 0.57/0.77/0.95 at "
                "0.5K/2.5K/4.5K; DPES ~1.0 or worse; i-ISPE ~1.0 at 0.5K");
    return 0;
}
