/**
 * @file
 * Reproduces Fig. 14: normalized 99.99th and 99.9999th percentile read
 * latency for the eleven Table-3 workloads at PEC {0.5K, 2.5K, 4.5K},
 * across the five erase schemes (all normalized to Baseline).
 *
 * Paper reference: AERO reduces the two tail percentiles by 22% / 26% on
 * average, with benefits of <26,25,13>% / <43,23,5>% at the three PEC
 * points; DPES sometimes regresses (write-latency penalty); i-ISPE
 * matches Baseline at 0.5K where no loop can be skipped.
 *
 * Request count per run: AERO_SIM_REQUESTS (default 60000).
 */

#include <map>

#include "bench_util.hh"
#include "devchar/simstudy.hh"

using namespace aero;

int
main()
{
    bench::header("Figure 14: read tail latency (normalized to Baseline)");
    const auto requests = defaultSimRequests();
    std::printf("requests/run: %llu (env AERO_SIM_REQUESTS)\n",
                static_cast<unsigned long long>(requests));

    for (const double pec : paperPecPoints()) {
        std::printf("\nPEC = %.1fK\n", pec / 1000.0);
        bench::rule();
        std::printf("%-7s", "wl");
        for (const auto k : allSchemes())
            std::printf(" | %9s", schemeKindName(k));
        std::printf("   (p99.99 / p99.9999)\n");
        bench::rule();
        // Geometric means across workloads, per scheme.
        std::map<SchemeKind, std::pair<double, double>> geo;
        std::map<SchemeKind, int> geo_n;
        constexpr int kSeeds = 3;  // tail noise reduction
        for (const auto &wl : table3Workloads()) {
            double base9999 = 0.0, base6 = 0.0;
            std::printf("%-7s", wl.name.c_str());
            for (const auto k : allSchemes()) {
                double g9999 = 0.0, g6 = 0.0;
                for (int seed = 0; seed < kSeeds; ++seed) {
                    SimPoint pt;
                    pt.workload = wl.name;
                    pt.scheme = k;
                    pt.pec = pec;
                    pt.requests = requests;
                    pt.seed = 7 + 1000ULL * seed;
                    const auto r = runSimPoint(pt);
                    g9999 += std::log(r.p9999Us);
                    g6 += std::log(r.p999999Us);
                }
                const double p9999 = std::exp(g9999 / kSeeds);
                const double p6 = std::exp(g6 / kSeeds);
                if (k == SchemeKind::Baseline) {
                    base9999 = p9999;
                    base6 = p6;
                }
                const double n9999 = p9999 / base9999;
                const double n6 = p6 / base6;
                std::printf(" | %4.2f %4.2f", n9999, n6);
                auto &[g1, g2] = geo[k];
                g1 += std::log(n9999);
                g2 += std::log(n6);
                geo_n[k] += 1;
            }
            std::printf("\n");
        }
        bench::rule();
        std::printf("%-7s", "G.M.");
        for (const auto k : allSchemes()) {
            const auto &[g1, g2] = geo[k];
            std::printf(" | %4.2f %4.2f", std::exp(g1 / geo_n[k]),
                        std::exp(g2 / geo_n[k]));
        }
        std::printf("\n");
    }
    bench::note("paper G.M. for AERO: p99.9999 0.57/0.77/0.95 at "
                "0.5K/2.5K/4.5K; DPES ~1.0 or worse; i-ISPE ~1.0 at 0.5K");
    return 0;
}
