/**
 * @file
 * Ablation study of AERO's three design ingredients (DESIGN.md calls for
 * this; the paper motivates each in section 4 but only evaluates the
 * CONS/full pair):
 *
 *   FELP only          - multi-loop prediction, no shallow probe, no
 *                        margin spending (AERO-CONS without shallow)
 *   + shallow erasure  - AERO-CONS as evaluated in the paper
 *   + ECC margin       - full AERO
 *
 * plus the multi-plane composition of section 6: how much of AERO's
 * latency benefit survives when 4 blocks erase in lock-step and the worst
 * block gates the operation.
 */

#include "bench_util.hh"
#include "core/aero_scheme.hh"
#include "erase/baseline_ispe.hh"
#include "erase/multi_plane.hh"
#include "nand/population.hh"

using namespace aero;

namespace
{

struct Variant
{
    const char *name;
    bool shallow;
    bool margin;
};

void
runSinglePlane()
{
    const Variant variants[] = {
        {"FELP only", false, false},
        {"+ shallow erasure", true, false},
        {"+ ECC margin (AERO)", true, true},
    };
    std::printf("per-erase latency / damage vs Baseline, 300 P/E cycles\n");
    bench::rule();
    std::printf("%-22s", "variant");
    for (const double pec : {500.0, 2500.0})
        std::printf(" | PEC %4.0f: lat    dmg", pec);
    std::printf("\n");
    bench::rule();
    for (const auto &v : variants) {
        std::printf("%-22s", v.name);
        for (const double pec : {500.0, 2500.0}) {
            NandChip base_chip(ChipParams::tlc3d(),
                               ChipGeometry{1, 24, 8}, 99);
            NandChip aero_chip(ChipParams::tlc3d(),
                               ChipGeometry{1, 24, 8}, 99);
            for (int b = 0; b < base_chip.numBlocks(); ++b) {
                base_chip.ageBaseline(b, static_cast<int>(pec));
                aero_chip.ageBaseline(b, static_cast<int>(pec));
            }
            BaselineIspe base(base_chip, SchemeOptions{});
            SchemeOptions opts;
            opts.shallowErasure = v.shallow;
            AeroScheme aero(aero_chip, opts, v.margin,
                            Ept::canonical(aero_chip.params()));
            double lat_b = 0, lat_a = 0, dmg_b = 0, dmg_a = 0;
            for (int round = 0; round < 300; ++round) {
                for (int b = 0; b < base_chip.numBlocks(); ++b) {
                    const auto ob =
                        eraseNow(base, static_cast<BlockId>(b));
                    const auto oa =
                        eraseNow(aero, static_cast<BlockId>(b));
                    lat_b += ticksToMs(ob.latency);
                    lat_a += ticksToMs(oa.latency);
                    dmg_b += ob.damage;
                    dmg_a += oa.damage;
                }
            }
            std::printf(" | %12.2f %6.2f", lat_a / lat_b, dmg_a / dmg_b);
        }
        std::printf("\n");
    }
    bench::rule();
}

void
runMultiPlane()
{
    std::printf("\nmulti-plane composition (4 blocks in lock-step, "
                "PEC 2500)\n");
    bench::rule();
    std::printf("%-10s | %12s | %12s | %10s\n", "scheme",
                "joint [ms]", "serial [ms]", "dmg ratio");
    for (const auto kind : {SchemeKind::Baseline, SchemeKind::Aero}) {
        NandChip chip(ChipParams::tlc3d(), ChipGeometry{4, 16, 8}, 7);
        for (int b = 0; b < chip.numBlocks(); ++b)
            chip.ageBaseline(b, 2500);
        auto scheme = makeEraseScheme(kind, chip, SchemeOptions{});
        double joint_ms = 0, serial_ms = 0, dmg = 0;
        int ops = 0;
        for (int round = 0; round < 8; ++round) {
            for (int group = 0; group < 16; ++group) {
                std::vector<BlockId> blocks;
                for (int pl = 0; pl < 4; ++pl)
                    blocks.push_back(
                        static_cast<BlockId>(pl * 16 + group));
                const auto out =
                    MultiPlaneErase::eraseNow(*scheme, blocks);
                joint_ms += ticksToMs(out.latency);
                serial_ms += ticksToMs(out.serialLatency);
                dmg += out.totalDamage;
                ops += 1;
            }
        }
        static double base_dmg = 0.0;
        if (kind == SchemeKind::Baseline)
            base_dmg = dmg;
        std::printf("%-10s | %12.2f | %12.2f | %10.2f\n",
                    schemeKindName(kind), joint_ms / ops,
                    serial_ms / ops,
                    base_dmg > 0 ? dmg / base_dmg : 1.0);
    }
    bench::rule();
    bench::note("paper section 6: the worst block gates joint latency, "
                "but inhibition preserves AERO's full damage benefit");
}

} // namespace

int
main()
{
    bench::header("Ablation: AERO's ingredients and multi-plane erase");
    runSinglePlane();
    runMultiPlane();
    return 0;
}
