/**
 * @file
 * Ablation study of AERO's three design ingredients (DESIGN.md calls for
 * this; the paper motivates each in section 4 but only evaluates the
 * CONS/full pair):
 *
 *   FELP only          - multi-loop prediction, no shallow probe, no
 *                        margin spending (AERO-CONS without shallow)
 *   + shallow erasure  - AERO-CONS as evaluated in the paper
 *   + ECC margin       - full AERO
 *
 * plus the multi-plane composition of section 6: how much of AERO's
 * latency benefit survives when 4 blocks erase in lock-step and the worst
 * block gates the operation. The per-(variant, PEC) cells are independent
 * and fan out over parallelMap; comparison schemes are built through the
 * string-keyed EraseSchemeRegistry; `--json` drops all the ratios and
 * `--csv` the single-plane cells.
 */

#include "bench_util.hh"
#include "core/aero_scheme.hh"
#include "erase/multi_plane.hh"
#include "erase/scheme_registry.hh"
#include "exp/sweep.hh"
#include "nand/population.hh"

using namespace aero;

namespace
{

struct Variant
{
    const char *name;
    bool shallow;
    bool margin;
};

constexpr Variant kVariants[] = {
    {"FELP only", false, false},
    {"+ shallow erasure", true, false},
    {"+ ECC margin (AERO)", true, true},
};

constexpr double kPecs[] = {500.0, 2500.0};

struct SingleCell
{
    double latRatio = 0.0;
    double dmgRatio = 0.0;
};

SingleCell
runSingleCell(const Variant &v, double pec)
{
    NandChip base_chip(ChipParams::tlc3d(), ChipGeometry{1, 24, 8}, 99);
    NandChip aero_chip(ChipParams::tlc3d(), ChipGeometry{1, 24, 8}, 99);
    for (int b = 0; b < base_chip.numBlocks(); ++b) {
        base_chip.ageBaseline(b, static_cast<int>(pec));
        aero_chip.ageBaseline(b, static_cast<int>(pec));
    }
    const auto base = EraseSchemeRegistry::instance().make(
        "Baseline", base_chip, SchemeOptions{});
    SchemeOptions opts;
    opts.shallowErasure = v.shallow;
    AeroScheme aero(aero_chip, opts, v.margin,
                    Ept::canonical(aero_chip.params()));
    double lat_b = 0, lat_a = 0, dmg_b = 0, dmg_a = 0;
    for (int round = 0; round < 300; ++round) {
        for (int b = 0; b < base_chip.numBlocks(); ++b) {
            const auto ob = eraseNow(*base, static_cast<BlockId>(b));
            const auto oa = eraseNow(aero, static_cast<BlockId>(b));
            lat_b += ticksToMs(ob.latency);
            lat_a += ticksToMs(oa.latency);
            dmg_b += ob.damage;
            dmg_a += oa.damage;
        }
    }
    return SingleCell{lat_a / lat_b, dmg_a / dmg_b};
}

struct MultiRow
{
    std::string scheme;
    double jointMs = 0.0;
    double serialMs = 0.0;
    double damage = 0.0;
};

MultiRow
runMultiPlaneRow(const std::string &scheme_name)
{
    NandChip chip(ChipParams::tlc3d(), ChipGeometry{4, 16, 8}, 7);
    for (int b = 0; b < chip.numBlocks(); ++b)
        chip.ageBaseline(b, 2500);
    const auto scheme =
        makeEraseScheme(scheme_name, chip, SchemeOptions{});
    MultiRow row;
    row.scheme = scheme_name;
    int ops = 0;
    for (int round = 0; round < 8; ++round) {
        for (int group = 0; group < 16; ++group) {
            std::vector<BlockId> blocks;
            for (int pl = 0; pl < 4; ++pl)
                blocks.push_back(static_cast<BlockId>(pl * 16 + group));
            const auto out = MultiPlaneErase::eraseNow(*scheme, blocks);
            row.jointMs += ticksToMs(out.latency);
            row.serialMs += ticksToMs(out.serialLatency);
            row.damage += out.totalDamage;
            ops += 1;
        }
    }
    row.jointMs /= ops;
    row.serialMs /= ops;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto artifacts = bench::parseArtifactArgs(argc, argv);
    bench::header("Ablation: AERO's ingredients and multi-plane erase");

    // Single-plane: every (variant, PEC) cell in parallel.
    struct Cell
    {
        std::size_t variant;
        std::size_t pec;
    };
    std::vector<Cell> cells;
    for (std::size_t vi = 0; vi < std::size(kVariants); ++vi)
        for (std::size_t pi = 0; pi < std::size(kPecs); ++pi)
            cells.push_back({vi, pi});
    const auto singles = parallelMap(cells, [](const Cell &c) {
        return runSingleCell(kVariants[c.variant], kPecs[c.pec]);
    });

    std::printf("per-erase latency / damage vs Baseline, 300 P/E cycles\n");
    bench::rule();
    std::printf("%-22s", "variant");
    for (const double pec : kPecs)
        std::printf(" | PEC %4.0f: lat    dmg", pec);
    std::printf("\n");
    bench::rule();
    for (std::size_t vi = 0; vi < std::size(kVariants); ++vi) {
        std::printf("%-22s", kVariants[vi].name);
        for (std::size_t pi = 0; pi < std::size(kPecs); ++pi) {
            const auto &cell = singles[vi * std::size(kPecs) + pi];
            std::printf(" | %12.2f %6.2f", cell.latRatio, cell.dmgRatio);
        }
        std::printf("\n");
    }
    bench::rule();

    // Multi-plane composition: schemes by registry name, in parallel.
    const std::vector<std::string> multi_schemes = {"Baseline", "AERO"};
    const auto multi = parallelMap(multi_schemes, runMultiPlaneRow);

    std::printf("\nmulti-plane composition (4 blocks in lock-step, "
                "PEC 2500)\n");
    bench::rule();
    std::printf("%-10s | %12s | %12s | %10s\n", "scheme",
                "joint [ms]", "serial [ms]", "dmg ratio");
    const double base_dmg = multi.front().damage;
    for (const auto &row : multi) {
        std::printf("%-10s | %12.2f | %12.2f | %10.2f\n",
                    row.scheme.c_str(), row.jointMs, row.serialMs,
                    base_dmg > 0 ? row.damage / base_dmg : 1.0);
    }
    bench::rule();
    bench::note("paper section 6: the worst block gates joint latency, "
                "but inhibition preserves AERO's full damage benefit");

    if (artifacts.wantJson()) {
        Json doc = Json::object();
        doc["schema"] = "aero-ablation/1";
        Json single = Json::array();
        for (std::size_t vi = 0; vi < std::size(kVariants); ++vi) {
            for (std::size_t pi = 0; pi < std::size(kPecs); ++pi) {
                const auto &cell = singles[vi * std::size(kPecs) + pi];
                Json row = Json::object();
                row["variant"] = kVariants[vi].name;
                row["pec"] = kPecs[pi];
                row["latency_ratio"] = cell.latRatio;
                row["damage_ratio"] = cell.dmgRatio;
                single.push(std::move(row));
            }
        }
        doc["single_plane"] = std::move(single);
        Json mp = Json::array();
        for (const auto &row : multi) {
            Json r = Json::object();
            r["scheme"] = row.scheme;
            r["joint_ms"] = row.jointMs;
            r["serial_ms"] = row.serialMs;
            r["damage_ratio"] =
                base_dmg > 0 ? row.damage / base_dmg : 1.0;
            mp.push(std::move(r));
        }
        doc["multi_plane"] = std::move(mp);
        artifacts.writeJson(doc);
    }
    if (artifacts.wantCsv()) {
        std::string csv = "variant,pec,latency_ratio,damage_ratio\n";
        for (std::size_t vi = 0; vi < std::size(kVariants); ++vi) {
            for (std::size_t pi = 0; pi < std::size(kPecs); ++pi) {
                const auto &cell = singles[vi * std::size(kPecs) + pi];
                csv += std::string(kVariants[vi].name);
                csv += ',' + std::to_string(kPecs[pi]);
                csv += ',' + std::to_string(cell.latRatio);
                csv += ',' + std::to_string(cell.dmgRatio) + '\n';
            }
        }
        writeTextFile(artifacts.csvPath, csv);
    }
    return 0;
}
