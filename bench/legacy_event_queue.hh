/**
 * @file
 * The pre-tagged simulation kernel, preserved verbatim (namespace aside)
 * as the measurement reference for bench_kernel's speedup rows: a
 * std::priority_queue of events each carrying a type-erased
 * std::function callback. Compiled as its own translation unit with the
 * same flags as the library, so the comparison reproduces the original
 * call-boundary costs instead of flattering either side. Not part of
 * the library — nothing outside bench_kernel may use it.
 */

#ifndef AERO_BENCH_LEGACY_EVENT_QUEUE_HH
#define AERO_BENCH_LEGACY_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace aero::legacy
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return currentTick; }

    bool empty() const { return events.empty(); }
    std::size_t pending() const { return events.size(); }
    std::uint64_t processed() const { return processedCount; }

    /** Schedule `cb` to run `delay` ticks from now. */
    void
    schedule(Tick delay, Callback cb)
    {
        scheduleAt(currentTick + delay, std::move(cb));
    }

    /** Schedule `cb` at an absolute tick (must not be in the past). */
    void scheduleAt(Tick when, Callback cb);

    /** Run until the queue drains or `until` is reached. */
    void run(Tick until = kTickMax);

    /** Process exactly one event; returns false if the queue is empty. */
    bool step();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Tick currentTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t processedCount = 0;
};

} // namespace aero::legacy

#endif // AERO_BENCH_LEGACY_EVENT_QUEUE_HH
