/**
 * @file
 * Reproduces Fig. 16: sensitivity of AERO's lifetime and read-tail
 * benefits to the FELP misprediction rate {0, 1, 5, 10, 20}%, where each
 * misprediction costs an extra 0.5-ms EP step (the paper's assumption).
 *
 * Paper reference: even at 20% misprediction AERO keeps ~42% lifetime
 * improvement and ~40% tail-latency reduction at 0.5K PEC.
 */

#include "bench_util.hh"
#include "devchar/lifetime.hh"
#include "devchar/simstudy.hh"

using namespace aero;

int
main()
{
    bench::header("Figure 16: impact of misprediction rate");
    const double rates[] = {0.0, 0.01, 0.05, 0.10, 0.20};

    // Lifetime side.
    LifetimeConfig lc;
    lc.farm.numChips = 6;
    lc.farm.blocksPerChip = 12;
    const double base_life =
        LifetimeTester(lc).run(SchemeKind::Baseline).lifetimePec;
    std::printf("lifetime improvement over Baseline (%0.0f PEC)\n",
                base_life);
    bench::rule();
    std::printf("%8s | %10s | %10s\n", "misrate", "AERO-CONS", "AERO");
    for (const double rate : rates) {
        LifetimeConfig cfg = lc;
        cfg.schemeOptions.mispredictionRate = rate;
        LifetimeTester tester(cfg);
        const auto cons = tester.run(SchemeKind::AeroCons);
        const auto aero = tester.run(SchemeKind::Aero);
        std::printf("%7.0f%% | %+9.1f%% | %+9.1f%%\n", rate * 100.0,
                    100.0 * (cons.lifetimePec - base_life) / base_life,
                    100.0 * (aero.lifetimePec - base_life) / base_life);
    }
    bench::rule();

    // Tail-latency side (0.5K PEC, prxy).
    const auto requests = defaultSimRequests();
    std::printf("\nread tail latency at 0.5K PEC (prxy), normalized to "
                "Baseline\n");
    bench::rule();
    SimPoint base_pt;
    base_pt.workload = "prxy";
    base_pt.pec = 500.0;
    base_pt.requests = requests;
    const auto base = runSimPoint(base_pt);
    std::printf("%8s | %10s | %10s\n", "misrate", "p99.99", "p99.9999");
    for (const double rate : rates) {
        SimPoint pt = base_pt;
        pt.scheme = SchemeKind::Aero;
        pt.mispredictionRate = rate;
        const auto r = runSimPoint(pt);
        std::printf("%7.0f%% | %10.2f | %10.2f\n", rate * 100.0,
                    r.p9999Us / base.p9999Us,
                    r.p999999Us / base.p999999Us);
    }
    bench::rule();
    bench::note("paper: benefits degrade by only a few percent even at "
                "a 20% misprediction rate");
    return 0;
}
