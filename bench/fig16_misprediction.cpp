/**
 * @file
 * Reproduces Fig. 16: sensitivity of AERO's lifetime and read-tail
 * benefits to the FELP misprediction rate {0, 1, 5, 10, 20}%, where each
 * misprediction costs an extra 0.5-ms EP step (the paper's assumption).
 * The endurance runs fan out over parallelMap; the tail-latency side is
 * one SweepSpec over the misprediction axis. `--json` drops both halves.
 *
 * Paper reference: even at 20% misprediction AERO keeps ~42% lifetime
 * improvement and ~40% tail-latency reduction at 0.5K PEC.
 */

#include "bench_util.hh"
#include "devchar/lifetime.hh"
#include "exp/checkpoint.hh"
#include "exp/sweep.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 16: impact of misprediction rate");
    // --small: the regression-gate config — three rates, a smaller
    // block farm, and a fixed request count for the tail-latency side.
    const std::vector<double> rates =
        artifacts.small ? std::vector<double>{0.0, 0.10, 0.20}
                        : std::vector<double>{0.0, 0.01, 0.05, 0.10, 0.20};

    // Lifetime side: one endurance run per (rate, scheme) plus the
    // Baseline reference, all independent, all in parallel.
    LifetimeConfig lc;
    lc.farm.numChips = artifacts.small ? 4 : 6;
    lc.farm.blocksPerChip = artifacts.small ? 6 : 12;
    struct LifetimeCase
    {
        double rate;
        SchemeKind scheme;
    };
    std::vector<LifetimeCase> cases = {{0.0, SchemeKind::Baseline}};
    for (const double rate : rates) {
        cases.push_back({rate, SchemeKind::AeroCons});
        cases.push_back({rate, SchemeKind::Aero});
    }

    // Declare the tail-latency grids up front so the journal's config
    // fingerprints every stage of the campaign (lifetime + two sweeps).
    SweepBuilder tail =
        SweepBuilder()
            .workload("prxy")
            .pec(500.0)
            .requests(artifacts.small ? 2000 : defaultSimRequests());
    const SweepSpec base_spec =
        tail.scheme(SchemeKind::Baseline).build();
    const SweepSpec spec = tail.scheme(SchemeKind::Aero)
                               .mispredictionRates(rates)
                               .build();
    Json journal_cfg = bench::farmJournalConfig(
        lc.farm.numChips, lc.farm.blocksPerChip, lc.farm.seed,
        artifacts.small);
    journal_cfg["misprediction_rates"] = bench::jsonArray(rates);
    journal_cfg["tail_baseline_spec"] =
        SweepCheckpoint::configOf(base_spec);
    journal_cfg["tail_aero_spec"] = SweepCheckpoint::configOf(spec);
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("fig16_misprediction",
                                               std::move(journal_cfg));
    const CampaignScope scope{journal.get()};

    const auto lifetimes = parallelMapJournaled(
        scope.journal, cases,
        [&](std::size_t, const LifetimeCase &c) {
            Json key = scope.base();
            key["stage"] = "lifetime";
            key["scheme"] = schemeKindName(c.scheme);
            key["misprediction_rate"] = c.rate;
            return key;
        },
        [&](const LifetimeCase &c) {
            LifetimeConfig cfg = lc;
            cfg.schemeOptions.mispredictionRate = c.rate;
            return LifetimeTester(cfg).run(c.scheme);
        },
        [](const LifetimeResult &r) { return toJson(r); },
        lifetimeResultFromJson);

    // Tail-latency side (0.5K PEC, prxy): one Baseline reference point
    // plus AERO across the misprediction axis (Baseline ignores the
    // misprediction knob, so sweeping it there would waste 4 runs).
    // Both sweeps share the bench journal, namespaced by key prefixes.
    std::vector<SimResult> base_results, results;
    if (journal) {
        Json base_prefix = Json::object();
        base_prefix["stage"] = "tail-baseline";
        SweepCheckpoint base_ckpt(*journal, base_spec,
                                  std::move(base_prefix));
        base_results = SweepRunner().run(base_spec, base_ckpt);
        Json aero_prefix = Json::object();
        aero_prefix["stage"] = "tail-aero";
        SweepCheckpoint aero_ckpt(*journal, spec,
                                  std::move(aero_prefix));
        results = SweepRunner().run(spec, aero_ckpt);
    } else {
        base_results = SweepRunner().run(base_spec);
        results = SweepRunner().run(spec);
    }
    // A worker's share is journaled once both stages have run; the
    // tables and artifacts below belong to the driver, which resumes
    // with every record cached.
    if (artifacts.isWorker())
        artifacts.exitWorker();

    const double base_life = lifetimes[0].lifetimePec;
    std::printf("lifetime improvement over Baseline (%0.0f PEC)\n",
                base_life);
    bench::rule();
    std::printf("%8s | %10s | %10s\n", "misrate", "AERO-CONS", "AERO");
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto &cons = lifetimes[1 + 2 * i];
        const auto &aero = lifetimes[2 + 2 * i];
        std::printf("%7.0f%% | %+9.1f%% | %+9.1f%%\n", rates[i] * 100.0,
                    100.0 * (cons.lifetimePec - base_life) / base_life,
                    100.0 * (aero.lifetimePec - base_life) / base_life);
    }
    bench::rule();

    const auto &base = base_results.front();

    std::printf("\nread tail latency at 0.5K PEC (prxy), normalized to "
                "Baseline\n");
    bench::rule();
    std::printf("%8s | %10s | %10s\n", "misrate", "p99.99", "p99.9999");
    for (std::size_t mi = 0; mi < rates.size(); ++mi) {
        const auto &r = results[spec.index(0, 0, 0, 0, mi, 0, 0)];
        std::printf("%7.0f%% | %10.2f | %10.2f\n", rates[mi] * 100.0,
                    r.p9999Us / base.p9999Us,
                    r.p999999Us / base.p999999Us);
    }
    bench::rule();
    bench::note("paper: benefits degrade by only a few percent even at "
                "a 20% misprediction rate");

    if (artifacts.wantJson()) {
        Json doc = Json::object();
        doc["schema"] = "aero-fig16/1";
        Json specDoc = Json::object();
        specDoc["num_chips"] = lc.farm.numChips;
        specDoc["blocks_per_chip"] = lc.farm.blocksPerChip;
        Json rateAxis = Json::array();
        for (const double r : rates)
            rateAxis.push(r);
        specDoc["misprediction_rates"] = std::move(rateAxis);
        specDoc["small"] = artifacts.small;
        doc["spec"] = std::move(specDoc);
        Json life = Json::array();
        for (std::size_t i = 0; i < cases.size(); ++i) {
            Json row = Json::object();
            row["scheme"] = schemeKindName(cases[i].scheme);
            row["misprediction_rate"] = cases[i].rate;
            row["lifetime_pec"] = lifetimes[i].lifetimePec;
            life.push(std::move(row));
        }
        doc["lifetime"] = std::move(life);
        doc["tail_latency_baseline"] = sweepReport(base_spec, base_results);
        doc["tail_latency_aero"] = sweepReport(spec, results);
        artifacts.writeJson(doc);
    }
    if (artifacts.wantCsv()) {
        auto rows = base_results;
        rows.insert(rows.end(), results.begin(), results.end());
        writeTextFile(artifacts.csvPath, toCsv(rows));
    }
    return 0;
}
