/**
 * @file
 * Reproduces Fig. 10: max RBER (1-yr retention) after complete vs
 * insufficient erasure, against the ECC capability (72) and RBER
 * requirement (63). The derived safety conditions are the paper's
 * [C1]: N_ISPE <= 3 and F(N-1) < delta, and [C2]: N = 4 and F(3) < gamma.
 */

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main()
{
    bench::header("Figure 10: reliability margin vs erase status");
    FarmConfig fc;
    fc.numChips = 24;
    fc.blocksPerChip = 24;
    const auto data = runFig10Experiment(
        fc, {500, 1500, 2500, 3500, 4500});
    std::printf("ECC capability %d, RBER requirement %d (per 1 KiB)\n",
                data.eccCapability, data.rberRequirement);

    std::printf("\n(a) completely erased blocks\n");
    bench::rule();
    std::printf("%7s | %9s | %8s | %8s\n", "N_ISPE", "max MRBER",
                "margin", "samples");
    for (const auto &row : data.complete) {
        std::printf("%7d | %9.1f | %8.1f | %8d\n", row.nIspe,
                    row.maxMrber, row.margin, row.samples);
    }
    bench::note("paper: margin up to 47 bits at N=1, shrinking with N");

    std::printf("\n(b) insufficiently erased blocks "
                "(final loop skipped)\n");
    bench::rule();
    std::printf("%7s | %6s | %9s | %5s | %8s\n", "N_ISPE", "range",
                "max MRBER", "safe", "samples");
    for (const auto &row : data.insufficient) {
        if (row.samples < 3)
            continue;
        std::printf("%7d | %6s | %9.1f | %5s | %8d\n", row.nIspe,
                    Ept::rangeLabel(row.range).c_str(), row.maxMrber,
                    row.safe ? "yes" : "NO", row.samples);
    }
    bench::rule();
    bench::note("paper conditions: [C1] N<=3 & F<d safe; "
                "[C2] N=4 & F<g safe; nothing at N=5");
    return 0;
}
