/**
 * @file
 * Reproduces Fig. 10: max RBER (1-yr retention) after complete vs
 * insufficient erasure, against the ECC capability (72) and RBER
 * requirement (63). The derived safety conditions are the paper's
 * [C1]: N_ISPE <= 3 and F(N-1) < delta, and [C2]: N = 4 and F(3) < gamma.
 * Chip-sharded across the sweep thread pool; `--json`/`--csv` drop an
 * `aero-devchar/1` artifact, `--small` runs the regression-gate config.
 */

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 10: reliability margin vs erase status");
    FarmConfig fc;
    fc.numChips = artifacts.small ? 8 : 24;
    fc.blocksPerChip = artifacts.small ? 10 : 24;
    Json journal_cfg = bench::farmJournalConfig(
        fc.numChips, fc.blocksPerChip, fc.seed, artifacts.small);
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal(
        "fig10_reliability_margin", std::move(journal_cfg));
    const auto data = runFig10Experiment(
        fc, {500, 1500, 2500, 3500, 4500}, {journal.get()});
    if (artifacts.isWorker())
        artifacts.exitWorker();
    std::printf("ECC capability %d, RBER requirement %d (per 1 KiB)\n",
                data.eccCapability, data.rberRequirement);

    std::printf("\n(a) completely erased blocks\n");
    bench::rule();
    std::printf("%7s | %9s | %8s | %8s\n", "N_ISPE", "max MRBER",
                "margin", "samples");
    for (const auto &row : data.complete) {
        std::printf("%7d | %9.1f | %8.1f | %8d\n", row.nIspe,
                    row.maxMrber, row.margin, row.samples);
    }
    bench::note("paper: margin up to 47 bits at N=1, shrinking with N");

    std::printf("\n(b) insufficiently erased blocks "
                "(final loop skipped)\n");
    bench::rule();
    std::printf("%7s | %6s | %9s | %5s | %8s\n", "N_ISPE", "range",
                "max MRBER", "safe", "samples");
    for (const auto &row : data.insufficient) {
        if (row.samples < 3)
            continue;
        std::printf("%7d | %6s | %9.1f | %5s | %8d\n", row.nIspe,
                    Ept::rangeLabel(row.range).c_str(), row.maxMrber,
                    row.safe ? "yes" : "NO", row.samples);
    }
    bench::rule();
    bench::note("paper conditions: [C1] N<=3 & F<d safe; "
                "[C2] N=4 & F<g safe; nothing at N=5");

    bench::DevcharReport report("fig10_reliability_margin",
                                {"kind", "n_ispe", "range"});
    report.spec["num_chips"] = fc.numChips;
    report.spec["blocks_per_chip"] = fc.blocksPerChip;
    report.spec["seed"] = fc.seed;
    report.spec["small"] = artifacts.small;
    report.summary["ecc_capability"] = data.eccCapability;
    report.summary["rber_requirement"] = data.rberRequirement;
    for (const auto &row : data.complete) {
        Json j = Json::object();
        j["kind"] = "complete";
        j["n_ispe"] = row.nIspe;
        j["samples"] = row.samples;
        j["max_mrber"] = row.maxMrber;
        j["margin"] = row.margin;
        report.addRow(std::move(j));
    }
    for (const auto &row : data.insufficient) {
        Json j = Json::object();
        j["kind"] = "insufficient";
        j["n_ispe"] = row.nIspe;
        j["range"] = row.range;
        j["samples"] = row.samples;
        j["max_mrber"] = row.maxMrber;
        j["safe"] = row.safe;
        report.addRow(std::move(j));
    }
    artifacts.writeDevchar(report);
    return 0;
}
