/**
 * @file
 * Multi-tenant QoS study: N tenant workloads share one drive, and the
 * per-tenant read-latency tails show how much one tenant's erase traffic
 * bleeds into another's reads under each erase scheme — the shared-drive
 * consequence of the tail-latency result of Fig. 14.
 *
 * The tenant mix comes from `--tenants <spec>` (see
 * workload/trace_io/tenant.hh for the grammar: synthetic Table-3 presets
 * or `@file` aero-trace/1 traces, merged by arrival time and tagged).
 * Each (scheme, PEC) cell replays the identical merged stream through
 * its own drive; cells fan out over parallelMapJournaled, so
 * `--checkpoint` resumes a killed campaign and artifacts are
 * byte-identical at any AERO_SWEEP_THREADS.
 *
 * `--small` runs a fixed hermetic mix for the golden gate (prxy/hm/usr,
 * 1200 requests each, Baseline vs AERO at 2.5K PEC) and therefore
 * rejects `--tenants`.
 *
 * `--slo` turns the campaign into an SLO-enforcement study: every cell
 * runs under queued channel arbitration and the SloPolicy axis (none /
 * throttle / wfq / throttle+wfq) joins the grid, with per-tenant
 * deferral and p99-attainment columns in the artifact. `--slo noisy` is
 * the built-in noisy-neighbor configuration the golden gate pins: a
 * read-heavy victim tenant with a p99 target shares the drive with a
 * write-heavy aggressor pushing far past its IOPS budget, so `none`
 * demonstrably violates the victim's SLO and `throttle+wfq` restores
 * it. Any other `--slo` argument is parsed as a TenantSloSpec and
 * applied to the current mix.
 */

#include <cstring>

#include "bench_util.hh"
#include "devchar/simstudy.hh"
#include "erase/scheme_registry.hh"
#include "exp/sweep.hh"
#include "ssd/gc.hh"
#include "ssd/wear_level.hh"
#include "workload/trace_io/tenant.hh"

using namespace aero;

namespace
{

struct TenantRow
{
    TenantId tenant = 0;
    std::string source;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double avgReadUs = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;

    /** @name SLO mode only (emitted when slo is set) */
    /** @{ */
    bool slo = false;
    std::uint64_t throttleDeferrals = 0;
    double throttleDeferredMs = 0.0;
    std::uint64_t p99TargetUs = 0;  //!< 0: tenant has no target
    bool p99Attained = false;       //!< meaningful iff p99TargetUs != 0
    /** @} */
};

struct Cell
{
    SchemeKind scheme = SchemeKind::Baseline;
    double pec = 500.0;
    SloPolicy policy = SloPolicy::None;  //!< only varied in SLO mode
};

struct CellResult
{
    std::vector<TenantRow> rows;  //!< one per tenant, in tenant order
};

Json
toJson(const CellResult &r)
{
    Json rows = Json::array();
    for (const auto &t : r.rows) {
        Json row = Json::object();
        row["tenant"] = static_cast<std::uint64_t>(t.tenant);
        row["source"] = t.source;
        row["reads"] = t.reads;
        row["writes"] = t.writes;
        row["avg_read_us"] = t.avgReadUs;
        row["p99_us"] = t.p99Us;
        row["p999_us"] = t.p999Us;
        if (t.slo) {
            row["throttle_deferrals"] = t.throttleDeferrals;
            row["throttle_deferred_ms"] = t.throttleDeferredMs;
            if (t.p99TargetUs != 0) {
                row["p99_target_us"] = t.p99TargetUs;
                row["p99_attained"] = t.p99Attained;
            }
        }
        rows.push(std::move(row));
    }
    return rows;
}

CellResult
cellFromJson(const Json &rows)
{
    CellResult r;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Json &row = rows.at(i);
        TenantRow t;
        t.tenant = static_cast<TenantId>(row.get("tenant").asUint64());
        t.source = row.get("source").asString();
        t.reads = row.get("reads").asUint64();
        t.writes = row.get("writes").asUint64();
        t.avgReadUs = row.get("avg_read_us").asDouble();
        t.p99Us = row.get("p99_us").asDouble();
        t.p999Us = row.get("p999_us").asDouble();
        if (const Json *d = row.find("throttle_deferrals")) {
            t.slo = true;
            t.throttleDeferrals = d->asUint64();
            t.throttleDeferredMs =
                row.get("throttle_deferred_ms").asDouble();
            if (const Json *target = row.find("p99_target_us")) {
                t.p99TargetUs = target->asUint64();
                t.p99Attained = row.get("p99_attained").asBool();
            }
        }
        r.rows.push_back(std::move(t));
    }
    return r;
}

/** Everything a cell run needs beyond its own axes. */
struct CampaignSetup
{
    std::vector<TenantSource> sources;
    std::string gcPolicy = "greedy";
    std::string wearLevel = "none";
    bool slo = false;            //!< SLO mode: queued arbitration + spec
    TenantSloSpec sloSpec;       //!< budgets/weights/targets (SLO mode)
};

CellResult
runCell(const Cell &cell, const CampaignSetup &setup)
{
    SsdConfig cfg = SsdConfig::bench();
    cfg.scheme = cell.scheme;
    cfg.initialPec = cell.pec;
    cfg.gcPolicy = setup.gcPolicy;
    cfg.wearLevel = setup.wearLevel;
    if (setup.slo) {
        // Every SLO cell — including policy `none` — runs queued
        // arbitration, so the policy axis isolates enforcement, not the
        // arbitration model swap.
        cfg.arbitration = Arbitration::Queued;
        cfg.sloPolicy = cell.policy;
        cfg.slo = setup.sloSpec;
    }

    Ssd ssd(cfg);
    ssd.metrics().enableTenantTracking(setup.sources.size());

    SyntheticConfig base;
    base.footprintPages = ssd.config().logicalPages();
    base.pageSizeKB = cfg.pageSizeKB;

    std::vector<std::unique_ptr<TraceStream>> streams;
    streams.reserve(setup.sources.size());
    for (const auto &src : setup.sources)
        streams.push_back(openTenantSource(src, base));
    TenantMix mix(std::move(streams));
    ssd.run(mix);

    CellResult result;
    for (std::size_t i = 0; i < setup.sources.size(); ++i) {
        const TenantLatency &m = ssd.metrics().tenants[i];
        TenantRow row;
        row.tenant = static_cast<TenantId>(i);
        row.source = setup.sources[i].label;
        row.reads = m.reads;
        row.writes = m.writes;
        row.avgReadUs = m.readLatency.mean() / static_cast<double>(kUs);
        row.p99Us = ticksToUs(m.readLatency.percentile(0.99));
        row.p999Us = ticksToUs(m.readLatency.percentile(0.999));
        if (setup.slo) {
            row.slo = true;
            row.throttleDeferrals = m.throttleDeferrals;
            row.throttleDeferredMs = ticksToMs(m.throttleDeferredTicks);
            const TenantSlo *t =
                setup.sloSpec.find(static_cast<TenantId>(i));
            if (t != nullptr && t->p99TargetUs != 0) {
                row.p99TargetUs = t->p99TargetUs;
                row.p99Attained =
                    m.readP99Us() <= static_cast<double>(t->p99TargetUs);
            }
        }
        result.rows.push_back(std::move(row));
    }
    return result;
}

/**
 * The built-in noisy-neighbor configuration (`--slo noisy`): a
 * read-heavy victim (usr) with a p99 target shares the drive with a
 * write-heavy aggressor (ali.A cranked to ~60x its Table-3 arrival
 * rate) whose IOPS budget sits far below its offered load. Under
 * `none` the aggressor's writes and the erases they trigger blow
 * through the victim's tail; `throttle` holds the aggressor to its
 * budget and `wfq` gives the victim 8x the channel share.
 */
/**
 * The victim's read-p99 target, placed between the tail `throttle+wfq`
 * achieves and the tail `none` suffers in the noisy mix, so the golden
 * artifact pins attainment true for the enforced cell and false for the
 * unenforced one.
 */
constexpr std::uint64_t kNoisyVictimP99TargetUs = 1500;

CampaignSetup
noisySetup(bool small)
{
    CampaignSetup setup;
    setup.slo = true;

    TenantSource victim;
    victim.label = "usr:victim";
    victim.preset = "usr";
    victim.requests = small ? 4000 : 12000;
    victim.seed = 7;
    victim.hasSeed = true;

    TenantSource hog;
    hog.label = "ali.A:hog";
    hog.preset = "ali.A";
    hog.requests = small ? 8000 : 24000;
    hog.seed = 1007;
    hog.hasSeed = true;
    hog.intensity = 60.0;

    setup.sources = {victim, hog};
    setup.sloSpec = parseTenantSloSpec(
        "0:weight=8:p99=" + std::to_string(kNoisyVictimP99TargetUs) +
        ",1:weight=1:iops=2000:burst=32");
    return setup;
}

} // namespace

int
main(int argc, char **argv)
{
    // --tenants / --gc-policy / --wear-level / --slo are ours; strip
    // them before the (strict) artifact parser.
    std::string tenant_spec;
    std::string gc_policy = "greedy";
    std::string wear_level = "none";
    std::string slo_arg;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tenants") == 0) {
            if (i + 1 >= argc)
                AERO_FATAL("--tenants needs a mix spec (e.g. "
                           "'prxy:20000:7,hm:20000:1007,@trace.trc')");
            tenant_spec = argv[++i];
            continue;
        }
        if (std::strcmp(argv[i], "--gc-policy") == 0) {
            if (i + 1 >= argc)
                AERO_FATAL("--gc-policy needs a name (valid: ",
                           gcPolicyNames(), ")");
            gc_policy = argv[++i];
            (void)makeGcPolicy(gc_policy);  // fail fast on a typo
            continue;
        }
        if (std::strcmp(argv[i], "--wear-level") == 0) {
            if (i + 1 >= argc)
                AERO_FATAL("--wear-level needs a name (valid: ",
                           wearLevelPolicyNames(), ")");
            wear_level = argv[++i];
            (void)makeWearLevelPolicy(wear_level);
            continue;
        }
        if (std::strcmp(argv[i], "--slo") == 0) {
            if (i + 1 >= argc)
                AERO_FATAL("--slo needs 'noisy' or a tenant SLO spec "
                           "(e.g. '0:weight=8:p99=1500,1:iops=2000')");
            slo_arg = argv[++i];
            continue;
        }
        rest.push_back(argv[i]);
    }
    auto artifacts = bench::parseArtifactArgs(
        static_cast<int>(rest.size()), rest.data(), /*allow_small=*/true,
        /*allow_checkpoint=*/true, /*allow_workers=*/true);
    if (artifacts.small && !tenant_spec.empty())
        AERO_FATAL("--small runs the fixed regression-gate mix and "
                   "rejects --tenants");
    const bool noisy = slo_arg == "noisy";
    if (noisy && !tenant_spec.empty())
        AERO_FATAL("--slo noisy is a built-in mix and rejects --tenants");

    bench::header("Multi-tenant QoS: per-tenant read tails on a shared "
                  "drive");

    CampaignSetup setup;
    setup.gcPolicy = gc_policy;
    setup.wearLevel = wear_level;
    if (noisy) {
        setup = noisySetup(artifacts.small);
        setup.gcPolicy = gc_policy;
        setup.wearLevel = wear_level;
        tenant_spec = "noisy";
    } else {
        // The gate mix is hermetic: fixed requests and per-tenant seeds.
        if (tenant_spec.empty()) {
            tenant_spec = artifacts.small
                              ? "prxy:6000:7,hm:6000:1007,usr:6000:2007"
                              : "prxy:20000:7,hm:20000:1007,usr:20000:2007";
        }
        setup.sources = parseTenantMixSpec(tenant_spec);
        if (!slo_arg.empty()) {
            setup.slo = true;
            setup.sloSpec = parseTenantSloSpec(slo_arg);
        }
    }

    // SLO mode swaps the scheme breadth for the policy axis: the study
    // isolates enforcement, so two schemes x one PEC is plenty.
    const std::vector<SchemeKind> schemes =
        setup.slo ? (artifacts.small
                         ? std::vector<SchemeKind>{SchemeKind::Aero}
                         : std::vector<SchemeKind>{SchemeKind::Baseline,
                                                   SchemeKind::Aero})
        : artifacts.small
            ? std::vector<SchemeKind>{SchemeKind::Baseline,
                                      SchemeKind::Aero}
            : allSchemes();
    const std::vector<double> pecs =
        (setup.slo || artifacts.small) ? std::vector<double>{2500.0}
                                       : paperPecPoints();
    const std::vector<SloPolicy> policies =
        setup.slo ? std::vector<SloPolicy>{SloPolicy::None,
                                           SloPolicy::Throttle,
                                           SloPolicy::Wfq,
                                           SloPolicy::ThrottleWfq}
                  : std::vector<SloPolicy>{SloPolicy::None};

    std::vector<Cell> cells;
    for (const double pec : pecs)
        for (const SchemeKind scheme : schemes)
            for (const SloPolicy policy : policies)
                cells.push_back({scheme, pec, policy});

    std::printf("tenants: %s\n%zu cells on %d threads "
                "(env AERO_SWEEP_THREADS)\n",
                tenant_spec.c_str(), cells.size(),
                SweepRunner().threads());
    if (setup.slo)
        std::printf("SLO spec: %s\n",
                    renderTenantSloSpec(setup.sloSpec).c_str());

    Json journal_cfg = Json::object();
    journal_cfg["tenants"] = tenant_spec;
    Json scheme_names = Json::array();
    for (const SchemeKind k : schemes)
        scheme_names.push(schemeKindName(k));
    journal_cfg["schemes"] = std::move(scheme_names);
    journal_cfg["pecs"] = bench::jsonArray(pecs);
    journal_cfg["small"] = artifacts.small;
    // Reclamation axes only appear when swept off their defaults so the
    // golden artifact and old journals stay byte-identical.
    if (gc_policy != "greedy")
        journal_cfg["gc_policy"] = gc_policy;
    if (wear_level != "none")
        journal_cfg["wear_level"] = wear_level;
    // Same for the SLO study: the campaign fingerprint gains the spec
    // and policy axis only in SLO mode.
    if (setup.slo) {
        journal_cfg["slo_spec"] = renderTenantSloSpec(setup.sloSpec);
        Json policy_names = Json::array();
        for (const SloPolicy p : policies)
            policy_names.push(sloPolicyName(p));
        journal_cfg["slo_policies"] = std::move(policy_names);
    }
    // Fork before opening the journal: worker children journal their
    // share of the cells and exit; the parent reopens the merged
    // directory with every cell cached and assembles the artifacts.
    artifacts.forkWorkers();
    const auto journal =
        artifacts.openJournal("tenant_qos", std::move(journal_cfg));
    const CampaignScope scope{journal.get()};

    const auto results = parallelMapJournaled(
        scope.journal, cells,
        [&](std::size_t, const Cell &c) {
            Json key = scope.key("scheme", schemeKindName(c.scheme));
            key["pec"] = c.pec;
            if (setup.slo)
                key["slo"] = sloPolicyName(c.policy);
            return key;
        },
        [&](const Cell &c) { return runCell(c, setup); },
        [](const CellResult &r) { return toJson(r); }, cellFromJson);
    if (artifacts.isWorker())
        artifacts.exitWorker();

    for (std::size_t pi = 0; pi < pecs.size(); ++pi) {
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            std::printf("\nPEC = %.1fK, scheme %s   (per-tenant read "
                        "latency, us)\n",
                        pecs[pi] / 1000.0, schemeKindName(schemes[si]));
            bench::rule();
            std::printf("%-3s %-16s", "t", "source");
            for (const SloPolicy p : policies)
                std::printf(" | %12s p99/p999", sloPolicyName(p));
            std::printf("\n");
            bench::rule();
            for (std::size_t t = 0; t < setup.sources.size(); ++t) {
                std::printf("%-3zu %-16s", t,
                            setup.sources[t].label.c_str());
                for (std::size_t li = 0; li < policies.size(); ++li) {
                    const std::size_t ci =
                        (pi * schemes.size() + si) * policies.size() + li;
                    const auto &row = results[ci].rows[t];
                    std::printf(" | %12.1f / %8.1f", row.p99Us,
                                row.p999Us);
                }
                std::printf("\n");
            }
        }
    }
    bench::rule();
    bench::note(setup.slo
                    ? "every cell replays the identical merged stream "
                      "under queued arbitration; only the enforcement "
                      "policy (and scheme/conditioning) differs"
                    : "every cell replays the identical merged stream; "
                      "only the erase scheme and conditioning differ");

    const std::vector<std::string> axes =
        setup.slo
            ? std::vector<std::string>{"slo_policy", "scheme", "pec",
                                       "tenant"}
            : std::vector<std::string>{"scheme", "pec", "tenant"};
    bench::DevcharReport report("tenant_qos", axes);
    report.spec["tenants"] = tenant_spec;
    report.spec["small"] = artifacts.small;
    if (gc_policy != "greedy")
        report.spec["gc_policy"] = gc_policy;
    if (wear_level != "none")
        report.spec["wear_level"] = wear_level;
    if (setup.slo)
        report.spec["slo_spec"] = renderTenantSloSpec(setup.sloSpec);
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
        for (const auto &t : results[ci].rows) {
            Json row = Json::object();
            if (setup.slo)
                row["slo_policy"] = sloPolicyName(cells[ci].policy);
            row["scheme"] = schemeKindName(cells[ci].scheme);
            row["pec"] = cells[ci].pec;
            row["tenant"] = static_cast<std::uint64_t>(t.tenant);
            row["source"] = t.source;
            row["reads"] = t.reads;
            row["writes"] = t.writes;
            row["avg_read_us"] = t.avgReadUs;
            row["p99_us"] = t.p99Us;
            row["p999_us"] = t.p999Us;
            if (t.slo) {
                row["throttle_deferrals"] = t.throttleDeferrals;
                row["throttle_deferred_ms"] = t.throttleDeferredMs;
                if (t.p99TargetUs != 0) {
                    row["p99_target_us"] = t.p99TargetUs;
                    row["p99_attained"] = t.p99Attained;
                }
            }
            report.addRow(std::move(row));
        }
    }
    Json doc = report.doc();
    doc["schema"] = "aero-tenant/1";
    if (artifacts.wantJson())
        writeJsonFile(artifacts.jsonPath, doc);
    if (artifacts.wantCsv())
        writeTextFile(artifacts.csvPath, bench::devcharCsv(report.results));
    return 0;
}
