/**
 * @file
 * Multi-tenant QoS study: N tenant workloads share one drive, and the
 * per-tenant read-latency tails show how much one tenant's erase traffic
 * bleeds into another's reads under each erase scheme — the shared-drive
 * consequence of the tail-latency result of Fig. 14.
 *
 * The tenant mix comes from `--tenants <spec>` (see
 * workload/trace_io/tenant.hh for the grammar: synthetic Table-3 presets
 * or `@file` aero-trace/1 traces, merged by arrival time and tagged).
 * Each (scheme, PEC) cell replays the identical merged stream through
 * its own drive; cells fan out over parallelMapJournaled, so
 * `--checkpoint` resumes a killed campaign and artifacts are
 * byte-identical at any AERO_SWEEP_THREADS.
 *
 * `--small` runs a fixed hermetic mix for the golden gate (prxy/hm/usr,
 * 1200 requests each, Baseline vs AERO at 2.5K PEC) and therefore
 * rejects `--tenants`.
 */

#include <cstring>

#include "bench_util.hh"
#include "devchar/simstudy.hh"
#include "erase/scheme_registry.hh"
#include "exp/sweep.hh"
#include "ssd/gc.hh"
#include "ssd/wear_level.hh"
#include "workload/trace_io/tenant.hh"

using namespace aero;

namespace
{

struct TenantRow
{
    TenantId tenant = 0;
    std::string source;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double avgReadUs = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
};

struct Cell
{
    SchemeKind scheme = SchemeKind::Baseline;
    double pec = 500.0;
};

struct CellResult
{
    std::vector<TenantRow> rows;  //!< one per tenant, in tenant order
};

Json
toJson(const CellResult &r)
{
    Json rows = Json::array();
    for (const auto &t : r.rows) {
        Json row = Json::object();
        row["tenant"] = static_cast<std::uint64_t>(t.tenant);
        row["source"] = t.source;
        row["reads"] = t.reads;
        row["writes"] = t.writes;
        row["avg_read_us"] = t.avgReadUs;
        row["p99_us"] = t.p99Us;
        row["p999_us"] = t.p999Us;
        rows.push(std::move(row));
    }
    return rows;
}

CellResult
cellFromJson(const Json &rows)
{
    CellResult r;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Json &row = rows.at(i);
        TenantRow t;
        t.tenant = static_cast<TenantId>(row.get("tenant").asUint64());
        t.source = row.get("source").asString();
        t.reads = row.get("reads").asUint64();
        t.writes = row.get("writes").asUint64();
        t.avgReadUs = row.get("avg_read_us").asDouble();
        t.p99Us = row.get("p99_us").asDouble();
        t.p999Us = row.get("p999_us").asDouble();
        r.rows.push_back(std::move(t));
    }
    return r;
}

CellResult
runCell(const Cell &cell, const std::vector<TenantSource> &sources,
        const std::string &gc_policy, const std::string &wear_level)
{
    SsdConfig cfg = SsdConfig::bench();
    cfg.scheme = cell.scheme;
    cfg.initialPec = cell.pec;
    cfg.gcPolicy = gc_policy;
    cfg.wearLevel = wear_level;

    Ssd ssd(cfg);
    ssd.metrics().enableTenantTracking(sources.size());

    SyntheticConfig base;
    base.footprintPages = ssd.config().logicalPages();
    base.pageSizeKB = cfg.pageSizeKB;

    std::vector<std::unique_ptr<TraceStream>> streams;
    streams.reserve(sources.size());
    for (const auto &src : sources)
        streams.push_back(openTenantSource(src, base));
    TenantMix mix(std::move(streams));
    ssd.run(mix);

    CellResult result;
    for (std::size_t i = 0; i < sources.size(); ++i) {
        const TenantLatency &m = ssd.metrics().tenants[i];
        TenantRow row;
        row.tenant = static_cast<TenantId>(i);
        row.source = sources[i].label;
        row.reads = m.reads;
        row.writes = m.writes;
        row.avgReadUs = m.readLatency.mean() / static_cast<double>(kUs);
        row.p99Us = ticksToUs(m.readLatency.percentile(0.99));
        row.p999Us = ticksToUs(m.readLatency.percentile(0.999));
        result.rows.push_back(std::move(row));
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    // --tenants / --gc-policy / --wear-level are ours; strip them before
    // the (strict) artifact parser.
    std::string tenant_spec;
    std::string gc_policy = "greedy";
    std::string wear_level = "none";
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tenants") == 0) {
            if (i + 1 >= argc)
                AERO_FATAL("--tenants needs a mix spec (e.g. "
                           "'prxy:20000:7,hm:20000:1007,@trace.trc')");
            tenant_spec = argv[++i];
            continue;
        }
        if (std::strcmp(argv[i], "--gc-policy") == 0) {
            if (i + 1 >= argc)
                AERO_FATAL("--gc-policy needs a name (valid: ",
                           gcPolicyNames(), ")");
            gc_policy = argv[++i];
            (void)makeGcPolicy(gc_policy);  // fail fast on a typo
            continue;
        }
        if (std::strcmp(argv[i], "--wear-level") == 0) {
            if (i + 1 >= argc)
                AERO_FATAL("--wear-level needs a name (valid: ",
                           wearLevelPolicyNames(), ")");
            wear_level = argv[++i];
            (void)makeWearLevelPolicy(wear_level);
            continue;
        }
        rest.push_back(argv[i]);
    }
    auto artifacts = bench::parseArtifactArgs(
        static_cast<int>(rest.size()), rest.data(), /*allow_small=*/true,
        /*allow_checkpoint=*/true, /*allow_workers=*/true);
    if (artifacts.small && !tenant_spec.empty())
        AERO_FATAL("--small runs the fixed regression-gate mix and "
                   "rejects --tenants");

    bench::header("Multi-tenant QoS: per-tenant read tails on a shared "
                  "drive");

    // The gate mix is hermetic: fixed requests and per-tenant seeds.
    if (tenant_spec.empty()) {
        tenant_spec = artifacts.small
                          ? "prxy:6000:7,hm:6000:1007,usr:6000:2007"
                          : "prxy:20000:7,hm:20000:1007,usr:20000:2007";
    }
    const auto sources = parseTenantMixSpec(tenant_spec);

    const std::vector<SchemeKind> schemes =
        artifacts.small
            ? std::vector<SchemeKind>{SchemeKind::Baseline,
                                      SchemeKind::Aero}
            : allSchemes();
    const std::vector<double> pecs =
        artifacts.small ? std::vector<double>{2500.0} : paperPecPoints();

    std::vector<Cell> cells;
    for (const double pec : pecs)
        for (const SchemeKind scheme : schemes)
            cells.push_back({scheme, pec});

    std::printf("tenants: %s\n%zu cells (schemes x PEC) on %d threads "
                "(env AERO_SWEEP_THREADS)\n",
                tenant_spec.c_str(), cells.size(),
                SweepRunner().threads());

    Json journal_cfg = Json::object();
    journal_cfg["tenants"] = tenant_spec;
    Json scheme_names = Json::array();
    for (const SchemeKind k : schemes)
        scheme_names.push(schemeKindName(k));
    journal_cfg["schemes"] = std::move(scheme_names);
    journal_cfg["pecs"] = bench::jsonArray(pecs);
    journal_cfg["small"] = artifacts.small;
    // Reclamation axes only appear when swept off their defaults so the
    // golden artifact and old journals stay byte-identical.
    if (gc_policy != "greedy")
        journal_cfg["gc_policy"] = gc_policy;
    if (wear_level != "none")
        journal_cfg["wear_level"] = wear_level;
    // Fork before opening the journal: worker children journal their
    // share of the cells and exit; the parent reopens the merged
    // directory with every cell cached and assembles the artifacts.
    artifacts.forkWorkers();
    const auto journal =
        artifacts.openJournal("tenant_qos", std::move(journal_cfg));
    const CampaignScope scope{journal.get()};

    const auto results = parallelMapJournaled(
        scope.journal, cells,
        [&](std::size_t, const Cell &c) {
            Json key = scope.key("scheme", schemeKindName(c.scheme));
            key["pec"] = c.pec;
            return key;
        },
        [&](const Cell &c) { return runCell(c, sources, gc_policy, wear_level); },
        [](const CellResult &r) { return toJson(r); }, cellFromJson);
    if (artifacts.isWorker())
        artifacts.exitWorker();

    for (std::size_t pi = 0; pi < pecs.size(); ++pi) {
        std::printf("\nPEC = %.1fK   (per-tenant read latency, us)\n",
                    pecs[pi] / 1000.0);
        bench::rule();
        std::printf("%-3s %-16s", "t", "source");
        for (const SchemeKind k : schemes)
            std::printf(" | %9s p99/p999", schemeKindName(k));
        std::printf("\n");
        bench::rule();
        for (std::size_t t = 0; t < sources.size(); ++t) {
            std::printf("%-3zu %-16s", t, sources[t].label.c_str());
            for (std::size_t si = 0; si < schemes.size(); ++si) {
                const auto &row =
                    results[pi * schemes.size() + si].rows[t];
                std::printf(" | %9.1f / %8.1f", row.p99Us, row.p999Us);
            }
            std::printf("\n");
        }
    }
    bench::rule();
    bench::note("every cell replays the identical merged stream; only "
                "the erase scheme and conditioning differ");

    bench::DevcharReport report("tenant_qos", {"scheme", "pec", "tenant"});
    report.spec["tenants"] = tenant_spec;
    report.spec["small"] = artifacts.small;
    if (gc_policy != "greedy")
        report.spec["gc_policy"] = gc_policy;
    if (wear_level != "none")
        report.spec["wear_level"] = wear_level;
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
        for (const auto &t : results[ci].rows) {
            Json row = Json::object();
            row["scheme"] = schemeKindName(cells[ci].scheme);
            row["pec"] = cells[ci].pec;
            row["tenant"] = static_cast<std::uint64_t>(t.tenant);
            row["source"] = t.source;
            row["reads"] = t.reads;
            row["writes"] = t.writes;
            row["avg_read_us"] = t.avgReadUs;
            row["p99_us"] = t.p99Us;
            row["p999_us"] = t.p999Us;
            report.addRow(std::move(row));
        }
    }
    Json doc = report.doc();
    doc["schema"] = "aero-tenant/1";
    if (artifacts.wantJson())
        writeJsonFile(artifacts.jsonPath, doc);
    if (artifacts.wantCsv())
        writeTextFile(artifacts.csvPath, bench::devcharCsv(report.results));
    return 0;
}
