/**
 * @file
 * Reproduces Fig. 9: the F(0) distribution after shallow erasure for
 * tSE in {0.5, 1, 1.5, 2} ms at 0.1K and 0.5K PEC, plus the fraction of
 * blocks that complete faster than the default tEP and the average
 * tBERS. The paper picks tSE = 1 ms (85% of blocks benefit, avg
 * latency ~2.6-2.9 ms).
 */

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main()
{
    bench::header("Figure 9: fail-bit distribution under varying tSE");
    FarmConfig fc;
    fc.numChips = 24;
    fc.blocksPerChip = 30;
    const auto data =
        runFig9Experiment(fc, {1, 2, 3, 4}, {100, 500});
    bench::rule();
    std::printf("%6s | %5s | F(0) range occupancy [%%]%18s| %8s | %8s\n",
                "PEC", "tSE", "", "benefit", "tBERS");
    std::printf("%6s | %5s |", "", "[ms]");
    for (int rg = 0; rg <= 6; ++rg)
        std::printf(" %5s", Ept::rangeLabel(rg).c_str());
    std::printf(" | %8s | %8s\n", "[%]", "[ms]");
    bench::rule();
    for (const auto &cell : data.cells) {
        std::printf("%6.0f | %5.1f |", cell.pec, 0.5 * cell.tseSlots);
        for (int rg = 0; rg <= 6; ++rg)
            std::printf(" %5.1f", 100.0 * cell.rangeFraction[rg]);
        std::printf(" | %7.1f%% | %8.2f\n",
                    100.0 * cell.benefitFraction, cell.avgTbersMs);
    }
    bench::rule();
    bench::note("paper: <80,85,86,88>% benefit for tSE=<0.5,1,1.5,2>ms; "
                "avg tBERS 2.9 ms at 0.1K, 2.5-2.7 ms at 0.5K");
    return 0;
}
