/**
 * @file
 * Reproduces Fig. 9: the F(0) distribution after shallow erasure for
 * tSE in {0.5, 1, 1.5, 2} ms at 0.1K and 0.5K PEC, plus the fraction of
 * blocks that complete faster than the default tEP and the average
 * tBERS. The paper picks tSE = 1 ms (85% of blocks benefit, avg
 * latency ~2.6-2.9 ms).
 * Each (PEC, tSE) cell runs on its own farm, cell-per-task across the
 * sweep thread pool; `--json`/`--csv` drop an `aero-devchar/1`
 * artifact, `--small` runs the regression-gate config.
 */

#include "bench_util.hh"
#include "devchar/experiments.hh"

using namespace aero;

int
main(int argc, char **argv)
{
    auto artifacts =
        bench::parseArtifactArgs(argc, argv, /*allow_small=*/true,
                                 /*allow_checkpoint=*/true,
                                 /*allow_workers=*/true);
    bench::header("Figure 9: fail-bit distribution under varying tSE");
    FarmConfig fc;
    fc.numChips = artifacts.small ? 6 : 24;
    fc.blocksPerChip = artifacts.small ? 10 : 30;
    const std::vector<int> tse_slots = {1, 2, 3, 4};
    const std::vector<double> pecs = {100, 500};
    Json journal_cfg = bench::farmJournalConfig(
        fc.numChips, fc.blocksPerChip, fc.seed, artifacts.small);
    journal_cfg["tse_slots"] = bench::jsonArray(tse_slots);
    journal_cfg["pecs"] = bench::jsonArray(pecs);
    // Fork before opening the journal: each worker child opens its own
    // journal file with claims armed, computes its claimed share, and
    // exits; the parent waits, then reopens the merged directory with
    // every record cached and assembles the artifacts alone.
    artifacts.forkWorkers();
    const auto journal = artifacts.openJournal("fig09_shallow_erase",
                                               std::move(journal_cfg));
    const auto data =
        runFig9Experiment(fc, tse_slots, pecs, {journal.get()});
    if (artifacts.isWorker())
        artifacts.exitWorker();
    bench::rule();
    std::printf("%6s | %5s | F(0) range occupancy [%%]%18s| %8s | %8s\n",
                "PEC", "tSE", "", "benefit", "tBERS");
    std::printf("%6s | %5s |", "", "[ms]");
    for (int rg = 0; rg <= 6; ++rg)
        std::printf(" %5s", Ept::rangeLabel(rg).c_str());
    std::printf(" | %8s | %8s\n", "[%]", "[ms]");
    bench::rule();
    for (const auto &cell : data.cells) {
        std::printf("%6.0f | %5.1f |", cell.pec, 0.5 * cell.tseSlots);
        for (int rg = 0; rg <= 6; ++rg)
            std::printf(" %5.1f", 100.0 * cell.rangeFraction[rg]);
        std::printf(" | %7.1f%% | %8.2f\n",
                    100.0 * cell.benefitFraction, cell.avgTbersMs);
    }
    bench::rule();
    bench::note("paper: <80,85,86,88>% benefit for tSE=<0.5,1,1.5,2>ms; "
                "avg tBERS 2.9 ms at 0.1K, 2.5-2.7 ms at 0.5K");

    bench::DevcharReport report("fig09_shallow_erase",
                                {"pec", "tse_slots"});
    report.spec["num_chips"] = fc.numChips;
    report.spec["blocks_per_chip"] = fc.blocksPerChip;
    report.spec["seed"] = fc.seed;
    report.spec["small"] = artifacts.small;
    for (const auto &cell : data.cells) {
        Json j = Json::object();
        j["pec"] = cell.pec;
        j["tse_slots"] = cell.tseSlots;
        j["samples"] = cell.samples;
        for (std::size_t rg = 0; rg < cell.rangeFraction.size(); ++rg)
            j[detail::concat("range_", rg, "_frac")] =
                cell.rangeFraction[rg];
        j["benefit_frac"] = cell.benefitFraction;
        j["avg_tbers_ms"] = cell.avgTbersMs;
        report.addRow(std::move(j));
    }
    artifacts.writeDevchar(report);
    return 0;
}
