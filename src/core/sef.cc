#include "core/sef.hh"

#include <bit>

#include "common/logging.hh"

namespace aero
{

SefBitmap::SefBitmap(std::size_t num_blocks)
    : count(num_blocks), words((num_blocks + 63) / 64, 0)
{
    // Stored inverted: a 0 bit means TRUE (shallow erasure wanted), so a
    // zero-initialized bitmap enables shallow erasure for fresh blocks --
    // exactly the paper's encoding.
}

bool
SefBitmap::get(BlockId id) const
{
    AERO_CHECK(id < count, "SEF index out of range: ", id);
    return ((words[id / 64] >> (id % 64)) & 1ULL) == 0;
}

void
SefBitmap::set(BlockId id, bool v)
{
    AERO_CHECK(id < count, "SEF index out of range: ", id);
    const std::uint64_t mask = 1ULL << (id % 64);
    if (v)
        words[id / 64] &= ~mask;
    else
        words[id / 64] |= mask;
}

std::size_t
SefBitmap::popcount() const
{
    std::size_t cleared = 0;
    for (const auto w : words)
        cleared += static_cast<std::size_t>(std::popcount(w));
    // Bits past `count` in the last word are zero (TRUE) by construction.
    return count - cleared;
}

} // namespace aero
