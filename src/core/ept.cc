#include "core/ept.hh"

#include <sstream>

#include "common/logging.hh"

namespace aero
{

Ept::Ept()
{
    // Default-construct to the no-reduction table: every cell the full
    // default pulse.
    for (auto &row : cons)
        row.fill(7);
    for (auto &row : aggr)
        row.fill(7);
}

int
Ept::rangeIndex(const ChipParams &params, double fail_bits)
{
    if (fail_bits <= params.gamma)
        return 0;
    for (int k = 1; k <= 7; ++k) {
        if (fail_bits <= params.gamma +
                         static_cast<double>(k) * params.delta) {
            return k;
        }
    }
    return 8;
}

std::string
Ept::rangeLabel(int range)
{
    AERO_CHECK(range >= 0 && range < kRanges, "bad range index");
    if (range == 0)
        return "<=g";
    if (range == 8)
        return ">7d";
    return "<=" + std::to_string(range) + "d";
}

int
Ept::clampRow(int loop_row)
{
    AERO_CHECK(loop_row >= 1, "loop rows are 1-based");
    return loop_row > kRows ? kRows : loop_row;
}

int
Ept::consSlots(int loop_row, int range) const
{
    AERO_CHECK(range >= 0 && range < kRanges, "bad range index");
    return cons[clampRow(loop_row) - 1][range];
}

int
Ept::aggrSlots(int loop_row, int range) const
{
    AERO_CHECK(range >= 0 && range < kRanges, "bad range index");
    return aggr[clampRow(loop_row) - 1][range];
}

void
Ept::setCons(int loop_row, int range, int slots)
{
    AERO_CHECK(range >= 0 && range < kRanges, "bad range index");
    AERO_CHECK(slots >= 0 && slots <= 7, "slots out of range");
    cons[clampRow(loop_row) - 1][range] = slots;
}

void
Ept::setAggr(int loop_row, int range, int slots)
{
    AERO_CHECK(range >= 0 && range < kRanges, "bad range index");
    AERO_CHECK(slots >= 0 && slots <= 7, "slots out of range");
    aggr[clampRow(loop_row) - 1][range] = slots;
}

Ept
Ept::canonical(const ChipParams &params)
{
    (void)params;  // Table 1 is normalized in gamma/delta units already.
    Ept t;
    // Values in 0.5-ms slots, transcribed from the paper's Table 1
    // ("t1 / t2", columns <=g, <=d, <=2d, ... <=7d; the >7d column is the
    // F_HIGH no-reduction case). Under the Fig. 7 fail-bit convention
    // (F = gamma at one slot remaining) the conservative column is the
    // exact-fit table: range k needs k+1 slots. Row 1 is the shallow
    // remainder, capped at default-tEP minus the 1-ms probe.
    //                 g  1d 2d 3d 4d 5d 6d 7d >7d
    const int c1[9] = {1, 2, 3, 4, 5, 5, 5, 5, 5};
    const int a1[9] = {0, 0, 1, 2, 3, 4, 5, 5, 5};
    const int c2[9] = {1, 2, 3, 4, 5, 6, 7, 7, 7};
    const int a2[9] = {0, 0, 1, 2, 3, 4, 5, 6, 7};
    const int c3[9] = {1, 2, 3, 4, 5, 6, 7, 7, 7};
    const int a3[9] = {0, 0, 1, 2, 3, 4, 5, 6, 7};
    const int c4[9] = {1, 2, 3, 4, 5, 6, 7, 7, 7};
    const int a4[9] = {0, 1, 2, 3, 4, 5, 6, 7, 7};
    const int c5[9] = {1, 2, 3, 4, 5, 6, 7, 7, 7};
    const int a5[9] = {1, 2, 3, 4, 5, 6, 7, 7, 7};
    const int *cs[kRows] = {c1, c2, c3, c4, c5};
    const int *as[kRows] = {a1, a2, a3, a4, a5};
    for (int row = 1; row <= kRows; ++row) {
        for (int rg = 0; rg < kRanges; ++rg) {
            t.setCons(row, rg, cs[row - 1][rg]);
            t.setAggr(row, rg, as[row - 1][rg]);
        }
    }
    return t;
}

std::string
Ept::toString(const ChipParams &params) const
{
    std::ostringstream os;
    os << "EPT (" << params.name << "), cells are mtEP in ms"
       << " 'cons / aggr':\n";
    os << "N\\F ";
    for (int rg = 0; rg < kRanges; ++rg)
        os << "| " << rangeLabel(rg) << "      ";
    os << "\n";
    for (int row = 1; row <= kRows; ++row) {
        os << "  " << row << " ";
        for (int rg = 0; rg < kRanges; ++rg) {
            const double t1 = 0.5 * consSlots(row, rg);
            const double t2 = 0.5 * aggrSlots(row, rg);
            char buf[32];
            std::snprintf(buf, sizeof(buf), "| %3.1f/%3.1f ", t1, t2);
            os << buf;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace aero
