#include "core/aero_scheme.hh"

#include <algorithm>

#include "common/logging.hh"
#include "erase/scheme_registry.hh"
#include "nand/erase_model.hh"

namespace aero
{

namespace detail
{
void linkAeroSchemes() {}
} // namespace detail

namespace
{

const SchemeRegistrar kRegisterAeroCons{
    "AERO-CONS", SchemeKind::AeroCons,
    [](NandChip &chip, const SchemeOptions &opts) {
        return std::make_unique<AeroScheme>(chip, opts, false,
                                            Ept::canonical(chip.params()));
    }};

const SchemeRegistrar kRegisterAero{
    "AERO", SchemeKind::Aero,
    [](NandChip &chip, const SchemeOptions &opts) {
        return std::make_unique<AeroScheme>(chip, opts, true,
                                            Ept::canonical(chip.params()));
    }};

} // namespace

/**
 * One in-flight AERO erase operation. Each nextSegment() call performs one
 * erase loop (or recovery/penalty step) worth of chip occupancy.
 */
class AeroSession : public EraseSession
{
  public:
    AeroSession(AeroScheme &scheme_, BlockId id)
        : scheme(scheme_), nand(scheme_.chip()), blk(id)
    {
    }

    bool
    nextSegment(EraseSegment &seg) override
    {
        switch (phase) {
          case Phase::Init:
            return doInit(seg);
          case Phase::Loop:
            return doLoop(seg);
          case Phase::Recover:
            return doRecover(seg);
          case Phase::Extra:
            return doExtra(seg);
          case Phase::Done:
            return false;
        }
        return false;
    }

  private:
    enum class Phase { Init, Loop, Recover, Extra, Done };

    const ChipParams &params() const { return nand.params(); }

    /** Charge one pulse+verify to the segment and the outcome. */
    VerifyResult
    pulseAndVerify(EraseSegment &seg, int lvl, int slots)
    {
        const auto pulse = nand.erasePulse(blk, lvl, slots);
        const auto verify = nand.verifyRead(blk);
        seg.duration = pulse.duration + verify.duration;
        seg.last = false;
        result.latency += seg.duration;
        result.loops += 1;
        appliedSlots += slots;
        return verify;
    }

    void
    setupNext(const FelpPrediction &pred)
    {
        pendingSlots = pred.slots;
        intendedLeftover = pred.allowedLeftover;
        intendedComplete = pred.allowedLeftover <= 0.0;
        if (pred.reduced)
            anyReduction = true;
    }

    double
    acceptBound() const
    {
        // Accept a deliberately incomplete erase if the measured F is
        // consistent with the intended leftover (half-slot tolerance plus
        // readout noise headroom).
        return expectedFailBits(params(), intendedLeftover + 0.6);
    }

    bool
    doInit(EraseSegment &seg)
    {
        nand.beginErase(blk);
        blockPec = nand.block(blk).pec();
        if (scheme.opts().shallowErasure && scheme.sefMap.get(blk)) {
            // Shallow probe: short pulse at V_ERASE(1), then VR(0).
            result.usedShallow = true;
            scheme.counters.shallowProbes += 1;
            anyReduction = true;
            const auto vr =
                pulseAndVerify(seg, 1, scheme.shallowSlots());
            if (vr.pass)
                return complete(seg);
            const auto pred =
                scheme.predictor.predict(1, vr.failBits, blockPec);
            // SEF maintenance: if probe + remainder cannot beat the
            // default tEP, skip the probe (and its VR) next time.
            if (scheme.shallowSlots() + pred.slots >=
                params().slotsPerLoop) {
                scheme.sefMap.set(blk, false);
            }
            if (pred.slots == 0)
                return acceptIncomplete(seg, pred.allowedLeftover);
            setupNext(pred);
            phase = Phase::Loop;
            return true;
        }
        // No shallow probe: loop 1 runs the full default pulse.
        pendingSlots = params().slotsPerLoop;
        intendedComplete = true;
        intendedLeftover = 0.0;
        phase = Phase::Loop;
        return doLoop(seg);
    }

    bool
    doLoop(EraseSegment &seg)
    {
        const auto vr = pulseAndVerify(seg, level, pendingSlots);
        if (vr.pass)
            return complete(seg);
        if (pendingSlots < params().slotsPerLoop && intendedComplete) {
            // We predicted this pulse would finish the block and it did
            // not: a genuine FELP misprediction (paper section 6).
            result.misprediction = true;
            scheme.counters.mispredictions += 1;
            slotsThisLevel = pendingSlots;
            phase = Phase::Recover;
            return true;
        }
        if (!intendedComplete && vr.failBits <= acceptBound())
            return acceptIncomplete(seg, intendedLeftover);
        // Ordinary erase failure: escalate to the next loop, with FELP
        // sizing its pulse.
        result.eraseFailures += 1;
        const auto pred =
            scheme.predictor.predict(level + 1, vr.failBits, blockPec);
        if (pred.slots == 0) {
            scheme.counters.skippedLoops += 1;
            return acceptIncomplete(seg, pred.allowedLeftover);
        }
        if (appliedSlots >= params().maxLoops * params().slotsPerLoop)
            return finishOp(seg);  // give up: defective outlier block
        level = std::min(level + 1, params().maxLevel);
        setupNext(pred);
        return true;
    }

    bool
    doRecover(EraseSegment &seg)
    {
        // Misprediction handling: extra short EP steps at the same
        // V_ERASE, raising it once the accumulated time at this level
        // exceeds the default tEP.
        const auto vr = pulseAndVerify(seg, level, 1);
        slotsThisLevel += 1;
        if (vr.pass)
            return complete(seg);
        if (appliedSlots >= params().maxLoops * params().slotsPerLoop)
            return finishOp(seg);
        if (slotsThisLevel >= params().slotsPerLoop) {
            level = std::min(level + 1, params().maxLevel);
            slotsThisLevel = 0;
        }
        return true;
    }

    bool
    doExtra(EraseSegment &seg)
    {
        // Injected misprediction penalty (Fig. 16): one extra 0.5-ms EP
        // step plus its verify-read.
        pulseAndVerify(seg, level, 1);
        return complete(seg, true);
    }

    bool
    acceptIncomplete(EraseSegment &seg, double leftover)
    {
        (void)leftover;
        result.acceptedIncomplete = true;
        scheme.counters.incompleteAccepts += 1;
        return complete(seg);
    }

    bool
    complete(EraseSegment &seg, bool no_inject = false)
    {
        const double rate = scheme.opts().mispredictionRate;
        if (!no_inject && anyReduction && rate > 0.0 &&
            scheme.schemeRng.chance(rate)) {
            result.misprediction = true;
            scheme.counters.injectedMispredictions += 1;
            phase = Phase::Extra;
            return true;
        }
        return finishOp(seg);
    }

    bool
    finishOp(EraseSegment &seg)
    {
        const auto commit = nand.finishErase(blk);
        result.complete = commit.complete;
        result.leftoverSlots = commit.leftoverSlots;
        result.damage = commit.damage;
        result.slotsApplied = commit.slotsApplied;
        result.maxLevel = commit.maxLevel;
        scheme.counters.erases += 1;
        seg.last = true;
        phase = Phase::Done;
        return true;
    }

    AeroScheme &scheme;
    NandChip &nand;
    BlockId blk;
    Phase phase = Phase::Init;
    int level = 1;
    int pendingSlots = 7;
    int slotsThisLevel = 0;
    int appliedSlots = 0;
    double intendedLeftover = 0.0;
    bool intendedComplete = true;
    bool anyReduction = false;
    double blockPec = 0.0;
};

AeroScheme::AeroScheme(NandChip &chip, const SchemeOptions &opts,
                       bool use_ecc_margin, const Ept &ept)
    : EraseScheme(chip, opts), useEccMargin(use_ecc_margin), table(ept),
      predictor(chip.params(), chip.wearModel(), ept,
                FelpConfig{use_ecc_margin, opts.marginPad,
                           opts.rberRequirement}),
      sefMap(static_cast<std::size_t>(chip.numBlocks())),
      schemeRng(opts.seed)
{
}

std::unique_ptr<EraseSession>
AeroScheme::begin(BlockId id)
{
    AERO_CHECK(id < sefMap.size(), "block id out of range");
    return std::make_unique<AeroSession>(*this, id);
}

std::unique_ptr<EraseScheme>
makeEraseScheme(SchemeKind kind, NandChip &chip, const SchemeOptions &opts)
{
    return EraseSchemeRegistry::instance().make(kind, chip, opts);
}

} // namespace aero
