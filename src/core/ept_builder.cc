#include "core/ept_builder.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/felp.hh"
#include "devchar/chip_shard.hh"
#include "nand/erase_model.hh"

namespace aero
{

MIspeResult
measureMIspe(NandChip &chip, BlockId id)
{
    const ChipParams &p = chip.params();
    MIspeResult r;
    chip.beginErase(id);
    const int max_slots = p.maxLoops * p.slotsPerLoop;
    while (r.slotsRequired < max_slots) {
        const int level = 1 + r.slotsRequired / p.slotsPerLoop;
        chip.erasePulse(id, level, 1);
        const auto vr = chip.verifyRead(id);
        r.slotsRequired += 1;
        r.failAfterSlot.push_back(vr.failBits);
        if (vr.pass)
            break;
    }
    chip.finishErase(id);
    // Paper's estimate: N_ISPE = ceil(n/7), mtEP = 0.5*(1+((n-1) mod 7)).
    r.nIspe = (r.slotsRequired + p.slotsPerLoop - 1) / p.slotsPerLoop;
    r.finalLoopSlots = 1 + (r.slotsRequired - 1) % p.slotsPerLoop;
    const double tep_ms = ticksToMs(p.defaultTep());
    const double tvr_ms = ticksToMs(p.tVr);
    r.mtBersMs = static_cast<double>(r.nIspe - 1) * (tep_ms + tvr_ms) +
                 0.5 * static_cast<double>(r.finalLoopSlots) + tvr_ms;
    return r;
}

Json
toJson(const MIspeResult &m)
{
    Json row = Json::object();
    row["slots_required"] = m.slotsRequired;
    row["n_ispe"] = m.nIspe;
    row["final_loop_slots"] = m.finalLoopSlots;
    row["mtbers_ms"] = m.mtBersMs;
    Json fails = Json::array();
    for (const double f : m.failAfterSlot)
        fails.push(f);
    row["fail_after_slot"] = std::move(fails);
    return row;
}

MIspeResult
mIspeResultFromJson(const Json &row)
{
    MIspeResult m;
    m.slotsRequired =
        static_cast<int>(row.get("slots_required").asInt64());
    m.nIspe = static_cast<int>(row.get("n_ispe").asInt64());
    m.finalLoopSlots =
        static_cast<int>(row.get("final_loop_slots").asInt64());
    m.mtBersMs = row.get("mtbers_ms").asDouble();
    const Json &fails = row.get("fail_after_slot");
    for (std::size_t i = 0; i < fails.size(); ++i)
        m.failAfterSlot.push_back(fails.at(i).asDouble());
    return m;
}

EptBuilder::EptBuilder(ChipPopulation &population,
                       const EptBuilderConfig &cfg_)
    : pop(population), cfg(cfg_)
{
}

Ept
EptBuilder::build(const CampaignScope &scope)
{
    const ChipParams &p = pop.params();
    samples = 0;

    // maxRemaining[row-1][range]: worst-case slots still needed when the
    // previous VR fell in `range`; rowPecSum/rowPecCount give the typical
    // PEC at which each row occurs (for the aggressive-margin column).
    double max_remaining[Ept::kRows][Ept::kRanges] = {};
    double row_pec_sum[Ept::kRows] = {};
    std::uint64_t row_pec_cnt[Ept::kRows] = {};

    const int shallow_slots = 2;  // tSE = 1 ms

    // The m-ISPE campaign runs on the shared chip-sharded engine (see
    // devchar/chip_shard.hh); folding the returned (pec, chip, block)-
    // ordered records keeps the derived EPT identical for any thread
    // count.
    const auto by_pec = measureChipSharded(
        pop, cfg.blocksPerChip, cfg.pecPoints,
        [](NandChip &chip, BlockId id, std::size_t) {
            return measureMIspe(chip, id);
        },
        scope, MIspeCodec{});

    for (std::size_t pi = 0; pi < cfg.pecPoints.size(); ++pi) {
        const double pec = cfg.pecPoints[pi];
        for (const auto &m : by_pec[pi]) {
            samples += 1;

            const int row_max = std::min(m.nIspe, Ept::kRows);
            row_pec_sum[row_max - 1] += pec;
            row_pec_cnt[row_max - 1] += 1;

            // Row 1 (shallow remainder): F after the 1-ms probe
            // predicts the slots still needed to finish loop 1.
            if (static_cast<int>(m.failAfterSlot.size()) >
                    shallow_slots &&
                m.slotsRequired > shallow_slots &&
                m.slotsRequired <= p.slotsPerLoop) {
                const double f0 = m.failAfterSlot[shallow_slots - 1];
                const int rg = Ept::rangeIndex(p, f0);
                const double rem = m.slotsRequired - shallow_slots;
                max_remaining[0][rg] =
                    std::max(max_remaining[0][rg], rem);
            }
            // Rows >= 2: F at each loop boundary predicts the next
            // loop.
            for (int i = 1; i < m.nIspe; ++i) {
                const int boundary = i * p.slotsPerLoop;
                if (boundary >
                    static_cast<int>(m.failAfterSlot.size()))
                    break;
                const double f = m.failAfterSlot[boundary - 1];
                const int rg = Ept::rangeIndex(p, f);
                const int row = std::min(i + 1, Ept::kRows);
                const double rem = std::min<double>(
                    p.slotsPerLoop, m.slotsRequired - boundary);
                max_remaining[row - 1][rg] =
                    std::max(max_remaining[row - 1][rg], rem);
            }
        }
    }

    // Assemble the table. Unobserved cells keep the default full pulse
    // (conservative by construction). Monotonicity is enforced across
    // ranges: a higher fail-bit range can never need fewer slots.
    Ept t;
    WearModel wear(p);
    for (int row = 1; row <= Ept::kRows; ++row) {
        const int cap = row == 1 ? p.slotsPerLoop - shallow_slots
                                 : p.slotsPerLoop;
        int prev = 1;
        for (int rg = 0; rg < Ept::kRanges; ++rg) {
            int slots;
            if (max_remaining[row - 1][rg] > 0.0) {
                slots = static_cast<int>(
                    std::ceil(max_remaining[row - 1][rg]));
            } else if (rg >= 7) {
                slots = cap;  // F_HIGH region: no reduction
            } else {
                // Unobserved: interpolate from the model's linear
                // fail-bit relation (range k needs ~k+1 slots).
                slots = std::min(cap, rg + 1);
            }
            slots = std::clamp(slots, prev, cap);
            prev = slots;
            t.setCons(row, rg, slots);
        }
        // Aggressive column: spend the ECC margin available at the PEC
        // where this row typically occurs.
        const double typical_pec = row_pec_cnt[row - 1] > 0
            ? row_pec_sum[row - 1] /
              static_cast<double>(row_pec_cnt[row - 1])
            : cfg.pecPoints.back();
        const double margin = static_cast<double>(cfg.rberRequirement) -
                              cfg.marginPad -
                              wear.predictedBaseRber(typical_pec);
        const double allowed =
            margin <= 0.0 ? 0.0 : wear.leftoverForResidual(margin);
        for (int rg = 0; rg < Ept::kRanges; ++rg) {
            const int cons = t.consSlots(row, rg);
            const int reduction = static_cast<int>(std::floor(allowed));
            const int aggr = rg >= 7 ? cons
                                     : std::max(0, cons - reduction);
            t.setAggr(row, rg, aggr);
        }
    }
    return t;
}

} // namespace aero
