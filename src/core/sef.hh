/**
 * @file
 * Shallow Erasure Flags (SEF) — a per-block bitmap tracking whether the
 * shallow-probe optimization is worthwhile for a block (paper section 6).
 * Bits start at TRUE so fresh blocks always get shallow erasure; the flag
 * is cleared once a shallow probe shows the block cannot benefit, saving
 * the extra VR(0) on future erases.
 */

#ifndef AERO_CORE_SEF_HH
#define AERO_CORE_SEF_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace aero
{

class SefBitmap
{
  public:
    explicit SefBitmap(std::size_t num_blocks);

    bool get(BlockId id) const;
    void set(BlockId id, bool v);

    std::size_t size() const { return count; }

    /** Number of blocks still flagged for shallow erasure. */
    std::size_t popcount() const;

    /** Storage footprint in bytes (the paper's overhead argument). */
    std::size_t storageBytes() const { return words.size() * 8; }

  private:
    std::size_t count;
    std::vector<std::uint64_t> words;
};

} // namespace aero

#endif // AERO_CORE_SEF_HH
