/**
 * @file
 * Erase-timing Parameter Table (EPT) — the paper's Table 1.
 *
 * The table maps (loop row, fail-bit range) to the predicted minimum
 * erase-pulse time mtEP of the next loop, in 0.5-ms slots. Rows are
 * indexed by the loop being predicted (clamped to the characterized
 * maximum of 5); columns are the fail-bit ranges
 *   0: F <= gamma, k (1..7): F <= k*delta, 8: F > 7*delta (= F_HIGH,
 *   no reduction possible).
 * Each cell stores two values: the conservative prediction t1 (process
 * variation only) and the aggressive prediction t2 (also spending the
 * ECC-capability margin); a t2 of 0 slots means "skip the loop entirely".
 */

#ifndef AERO_CORE_EPT_HH
#define AERO_CORE_EPT_HH

#include <array>
#include <string>

#include "nand/chip_params.hh"

namespace aero
{

class Ept
{
  public:
    static constexpr int kRows = 5;     //!< loop rows 1..5
    static constexpr int kRanges = 9;   //!< gamma, 1..7 delta, > F_HIGH

    Ept();

    /** Fail-bit range index for a count F given the chip's gamma/delta. */
    static int rangeIndex(const ChipParams &params, double fail_bits);

    /** Human-readable label of a range column ("<=g", "<=3d", ">7d"). */
    static std::string rangeLabel(int range);

    /** Conservative slots for predicting loop `loop_row` (1-based). */
    int consSlots(int loop_row, int range) const;

    /** Aggressive (ECC-margin) slots; may be 0 = skip. */
    int aggrSlots(int loop_row, int range) const;

    void setCons(int loop_row, int range, int slots);
    void setAggr(int loop_row, int range, int slots);

    /** The paper's published Table 1 for the characterized 3D TLC chips. */
    static Ept canonical(const ChipParams &params);

    /** Pretty-print in the paper's "t1 / t2" layout (ms). */
    std::string toString(const ChipParams &params) const;

    bool operator==(const Ept &o) const = default;

  private:
    static int clampRow(int loop_row);
    std::array<std::array<int, kRanges>, kRows> cons{};
    std::array<std::array<int, kRanges>, kRows> aggr{};
};

} // namespace aero

#endif // AERO_CORE_EPT_HH
