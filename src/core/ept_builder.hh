/**
 * @file
 * Offline EPT construction via the paper's modified-ISPE (m-ISPE)
 * characterization (section 5.1): erase with 0.5-ms pulses, raising
 * V_ERASE every 7 pulses, reading the fail-bit count after every pulse.
 * From the per-block (F(i), remaining-slots) pairs the builder derives the
 * conservative column (max observed mtEP per fail-bit range) and the
 * aggressive column (conservative minus the leftover the ECC margin can
 * absorb at the PEC where each N_ISPE row typically occurs).
 */

#ifndef AERO_CORE_EPT_BUILDER_HH
#define AERO_CORE_EPT_BUILDER_HH

#include <vector>

#include "core/ept.hh"
#include "exp/campaign.hh"
#include "nand/population.hh"

namespace aero
{

/** Result of one m-ISPE measurement (one erase of one block). */
struct MIspeResult
{
    int slotsRequired = 0;   //!< R: 0.5-ms pulses until VR passed
    int nIspe = 0;           //!< ceil(R / 7): loops under original ISPE
    int finalLoopSlots = 0;  //!< mtEP(N_ISPE) in slots
    double mtBersMs = 0.0;   //!< estimated minimum tBERS (ms)
    /** F after each pulse; failAfterSlot[s] is the VR after slot s+1. */
    std::vector<double> failAfterSlot;
};

/**
 * Measure a block's minimum erase timing with m-ISPE. Performs (and
 * commits) one real erase operation on the block.
 */
MIspeResult measureMIspe(NandChip &chip, BlockId id);

/** @name Campaign-journal codec (exact round trip, bit-for-bit). */
/** @{ */
Json toJson(const MIspeResult &m);
MIspeResult mIspeResultFromJson(const Json &row);

struct MIspeCodec
{
    Json encode(const MIspeResult &m) const { return toJson(m); }
    MIspeResult
    decode(const Json &row) const
    {
        return mIspeResultFromJson(row);
    }
};
/** @} */

struct EptBuilderConfig
{
    int blocksPerChip = 12;
    /** PEC points at which blocks are characterized. */
    std::vector<double> pecPoints = {0, 500, 1000, 1500, 2000, 2500,
                                     3000, 3500, 4000, 4500, 5000};
    /** Margin parameters for deriving the aggressive column. */
    double marginPad = 12.0;
    int rberRequirement = 63;
};

class EptBuilder
{
  public:
    EptBuilder(ChipPopulation &population, const EptBuilderConfig &cfg);

    /**
     * Run the characterization campaign and derive the table. With a
     * journal-bearing @p scope the campaign checkpoints each chip task
     * and resumes from a prior journal, bit-identically.
     */
    Ept build(const CampaignScope &scope = {});

    /** Number of m-ISPE measurements taken by the last build(). */
    std::uint64_t measurements() const { return samples; }

  private:
    ChipPopulation &pop;
    EptBuilderConfig cfg;
    std::uint64_t samples = 0;
};

} // namespace aero

#endif // AERO_CORE_EPT_BUILDER_HH
