/**
 * @file
 * Fail-bit-count-based Erase Latency Prediction (FELP, paper section 4).
 *
 * Given the fail-bit count of the previous verify-read, FELP predicts the
 * minimum pulse time of the next erase loop from the EPT. With the
 * ECC-margin optimization enabled it additionally computes how many slots
 * of erasure may be left *undone*: the expected extra raw bit errors of
 * the leftover must fit inside the block's current ECC-capability margin
 * (requirement - predicted base RBER - safety pad).
 */

#ifndef AERO_CORE_FELP_HH
#define AERO_CORE_FELP_HH

#include "core/ept.hh"
#include "nand/wear_model.hh"

namespace aero
{

struct FelpConfig
{
    bool useEccMargin = true;   //!< false = AERO-CONS behaviour
    double marginPad = 18.0;    //!< bits held back from the margin
    int rberRequirement = 63;   //!< bits per 1 KiB (Fig. 17 sweeps this)
};

struct FelpPrediction
{
    int slots = 7;                 //!< pulse length for the next loop
    double allowedLeftover = 0.0;  //!< slots of incompleteness accepted
    bool reduced = false;          //!< slots < default
    int range = 8;                 //!< fail-bit range index consulted
};

class Felp
{
  public:
    Felp(const ChipParams &params, const WearModel &wear, Ept ept,
         const FelpConfig &cfg);

    /**
     * Predict the next loop's pulse time.
     *
     * @param next_loop  1-based index of the loop being predicted (the
     *                   remainder pulse of shallow erasure is loop 1)
     * @param fail_bits  F from the previous verify-read
     * @param block_pec  the block's nominal PEC (margin sizing)
     */
    FelpPrediction predict(int next_loop, double fail_bits,
                           double block_pec) const;

    /**
     * Slots of leftover whose residual RBER still fits the block's margin
     * (0 when the margin optimization is disabled or exhausted).
     */
    double allowedLeftoverSlots(double block_pec) const;

    const Ept &ept() const { return table; }
    const FelpConfig &config() const { return cfg; }

  private:
    const ChipParams &chip;
    const WearModel &wear;
    Ept table;
    FelpConfig cfg;
};

} // namespace aero

#endif // AERO_CORE_FELP_HH
