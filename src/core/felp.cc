#include "core/felp.hh"

#include <algorithm>
#include <cmath>

#include "nand/erase_model.hh"

namespace aero
{

Felp::Felp(const ChipParams &params, const WearModel &wear_, Ept ept,
           const FelpConfig &cfg_)
    : chip(params), wear(wear_), table(ept), cfg(cfg_)
{
}

double
Felp::allowedLeftoverSlots(double block_pec) const
{
    if (!cfg.useEccMargin)
        return 0.0;
    const double margin = static_cast<double>(cfg.rberRequirement) -
                          cfg.marginPad -
                          wear.predictedBaseRber(block_pec);
    if (margin <= 0.0)
        return 0.0;
    return wear.leftoverForResidual(margin);
}

FelpPrediction
Felp::predict(int next_loop, double fail_bits, double block_pec) const
{
    FelpPrediction p;
    p.range = Ept::rangeIndex(chip, fail_bits);
    const int cons = table.consSlots(next_loop, p.range);
    if (!cfg.useEccMargin) {
        p.slots = cons;
        p.allowedLeftover = 0.0;
        p.reduced = p.slots < chip.slotsPerLoop;
        return p;
    }
    const double allowed = allowedLeftoverSlots(block_pec);
    const double remaining = remainingSlotsFor(chip, fail_bits);
    // Fewest slots that keep the expected leftover within the margin...
    const int for_margin = static_cast<int>(
        std::ceil(std::max(0.0, remaining - allowed)));
    // ...but never more aggressive than the characterized table allows.
    const int aggr = table.aggrSlots(next_loop, p.range);
    p.slots = std::clamp(std::max(aggr, for_margin), 0, cons);
    p.allowedLeftover = std::max(
        0.0, std::min(allowed, remaining - static_cast<double>(p.slots)));
    p.reduced = p.slots < chip.slotsPerLoop;
    return p;
}

} // namespace aero
