/**
 * @file
 * AERO — Adaptive ERase Operation (paper sections 4 and 6).
 *
 * AERO keeps the ISPE voltage staircase but adjusts each loop's pulse
 * time: the first loop is probed with a 1-ms shallow pulse (when the SEF
 * bitmap says it is worthwhile) and completed by a remainder pulse sized
 * from F(0); every later loop's pulse time comes from FELP on F(i-1).
 * With the ECC-margin optimization (full AERO, vs AERO-CONS) the final
 * loop may be trimmed further or skipped entirely, deliberately leaving a
 * bounded amount of erasure undone.
 *
 * Mispredictions (never observed in the paper's characterization, but
 * injectable for the Fig. 16 sensitivity study) are handled exactly as the
 * paper describes: additional short EP steps at the same V_ERASE, raising
 * the level once the accumulated pulse time passes the default tEP.
 */

#ifndef AERO_CORE_AERO_SCHEME_HH
#define AERO_CORE_AERO_SCHEME_HH

#include "core/felp.hh"
#include "core/sef.hh"
#include "erase/scheme.hh"

namespace aero
{

/** Running counters exposed for experiments and tests. */
struct AeroStats
{
    std::uint64_t erases = 0;
    std::uint64_t shallowProbes = 0;
    std::uint64_t skippedLoops = 0;       //!< loops avoided entirely
    std::uint64_t incompleteAccepts = 0;  //!< margin-spending erases
    std::uint64_t mispredictions = 0;
    std::uint64_t injectedMispredictions = 0;
};

class AeroScheme : public EraseScheme
{
  public:
    /**
     * @param use_ecc_margin  false builds AERO-CONS
     * @param ept             the erase-timing parameter table (canonical
     *                        Table 1 or one built by EptBuilder)
     */
    AeroScheme(NandChip &chip, const SchemeOptions &opts,
               bool use_ecc_margin, const Ept &ept);

    SchemeKind
    kind() const override
    {
        return useEccMargin ? SchemeKind::Aero : SchemeKind::AeroCons;
    }

    std::unique_ptr<EraseSession> begin(BlockId id) override;

    const SefBitmap &sef() const { return sefMap; }
    const Felp &felp() const { return predictor; }
    const AeroStats &stats() const { return counters; }

    /** Shallow-pulse length in slots (tSE = 1 ms). */
    int shallowSlots() const { return 2; }

  private:
    friend class AeroSession;

    bool useEccMargin;
    Ept table;
    Felp predictor;
    SefBitmap sefMap;
    Rng schemeRng;
    AeroStats counters;
};

/**
 * Construct any of the five compared schemes (SchemeKind compat shim;
 * delegates to the string-keyed EraseSchemeRegistry).
 */
std::unique_ptr<EraseScheme> makeEraseScheme(SchemeKind kind, NandChip &chip,
                                             const SchemeOptions &opts);

} // namespace aero

#endif // AERO_CORE_AERO_SCHEME_HH
