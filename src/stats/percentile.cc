#include "stats/percentile.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace aero
{

double
PercentileTracker::mean() const
{
    if (samples.empty())
        return 0.0;
    return sum / static_cast<double>(samples.size());
}

std::uint64_t
PercentileTracker::percentile(double p) const
{
    AERO_CHECK(p >= 0.0 && p <= 1.0, "percentile p out of range: ", p);
    if (samples.empty())
        return 0;
    ensureSorted();
    if (p <= 0.0)
        return samples.front();
    const auto n = samples.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return samples[rank - 1];
}

std::uint64_t
PercentileTracker::min() const
{
    if (samples.empty())
        return 0;
    ensureSorted();
    return samples.front();
}

void
PercentileTracker::clear()
{
    samples.clear();
    sorted = false;
    sum = 0.0;
}

void
PercentileTracker::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

} // namespace aero
