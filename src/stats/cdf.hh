/**
 * @file
 * Empirical CDF builder for the characterization figures (e.g. the
 * cumulative distribution of mtBERS across blocks, Fig. 4).
 */

#ifndef AERO_STATS_CDF_HH
#define AERO_STATS_CDF_HH

#include <vector>

namespace aero
{

class Cdf
{
  public:
    Cdf() = default;

    void add(double v) { samples.push_back(v); dirty = true; }

    std::size_t count() const { return samples.size(); }

    /** Fraction of samples <= x. */
    double fractionAtOrBelow(double x) const;

    /** Value at quantile q in [0, 1] (nearest rank). */
    double quantile(double q) const;

    double mean() const;
    double stddev() const;

    /** Evaluate the CDF at each of the given x positions. */
    std::vector<double> evaluateAt(const std::vector<double> &xs) const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples;
    mutable bool dirty = false;
};

} // namespace aero

#endif // AERO_STATS_CDF_HH
