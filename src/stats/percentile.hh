/**
 * @file
 * Exact percentile tracking for latency distributions.
 *
 * Read tail latency is the paper's headline performance metric (99.99th and
 * 99.9999th percentiles, Fig. 14). Those extreme quantiles are hostile to
 * sketching, so we record every sample and compute exact order statistics
 * with nth_element on demand.
 */

#ifndef AERO_STATS_PERCENTILE_HH
#define AERO_STATS_PERCENTILE_HH

#include <cstdint>
#include <vector>

namespace aero
{

class PercentileTracker
{
  public:
    PercentileTracker() = default;

    void reserve(std::size_t n) { samples.reserve(n); }

    void
    add(std::uint64_t v)
    {
        samples.push_back(v);
        sum += v;
        sorted = false;
    }

    std::size_t count() const { return samples.size(); }

    /** Arithmetic mean; 0 for an empty tracker. */
    double mean() const;

    /**
     * Exact p-quantile (p in [0, 1]) using the nearest-rank method the
     * storage literature uses for tail latencies: the ceil(p*N)-th smallest
     * sample. p = 1 returns the maximum.
     */
    std::uint64_t percentile(double p) const;

    std::uint64_t max() const { return percentile(1.0); }
    std::uint64_t min() const;

    void clear();

    /** Direct access for CDF building. */
    const std::vector<std::uint64_t> &values() const { return samples; }

  private:
    void ensureSorted() const;

    mutable std::vector<std::uint64_t> samples;
    mutable bool sorted = false;
    double sum = 0.0;
};

} // namespace aero

#endif // AERO_STATS_PERCENTILE_HH
