/**
 * @file
 * Fixed-width histogram used by the characterization experiments
 * (e.g. the F(0) distributions of Fig. 9).
 */

#ifndef AERO_STATS_HISTOGRAM_HH
#define AERO_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace aero
{

class Histogram
{
  public:
    /**
     * @param lo        inclusive lower bound of the first bin
     * @param bin_width width of each bin (> 0)
     * @param num_bins  number of regular bins; values past the end land in
     *                  a dedicated overflow bin, values below lo in an
     *                  underflow bin
     */
    Histogram(double lo, double bin_width, std::size_t num_bins);

    void add(double v, std::uint64_t weight = 1);

    std::size_t numBins() const { return bins.size(); }
    std::uint64_t binCount(std::size_t i) const { return bins.at(i); }
    std::uint64_t underflow() const { return under; }
    std::uint64_t overflow() const { return over; }
    std::uint64_t total() const { return totalCount; }

    /** Fraction of all samples (incl. under/overflow) in bin i. */
    double binFraction(std::size_t i) const;

    /** Left edge of bin i. */
    double binLeft(std::size_t i) const;
    /** Center of bin i. */
    double binCenter(std::size_t i) const;

    void clear();

  private:
    double lo;
    double width;
    std::vector<std::uint64_t> bins;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t totalCount = 0;
};

} // namespace aero

#endif // AERO_STATS_HISTOGRAM_HH
