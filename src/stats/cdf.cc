#include "stats/cdf.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace aero
{

void
Cdf::ensureSorted() const
{
    if (dirty) {
        std::sort(samples.begin(), samples.end());
        dirty = false;
    }
}

double
Cdf::fractionAtOrBelow(double x) const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    const auto it = std::upper_bound(samples.begin(), samples.end(), x);
    return static_cast<double>(it - samples.begin()) /
           static_cast<double>(samples.size());
}

double
Cdf::quantile(double q) const
{
    AERO_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
    AERO_CHECK(!samples.empty(), "quantile of empty CDF");
    ensureSorted();
    const auto n = samples.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return samples[rank - 1];
}

double
Cdf::mean() const
{
    if (samples.empty())
        return 0.0;
    double s = 0.0;
    for (double v : samples)
        s += v;
    return s / static_cast<double>(samples.size());
}

double
Cdf::stddev() const
{
    if (samples.size() < 2)
        return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double v : samples)
        s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples.size() - 1));
}

std::vector<double>
Cdf::evaluateAt(const std::vector<double> &xs) const
{
    std::vector<double> out;
    out.reserve(xs.size());
    for (double x : xs)
        out.push_back(fractionAtOrBelow(x));
    return out;
}

} // namespace aero
