#include "stats/histogram.hh"

#include <cmath>

#include "common/logging.hh"

namespace aero
{

Histogram::Histogram(double lo_, double bin_width, std::size_t num_bins)
    : lo(lo_), width(bin_width), bins(num_bins, 0)
{
    AERO_CHECK(bin_width > 0.0, "bin width must be positive");
    AERO_CHECK(num_bins > 0, "need at least one bin");
}

void
Histogram::add(double v, std::uint64_t weight)
{
    totalCount += weight;
    if (v < lo) {
        under += weight;
        return;
    }
    const auto idx = static_cast<std::size_t>((v - lo) / width);
    if (idx >= bins.size()) {
        over += weight;
        return;
    }
    bins[idx] += weight;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (totalCount == 0)
        return 0.0;
    return static_cast<double>(bins.at(i)) /
           static_cast<double>(totalCount);
}

double
Histogram::binLeft(std::size_t i) const
{
    AERO_CHECK(i < bins.size(), "bin index out of range");
    return lo + width * static_cast<double>(i);
}

double
Histogram::binCenter(std::size_t i) const
{
    return binLeft(i) + width / 2.0;
}

void
Histogram::clear()
{
    for (auto &b : bins)
        b = 0;
    under = over = totalCount = 0;
}

} // namespace aero
