#include "nand/nand_chip.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "nand/erase_model.hh"

namespace aero
{

NandChip::NandChip(const ChipParams &params, const ChipGeometry &geom,
                   std::uint64_t seed, double chip_pv)
    : chip(params), geo(geom), wear(params), chipPvFactor(chip_pv)
{
    AERO_CHECK(geo.planes > 0 && geo.blocksPerPlane > 0 &&
               geo.pagesPerBlock > 0, "invalid chip geometry");
    Rng chip_rng(seed);
    const int n = geo.totalBlocks();
    blocks.reserve(n);
    for (int i = 0; i < n; ++i) {
        const double pv_z = chip_rng.gauss();
        blocks.emplace_back(static_cast<BlockId>(i),
                            pv_z, chip_rng.fork(i));
    }
}

Block &
NandChip::block(BlockId id)
{
    AERO_CHECK(id < blocks.size(), "block id out of range: ", id);
    return blocks[id];
}

const Block &
NandChip::block(BlockId id) const
{
    AERO_CHECK(id < blocks.size(), "block id out of range: ", id);
    return blocks[id];
}

void
NandChip::beginErase(BlockId id)
{
    Block &blk = block(id);
    AERO_CHECK(!blk.op().active, "beginErase on block with in-flight erase");
    blk.op().reset();
    blk.op().active = true;
    const double peq = wear.equivalentPec(blk.wear());
    blk.op().requirement = sampleRequirement(chip, peq, blk.pvZ(),
                                             chipPvFactor, blk.rng());
}

PulseResult
NandChip::erasePulse(BlockId id, int level, int slots, double stress_scale)
{
    Block &blk = block(id);
    AERO_CHECK(blk.op().active, "erasePulse without beginErase");
    AERO_CHECK(level >= 1 && level <= chip.maxLevel,
               "erase level beyond the chip's V_ERASE range: ", level);
    // Pulses that skip preamble levels (i-ISPE's jump) leave a residue of
    // lagging wordlines; the residue defeats the pulse no matter how much
    // voltage headroom it had. The probability is a property of the
    // *block* (how many staircase levels its deep cells actually need),
    // not of how high the pulse jumped.
    const int needed = chip.scheduleLevel(blk.op().progress);
    const int skipped = level - needed;
    const int intrinsic = nIspeFor(chip, blk.op().requirement) - 1;
    const int lag_levels = std::min(skipped, intrinsic);
    // An escalated retry usually reaches the lagging wordlines (at the
    // cost of its higher V_ERASE -- exactly the paper's criticism of
    // i-ISPE), so the lagging risk is strongly reduced on retry pulses.
    const double retry_scale =
        blk.op().pulses == 0 ? 1.0 : chip.skipFailRetryFactor;
    const bool lagging =
        lag_levels > 0 &&
        pulseJumpDepth(chip, level) > blk.op().progress &&
        blk.rng().chance(retry_scale *
                         std::min(chip.skipFailCap,
                                  chip.skipFailPerLevel * lag_levels));
    applyPulse(chip, blk.op(), level, slots, stress_scale);
    if (lagging) {
        const double resid = blk.rng().uniform(chip.skipFailResidLo,
                                               chip.skipFailResidHi);
        blk.op().progress = std::min(blk.op().progress,
                                     blk.op().requirement - resid);
    }
    PulseResult res;
    res.duration = static_cast<Tick>(slots) * chip.tSlot;
    res.slots = slots;
    res.level = level;
    return res;
}

VerifyResult
NandChip::verifyRead(BlockId id)
{
    Block &blk = block(id);
    AERO_CHECK(blk.op().active, "verifyRead without beginErase");
    VerifyResult res;
    res.failBits = failBits(chip, blk.op(), blk.rng());
    res.pass = res.failBits <= chip.fPass;
    res.duration = chip.tVr;
    return res;
}

EraseCommit
NandChip::finishErase(BlockId id)
{
    Block &blk = block(id);
    AERO_CHECK(blk.op().active, "finishErase without beginErase");
    EraseCommit c;
    const EraseOpState &op = blk.op();
    c.leftoverSlots = std::max(0.0, op.requirement - op.progress);
    c.complete = c.leftoverSlots <= 0.0;
    c.damage = op.damage;
    c.pulses = op.pulses;
    c.slotsApplied = op.slotsApplied;
    c.maxLevel = op.maxLevel;

    blk.addWear(op.damage);
    blk.setPec(blk.pec() + 1.0);
    blk.setLeftover(c.leftoverSlots);
    blk.resetPages();
    blk.op().reset();
    ++eraseOps;
    return c;
}

Tick
NandChip::readPage(BlockId id, int page)
{
    const Block &blk = block(id);
    AERO_CHECK(page >= 0 && page < geo.pagesPerBlock,
               "page out of range: ", page);
    // Reading an unwritten page is allowed (returns all-erased data) and
    // costs the same sensing latency.
    (void)blk;
    return chip.tRead;
}

Tick
NandChip::programPage(BlockId id, Tick tprog_override)
{
    Block &blk = block(id);
    AERO_CHECK(!blk.op().active, "program during in-flight erase");
    AERO_CHECK(blk.programmedPages() < geo.pagesPerBlock,
               "program past end of block ", id,
               " (erase-before-write violated)");
    blk.claimNextPage();
    return tprog_override != 0 ? tprog_override : chip.tProg;
}

double
NandChip::maxRber(BlockId id) const
{
    const Block &blk = block(id);
    return wear.maxRber(blk.wear(), blk.leftoverSlots());
}

double
NandChip::opRequirement(BlockId id) const
{
    const Block &blk = block(id);
    AERO_CHECK(blk.op().active, "opRequirement outside erase operation");
    return blk.op().requirement;
}

void
NandChip::ageBaseline(BlockId id, int cycles)
{
    Block &blk = block(id);
    AERO_CHECK(!blk.op().active, "ageBaseline during in-flight erase");
    AERO_CHECK(cycles >= 0, "negative aging");
    if (cycles == 0)
        return;
    // Closed-form: along the Baseline trajectory, equivalent PEC tracks
    // nominal PEC, so the delta of the cumulative curve is the expected
    // damage of `cycles` full-tEP erases.
    const double peq0 = wear.equivalentPec(blk.wear());
    const double add = wear.baselineCumDamage(peq0 + cycles) -
                       wear.baselineCumDamage(peq0);
    blk.addWear(add);
    blk.setPec(blk.pec() + cycles);
    blk.setLeftover(0.0);
    blk.resetPages();
}

} // namespace aero
