/**
 * @file
 * Wear accounting and RBER model.
 *
 * Damage accumulates as the stress integral of applied erase pulses
 * (erase_model.hh). The WearModel converts accumulated damage back into
 * "equivalent PEC" by inverting the Baseline cumulative-damage curve, so a
 * block erased gently (AERO) ages more slowly than its nominal P/E count.
 * Max RBER under the paper's reference condition (1-year retention at
 * 30 C) is a function of equivalent PEC plus a residual term for
 * insufficiently erased blocks (Fig. 10).
 */

#ifndef AERO_NAND_WEAR_MODEL_HH
#define AERO_NAND_WEAR_MODEL_HH

#include "common/interp.hh"
#include "nand/chip_params.hh"

namespace aero
{

class WearModel
{
  public:
    explicit WearModel(const ChipParams &params);

    /** Mean damage of one full Baseline erase at the given PEC. */
    double baselineDamagePerErase(double pec) const;

    /** Cumulative Baseline damage after `pec` cycles: C(pec). */
    double baselineCumDamage(double pec) const;

    /** Equivalent PEC for accumulated damage: C^{-1}(wear). */
    double equivalentPec(double wear) const;

    /** Max RBER of a completely erased block at equivalent PEC. */
    double rberBase(double peq) const;

    /** Extra max RBER from `leftover` slots of incomplete erasure. */
    double residualRber(double leftover_slots) const;

    /** Largest leftover whose residual RBER stays within `budget`
     *  (numeric inverse of residualRber; 0 budget -> offset slots). */
    double leftoverForResidual(double budget) const;

    /** Block max RBER for its wear + leftover (1-yr retention at 30 C). */
    double maxRber(double wear, double leftover_slots) const;

    /**
     * The FTL-side predictor AERO uses to size the ECC-capability margin:
     * conservative because it assumes worst-case (Baseline) wear for the
     * block's nominal PEC, never the lower true wear.
     */
    double predictedBaseRber(double pec) const;

    const ChipParams &params() const { return chip; }

  private:
    ChipParams chip;
    PiecewiseLinear cum;  //!< pec -> C(pec), built on a grid at ctor time
};

} // namespace aero

#endif // AERO_NAND_WEAR_MODEL_HH
