#include "nand/wear_model.hh"

#include <cmath>
#include <vector>

#include "common/mathutil.hh"
#include "nand/erase_model.hh"

namespace aero
{

namespace
{

constexpr double kGridMaxPec = 20000.0;
constexpr double kGridStep = 50.0;
constexpr int kPvNodes = 33;

} // namespace

WearModel::WearModel(const ChipParams &params) : chip(params)
{
    // Integrate the *population-averaged* Baseline damage-per-erase curve
    // on a grid. The average must be taken over the process-variation
    // distribution: damage is convex in the requirement (hard blocks need
    // extra loops at exponentially higher stress), so damage-at-mean-R
    // would systematically understate wear and break the peq = pec
    // identity along the Baseline trajectory.
    std::vector<std::pair<double, double>> knots;
    double acc = 0.0;
    knots.emplace_back(0.0, 0.0);
    for (double p = 0.0; p < kGridMaxPec; p += kGridStep) {
        const double mid = p + kGridStep / 2.0;
        acc += baselineDamagePerErase(mid) * kGridStep;
        knots.emplace_back(p + kGridStep, acc);
    }
    cum = PiecewiseLinear(std::move(knots));
}

double
WearModel::baselineDamagePerErase(double pec) const
{
    static const std::vector<double> nodes =
        normalQuadratureNodes(kPvNodes);
    const double mean = chip.anchorSlots(pec);
    const double amp = chip.pvAmp(pec);
    double dmg = 0.0;
    for (const double node : nodes) {
        // Same truncated-variation model as sampleRequirement().
        const double z = std::clamp(node, -chip.pvZCap, chip.pvZCap);
        const double r = mean * std::exp(z * amp - 0.5 * amp * amp);
        dmg += baselineEraseDamage(chip, r);
    }
    return dmg / static_cast<double>(nodes.size());
}

double
WearModel::baselineCumDamage(double pec) const
{
    if (pec <= 0.0)
        return 0.0;
    return cum(pec);
}

double
WearModel::equivalentPec(double wear) const
{
    if (wear <= 0.0)
        return 0.0;
    return cum.inverse(wear);
}

double
WearModel::rberBase(double peq) const
{
    if (peq <= 0.0)
        return chip.rber0;
    return chip.rber0 +
           chip.rberCoeff * std::pow(peq / 1000.0, chip.rberExp);
}

double
WearModel::residualRber(double leftover_slots) const
{
    // The final ~slot of "leftover" corresponds to the fail-bit gamma
    // floor: cells so close to the verify level that data randomization
    // absorbs nearly all of them. Residual errors come from the excess.
    const double excess = leftover_slots - chip.residualOffset;
    if (excess <= 0.0)
        return 0.0;
    double r = chip.residualPerDelta * std::pow(excess, chip.residualShape);
    const double deep = excess - chip.residualQuadOnset;
    if (deep > 0.0)
        r += chip.residualQuad * deep * deep;
    return r;
}

double
WearModel::leftoverForResidual(double budget) const
{
    if (budget <= 0.0)
        return chip.residualOffset;
    double lo = chip.residualOffset;
    double hi = lo + 16.0;
    for (int i = 0; i < 48; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (residualRber(mid) <= budget)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

double
WearModel::maxRber(double wear, double leftover_slots) const
{
    return rberBase(equivalentPec(wear)) + residualRber(leftover_slots);
}

double
WearModel::predictedBaseRber(double pec) const
{
    return rberBase(pec);
}

} // namespace aero
