#include "nand/block.hh"

namespace aero
{

Block::Block(BlockId id, double pv_z, Rng rng)
    : blockId(id), pvZScore(pv_z), blockRng(rng)
{
}

} // namespace aero
