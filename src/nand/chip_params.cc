#include "nand/chip_params.hh"

namespace aero
{

const char *
chipTypeName(ChipType t)
{
    switch (t) {
      case ChipType::Tlc3d48L: return "3D TLC (48L)";
      case ChipType::Tlc2d: return "2D TLC (2x-nm)";
      case ChipType::Mlc3d48L: return "3D MLC (48L)";
    }
    return "unknown";
}

namespace
{

PiecewiseLinear
dpesTProgCurve()
{
    // 10 % tPROG penalty early, growing to 30 % as the voltage window
    // tightens toward the 3K-PEC applicability limit (paper section 7.1).
    return PiecewiseLinear({{0.0, 1.10}, {2500.0, 1.30}, {3000.0, 1.30}});
}

} // namespace

ChipParams
ChipParams::tlc3d()
{
    ChipParams p;
    p.type = ChipType::Tlc3d48L;
    p.name = chipTypeName(p.type);
    // Mean required slots per PEC, calibrated to Fig. 4:
    //  - PEC 0: all blocks single-loop, >70 % within 2.5 ms (<=5 slots)
    //  - PEC 1K: ~76 % single-loop, ~30 % within 2.5 ms
    //  - PEC 2K: essentially all blocks need >= 2 loops (2-4 loops)
    //  - PEC 3K: N_ISPE = 3 is the mode (~40-55 %)
    //  - PEC 5K: up to 5 loops
    p.anchorSlots = PiecewiseLinear({
        {0.0, 4.6}, {1000.0, 5.9}, {2000.0, 14.8}, {3000.0, 18.0},
        {4000.0, 23.0}, {5000.0, 28.0}, {6000.0, 33.5}, {8000.0, 45.0},
        {12000.0, 68.0},
    });
    // Process-variation amplitude grows toward mid-life (std of mtBERS at
    // 3.5K PEC is ~2.7 ms in the paper, i.e. ~5.5 slots around a ~20
    // mean) and tightens again at end of life, where Fig. 4 shows all
    // blocks within the N_ISPE = 4-5 bands.
    p.pvAmp = PiecewiseLinear({
        {0.0, 0.135}, {1000.0, 0.22}, {2500.0, 0.27}, {3500.0, 0.28},
        {5000.0, 0.12}, {8000.0, 0.13},
    });
    p.dpesTProgFactor = dpesTProgCurve();
    return p;
}

ChipParams
ChipParams::tlc2d()
{
    ChipParams p = tlc3d();
    p.type = ChipType::Tlc2d;
    p.name = chipTypeName(p.type);
    // 2D chips: planar FG cells erase more uniformly -> lower variation,
    // smaller fail-bit quanta (four-plane chips count per-plane bitlines),
    // and loop-skipping works as designed (preambleEff = 1).
    p.gamma = 350.0;
    p.delta = 3600.0;
    p.preambleEff = 1.0;
    p.skipFailPerLevel = 0.015;  // loop-skipping is reliable on 2D cells
    p.pvAmp = PiecewiseLinear({
        {0.0, 0.10}, {1000.0, 0.16}, {3000.0, 0.20}, {5000.0, 0.10},
        {8000.0, 0.11},
    });
    // Commodity 2D TLC wears out slightly earlier.
    p.anchorSlots = PiecewiseLinear({
        {0.0, 4.8}, {1000.0, 6.4}, {2000.0, 15.6}, {3000.0, 19.0},
        {4000.0, 24.5}, {5000.0, 30.0}, {6000.0, 36.0}, {8000.0, 48.0},
        {12000.0, 72.0},
    });
    return p;
}

ChipParams
ChipParams::mlc3d()
{
    ChipParams p = tlc3d();
    p.type = ChipType::Mlc3d48L;
    p.name = chipTypeName(p.type);
    // MLC stores 2 bits/cell: wider V_TH margins -> lower residual floor
    // and RBER growth, higher endurance.
    p.gamma = 420.0;
    p.delta = 4400.0;
    p.rber0 = 12.0;
    p.rberCoeff = 7.2;
    p.anchorSlots = PiecewiseLinear({
        {0.0, 4.3}, {1000.0, 5.4}, {2000.0, 13.2}, {3000.0, 16.2},
        {4000.0, 20.5}, {5000.0, 25.0}, {6000.0, 30.0}, {8000.0, 40.0},
        {12000.0, 60.0},
    });
    return p;
}

ChipParams
ChipParams::forType(ChipType t)
{
    switch (t) {
      case ChipType::Tlc3d48L: return tlc3d();
      case ChipType::Tlc2d: return tlc2d();
      case ChipType::Mlc3d48L: return mlc3d();
    }
    return tlc3d();
}

} // namespace aero
