/**
 * @file
 * A population of NAND chips with chip-to-chip process variation — the
 * in-silico stand-in for the paper's 160-chip characterization testbed.
 */

#ifndef AERO_NAND_POPULATION_HH
#define AERO_NAND_POPULATION_HH

#include <cstdint>
#include <vector>

#include "nand/nand_chip.hh"

namespace aero
{

struct PopulationConfig
{
    ChipType type = ChipType::Tlc3d48L;
    int numChips = 160;
    ChipGeometry geometry{4, 30, 64};  //!< small blocks for fast studies
    std::uint64_t seed = 42;
};

class ChipPopulation
{
  public:
    explicit ChipPopulation(const PopulationConfig &cfg);

    int numChips() const { return static_cast<int>(chips.size()); }
    NandChip &chip(int i);
    const ChipParams &params() const { return chipParams; }
    const PopulationConfig &config() const { return cfg; }

    /** Total blocks across all chips. */
    int totalBlocks() const;

    /**
     * Visit `blocks_per_chip` evenly selected blocks from every chip (the
     * paper selects 120 blocks per chip at different physical locations).
     */
    template <typename Fn>
    void
    forEachSampledBlock(int blocks_per_chip, Fn &&fn)
    {
        for (int c = 0; c < numChips(); ++c)
            forEachSampledBlockOfChip(c, blocks_per_chip, fn);
    }

    /**
     * The same sampled-block walk restricted to one chip. Chips own all
     * of their mutable state (blocks, RNG streams), so callers may visit
     * different chips from different threads concurrently — the basis of
     * the chip-sharded characterization experiments.
     */
    template <typename Fn>
    void
    forEachSampledBlockOfChip(int chip_index, int blocks_per_chip,
                              Fn &&fn)
    {
        NandChip &c = chip(chip_index);
        const int n = c.numBlocks();
        const int take = blocks_per_chip < n ? blocks_per_chip : n;
        for (int i = 0; i < take; ++i) {
            const auto id = static_cast<BlockId>(
                (static_cast<long long>(i) * n) / take);
            fn(c, id);
        }
    }

  private:
    PopulationConfig cfg;
    ChipParams chipParams;
    std::vector<NandChip> chips;
};

} // namespace aero

#endif // AERO_NAND_POPULATION_HH
