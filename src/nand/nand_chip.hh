/**
 * @file
 * Functional + timing model of one NAND flash chip.
 *
 * The erase interface is deliberately split into the micro-operations the
 * paper's AERO-FTL drives through ONFI GET/SET FEATURE commands:
 *
 *   beginErase()  -> start an erase operation on a block
 *   erasePulse()  -> one EP step at an explicit ISPE level and tEP
 *                    (SET FEATURE: erase time)
 *   verifyRead()  -> one VR step returning the fail-bit count F
 *                    (GET FEATURE: fail-bit count)
 *   finishErase() -> commit (PEC++, wear accounting, leftover bookkeeping)
 *
 * Erase schemes (Baseline ISPE, i-ISPE, DPES, AERO) are built entirely on
 * top of this surface; none of them touches block internals. All
 * micro-operations return their duration so the event-driven SSD simulator
 * can charge chip-occupancy time, including mid-pulse suspension.
 */

#ifndef AERO_NAND_NAND_CHIP_HH
#define AERO_NAND_NAND_CHIP_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "nand/block.hh"
#include "nand/chip_params.hh"
#include "nand/wear_model.hh"

namespace aero
{

/** Physical layout of one chip. */
struct ChipGeometry
{
    int planes = 4;
    int blocksPerPlane = 497;
    int pagesPerBlock = 2112;

    int totalBlocks() const { return planes * blocksPerPlane; }
};

struct PulseResult
{
    Tick duration = 0;
    int slots = 0;
    int level = 0;
};

struct VerifyResult
{
    double failBits = 0.0;
    bool pass = false;      //!< F <= F_PASS: block completely erased
    Tick duration = 0;
};

struct EraseCommit
{
    bool complete = false;      //!< leftover == 0
    double leftoverSlots = 0.0;
    double damage = 0.0;
    int pulses = 0;
    int slotsApplied = 0;
    int maxLevel = 0;
};

class NandChip
{
  public:
    /**
     * @param params  chip-type parameter set
     * @param geom    physical layout
     * @param seed    chip RNG seed (drives all per-block substreams)
     * @param chip_pv chip-level process-variation factor (1.0 = nominal);
     *                pass a value sampled from the population model
     */
    NandChip(const ChipParams &params, const ChipGeometry &geom,
             std::uint64_t seed, double chip_pv = 1.0);

    const ChipParams &params() const { return chip; }
    const ChipGeometry &geometry() const { return geo; }
    const WearModel &wearModel() const { return wear; }
    double chipPv() const { return chipPvFactor; }

    int numBlocks() const { return static_cast<int>(blocks.size()); }
    Block &block(BlockId id);
    const Block &block(BlockId id) const;

    /** @name Erase micro-operations */
    /** @{ */

    /** Start an erase operation: samples this operation's requirement R. */
    void beginErase(BlockId id);

    /**
     * One erase-pulse (EP) step.
     * @param level        ISPE voltage level (1 = V_ERASE(1))
     * @param slots        pulse length in 0.5-ms slots (SET FEATURE tEP)
     * @param stress_scale damage-only scale (DPES's reduced V_ERASE)
     */
    PulseResult erasePulse(BlockId id, int level, int slots,
                           double stress_scale = 1.0);

    /** One verify-read (VR) step; F is readable until the next pulse. */
    VerifyResult verifyRead(BlockId id);

    /** Commit the operation and return what physically happened. */
    EraseCommit finishErase(BlockId id);

    /** @} */

    /** @name Page operations (timing + erase-before-write enforcement) */
    /** @{ */
    Tick readPage(BlockId id, int page);
    /** Programs the next free page in the block; returns latency. */
    Tick programPage(BlockId id, Tick tprog_override = 0);
    /** @} */

    /** Max RBER of the block under 1-yr retention (paper's metric). */
    double maxRber(BlockId id) const;

    /** True requirement values, for characterization harnesses only. */
    double opRequirement(BlockId id) const;

    /**
     * Analytically age a block by `cycles` Baseline erases (fast path for
     * experiment conditioning; equivalent in expectation to running the
     * Baseline scheme `cycles` times).
     */
    void ageBaseline(BlockId id, int cycles);

    /** Number of completed erase operations (all blocks). */
    std::uint64_t eraseOpsCompleted() const { return eraseOps; }

  private:
    ChipParams chip;
    ChipGeometry geo;
    WearModel wear;
    double chipPvFactor;
    std::vector<Block> blocks;
    std::uint64_t eraseOps = 0;
};

} // namespace aero

#endif // AERO_NAND_NAND_CHIP_HH
