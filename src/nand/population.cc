#include "nand/population.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace aero
{

ChipPopulation::ChipPopulation(const PopulationConfig &cfg_)
    : cfg(cfg_), chipParams(ChipParams::forType(cfg_.type))
{
    AERO_CHECK(cfg.numChips > 0, "population needs at least one chip");
    Rng pop_rng(cfg.seed);
    chips.reserve(cfg.numChips);
    for (int i = 0; i < cfg.numChips; ++i) {
        const double chip_pv =
            pop_rng.lognormFactor(chipParams.chipPvSigma);
        chips.emplace_back(chipParams, cfg.geometry,
                           pop_rng.next(), chip_pv);
    }
}

NandChip &
ChipPopulation::chip(int i)
{
    AERO_CHECK(i >= 0 && i < numChips(), "chip index out of range: ", i);
    return chips[static_cast<std::size_t>(i)];
}

int
ChipPopulation::totalBlocks() const
{
    int total = 0;
    for (const auto &c : chips)
        total += c.numBlocks();
    return total;
}

} // namespace aero
