/**
 * @file
 * Per-block persistent state. A Block is a passive record; all physics is
 * applied through NandChip (which owns the WearModel and RNG streams).
 */

#ifndef AERO_NAND_BLOCK_HH
#define AERO_NAND_BLOCK_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "nand/erase_model.hh"

namespace aero
{

class Block
{
  public:
    Block(BlockId id, double pv_z, Rng rng);

    BlockId id() const { return blockId; }

    /** Frozen process-variation z-score (easy vs hard to erase). */
    double pvZ() const { return pvZScore; }

    /** Nominal program/erase cycle count. */
    double pec() const { return pecCount; }

    /** Accumulated erase-stress damage. */
    double wear() const { return wearDamage; }

    /** Slots of erasure the last erase left undone (aggressive AERO). */
    double leftoverSlots() const { return leftover; }

    /** Pages programmed since the last erase (sequential-in-block). */
    int programmedPages() const { return nextPage; }

    /** In-flight erase operation state. */
    EraseOpState &op() { return opState; }
    const EraseOpState &op() const { return opState; }

    Rng &rng() { return blockRng; }

    /** @name Mutators used exclusively by NandChip */
    /** @{ */
    void addWear(double d) { wearDamage += d; }
    void setPec(double p) { pecCount = p; }
    void setLeftover(double l) { leftover = l; }
    void resetPages() { nextPage = 0; }
    int claimNextPage() { return nextPage++; }
    /** @} */

  private:
    BlockId blockId;
    double pvZScore;
    double pecCount = 0.0;
    double wearDamage = 0.0;
    double leftover = 0.0;
    int nextPage = 0;
    EraseOpState opState;
    Rng blockRng;
};

} // namespace aero

#endif // AERO_NAND_BLOCK_HH
