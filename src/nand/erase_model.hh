/**
 * @file
 * Pure erase-pulse physics: requirement sampling, pulse progress, and
 * fail-bit readout. These free functions are the single source of truth
 * for how a block responds to erase pulses; Block/NandChip only hold state.
 *
 * Model recap (DESIGN.md section 5): a block needs R "slots" (0.5 ms units)
 * of erasure along the canonical ISPE schedule, whose voltage level rises
 * by one every slotsPerLoop slots. Erasure depth is threshold-dominated:
 * the V_TH shift a pulse achieves is governed first by its voltage, then
 * by its duration. A pulse at level L therefore
 *   - instantly inherits the depth the canonical preamble loops 1..L-1
 *     would have reached, discounted by preambleEff (< 1 on 3D chips:
 *     the jump falls short of the true preamble, which is why i-ISPE's
 *     loop-skipping increasingly fails on 3D flash), i.e.
 *     p := max(p, preambleEff * slotsPerLoop * (L-1)); then
 *   - advances one position per slot while level(p) <= L, and only
 *     underEff^(level(p) - L) per slot beyond its own band (staying at a
 *     low voltage for longer cannot reach the deeper erase states --
 *     why a shallow probe cannot erase a multi-loop block).
 * The verify-read fail-bit count is F = gamma + delta * (R - p) while
 * p < R (the linear relation of Fig. 7) and a sub-F_PASS value afterwards.
 */

#ifndef AERO_NAND_ERASE_MODEL_HH
#define AERO_NAND_ERASE_MODEL_HH

#include "common/rng.hh"
#include "nand/chip_params.hh"

namespace aero
{

/** Transient state of one in-flight erase operation on a block. */
struct EraseOpState
{
    bool active = false;
    double requirement = 0.0;  //!< R: slots needed this operation
    double progress = 0.0;     //!< p: canonical-schedule position reached
    int pulses = 0;            //!< EP steps issued so far
    int slotsApplied = 0;      //!< raw slots of voltage applied
    int maxLevel = 0;          //!< highest level used
    double damage = 0.0;       //!< accumulated wear of this operation

    void
    reset()
    {
        *this = EraseOpState();
    }
};

/**
 * Sample the slot requirement R for a new erase operation.
 *
 * @param params    chip type
 * @param peq       equivalent PEC of the block (wear-derived)
 * @param pv_z      frozen per-block process-variation z-score
 * @param chip_pv   frozen chip-level multiplicative factor
 * @param rng       per-block RNG (per-erase jitter)
 */
double sampleRequirement(const ChipParams &params, double peq, double pv_z,
                         double chip_pv, Rng &rng);

/** Advance rate (schedule positions per slot) at position p, level L. */
double advancePerSlot(const ChipParams &params, double progress, int level);

/** Depth a level-L pulse inherits instantly (discounted preamble). */
double pulseJumpDepth(const ChipParams &params, int level);

/**
 * Apply an erase pulse of `slots` slots at `level` to an operation.
 * Updates progress/damage/slot accounting in place.
 *
 * @param stress_scale  scales damage only (DPES's lowered V_ERASE)
 * @param jump_scale    scales the preamble jump depth (skip failures)
 */
void applyPulse(const ChipParams &params, EraseOpState &op, int level,
                int slots, double stress_scale = 1.0,
                double jump_scale = 1.0);

/** Fail-bit readout for the current operation state (with noise). */
double failBits(const ChipParams &params, const EraseOpState &op, Rng &rng);

/** Noise-free expected fail bits for `remaining` slots of work left. */
double expectedFailBits(const ChipParams &params, double remaining);

/** Invert expectedFailBits: remaining slots implied by a fail-bit count. */
double remainingSlotsFor(const ChipParams &params, double fail_bits);

/** Derived quantities of a requirement R under the canonical schedule. */
int nIspeFor(const ChipParams &params, double requirement);
int finalLoopSlotsFor(const ChipParams &params, double requirement);

/**
 * Mean damage of a full Baseline (fixed-tEP) erase of a block whose mean
 * requirement is `mean_slots`: every loop runs all slotsPerLoop slots.
 */
double baselineEraseDamage(const ChipParams &params, double mean_slots);

} // namespace aero

#endif // AERO_NAND_ERASE_MODEL_HH
