#include "nand/erase_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace aero
{

double
sampleRequirement(const ChipParams &params, double peq, double pv_z,
                  double chip_pv, Rng &rng)
{
    const double mean = params.anchorSlots(peq);
    const double amp = params.pvAmp(peq);
    // exp(z*amp - amp^2/2) keeps the population mean at `mean` while the
    // frozen (truncated) z-score makes a block consistently easy or hard
    // to erase.
    const double z = std::clamp(pv_z, -params.pvZCap, params.pvZCap);
    const double pv_block = std::exp(z * amp - 0.5 * amp * amp);
    const double jitter = rng.lognormFactor(params.eraseNoiseSigma);
    const double r = mean * pv_block * chip_pv * jitter;
    // A requirement past the chip's loop budget cannot occur on a healthy
    // block; clamp so the fixed-latency schemes always terminate complete.
    const double cap =
        static_cast<double>(params.maxLoops * params.slotsPerLoop - 1);
    return std::clamp(r, 1.0, cap);
}

double
advancePerSlot(const ChipParams &params, double progress, int level)
{
    AERO_CHECK(level >= 1, "erase level must be >= 1");
    const int needed = params.scheduleLevel(progress);
    if (level >= needed)
        return 1.0;
    return std::pow(params.underEff, static_cast<double>(needed - level));
}

double
pulseJumpDepth(const ChipParams &params, int level)
{
    return params.preambleEff *
           static_cast<double>(params.slotsPerLoop * (level - 1));
}

void
applyPulse(const ChipParams &params, EraseOpState &op, int level, int slots,
           double stress_scale, double jump_scale)
{
    AERO_CHECK(op.active, "pulse on idle block");
    AERO_CHECK(slots >= 1, "pulse must apply at least one slot");
    // Voltage dominance: the pulse immediately reaches the (discounted)
    // depth of the canonical preamble for its level.
    op.progress = std::max(op.progress,
                           pulseJumpDepth(params, level) * jump_scale);
    const double dmg_slot = params.dmgPerSlot(level) * stress_scale;
    for (int s = 0; s < slots; ++s) {
        // Advance slot by slot: the needed level can change mid-pulse.
        if (op.progress < op.requirement)
            op.progress += advancePerSlot(params, op.progress, level);
        op.damage += dmg_slot;
    }
    op.slotsApplied += slots;
    op.pulses += 1;
    op.maxLevel = std::max(op.maxLevel, level);
}

double
expectedFailBits(const ChipParams &params, double remaining)
{
    // Fig. 7's relation: the fail-bit count sits at the gamma floor when
    // half a millisecond of erasure remains and climbs by delta per
    // additional slot. F <= gamma therefore predicts "one slot left".
    if (remaining <= 0.0)
        return 0.0;
    return params.gamma +
           params.delta * std::max(0.0, remaining - 1.0);
}

double
remainingSlotsFor(const ChipParams &params, double fail_bits)
{
    return std::max(
        0.0, 1.0 + (fail_bits - params.gamma) / params.delta);
}

double
failBits(const ChipParams &params, const EraseOpState &op, Rng &rng)
{
    AERO_CHECK(op.active, "verify-read on idle block");
    const double remaining = op.requirement - op.progress;
    if (remaining <= 0.0) {
        // Completely erased: a handful of noisy bitlines well below F_PASS.
        return rng.uniform(0.0, params.fPass * 0.8);
    }
    const double f = expectedFailBits(params, remaining);
    return f * rng.lognormFactor(params.failNoiseSigma);
}

int
nIspeFor(const ChipParams &params, double requirement)
{
    const double r = std::max(1.0, requirement);
    return static_cast<int>(
        std::ceil(r / static_cast<double>(params.slotsPerLoop)));
}

int
finalLoopSlotsFor(const ChipParams &params, double requirement)
{
    const int n = nIspeFor(params, requirement);
    const double in_final =
        requirement - static_cast<double>((n - 1) * params.slotsPerLoop);
    return std::max(1, static_cast<int>(std::ceil(in_final)));
}

double
baselineEraseDamage(const ChipParams &params, double mean_slots)
{
    const int n = nIspeFor(params, mean_slots);
    double dmg = 0.0;
    for (int i = 1; i <= n; ++i)
        dmg += static_cast<double>(params.slotsPerLoop) * params.dmgPerSlot(i);
    return dmg;
}

} // namespace aero
