/**
 * @file
 * Per-chip-type parameter sets for the NAND erase-physics model.
 *
 * The model works in *slots* of tSlot = 0.5 ms at an ISPE voltage level L;
 * the canonical ISPE schedule spends slotsPerLoop = 7 slots per loop and
 * raises the level by one every loop (the paper's dVISPE step). Every
 * quantity the paper measures on real chips (Figs. 4 and 7-11) is derived
 * from these parameters; see DESIGN.md section 5 for the calibration
 * rationale and tests/test_calibration.cpp for the locked-in tolerance
 * bands.
 */

#ifndef AERO_NAND_CHIP_PARAMS_HH
#define AERO_NAND_CHIP_PARAMS_HH

#include <cmath>
#include <string>

#include "common/interp.hh"
#include "common/types.hh"

namespace aero
{

enum class ChipType
{
    Tlc3d48L,   //!< 48-layer 3D TLC (the paper's main 160-chip population)
    Tlc2d,      //!< 2x-nm 2D TLC (Fig. 11)
    Mlc3d48L,   //!< 48-layer 3D MLC (Fig. 11)
};

const char *chipTypeName(ChipType t);

struct ChipParams
{
    ChipType type = ChipType::Tlc3d48L;
    std::string name = "3D TLC (48L)";

    /** @name ISPE timing */
    /** @{ */
    Tick tSlot = msToTicks(0.5);    //!< EP granularity (m-ISPE step)
    int slotsPerLoop = 7;           //!< default tEP = 7 slots = 3.5 ms
    Tick tVr = msToTicks(0.1);      //!< verify-read latency
    Tick tRead = 40 * kUs;          //!< page read (tR)
    Tick tProg = 350 * kUs;         //!< page program (tPROG)
    int maxLoops = 10;              //!< hard cap incl. escalations
    int maxLevel = 12;              //!< highest V_ERASE step the chip has
    int nominalMaxNIspe = 5;        //!< max loops seen in characterization
    /** @} */

    /** @name Fail-bit model (Fig. 7): F = gamma + delta * remaining slots */
    /** @{ */
    double gamma = 500.0;           //!< residual floor at 0.5 ms remaining
    double delta = 5000.0;          //!< fail bits removed per 0.5 ms slot
    double fPass = 100.0;           //!< ISPE pass threshold F_PASS
    double failNoiseSigma = 0.05;   //!< multiplicative readout noise
    /** @} */

    /** @name Erase-requirement model (Fig. 4) */
    /** @{ */
    /** Equivalent-PEC -> mean required slots. */
    PiecewiseLinear anchorSlots;
    /** Equivalent-PEC -> log-normal sigma of the frozen block pv factor. */
    PiecewiseLinear pvAmp;
    /**
     * Process variation is bounded in real silicon: block z-scores are
     * truncated to +/- pvZCap (otherwise log-normal tails manufacture
     * blocks needing loop counts the paper's 19200-block study never
     * observed, and their runaway wear distorts population averages).
     */
    double pvZCap = 2.0;
    double chipPvSigma = 0.04;      //!< chip-to-chip variation
    double eraseNoiseSigma = 0.05;  //!< per-erase-operation jitter
    /** @} */

    /** @name Pulse-progress physics (DESIGN.md section 5) */
    /** @{ */
    /**
     * Fraction of the ideal over-level boost realised when a pulse runs at
     * a higher level than the canonical schedule position calls for.
     * < 1 for 3D chips: skipping preamble loops (i-ISPE) falls short more
     * often, the paper's key observation about 3D flash.
     */
    double preambleEff = 0.96;
    /**
     * Probability, per skipped preamble level, that an over-leveled pulse
     * leaves a residue of lagging wordlines (3D cell-physics variability;
     * near zero on 2D chips where loop-skipping works as designed). The
     * residue is independent of voltage headroom -- deep outlier cells
     * need the staircase's dwell time, not just a higher final voltage --
     * which is what makes i-ISPE fail persistently on 3D flash and pay
     * for a full extra loop at an escalated V_ERASE each time.
     */
    double skipFailPerLevel = 0.18;
    double skipFailCap = 0.5;
    /** Escalated retries mostly reach the lagging wordlines; the risk of
     *  lagging again is scaled down by this factor on retry pulses. */
    double skipFailRetryFactor = 0.35;
    /** Lagging-wordline residue left by a failed skip, in slots. */
    double skipFailResidLo = 0.3;
    double skipFailResidHi = 1.5;
    /** Per-level efficiency of under-leveled pulses (shallow probes). */
    double underEff = 0.25;
    /** @} */

    /** @name Damage model */
    /** @{ */
    double kV = 0.12;               //!< relative voltage step per level
    double qDmg = 10.0;             //!< damage exponent in (V/V0)^qDmg
    /** @} */

    /**
     * @name RBER model (Figs. 10 and 13), 1-year retention at 30 C
     *
     * The base curve is linear in equivalent PEC. Linearity is load-
     * bearing: it makes the population-average M_RBER equal the curve at
     * the population-average wear, so the Baseline average crosses the
     * 63-bit requirement at rber0 + rberCoeff*pec/1000 = 63 (~5.3K PEC,
     * Fig. 13) regardless of how much process variation disperses
     * individual blocks.
     */
    /** @{ */
    double rber0 = 16.0;            //!< fresh complete-erase max RBER
    double rberCoeff = 9.75;        //!< growth per 1K equivalent PEC
    double rberExp = 1.0;           //!< growth exponent
    /** Extra max-RBER per leftover slot of incomplete erasure... */
    double residualPerDelta = 18.0;
    /** ...with sublinear shape (only near-threshold bitlines err)... */
    double residualShape = 0.75;
    /** ...after an offset absorbed by data randomization: cells within
     *  ~a slot of the verify level mostly land in higher V_TH states
     *  when programmed (87.5% in TLC), so they cause no bit errors. */
    double residualOffset = 1.15;
    /** Deep leftovers blow up quadratically: far-from-erased cells sit
     *  squarely in wrong V_TH states and randomization cannot save them
     *  (an unerased block must never look usable). */
    double residualQuad = 25.0;
    double residualQuadOnset = 1.2;  //!< in excess slots
    /** @} */

    /** @name DPES comparison-scheme parameters */
    /** @{ */
    double dpesStressFactor = 0.50; //!< erase-damage scale while active
    double dpesExtraRber = 5.0;     //!< V_TH-window squeeze penalty
    double dpesMaxPec = 3000.0;     //!< applicable until 3K PEC
    /** PEC -> tPROG multiplier while DPES is active (10-30 %). */
    PiecewiseLinear dpesTProgFactor;
    /** @} */

    /** Damage contributed by one 0.5-ms slot at ISPE level L (level>=1). */
    double
    dmgPerSlot(int level) const
    {
        return std::pow(1.0 + kV * static_cast<double>(level - 1), qDmg);
    }

    /** Default erase-pulse time in ticks (the fixed tEP of ISPE). */
    Tick defaultTep() const { return tSlot * slotsPerLoop; }

    /** Duration of one full default erase loop (EP + VR). */
    Tick loopLatency() const { return defaultTep() + tVr; }

    /** Canonical schedule level for (0-based) slot position p. */
    int
    scheduleLevel(double progress) const
    {
        const auto lvl = 1 + static_cast<int>(progress /
                                              static_cast<double>(slotsPerLoop));
        return lvl;
    }

    /** Factory presets calibrated against the paper's figures. */
    static ChipParams tlc3d();
    static ChipParams tlc2d();
    static ChipParams mlc3d();
    static ChipParams forType(ChipType t);
};

} // namespace aero

#endif // AERO_NAND_CHIP_PARAMS_HH
