/**
 * @file
 * Behavioural model of the SSD's error-correction subsystem.
 *
 * Mirrors the budget the paper works with (section 5.4): an LDPC-class code
 * that corrects up to `capability` raw bit errors per 1-KiB codeword, a
 * conservative `requirement` (capability minus a sampling-error guard band)
 * that defines when a block is considered worn out, and the
 * "ECC-capability margin" = requirement - expected RBER that AERO spends on
 * aggressive tEP reduction.
 */

#ifndef AERO_ECC_ECC_MODEL_HH
#define AERO_ECC_ECC_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace aero
{

struct EccConfig
{
    /** Max correctable raw bit errors per 1-KiB codeword (paper: 72). */
    int capability = 72;
    /** RBER requirement with safety margin (paper: 63). */
    int requirement = 63;
    /** Hard-decision decode latency, hidden under sensing (paper: 8 us). */
    Tick hardDecodeLatency = 8 * kUs;
    /** Soft-decision retry latency when hard decoding fails. */
    Tick softDecodeLatency = 80 * kUs;
    /** Hard-decision failure probability when RBER <= requirement. */
    double hardFailureRate = 1e-5;
};

/** Outcome of decoding one codeword. */
struct DecodeResult
{
    bool correctable = true;   //!< false -> uncorrectable (block unusable)
    bool usedSoftDecode = false;
    Tick latency = 0;
    int margin = 0;            //!< requirement - observed errors (may be <0)
};

class EccModel
{
  public:
    explicit EccModel(const EccConfig &cfg = EccConfig());

    const EccConfig &config() const { return cfg; }

    /**
     * Decode a codeword with `raw_errors` raw bit errors.
     * Errors above `capability` are uncorrectable; errors between
     * requirement and capability succeed but flag the soft path.
     */
    DecodeResult decode(double raw_errors) const;

    /** requirement - expected errors, clamped at 0: the spendable margin. */
    int marginFor(double expected_errors) const;

    /** Does a block with this max-RBER still satisfy the requirement? */
    bool meetsRequirement(double max_rber) const
    {
        return max_rber <= static_cast<double>(cfg.requirement);
    }

  private:
    EccConfig cfg;
};

} // namespace aero

#endif // AERO_ECC_ECC_MODEL_HH
