#include "ecc/ecc_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace aero
{

EccModel::EccModel(const EccConfig &cfg_) : cfg(cfg_)
{
    AERO_CHECK(cfg.requirement <= cfg.capability,
               "requirement must not exceed capability");
    AERO_CHECK(cfg.capability > 0, "capability must be positive");
}

DecodeResult
EccModel::decode(double raw_errors) const
{
    DecodeResult res;
    res.margin = cfg.requirement - static_cast<int>(std::ceil(raw_errors));
    if (raw_errors > static_cast<double>(cfg.capability)) {
        res.correctable = false;
        res.usedSoftDecode = true;
        res.latency = cfg.hardDecodeLatency + cfg.softDecodeLatency;
        return res;
    }
    if (raw_errors > static_cast<double>(cfg.requirement)) {
        // Correctable, but past the guard band: the controller escalates
        // to the soft path to be safe.
        res.usedSoftDecode = true;
        res.latency = cfg.hardDecodeLatency + cfg.softDecodeLatency;
        return res;
    }
    res.latency = cfg.hardDecodeLatency;
    return res;
}

int
EccModel::marginFor(double expected_errors) const
{
    const double m =
        static_cast<double>(cfg.requirement) - expected_errors;
    if (m <= 0.0)
        return 0;
    return static_cast<int>(std::floor(m));
}

} // namespace aero
