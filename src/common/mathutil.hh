/**
 * @file
 * Small numeric helpers: inverse normal CDF (Acklam's rational
 * approximation, |error| < 1.15e-9) and quantile-midpoint quadrature for
 * expectations over a standard normal variable.
 */

#ifndef AERO_COMMON_MATHUTIL_HH
#define AERO_COMMON_MATHUTIL_HH

#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace aero
{

/** Inverse CDF of the standard normal distribution, p in (0, 1). */
inline double
inverseNormalCdf(double p)
{
    AERO_CHECK(p > 0.0 && p < 1.0, "inverseNormalCdf domain: ", p);
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    const double phigh = 1.0 - plow;
    double q, r;
    if (p < plow) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                    q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > phigh) {
        q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                     q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
}

/**
 * z-scores at the midpoints of `n` equal-probability slices of N(0, 1) --
 * an equal-weight quadrature rule for E[f(Z)].
 */
inline std::vector<double>
normalQuadratureNodes(int n)
{
    AERO_CHECK(n > 0, "need at least one node");
    std::vector<double> zs;
    zs.reserve(n);
    for (int k = 0; k < n; ++k) {
        const double p = (static_cast<double>(k) + 0.5) /
                         static_cast<double>(n);
        zs.push_back(inverseNormalCdf(p));
    }
    return zs;
}

} // namespace aero

#endif // AERO_COMMON_MATHUTIL_HH
