/**
 * @file
 * Fundamental types and units shared by every AERO subsystem.
 *
 * All simulated time is kept in integer nanoseconds (Tick) to avoid
 * floating-point drift in the event-driven simulator; the erase-physics
 * layer additionally reasons in "slots" of 0.5 ms (see nand/chip_params.hh).
 */

#ifndef AERO_COMMON_TYPES_HH
#define AERO_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace aero
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Signed time difference in nanoseconds. */
using TickDelta = std::int64_t;

/** Time unit helpers. */
constexpr Tick kNs = 1;
constexpr Tick kUs = 1000 * kNs;
constexpr Tick kMs = 1000 * kUs;
constexpr Tick kSec = 1000 * kMs;

/** Sentinel for "no time" / "never". */
constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Convert a Tick count to fractional milliseconds / microseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMs);
}

constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kUs);
}

/** Convert fractional milliseconds to Ticks (rounds to nearest ns). */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kMs) + 0.5);
}

/** QoS accounting / scheduling bucket a request belongs to. */
using TenantId = std::uint16_t;

/** Logical / physical page numbers and block ids. */
using Lpn = std::uint64_t;
using Ppn = std::uint64_t;
using BlockId = std::uint32_t;

constexpr Lpn kInvalidLpn = std::numeric_limits<Lpn>::max();
constexpr Ppn kInvalidPpn = std::numeric_limits<Ppn>::max();
constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

/** Byte-size helpers. */
constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

} // namespace aero

#endif // AERO_COMMON_TYPES_HH
