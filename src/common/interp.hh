/**
 * @file
 * Piecewise-linear curves with monotone inversion.
 *
 * Used for (a) PEC -> mean-erase-requirement anchor curves and (b) the
 * cumulative Baseline-stress curve whose inverse maps accumulated wear to
 * "equivalent PEC" (DESIGN.md section 5).
 */

#ifndef AERO_COMMON_INTERP_HH
#define AERO_COMMON_INTERP_HH

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace aero
{

/**
 * A piecewise-linear function defined by (x, y) knots with strictly
 * increasing x. Evaluation outside the knot range extrapolates linearly
 * from the closest segment, so wear curves keep growing past the last
 * calibrated anchor.
 */
class PiecewiseLinear
{
  public:
    PiecewiseLinear() = default;

    explicit PiecewiseLinear(std::vector<std::pair<double, double>> knots_)
        : knots(std::move(knots_))
    {
        AERO_CHECK(knots.size() >= 2, "need at least two knots");
        for (std::size_t i = 1; i < knots.size(); ++i) {
            AERO_CHECK(knots[i].first > knots[i - 1].first,
                       "knot x values must be strictly increasing");
        }
    }

    bool empty() const { return knots.empty(); }

    /** Evaluate the function at x (linear extrapolation outside range). */
    double
    operator()(double x) const
    {
        AERO_CHECK(!knots.empty(), "evaluating empty curve");
        const auto seg = segmentFor(x);
        const auto &[x0, y0] = knots[seg];
        const auto &[x1, y1] = knots[seg + 1];
        const double t = (x - x0) / (x1 - x0);
        return y0 + t * (y1 - y0);
    }

    /**
     * Invert a monotonically non-decreasing curve: find x with f(x) = y.
     * Flat segments resolve to their left edge. Extrapolates beyond the
     * calibrated range using the final segment's slope.
     */
    double
    inverse(double y) const
    {
        AERO_CHECK(!knots.empty(), "inverting empty curve");
        // Find first knot with y-value >= y.
        std::size_t hi = 0;
        while (hi < knots.size() && knots[hi].second < y)
            ++hi;
        if (hi == 0) {
            // Below range: extrapolate with first segment.
            return invertSegment(0, y);
        }
        if (hi == knots.size()) {
            // Above range: extrapolate with last segment.
            return invertSegment(knots.size() - 2, y);
        }
        return invertSegment(hi - 1, y);
    }

    const std::vector<std::pair<double, double>> &points() const
    {
        return knots;
    }

  private:
    std::size_t
    segmentFor(double x) const
    {
        if (x <= knots.front().first)
            return 0;
        if (x >= knots.back().first)
            return knots.size() - 2;
        const auto it = std::upper_bound(
            knots.begin(), knots.end(), x,
            [](double v, const auto &k) { return v < k.first; });
        return static_cast<std::size_t>(it - knots.begin()) - 1;
    }

    double
    invertSegment(std::size_t seg, double y) const
    {
        const auto &[x0, y0] = knots[seg];
        const auto &[x1, y1] = knots[seg + 1];
        if (y1 == y0)
            return x0;
        const double t = (y - y0) / (y1 - y0);
        return x0 + t * (x1 - x0);
    }

    std::vector<std::pair<double, double>> knots;
};

} // namespace aero

#endif // AERO_COMMON_INTERP_HH
