/**
 * @file
 * gem5-style status / error reporting helpers.
 *
 * panic()  -- internal invariant violated (a bug in this library); aborts.
 * fatal()  -- the caller/user supplied an impossible configuration; exits.
 * warn()   -- something is suspicious but the run can continue.
 * inform() -- plain status output.
 */

#ifndef AERO_COMMON_LOGGING_HH
#define AERO_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace aero
{

/** Terminate with an internal-error message (calls std::abort). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a user-error message (calls std::exit(1)). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Print a status message to stderr. */
void informImpl(const std::string &msg);

namespace detail
{

/** Stream-concatenate a variadic argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace aero

#define AERO_PANIC(...) \
    ::aero::panicImpl(__FILE__, __LINE__, ::aero::detail::concat(__VA_ARGS__))

#define AERO_FATAL(...) \
    ::aero::fatalImpl(__FILE__, __LINE__, ::aero::detail::concat(__VA_ARGS__))

#define AERO_WARN(...) \
    ::aero::warnImpl(__FILE__, __LINE__, ::aero::detail::concat(__VA_ARGS__))

#define AERO_INFORM(...) \
    ::aero::informImpl(::aero::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds. */
#define AERO_CHECK(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            AERO_PANIC("check failed: " #cond " ",                        \
                       ::aero::detail::concat(__VA_ARGS__));              \
        }                                                                 \
    } while (0)

#endif // AERO_COMMON_LOGGING_HH
