/**
 * @file
 * Deterministic random-number generation for reproducible experiments.
 *
 * We ship our own xoshiro256** engine instead of std::mt19937 so results
 * are bit-identical across standard libraries, and our own distribution
 * transforms because libstdc++/libc++ are free to differ in theirs.
 */

#ifndef AERO_COMMON_RNG_HH
#define AERO_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace aero
{

/** SplitMix64: used to seed/expand xoshiro state from one 64-bit seed. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** 1.0 (Blackman & Vigna), a fast all-purpose generator with
 * a 2^256-1 period; more than enough state for per-block substreams.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion; seed 0 is remapped internally. */
    explicit Rng(std::uint64_t seed = 0x5eedULL)
    {
        SplitMix64 sm(seed ^ 0x9d2c5680cafef00dULL);
        for (auto &w : s)
            w = sm.next();
    }

    /** Raw 64 random bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n) without modulo bias (n > 0). */
    std::uint64_t
    below(std::uint64_t n)
    {
        AERO_CHECK(n > 0, "below(0)");
        // Lemire's nearly-divisionless method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto l = static_cast<std::uint64_t>(m);
        if (l < n) {
            std::uint64_t t = (0 - n) % n;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * n;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Standard normal via Box-Muller (uses one cached value). */
    double
    gauss()
    {
        if (haveCached) {
            haveCached = false;
            return cached;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        cached = r * std::sin(theta);
        haveCached = true;
        return r * std::cos(theta);
    }

    /** Normal with given mean / standard deviation. */
    double
    gauss(double mean, double sigma)
    {
        return mean + sigma * gauss();
    }

    /**
     * Log-normal multiplicative factor with E[X] = 1 and the given sigma of
     * the underlying normal; the workhorse of process-variation modelling.
     */
    double
    lognormFactor(double sigma)
    {
        return std::exp(gauss(-0.5 * sigma * sigma, sigma));
    }

    /** Exponential with given mean (> 0). */
    double
    expovariate(double mean)
    {
        double u = 0.0;
        while (u <= 1e-300)
            u = uniform();
        return -mean * std::log(u);
    }

    /** Bernoulli trial. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Derive an independent substream (for per-block/per-chip RNGs). */
    Rng
    fork(std::uint64_t salt)
    {
        return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x1234abcdULL));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4] = {};
    double cached = 0.0;
    bool haveCached = false;
};

/**
 * Zipfian integer generator over [0, n) with skew theta in [0, 1).
 * Implements the Gray et al. approximation used by YCSB, which makes the
 * draw O(1) after O(n)-free constant setup (zeta computed incrementally
 * to a fixed precision via the standard two-term approximation).
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t n, double theta);

    /** Draw one value in [0, n). */
    std::uint64_t draw(Rng &rng) const;

    std::uint64_t itemCount() const { return n; }

  private:
    static double zetaStatic(std::uint64_t n, double theta);

    std::uint64_t n;
    double theta;
    double alpha;
    double zetan;
    double eta;
};

inline
ZipfGenerator::ZipfGenerator(std::uint64_t n_, double theta_)
    : n(n_), theta(theta_)
{
    AERO_CHECK(n > 0, "zipf over empty range");
    AERO_CHECK(theta >= 0.0 && theta < 1.0, "zipf theta must be in [0,1)");
    zetan = zetaStatic(n, theta);
    const double zeta2 = zetaStatic(2, theta);
    alpha = 1.0 / (1.0 - theta);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

inline double
ZipfGenerator::zetaStatic(std::uint64_t n, double theta)
{
    // Exact sum up to a cap, then integral approximation for the tail;
    // plenty accurate for workload-locality purposes.
    constexpr std::uint64_t kExactCap = 100000;
    double z = 0.0;
    const std::uint64_t exact_n = n < kExactCap ? n : kExactCap;
    for (std::uint64_t i = 1; i <= exact_n; ++i)
        z += 1.0 / std::pow(static_cast<double>(i), theta);
    if (n > exact_n) {
        // integral of x^-theta from exact_n to n
        const double a = 1.0 - theta;
        z += (std::pow(static_cast<double>(n), a) -
              std::pow(static_cast<double>(exact_n), a)) / a;
    }
    return z;
}

inline std::uint64_t
ZipfGenerator::draw(Rng &rng) const
{
    if (theta == 0.0)
        return rng.below(n);
    const double u = rng.uniform();
    const double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
    return v >= n ? n - 1 : v;
}

} // namespace aero

#endif // AERO_COMMON_RNG_HH
