/**
 * @file
 * Intelligent ISPE (Lee et al., IMW 2011; paper section 3.3): remember the
 * final erase loop of the previous erase of each block and jump straight
 * to it, skipping the preamble loops. Skipping works well on 2D chips but
 * fails increasingly often on 3D chips (the paper's motivation): a failed
 * jump forces an extra loop at a voltage *above* what conventional ISPE
 * would have used, concentrating damage at high V_ERASE. The remembered
 * level only ratchets upward because i-ISPE never probes lower levels.
 */

#ifndef AERO_ERASE_I_ISPE_HH
#define AERO_ERASE_I_ISPE_HH

#include <vector>

#include "erase/scheme.hh"

namespace aero
{

class IntelligentIspe : public EraseScheme
{
  public:
    IntelligentIspe(NandChip &chip, const SchemeOptions &opts);

    SchemeKind kind() const override { return SchemeKind::IIspe; }

    std::unique_ptr<EraseSession> begin(BlockId id) override;

    /** The remembered start level for a block (test hook). */
    int rememberedLevel(BlockId id) const;

    /** Every this-many erases of a block, probe one level lower so the
     *  memory can track decreasing requirements (bounds over-leveling). */
    static constexpr int kProbeInterval = 8;

  private:
    friend class IIspeSession;
    std::vector<int> lastLevel;   //!< per-block remembered N_ISPE
    std::vector<std::uint8_t> eraseCount;  //!< probe cadence counter
};

} // namespace aero

#endif // AERO_ERASE_I_ISPE_HH
