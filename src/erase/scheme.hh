/**
 * @file
 * Erase-scheme abstraction.
 *
 * A scheme turns "erase this block" into a sequence of chip micro-ops.
 * Because the SSD simulator needs to charge chip-occupancy time loop by
 * loop (erase suspension, reads slipping in at loop boundaries), schemes
 * expose erases as *sessions*: each nextSegment() call performs one erase
 * loop (EP + VR) functionally and reports its duration. Running a session
 * to completion without timing (characterization studies) is a one-liner
 * via runEraseToCompletion().
 *
 * Scheme instances attach to one chip and may keep per-block FTL-side
 * state (i-ISPE's N_ISPE memory, AERO's SEF bitmap).
 */

#ifndef AERO_ERASE_SCHEME_HH
#define AERO_ERASE_SCHEME_HH

#include <memory>

#include "common/types.hh"
#include "nand/nand_chip.hh"

namespace aero
{

/** The five erase schemes the paper compares (section 7.1). */
enum class SchemeKind
{
    Baseline,   //!< conventional ISPE, fixed tEP
    IIspe,      //!< intelligent ISPE: skip to the remembered final loop
    Dpes,       //!< dynamic program/erase scaling: lower V_ERASE
    AeroCons,   //!< AERO without the ECC-capability-margin optimization
    Aero,       //!< full AERO
};

const char *schemeKindName(SchemeKind k);

/** Tunables shared by all schemes (most only matter to AERO). */
struct SchemeOptions
{
    /** Injected FELP misprediction rate (Fig. 16). */
    double mispredictionRate = 0.0;
    /** RBER requirement in bits per 1 KiB (Fig. 17; paper default 63). */
    int rberRequirement = 63;
    /** Enable AERO's shallow erasure of the first loop. */
    bool shallowErasure = true;
    /** Safety pad subtracted from the ECC margin before spending it. */
    double marginPad = 18.0;
    /** RNG seed for scheme-side randomness (misprediction injection). */
    std::uint64_t seed = 0xae50;
};

/** What one erase operation did, visible to the FTL. */
struct EraseOutcome
{
    Tick latency = 0;          //!< total tBERS (all EP + VR steps)
    int loops = 0;             //!< EP steps incl. shallow/remainder/extras
    int eraseFailures = 0;     //!< VR steps that failed (ISPE retries)
    bool usedShallow = false;
    bool misprediction = false;
    bool acceptedIncomplete = false;  //!< AERO spent ECC margin
    bool complete = false;     //!< physically complete erasure
    double leftoverSlots = 0.0;
    double damage = 0.0;
    int slotsApplied = 0;
    int maxLevel = 0;
};

/** One erase loop's worth of chip occupancy. */
struct EraseSegment
{
    Tick duration = 0;
    bool last = false;         //!< erase operation completed at segment end
};

class EraseSession
{
  public:
    virtual ~EraseSession() = default;

    /**
     * Perform the next erase loop functionally and describe its timing.
     * @return false when the operation has already finished.
     */
    virtual bool nextSegment(EraseSegment &seg) = 0;

    /** Valid once nextSegment() has returned a segment with last=true. */
    const EraseOutcome &outcome() const { return result; }

  protected:
    EraseOutcome result;
};

class EraseScheme
{
  public:
    EraseScheme(NandChip &chip, const SchemeOptions &opts)
        : nand(chip), options(opts)
    {
    }

    virtual ~EraseScheme() = default;

    virtual SchemeKind kind() const = 0;
    const char *name() const { return schemeKindName(kind()); }

    /** Start an erase operation on a block. */
    virtual std::unique_ptr<EraseSession> begin(BlockId id) = 0;

    /** Program latency for a page of this block (DPES overrides). */
    virtual Tick
    programLatency(BlockId id) const
    {
        (void)id;
        return nand.params().tProg;
    }

    /** Scheme-induced extra max RBER on the block (DPES overrides). */
    virtual double
    extraRber(BlockId id) const
    {
        (void)id;
        return 0.0;
    }

    NandChip &chip() { return nand; }
    const SchemeOptions &opts() const { return options; }

  protected:
    NandChip &nand;
    SchemeOptions options;
};

/** Run an erase session to completion, ignoring timing interleave. */
EraseOutcome runEraseToCompletion(EraseSession &session);

/** Convenience: begin + run to completion. */
EraseOutcome eraseNow(EraseScheme &scheme, BlockId id);

} // namespace aero

#endif // AERO_ERASE_SCHEME_HH
