#include "erase/multi_plane.hh"

#include <algorithm>

#include "common/logging.hh"

namespace aero
{

MultiPlaneErase::MultiPlaneErase(EraseScheme &scheme,
                                 const std::vector<BlockId> &blocks)
{
    AERO_CHECK(!blocks.empty(), "multi-plane erase needs >= 1 block");
    AERO_CHECK(static_cast<int>(blocks.size()) <=
                   scheme.chip().geometry().planes,
               "more blocks than planes");
    members.reserve(blocks.size());
    for (const BlockId b : blocks)
        members.push_back(Member{scheme.begin(b), b, false});
    result.perBlock.resize(blocks.size());
}

bool
MultiPlaneErase::nextJointSegment(EraseSegment &seg)
{
    if (finished)
        return false;
    Tick joint = 0;
    bool any = false;
    bool all_done = true;
    for (std::size_t i = 0; i < members.size(); ++i) {
        auto &m = members[i];
        if (m.done)
            continue;
        EraseSegment member_seg;
        const bool more = m.session->nextSegment(member_seg);
        AERO_CHECK(more, "member session exhausted mid-operation");
        any = true;
        // Lock-step: the joint loop lasts as long as its slowest member;
        // completed members are inhibited for the remainder.
        joint = std::max(joint, member_seg.duration);
        if (member_seg.last) {
            m.done = true;
            result.perBlock[i] = m.session->outcome();
            result.totalDamage += result.perBlock[i].damage;
            result.serialLatency += result.perBlock[i].latency;
        } else {
            all_done = false;
        }
    }
    AERO_CHECK(any, "joint segment with no active members");
    result.latency += joint;
    result.jointSegments += 1;
    seg.duration = joint;
    seg.last = all_done;
    if (all_done)
        finished = true;
    return true;
}

MultiPlaneOutcome
MultiPlaneErase::eraseNow(EraseScheme &scheme,
                          const std::vector<BlockId> &blocks)
{
    MultiPlaneErase op(scheme, blocks);
    EraseSegment seg;
    int guard = 0;
    while (op.nextJointSegment(seg)) {
        AERO_CHECK(++guard < 128, "multi-plane erase failed to finish");
        if (seg.last)
            break;
    }
    return op.outcome();
}

} // namespace aero
