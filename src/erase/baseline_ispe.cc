#include "erase/baseline_ispe.hh"

#include "common/logging.hh"
#include "erase/scheme_registry.hh"

namespace aero
{

namespace detail
{
void linkBaselineScheme() {}
} // namespace detail

namespace
{

const SchemeRegistrar kRegisterBaseline{
    "Baseline", SchemeKind::Baseline,
    [](NandChip &chip, const SchemeOptions &opts) {
        return std::make_unique<BaselineIspe>(chip, opts);
    }};

} // namespace

namespace
{

class BaselineSession : public EraseSession
{
  public:
    BaselineSession(NandChip &chip, BlockId id) : nand(chip), blk(id) {}

    bool
    nextSegment(EraseSegment &seg) override
    {
        if (done)
            return false;
        if (loop == 0)
            nand.beginErase(blk);
        ++loop;
        const auto pulse =
            nand.erasePulse(blk, loop, nand.params().slotsPerLoop);
        const auto verify = nand.verifyRead(blk);
        seg.duration = pulse.duration + verify.duration;
        seg.last = false;
        result.latency += seg.duration;
        result.loops += 1;
        if (!verify.pass)
            result.eraseFailures += 1;
        if (verify.pass || loop >= nand.params().maxLoops) {
            const auto commit = nand.finishErase(blk);
            result.complete = commit.complete;
            result.leftoverSlots = commit.leftoverSlots;
            result.damage = commit.damage;
            result.slotsApplied = commit.slotsApplied;
            result.maxLevel = commit.maxLevel;
            seg.last = true;
            done = true;
        }
        return true;
    }

  private:
    NandChip &nand;
    BlockId blk;
    int loop = 0;
    bool done = false;
};

} // namespace

std::unique_ptr<EraseSession>
BaselineIspe::begin(BlockId id)
{
    return std::make_unique<BaselineSession>(nand, id);
}

} // namespace aero
