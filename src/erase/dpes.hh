/**
 * @file
 * Dynamic Program and Erase Scaling (Jeong et al., FAST'14 / TC'17; paper
 * section 3.3): lower V_ERASE by 8-10 % to reduce erase-induced stress,
 * paying with a narrower program-voltage window and hence 10-30 % longer
 * tPROG. Only applicable while blocks are young (until 3K PEC on the
 * paper's chips); afterwards it degenerates to Baseline ISPE.
 */

#ifndef AERO_ERASE_DPES_HH
#define AERO_ERASE_DPES_HH

#include "erase/scheme.hh"

namespace aero
{

class Dpes : public EraseScheme
{
  public:
    Dpes(NandChip &chip, const SchemeOptions &opts)
        : EraseScheme(chip, opts)
    {
    }

    SchemeKind kind() const override { return SchemeKind::Dpes; }

    std::unique_ptr<EraseSession> begin(BlockId id) override;

    Tick programLatency(BlockId id) const override;

    double extraRber(BlockId id) const override;

    /** Is the voltage-scaled mode still applicable for this block? */
    bool active(BlockId id) const;
};

} // namespace aero

#endif // AERO_ERASE_DPES_HH
