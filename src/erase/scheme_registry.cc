#include "erase/scheme_registry.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/logging.hh"

namespace aero
{

namespace detail
{

// Defined next to each scheme's registrar. Referencing them here forces
// the linker to keep those TUs — and hence their self-registration
// objects — when the library is linked statically.
void linkBaselineScheme();
void linkIIspeScheme();
void linkDpesScheme();
void linkAeroSchemes();

} // namespace detail

namespace
{

/** Lowercase and drop '-'/'_' so "AERO_CONS" matches "AERO-CONS". */
std::string
foldName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        if (c == '-' || c == '_')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

} // namespace

EraseSchemeRegistry &
EraseSchemeRegistry::instance()
{
    detail::linkBaselineScheme();
    detail::linkIIspeScheme();
    detail::linkDpesScheme();
    detail::linkAeroSchemes();
    static EraseSchemeRegistry registry;
    return registry;
}

void
EraseSchemeRegistry::add(const std::string &name, SchemeKind kind,
                         Factory factory)
{
    AERO_CHECK(factory != nullptr, "null factory for scheme ", name);
    AERO_CHECK(find(name) == nullptr, "duplicate scheme name: ", name);
    AERO_CHECK(find(kind) == nullptr,
               "duplicate scheme kind for name: ", name);
    entries.push_back(Entry{name, kind, std::move(factory)});
    // Keep the paper's comparison order regardless of static-init order.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
}

const EraseSchemeRegistry::Entry *
EraseSchemeRegistry::find(const std::string &name) const
{
    const std::string folded = foldName(name);
    for (const auto &e : entries) {
        if (foldName(e.name) == folded)
            return &e;
    }
    return nullptr;
}

const EraseSchemeRegistry::Entry *
EraseSchemeRegistry::find(SchemeKind kind) const
{
    for (const auto &e : entries) {
        if (e.kind == kind)
            return &e;
    }
    return nullptr;
}

void
EraseSchemeRegistry::unknownName(const std::string &name) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < entries.size(); ++i)
        os << (i ? ", " : "") << entries[i].name;
    AERO_FATAL("unknown erase scheme: '", name,
               "' (valid names: ", os.str(), ")");
}

bool
EraseSchemeRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

SchemeKind
EraseSchemeRegistry::kindOf(const std::string &name) const
{
    const Entry *e = find(name);
    if (e == nullptr)
        unknownName(name);
    return e->kind;
}

const std::string &
EraseSchemeRegistry::nameOf(SchemeKind kind) const
{
    const Entry *e = find(kind);
    AERO_CHECK(e != nullptr,
               "scheme kind not registered: ", static_cast<int>(kind));
    return e->name;
}

std::unique_ptr<EraseScheme>
EraseSchemeRegistry::make(const std::string &name, NandChip &chip,
                          const SchemeOptions &opts) const
{
    const Entry *e = find(name);
    if (e == nullptr)
        unknownName(name);
    return e->factory(chip, opts);
}

std::unique_ptr<EraseScheme>
EraseSchemeRegistry::make(SchemeKind kind, NandChip &chip,
                          const SchemeOptions &opts) const
{
    const Entry *e = find(kind);
    AERO_CHECK(e != nullptr,
               "scheme kind not registered: ", static_cast<int>(kind));
    return e->factory(chip, opts);
}

std::vector<std::string>
EraseSchemeRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &e : entries)
        out.push_back(e.name);
    return out;
}

SchemeRegistrar::SchemeRegistrar(const char *name, SchemeKind kind,
                                 EraseSchemeRegistry::Factory factory)
{
    EraseSchemeRegistry::instance().add(name, kind, std::move(factory));
}

SchemeKind
schemeKindFromName(const std::string &name)
{
    return EraseSchemeRegistry::instance().kindOf(name);
}

std::unique_ptr<EraseScheme>
makeEraseScheme(const std::string &name, NandChip &chip,
                const SchemeOptions &opts)
{
    return EraseSchemeRegistry::instance().make(name, chip, opts);
}

} // namespace aero
