#include "erase/scheme.hh"

#include "common/logging.hh"

namespace aero
{

const char *
schemeKindName(SchemeKind k)
{
    switch (k) {
      case SchemeKind::Baseline: return "Baseline";
      case SchemeKind::IIspe: return "i-ISPE";
      case SchemeKind::Dpes: return "DPES";
      case SchemeKind::AeroCons: return "AERO-CONS";
      case SchemeKind::Aero: return "AERO";
    }
    return "unknown";
}

EraseOutcome
runEraseToCompletion(EraseSession &session)
{
    EraseSegment seg;
    int guard = 0;
    while (session.nextSegment(seg)) {
        AERO_CHECK(++guard < 64, "erase session failed to terminate");
        if (seg.last)
            break;
    }
    return session.outcome();
}

EraseOutcome
eraseNow(EraseScheme &scheme, BlockId id)
{
    auto session = scheme.begin(id);
    return runEraseToCompletion(*session);
}

} // namespace aero
