#include "erase/i_ispe.hh"

#include <algorithm>

#include "common/logging.hh"
#include "erase/scheme_registry.hh"
#include "nand/erase_model.hh"

namespace aero
{

namespace detail
{
void linkIIspeScheme() {}
} // namespace detail

namespace
{

const SchemeRegistrar kRegisterIIspe{
    "i-ISPE", SchemeKind::IIspe,
    [](NandChip &chip, const SchemeOptions &opts) {
        return std::make_unique<IntelligentIspe>(chip, opts);
    }};

} // namespace

class IIspeSession : public EraseSession
{
  public:
    IIspeSession(IntelligentIspe &scheme_, BlockId id)
        : scheme(scheme_), nand(scheme_.chip()), blk(id)
    {
    }

    bool
    nextSegment(EraseSegment &seg) override
    {
        if (done)
            return false;
        if (level == 0) {
            nand.beginErase(blk);
            level = scheme.lastLevel[blk];
            // Periodic downward probe: requirements are remembered from
            // past erases only, so occasionally test one level lower to
            // keep the memory from ratcheting far above the true need.
            auto &cnt = scheme.eraseCount[blk];
            cnt = static_cast<std::uint8_t>(
                (cnt + 1) % IntelligentIspe::kProbeInterval);
            if (cnt == 0 && level > 1)
                --level;
        } else {
            ++level;  // previous jump failed: escalate past the memory
        }
        level = std::min(level, nand.params().maxLevel);
        const auto pulse =
            nand.erasePulse(blk, level, nand.params().slotsPerLoop);
        const auto verify = nand.verifyRead(blk);
        seg.duration = pulse.duration + verify.duration;
        seg.last = false;
        result.latency += seg.duration;
        result.loops += 1;
        if (result.loops == 1) {
            firstLevel = level;
            firstFailBits = verify.pass ? 0.0 : verify.failBits;
        }
        if (!verify.pass)
            result.eraseFailures += 1;
        if (verify.pass || result.loops >= nand.params().maxLoops) {
            const auto commit = nand.finishErase(blk);
            result.complete = commit.complete;
            result.leftoverSlots = commit.leftoverSlots;
            result.damage = commit.damage;
            result.slotsApplied = commit.slotsApplied;
            result.maxLevel = commit.maxLevel;
            updateMemory();
            seg.last = true;
            done = true;
        }
        return true;
    }

  private:
    /**
     * Update the per-block N_ISPE memory. The FTL reads the fail-bit
     * count of the failed first pulse: a small count (a residue of a
     * couple of delta or less) is a lagging-wordline artifact of the
     * skipped preamble, so the memory stays put (the block's conventional
     * need has not grown); a large count means the block really crossed
     * into the next loop band. A probe that succeeded at a lower level
     * moves the memory down. This bounds the memory near the true need --
     * it cannot ratchet away -- while leaving i-ISPE in the fail-retry
     * regime the paper observes on 3D chips.
     */
    void
    updateMemory()
    {
        auto &mem = scheme.lastLevel[blk];
        const ChipParams &p = nand.params();
        if (result.loops == 1) {
            mem = level;  // no-op unless this was a successful probe
            return;
        }
        if (firstFailBits > p.gamma + 2.0 * p.delta)
            mem = std::min(firstLevel + 1, p.maxLevel);
    }

    IntelligentIspe &scheme;
    NandChip &nand;
    BlockId blk;
    int level = 0;
    int firstLevel = 0;
    double firstFailBits = 0.0;
    bool done = false;
};

IntelligentIspe::IntelligentIspe(NandChip &chip, const SchemeOptions &opts)
    : EraseScheme(chip, opts),
      lastLevel(static_cast<std::size_t>(chip.numBlocks()), 1),
      eraseCount(static_cast<std::size_t>(chip.numBlocks()), 0)
{
    // On an already-cycled drive the FTL's N_ISPE history would reflect
    // past erases; seed the memory with the expected loop count for each
    // block's current wear so pre-aged experiments start in steady state.
    for (int b = 0; b < chip.numBlocks(); ++b) {
        const auto &blk = chip.block(static_cast<BlockId>(b));
        if (blk.pec() > 0.0) {
            lastLevel[b] = nIspeFor(
                chip.params(), chip.params().anchorSlots(blk.pec()));
        }
    }
}

std::unique_ptr<EraseSession>
IntelligentIspe::begin(BlockId id)
{
    AERO_CHECK(id < lastLevel.size(), "block id out of range");
    return std::make_unique<IIspeSession>(*this, id);
}

int
IntelligentIspe::rememberedLevel(BlockId id) const
{
    AERO_CHECK(id < lastLevel.size(), "block id out of range");
    return lastLevel[id];
}

} // namespace aero
