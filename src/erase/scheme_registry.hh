/**
 * @file
 * String-keyed erase-scheme registry.
 *
 * Every scheme's translation unit registers a named factory at static
 * initialization time (via SchemeRegistrar), so constructing a scheme from
 * a CLI flag, a JSON report, or a SweepSpec is a string lookup instead of
 * a hard-wired switch. Names round-trip with schemeKindName(); lookups are
 * tolerant of case and of '-'/'_' separators ("aero-cons", "AERO_CONS"
 * and "AeroCons" all resolve to AERO-CONS).
 *
 * SchemeKind survives as a thin compat layer: the enum still identifies a
 * scheme in configs and results, but creation goes through the registry.
 */

#ifndef AERO_ERASE_SCHEME_REGISTRY_HH
#define AERO_ERASE_SCHEME_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "erase/scheme.hh"

namespace aero
{

class EraseSchemeRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<EraseScheme>(
        NandChip &, const SchemeOptions &)>;

    /** The process-wide registry (all built-in schemes pre-registered). */
    static EraseSchemeRegistry &instance();

    /** Register a factory; fatal if the name or kind is already taken. */
    void add(const std::string &name, SchemeKind kind, Factory factory);

    bool contains(const std::string &name) const;

    /** Resolve a name to its kind; fatal with the valid names on miss. */
    SchemeKind kindOf(const std::string &name) const;

    /** Canonical name of a registered kind; fatal if not registered. */
    const std::string &nameOf(SchemeKind kind) const;

    /** Construct by name; fatal with the valid names on miss. */
    std::unique_ptr<EraseScheme> make(const std::string &name, NandChip &chip,
                                      const SchemeOptions &opts) const;

    /** Construct by kind (the SchemeKind compat path). */
    std::unique_ptr<EraseScheme> make(SchemeKind kind, NandChip &chip,
                                      const SchemeOptions &opts) const;

    /** Registered canonical names, in the paper's comparison order. */
    std::vector<std::string> names() const;

  private:
    EraseSchemeRegistry() = default;

    struct Entry
    {
        std::string name;
        SchemeKind kind;
        Factory factory;
    };

    const Entry *find(const std::string &name) const;
    const Entry *find(SchemeKind kind) const;
    [[noreturn]] void unknownName(const std::string &name) const;

    std::vector<Entry> entries;
};

/**
 * File-scope instance of this in a scheme's TU self-registers the scheme:
 *
 *   const SchemeRegistrar kRegisterFoo{"Foo", SchemeKind::Foo, factory};
 */
struct SchemeRegistrar
{
    SchemeRegistrar(const char *name, SchemeKind kind,
                    EraseSchemeRegistry::Factory factory);
};

/** Resolve a scheme name to its kind (fatal, listing valid names). */
SchemeKind schemeKindFromName(const std::string &name);

/** Construct any registered scheme by name. */
std::unique_ptr<EraseScheme> makeEraseScheme(const std::string &name,
                                             NandChip &chip,
                                             const SchemeOptions &opts);

} // namespace aero

#endif // AERO_ERASE_SCHEME_REGISTRY_HH
