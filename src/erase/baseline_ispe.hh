/**
 * @file
 * The conventional Incremental Step Pulse Erasure scheme (paper section
 * 3.2): every erase loop applies the full, fixed tEP at a voltage that
 * rises by dVISPE per loop, until the verify-read passes.
 */

#ifndef AERO_ERASE_BASELINE_ISPE_HH
#define AERO_ERASE_BASELINE_ISPE_HH

#include "erase/scheme.hh"

namespace aero
{

class BaselineIspe : public EraseScheme
{
  public:
    BaselineIspe(NandChip &chip, const SchemeOptions &opts)
        : EraseScheme(chip, opts)
    {
    }

    SchemeKind kind() const override { return SchemeKind::Baseline; }

    std::unique_ptr<EraseSession> begin(BlockId id) override;
};

} // namespace aero

#endif // AERO_ERASE_BASELINE_ISPE_HH
