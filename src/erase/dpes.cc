#include "erase/dpes.hh"

#include <cmath>

#include "erase/scheme_registry.hh"

namespace aero
{

namespace detail
{
void linkDpesScheme() {}
} // namespace detail

namespace
{

const SchemeRegistrar kRegisterDpes{
    "DPES", SchemeKind::Dpes,
    [](NandChip &chip, const SchemeOptions &opts) {
        return std::make_unique<Dpes>(chip, opts);
    }};

} // namespace

namespace
{

class DpesSession : public EraseSession
{
  public:
    DpesSession(NandChip &chip, BlockId id, double stress_scale)
        : nand(chip), blk(id), stressScale(stress_scale)
    {
    }

    bool
    nextSegment(EraseSegment &seg) override
    {
        if (done)
            return false;
        if (loop == 0)
            nand.beginErase(blk);
        ++loop;
        const auto pulse = nand.erasePulse(
            blk, loop, nand.params().slotsPerLoop, stressScale);
        const auto verify = nand.verifyRead(blk);
        seg.duration = pulse.duration + verify.duration;
        seg.last = false;
        result.latency += seg.duration;
        result.loops += 1;
        if (!verify.pass)
            result.eraseFailures += 1;
        if (verify.pass || loop >= nand.params().maxLoops) {
            const auto commit = nand.finishErase(blk);
            result.complete = commit.complete;
            result.leftoverSlots = commit.leftoverSlots;
            result.damage = commit.damage;
            result.slotsApplied = commit.slotsApplied;
            result.maxLevel = commit.maxLevel;
            seg.last = true;
            done = true;
        }
        return true;
    }

  private:
    NandChip &nand;
    BlockId blk;
    double stressScale;
    int loop = 0;
    bool done = false;
};

} // namespace

bool
Dpes::active(BlockId id) const
{
    return nand.block(id).pec() < nand.params().dpesMaxPec;
}

std::unique_ptr<EraseSession>
Dpes::begin(BlockId id)
{
    const double scale =
        active(id) ? nand.params().dpesStressFactor : 1.0;
    return std::make_unique<DpesSession>(nand, id, scale);
}

Tick
Dpes::programLatency(BlockId id) const
{
    if (!active(id))
        return nand.params().tProg;
    const double factor =
        nand.params().dpesTProgFactor(nand.block(id).pec());
    return static_cast<Tick>(
        std::llround(static_cast<double>(nand.params().tProg) * factor));
}

double
Dpes::extraRber(BlockId id) const
{
    // The squeezed V_TH window costs extra raw bit errors while the
    // voltage-scaled mode is active (visible as DPES's early M_RBER bump
    // in Fig. 13).
    return active(id) ? nand.params().dpesExtraRber : 0.0;
}

} // namespace aero
