/**
 * @file
 * Multi-plane erase operations (paper section 6, "Multi-Plane
 * Operations").
 *
 * A typical chip erases one block per plane concurrently; planes share
 * peripheral circuitry, so the loops advance in lock-step and the worst
 * block determines the operation's latency. The paper's observations:
 *
 *  1. tEP can be set per target block, so AERO's per-block predictions
 *     still apply inside a multi-plane erase; and
 *  2. a block that completes early is *inhibited* from further pulses, so
 *     it only receives the loops and pulse time it actually needs --
 *     AERO keeps its full lifetime benefit, while the latency benefit is
 *     bounded by the slowest block of the group.
 *
 * MultiPlaneErase composes one per-block EraseSession per plane: each
 * joint segment's duration is the max of the member segments (lock-step
 * loops), members that finish early are inhibited (no further pulses, no
 * further damage), and the joint outcome aggregates damage while taking
 * the max latency.
 */

#ifndef AERO_ERASE_MULTI_PLANE_HH
#define AERO_ERASE_MULTI_PLANE_HH

#include <memory>
#include <vector>

#include "erase/scheme.hh"

namespace aero
{

/** Aggregate outcome of one multi-plane erase operation. */
struct MultiPlaneOutcome
{
    Tick latency = 0;            //!< max over members (lock-step loops)
    int jointSegments = 0;       //!< joint loop count
    double totalDamage = 0.0;    //!< sum over members
    std::vector<EraseOutcome> perBlock;

    /** Latency a serial (one block at a time) execution would need. */
    Tick serialLatency = 0;
};

class MultiPlaneErase
{
  public:
    /**
     * Begin a multi-plane erase of `blocks` (one per plane) using the
     * given scheme for every member. All blocks must belong to the
     * scheme's chip.
     */
    MultiPlaneErase(EraseScheme &scheme,
                    const std::vector<BlockId> &blocks);

    /**
     * Advance one joint (lock-step) erase loop. Members that already
     * completed are inhibited and contribute neither time nor damage.
     * @return false once every member has finished.
     */
    bool nextJointSegment(EraseSegment &seg);

    /** Valid after nextJointSegment() returned false (or seg.last). */
    const MultiPlaneOutcome &outcome() const { return result; }

    /** Convenience: run the whole operation. */
    static MultiPlaneOutcome eraseNow(EraseScheme &scheme,
                                      const std::vector<BlockId> &blocks);

  private:
    struct Member
    {
        std::unique_ptr<EraseSession> session;
        BlockId block;
        bool done = false;
    };

    std::vector<Member> members;
    MultiPlaneOutcome result;
    bool finished = false;
};

} // namespace aero

#endif // AERO_ERASE_MULTI_PLANE_HH
