/**
 * @file
 * The virtual chip farm: the in-silico stand-in for the paper's
 * FPGA-based characterization infrastructure with its 160 real chips and
 * temperature-controlled oven. Provides conditioned block populations for
 * the experiments in experiments.hh / lifetime.hh.
 */

#ifndef AERO_DEVCHAR_FARM_HH
#define AERO_DEVCHAR_FARM_HH

#include "nand/population.hh"

namespace aero
{

struct FarmConfig
{
    ChipType type = ChipType::Tlc3d48L;
    /** The paper tests 160 chips / 120 blocks each; scale down for speed
     *  while keeping enough samples for stable statistics. */
    int numChips = 32;
    int blocksPerChip = 40;
    std::uint64_t seed = 0xfa51;
};

class ChipFarm
{
  public:
    explicit ChipFarm(const FarmConfig &cfg);

    ChipPopulation &population() { return pop; }
    const ChipParams &params() const { return pop.params(); }
    const FarmConfig &config() const { return cfg; }

    int totalSampledBlocks() const
    {
        return cfg.numChips * cfg.blocksPerChip;
    }

    /**
     * Visit every sampled block, conditioned to `pec` P/E cycles with the
     * Baseline scheme (the paper's conditioning procedure).
     */
    template <typename Fn>
    void
    forEachBlockAt(double pec, Fn &&fn)
    {
        for (int c = 0; c < pop.numChips(); ++c)
            forEachBlockOfChipAt(c, pec, fn);
    }

    /**
     * The conditioned walk restricted to one chip, for chip-sharded
     * experiments (each chip may be driven by a different thread; see
     * ChipPopulation::forEachSampledBlockOfChip for the safety
     * argument).
     */
    template <typename Fn>
    void
    forEachBlockOfChipAt(int chip_index, double pec, Fn &&fn)
    {
        pop.forEachSampledBlockOfChip(chip_index, cfg.blocksPerChip,
                                      [&](NandChip &chip, BlockId id) {
            Block &blk = chip.block(id);
            if (blk.pec() < pec) {
                chip.ageBaseline(id,
                                 static_cast<int>(pec - blk.pec()));
            }
            fn(chip, id);
        });
    }

  private:
    FarmConfig cfg;
    ChipPopulation pop;
};

} // namespace aero

#endif // AERO_DEVCHAR_FARM_HH
