/**
 * @file
 * Endurance study: cycle block populations to death under each erase
 * scheme and record the average max-RBER trajectory (the paper's Fig. 13)
 * plus the lifetime (PEC at which the average crosses the RBER
 * requirement). Misprediction injection and reduced RBER requirements
 * reuse the same engine for the Figs. 16/17 sensitivity studies.
 */

#ifndef AERO_DEVCHAR_LIFETIME_HH
#define AERO_DEVCHAR_LIFETIME_HH

#include <vector>

#include "devchar/farm.hh"
#include "erase/scheme.hh"
#include "exp/campaign.hh"

namespace aero
{

struct LifetimeConfig
{
    FarmConfig farm;
    int maxPec = 10000;
    int checkpointEvery = 250;
    double rberRequirement = 63.0;
    SchemeOptions schemeOptions;
    /**
     * Thread-pool size for the per-chip shards of one run() (0 =
     * AERO_SWEEP_THREADS / hardware). Results are identical for any
     * value: shards are whole chips and partials fold in chip order.
     */
    int threads = 0;
};

struct LifetimeResult
{
    SchemeKind scheme;
    /** (PEC, average M_RBER) checkpoints — the Fig. 13 curve. */
    std::vector<std::pair<double, double>> curve;
    /** PEC where the average M_RBER crosses the requirement. */
    double lifetimePec = 0.0;
    bool crossed = false;
    double avgEraseLatencyMs = 0.0;
    double avgLoops = 0.0;
    double freshMrber = 0.0;  //!< average after the first erase
};

class LifetimeTester
{
  public:
    explicit LifetimeTester(const LifetimeConfig &cfg) : cfg(cfg) {}

    /**
     * Cycle one scheme's population to death. The per-checkpoint farm
     * loop is sharded chip-per-task across the thread pool
     * (cfg.threads); chips are independent and the partial sums fold in
     * chip order, so the result is deterministic across thread counts.
     */
    LifetimeResult run(SchemeKind scheme) const;

    /**
     * Run all five schemes (the full Fig. 13), fanned out across the
     * sweep thread pool (AERO_SWEEP_THREADS); results in paper order.
     * With a journal-bearing @p scope, each completed scheme is one
     * flushed checkpoint record (keyed by scheme name) and a rerun
     * resumes from the journal, bit-identically.
     */
    std::vector<LifetimeResult>
    runAll(const CampaignScope &scope = {}) const;

  private:
    LifetimeConfig cfg;
};

/** @name Campaign-journal codec (exact round trip, bit-for-bit). */
/** @{ */
Json toJson(const LifetimeResult &r);
LifetimeResult lifetimeResultFromJson(const Json &row);
/** @} */

} // namespace aero

#endif // AERO_DEVCHAR_LIFETIME_HH
