/**
 * @file
 * Characterization experiments: the data behind the paper's Figs. 4 and
 * 7-11. Each function runs the corresponding study on a virtual chip farm
 * and returns the rows/series the paper plots; the bench binaries format
 * them. All experiments are deterministic for a given FarmConfig seed.
 */

#ifndef AERO_DEVCHAR_EXPERIMENTS_HH
#define AERO_DEVCHAR_EXPERIMENTS_HH

#include <array>
#include <map>
#include <vector>

#include "core/ept_builder.hh"
#include "devchar/farm.hh"
#include "exp/campaign.hh"

namespace aero
{

/** Fig. 4: distribution of minimum erase latency vs P/E cycles. */
struct Fig4Data
{
    struct PecCurve
    {
        double pec = 0.0;
        std::vector<double> mtBersMs;        //!< per-block mtBERS samples
        std::map<int, int> nIspeCounts;      //!< N_ISPE histogram
        double meanMtBersMs = 0.0;
        double stddevMtBersMs = 0.0;
        double fracWithin2_5Ms = 0.0;        //!< blocks erasable in 2.5 ms
        double fracSingleLoop = 0.0;
    };
    std::vector<PecCurve> curves;
    int blocksPerCurve = 0;
};

Fig4Data runFig4Experiment(const FarmConfig &farm_cfg,
                           const std::vector<double> &pecs,
                           const CampaignScope &scope = {});

/** Fig. 7: fail-bit count vs accumulated tEP in the final erase loop. */
struct Fig7Data
{
    struct Row
    {
        int nIspe = 0;
        /** max F over blocks, indexed by slots still needed (1..7). */
        std::array<double, 8> maxFailByRemaining{};
        std::array<double, 8> meanFailByRemaining{};
        std::array<int, 8> samples{};
    };
    std::vector<Row> rows;
    double gammaEstimate = 0.0;  //!< mean F at one slot remaining
    double deltaEstimate = 0.0;  //!< mean per-slot F decrease
};

Fig7Data runFig7Experiment(const FarmConfig &farm_cfg,
                           const std::vector<double> &pecs,
                           const CampaignScope &scope = {});

/** Fig. 8: P(mtEP(N) | fail-bit range of F(N-1)) and range occupancy. */
struct Fig8Data
{
    struct Row
    {
        int nIspe = 0;
        int samples = 0;
        std::array<double, 9> rangeFraction{};   //!< blocks per range
        /** mtepProb[range][slots-1]: P(final loop needs `slots`). */
        std::array<std::array<double, 8>, 9> mtepProb{};
        std::array<double, 9> modalProb{};       //!< max over slots
    };
    std::vector<Row> rows;
};

Fig8Data runFig8Experiment(const FarmConfig &farm_cfg,
                           const std::vector<double> &pecs,
                           const CampaignScope &scope = {});

/** Fig. 9: F(0) distribution under varying shallow-erasure length. */
struct Fig9Data
{
    struct Cell
    {
        int tseSlots = 2;
        double pec = 0.0;
        int samples = 0;
        std::array<double, 10> rangeFraction{};  //!< F(0) range occupancy
        double benefitFraction = 0.0;  //!< erased faster than default tEP
        double avgTbersMs = 0.0;       //!< mean shallow+remainder latency
    };
    std::vector<Cell> cells;
};

Fig9Data runFig9Experiment(const FarmConfig &farm_cfg,
                           const std::vector<int> &tse_slots,
                           const std::vector<double> &pecs,
                           const CampaignScope &scope = {});

/** Fig. 10: reliability margin after complete / insufficient erasure. */
struct Fig10Data
{
    struct CompleteRow
    {
        int nIspe = 0;
        int samples = 0;
        double maxMrber = 0.0;
        double margin = 0.0;  //!< requirement - maxMrber
    };
    struct InsufficientRow
    {
        int nIspe = 0;
        int range = 0;   //!< fail-bit range of F(N_ISPE - 1)
        int samples = 0;
        double maxMrber = 0.0;
        bool safe = false;  //!< meets the RBER requirement
    };
    std::vector<CompleteRow> complete;
    std::vector<InsufficientRow> insufficient;
    int rberRequirement = 63;
    int eccCapability = 72;
};

Fig10Data runFig10Experiment(const FarmConfig &farm_cfg,
                             const std::vector<double> &pecs,
                             const CampaignScope &scope = {});

/** Fig. 11: gamma/delta and insufficient-erasure RBER for other chips. */
struct Fig11Data
{
    ChipType type;
    double gammaEstimate = 0.0;
    double deltaEstimate = 0.0;
    Fig10Data reliability;
};

Fig11Data runFig11Experiment(ChipType type, std::uint64_t seed);

/** As above with an explicit farm scale (type and seed from @p base). */
Fig11Data runFig11Experiment(const FarmConfig &base,
                             const CampaignScope &scope = {});

/**
 * Erase a block with Baseline loops but stop before the final loop
 * (insufficient erasure); returns the fail-bit count seen at the stop
 * point and commits the incomplete erase. Used by Figs. 10b/11b.
 */
struct InsufficientErase
{
    int nIspe = 0;          //!< loops a complete erase would have taken
    double failBits = 0.0;  //!< F(N_ISPE - 1)
    int range = 8;
    double mrberAfter = 0.0;
};

InsufficientErase eraseInsufficiently(NandChip &chip, BlockId id);

} // namespace aero

#endif // AERO_DEVCHAR_EXPERIMENTS_HH
