/**
 * @file
 * System-level simulation study driver for the paper's Figs. 14/15 and
 * Table 4: runs the simulated SSD over a (workload, scheme, PEC,
 * suspension-mode) grid and collects the latency/throughput statistics
 * the paper reports. Request counts scale via AERO_SIM_REQUESTS so CI
 * runs stay fast while full runs use more samples for stabler tails.
 */

#ifndef AERO_DEVCHAR_SIMSTUDY_HH
#define AERO_DEVCHAR_SIMSTUDY_HH

#include <string>
#include <vector>

#include "ssd/ssd.hh"
#include "workload/synthetic.hh"

namespace aero
{

struct SimPoint
{
    std::string workload = "prxy";
    SchemeKind scheme = SchemeKind::Baseline;
    double pec = 500.0;
    SuspensionMode suspension = SuspensionMode::MidSegment;
    double mispredictionRate = 0.0;
    int rberRequirement = 63;
    std::string gcPolicy = "greedy";
    std::string wearLevel = "none";
    std::string sloPolicy = "none";  //!< tenant SLO enforcement
    std::uint64_t requests = 120000;
    std::uint64_t seed = 7;
};

struct SimResult
{
    SimPoint point;
    double avgReadUs = 0.0;
    double avgWriteUs = 0.0;
    double iops = 0.0;
    double p999Us = 0.0;
    double p9999Us = 0.0;
    double p999999Us = 0.0;
    std::uint64_t erases = 0;
    double avgEraseMs = 0.0;
    std::uint64_t suspensions = 0;
    double writeAmplification = 0.0;
};

/** Run one grid point on the bench-scale SSD. */
SimResult runSimPoint(const SimPoint &point);

/**
 * Run one grid point on a caller-chosen base drive (the point's axes
 * overwrite the scheme/PEC/suspension/option fields of @p base).
 */
SimResult runSimPoint(const SimPoint &point, const SsdConfig &base);

/** Default request count, overridable via the AERO_SIM_REQUESTS env. */
std::uint64_t defaultSimRequests(std::uint64_t fallback = 120000);

/** The five schemes in the paper's comparison order. */
const std::vector<SchemeKind> &allSchemes();

/** The three conditioning points of section 7 (0.5K / 2.5K / 4.5K). */
const std::vector<double> &paperPecPoints();

} // namespace aero

#endif // AERO_DEVCHAR_SIMSTUDY_HH
