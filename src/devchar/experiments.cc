#include "devchar/experiments.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "devchar/chip_shard.hh"
#include "exp/sweep_impl.hh"
#include "nand/erase_model.hh"

namespace aero
{

namespace
{

/** The shared (journaled) campaign engine on a farm's sampled blocks. */
template <typename Measure, typename Codec>
auto
measureFarmSharded(ChipFarm &farm, const std::vector<double> &pecs,
                   Measure measure, const CampaignScope &scope,
                   Codec codec)
{
    return measureChipSharded(farm.population(),
                              farm.config().blocksPerChip, pecs,
                              std::move(measure), scope,
                              std::move(codec));
}

} // namespace

Fig4Data
runFig4Experiment(const FarmConfig &farm_cfg,
                  const std::vector<double> &pecs,
                  const CampaignScope &scope)
{
    ChipFarm farm(farm_cfg);
    Fig4Data data;
    data.blocksPerCurve = farm.totalSampledBlocks();
    const auto by_pec = measureFarmSharded(
        farm, pecs,
        [](NandChip &chip, BlockId id, std::size_t) {
            return measureMIspe(chip, id);
        },
        scope, MIspeCodec{});
    for (std::size_t pi = 0; pi < pecs.size(); ++pi) {
        Fig4Data::PecCurve curve;
        curve.pec = pecs[pi];
        for (const auto &m : by_pec[pi]) {
            curve.mtBersMs.push_back(m.mtBersMs);
            curve.nIspeCounts[m.nIspe] += 1;
            if (m.slotsRequired <= 5)
                curve.fracWithin2_5Ms += 1.0;
            if (m.nIspe == 1)
                curve.fracSingleLoop += 1.0;
        }
        const auto n = static_cast<double>(curve.mtBersMs.size());
        // A forked campaign worker folds only its claimed chips and may
        // see an empty curve; its aggregate is discarded (the worker
        // exits right after the journaled map), so skip instead of
        // tripping the driver's completeness check.
        if (n == 0 && scope.partialShare())
            continue;
        AERO_CHECK(n > 0, "fig4: empty curve");
        curve.fracWithin2_5Ms /= n;
        curve.fracSingleLoop /= n;
        double sum = 0.0;
        for (const double v : curve.mtBersMs)
            sum += v;
        curve.meanMtBersMs = sum / n;
        double var = 0.0;
        for (const double v : curve.mtBersMs)
            var += (v - curve.meanMtBersMs) * (v - curve.meanMtBersMs);
        curve.stddevMtBersMs = n > 1 ? std::sqrt(var / (n - 1)) : 0.0;
        data.curves.push_back(std::move(curve));
    }
    return data;
}

Fig7Data
runFig7Experiment(const FarmConfig &farm_cfg,
                  const std::vector<double> &pecs,
                  const CampaignScope &scope)
{
    ChipFarm farm(farm_cfg);
    const ChipParams &p = farm.params();
    Fig7Data data;
    std::map<int, Fig7Data::Row> rows;
    const auto by_pec = measureFarmSharded(
        farm, pecs,
        [](NandChip &chip, BlockId id, std::size_t) {
            return measureMIspe(chip, id);
        },
        scope, MIspeCodec{});
    for (const auto &records : by_pec) {
        for (const auto &m : records) {
            auto &row = rows[m.nIspe];
            row.nIspe = m.nIspe;
            // F after slot s leaves (slotsRequired - s) slots to go.
            for (int s = 1; s < m.slotsRequired; ++s) {
                const int remaining = m.slotsRequired - s;
                if (remaining > 7)
                    continue;
                const double f = m.failAfterSlot[s - 1];
                row.maxFailByRemaining[remaining] =
                    std::max(row.maxFailByRemaining[remaining], f);
                row.meanFailByRemaining[remaining] += f;
                row.samples[remaining] += 1;
            }
        }
    }
    double gamma_sum = 0.0;
    int gamma_n = 0;
    double delta_sum = 0.0;
    int delta_n = 0;
    for (auto &[n, row] : rows) {
        for (int r = 1; r <= 7; ++r) {
            if (row.samples[r] > 0)
                row.meanFailByRemaining[r] /= row.samples[r];
        }
        if (row.samples[1] > 0) {
            gamma_sum += row.meanFailByRemaining[1];
            gamma_n += 1;
        }
        for (int r = 1; r < 7; ++r) {
            if (row.samples[r] > 0 && row.samples[r + 1] > 0) {
                delta_sum += row.meanFailByRemaining[r + 1] -
                             row.meanFailByRemaining[r];
                delta_n += 1;
            }
        }
        data.rows.push_back(row);
    }
    data.gammaEstimate = gamma_n ? gamma_sum / gamma_n : p.gamma;
    data.deltaEstimate = delta_n ? delta_sum / delta_n : p.delta;
    return data;
}

Fig8Data
runFig8Experiment(const FarmConfig &farm_cfg,
                  const std::vector<double> &pecs,
                  const CampaignScope &scope)
{
    ChipFarm farm(farm_cfg);
    const ChipParams &p = farm.params();
    std::map<int, std::array<std::array<int, 8>, 9>> counts;
    std::map<int, int> totals;
    const auto by_pec = measureFarmSharded(
        farm, pecs,
        [](NandChip &chip, BlockId id, std::size_t) {
            return measureMIspe(chip, id);
        },
        scope, MIspeCodec{});
    for (const auto &records : by_pec) {
        for (const auto &m : records) {
            if (m.nIspe < 2 || m.nIspe > 5)
                continue;
            const int boundary = (m.nIspe - 1) * p.slotsPerLoop;
            if (boundary < 1 ||
                boundary > static_cast<int>(m.failAfterSlot.size()))
                continue;
            const double f = m.failAfterSlot[boundary - 1];
            const int range = Ept::rangeIndex(p, f);
            const int slots = m.slotsRequired - boundary;
            if (slots < 1 || slots > 7)
                continue;
            counts[m.nIspe][range][slots - 1] += 1;
            totals[m.nIspe] += 1;
        }
    }
    Fig8Data data;
    for (auto &[n, byRange] : counts) {
        Fig8Data::Row row;
        row.nIspe = n;
        row.samples = totals[n];
        for (int rg = 0; rg < 9; ++rg) {
            int range_total = 0;
            for (int s = 0; s < 8; ++s)
                range_total += byRange[rg][s];
            row.rangeFraction[rg] =
                row.samples ? static_cast<double>(range_total) /
                              row.samples
                            : 0.0;
            for (int s = 0; s < 8; ++s) {
                row.mtepProb[rg][s] =
                    range_total ? static_cast<double>(byRange[rg][s]) /
                                  range_total
                                : 0.0;
                row.modalProb[rg] =
                    std::max(row.modalProb[rg], row.mtepProb[rg][s]);
            }
        }
        data.rows.push_back(row);
    }
    return data;
}

namespace
{

/** Fig. 9 cell codec for the campaign journal (exact round trip). */
Json
fig9CellToJson(const Fig9Data::Cell &cell)
{
    Json row = Json::object();
    row["tse_slots"] = cell.tseSlots;
    row["pec"] = cell.pec;
    row["samples"] = cell.samples;
    Json fracs = Json::array();
    for (const double f : cell.rangeFraction)
        fracs.push(f);
    row["range_fraction"] = std::move(fracs);
    row["benefit_fraction"] = cell.benefitFraction;
    row["avg_tbers_ms"] = cell.avgTbersMs;
    return row;
}

Fig9Data::Cell
fig9CellFromJson(const Json &row)
{
    Fig9Data::Cell cell;
    cell.tseSlots = static_cast<int>(row.get("tse_slots").asInt64());
    cell.pec = row.get("pec").asDouble();
    cell.samples = static_cast<int>(row.get("samples").asInt64());
    const Json &fracs = row.get("range_fraction");
    AERO_CHECK(fracs.size() == cell.rangeFraction.size(),
               "fig9 cell record has ", fracs.size(),
               " range fractions, expected ", cell.rangeFraction.size());
    for (std::size_t i = 0; i < cell.rangeFraction.size(); ++i)
        cell.rangeFraction[i] = fracs.at(i).asDouble();
    cell.benefitFraction = row.get("benefit_fraction").asDouble();
    cell.avgTbersMs = row.get("avg_tbers_ms").asDouble();
    return cell;
}

} // namespace

Fig9Data
runFig9Experiment(const FarmConfig &farm_cfg,
                  const std::vector<int> &tse_slots,
                  const std::vector<double> &pecs,
                  const CampaignScope &scope)
{
    // Every (pec, tSE) cell runs on its own freshly seeded farm so the
    // cells are fully independent — parallelized cell-per-task, results
    // kept in the serial loop's cell order. Each completed cell is one
    // journal record keyed by its (pec, tSE) axes.
    struct CellPoint
    {
        double pec;
        int tse;
    };
    std::vector<CellPoint> points;
    for (const double pec : pecs) {
        for (const int tse : tse_slots)
            points.push_back({pec, tse});
    }
    Fig9Data data;
    data.cells = parallelMapJournaled(
        scope.journal, points,
        [&](std::size_t, const CellPoint &pt) {
            Json key = scope.base();
            key["pec"] = pt.pec;
            key["tse_slots"] = pt.tse;
            return key;
        },
        [&](const CellPoint &pt) {
        // Fresh farm per cell so every configuration sees the same
        // block population (the paper tests disjoint block sets).
        FarmConfig fc = farm_cfg;
        fc.seed = farm_cfg.seed + static_cast<std::uint64_t>(pt.tse);
        ChipFarm farm(fc);
        const ChipParams &p = farm.params();
        Fig9Data::Cell cell;
        cell.tseSlots = pt.tse;
        cell.pec = pt.pec;
        double tbers_sum = 0.0;
        farm.forEachBlockAt(pt.pec, [&](NandChip &chip, BlockId id) {
            chip.beginErase(id);
            chip.erasePulse(id, 1, pt.tse);
            auto vr = chip.verifyRead(id);
            int total_slots = pt.tse;
            int vrs = 1;
            const int range = Ept::rangeIndex(p, vr.failBits);
            cell.rangeFraction[range] += 1.0;
            if (!vr.pass) {
                // Remainder sized by the exact-fit prediction,
                // capped so probe+remainder never exceed a loop.
                const int cap = p.slotsPerLoop - pt.tse;
                int rem = static_cast<int>(std::ceil(
                    remainingSlotsFor(p, vr.failBits)));
                rem = std::clamp(rem, 1, std::max(1, cap));
                chip.erasePulse(id, 1, rem);
                vr = chip.verifyRead(id);
                total_slots += rem;
                vrs += 1;
                // Recovery: extra half-millisecond steps.
                int guard = 0;
                while (!vr.pass && ++guard < 2 * p.slotsPerLoop) {
                    chip.erasePulse(id, 1, 1);
                    vr = chip.verifyRead(id);
                    total_slots += 1;
                    vrs += 1;
                }
            }
            chip.finishErase(id);
            if (total_slots < p.slotsPerLoop)
                cell.benefitFraction += 1.0;
            tbers_sum += 0.5 * total_slots +
                         ticksToMs(p.tVr) * vrs;
            cell.samples += 1;
        });
        for (auto &f : cell.rangeFraction)
            f /= std::max(1, cell.samples);
        cell.benefitFraction /= std::max(1, cell.samples);
        cell.avgTbersMs = tbers_sum / std::max(1, cell.samples);
        return cell;
        },
        fig9CellToJson, fig9CellFromJson);
    return data;
}

InsufficientErase
eraseInsufficiently(NandChip &chip, BlockId id)
{
    const ChipParams &p = chip.params();
    InsufficientErase out;
    chip.beginErase(id);
    out.nIspe = nIspeFor(p, chip.opRequirement(id));
    // Perform only the first N_ISPE - 1 full loops (zero loops for
    // single-loop blocks: F(0) is read directly).
    for (int i = 1; i < out.nIspe; ++i)
        chip.erasePulse(id, i, p.slotsPerLoop);
    const auto vr = chip.verifyRead(id);
    out.failBits = vr.failBits;
    out.range = Ept::rangeIndex(p, vr.failBits);
    chip.finishErase(id);
    out.mrberAfter = chip.maxRber(id);
    return out;
}

namespace
{

/** Record of one completely erased block (Fig. 10a). */
struct CompleteRecord
{
    int n;
    double mrber;
};

struct CompleteCodec
{
    Json
    encode(const CompleteRecord &r) const
    {
        Json row = Json::object();
        row["n"] = r.n;
        row["mrber"] = r.mrber;
        return row;
    }
    CompleteRecord
    decode(const Json &row) const
    {
        return CompleteRecord{
            static_cast<int>(row.get("n").asInt64()),
            row.get("mrber").asDouble()};
    }
};

struct InsufficientCodec
{
    Json
    encode(const InsufficientErase &r) const
    {
        Json row = Json::object();
        row["n_ispe"] = r.nIspe;
        row["fail_bits"] = r.failBits;
        row["range"] = r.range;
        row["mrber_after"] = r.mrberAfter;
        return row;
    }
    InsufficientErase
    decode(const Json &row) const
    {
        InsufficientErase r;
        r.nIspe = static_cast<int>(row.get("n_ispe").asInt64());
        r.failBits = row.get("fail_bits").asDouble();
        r.range = static_cast<int>(row.get("range").asInt64());
        r.mrberAfter = row.get("mrber_after").asDouble();
        return r;
    }
};

} // namespace

Fig10Data
runFig10Experiment(const FarmConfig &farm_cfg,
                   const std::vector<double> &pecs,
                   const CampaignScope &scope)
{
    (void)pecs;
    Fig10Data data;
    std::map<int, Fig10Data::CompleteRow> complete;
    std::map<std::pair<int, int>, Fig10Data::InsufficientRow> insufficient;
    // Each N_ISPE row is measured on blocks conditioned to the PEC where
    // that loop count is typical (the Fig. 4 bands).
    const std::pair<double, int> conditioning[] = {
        {500.0, 1}, {2000.0, 2}, {3000.0, 3}, {4200.0, 4},
        {5200.0, 5},
    };
    std::vector<double> cond_pecs;
    for (const auto &[pec, expect_n] : conditioning)
        cond_pecs.push_back(pec);
    {
        // (a) Complete erasure, each N row on representatively
        // conditioned blocks (see part (b) below).
        ChipFarm farm(farm_cfg);
        const ChipParams &p = farm.params();
        const auto by_pec = measureFarmSharded(
            farm, cond_pecs,
            [&p](NandChip &chip, BlockId id, std::size_t) {
                chip.beginErase(id);
                const int n = std::min(
                    nIspeFor(p, chip.opRequirement(id)), 5);
                for (int i = 1; i <= n; ++i)
                    chip.erasePulse(id, i, p.slotsPerLoop);
                chip.finishErase(id);
                return CompleteRecord{n, chip.maxRber(id)};
            },
            scope.with("pass", "complete"), CompleteCodec{});
        for (std::size_t pi = 0; pi < cond_pecs.size(); ++pi) {
            const int expect_n = conditioning[pi].second;
            for (const auto &rec : by_pec[pi]) {
                if (rec.n != expect_n)
                    continue;
                auto &row = complete[rec.n];
                row.nIspe = rec.n;
                row.samples += 1;
                row.maxMrber = std::max(row.maxMrber, rec.mrber);
            }
        }
    }
    {
        // (b) Insufficient erasure on an identically seeded farm.
        // Outlier blocks whose loop count does not match the expected
        // band are skipped so a row is not polluted by laggards from a
        // much older population; every block is restored to complete
        // erasure so later PEC points see a normally conditioned block.
        ChipFarm farm(farm_cfg);
        const auto by_pec = measureFarmSharded(
            farm, cond_pecs,
            [](NandChip &chip, BlockId id, std::size_t) {
                const auto r = eraseInsufficiently(chip, id);
                chip.beginErase(id);
                chip.erasePulse(id, std::max(1, std::min(
                    r.nIspe, chip.params().maxLevel)),
                    chip.params().slotsPerLoop);
                chip.finishErase(id);
                return r;
            },
            scope.with("pass", "insufficient"), InsufficientCodec{});
        for (std::size_t pi = 0; pi < cond_pecs.size(); ++pi) {
            const int expect_n = conditioning[pi].second;
            for (const auto &r : by_pec[pi]) {
                if (std::min(r.nIspe, 5) != expect_n)
                    continue;
                auto &row = insufficient[{expect_n, r.range}];
                row.nIspe = expect_n;
                row.range = r.range;
                row.samples += 1;
                row.maxMrber = std::max(row.maxMrber, r.mrberAfter);
            }
        }
    }
    for (auto &[n, row] : complete) {
        row.margin = data.rberRequirement - row.maxMrber;
        data.complete.push_back(row);
    }
    for (auto &[key, row] : insufficient) {
        row.safe = row.maxMrber <=
                   static_cast<double>(data.rberRequirement);
        data.insufficient.push_back(row);
    }
    std::sort(data.insufficient.begin(), data.insufficient.end(),
              [](const auto &a, const auto &b) {
                  return std::tie(a.nIspe, a.range) <
                         std::tie(b.nIspe, b.range);
              });
    return data;
}

Fig11Data
runFig11Experiment(ChipType type, std::uint64_t seed)
{
    FarmConfig fc;
    fc.type = type;
    fc.numChips = 16;
    fc.blocksPerChip = 24;
    fc.seed = seed;
    return runFig11Experiment(fc);
}

Fig11Data
runFig11Experiment(const FarmConfig &base, const CampaignScope &scope)
{
    Fig11Data data;
    data.type = base.type;
    const auto fig7 =
        runFig7Experiment(base, {0.0, 1000.0, 2000.0, 3000.0},
                          scope.with("stage", "constants"));
    data.gammaEstimate = fig7.gammaEstimate;
    data.deltaEstimate = fig7.deltaEstimate;
    FarmConfig fc10 = base;
    fc10.seed = base.seed + 17;
    data.reliability =
        runFig10Experiment(fc10, {500.0, 1500.0, 2500.0, 3500.0},
                           scope.with("stage", "reliability"));
    return data;
}

} // namespace aero
