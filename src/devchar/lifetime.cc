#include "devchar/lifetime.hh"

#include "core/aero_scheme.hh"
#include "exp/sweep_impl.hh"

namespace aero
{

LifetimeResult
LifetimeTester::run(SchemeKind scheme) const
{
    ChipFarm farm(cfg.farm);
    auto &pop = farm.population();
    LifetimeResult res;
    res.scheme = scheme;

    std::vector<std::unique_ptr<EraseScheme>> schemes;
    for (int c = 0; c < pop.numChips(); ++c)
        schemes.push_back(makeEraseScheme(scheme, pop.chip(c),
                                          cfg.schemeOptions));

    double latency_ms_sum = 0.0;
    double loops_sum = 0.0;
    std::uint64_t erases = 0;

    const int blocks = cfg.farm.blocksPerChip;
    for (int pec = 0; pec < cfg.maxPec && !res.crossed;
         pec += cfg.checkpointEvery) {
        for (int c = 0; c < pop.numChips(); ++c) {
            NandChip &chip = pop.chip(c);
            const int n = std::min(blocks, chip.numBlocks());
            for (int b = 0; b < n; ++b) {
                for (int i = 0; i < cfg.checkpointEvery; ++i) {
                    const auto out =
                        eraseNow(*schemes[c], static_cast<BlockId>(b));
                    latency_ms_sum += ticksToMs(out.latency);
                    loops_sum += out.loops;
                    ++erases;
                }
            }
        }
        // Average max-RBER across the population under the reference
        // retention condition, including scheme-induced penalties.
        double sum = 0.0;
        int n_blocks = 0;
        for (int c = 0; c < pop.numChips(); ++c) {
            NandChip &chip = pop.chip(c);
            const int n = std::min(blocks, chip.numBlocks());
            for (int b = 0; b < n; ++b) {
                sum += chip.maxRber(static_cast<BlockId>(b)) +
                       schemes[c]->extraRber(static_cast<BlockId>(b));
                n_blocks += 1;
            }
        }
        const double avg = sum / n_blocks;
        const double point = pec + cfg.checkpointEvery;
        res.curve.emplace_back(point, avg);
        if (res.curve.size() == 1)
            res.freshMrber = avg;
        if (avg >= cfg.rberRequirement) {
            res.crossed = true;
            res.lifetimePec = point;
        }
    }
    if (!res.crossed)
        res.lifetimePec = cfg.maxPec;
    res.avgEraseLatencyMs =
        erases ? latency_ms_sum / static_cast<double>(erases) : 0.0;
    res.avgLoops = erases ? loops_sum / static_cast<double>(erases) : 0.0;
    return res;
}

std::vector<LifetimeResult>
LifetimeTester::runAll() const
{
    const std::vector<SchemeKind> kinds = {
        SchemeKind::Baseline, SchemeKind::IIspe, SchemeKind::Dpes,
        SchemeKind::AeroCons, SchemeKind::Aero};
    return parallelMap(kinds, [this](SchemeKind k) { return run(k); });
}

} // namespace aero
