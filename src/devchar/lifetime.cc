#include "devchar/lifetime.hh"

#include <numeric>

#include "core/aero_scheme.hh"
#include "erase/scheme_registry.hh"
#include "exp/sweep_impl.hh"

namespace aero
{

LifetimeResult
LifetimeTester::run(SchemeKind scheme) const
{
    ChipFarm farm(cfg.farm);
    auto &pop = farm.population();
    LifetimeResult res;
    res.scheme = scheme;

    std::vector<std::unique_ptr<EraseScheme>> schemes;
    for (int c = 0; c < pop.numChips(); ++c)
        schemes.push_back(makeEraseScheme(scheme, pop.chip(c),
                                          cfg.schemeOptions));

    double latency_ms_sum = 0.0;
    double loops_sum = 0.0;
    std::uint64_t erases = 0;

    const int blocks = cfg.farm.blocksPerChip;

    // One checkpoint's worth of work on one chip: the chip (and its
    // scheme instance) is exclusively owned by one pool task, and the
    // partials below are folded into the global accumulators in chip
    // order, so any thread count produces identical results.
    struct ChipPartial
    {
        double latencyMsSum = 0.0;
        double loopsSum = 0.0;
        std::uint64_t erases = 0;
        /** Per-block max-RBER + scheme penalty, in block order. */
        std::vector<double> blockRber;
    };
    std::vector<int> chip_indices(
        static_cast<std::size_t>(pop.numChips()));
    std::iota(chip_indices.begin(), chip_indices.end(), 0);

    for (int pec = 0; pec < cfg.maxPec && !res.crossed;
         pec += cfg.checkpointEvery) {
        const auto partials = parallelMap(
            chip_indices,
            [&](int c) {
                ChipPartial part;
                NandChip &chip = pop.chip(c);
                const int n = std::min(blocks, chip.numBlocks());
                for (int b = 0; b < n; ++b) {
                    for (int i = 0; i < cfg.checkpointEvery; ++i) {
                        const auto out = eraseNow(
                            *schemes[c], static_cast<BlockId>(b));
                        part.latencyMsSum += ticksToMs(out.latency);
                        part.loopsSum += out.loops;
                        ++part.erases;
                    }
                }
                // Max-RBER under the reference retention condition,
                // including scheme-induced penalties.
                part.blockRber.reserve(static_cast<std::size_t>(n));
                for (int b = 0; b < n; ++b) {
                    part.blockRber.push_back(
                        chip.maxRber(static_cast<BlockId>(b)) +
                        schemes[c]->extraRber(static_cast<BlockId>(b)));
                }
                return part;
            },
            cfg.threads);
        // Population average at this checkpoint, folded in chip/block
        // order (matching the original serial loop exactly).
        double sum = 0.0;
        int n_blocks = 0;
        for (const auto &part : partials) {
            latency_ms_sum += part.latencyMsSum;
            loops_sum += part.loopsSum;
            erases += part.erases;
            for (const double r : part.blockRber) {
                sum += r;
                n_blocks += 1;
            }
        }
        const double avg = sum / n_blocks;
        const double point = pec + cfg.checkpointEvery;
        res.curve.emplace_back(point, avg);
        if (res.curve.size() == 1)
            res.freshMrber = avg;
        if (avg >= cfg.rberRequirement) {
            res.crossed = true;
            res.lifetimePec = point;
        }
    }
    if (!res.crossed)
        res.lifetimePec = cfg.maxPec;
    res.avgEraseLatencyMs =
        erases ? latency_ms_sum / static_cast<double>(erases) : 0.0;
    res.avgLoops = erases ? loops_sum / static_cast<double>(erases) : 0.0;
    return res;
}

std::vector<LifetimeResult>
LifetimeTester::runAll(const CampaignScope &scope) const
{
    const std::vector<SchemeKind> kinds = {
        SchemeKind::Baseline, SchemeKind::IIspe, SchemeKind::Dpes,
        SchemeKind::AeroCons, SchemeKind::Aero};
    return parallelMapJournaled(
        scope.journal, kinds,
        [&](std::size_t, SchemeKind k) {
            return scope.key("scheme", schemeKindName(k));
        },
        [this](SchemeKind k) { return run(k); },
        [](const LifetimeResult &r) { return toJson(r); },
        lifetimeResultFromJson);
}

Json
toJson(const LifetimeResult &r)
{
    Json row = Json::object();
    row["scheme"] = schemeKindName(r.scheme);
    Json curve = Json::array();
    for (const auto &[pec, mrber] : r.curve) {
        Json pt = Json::array();
        pt.push(pec);
        pt.push(mrber);
        curve.push(std::move(pt));
    }
    row["curve"] = std::move(curve);
    row["lifetime_pec"] = r.lifetimePec;
    row["crossed"] = r.crossed;
    row["avg_erase_ms"] = r.avgEraseLatencyMs;
    row["avg_loops"] = r.avgLoops;
    row["fresh_mrber"] = r.freshMrber;
    return row;
}

LifetimeResult
lifetimeResultFromJson(const Json &row)
{
    LifetimeResult r;
    r.scheme = schemeKindFromName(row.get("scheme").asString());
    const Json &curve = row.get("curve");
    for (std::size_t i = 0; i < curve.size(); ++i) {
        const Json &pt = curve.at(i);
        r.curve.emplace_back(pt.at(0).asDouble(), pt.at(1).asDouble());
    }
    r.lifetimePec = row.get("lifetime_pec").asDouble();
    r.crossed = row.get("crossed").asBool();
    r.avgEraseLatencyMs = row.get("avg_erase_ms").asDouble();
    r.avgLoops = row.get("avg_loops").asDouble();
    r.freshMrber = row.get("fresh_mrber").asDouble();
    return r;
}

} // namespace aero
