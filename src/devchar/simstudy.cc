#include "devchar/simstudy.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace aero
{

std::uint64_t
defaultSimRequests(std::uint64_t fallback)
{
    const char *env = std::getenv("AERO_SIM_REQUESTS");
    if (env == nullptr)
        return fallback;
    char *end = nullptr;
    errno = 0;
    const auto v = std::strtoull(env, &end, 10);
    if (*env == '\0' || end == nullptr || *end != '\0' || errno == ERANGE ||
        env[0] == '-') {
        AERO_FATAL("AERO_SIM_REQUESTS must be a positive integer, got '",
                   env, "'");
    }
    if (v == 0)
        AERO_FATAL("AERO_SIM_REQUESTS must be > 0, got '", env, "'");
    return v;
}

const std::vector<SchemeKind> &
allSchemes()
{
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::Baseline, SchemeKind::IIspe, SchemeKind::Dpes,
        SchemeKind::AeroCons, SchemeKind::Aero,
    };
    return kinds;
}

const std::vector<double> &
paperPecPoints()
{
    static const std::vector<double> pecs = {500.0, 2500.0, 4500.0};
    return pecs;
}

SimResult
runSimPoint(const SimPoint &point)
{
    return runSimPoint(point, SsdConfig::bench());
}

SimResult
runSimPoint(const SimPoint &point, const SsdConfig &base)
{
    SsdConfig cfg = base;
    cfg.scheme = point.scheme;
    cfg.initialPec = point.pec;
    cfg.suspension = point.suspension;
    cfg.schemeOptions.mispredictionRate = point.mispredictionRate;
    cfg.schemeOptions.rberRequirement = point.rberRequirement;
    cfg.gcPolicy = point.gcPolicy;
    cfg.wearLevel = point.wearLevel;
    // The per-tenant SLO spec itself rides on the base config; the axis
    // only selects which enforcement mechanisms are active.
    cfg.sloPolicy = sloPolicyFromName(point.sloPolicy);
    cfg.seed = point.seed ^ 0x51ULL;

    Ssd ssd(cfg);

    SyntheticConfig wc;
    wc.spec = workloadByName(point.workload);
    wc.footprintPages = ssd.config().logicalPages();
    wc.numRequests = point.requests;
    wc.seed = point.seed;
    const Trace trace = generateTrace(wc);
    ssd.run(trace);

    const SsdMetrics &m = ssd.metrics();
    SimResult r;
    r.point = point;
    r.avgReadUs = m.readLatency.mean() / static_cast<double>(kUs);
    r.avgWriteUs = m.writeLatency.mean() / static_cast<double>(kUs);
    r.iops = m.iops();
    r.p999Us = ticksToUs(m.readLatency.percentile(0.999));
    r.p9999Us = ticksToUs(m.readLatency.percentile(0.9999));
    r.p999999Us = ticksToUs(m.readLatency.percentile(0.999999));
    r.erases = m.erases;
    r.avgEraseMs = m.avgEraseLatencyMs();
    r.suspensions = m.eraseSuspensions;
    r.writeAmplification = m.writeAmplification();
    return r;
}

} // namespace aero
