/**
 * @file
 * The chip-sharded characterization campaign engine shared by the
 * devchar experiments (Figs. 4, 7-11) and the EptBuilder's m-ISPE
 * campaign (Table 1).
 *
 * measureChipSharded() runs `measure(chip, id, pec_index)` on every
 * sampled block of every chip at every PEC point (conditioning each
 * block to the point first — the paper's procedure), chip-per-task
 * across the thread pool (AERO_SWEEP_THREADS). Each chip replays the
 * serial walk's schedule for itself — PEC points outermost, blocks in
 * sampling order — and the records are re-assembled in the serial
 * walk's (pec, chip, block) order. Chips are mutually independent (own
 * blocks, own RNG streams; see ChipPopulation::forEachSampledBlockOfChip),
 * so accumulating from the returned records is bit-identical to a
 * single-threaded pec-major loop, for any thread count.
 */

#ifndef AERO_DEVCHAR_CHIP_SHARD_HH
#define AERO_DEVCHAR_CHIP_SHARD_HH

#include <iterator>
#include <numeric>
#include <type_traits>
#include <vector>

#include "exp/sweep_impl.hh"
#include "nand/population.hh"

namespace aero
{

/** @return records[pec_index], concatenated in chip-major order. */
template <typename Measure>
auto
measureChipSharded(ChipPopulation &pop, int blocks_per_chip,
                   const std::vector<double> &pecs, Measure measure,
                   int threads = 0)
    -> std::vector<std::vector<std::invoke_result_t<
        Measure &, NandChip &, BlockId, std::size_t>>>
{
    using Record = std::invoke_result_t<Measure &, NandChip &, BlockId,
                                        std::size_t>;
    std::vector<int> chip_indices(
        static_cast<std::size_t>(pop.numChips()));
    std::iota(chip_indices.begin(), chip_indices.end(), 0);

    auto per_chip = parallelMap(
        chip_indices,
        [&](int c) {
            std::vector<std::vector<Record>> by_pec(pecs.size());
            for (std::size_t pi = 0; pi < pecs.size(); ++pi) {
                const double pec = pecs[pi];
                pop.forEachSampledBlockOfChip(
                    c, blocks_per_chip,
                    [&](NandChip &chip, BlockId id) {
                        Block &blk = chip.block(id);
                        if (blk.pec() < pec) {
                            chip.ageBaseline(
                                id, static_cast<int>(pec - blk.pec()));
                        }
                        by_pec[pi].push_back(measure(chip, id, pi));
                    });
            }
            return by_pec;
        },
        threads);

    std::vector<std::vector<Record>> by_pec(pecs.size());
    for (std::size_t pi = 0; pi < pecs.size(); ++pi) {
        for (auto &chip_records : per_chip) {
            by_pec[pi].insert(
                by_pec[pi].end(),
                std::make_move_iterator(chip_records[pi].begin()),
                std::make_move_iterator(chip_records[pi].end()));
        }
    }
    return by_pec;
}

} // namespace aero

#endif // AERO_DEVCHAR_CHIP_SHARD_HH
