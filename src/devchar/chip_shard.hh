/**
 * @file
 * The chip-sharded characterization campaign engine shared by the
 * devchar experiments (Figs. 4, 7-11) and the EptBuilder's m-ISPE
 * campaign (Table 1).
 *
 * measureChipSharded() runs `measure(chip, id, pec_index)` on every
 * sampled block of every chip at every PEC point (conditioning each
 * block to the point first — the paper's procedure), chip-per-task
 * across the thread pool (AERO_SWEEP_THREADS). Each chip replays the
 * serial walk's schedule for itself — PEC points outermost, blocks in
 * sampling order — and the records are re-assembled in the serial
 * walk's (pec, chip, block) order. Chips are mutually independent (own
 * blocks, own RNG streams; see ChipPopulation::forEachSampledBlockOfChip),
 * so accumulating from the returned records is bit-identical to a
 * single-threaded pec-major loop, for any thread count.
 *
 * The journaled overload additionally checkpoints the campaign through
 * a CampaignJournal (exp/campaign.hh): every completed chip task is
 * flushed as one record keyed by `scope.prefix + {"chip": c}`, and a
 * resumed run decodes journaled chips instead of re-measuring them.
 * Because the codec round-trips every record field bit-exactly through
 * the JSON serializer, a killed-and-resumed campaign folds to the same
 * bytes as an uninterrupted one, at any thread count.
 */

#ifndef AERO_DEVCHAR_CHIP_SHARD_HH
#define AERO_DEVCHAR_CHIP_SHARD_HH

#include <iterator>
#include <numeric>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "exp/campaign.hh"
#include "exp/sweep_impl.hh"
#include "nand/population.hh"

namespace aero
{

namespace detail
{

/**
 * One chip's whole campaign: replay the serial walk's schedule for
 * chip @p c — PEC points outermost, blocks in sampling order,
 * conditioning each block to the point first. Shared by both
 * measureChipSharded overloads so the plain and journaled engines can
 * never drift apart (the crash/resume byte-identity contract depends
 * on them measuring identically).
 */
template <typename Measure>
auto
measureOneChip(ChipPopulation &pop, int blocks_per_chip,
               const std::vector<double> &pecs, Measure &measure, int c)
    -> std::vector<std::vector<std::invoke_result_t<
        Measure &, NandChip &, BlockId, std::size_t>>>
{
    using Record = std::invoke_result_t<Measure &, NandChip &, BlockId,
                                        std::size_t>;
    std::vector<std::vector<Record>> by_pec(pecs.size());
    for (std::size_t pi = 0; pi < pecs.size(); ++pi) {
        const double pec = pecs[pi];
        pop.forEachSampledBlockOfChip(
            c, blocks_per_chip, [&](NandChip &chip, BlockId id) {
                Block &blk = chip.block(id);
                if (blk.pec() < pec) {
                    chip.ageBaseline(
                        id, static_cast<int>(pec - blk.pec()));
                }
                by_pec[pi].push_back(measure(chip, id, pi));
            });
    }
    return by_pec;
}

/** Concatenate per-chip records into records[pec], chip-major. */
template <typename Record>
std::vector<std::vector<Record>>
foldChipRecordsByPec(std::vector<std::vector<std::vector<Record>>> &per_chip,
                     std::size_t num_pecs)
{
    std::vector<std::vector<Record>> by_pec(num_pecs);
    for (std::size_t pi = 0; pi < num_pecs; ++pi) {
        for (auto &chip_records : per_chip) {
            // A chip claimed by a sibling campaign worker comes back
            // default-constructed (see parallelMapJournaled); only the
            // driver, which resumes with every record cached, folds the
            // full population.
            if (chip_records.empty())
                continue;
            by_pec[pi].insert(
                by_pec[pi].end(),
                std::make_move_iterator(chip_records[pi].begin()),
                std::make_move_iterator(chip_records[pi].end()));
        }
    }
    return by_pec;
}

} // namespace detail

/** @return records[pec_index], concatenated in chip-major order. */
template <typename Measure>
auto
measureChipSharded(ChipPopulation &pop, int blocks_per_chip,
                   const std::vector<double> &pecs, Measure measure,
                   int threads = 0)
    -> std::vector<std::vector<std::invoke_result_t<
        Measure &, NandChip &, BlockId, std::size_t>>>
{
    std::vector<int> chip_indices(
        static_cast<std::size_t>(pop.numChips()));
    std::iota(chip_indices.begin(), chip_indices.end(), 0);

    auto per_chip = parallelMap(
        chip_indices,
        [&](int c) {
            return detail::measureOneChip(pop, blocks_per_chip, pecs,
                                          measure, c);
        },
        threads);

    return detail::foldChipRecordsByPec(per_chip, pecs.size());
}

/**
 * The journaled engine: as above, plus one checkpoint record per
 * completed chip task. @p codec must provide
 * `Json encode(const Record &)` and `Record decode(const Json &)`
 * (exact round-trip). With a null scope this is the plain engine.
 */
template <typename Measure, typename Codec>
auto
measureChipSharded(ChipPopulation &pop, int blocks_per_chip,
                   const std::vector<double> &pecs, Measure measure,
                   const CampaignScope &scope, Codec codec,
                   int threads = 0)
    -> std::vector<std::vector<std::invoke_result_t<
        Measure &, NandChip &, BlockId, std::size_t>>>
{
    using Record = std::invoke_result_t<Measure &, NandChip &, BlockId,
                                        std::size_t>;
    using ChipRecords = std::vector<std::vector<Record>>;
    std::vector<int> chip_indices(
        static_cast<std::size_t>(pop.numChips()));
    std::iota(chip_indices.begin(), chip_indices.end(), 0);

    auto per_chip = parallelMapJournaled(
        scope.journal, chip_indices,
        [&](std::size_t, int c) { return scope.key("chip", c); },
        [&](int c) {
            return detail::measureOneChip(pop, blocks_per_chip, pecs,
                                          measure, c);
        },
        [&](const ChipRecords &by_pec) {
            Json doc = Json::array();
            for (const auto &records : by_pec) {
                Json inner = Json::array();
                for (const auto &r : records)
                    inner.push(codec.encode(r));
                doc.push(std::move(inner));
            }
            return doc;
        },
        [&](const Json &doc) {
            AERO_CHECK(doc.isArray() && doc.size() == pecs.size(),
                       "journaled chip task does not cover the ",
                       pecs.size(), " PEC points of this campaign");
            ChipRecords by_pec(pecs.size());
            for (std::size_t pi = 0; pi < pecs.size(); ++pi) {
                const Json &inner = doc.at(pi);
                for (std::size_t i = 0; i < inner.size(); ++i)
                    by_pec[pi].push_back(codec.decode(inner.at(i)));
            }
            return by_pec;
        },
        threads);

    return detail::foldChipRecordsByPec(per_chip, pecs.size());
}

} // namespace aero

#endif // AERO_DEVCHAR_CHIP_SHARD_HH
