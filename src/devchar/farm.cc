#include "devchar/farm.hh"

namespace aero
{

namespace
{

PopulationConfig
toPopulationConfig(const FarmConfig &cfg)
{
    PopulationConfig pc;
    pc.type = cfg.type;
    pc.numChips = cfg.numChips;
    // One plane with exactly the sampled block count: characterization
    // experiments address blocks directly.
    pc.geometry = ChipGeometry{1, cfg.blocksPerChip, 64};
    pc.seed = cfg.seed;
    return pc;
}

} // namespace

ChipFarm::ChipFarm(const FarmConfig &cfg_)
    : cfg(cfg_), pop(toPopulationConfig(cfg_))
{
}

} // namespace aero
