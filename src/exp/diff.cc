#include "exp/diff.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace aero
{

namespace
{

bool
isIgnored(const DiffOptions &opts, const std::string &key)
{
    return std::find(opts.ignoreKeys.begin(), opts.ignoreKeys.end(),
                     key) != opts.ignoreKeys.end();
}

/** Render a value for the delta table (via the serializer). */
std::string
render(const Json *v)
{
    return v ? v->dump() : "(absent)";
}

/** The document-level fields handled specially by diffReports(). */
bool
isStructuralKey(const std::string &key)
{
    return key == "schema" || key == "axes" || key == "results" ||
           key == "summary";
}

/** Recursively drop ignored object members so exact compares skip them. */
Json
stripIgnored(const Json &v, const DiffOptions &opts)
{
    if (v.isObject()) {
        Json out = Json::object();
        for (std::size_t i = 0; i < v.size(); ++i) {
            const auto &[key, value] = v.member(i);
            if (!isIgnored(opts, key))
                out[key] = stripIgnored(value, opts);
        }
        return out;
    }
    if (v.isArray()) {
        Json out = Json::array();
        for (std::size_t i = 0; i < v.size(); ++i)
            out.push(stripIgnored(v.at(i), opts));
        return out;
    }
    return v;
}

/**
 * Tolerant numeric equality. Exact integers compare exactly; once a
 * double is involved the |a-b| <= absTol / relTol * max(|a|,|b|) rules
 * apply. NaN==NaN and same-signed infinities are equal by design (see
 * diff.hh).
 */
bool
numbersMatch(const Json &a, const Json &b, const DiffOptions &opts,
             double *absDelta, double *relDelta)
{
    *absDelta = 0.0;
    *relDelta = 0.0;
    if (a.isIntegral() && b.isIntegral()) {
        if (a == b)
            return true;
        const double delta = std::fabs(a.asDouble() - b.asDouble());
        const double scale =
            std::max(std::fabs(a.asDouble()), std::fabs(b.asDouble()));
        *absDelta = delta;
        *relDelta = scale > 0.0 ? delta / scale : 0.0;
        return false;
    }
    const double x = a.asDouble();
    const double y = b.asDouble();
    const bool xNan = std::isnan(x), yNan = std::isnan(y);
    if (xNan || yNan)
        return xNan && yNan;
    if (std::isinf(x) || std::isinf(y)) {
        if (x == y)
            return true;
        *absDelta = std::numeric_limits<double>::infinity();
        *relDelta = std::numeric_limits<double>::infinity();
        return false;
    }
    const double delta = std::fabs(x - y);
    const double scale = std::max(std::fabs(x), std::fabs(y));
    *absDelta = delta;
    *relDelta = scale > 0.0 ? delta / scale : 0.0;
    if (delta <= opts.absTol)
        return true;
    return scale > 0.0 && delta <= opts.relTol * scale;
}

class Differ
{
  public:
    Differ(const Json &docA, const Json &docB, const DiffOptions &opts)
        : a(docA), b(docB), opts(opts)
    {
    }

    DiffResult
    run()
    {
        compareSchema();
        compareResults();
        compareSummary();
        compareRemainingDocKeys();
        result.match = result.deltas.empty();
        return std::move(result);
    }

  private:
    const Json &a;
    const Json &b;
    const DiffOptions &opts;
    DiffResult result;

    void
    addDelta(std::string row, std::string metric, const Json *va,
             const Json *vb, std::string what, double absDelta = 0.0,
             double relDelta = 0.0)
    {
        DiffEntry e;
        e.row = std::move(row);
        e.metric = std::move(metric);
        e.a = render(va);
        e.b = render(vb);
        e.absDelta = absDelta;
        e.relDelta = relDelta;
        e.what = std::move(what);
        result.deltas.push_back(std::move(e));
    }

    void
    compareSchema()
    {
        const Json *sa = a.find("schema");
        const Json *sb = b.find("schema");
        if (!sa || !sb || !(*sa == *sb))
            addDelta("", "schema", sa, sb, "schema");
    }

    std::string
    rowKey(const Json &row, const std::vector<std::string> &axes) const
    {
        std::string key;
        for (const auto &axis : axes) {
            if (!key.empty())
                key += ' ';
            key += axis;
            key += '=';
            const Json *v = row.find(axis);
            key += v ? v->dump() : "-";
        }
        return key;
    }

    void
    compareResults()
    {
        const Json *ra = a.find("results");
        const Json *rb = b.find("results");
        if (!ra || !rb || !ra->isArray() || !rb->isArray()) {
            // Absent on both sides is fine (a summary-only document);
            // anything else — absent on one side, or present but not
            // an array — is structural breakage, never a match.
            if (ra || rb)
                addDelta("", "results", ra, rb, "doc");
            return;
        }
        result.rowsA = ra->size();
        result.rowsB = rb->size();

        std::vector<std::string> axes = reportAxes(a);
        // --ignore applies to axis keys too: drop them from the row
        // identity so rows differing only in an ignored axis pair up.
        axes.erase(std::remove_if(axes.begin(), axes.end(),
                                  [&](const std::string &axis) {
                                      return isIgnored(opts, axis);
                                  }),
                   axes.end());
        if (axes.empty()) {
            // No axis declaration: match rows by position.
            const std::size_t n = std::min(ra->size(), rb->size());
            for (std::size_t i = 0; i < n; ++i) {
                compareRow(detail::concat("row #", i), ra->at(i),
                           rb->at(i), axes);
            }
            for (std::size_t i = n; i < ra->size(); ++i)
                addDelta(detail::concat("row #", i), "", &ra->at(i),
                         nullptr, "row");
            for (std::size_t i = n; i < rb->size(); ++i)
                addDelta(detail::concat("row #", i), "", nullptr,
                         &rb->at(i), "row");
            return;
        }
        {
            std::vector<std::string> axesB = reportAxes(b);
            axesB.erase(std::remove_if(axesB.begin(), axesB.end(),
                                       [&](const std::string &axis) {
                                           return isIgnored(opts, axis);
                                       }),
                        axesB.end());
            if (!axesB.empty() && axesB != axes) {
                const Json *xa = a.find("axes");
                const Json *xb = b.find("axes");
                addDelta("", "axes", xa, xb, "schema");
            }
        }

        // Index side B by axis key; duplicate keys are themselves a
        // defect (the key no longer identifies a row).
        std::map<std::string, const Json *> byKeyB;
        for (std::size_t i = 0; i < rb->size(); ++i) {
            const Json &row = rb->at(i);
            const std::string key = rowKey(row, axes);
            if (!byKeyB.emplace(key, &row).second)
                addDelta(key, "", nullptr, &row, "row");
        }
        std::map<std::string, const Json *> seenA;
        for (std::size_t i = 0; i < ra->size(); ++i) {
            const Json &row = ra->at(i);
            const std::string key = rowKey(row, axes);
            if (!seenA.emplace(key, &row).second) {
                addDelta(key, "", &row, nullptr, "row");
                continue;
            }
            const auto it = byKeyB.find(key);
            if (it == byKeyB.end()) {
                addDelta(key, "", &row, nullptr, "row");
                continue;
            }
            compareRow(key, row, *it->second, axes);
        }
        for (const auto &[key, row] : byKeyB) {
            if (!seenA.count(key))
                addDelta(key, "", nullptr, row, "row");
        }
    }

    void
    compareRow(const std::string &key, const Json &rowA, const Json &rowB,
               const std::vector<std::string> &axes)
    {
        // Rows must be flat objects; anything else is structural
        // breakage reported as a row delta, never a crash.
        if (!rowA.isObject() || !rowB.isObject()) {
            addDelta(key, "", &rowA, &rowB, "row");
            return;
        }
        result.rowsCompared += 1;
        // Union of metric keys, side-A order first so the delta table
        // follows the artifact's column order.
        std::vector<std::string> metrics;
        const auto collect = [&](const Json &row) {
            for (std::size_t i = 0; i < row.size(); ++i) {
                const std::string &name = row.member(i).first;
                if (isIgnored(opts, name))
                    continue;
                if (std::find(axes.begin(), axes.end(), name) !=
                    axes.end())
                    continue;
                if (std::find(metrics.begin(), metrics.end(), name) ==
                    metrics.end())
                    metrics.push_back(name);
            }
        };
        collect(rowA);
        collect(rowB);
        for (const auto &metric : metrics)
            compareMetric(key, metric, rowA.find(metric),
                          rowB.find(metric));
    }

    void
    compareMetric(const std::string &row, const std::string &metric,
                  const Json *va, const Json *vb)
    {
        result.metricsCompared += 1;
        if (!va || !vb) {
            addDelta(row, metric, va, vb, "metric");
            return;
        }
        if (va->isNumeric() && vb->isNumeric()) {
            double absDelta, relDelta;
            if (!numbersMatch(*va, *vb, opts, &absDelta, &relDelta))
                addDelta(row, metric, va, vb, "metric", absDelta,
                         relDelta);
            return;
        }
        if (va->type() != vb->type()) {
            addDelta(row, metric, va, vb, "type");
            return;
        }
        if (va->isObject() || va->isArray()) {
            if (!(stripIgnored(*va, opts) == stripIgnored(*vb, opts)))
                addDelta(row, metric, va, vb, "metric");
            return;
        }
        if (!(*va == *vb))
            addDelta(row, metric, va, vb, "metric");
    }

    void
    compareSummary()
    {
        const Json *sa = a.find("summary");
        const Json *sb = b.find("summary");
        if (!sa && !sb)
            return;
        if (!sa || !sb || !sa->isObject() || !sb->isObject()) {
            addDelta("summary", "", sa, sb, "doc");
            return;
        }
        compareRow("summary", *sa, *sb, {});
        result.rowsCompared -= 1;  // the summary is not a result row
    }

    void
    compareRemainingDocKeys()
    {
        std::vector<std::string> keys;
        const auto collect = [&](const Json &doc) {
            for (std::size_t i = 0; i < doc.size(); ++i) {
                const std::string &name = doc.member(i).first;
                if (isStructuralKey(name) || isIgnored(opts, name))
                    continue;
                if (std::find(keys.begin(), keys.end(), name) ==
                    keys.end())
                    keys.push_back(name);
            }
        };
        collect(a);
        collect(b);
        for (const auto &key : keys) {
            const Json *va = a.find(key);
            const Json *vb = b.find(key);
            if (!va || !vb) {
                addDelta("", key, va, vb, "doc");
                continue;
            }
            if (!(stripIgnored(*va, opts) == stripIgnored(*vb, opts)))
                addDelta("", key, va, vb, "doc");
        }
    }
};

std::string
formatDelta(double v)
{
    if (v == 0.0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

} // namespace

namespace
{

/**
 * Split one CSV document into rows of cells, honouring RFC 4180
 * quoting: a quoted cell may contain commas, doubled quotes, and
 * newlines. CRLF and LF line ends are both accepted; a trailing
 * newline does not produce an empty final row. Returns false and
 * fills @p error on a malformed document.
 */
bool
parseCsv(const std::string &text,
         std::vector<std::vector<std::string>> *outRows,
         std::string *error)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string cell;
    bool quoted = false;
    bool cellStarted = false;
    const auto endCell = [&] {
        row.push_back(std::move(cell));
        cell.clear();
        cellStarted = false;
    };
    const auto endRow = [&] {
        endCell();
        rows.push_back(std::move(row));
        row.clear();
    };
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += c;
            }
            continue;
        }
        if (c == '"' && !cellStarted && cell.empty()) {
            quoted = true;
            cellStarted = true;
        } else if (c == ',') {
            endCell();
            cellStarted = false;
        } else if (c == '\n') {
            if (!cell.empty() && cell.back() == '\r')
                cell.pop_back();
            endRow();
        } else {
            cell += c;
            cellStarted = true;
        }
    }
    if (quoted) {
        *error = "CSV artifact ends inside a quoted cell";
        return false;
    }
    if (cellStarted || !cell.empty() || !row.empty())
        endRow();
    *outRows = std::move(rows);
    return true;
}

/** Is @p cell exactly an optionally-'-'-signed run of digits? */
bool
lexicallyInteger(const std::string &cell)
{
    std::size_t i = cell[0] == '-' ? 1 : 0;
    if (i >= cell.size())
        return false;
    for (; i < cell.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(cell[i])))
            return false;
    }
    return true;
}

/**
 * Type a CSV cell the way the serializers wrote it: integers exactly
 * (so the diff's exact-integer rule applies), other numbers as double,
 * the empty cell as null, everything else as a string. False (with
 * @p error set) only for an integer cell that overflows 64 bits —
 * silently degrading it to a lossy double would let a corrupted count
 * "pass" the exact-integer comparison.
 */
bool
typedCell(const std::string &cell, Json *out, std::string *error)
{
    if (cell.empty()) {
        *out = Json{};
        return true;
    }
    char *end = nullptr;
    if (lexicallyInteger(cell)) {
        // Only a lexically vetted cell may reach strtoull/strtoll:
        // both skip leading whitespace, and strtoull *accepts* a
        // leading '-' by wrapping modulo 2^64 (" -1" would become
        // 18446744073709551615 and pass exact integer comparison).
        errno = 0;
        if (cell[0] == '-') {
            const long long v = std::strtoll(cell.c_str(), &end, 10);
            if (errno == ERANGE) {
                *error = "integer cell overflows a signed 64-bit value";
                return false;
            }
            *out = Json{static_cast<std::int64_t>(v)};
        } else {
            const unsigned long long v =
                std::strtoull(cell.c_str(), &end, 10);
            if (errno == ERANGE) {
                *error =
                    "integer cell overflows an unsigned 64-bit value";
                return false;
            }
            *out = Json{static_cast<std::uint64_t>(v)};
        }
        return true;
    }
    errno = 0;
    const double d = std::strtod(cell.c_str(), &end);
    if (end && *end == '\0' && errno != ERANGE) {
        *out = Json{d};
        return true;
    }
    *out = Json{cell};
    return true;
}

} // namespace

bool
csvToReport(const std::string &text, Json *out, std::string *error)
{
    std::vector<std::vector<std::string>> rows;
    if (!parseCsv(text, &rows, error))
        return false;
    if (rows.empty()) {
        *error = "CSV artifact is empty (no header row)";
        return false;
    }
    const auto &header = rows.front();

    Json doc = Json::object();
    doc["schema"] = "aero-csv/1";
    // When every sweep axis column is present the rows carry the full
    // sweep identity; reuse the axis-keyed matcher so reordered rows
    // are not differences. Otherwise rows match by position.
    const std::vector<std::string> sweepAxes = {
        "workload", "scheme", "pec", "suspension", "misprediction_rate",
        "rber_requirement", "requests", "seed"};
    const bool sweepShaped = std::all_of(
        sweepAxes.begin(), sweepAxes.end(), [&](const std::string &axis) {
            return std::find(header.begin(), header.end(), axis) !=
                   header.end();
        });
    if (sweepShaped) {
        Json axes = Json::array();
        for (const auto &axis : sweepAxes)
            axes.push(axis);
        doc["axes"] = std::move(axes);
    }

    Json results = Json::array();
    for (std::size_t r = 1; r < rows.size(); ++r) {
        if (rows[r].size() != header.size()) {
            *error = detail::concat("CSV artifact row ", r + 1,
                                    " has ", rows[r].size(),
                                    " cells, header has ",
                                    header.size());
            return false;
        }
        Json row = Json::object();
        for (std::size_t c = 0; c < header.size(); ++c) {
            Json value;
            std::string cellError;
            if (!typedCell(rows[r][c], &value, &cellError)) {
                *error = detail::concat(
                    "CSV artifact row ", r + 1, ", column ", c + 1,
                    " ('", header[c], "'): ", cellError, ": '",
                    rows[r][c], "'");
                return false;
            }
            row[header[c]] = std::move(value);
        }
        results.push(std::move(row));
    }
    doc["results"] = std::move(results);
    *out = std::move(doc);
    return true;
}

Json
csvToReport(const std::string &text)
{
    Json doc;
    std::string error;
    if (!csvToReport(text, &doc, &error))
        AERO_FATAL(error);
    return doc;
}

std::vector<std::string>
reportAxes(const Json &doc)
{
    if (const Json *axes = doc.find("axes");
        axes && axes->isArray()) {
        std::vector<std::string> out;
        for (std::size_t i = 0; i < axes->size(); ++i) {
            // Tolerate malformed entries (a diff tool must not crash
            // on the artifact it is diagnosing); non-strings cannot
            // name a key, so they are skipped.
            if (axes->at(i).isString())
                out.push_back(axes->at(i).asString());
        }
        return out;
    }
    if (const Json *schema = doc.find("schema");
        schema && schema->isString() &&
        schema->asString() == "aero-sweep/1") {
        return {"workload", "scheme", "pec", "suspension",
                "misprediction_rate", "rber_requirement", "requests",
                "seed"};
    }
    return {};
}

DiffResult
diffReports(const Json &a, const Json &b, const DiffOptions &opts)
{
    return Differ(a, b, opts).run();
}

std::string
DiffResult::table(std::size_t maxEntries) const
{
    if (deltas.empty())
        return "";
    // Long cells (a whole missing row dumped into one column) are
    // clipped so every table line stays intact and newline-terminated.
    constexpr std::size_t kMaxCell = 48;
    const auto clip = [](const std::string &s) {
        if (s.size() <= kMaxCell)
            return s;
        return s.substr(0, kMaxCell - 3) + "...";
    };
    const std::size_t n = maxEntries == 0
        ? deltas.size()
        : std::min(maxEntries, deltas.size());
    // Column widths over the (clipped) printed subset.
    std::size_t wRow = 3, wMetric = 6, wA = 1, wB = 1;
    for (std::size_t i = 0; i < n; ++i) {
        wRow = std::max(wRow,
                        std::min(deltas[i].row.size(), kMaxCell));
        wMetric = std::max(wMetric,
                           std::min(deltas[i].metric.size(), kMaxCell));
        wA = std::max(wA, std::min(deltas[i].a.size(), kMaxCell));
        wB = std::max(wB, std::min(deltas[i].b.size(), kMaxCell));
    }
    const auto pad = [](const std::string &s, std::size_t w) {
        return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
    };
    const auto padLeft = [](const std::string &s, std::size_t w) {
        return std::string(w > s.size() ? w - s.size() : 0, ' ') + s;
    };
    const auto formatLine = [&](const std::string &kind,
                                const std::string &row,
                                const std::string &metric,
                                const std::string &va,
                                const std::string &vb,
                                const std::string &absd,
                                const std::string &reld) {
        return pad(kind, 6) + " | " + pad(row, wRow) + " | " +
               pad(metric, wMetric) + " | " + pad(va, wA) + " | " +
               pad(vb, wB) + " | " + padLeft(absd, 9) + " | " +
               padLeft(reld, 9) + "\n";
    };
    std::string out = formatLine("kind", "row", "metric", "a", "b",
                                 "abs-delta", "rel-delta");
    out += std::string(out.size() - 1, '-') + "\n";
    for (std::size_t i = 0; i < n; ++i) {
        const DiffEntry &e = deltas[i];
        out += formatLine(e.what, clip(e.row), clip(e.metric),
                          clip(e.a), clip(e.b),
                          formatDelta(e.absDelta),
                          formatDelta(e.relDelta));
    }
    if (n < deltas.size())
        out += detail::concat("... and ", deltas.size() - n,
                              " more\n");
    return out;
}

namespace
{

/** Is @p name a report artifact (.json / .csv, case-sensitive)? */
bool
isReportFile(const std::filesystem::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".json" || ext == ".csv";
}

/**
 * Directory-relative paths of every report artifact under @p dir,
 * sorted (generic '/' separators so A and B pair on any platform).
 */
std::vector<std::string>
collectReportFiles(const std::filesystem::path &dir)
{
    std::vector<std::string> names;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file() || !isReportFile(entry.path()))
            continue;
        names.push_back(
            entry.path().lexically_relative(dir).generic_string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

/** Read + parse one artifact; false (with @p error) on any failure. */
bool
loadReportFile(const std::filesystem::path &path, Json *out,
               std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *error = detail::concat("cannot open '", path.string(), "'");
        return false;
    }
    std::ostringstream content;
    content << in.rdbuf();
    if (in.bad()) {
        *error = detail::concat("failed reading '", path.string(), "'");
        return false;
    }
    if (path.extension() == ".csv") {
        std::string csvError;
        if (!csvToReport(content.str(), out, &csvError)) {
            *error = detail::concat(path.string(), ": ", csvError);
            return false;
        }
        return true;
    }
    Json::ParseError err;
    if (!Json::parse(content.str(), out, &err)) {
        *error =
            detail::concat(path.string(), ": ", err.toString());
        return false;
    }
    return true;
}

} // namespace

DirDiffResult
diffReportDirs(const std::string &dirA, const std::string &dirB,
               const DiffOptions &opts)
{
    const std::filesystem::path a(dirA), b(dirB);
    for (const auto &dir : {a, b}) {
        if (!std::filesystem::is_directory(dir))
            AERO_FATAL("'", dir.string(), "' is not a directory");
    }
    const auto filesA = collectReportFiles(a);
    const auto filesB = collectReportFiles(b);

    DirDiffResult result;
    // Both lists are sorted: a single merge walk pairs files by name
    // and classifies the one-sided leftovers.
    std::size_t ia = 0, ib = 0;
    while (ia < filesA.size() || ib < filesB.size()) {
        if (ib >= filesB.size() ||
            (ia < filesA.size() && filesA[ia] < filesB[ib])) {
            result.onlyA.push_back(filesA[ia++]);
            continue;
        }
        if (ia >= filesA.size() || filesB[ib] < filesA[ia]) {
            result.onlyB.push_back(filesB[ib++]);
            continue;
        }
        DirDiffFile file;
        file.name = filesA[ia];
        Json docA, docB;
        std::string error;
        if (!loadReportFile(a / filesA[ia], &docA, &error) ||
            !loadReportFile(b / filesB[ib], &docB, &error)) {
            file.error = error;
            result.anyError = true;
        } else {
            file.loaded = true;
            file.diff = diffReports(docA, docB, opts);
            if (file.diff.match)
                result.matched += 1;
        }
        result.compared.push_back(std::move(file));
        ia += 1;
        ib += 1;
    }
    return result;
}

} // namespace aero
