/**
 * @file
 * The campaign journal: generic checkpoint/resume for any long-running
 * experiment campaign — system-level sweeps (Figs. 13-16, Tabs. 3-4),
 * chip-sharded device-characterization runs (Figs. 4, 7-11, 17, Tab. 1),
 * or anything else shaped as "many independent tasks, each producing one
 * record".
 *
 * Journal format (`aero-campaign/1`), one JSON document per line:
 *
 *   {"schema":"aero-campaign/1","campaign":"<name>",
 *    "fingerprint":"<hex>","config":{..}}
 *   {"fingerprint":"<hex>","key":{..axes..},"payload":<any JSON>}
 *   ...
 *
 * The header pins the journal to one (campaign, configuration) pair via
 * a fingerprint over the campaign name and the canonical config JSON;
 * every record repeats the fingerprint so a record can never be spliced
 * into the wrong campaign. Records are keyed by an *axis object* (chip
 * index, scheme name, grid point, ...), not by position, so a journal
 * written under any thread count resumes correctly under any other.
 *
 * Crash tolerance: each record is one write() followed by a flush, so a
 * torn write leaves at most one partial final line. On open, the loader
 * parses each line with Json::parse, drops a malformed *tail record*
 * (warning, then truncates the file back to the last good record before
 * appending), and fails loudly on corruption anywhere else — including a
 * file whose first line is not a journal header (never truncate a file
 * the caller pointed us at by mistake) — and on any campaign or
 * fingerprint mismatch, naming the config field that differs.
 */

#ifndef AERO_EXP_CAMPAIGN_HH
#define AERO_EXP_CAMPAIGN_HH

#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/json.hh"
#include "exp/sweep_impl.hh"

namespace aero
{

class CampaignJournal
{
  public:
    /**
     * Open (or create) the journal at @p path for the campaign named
     * @p campaign with configuration @p config. An existing journal is
     * validated (schema, campaign name, fingerprint) and its records
     * are loaded; a journal written for a different campaign or
     * configuration is fatal with a message naming the mismatch.
     */
    CampaignJournal(std::string path, std::string campaign, Json config);
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    const std::string &path() const { return journalPath; }
    const std::string &campaignName() const { return campaign; }

    /** Number of distinct keys already journaled. */
    std::size_t cachedCount() const;

    /** Was a record with this key already journaled? Thread-safe. */
    bool has(const Json &key) const;

    /**
     * The journaled payload for @p key (fatal when absent; check has()
     * first). Returns a copy so the reference cannot dangle while other
     * workers append. Thread-safe.
     */
    Json cached(const Json &key) const;

    /**
     * Append one completed task's record and flush it to disk.
     * Thread-safe: workers journal records in completion order, and the
     * key-addressed loader makes order irrelevant on resume.
     */
    void record(const Json &key, Json payload);

    /** Visit every cached (key, payload) pair, in journal order. */
    void forEachCached(
        const std::function<void(const Json &key, const Json &payload)>
            &fn) const;

    /**
     * Fingerprint of a campaign: a hash over its name and its canonical
     * config JSON, rendered as hex.
     */
    static std::string fingerprint(const std::string &campaign,
                                   const Json &config);

  private:
    void load();
    void loadHeader(const Json &row, std::size_t lineNo);
    void loadRecord(const Json &row, std::size_t lineNo);
    void openForAppend(std::uint64_t keepBytes, bool writeHeader);
    void append(const Json &row);
    void insert(Json key, Json payload);

    std::string journalPath;
    std::string campaign;
    std::string fp;        //!< fingerprint of (campaign, config)
    Json configJson;       //!< canonical config (header payload)
    /** (key, payload) in journal order; deque keeps entries stable. */
    std::deque<std::pair<Json, Json>> entries;
    std::unordered_map<std::string, std::size_t> indexByKey;
    std::FILE *out = nullptr;
    mutable std::mutex mutex;
};

/**
 * A journal handle plus a key prefix, cheap to pass down through the
 * stages of a multi-part campaign. An empty scope (null journal) turns
 * every journaled engine into its plain, uncheckpointed self, so
 * callers thread one scope through unconditionally.
 */
struct CampaignScope
{
    CampaignJournal *journal = nullptr;
    Json prefix = Json::object();

    CampaignScope() = default;
    CampaignScope(CampaignJournal *j) : journal(j) {}
    CampaignScope(CampaignJournal *j, Json p)
        : journal(j), prefix(std::move(p))
    {
    }

    explicit operator bool() const { return journal != nullptr; }

    /** This scope narrowed by one more key axis. */
    CampaignScope
    with(const std::string &axis, Json value) const
    {
        CampaignScope s(journal, prefix);
        s.prefix[axis] = std::move(value);
        return s;
    }

    /** A record key: the prefix axes (copy, ready for more members). */
    Json base() const { return prefix; }

    /** A record key: the prefix axes plus one final axis. */
    Json
    key(const std::string &axis, Json value) const
    {
        Json k = prefix;
        k[axis] = std::move(value);
        return k;
    }
};

/**
 * parallelMap() with a campaign journal: each item's result is
 * journaled under `keyOf(index, item)` as `encode(result)`, and items
 * already journaled are decoded from the journal instead of recomputed
 * — so a killed campaign resumes from its last flushed task. With a
 * null journal this is exactly parallelMap(). Results are byte-stable
 * across kill/resume cycles and thread counts provided
 * `decode(encode(x))` reproduces `x` exactly (every codec in this repo
 * round-trips doubles bit-for-bit through the JSON serializer).
 */
template <typename Item, typename KeyFn, typename Fn, typename Enc,
          typename Dec>
auto
parallelMapJournaled(CampaignJournal *journal,
                     const std::vector<Item> &items, KeyFn keyOf, Fn fn,
                     Enc encode, Dec decode, int threads = 0)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>>
{
    using Result = std::decay_t<decltype(fn(items.front()))>;
    std::vector<std::size_t> indices(items.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    return parallelMap(
        indices,
        [&](std::size_t i) -> Result {
            if (!journal)
                return fn(items[i]);
            const Json key = keyOf(i, items[i]);
            if (journal->has(key))
                return decode(journal->cached(key));
            Result r = fn(items[i]);
            journal->record(key, encode(r));
            return r;
        },
        threads);
}

} // namespace aero

#endif // AERO_EXP_CAMPAIGN_HH
