/**
 * @file
 * The campaign journal: generic checkpoint/resume for any long-running
 * experiment campaign — system-level sweeps (Figs. 13-16, Tabs. 3-4),
 * chip-sharded device-characterization runs (Figs. 4, 7-11, 17, Tab. 1),
 * or anything else shaped as "many independent tasks, each producing one
 * record".
 *
 * Single-file journal format (`aero-campaign/1`), one JSON document per
 * line:
 *
 *   {"schema":"aero-campaign/1","campaign":"<name>",
 *    "fingerprint":"<hex>","config":{..}}
 *   {"fingerprint":"<hex>","key":{..axes..},"payload":<any JSON>}
 *   ...
 *
 * Directory journal format (`aero-campaign/2`): the journal path is a
 * *directory* shared by N worker processes. Each worker appends to its
 * own file `journal.<worker_id>.jsonl` (same line format, header schema
 * `aero-campaign/2` plus a `"worker"` field), and every reader merges
 * all `journal.*.jsonl` files in sorted filename order with
 * duplicate-key *last-wins* semantics. Workers coordinate in-flight
 * tasks through `claims.jsonl`: before running a task, a worker takes
 * an advisory `flock()` on the claims file, re-reads it, and appends a
 * fsync'ed claim record `{"key":..,"worker":..,"pid":..}` — a task
 * claimed by another *live* pid is skipped, a claim left by a dead pid
 * is stale and silently reaped. Because task payloads are deterministic
 * functions of their keys, a reaped-and-recomputed task produces an
 * identical record and last-wins merging keeps every reader
 * byte-consistent. `compactCampaignJournal()` rewrites a journal
 * directory down to one deduplicated `journal.compacted.jsonl` with a
 * fresh header (and a single file down to its deduplicated self), so
 * journals do not grow without bound across resume cycles.
 *
 * The header pins the journal to one (campaign, configuration) pair via
 * a fingerprint over the campaign name and the canonical config JSON;
 * every record repeats the fingerprint so a record can never be spliced
 * into the wrong campaign. Records are keyed by an *axis object* (chip
 * index, scheme name, grid point, ...), not by position, so a journal
 * written under any thread count — or any worker count — resumes
 * correctly under any other.
 *
 * Crash tolerance and the durability contract:
 *
 *   - Each record is one write() followed by std::fflush(), so a torn
 *     write leaves at most one partial final line. On open, the loader
 *     parses each line with Json::parse, drops a malformed *tail
 *     record* (warning; the file this process appends to is truncated
 *     back to its last good record, other workers' files are merged
 *     read-only and never touched), and fails loudly on corruption
 *     anywhere else — including a file whose first line is not a
 *     journal header (never truncate a file the caller pointed us at
 *     by mistake) — and on any campaign or fingerprint mismatch,
 *     naming the config field that differs.
 *   - fflush() hands the record to the kernel page cache: a flushed
 *     record survives process death of any kind (SIGKILL included)
 *     because the kernel owns the dirty page. It does NOT survive
 *     power loss or a host crash before the kernel writes the page
 *     back. JournalOptions::fsyncRecords (or AERO_JOURNAL_FSYNC=1)
 *     additionally fsync()s every record, extending "resumes from its
 *     last flushed task" to power loss at the cost of one device sync
 *     per task.
 *   - Claim records are *always* fsync'ed regardless of fsyncRecords:
 *     a lost claim means two workers duplicating an expensive task,
 *     so claims buy durability unconditionally (they are tiny and
 *     written once per task).
 */

#ifndef AERO_EXP_CAMPAIGN_HH
#define AERO_EXP_CAMPAIGN_HH

#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/json.hh"
#include "exp/sweep_impl.hh"

namespace aero
{

/** How a CampaignJournal is opened (see the file comment). */
struct JournalOptions
{
    /**
     * Non-empty selects directory mode (`aero-campaign/2`): the journal
     * path names a shared directory and this process appends to
     * `journal.<workerId>.jsonl` inside it. Letters, digits, and
     * `._-` only. Empty (the default) is the classic single-file
     * `aero-campaign/1` journal, bit-identical to prior releases.
     */
    std::string workerId;

    /**
     * Enable advisory file-locked claim records (directory mode only):
     * tryClaim() must grant a key before the task runs, so concurrent
     * workers never duplicate in-flight work.
     */
    bool claims = false;

    /**
     * fsync() every journal record after flushing it (see the
     * durability contract in the file comment). Overridable either way
     * by the AERO_JOURNAL_FSYNC environment variable ("1" or "0").
     */
    bool fsyncRecords = false;
};

class CampaignJournal
{
  public:
    /**
     * Open (or create) the journal at @p path for the campaign named
     * @p campaign with configuration @p config. An existing journal is
     * validated (schema, campaign name, fingerprint) and its records
     * are loaded; a journal written for a different campaign or
     * configuration is fatal with a message naming the mismatch. With
     * options.workerId set, @p path is a journal *directory* (created
     * if absent): all worker files are merged and this process appends
     * to its own (refusing to start when another live process already
     * holds the worker id's file lock).
     */
    CampaignJournal(std::string path, std::string campaign, Json config,
                    JournalOptions options = {});
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    const std::string &path() const { return journalPath; }
    const std::string &campaignName() const { return campaign; }

    /** Directory mode (`aero-campaign/2`)? */
    bool directoryMode() const { return !options.workerId.empty(); }

    /** Are file-locked claim records in force? */
    bool claimsEnabled() const { return options.claims; }

    /** Number of distinct keys already journaled. */
    std::size_t cachedCount() const;

    /** Was a record with this key already journaled? Thread-safe. */
    bool has(const Json &key) const;

    /**
     * The journaled payload for @p key (fatal when absent; check has()
     * first). Returns a copy so the reference cannot dangle while other
     * workers append. Thread-safe.
     */
    Json cached(const Json &key) const;

    /**
     * Append one completed task's record and flush it to disk.
     * Thread-safe: workers journal records in completion order, and the
     * key-addressed loader makes order irrelevant on resume.
     */
    void record(const Json &key, Json payload);

    /**
     * Claim @p key for this worker before running its task. Returns
     * true when this worker now owns the claim (including reclaiming
     * its own or a dead worker's stale claim) and false when another
     * live worker holds it — skip the task, that worker will journal
     * it. Always true when claims are disabled. Thread-safe and
     * cross-process safe (exclusive flock on the claims file).
     */
    bool tryClaim(const Json &key);

    /** Visit every cached (key, payload) pair, in journal order. */
    void forEachCached(
        const std::function<void(const Json &key, const Json &payload)>
            &fn) const;

    /** Records fsync'ed so far (durability-contract observability). */
    std::size_t recordSyncCount() const;

    /** Claim records fsync'ed so far (claims are always synced). */
    std::size_t claimSyncCount() const;

    /**
     * Fingerprint of a campaign: a hash over its name and its canonical
     * config JSON, rendered as hex.
     */
    static std::string fingerprint(const std::string &campaign,
                                   const Json &config);

  private:
    void load();
    void loadDirectory();
    void loadText(const std::string &filePath, const std::string &text,
                  bool own, std::uint64_t *goodBytes, bool *sawHeader);
    void loadHeader(const std::string &filePath, const Json &row,
                    std::size_t lineNo);
    void loadRecord(const std::string &filePath, const Json &row,
                    std::size_t lineNo);
    void openForAppend(std::uint64_t keepBytes, bool writeHeader);
    void append(const Json &row);
    void insert(Json key, Json payload);
    const char *schema() const;
    void ensureClaimsFile();

    std::string journalPath;
    std::string campaign;
    std::string fp;        //!< fingerprint of (campaign, config)
    Json configJson;       //!< canonical config (header payload)
    JournalOptions options;
    std::string appendPath;  //!< file this process appends to
    /** (key, payload) in journal order; deque keeps entries stable. */
    std::deque<std::pair<Json, Json>> entries;
    std::unordered_map<std::string, std::size_t> indexByKey;
    std::FILE *out = nullptr;
    int claimsFd = -1;
    std::size_t recordSyncs = 0;  //!< guarded by mutex
    std::size_t claimSyncs = 0;   //!< guarded by claimsMutex
    mutable std::mutex mutex;
    mutable std::mutex claimsMutex;
};

/** What compactCampaignJournal() rewrote. */
struct CompactStats
{
    std::size_t files = 0;       //!< journal files merged
    std::size_t recordsIn = 0;   //!< records read (duplicates included)
    std::size_t recordsOut = 0;  //!< deduplicated records written
};

/** One journal file's contribution in a CampaignStatus. */
struct CampaignWorkerStatus
{
    std::string file;    //!< file name (journal.w0.jsonl, ...)
    std::string worker;  //!< worker id from the header ("" single-file)
    std::size_t records = 0;  //!< journaled records, duplicates included
};

/** One claimed task's state in a CampaignStatus. */
struct CampaignClaimStatus
{
    Json key;            //!< the claimed task key
    std::string worker;  //!< claiming worker id (last claim wins)
    long long pid = 0;   //!< claiming pid
    bool live = false;   //!< the claiming pid still runs
    bool completed = false;  //!< a journal record exists for the key
};

/**
 * A read-only snapshot of a campaign journal: who holds claims and how
 * far each worker got. Safe to take while workers run (live claims are
 * reported as such); torn final lines — a crash or a write in flight —
 * are skipped, not errors.
 */
struct CampaignStatus
{
    std::string path;
    std::string schema;       //!< aero-campaign/1 or aero-campaign/2
    std::string campaign;
    std::string fingerprint;
    std::size_t records = 0;      //!< total records, duplicates included
    std::size_t distinctKeys = 0; //!< deduplicated journaled tasks
    std::vector<CampaignWorkerStatus> workers;  //!< file-name order
    std::vector<CampaignClaimStatus> claims;    //!< directory mode only
};

/**
 * Inspect the journal at @p path (single file or directory) without
 * modifying it. Fatal when @p path holds no journal, a file is not a
 * campaign journal, or the files disagree on the campaign fingerprint;
 * lenient about torn tails and claims from reaped workers.
 */
CampaignStatus campaignStatus(const std::string &path);

/** Render @p status as the human summary `run_sweep --status` prints. */
std::string formatCampaignStatus(const CampaignStatus &status);

/**
 * Rewrite the journal at @p path down to one deduplicated file with a
 * fresh header, adopting the campaign/config the journal's own header
 * pins (no external knowledge needed). A directory journal becomes a
 * single `journal.compacted.jsonl` (worker id "compacted"; all other
 * worker files and the claims file are removed); a single-file journal
 * is rewritten in place, dropping superseded duplicate-key records and
 * any torn tail. Only compact a quiescent journal — no live workers.
 * Fatal on corruption or on files from mismatched campaigns.
 */
CompactStats compactCampaignJournal(const std::string &path);

/**
 * Fork @p n campaign worker processes. Returns the worker index
 * (0..n-1) in each child and -1 in the parent after every child has
 * exited; with n <= 1 no processes are forked and the caller proceeds
 * single-process. Children are torn down with the parent (PDEATHSIG on
 * Linux), so a SIGKILLed driver never leaks workers that would fight
 * the next resume for journal file locks. A child that dies or exits
 * nonzero is only a warning: the parent resumes the campaign from the
 * journal and completes the remaining tasks itself. Children must
 * `std::_Exit(0)` once their share of the campaign is journaled —
 * returning from main() would duplicate the driver's artifact writing.
 */
int forkCampaignWorkers(int n);

/**
 * A journal handle plus a key prefix, cheap to pass down through the
 * stages of a multi-part campaign. An empty scope (null journal) turns
 * every journaled engine into its plain, uncheckpointed self, so
 * callers thread one scope through unconditionally.
 */
struct CampaignScope
{
    CampaignJournal *journal = nullptr;
    Json prefix = Json::object();

    CampaignScope() = default;
    CampaignScope(CampaignJournal *j) : journal(j) {}
    CampaignScope(CampaignJournal *j, Json p)
        : journal(j), prefix(std::move(p))
    {
    }

    explicit operator bool() const { return journal != nullptr; }

    /**
     * Is this a forked campaign worker's scope (claims armed)? Such a
     * worker folds only its claimed share of the campaign, so
     * aggregation invariants that assume full coverage must be relaxed
     * — the driver re-runs them on the merged journal with every
     * record cached.
     */
    bool
    partialShare() const
    {
        return journal != nullptr && journal->claimsEnabled();
    }

    /** This scope narrowed by one more key axis. */
    CampaignScope
    with(const std::string &axis, Json value) const
    {
        CampaignScope s(journal, prefix);
        s.prefix[axis] = std::move(value);
        return s;
    }

    /** A record key: the prefix axes (copy, ready for more members). */
    Json base() const { return prefix; }

    /** A record key: the prefix axes plus one final axis. */
    Json
    key(const std::string &axis, Json value) const
    {
        Json k = prefix;
        k[axis] = std::move(value);
        return k;
    }
};

/**
 * parallelMap() with a campaign journal: each item's result is
 * journaled under `keyOf(index, item)` as `encode(result)`, and items
 * already journaled are decoded from the journal instead of recomputed
 * — so a killed campaign resumes from its last flushed task. With a
 * null journal this is exactly parallelMap(). When the journal has
 * claims enabled (multi-worker directory mode), each pending item is
 * claimed first; an item another live worker owns is *skipped* and its
 * slot left default-constructed — a forked worker must therefore exit
 * after the map and leave artifact assembly to the parent, which
 * reruns the map with every record cached. Results are byte-stable
 * across kill/resume cycles, thread counts, and worker counts provided
 * `decode(encode(x))` reproduces `x` exactly (every codec in this repo
 * round-trips doubles bit-for-bit through the JSON serializer).
 */
template <typename Item, typename KeyFn, typename Fn, typename Enc,
          typename Dec>
auto
parallelMapJournaled(CampaignJournal *journal,
                     const std::vector<Item> &items, KeyFn keyOf, Fn fn,
                     Enc encode, Dec decode, int threads = 0)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>>
{
    using Result = std::decay_t<decltype(fn(items.front()))>;
    std::vector<std::size_t> indices(items.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    return parallelMap(
        indices,
        [&](std::size_t i) -> Result {
            if (!journal)
                return fn(items[i]);
            const Json key = keyOf(i, items[i]);
            if (journal->has(key))
                return decode(journal->cached(key));
            if (!journal->tryClaim(key))
                return Result{};
            Result r = fn(items[i]);
            journal->record(key, encode(r));
            return r;
        },
        threads);
}

} // namespace aero

#endif // AERO_EXP_CAMPAIGN_HH
