#include "exp/campaign.hh"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_set>

#ifndef _WIN32
#include <csignal>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif
#endif

#include "common/logging.hh"

namespace aero
{

namespace
{

constexpr const char *kSchema = "aero-campaign/1";
constexpr const char *kSchemaDir = "aero-campaign/2";
constexpr const char *kSchemaClaims = "aero-claims/1";
constexpr const char *kClaimsFile = "claims.jsonl";
constexpr const char *kCompactedFile = "journal.compacted.jsonl";

/** FNV-1a 64-bit over @p text, rendered as 16 hex digits. */
std::string
hashHex(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Render a config value for a mismatch message, clipped for sanity. */
std::string
renderValue(const Json *v)
{
    if (!v)
        return "(absent)";
    std::string s = v->dump();
    constexpr std::size_t kMax = 96;
    if (s.size() > kMax)
        s = s.substr(0, kMax) + "...";
    return s;
}

/**
 * Dotted path and values of the first leaf on which two config
 * documents disagree ("requests: 2000 vs 1500",
 * "spec.workloads[1]: \"hm\" vs \"usr\""); empty when the documents are
 * equal (the fingerprint then differs only through the campaign name —
 * possible only via journal surgery).
 */
std::string
firstMismatch(const Json &stored, const Json &current,
              const std::string &path)
{
    const auto label = [&](const std::string &leaf) {
        return path.empty() ? leaf : path + "." + leaf;
    };
    if (stored.isObject() && current.isObject()) {
        std::vector<std::string> keys;
        const auto collect = [&](const Json &doc) {
            for (std::size_t i = 0; i < doc.size(); ++i) {
                const std::string &name = doc.member(i).first;
                if (std::find(keys.begin(), keys.end(), name) ==
                    keys.end())
                    keys.push_back(name);
            }
        };
        collect(current);
        collect(stored);
        for (const auto &key : keys) {
            const Json *a = stored.find(key);
            const Json *b = current.find(key);
            if (a && b) {
                if (*a == *b)
                    continue;
                const std::string deeper =
                    firstMismatch(*a, *b, label(key));
                if (!deeper.empty())
                    return deeper;
            }
            return detail::concat(label(key), ": ", renderValue(a),
                                  " vs ", renderValue(b));
        }
        return "";
    }
    if (stored.isArray() && current.isArray()) {
        if (stored.size() != current.size()) {
            return detail::concat(path, ": ", stored.size(),
                                  " item(s) vs ", current.size());
        }
        for (std::size_t i = 0; i < stored.size(); ++i) {
            if (stored.at(i) == current.at(i))
                continue;
            return firstMismatch(stored.at(i), current.at(i),
                                 detail::concat(path, "[", i, "]"));
        }
        return "";
    }
    if (stored == current)
        return "";
    return detail::concat(path, ": ", renderValue(&stored), " vs ",
                          renderValue(&current));
}

/** Read a whole file (empty string when it does not exist). */
std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream content;
    content << in.rdbuf();
    if (in.bad())
        AERO_FATAL("failed reading checkpoint '", path, "'");
    return content.str();
}

/** Worker journal files inside @p dir, in sorted (merge) order. */
std::vector<std::string>
listJournalFiles(const std::string &dir)
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("journal.", 0) == 0 && name.size() > 14 &&
            name.compare(name.size() - 6, 6, ".jsonl") == 0)
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

/** Is @p pid a live process (or at least one we cannot signal)? */
bool
pidAlive(long long pid)
{
#ifndef _WIN32
    if (pid <= 0)
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    return errno == EPERM;
#else
    (void)pid;
    return false;
#endif
}

} // namespace

std::string
CampaignJournal::fingerprint(const std::string &campaign,
                             const Json &config)
{
    return hashHex(campaign + '\n' + config.dump());
}

const char *
CampaignJournal::schema() const
{
    return directoryMode() ? kSchemaDir : kSchema;
}

CampaignJournal::CampaignJournal(std::string path, std::string name,
                                 Json config, JournalOptions opts)
    : journalPath(std::move(path)), campaign(std::move(name)),
      fp(fingerprint(campaign, config)), configJson(std::move(config)),
      options(std::move(opts))
{
    for (const char c : options.workerId) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' &&
            c != '_' && c != '-') {
            AERO_FATAL("journal worker id '", options.workerId,
                       "' may only contain letters, digits, and '._-'");
        }
    }
    if (options.claims && options.workerId.empty()) {
        AERO_FATAL("journal claims need a directory-mode journal (set "
                   "JournalOptions::workerId)");
    }
    if (const char *env = std::getenv("AERO_JOURNAL_FSYNC")) {
        if (std::strcmp(env, "1") == 0)
            options.fsyncRecords = true;
        else if (std::strcmp(env, "0") == 0)
            options.fsyncRecords = false;
        else
            AERO_FATAL("AERO_JOURNAL_FSYNC must be 0 or 1, got '", env,
                       "'");
    }
    if (directoryMode()) {
        loadDirectory();
        return;
    }
    // A bad journal path must fail naming the path, not surface later
    // as a raw stream failure once the first record is flushed.
    const auto parent =
        std::filesystem::path(journalPath).parent_path();
    std::error_code ec;
    if (!parent.empty() && !std::filesystem::is_directory(parent, ec)) {
        AERO_FATAL("cannot create checkpoint '", journalPath,
                   "': parent directory '", parent.string(),
                   "' does not exist");
    }
    appendPath = journalPath;
    load();
}

CampaignJournal::~CampaignJournal()
{
    if (out)
        std::fclose(out);
#ifndef _WIN32
    if (claimsFd >= 0)
        ::close(claimsFd);
#endif
}

std::size_t
CampaignJournal::cachedCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

bool
CampaignJournal::has(const Json &key) const
{
    std::lock_guard<std::mutex> lock(mutex);
    return indexByKey.count(key.dump()) > 0;
}

Json
CampaignJournal::cached(const Json &key) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = indexByKey.find(key.dump());
    AERO_CHECK(it != indexByKey.end(), "no journaled record for key ",
               key.dump());
    return entries[it->second].second;
}

void
CampaignJournal::forEachCached(
    const std::function<void(const Json &, const Json &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[key, payload] : entries)
        fn(key, payload);
}

std::size_t
CampaignJournal::recordSyncCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return recordSyncs;
}

std::size_t
CampaignJournal::claimSyncCount() const
{
    std::lock_guard<std::mutex> lock(claimsMutex);
    return claimSyncs;
}

void
CampaignJournal::insert(Json key, Json payload)
{
    const std::string canonical = key.dump();
    const auto it = indexByKey.find(canonical);
    if (it != indexByKey.end()) {
        // Duplicate keys come from journal surgery or from a reaped
        // claim recomputed by another worker; last wins, matching what
        // a replaying reader would observe.
        entries[it->second].second = std::move(payload);
        return;
    }
    indexByKey.emplace(canonical, entries.size());
    entries.emplace_back(std::move(key), std::move(payload));
}

void
CampaignJournal::load()
{
    const std::string text = readFileOrEmpty(appendPath);
    if (text.empty()) {
        // No journal yet: start one.
        openForAppend(0, /*writeHeader=*/true);
        return;
    }
    std::uint64_t goodBytes = 0;
    bool sawHeader = false;
    loadText(appendPath, text, /*own=*/true, &goodBytes, &sawHeader);
    openForAppend(goodBytes, /*writeHeader=*/!sawHeader);
}

void
CampaignJournal::loadDirectory()
{
    namespace fs = std::filesystem;
    const fs::path dir(journalPath);
    std::error_code ec;
    if (!fs::exists(dir, ec)) {
        const auto parent = dir.parent_path();
        if (!parent.empty() && !fs::is_directory(parent, ec)) {
            AERO_FATAL("cannot create journal directory '", journalPath,
                       "': parent directory '", parent.string(),
                       "' does not exist");
        }
        // Forked workers race to create the directory; losing the race
        // to a sibling is success.
        fs::create_directory(dir, ec);
        if (!fs::is_directory(dir)) {
            AERO_FATAL("cannot create journal directory '", journalPath,
                       "': ", ec.message());
        }
    } else if (!fs::is_directory(dir, ec)) {
        AERO_FATAL("journal path '", journalPath,
                   "' exists and is not a directory (directory-mode "
                   "journal requested for worker '", options.workerId,
                   "')");
    }
    appendPath =
        (dir / ("journal." + options.workerId + ".jsonl")).string();

    std::uint64_t goodBytes = 0;
    bool sawHeader = false;
    for (const auto &file : listJournalFiles(journalPath)) {
        const std::string text = readFileOrEmpty(file);
        if (text.empty())
            continue;  // a sibling worker racing to write its header
        if (file == appendPath) {
            loadText(file, text, /*own=*/true, &goodBytes, &sawHeader);
        } else {
            std::uint64_t ignoredBytes = 0;
            bool ignoredHeader = false;
            loadText(file, text, /*own=*/false, &ignoredBytes,
                     &ignoredHeader);
        }
    }
    openForAppend(goodBytes, /*writeHeader=*/!sawHeader);
}

void
CampaignJournal::loadText(const std::string &filePath,
                          const std::string &text, bool own,
                          std::uint64_t *outGoodBytes, bool *outSawHeader)
{
    // Walk the journal line by line. goodBytes tracks the end of the
    // last intact record so a torn tail can be truncated away (own
    // file only) before new records are appended after it.
    std::uint64_t goodBytes = 0;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool terminated = end != std::string::npos;
        if (!terminated)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        const std::size_t next = terminated ? end + 1 : end;
        const bool isLast = next >= text.size();
        lineNo += 1;

        Json row;
        Json::ParseError err;
        if (line.empty() || !Json::parse(line, &row, &err)) {
            // Torn-write tolerance covers the final *record* only. A
            // header that does not parse means this is not a journal
            // at all — truncating here would destroy whatever file the
            // caller pointed us at by mistake. In a shared directory a
            // sibling's file can legitimately end mid-write (it may
            // still be appending), so a torn tail there is skipped
            // without complaint about ownership.
            if (isLast && (sawHeader || !own)) {
                AERO_WARN("checkpoint '", filePath, "': ",
                          own ? "dropping" : "ignoring",
                          " torn record on line ", lineNo);
                break;
            }
            AERO_FATAL("checkpoint '", filePath, "' is ",
                       sawHeader ? "corrupt" : "not a campaign journal",
                       ": line ", lineNo, ": ",
                       line.empty() ? "empty record" : err.toString());
        }

        if (!terminated) {
            // A final line missing its newline is a torn write even
            // when the JSON happens to be complete: appending after it
            // would fuse two records into one corrupt line. Truncate
            // it away — for a torn *header*, only after validating it
            // really is this campaign's journal (the non-journal-file
            // protection above must still hold).
            if (!sawHeader && own)
                loadHeader(filePath, row, lineNo);
            AERO_WARN("checkpoint '", filePath, "': ",
                      own ? "dropping" : "ignoring",
                      " unterminated ",
                      sawHeader || !own ? "record" : "header",
                      " on line ", lineNo);
            break;
        }

        if (!sawHeader) {
            loadHeader(filePath, row, lineNo);
            sawHeader = true;
        } else {
            loadRecord(filePath, row, lineNo);
        }
        goodBytes = next;
        start = next;
    }
    *outGoodBytes = goodBytes;
    *outSawHeader = sawHeader;
}

void
CampaignJournal::loadHeader(const std::string &filePath, const Json &row,
                            std::size_t lineNo)
{
    const Json *storedSchema = row.find("schema");
    if (!storedSchema || !storedSchema->isString() ||
        storedSchema->asString() != schema()) {
        AERO_FATAL("'", filePath, "' is not an ", schema(),
                   " journal (line ", lineNo, ")");
    }
    const Json *storedName = row.find("campaign");
    const Json *storedFp = row.find("fingerprint");
    const Json *storedConfig = row.find("config");
    const Json *storedWorker = row.find("worker");
    if (!storedName || !storedName->isString() || !storedFp ||
        !storedFp->isString() || !storedConfig ||
        !storedConfig->isObject() ||
        (directoryMode() &&
         (!storedWorker || !storedWorker->isString()))) {
        AERO_FATAL("checkpoint '", filePath,
                   "' has a malformed header (line ", lineNo, ")");
    }
    if (storedName->asString() != campaign) {
        AERO_FATAL("checkpoint '", filePath,
                   "' belongs to campaign '", storedName->asString(),
                   "', expected '", campaign,
                   "' — refusing to resume another campaign's journal");
    }
    if (storedFp->asString() != fp) {
        const std::string field =
            firstMismatch(*storedConfig, configJson, "");
        AERO_FATAL("checkpoint '", filePath, "' was written for a "
                   "different '", campaign,
                   "' campaign configuration (fingerprint ",
                   storedFp->asString(), ", expected ", fp, "): ",
                   field.empty()
                       ? "stored configuration matches — journal "
                         "corrupt?"
                       : field);
    }
}

void
CampaignJournal::loadRecord(const std::string &filePath, const Json &row,
                            std::size_t lineNo)
{
    const Json *recordFp = row.find("fingerprint");
    const Json *key = row.find("key");
    const Json *payload = row.find("payload");
    if (!recordFp || !recordFp->isString() || !key || !payload) {
        AERO_FATAL("checkpoint '", filePath,
                   "' has a malformed record on line ", lineNo);
    }
    if (recordFp->asString() != fp) {
        AERO_FATAL("checkpoint '", filePath, "': record on line ",
                   lineNo, " carries fingerprint ", recordFp->asString(),
                   ", expected ", fp,
                   " — refusing to splice records from a different "
                   "campaign");
    }
    insert(*key, *payload);
}

void
CampaignJournal::openForAppend(std::uint64_t keepBytes, bool writeHeader)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(appendPath, ec);
    if (!ec && size > keepBytes) {
        std::filesystem::resize_file(appendPath, keepBytes, ec);
        if (ec) {
            AERO_FATAL("cannot truncate torn tail of '", appendPath,
                       "': ", ec.message());
        }
    }
    out = std::fopen(appendPath.c_str(), "ab");
    if (!out)
        AERO_FATAL("cannot open checkpoint '", appendPath,
                   "' for appending");
#ifndef _WIN32
    if (directoryMode()) {
        // The worker file is this process's exclusive append target: a
        // second live process under the same worker id would interleave
        // torn lines. The advisory lock dies with the process, so a
        // SIGKILLed worker never wedges the next resume; a briefly
        // lingering orphan (its parent just died) gets a grace period.
        bool locked = false;
        for (int attempt = 0; attempt < 20; ++attempt) {
            if (::flock(::fileno(out), LOCK_EX | LOCK_NB) == 0) {
                locked = true;
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        if (!locked) {
            AERO_FATAL("worker '", options.workerId,
                       "' is already active on journal '", journalPath,
                       "' (another live process holds the lock on '",
                       appendPath, "')");
        }
    }
#endif
    if (writeHeader) {
        Json header = Json::object();
        header["schema"] = schema();
        header["campaign"] = campaign;
        header["fingerprint"] = fp;
        if (directoryMode())
            header["worker"] = options.workerId;
        header["config"] = configJson;
        append(header);
    }
}

void
CampaignJournal::append(const Json &row)
{
    const std::string line = row.dump() + '\n';
    if (std::fwrite(line.data(), 1, line.size(), out) != line.size() ||
        std::fflush(out) != 0) {
        AERO_FATAL("failed writing checkpoint '", appendPath, "'");
    }
    if (options.fsyncRecords) {
#ifndef _WIN32
        if (::fsync(::fileno(out)) != 0) {
            AERO_FATAL("fsync failed on checkpoint '", appendPath,
                       "': ", std::strerror(errno));
        }
#endif
        recordSyncs += 1;
    }
}

void
CampaignJournal::record(const Json &key, Json payload)
{
    Json row = Json::object();
    row["fingerprint"] = fp;
    row["key"] = key;
    row["payload"] = payload;
    std::lock_guard<std::mutex> lock(mutex);
    append(row);
    insert(key, std::move(payload));
}

void
CampaignJournal::ensureClaimsFile()
{
#ifndef _WIN32
    if (claimsFd >= 0)
        return;
    const std::string path =
        (std::filesystem::path(journalPath) / kClaimsFile).string();
    claimsFd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (claimsFd < 0) {
        AERO_FATAL("cannot open claims file '", path, "': ",
                   std::strerror(errno));
    }
#endif
}

bool
CampaignJournal::tryClaim(const Json &key)
{
    if (!options.claims)
        return true;
#ifdef _WIN32
    return true;
#else
    std::lock_guard<std::mutex> lock(claimsMutex);
    ensureClaimsFile();
    const std::string path =
        (std::filesystem::path(journalPath) / kClaimsFile).string();
    if (::flock(claimsFd, LOCK_EX) != 0) {
        AERO_FATAL("cannot lock claims file '", path, "': ",
                   std::strerror(errno));
    }
    // flock() is advisory and per-open-file-description: the
    // process-level lock above serializes our own threads, the flock
    // serializes sibling worker processes.
    struct Unlock
    {
        int fd;
        ~Unlock() { ::flock(fd, LOCK_UN); }
    } unlock{claimsFd};

    // Re-read the whole claims file under the lock: claims appended by
    // siblings since our last look must be visible before we decide.
    std::string text;
    {
        char buf[65536];
        off_t offset = 0;
        for (;;) {
            const ssize_t n =
                ::pread(claimsFd, buf, sizeof(buf), offset);
            if (n < 0) {
                AERO_FATAL("cannot read claims file '", path, "': ",
                           std::strerror(errno));
            }
            if (n == 0)
                break;
            text.append(buf, static_cast<std::size_t>(n));
            offset += n;
        }
    }

    struct Claim
    {
        std::string worker;
        long long pid = 0;
    };
    std::unordered_map<std::string, Claim> claims;
    bool sawHeader = false;
    std::size_t lineNo = 0;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool terminated = end != std::string::npos;
        if (!terminated)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        const std::size_t next = terminated ? end + 1 : end;
        const bool isLast = next >= text.size();
        lineNo += 1;

        Json row;
        Json::ParseError err;
        if (line.empty() || !Json::parse(line, &row, &err) ||
            !terminated) {
            // A torn final line is a crash mid-claim: that claim never
            // took effect (its fsync did not complete), ignore it.
            if (isLast)
                break;
            AERO_FATAL("claims file '", path, "' is corrupt: line ",
                       lineNo, ": ",
                       line.empty() ? "empty record" : err.toString());
        }
        if (!sawHeader) {
            const Json *storedSchema = row.find("schema");
            const Json *storedFp = row.find("fingerprint");
            if (!storedSchema || !storedSchema->isString() ||
                storedSchema->asString() != kSchemaClaims ||
                !storedFp || !storedFp->isString()) {
                AERO_FATAL("'", path, "' is not an ", kSchemaClaims,
                           " claims file (line ", lineNo, ")");
            }
            if (storedFp->asString() != fp) {
                AERO_FATAL("claims file '", path,
                           "' belongs to a different campaign "
                           "configuration (fingerprint ",
                           storedFp->asString(), ", expected ", fp,
                           ")");
            }
            sawHeader = true;
        } else {
            const Json *recordFp = row.find("fingerprint");
            const Json *claimKey = row.find("key");
            const Json *worker = row.find("worker");
            const Json *pid = row.find("pid");
            if (!recordFp || !recordFp->isString() || !claimKey ||
                !worker || !worker->isString() || !pid ||
                !pid->isNumeric()) {
                AERO_FATAL("claims file '", path,
                           "' has a malformed claim on line ", lineNo);
            }
            if (recordFp->asString() != fp) {
                AERO_FATAL("claims file '", path, "': claim on line ",
                           lineNo, " carries fingerprint ",
                           recordFp->asString(), ", expected ", fp);
            }
            claims[claimKey->dump()] = Claim{
                worker->asString(),
                static_cast<long long>(pid->asInt64())};
        }
        start = next;
    }

    const auto it = claims.find(key.dump());
    if (it != claims.end() && it->second.worker != options.workerId &&
        pidAlive(it->second.pid)) {
        return false;  // a live sibling owns this task
    }
    // Ours: either unclaimed, already ours (a resumed worker re-claims
    // under its current pid), or stale — the claiming pid is dead and
    // the task was never journaled, so reap it and take over.
    std::string lines;
    if (!sawHeader) {
        Json header = Json::object();
        header["schema"] = kSchemaClaims;
        header["campaign"] = campaign;
        header["fingerprint"] = fp;
        lines += header.dump() + '\n';
    }
    Json row = Json::object();
    row["fingerprint"] = fp;
    row["key"] = key;
    row["worker"] = options.workerId;
    row["pid"] = static_cast<std::int64_t>(::getpid());
    lines += row.dump() + '\n';
    const off_t fileEnd = ::lseek(claimsFd, 0, SEEK_END);
    if (fileEnd < 0 ||
        ::write(claimsFd, lines.data(), lines.size()) !=
            static_cast<ssize_t>(lines.size()) ||
        ::fsync(claimsFd) != 0) {
        AERO_FATAL("failed writing claims file '", path, "': ",
                   std::strerror(errno));
    }
    claimSyncs += 1;
    return true;
#endif
}

CompactStats
compactCampaignJournal(const std::string &path)
{
    namespace fs = std::filesystem;
    CompactStats stats;
    std::error_code ec;
    const bool dirMode = fs::is_directory(path, ec);
    std::vector<std::string> files;
    if (dirMode) {
        files = listJournalFiles(path);
        if (files.empty()) {
            AERO_FATAL("journal directory '", path,
                       "' contains no journal.*.jsonl files to compact");
        }
    } else {
        if (!fs::exists(path, ec))
            AERO_FATAL("no campaign journal at '", path, "'");
        files.push_back(path);
    }
    const char *schema = dirMode ? kSchemaDir : kSchema;

    std::string campaign, fp;
    Json config;
    std::deque<std::pair<Json, Json>> merged;
    std::unordered_map<std::string, std::size_t> indexByKey;
    for (const auto &file : files) {
        const std::string text = readFileOrEmpty(file);
        if (text.empty())
            continue;
        bool sawHeader = false;
        std::size_t lineNo = 0;
        std::size_t start = 0;
        while (start < text.size()) {
            std::size_t end = text.find('\n', start);
            const bool terminated = end != std::string::npos;
            if (!terminated)
                end = text.size();
            const std::string line = text.substr(start, end - start);
            const std::size_t next = terminated ? end + 1 : end;
            const bool isLast = next >= text.size();
            lineNo += 1;

            Json row;
            Json::ParseError err;
            if (line.empty() || !Json::parse(line, &row, &err) ||
                !terminated) {
                if (isLast && sawHeader) {
                    AERO_WARN("compact: dropping torn record on line ",
                              lineNo, " of '", file, "'");
                    break;
                }
                AERO_FATAL("cannot compact '", path, "': '", file,
                           "' is ",
                           sawHeader ? "corrupt"
                                     : "not a campaign journal",
                           ": line ", lineNo, ": ",
                           line.empty() ? "empty record"
                                        : err.toString());
            }
            if (!sawHeader) {
                const Json *storedSchema = row.find("schema");
                const Json *storedName = row.find("campaign");
                const Json *storedFp = row.find("fingerprint");
                const Json *storedConfig = row.find("config");
                if (!storedSchema || !storedSchema->isString() ||
                    storedSchema->asString() != schema || !storedName ||
                    !storedName->isString() || !storedFp ||
                    !storedFp->isString() || !storedConfig ||
                    !storedConfig->isObject()) {
                    AERO_FATAL("cannot compact '", path, "': '", file,
                               "' is not an ", schema,
                               " journal (line ", lineNo, ")");
                }
                if (fp.empty()) {
                    campaign = storedName->asString();
                    fp = storedFp->asString();
                    config = *storedConfig;
                } else if (storedFp->asString() != fp) {
                    AERO_FATAL("cannot compact '", path, "': '", file,
                               "' belongs to a different campaign "
                               "configuration (fingerprint ",
                               storedFp->asString(), ", expected ", fp,
                               ")");
                }
                sawHeader = true;
            } else {
                const Json *recordFp = row.find("fingerprint");
                const Json *key = row.find("key");
                const Json *payload = row.find("payload");
                if (!recordFp || !recordFp->isString() || !key ||
                    !payload) {
                    AERO_FATAL("cannot compact '", path, "': '", file,
                               "' has a malformed record on line ",
                               lineNo);
                }
                if (recordFp->asString() != fp) {
                    AERO_FATAL("cannot compact '", path, "': record on "
                               "line ", lineNo, " of '", file,
                               "' carries fingerprint ",
                               recordFp->asString(), ", expected ", fp);
                }
                stats.recordsIn += 1;
                const std::string canonical = key->dump();
                const auto it = indexByKey.find(canonical);
                if (it != indexByKey.end()) {
                    merged[it->second].second = *payload;
                } else {
                    indexByKey.emplace(canonical, merged.size());
                    merged.emplace_back(*key, *payload);
                }
            }
            start = next;
        }
        if (sawHeader)
            stats.files += 1;
    }
    if (fp.empty())
        AERO_FATAL("journal '", path, "' has no header to compact");
    stats.recordsOut = merged.size();

    const std::string outPath =
        dirMode ? (fs::path(path) / kCompactedFile).string() : path;
    const std::string tmpPath =
        dirMode ? (fs::path(path) / ".compact.tmp").string()
                : path + ".compact.tmp";
    std::FILE *outFile = std::fopen(tmpPath.c_str(), "wb");
    if (!outFile)
        AERO_FATAL("cannot write compacted journal '", tmpPath, "'");
    Json header = Json::object();
    header["schema"] = schema;
    header["campaign"] = campaign;
    header["fingerprint"] = fp;
    if (dirMode)
        header["worker"] = "compacted";
    header["config"] = config;
    std::string body = header.dump() + '\n';
    for (const auto &[key, payload] : merged) {
        Json row = Json::object();
        row["fingerprint"] = fp;
        row["key"] = key;
        row["payload"] = payload;
        body += row.dump() + '\n';
    }
    const bool wrote =
        std::fwrite(body.data(), 1, body.size(), outFile) ==
            body.size() &&
        std::fflush(outFile) == 0;
#ifndef _WIN32
    const bool synced = wrote && ::fsync(::fileno(outFile)) == 0;
#else
    const bool synced = wrote;
#endif
    std::fclose(outFile);
    if (!synced)
        AERO_FATAL("failed writing compacted journal '", tmpPath, "'");
    fs::rename(tmpPath, outPath, ec);
    if (ec) {
        AERO_FATAL("cannot rename compacted journal into place ('",
                   tmpPath, "' -> '", outPath, "'): ", ec.message());
    }
    if (dirMode) {
        // The compacted file now supersedes every input; removal is
        // safe at any point (a crash here only leaves files whose
        // records the merge reproduces by dedup on the next open).
        for (const auto &file : files) {
            if (file != outPath)
                fs::remove(file, ec);
        }
        fs::remove(fs::path(path) / kClaimsFile, ec);
    }
    return stats;
}

CampaignStatus
campaignStatus(const std::string &path)
{
    namespace fs = std::filesystem;
    CampaignStatus status;
    status.path = path;
    std::error_code ec;
    const bool dirMode = fs::is_directory(path, ec);
    std::vector<std::string> files;
    if (dirMode) {
        files = listJournalFiles(path);
        if (files.empty()) {
            AERO_FATAL("journal directory '", path,
                       "' contains no journal.*.jsonl files");
        }
    } else {
        if (!fs::exists(path, ec))
            AERO_FATAL("no campaign journal at '", path, "'");
        files.push_back(path);
    }
    status.schema = dirMode ? kSchemaDir : kSchema;

    std::unordered_set<std::string> keys;
    for (const auto &file : files) {
        CampaignWorkerStatus ws;
        ws.file = fs::path(file).filename().string();
        const std::string text = readFileOrEmpty(file);
        bool sawHeader = false;
        std::size_t lineNo = 0;
        std::size_t start = 0;
        while (start < text.size()) {
            std::size_t end = text.find('\n', start);
            const bool terminated = end != std::string::npos;
            if (!terminated)
                end = text.size();
            const std::string line = text.substr(start, end - start);
            const std::size_t next = terminated ? end + 1 : end;
            const bool isLast = next >= text.size();
            lineNo += 1;

            Json row;
            Json::ParseError err;
            if (line.empty() || !Json::parse(line, &row, &err) ||
                !terminated) {
                // A torn final line is a crash (or a write in flight
                // on a live campaign): that record never took effect.
                if (isLast)
                    break;
                AERO_FATAL("journal '", file, "' is corrupt: line ",
                           lineNo, ": ",
                           line.empty() ? "empty record"
                                        : err.toString());
            }
            if (!sawHeader) {
                const Json *storedSchema = row.find("schema");
                const Json *storedName = row.find("campaign");
                const Json *storedFp = row.find("fingerprint");
                if (!storedSchema || !storedSchema->isString() ||
                    storedSchema->asString() != status.schema ||
                    !storedName || !storedName->isString() ||
                    !storedFp || !storedFp->isString()) {
                    AERO_FATAL("'", file, "' is not an ", status.schema,
                               " journal (line ", lineNo, ")");
                }
                if (status.fingerprint.empty()) {
                    status.campaign = storedName->asString();
                    status.fingerprint = storedFp->asString();
                } else if (storedFp->asString() != status.fingerprint) {
                    AERO_FATAL("journal '", file,
                               "' belongs to a different campaign "
                               "configuration (fingerprint ",
                               storedFp->asString(), ", expected ",
                               status.fingerprint, ")");
                }
                if (const Json *worker = row.find("worker");
                    worker && worker->isString())
                    ws.worker = worker->asString();
                sawHeader = true;
            } else {
                const Json *key = row.find("key");
                if (!key) {
                    AERO_FATAL("journal '", file,
                               "' has a malformed record on line ",
                               lineNo);
                }
                ws.records += 1;
                keys.insert(key->dump());
            }
            start = next;
        }
        if (sawHeader)
            status.workers.push_back(std::move(ws));
    }
    if (status.fingerprint.empty())
        AERO_FATAL("journal '", path, "' has no header");
    for (const auto &ws : status.workers)
        status.records += ws.records;
    status.distinctKeys = keys.size();

    if (!dirMode)
        return status;
    const std::string claimsText = readFileOrEmpty(
        (fs::path(path) / kClaimsFile).string());
    // Last claim wins per key (a stale claim of a dead pid is re-taken
    // by appending), but report in first-claim order for stability.
    std::unordered_map<std::string, std::size_t> claimIndex;
    bool sawHeader = false;
    std::size_t lineNo = 0;
    std::size_t start = 0;
    while (start < claimsText.size()) {
        std::size_t end = claimsText.find('\n', start);
        const bool terminated = end != std::string::npos;
        if (!terminated)
            end = claimsText.size();
        const std::string line = claimsText.substr(start, end - start);
        const std::size_t next = terminated ? end + 1 : end;
        const bool isLast = next >= claimsText.size();
        lineNo += 1;

        Json row;
        Json::ParseError err;
        if (line.empty() || !Json::parse(line, &row, &err) ||
            !terminated) {
            if (isLast)
                break;  // torn final claim: never took effect
            AERO_FATAL("claims file in '", path, "' is corrupt: line ",
                       lineNo, ": ",
                       line.empty() ? "empty record" : err.toString());
        }
        if (!sawHeader) {
            const Json *storedSchema = row.find("schema");
            const Json *storedFp = row.find("fingerprint");
            if (!storedSchema || !storedSchema->isString() ||
                storedSchema->asString() != kSchemaClaims || !storedFp ||
                !storedFp->isString()) {
                AERO_FATAL("claims file in '", path, "' is not an ",
                           kSchemaClaims, " claims file (line ", lineNo,
                           ")");
            }
            if (storedFp->asString() != status.fingerprint) {
                AERO_FATAL("claims file in '", path,
                           "' belongs to a different campaign "
                           "configuration (fingerprint ",
                           storedFp->asString(), ", expected ",
                           status.fingerprint, ")");
            }
            sawHeader = true;
        } else {
            const Json *key = row.find("key");
            const Json *worker = row.find("worker");
            const Json *pid = row.find("pid");
            if (!key || !worker || !worker->isString() || !pid ||
                !pid->isNumeric()) {
                AERO_FATAL("claims file in '", path,
                           "' has a malformed claim on line ", lineNo);
            }
            CampaignClaimStatus claim;
            claim.key = *key;
            claim.worker = worker->asString();
            claim.pid = static_cast<long long>(pid->asInt64());
            claim.live = pidAlive(claim.pid);
            claim.completed = keys.count(key->dump()) > 0;
            const std::string canonical = key->dump();
            const auto it = claimIndex.find(canonical);
            if (it != claimIndex.end()) {
                status.claims[it->second] = std::move(claim);
            } else {
                claimIndex.emplace(canonical, status.claims.size());
                status.claims.push_back(std::move(claim));
            }
        }
        start = next;
    }
    return status;
}

std::string
formatCampaignStatus(const CampaignStatus &status)
{
    std::string out = detail::concat(
        "campaign '", status.campaign, "' (", status.schema, ") at ",
        status.path, "\n  fingerprint ", status.fingerprint, "\n  ",
        status.distinctKeys, " distinct task(s) journaled (",
        status.records, " record(s) across ", status.workers.size(),
        " file(s))\n");
    for (const auto &ws : status.workers) {
        out += detail::concat(
            "    ", ws.file,
            ws.worker.empty() ? std::string()
                              : detail::concat(" (worker ", ws.worker,
                                               ")"),
            ": ", ws.records, " record(s)\n");
    }
    if (status.claims.empty())
        return out;
    std::size_t pending = 0;
    for (const auto &claim : status.claims)
        pending += claim.completed ? 0 : 1;
    out += detail::concat("  ", status.claims.size(), " claim(s), ",
                          pending, " pending\n");
    for (const auto &claim : status.claims) {
        out += detail::concat(
            "    ", claim.key.dump(), " -> worker ", claim.worker,
            " (pid ", claim.pid, ", ", claim.live ? "live" : "dead",
            "), ", claim.completed ? "completed" : "pending", "\n");
    }
    return out;
}

int
forkCampaignWorkers(int n)
{
    if (n <= 1)
        return -1;
#ifdef _WIN32
    AERO_FATAL("multi-process campaigns need POSIX fork(); run "
               "single-process or shard across machines instead");
#else
    std::vector<pid_t> children;
    children.reserve(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            AERO_FATAL("fork() failed for campaign worker ", k, ": ",
                       std::strerror(errno));
        }
        if (pid == 0) {
#ifdef __linux__
            // Die with the driver: a SIGKILLed campaign must not leak
            // orphan workers that fight the next resume for journal
            // file locks.
            ::prctl(PR_SET_PDEATHSIG, SIGKILL);
            if (::getppid() == 1)
                std::_Exit(127);  // driver died before prctl took hold
#endif
            return k;
        }
        children.push_back(pid);
    }
    int failures = 0;
    for (const pid_t pid : children) {
        int status = 0;
        if (::waitpid(pid, &status, 0) < 0 ||
            !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            failures += 1;
        }
    }
    if (failures > 0) {
        AERO_WARN(failures, " of ", n, " campaign worker(s) did not "
                  "exit cleanly; completing their remaining tasks "
                  "in-process from the journal");
    }
    return -1;
#endif
}

} // namespace aero
