#include "exp/campaign.hh"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace aero
{

namespace
{

constexpr const char *kSchema = "aero-campaign/1";

/** FNV-1a 64-bit over @p text, rendered as 16 hex digits. */
std::string
hashHex(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Render a config value for a mismatch message, clipped for sanity. */
std::string
renderValue(const Json *v)
{
    if (!v)
        return "(absent)";
    std::string s = v->dump();
    constexpr std::size_t kMax = 96;
    if (s.size() > kMax)
        s = s.substr(0, kMax) + "...";
    return s;
}

/**
 * Dotted path and values of the first leaf on which two config
 * documents disagree ("requests: 2000 vs 1500",
 * "spec.workloads[1]: \"hm\" vs \"usr\""); empty when the documents are
 * equal (the fingerprint then differs only through the campaign name —
 * possible only via journal surgery).
 */
std::string
firstMismatch(const Json &stored, const Json &current,
              const std::string &path)
{
    const auto label = [&](const std::string &leaf) {
        return path.empty() ? leaf : path + "." + leaf;
    };
    if (stored.isObject() && current.isObject()) {
        std::vector<std::string> keys;
        const auto collect = [&](const Json &doc) {
            for (std::size_t i = 0; i < doc.size(); ++i) {
                const std::string &name = doc.member(i).first;
                if (std::find(keys.begin(), keys.end(), name) ==
                    keys.end())
                    keys.push_back(name);
            }
        };
        collect(current);
        collect(stored);
        for (const auto &key : keys) {
            const Json *a = stored.find(key);
            const Json *b = current.find(key);
            if (a && b) {
                if (*a == *b)
                    continue;
                const std::string deeper =
                    firstMismatch(*a, *b, label(key));
                if (!deeper.empty())
                    return deeper;
            }
            return detail::concat(label(key), ": ", renderValue(a),
                                  " vs ", renderValue(b));
        }
        return "";
    }
    if (stored.isArray() && current.isArray()) {
        if (stored.size() != current.size()) {
            return detail::concat(path, ": ", stored.size(),
                                  " item(s) vs ", current.size());
        }
        for (std::size_t i = 0; i < stored.size(); ++i) {
            if (stored.at(i) == current.at(i))
                continue;
            return firstMismatch(stored.at(i), current.at(i),
                                 detail::concat(path, "[", i, "]"));
        }
        return "";
    }
    if (stored == current)
        return "";
    return detail::concat(path, ": ", renderValue(&stored), " vs ",
                          renderValue(&current));
}

} // namespace

std::string
CampaignJournal::fingerprint(const std::string &campaign,
                             const Json &config)
{
    return hashHex(campaign + '\n' + config.dump());
}

CampaignJournal::CampaignJournal(std::string path, std::string name,
                                 Json config)
    : journalPath(std::move(path)), campaign(std::move(name)),
      fp(fingerprint(campaign, config)), configJson(std::move(config))
{
    // A bad journal path must fail naming the path, not surface later
    // as a raw stream failure once the first record is flushed.
    const auto parent =
        std::filesystem::path(journalPath).parent_path();
    std::error_code ec;
    if (!parent.empty() && !std::filesystem::is_directory(parent, ec)) {
        AERO_FATAL("cannot create checkpoint '", journalPath,
                   "': parent directory '", parent.string(),
                   "' does not exist");
    }
    load();
}

CampaignJournal::~CampaignJournal()
{
    if (out)
        std::fclose(out);
}

std::size_t
CampaignJournal::cachedCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

bool
CampaignJournal::has(const Json &key) const
{
    std::lock_guard<std::mutex> lock(mutex);
    return indexByKey.count(key.dump()) > 0;
}

Json
CampaignJournal::cached(const Json &key) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = indexByKey.find(key.dump());
    AERO_CHECK(it != indexByKey.end(), "no journaled record for key ",
               key.dump());
    return entries[it->second].second;
}

void
CampaignJournal::forEachCached(
    const std::function<void(const Json &, const Json &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[key, payload] : entries)
        fn(key, payload);
}

void
CampaignJournal::insert(Json key, Json payload)
{
    const std::string canonical = key.dump();
    const auto it = indexByKey.find(canonical);
    if (it != indexByKey.end()) {
        // Duplicate keys can only come from journal surgery; last wins,
        // matching what a replaying reader would observe.
        entries[it->second].second = std::move(payload);
        return;
    }
    indexByKey.emplace(canonical, entries.size());
    entries.emplace_back(std::move(key), std::move(payload));
}

void
CampaignJournal::load()
{
    std::string text;
    {
        std::ifstream in(journalPath, std::ios::binary);
        if (!in) {
            // No journal yet: start one.
            openForAppend(0, /*writeHeader=*/true);
            return;
        }
        std::ostringstream content;
        content << in.rdbuf();
        if (in.bad())
            AERO_FATAL("failed reading checkpoint '", journalPath, "'");
        text = content.str();
    }

    // Walk the journal line by line. goodBytes tracks the end of the
    // last intact record so a torn tail can be truncated away before
    // new records are appended after it.
    std::uint64_t goodBytes = 0;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool terminated = end != std::string::npos;
        if (!terminated)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        const std::size_t next = terminated ? end + 1 : end;
        const bool isLast = next >= text.size();
        lineNo += 1;

        Json row;
        Json::ParseError err;
        if (line.empty() || !Json::parse(line, &row, &err)) {
            // Torn-write tolerance covers the final *record* only. A
            // header that does not parse means this is not a journal
            // at all — truncating here would destroy whatever file the
            // caller pointed us at by mistake.
            if (isLast && sawHeader) {
                AERO_WARN("checkpoint '", journalPath,
                          "': dropping torn record on line ", lineNo);
                break;
            }
            AERO_FATAL("checkpoint '", journalPath, "' is ",
                       sawHeader ? "corrupt" : "not a campaign journal",
                       ": line ", lineNo, ": ",
                       line.empty() ? "empty record" : err.toString());
        }

        if (!terminated) {
            // A final line missing its newline is a torn write even
            // when the JSON happens to be complete: appending after it
            // would fuse two records into one corrupt line. Truncate
            // it away — for a torn *header*, only after validating it
            // really is this campaign's journal (the non-journal-file
            // protection above must still hold).
            if (!sawHeader)
                loadHeader(row, lineNo);
            AERO_WARN("checkpoint '", journalPath,
                      "': dropping unterminated ",
                      sawHeader ? "record" : "header", " on line ",
                      lineNo);
            break;
        }

        if (!sawHeader) {
            loadHeader(row, lineNo);
            sawHeader = true;
        } else {
            loadRecord(row, lineNo);
        }
        goodBytes = next;
        start = next;
    }

    openForAppend(goodBytes, /*writeHeader=*/!sawHeader);
}

void
CampaignJournal::loadHeader(const Json &row, std::size_t lineNo)
{
    const Json *schema = row.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != kSchema) {
        AERO_FATAL("'", journalPath, "' is not an ", kSchema,
                   " journal (line ", lineNo, ")");
    }
    const Json *storedName = row.find("campaign");
    const Json *storedFp = row.find("fingerprint");
    const Json *storedConfig = row.find("config");
    if (!storedName || !storedName->isString() || !storedFp ||
        !storedFp->isString() || !storedConfig ||
        !storedConfig->isObject()) {
        AERO_FATAL("checkpoint '", journalPath,
                   "' has a malformed header (line ", lineNo, ")");
    }
    if (storedName->asString() != campaign) {
        AERO_FATAL("checkpoint '", journalPath,
                   "' belongs to campaign '", storedName->asString(),
                   "', expected '", campaign,
                   "' — refusing to resume another campaign's journal");
    }
    if (storedFp->asString() != fp) {
        const std::string field =
            firstMismatch(*storedConfig, configJson, "");
        AERO_FATAL("checkpoint '", journalPath, "' was written for a "
                   "different '", campaign,
                   "' campaign configuration (fingerprint ",
                   storedFp->asString(), ", expected ", fp, "): ",
                   field.empty()
                       ? "stored configuration matches — journal "
                         "corrupt?"
                       : field);
    }
}

void
CampaignJournal::loadRecord(const Json &row, std::size_t lineNo)
{
    const Json *recordFp = row.find("fingerprint");
    const Json *key = row.find("key");
    const Json *payload = row.find("payload");
    if (!recordFp || !recordFp->isString() || !key || !payload) {
        AERO_FATAL("checkpoint '", journalPath,
                   "' has a malformed record on line ", lineNo);
    }
    if (recordFp->asString() != fp) {
        AERO_FATAL("checkpoint '", journalPath, "': record on line ",
                   lineNo, " carries fingerprint ", recordFp->asString(),
                   ", expected ", fp,
                   " — refusing to splice records from a different "
                   "campaign");
    }
    insert(*key, *payload);
}

void
CampaignJournal::openForAppend(std::uint64_t keepBytes, bool writeHeader)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(journalPath, ec);
    if (!ec && size > keepBytes) {
        std::filesystem::resize_file(journalPath, keepBytes, ec);
        if (ec) {
            AERO_FATAL("cannot truncate torn tail of '", journalPath,
                       "': ", ec.message());
        }
    }
    out = std::fopen(journalPath.c_str(), "ab");
    if (!out)
        AERO_FATAL("cannot open checkpoint '", journalPath,
                   "' for appending");
    if (writeHeader) {
        Json header = Json::object();
        header["schema"] = kSchema;
        header["campaign"] = campaign;
        header["fingerprint"] = fp;
        header["config"] = configJson;
        append(header);
    }
}

void
CampaignJournal::append(const Json &row)
{
    const std::string line = row.dump() + '\n';
    if (std::fwrite(line.data(), 1, line.size(), out) != line.size() ||
        std::fflush(out) != 0) {
        AERO_FATAL("failed writing checkpoint '", journalPath, "'");
    }
}

void
CampaignJournal::record(const Json &key, Json payload)
{
    Json row = Json::object();
    row["fingerprint"] = fp;
    row["key"] = key;
    row["payload"] = payload;
    std::lock_guard<std::mutex> lock(mutex);
    append(row);
    insert(key, std::move(payload));
}

} // namespace aero
