#include "exp/report.hh"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "erase/scheme_registry.hh"

namespace aero
{

Json
toJson(const SimResult &result)
{
    const SimPoint &pt = result.point;
    Json row = Json::object();
    row["workload"] = pt.workload;
    row["scheme"] = schemeKindName(pt.scheme);
    row["pec"] = pt.pec;
    row["suspension"] = suspensionModeName(pt.suspension);
    row["misprediction_rate"] = pt.mispredictionRate;
    row["rber_requirement"] = pt.rberRequirement;
    // The reclamation axes (PR 8) are emitted only off their defaults so
    // every pre-existing golden artifact stays byte-identical.
    if (pt.gcPolicy != "greedy")
        row["gc_policy"] = pt.gcPolicy;
    if (pt.wearLevel != "none")
        row["wear_level"] = pt.wearLevel;
    // Same contract for the SLO axis (PR 10).
    if (pt.sloPolicy != "none")
        row["slo_policy"] = pt.sloPolicy;
    row["requests"] = pt.requests;
    row["seed"] = pt.seed;
    row["avg_read_us"] = result.avgReadUs;
    row["avg_write_us"] = result.avgWriteUs;
    row["iops"] = result.iops;
    row["p999_us"] = result.p999Us;
    row["p9999_us"] = result.p9999Us;
    row["p999999_us"] = result.p999999Us;
    row["erases"] = result.erases;
    row["avg_erase_ms"] = result.avgEraseMs;
    row["suspensions"] = result.suspensions;
    row["write_amplification"] = result.writeAmplification;
    return row;
}

SimResult
simResultFromJson(const Json &row)
{
    const auto need = [&](const char *key) -> const Json & {
        const Json *v = row.find(key);
        if (!v)
            AERO_FATAL("result row is missing '", key, "'");
        return *v;
    };
    SimResult r;
    r.point.workload = need("workload").asString();
    r.point.scheme = schemeKindFromName(need("scheme").asString());
    r.point.pec = need("pec").asDouble();
    r.point.suspension =
        suspensionModeFromName(need("suspension").asString());
    r.point.mispredictionRate = need("misprediction_rate").asDouble();
    r.point.rberRequirement =
        static_cast<int>(need("rber_requirement").asInt64());
    if (const Json *gc = row.find("gc_policy"))
        r.point.gcPolicy = gc->asString();
    if (const Json *wl = row.find("wear_level"))
        r.point.wearLevel = wl->asString();
    if (const Json *slo = row.find("slo_policy"))
        r.point.sloPolicy = slo->asString();
    r.point.requests = need("requests").asUint64();
    r.point.seed = need("seed").asUint64();
    r.avgReadUs = need("avg_read_us").asDouble();
    r.avgWriteUs = need("avg_write_us").asDouble();
    r.iops = need("iops").asDouble();
    r.p999Us = need("p999_us").asDouble();
    r.p9999Us = need("p9999_us").asDouble();
    r.p999999Us = need("p999999_us").asDouble();
    r.erases = need("erases").asUint64();
    r.avgEraseMs = need("avg_erase_ms").asDouble();
    r.suspensions = need("suspensions").asUint64();
    r.writeAmplification = need("write_amplification").asDouble();
    return r;
}

Json
toJson(const SweepSpec &spec)
{
    Json out = Json::object();
    Json workloads = Json::array();
    for (const auto &w : spec.workloads)
        workloads.push(w);
    out["workloads"] = std::move(workloads);
    Json schemes = Json::array();
    for (const auto k : spec.schemes)
        schemes.push(schemeKindName(k));
    out["schemes"] = std::move(schemes);
    Json pecs = Json::array();
    for (const double p : spec.pecs)
        pecs.push(p);
    out["pecs"] = std::move(pecs);
    Json suspensions = Json::array();
    for (const auto m : spec.suspensions)
        suspensions.push(suspensionModeName(m));
    out["suspensions"] = std::move(suspensions);
    Json misrates = Json::array();
    for (const double r : spec.mispredictionRates)
        misrates.push(r);
    out["misprediction_rates"] = std::move(misrates);
    Json rbers = Json::array();
    for (const int b : spec.rberRequirements)
        rbers.push(b);
    out["rber_requirements"] = std::move(rbers);
    // Reclamation axes only when swept off their defaults (see
    // toJson(SimResult)): keeps pre-PR-8 spec blocks — and the journal
    // fingerprints derived from them — byte-identical.
    if (spec.gcPolicies != std::vector<std::string>{"greedy"}) {
        Json gcs = Json::array();
        for (const auto &g : spec.gcPolicies)
            gcs.push(g);
        out["gc_policies"] = std::move(gcs);
    }
    if (spec.wearLevels != std::vector<std::string>{"none"}) {
        Json wls = Json::array();
        for (const auto &w : spec.wearLevels)
            wls.push(w);
        out["wear_levels"] = std::move(wls);
    }
    if (spec.sloPolicies != std::vector<std::string>{"none"}) {
        Json slos = Json::array();
        for (const auto &p : spec.sloPolicies)
            slos.push(p);
        out["slo_policies"] = std::move(slos);
        out["slo_spec"] = renderTenantSloSpec(spec.base.slo);
    }
    Json seeds = Json::array();
    for (const auto s : spec.seeds)
        seeds.push(s);
    out["seeds"] = std::move(seeds);
    out["requests"] = spec.requests;
    out["drive_capacity_gib"] =
        static_cast<double>(spec.base.capacityBytes()) /
        (1024.0 * 1024.0 * 1024.0);
    return out;
}

Json
sweepReport(const SweepSpec &spec, const std::vector<SimResult> &results)
{
    Json doc = Json::object();
    doc["schema"] = "aero-sweep/1";
    doc["spec"] = toJson(spec);
    Json rows = Json::array();
    for (const auto &r : results)
        rows.push(toJson(r));
    doc["results"] = std::move(rows);
    return doc;
}

std::string
toCsv(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    // Round-trippable doubles, like the JSON serializer's shortest form.
    os.precision(std::numeric_limits<double>::max_digits10);
    // The reclamation columns appear only when some row swept them off
    // their defaults, mirroring the conditional JSON emission.
    bool reclamation = false;
    bool slo = false;
    for (const auto &r : results) {
        if (r.point.gcPolicy != "greedy" || r.point.wearLevel != "none")
            reclamation = true;
        if (r.point.sloPolicy != "none")
            slo = true;
    }
    os << "workload,scheme,pec,suspension,misprediction_rate,"
          "rber_requirement,"
       << (reclamation ? "gc_policy,wear_level," : "")
       << (slo ? "slo_policy," : "")
       << "requests,seed,avg_read_us,avg_write_us,iops,"
          "p999_us,p9999_us,p999999_us,erases,avg_erase_ms,suspensions,"
          "write_amplification\n";
    for (const auto &r : results) {
        const SimPoint &pt = r.point;
        os << pt.workload << ',' << schemeKindName(pt.scheme) << ','
           << pt.pec << ',' << suspensionModeName(pt.suspension) << ','
           << pt.mispredictionRate << ',' << pt.rberRequirement << ',';
        if (reclamation)
            os << pt.gcPolicy << ',' << pt.wearLevel << ',';
        if (slo)
            os << pt.sloPolicy << ',';
        os << pt.requests << ',' << pt.seed << ',' << r.avgReadUs << ','
           << r.avgWriteUs << ',' << r.iops << ',' << r.p999Us << ','
           << r.p9999Us << ',' << r.p999999Us << ',' << r.erases << ','
           << r.avgEraseMs << ',' << r.suspensions << ','
           << r.writeAmplification << '\n';
    }
    return os.str();
}

void
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        AERO_FATAL("cannot open '", path, "' for writing");
    out << content;
    out.flush();
    if (!out)
        AERO_FATAL("failed writing '", path, "'");
}

void
writeJsonFile(const std::string &path, const Json &doc)
{
    writeTextFile(path, doc.dump(2) + "\n");
    AERO_INFORM("wrote ", path);
}

std::string
readTextFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        AERO_FATAL("cannot open '", path, "' for reading");
    std::ostringstream content;
    content << in.rdbuf();
    if (in.bad())
        AERO_FATAL("failed reading '", path, "'");
    return content.str();
}

Json
readJsonFile(const std::string &path)
{
    return Json::parseOrDie(readTextFile(path), path);
}

} // namespace aero
