#include "exp/report.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace aero
{

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        out += "null";  // JSON has no inf/nan
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", d);
    out += buf;
    // "%g" may print a bare integer; keep it a double for typed readers.
    if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
        std::string::npos)
        out += ".0";
}

void
appendIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

} // namespace

Json
Json::object()
{
    Json j;
    j.type = Type::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.type = Type::Array;
    return j;
}

Json &
Json::operator[](const std::string &key)
{
    AERO_CHECK(type == Type::Object || type == Type::Null,
               "Json::operator[] on a non-object");
    type = Type::Object;
    for (auto &m : members) {
        if (m.first == key)
            return m.second;
    }
    members.emplace_back(key, Json{});
    return members.back().second;
}

Json &
Json::push(Json value)
{
    AERO_CHECK(type == Type::Array || type == Type::Null,
               "Json::push on a non-array");
    type = Type::Array;
    items.push_back(std::move(value));
    return *this;
}

void
Json::write(std::string &out, int indent, int depth) const
{
    switch (type) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolean ? "true" : "false";
        break;
      case Type::Number:
        appendNumber(out, number);
        break;
      case Type::Integer:
        out += std::to_string(integer);
        break;
      case Type::Unsigned:
        out += std::to_string(uinteger);
        break;
      case Type::String:
        appendEscaped(out, text);
        break;
      case Type::Array: {
        out.push_back('[');
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i)
                out.push_back(',');
            appendIndent(out, indent, depth + 1);
            items[i].write(out, indent, depth + 1);
        }
        if (!items.empty())
            appendIndent(out, indent, depth);
        out.push_back(']');
        break;
      }
      case Type::Object: {
        out.push_back('{');
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (i)
                out.push_back(',');
            appendIndent(out, indent, depth + 1);
            appendEscaped(out, members[i].first);
            out += indent > 0 ? ": " : ":";
            members[i].second.write(out, indent, depth + 1);
        }
        if (!members.empty())
            appendIndent(out, indent, depth);
        out.push_back('}');
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    return out;
}

Json
toJson(const SimResult &result)
{
    const SimPoint &pt = result.point;
    Json row = Json::object();
    row["workload"] = pt.workload;
    row["scheme"] = schemeKindName(pt.scheme);
    row["pec"] = pt.pec;
    row["suspension"] = suspensionModeName(pt.suspension);
    row["misprediction_rate"] = pt.mispredictionRate;
    row["rber_requirement"] = pt.rberRequirement;
    row["requests"] = pt.requests;
    row["seed"] = pt.seed;
    row["avg_read_us"] = result.avgReadUs;
    row["avg_write_us"] = result.avgWriteUs;
    row["iops"] = result.iops;
    row["p999_us"] = result.p999Us;
    row["p9999_us"] = result.p9999Us;
    row["p999999_us"] = result.p999999Us;
    row["erases"] = result.erases;
    row["avg_erase_ms"] = result.avgEraseMs;
    row["suspensions"] = result.suspensions;
    row["write_amplification"] = result.writeAmplification;
    return row;
}

Json
toJson(const SweepSpec &spec)
{
    Json out = Json::object();
    Json workloads = Json::array();
    for (const auto &w : spec.workloads)
        workloads.push(w);
    out["workloads"] = std::move(workloads);
    Json schemes = Json::array();
    for (const auto k : spec.schemes)
        schemes.push(schemeKindName(k));
    out["schemes"] = std::move(schemes);
    Json pecs = Json::array();
    for (const double p : spec.pecs)
        pecs.push(p);
    out["pecs"] = std::move(pecs);
    Json suspensions = Json::array();
    for (const auto m : spec.suspensions)
        suspensions.push(suspensionModeName(m));
    out["suspensions"] = std::move(suspensions);
    Json misrates = Json::array();
    for (const double r : spec.mispredictionRates)
        misrates.push(r);
    out["misprediction_rates"] = std::move(misrates);
    Json rbers = Json::array();
    for (const int b : spec.rberRequirements)
        rbers.push(b);
    out["rber_requirements"] = std::move(rbers);
    Json seeds = Json::array();
    for (const auto s : spec.seeds)
        seeds.push(s);
    out["seeds"] = std::move(seeds);
    out["requests"] = spec.requests;
    out["drive_capacity_gib"] =
        static_cast<double>(spec.base.capacityBytes()) /
        (1024.0 * 1024.0 * 1024.0);
    return out;
}

Json
sweepReport(const SweepSpec &spec, const std::vector<SimResult> &results)
{
    Json doc = Json::object();
    doc["schema"] = "aero-sweep/1";
    doc["spec"] = toJson(spec);
    Json rows = Json::array();
    for (const auto &r : results)
        rows.push(toJson(r));
    doc["results"] = std::move(rows);
    return doc;
}

std::string
toCsv(const std::vector<SimResult> &results)
{
    std::ostringstream os;
    os.precision(12);  // match the JSON serializer's %.12g
    os << "workload,scheme,pec,suspension,misprediction_rate,"
          "rber_requirement,requests,seed,avg_read_us,avg_write_us,iops,"
          "p999_us,p9999_us,p999999_us,erases,avg_erase_ms,suspensions,"
          "write_amplification\n";
    for (const auto &r : results) {
        const SimPoint &pt = r.point;
        os << pt.workload << ',' << schemeKindName(pt.scheme) << ','
           << pt.pec << ',' << suspensionModeName(pt.suspension) << ','
           << pt.mispredictionRate << ',' << pt.rberRequirement << ','
           << pt.requests << ',' << pt.seed << ',' << r.avgReadUs << ','
           << r.avgWriteUs << ',' << r.iops << ',' << r.p999Us << ','
           << r.p9999Us << ',' << r.p999999Us << ',' << r.erases << ','
           << r.avgEraseMs << ',' << r.suspensions << ','
           << r.writeAmplification << '\n';
    }
    return os.str();
}

void
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        AERO_FATAL("cannot open '", path, "' for writing");
    out << content;
    out.flush();
    if (!out)
        AERO_FATAL("failed writing '", path, "'");
}

void
writeJsonFile(const std::string &path, const Json &doc)
{
    writeTextFile(path, doc.dump(2) + "\n");
    AERO_INFORM("wrote ", path);
}

} // namespace aero
