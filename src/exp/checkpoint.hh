/**
 * @file
 * Checkpoint/resume for sweeps: an append-only JSON-lines journal of
 * completed SimResults, so the paper's hours-long system grids (Figs.
 * 13-16, Tables 3-4 scale) survive crashes and restarts instead of
 * re-running from zero.
 *
 * Journal format (`aero-checkpoint/1`), one JSON document per line:
 *
 *   {"schema":"aero-checkpoint/1","fingerprint":"<hex>","spec":{..}}
 *   {"fingerprint":"<hex>","result":{..toJson(SimResult)..}}
 *   ...
 *
 * The header pins the journal to one SweepSpec via a fingerprint over
 * the spec's canonical JSON plus the base drive's configuration
 * summary; every result record repeats the fingerprint so a record can
 * never be spliced into the wrong sweep. Records are keyed by their
 * *axis values* (workload, scheme, pec, ...), not by position, so a
 * journal written under any thread count resumes correctly under any
 * other.
 *
 * Crash tolerance: each record is one write() followed by a flush, so a
 * torn write leaves at most one partial final line. On open, the loader
 * parses each line with Json::parse, drops a malformed *tail record*
 * (warning, then truncates the file back to the last good record
 * before appending), and fails loudly on corruption anywhere else —
 * including a file whose first line is not a journal header (never
 * truncate a file the caller pointed us at by mistake) — and on any
 * fingerprint mismatch, naming the spec field that differs.
 */

#ifndef AERO_EXP_CHECKPOINT_HH
#define AERO_EXP_CHECKPOINT_HH

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "exp/sweep.hh"

namespace aero
{

class SweepCheckpoint
{
  public:
    /**
     * Open (or create) the journal at @p path for @p spec. An existing
     * journal is validated (schema, fingerprint) and its records are
     * loaded; a journal written for a different spec is fatal with a
     * message naming the mismatching field.
     */
    SweepCheckpoint(std::string path, const SweepSpec &spec);
    ~SweepCheckpoint();

    SweepCheckpoint(const SweepCheckpoint &) = delete;
    SweepCheckpoint &operator=(const SweepCheckpoint &) = delete;

    const std::string &path() const { return journalPath; }

    /** Number of grid points already journaled. */
    std::size_t cachedCount() const { return loadedCount; }

    /** Was the point at expand() index @p index already journaled? */
    bool has(std::size_t index) const;

    /** The journaled result for @p index (check has() first). */
    const SimResult &cached(std::size_t index) const;

    /**
     * Append one completed point and flush it to disk. Thread-safe: the
     * sweep worker pool journals points in completion order, and the
     * axis-keyed loader puts them back in spec order on resume.
     */
    void record(const SimResult &result);

    /**
     * Fingerprint of a spec: a hash over its canonical report JSON and
     * the base drive's configuration summary, rendered as hex.
     */
    static std::string fingerprint(const SweepSpec &spec);

  private:
    void load();
    void loadHeader(const Json &row, std::size_t lineNo);
    void loadRecord(const Json &row, std::size_t lineNo);
    void openForAppend(std::uint64_t keepBytes, bool writeHeader);
    void append(const Json &row);

    std::string journalPath;
    std::string fp;           //!< fingerprint of the owning spec
    Json specJson;            //!< canonical spec JSON (header payload)
    SweepSpec spec;           //!< owning grid (axis-value -> index)
    std::vector<SimResult> results;  //!< dense, expand()-indexed
    std::vector<char> present;       //!< results[i] is journaled
    std::size_t loadedCount = 0;
    std::FILE *out = nullptr;
    std::mutex writeMutex;
};

} // namespace aero

#endif // AERO_EXP_CHECKPOINT_HH
