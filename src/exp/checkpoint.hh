/**
 * @file
 * Checkpoint/resume for sweeps, built on the generic campaign journal
 * (exp/campaign.hh): one flushed record per completed SimResult, keyed
 * by the point's axis values, so the paper's hours-long system grids
 * (Figs. 13-16, Tables 3-4 scale) survive crashes and restarts instead
 * of re-running from zero.
 *
 * SweepCheckpoint is a grid-indexed view over a CampaignJournal. It can
 * *own* its journal (the `run_sweep --checkpoint` path: one journal,
 * one sweep, campaign name "sweep") or *borrow* a bench-level journal
 * shared with other campaign stages (fig16's lifetime tasks and two
 * tail-latency sweeps all live in one journal, told apart by key
 * prefixes). Either way, records are keyed by *axis values*, not
 * position, so a journal written under any thread count resumes
 * correctly under any other, and the resumed artifacts are
 * byte-identical to an uninterrupted run (SimResult round-trips
 * bit-exactly through the JSON serializer).
 */

#ifndef AERO_EXP_CHECKPOINT_HH
#define AERO_EXP_CHECKPOINT_HH

#include <memory>
#include <string>
#include <vector>

#include "exp/campaign.hh"
#include "exp/sweep.hh"

namespace aero
{

class SweepCheckpoint
{
  public:
    /**
     * Open (or create) a journal at @p path owned by this checkpoint,
     * under @p campaignName (default "sweep") with configOf(@p spec) as
     * the fingerprinted configuration. A journal written for a
     * different spec — or under a different campaign name — is fatal
     * with a message naming the mismatch. Drivers that publish their
     * journal as an artifact (run_sweep) pass their bench-style name so
     * the journal self-identifies like a BENCH_*.json does.
     */
    SweepCheckpoint(std::string path, const SweepSpec &spec,
                    std::string campaignName = "sweep");

    /**
     * Like the owning constructor, but with explicit journal options:
     * a non-empty JournalOptions::workerId opens @p path as an
     * aero-campaign/2 journal *directory* (one journal.<worker>.jsonl
     * per worker, merged on load), and JournalOptions::claims arms
     * file-locked task claims so concurrent workers never duplicate
     * in-flight points (see exp/campaign.hh for the full contract).
     */
    SweepCheckpoint(std::string path, const SweepSpec &spec,
                    std::string campaignName, JournalOptions options);

    /**
     * Attach to @p journal, already opened by the bench (which must
     * have included this spec in the journal's fingerprinted config).
     * @p keyPrefix namespaces this sweep's records so several stages —
     * including several sweeps — can share one journal; give each
     * sweep a distinct prefix.
     */
    SweepCheckpoint(CampaignJournal &journal, const SweepSpec &spec,
                    Json keyPrefix = Json::object());

    SweepCheckpoint(const SweepCheckpoint &) = delete;
    SweepCheckpoint &operator=(const SweepCheckpoint &) = delete;

    const std::string &path() const { return journal->path(); }

    /** Number of grid points already journaled. */
    std::size_t cachedCount() const { return loadedCount; }

    /** Was the point at expand() index @p index already journaled? */
    bool has(std::size_t index) const;

    /** The journaled result for @p index (check has() first). */
    const SimResult &cached(std::size_t index) const;

    /** Does the underlying journal arbitrate tasks through claims? */
    bool claimsEnabled() const { return journal->claimsEnabled(); }

    /**
     * Claim @p pt for this worker (always true when claims are off).
     * False means a live sibling worker owns the point — skip it; its
     * result arrives on the next merge. See CampaignJournal::tryClaim.
     */
    bool tryClaim(const SimPoint &pt);

    /**
     * Append one completed point and flush it to disk. Thread-safe: the
     * sweep worker pool journals points in completion order, and the
     * axis-keyed loader puts them back in spec order on resume.
     */
    void record(const SimResult &result);

    /**
     * Canonical journal config of a spec: its report JSON (axes,
     * requests, capacity) plus the base drive's configuration summary,
     * so resuming onto a reconfigured drive cannot silently splice
     * stale rows.
     */
    static Json configOf(const SweepSpec &spec);

  private:
    void load();
    Json keyOf(const SimPoint &pt) const;

    std::unique_ptr<CampaignJournal> owned;  //!< null in borrowed mode
    CampaignJournal *journal;
    Json prefix;
    SweepSpec spec;                  //!< owning grid (axis-value -> index)
    std::vector<SimResult> results;  //!< dense, expand()-indexed
    std::vector<char> present;       //!< results[i] is journaled
    std::size_t loadedCount = 0;
};

} // namespace aero

#endif // AERO_EXP_CHECKPOINT_HH
