/**
 * @file
 * parallelMap() template implementation (included from exp/sweep.hh).
 */

#ifndef AERO_EXP_SWEEP_IMPL_HH
#define AERO_EXP_SWEEP_IMPL_HH

#include <atomic>
#include <thread>
#include <type_traits>
#include <vector>

namespace aero
{

namespace detail
{

/** Clamp a requested pool size to the work available. */
int resolvePoolSize(int threads, std::size_t items);

} // namespace detail

template <typename Item, typename Fn>
auto
parallelMap(const std::vector<Item> &items, Fn fn, int threads = 0)
    -> std::vector<std::decay_t<decltype(fn(items.front()))>>
{
    using Result = std::decay_t<decltype(fn(items.front()))>;
    std::vector<Result> results(items.size());
    const int pool = detail::resolvePoolSize(threads, items.size());
    if (pool <= 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            results[i] = fn(items[i]);
        return results;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(pool));
    for (int t = 0; t < pool; ++t) {
        workers.emplace_back([&] {
            for (std::size_t i; (i = next.fetch_add(1)) < items.size();)
                results[i] = fn(items[i]);
        });
    }
    for (auto &w : workers)
        w.join();
    return results;
}

} // namespace aero

#endif // AERO_EXP_SWEEP_IMPL_HH
