/**
 * @file
 * Report diffing: the engine behind the `aero_diff` regression gate.
 *
 * Compares two experiment artifacts (`aero-sweep/1`, `aero-devchar/1`,
 * or any document following the same shape) row by row. Rows in the
 * top-level "results" array are matched by their *axis key* — the tuple
 * of values under the keys listed in the document's "axes" array (the
 * fixed sweep axis set is assumed for `aero-sweep/1`, which predates the
 * "axes" field) — so reordering rows is not a difference, while a row
 * present on only one side is.
 *
 * Metric comparison rules:
 *  - exact 64-bit integers compare exactly, regardless of tolerances;
 *  - floating-point values compare within `--abs-tol` / `--rel-tol`
 *    (a delta exactly at a tolerance passes);
 *  - NaN equals NaN and same-signed infinities are equal (a regenerated
 *    artifact reproducing the same non-finite value is not a regression);
 *  - null equals null (the serializer's spelling of NaN/inf — see
 *    exp/json.hh), and anything else against null is a mismatch;
 *  - keys named by `ignoreKeys` (timestamps, host names, ...) are
 *    skipped everywhere in both documents.
 *
 * Everything outside "results" ("spec", "summary", extra fields) is
 * compared too: "summary" members with the numeric tolerance rules,
 * the rest exactly.
 */

#ifndef AERO_EXP_DIFF_HH
#define AERO_EXP_DIFF_HH

#include <cstddef>
#include <string>
#include <vector>

#include "exp/json.hh"

namespace aero
{

struct DiffOptions
{
    /** Relative tolerance for floating-point metrics (vs max |a|,|b|). */
    double relTol = 0.0;
    /** Absolute tolerance for floating-point metrics. */
    double absTol = 0.0;
    /** Keys excluded from comparison at every level of both documents. */
    std::vector<std::string> ignoreKeys;
};

/** One observed difference. */
struct DiffEntry
{
    std::string row;     //!< rendered axis key; "" for document level
    std::string metric;  //!< offending key; "" for whole-row entries
    std::string a;       //!< rendered value on side A ("(absent)" if gone)
    std::string b;       //!< rendered value on side B
    double absDelta = 0.0;  //!< |a - b| when both numeric, else 0
    double relDelta = 0.0;  //!< absDelta / max(|a|, |b|), else 0
    std::string what;    //!< schema | row | metric | type | doc
};

struct DiffResult
{
    bool match = true;
    std::size_t rowsA = 0;
    std::size_t rowsB = 0;
    std::size_t rowsCompared = 0;
    std::size_t metricsCompared = 0;
    std::vector<DiffEntry> deltas;

    /**
     * Formatted per-metric delta table (header + one line per entry);
     * at most @p maxEntries rows when non-zero. Empty string on match.
     */
    std::string table(std::size_t maxEntries = 0) const;
};

/**
 * Axis keys identifying a result row: the document's "axes" array when
 * present, the fixed sweep axis set for `aero-sweep/1`, else empty
 * (rows are then matched by position).
 */
std::vector<std::string> reportAxes(const Json &doc);

/** Compare two report documents (see file comment for the rules). */
DiffResult diffReports(const Json &a, const Json &b,
                       const DiffOptions &opts = {});

/**
 * Parse a CSV artifact (the `toCsv` / `devcharCsv` projections) into a
 * report-shaped document — {"schema": "aero-csv/1", "axes": [..],
 * "results": [..]} — so two CSV files diff through the same axis-keyed
 * matcher as the JSON artifacts. The first line is the header; cells
 * that parse fully as integers become exact integers, as numbers become
 * doubles, empty cells become null, everything else stays a string.
 * RFC 4180 quoting (doubled quotes, embedded commas/newlines) and CRLF
 * line ends are understood. "axes" is the sweep axis set when every
 * sweep axis column is present, else absent (rows match by position).
 * Fatal on a row whose cell count disagrees with the header.
 */
Json csvToReport(const std::string &text);

/**
 * Non-fatal csvToReport: returns false and fills @p error on a
 * malformed artifact (for CLI callers that must map parse failures to
 * their own exit code rather than die).
 */
bool csvToReport(const std::string &text, Json *out, std::string *error);

/**
 * @name Directory mode
 * Diff two directories of report artifacts in one invocation: every
 * `*.json` / `*.csv` file (recursively, by directory-relative path) is
 * paired with its same-named counterpart and diffed with the usual
 * rules; files present on only one side are reported as unpaired.
 */
/** @{ */

/** Outcome of one paired file. */
struct DirDiffFile
{
    std::string name;    //!< directory-relative path (both sides)
    bool loaded = false; //!< both sides read + parsed
    std::string error;   //!< load/parse failure (when !loaded)
    DiffResult diff;     //!< valid when loaded
};

struct DirDiffResult
{
    std::vector<DirDiffFile> compared;  //!< paired files, sorted by name
    std::vector<std::string> onlyA;     //!< report files missing in B
    std::vector<std::string> onlyB;     //!< report files missing in A
    std::size_t matched = 0;            //!< paired files with no deltas
    bool anyError = false;  //!< unreadable/unparseable file somewhere

    /** Every pair matched and nothing was unpaired or unreadable. */
    bool
    match() const
    {
        return !anyError && onlyA.empty() && onlyB.empty() &&
               matched == compared.size();
    }

    /** The CLI contract: 0 match, 1 differ/unpaired, 2 error. */
    int
    exitCode() const
    {
        return anyError ? 2 : (match() ? 0 : 1);
    }
};

/**
 * Compare the report artifacts under @p dirA and @p dirB (see above).
 * Fatal when either path is not a directory; per-file read/parse
 * failures are reported in the result instead (anyError), so one bad
 * artifact does not hide the rest of the tree's deltas. Tree-walk
 * failures (an unreadable subdirectory) propagate as
 * std::filesystem::filesystem_error — CLI callers map them to their
 * error exit code.
 */
DirDiffResult diffReportDirs(const std::string &dirA,
                             const std::string &dirB,
                             const DiffOptions &opts = {});

/** @} */

} // namespace aero

#endif // AERO_EXP_DIFF_HH
