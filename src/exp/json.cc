#include "exp/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace aero
{

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        out += "null";  // JSON has no inf/nan (see policy in json.hh)
        return;
    }
    // Shortest representation that round-trips to the same double, so
    // parse(dump(x)) == x holds for every finite value.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    const auto len = static_cast<std::size_t>(res.ptr - buf);
    out.append(buf, len);
    // to_chars may print a bare integer ("5" for 5.0); keep it a
    // double for typed readers.
    if (out.find_first_of(".eE", out.size() - len) == std::string::npos)
        out += ".0";
}

void
appendIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

/**
 * Recursive-descent parser over the raw text. Tracks the 1-based
 * line/column of the cursor so errors point at the offending character.
 */
class Parser
{
  public:
    Parser(const std::string &text, Json::ParseError *err)
        : s(text), error(err)
    {
    }

    bool
    run(Json *out)
    {
        skipWs();
        if (!parseValue(*out, 0))
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 256;

    const std::string &s;
    Json::ParseError *error;
    std::size_t pos = 0;
    std::size_t line = 1;
    std::size_t lineStart = 0;  //!< offset of the current line's first char

    bool
    fail(const std::string &message)
    {
        if (error) {
            error->message = message;
            error->line = line;
            error->column = pos - lineStart + 1;
            error->offset = pos;
        }
        return false;
    }

    bool atEnd() const { return pos >= s.size(); }
    char peek() const { return s[pos]; }

    void
    advance()
    {
        if (s[pos] == '\n') {
            line += 1;
            lineStart = pos + 1;
        }
        pos += 1;
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            advance();
        }
    }

    bool
    consume(char expected, const char *what)
    {
        if (atEnd() || peek() != expected)
            return fail(detail::concat("expected ", what));
        advance();
        return true;
    }

    bool
    parseValue(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than 256 levels");
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"': {
            std::string str;
            if (!parseString(str))
                return false;
            out = Json(std::move(str));
            return true;
          }
          case 't': return parseKeyword("true", Json(true), out);
          case 'f': return parseKeyword("false", Json(false), out);
          case 'n': return parseKeyword("null", Json(), out);
          default: {
            const char c = peek();
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail("invalid token");
          }
        }
    }

    bool
    parseKeyword(const char *word, Json value, Json &out)
    {
        const std::size_t n = std::strlen(word);
        if (s.compare(pos, n, word) != 0)
            return fail("invalid token");
        for (std::size_t i = 0; i < n; ++i)
            advance();
        out = std::move(value);
        return true;
    }

    bool
    parseObject(Json &out, int depth)
    {
        advance();  // '{'
        out = Json::object();
        skipWs();
        if (!atEnd() && peek() == '}') {
            advance();
            return true;
        }
        while (true) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':', "':' after object key"))
                return false;
            skipWs();
            if (!parseValue(out[key], depth + 1))
                return false;
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == '}') {
                advance();
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Json &out, int depth)
    {
        advance();  // '['
        out = Json::array();
        skipWs();
        if (!atEnd() && peek() == ']') {
            advance();
            return true;
        }
        while (true) {
            skipWs();
            Json element;
            if (!parseValue(element, depth + 1))
                return false;
            out.push(std::move(element));
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == ']') {
                advance();
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    hexQuad(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                return fail("unterminated \\u escape");
            const char c = peek();
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                return fail("invalid hex digit in \\u escape");
            out = out * 16 + digit;
            advance();
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    bool
    parseString(std::string &out)
    {
        advance();  // '"'
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            const char c = peek();
            if (c == '"') {
                advance();
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                advance();
                continue;
            }
            advance();  // '\\'
            if (atEnd())
                return fail("unterminated escape");
            const char esc = peek();
            switch (esc) {
              case '"': out.push_back('"'); advance(); break;
              case '\\': out.push_back('\\'); advance(); break;
              case '/': out.push_back('/'); advance(); break;
              case 'b': out.push_back('\b'); advance(); break;
              case 'f': out.push_back('\f'); advance(); break;
              case 'n': out.push_back('\n'); advance(); break;
              case 'r': out.push_back('\r'); advance(); break;
              case 't': out.push_back('\t'); advance(); break;
              case 'u': {
                advance();
                unsigned cp;
                if (!hexQuad(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (atEnd() || peek() != '\\')
                        return fail("unpaired UTF-16 high surrogate");
                    advance();
                    if (atEnd() || peek() != 'u')
                        return fail("unpaired UTF-16 high surrogate");
                    advance();
                    unsigned lo;
                    if (!hexQuad(lo))
                        return false;
                    if (lo < 0xdc00 || lo > 0xdfff)
                        return fail("invalid UTF-16 low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    return fail("unpaired UTF-16 low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
    }

    bool
    parseNumber(Json &out)
    {
        const std::size_t start = pos;
        bool negative = false;
        if (!atEnd() && peek() == '-') {
            negative = true;
            advance();
        }
        // Integer part: "0" alone or a nonzero-led digit run (RFC 8259).
        if (atEnd() || peek() < '0' || peek() > '9')
            return fail("invalid number");
        if (peek() == '0') {
            advance();
            if (!atEnd() && peek() >= '0' && peek() <= '9')
                return fail("leading zero in number");
        } else {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        bool integral = true;
        if (!atEnd() && peek() == '.') {
            integral = false;
            advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail("expected digit after decimal point");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            integral = false;
            advance();
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                return fail("expected digit in exponent");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        const std::string token = s.substr(start, pos - start);
        if (integral) {
            // Exact 64-bit when it fits; overflow falls back to double.
            std::uint64_t magnitude = 0;
            bool overflow = false;
            for (const char c : token) {
                if (c == '-')
                    continue;
                const auto digit =
                    static_cast<std::uint64_t>(c - '0');
                if (magnitude > (UINT64_MAX - digit) / 10) {
                    overflow = true;
                    break;
                }
                magnitude = magnitude * 10 + digit;
            }
            if (!overflow) {
                if (negative) {
                    // |INT64_MIN| == 2^63.
                    if (magnitude <= static_cast<std::uint64_t>(1) << 63) {
                        out = Json(static_cast<std::int64_t>(-magnitude));
                        return true;
                    }
                } else if (magnitude <=
                           static_cast<std::uint64_t>(INT64_MAX)) {
                    out = Json(static_cast<std::int64_t>(magnitude));
                    return true;
                } else {
                    out = Json(magnitude);
                    return true;
                }
            }
        }
        out = Json(std::strtod(token.c_str(), nullptr));
        return true;
    }
};

} // namespace

Json
Json::object()
{
    Json j;
    j.kind = Type::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind = Type::Array;
    return j;
}

Json &
Json::operator[](const std::string &key)
{
    AERO_CHECK(kind == Type::Object || kind == Type::Null,
               "Json::operator[] on a non-object");
    kind = Type::Object;
    for (auto &m : memberList) {
        if (m.first == key)
            return m.second;
    }
    memberList.emplace_back(key, Json{});
    return memberList.back().second;
}

Json &
Json::push(Json value)
{
    AERO_CHECK(kind == Type::Array || kind == Type::Null,
               "Json::push on a non-array");
    kind = Type::Array;
    items.push_back(std::move(value));
    return *this;
}

bool
Json::isNumeric() const
{
    return kind == Type::Number || kind == Type::Integer ||
           kind == Type::Unsigned;
}

bool
Json::isIntegral() const
{
    return kind == Type::Integer || kind == Type::Unsigned;
}

bool
Json::asBool() const
{
    AERO_CHECK(kind == Type::Bool, "Json::asBool on a non-bool");
    return boolean;
}

double
Json::asDouble() const
{
    switch (kind) {
      case Type::Number: return number;
      case Type::Integer: return static_cast<double>(integer);
      case Type::Unsigned: return static_cast<double>(uinteger);
      default:
        AERO_PANIC("Json::asDouble on a non-numeric value");
    }
}

std::int64_t
Json::asInt64() const
{
    if (kind == Type::Integer)
        return integer;
    if (kind == Type::Unsigned) {
        AERO_CHECK(uinteger <= static_cast<std::uint64_t>(INT64_MAX),
                   "Json::asInt64: value exceeds int64 range");
        return static_cast<std::int64_t>(uinteger);
    }
    AERO_PANIC("Json::asInt64 on a non-integral value");
}

std::uint64_t
Json::asUint64() const
{
    if (kind == Type::Unsigned)
        return uinteger;
    if (kind == Type::Integer) {
        AERO_CHECK(integer >= 0, "Json::asUint64 on a negative value");
        return static_cast<std::uint64_t>(integer);
    }
    AERO_PANIC("Json::asUint64 on a non-integral value");
}

const std::string &
Json::asString() const
{
    AERO_CHECK(kind == Type::String, "Json::asString on a non-string");
    return text;
}

std::size_t
Json::size() const
{
    if (kind == Type::Array)
        return items.size();
    if (kind == Type::Object)
        return memberList.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    AERO_CHECK(kind == Type::Array, "Json::at on a non-array");
    AERO_CHECK(i < items.size(), "Json::at index out of range: ", i);
    return items[i];
}

const std::pair<std::string, Json> &
Json::member(std::size_t i) const
{
    AERO_CHECK(kind == Type::Object, "Json::member on a non-object");
    AERO_CHECK(i < memberList.size(),
               "Json::member index out of range: ", i);
    return memberList[i];
}

const Json *
Json::find(const std::string &key) const
{
    if (kind != Type::Object)
        return nullptr;
    for (const auto &m : memberList) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

const Json &
Json::get(const std::string &key) const
{
    const Json *v = find(key);
    if (!v)
        AERO_FATAL("JSON object is missing '", key, "'");
    return *v;
}

void
Json::write(std::string &out, int indent, int depth) const
{
    switch (kind) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolean ? "true" : "false";
        break;
      case Type::Number:
        appendNumber(out, number);
        break;
      case Type::Integer:
        out += std::to_string(integer);
        break;
      case Type::Unsigned:
        out += std::to_string(uinteger);
        break;
      case Type::String:
        appendEscaped(out, text);
        break;
      case Type::Array: {
        out.push_back('[');
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i)
                out.push_back(',');
            appendIndent(out, indent, depth + 1);
            items[i].write(out, indent, depth + 1);
        }
        if (!items.empty())
            appendIndent(out, indent, depth);
        out.push_back(']');
        break;
      }
      case Type::Object: {
        out.push_back('{');
        for (std::size_t i = 0; i < memberList.size(); ++i) {
            if (i)
                out.push_back(',');
            appendIndent(out, indent, depth + 1);
            appendEscaped(out, memberList[i].first);
            out += indent > 0 ? ": " : ":";
            memberList[i].second.write(out, indent, depth + 1);
        }
        if (!memberList.empty())
            appendIndent(out, indent, depth);
        out.push_back('}');
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    return out;
}

std::string
Json::ParseError::toString() const
{
    return detail::concat("line ", line, ", column ", column, ": ",
                          message);
}

bool
Json::parse(const std::string &text, Json *out, ParseError *err)
{
    AERO_CHECK(out != nullptr, "Json::parse needs an output value");
    *out = Json();
    Json parsed;
    Parser parser(text, err);
    if (!parser.run(&parsed))
        return false;
    *out = std::move(parsed);
    return true;
}

Json
Json::parseOrDie(const std::string &text, const std::string &what)
{
    Json out;
    ParseError err;
    if (!parse(text, &out, &err))
        AERO_FATAL("cannot parse ", what, ": ", err.toString());
    return out;
}

namespace
{

/** Numeric comparison exact over the full int64/uint64/double ranges. */
bool
numericEqual(const Json &a, const Json &b)
{
    // Integral pairs compare in integer arithmetic — exact on every
    // platform, independent of long double's mantissa width.
    if (a.isIntegral() && b.isIntegral()) {
        const bool aNeg = a.type() == Json::Type::Integer &&
                          a.asInt64() < 0;
        const bool bNeg = b.type() == Json::Type::Integer &&
                          b.asInt64() < 0;
        if (aNeg != bNeg)
            return false;
        if (aNeg)
            return a.asInt64() == b.asInt64();
        return a.asUint64() == b.asUint64();
    }
    // A double is involved: compare at long double width (>= 64-bit
    // mantissa on x86-64; elsewhere this inherits double's precision,
    // which is all a double-sourced value ever had).
    const auto widen = [](const Json &v) -> long double {
        if (v.isIntegral()) {
            return v.type() == Json::Type::Unsigned
                ? static_cast<long double>(v.asUint64())
                : static_cast<long double>(v.asInt64());
        }
        return static_cast<long double>(v.asDouble());
    };
    return widen(a) == widen(b);  // NaN != NaN by IEEE, as documented
}

} // namespace

bool
operator==(const Json &a, const Json &b)
{
    if (a.isNumeric() && b.isNumeric())
        return numericEqual(a, b);
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case Json::Type::Null:
        return true;
      case Json::Type::Bool:
        return a.boolean == b.boolean;
      case Json::Type::String:
        return a.text == b.text;
      case Json::Type::Array:
        return a.items == b.items;
      case Json::Type::Object:
        return a.memberList == b.memberList;
      default:
        return false;  // numeric cases handled above
    }
}

} // namespace aero
