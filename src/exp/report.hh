/**
 * @file
 * Machine-readable experiment reports.
 *
 * A minimal JSON value type (insertion-ordered objects, so emitted keys
 * are stable across runs and diffs stay readable) plus serializers that
 * turn SweepSpec/SimResult rows into a JSON document or a CSV table.
 * Every figure bench drops one of these artifacts next to its printf
 * table so plots and regression checks can consume the numbers directly.
 */

#ifndef AERO_EXP_REPORT_HH
#define AERO_EXP_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "devchar/simstudy.hh"
#include "exp/sweep.hh"

namespace aero
{

/** JSON document node: null, bool, number, string, array, or object. */
class Json
{
  public:
    Json() = default;  // null
    Json(bool b) : type(Type::Bool), boolean(b) {}
    Json(double d) : type(Type::Number), number(d) {}
    Json(int i) : Json(static_cast<std::int64_t>(i)) {}
    Json(std::int64_t i) : type(Type::Integer), integer(i) {}
    Json(std::uint64_t u) : type(Type::Unsigned), uinteger(u) {}
    Json(std::string s) : type(Type::String), text(std::move(s)) {}
    Json(const char *s) : Json(std::string(s)) {}

    static Json object();
    static Json array();

    /** Object access: inserts a null member on first use of a key. */
    Json &operator[](const std::string &key);

    /** Array append. */
    Json &push(Json value);

    bool isNull() const { return type == Type::Null; }

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

  private:
    enum class Type
    {
        Null, Bool, Number, Integer, Unsigned, String, Array, Object
    };

    void write(std::string &out, int indent, int depth) const;

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::int64_t integer = 0;
    std::uint64_t uinteger = 0;
    std::string text;
    std::vector<Json> items;
    std::vector<std::pair<std::string, Json>> members;
};

/** One result row as a flat JSON object with stable keys. */
Json toJson(const SimResult &result);

/** The declared grid (axes, request count, drive summary fields). */
Json toJson(const SweepSpec &spec);

/**
 * Full sweep report: {"schema": "aero-sweep/1", "spec": ..,
 * "results": [..]}. Results must be in spec order.
 */
Json sweepReport(const SweepSpec &spec,
                 const std::vector<SimResult> &results);

/** The same rows as CSV (header + one line per result). */
std::string toCsv(const std::vector<SimResult> &results);

/** Write a file or die (fatal on I/O failure). */
void writeTextFile(const std::string &path, const std::string &content);

/** dump(2) + trailing newline to @p path; logs the artifact location. */
void writeJsonFile(const std::string &path, const Json &doc);

} // namespace aero

#endif // AERO_EXP_REPORT_HH
