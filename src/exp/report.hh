/**
 * @file
 * Machine-readable experiment reports.
 *
 * Serializers that turn SweepSpec/SimResult rows into a JSON document
 * (see exp/json.hh for the value type) or a CSV table, plus the file
 * I/O helpers every artifact producer/consumer shares. Every figure
 * bench drops one of these artifacts next to its printf table so plots
 * and regression checks (`aero_diff`) can consume the numbers directly.
 */

#ifndef AERO_EXP_REPORT_HH
#define AERO_EXP_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "devchar/simstudy.hh"
#include "exp/json.hh"
#include "exp/sweep.hh"

namespace aero
{

/** One result row as a flat JSON object with stable keys. */
Json toJson(const SimResult &result);

/**
 * Inverse of toJson(SimResult): rebuild a result from a report row.
 * Exact for every field — doubles round-trip bit-for-bit through the
 * shortest-round-trip serializer, so a reloaded result re-serializes
 * byte-identically (the property the sweep checkpoint relies on).
 * Fatal on a row missing a field or naming an unknown scheme/mode.
 */
SimResult simResultFromJson(const Json &row);

/** The declared grid (axes, request count, drive summary fields). */
Json toJson(const SweepSpec &spec);

/**
 * Full sweep report: {"schema": "aero-sweep/1", "spec": ..,
 * "results": [..]}. Results must be in spec order.
 */
Json sweepReport(const SweepSpec &spec,
                 const std::vector<SimResult> &results);

/** The same rows as CSV (header + one line per result). */
std::string toCsv(const std::vector<SimResult> &results);

/** Write a file or die (fatal on I/O failure). */
void writeTextFile(const std::string &path, const std::string &content);

/** dump(2) + trailing newline to @p path; logs the artifact location. */
void writeJsonFile(const std::string &path, const Json &doc);

/** Read a whole file or die (fatal on I/O failure). */
std::string readTextFile(const std::string &path);

/** readTextFile + parse; fatal with line/column on malformed JSON. */
Json readJsonFile(const std::string &path);

} // namespace aero

#endif // AERO_EXP_REPORT_HH
