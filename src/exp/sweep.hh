/**
 * @file
 * Declarative experiment sweeps over the system-level simulator.
 *
 * The paper's evaluation is one big grid — 11 Table-3 workloads x 5 erase
 * schemes x 3 PEC points (x seeds x suspension modes x sensitivity
 * overrides). SweepSpec declares such a grid once; expand() flattens it to
 * an ordered vector of SimPoints with a fixed axis nesting (outermost to
 * innermost):
 *
 *   PEC > suspension > workload > scheme > misprediction > RBER
 *       > GC policy > wear leveling > SLO policy > seed
 *
 * SweepRunner executes the points across a std::thread pool (each point
 * builds its own Ssd, so points are fully independent) and returns results
 * in spec order regardless of thread count. Thread count comes from the
 * constructor, or the AERO_SWEEP_THREADS env, or the hardware.
 */

#ifndef AERO_EXP_SWEEP_HH
#define AERO_EXP_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "devchar/simstudy.hh"
#include "ssd/config.hh"

namespace aero
{

class SweepCheckpoint;

struct SweepSpec
{
    /** @name Grid axes (every combination is one SimPoint) */
    /** @{ */
    std::vector<std::string> workloads = {"prxy"};
    std::vector<SchemeKind> schemes = {SchemeKind::Baseline};
    std::vector<double> pecs = {500.0};
    std::vector<SuspensionMode> suspensions = {SuspensionMode::MidSegment};
    std::vector<double> mispredictionRates = {0.0};
    std::vector<int> rberRequirements = {63};
    std::vector<std::string> gcPolicies = {"greedy"};
    std::vector<std::string> wearLevels = {"none"};
    std::vector<std::string> sloPolicies = {"none"};
    std::vector<std::uint64_t> seeds = {7};
    /** @} */

    /** Requests per point (shared by all points). */
    std::uint64_t requests = 120000;

    /** Base drive every point starts from (axes overwrite its fields). */
    SsdConfig base = SsdConfig::bench();

    /** Number of points the grid expands to. */
    std::size_t size() const;

    /** Flatten the grid, seeds varying fastest (see file comment). */
    std::vector<SimPoint> expand() const;

    /**
     * Flat index of the point at the given per-axis indices, matching
     * expand() order. Lets a bench walk a result vector with the same
     * nested loops it uses for printing.
     */
    std::size_t index(std::size_t pec, std::size_t susp, std::size_t wl,
                      std::size_t scheme, std::size_t mis, std::size_t rber,
                      std::size_t seed, std::size_t gc = 0,
                      std::size_t wear = 0, std::size_t slo = 0) const;
};

/**
 * Fluent builder for SweepSpec. Singular setters collapse an axis to one
 * value; plural setters sweep it. build() validates every axis (non-empty,
 * known workload names) so a bad grid fails before hours of simulation.
 *
 *   const SweepSpec spec = SweepBuilder()
 *                              .allTable3Workloads()
 *                              .allSchemes()
 *                              .paperPecs()
 *                              .repeats(3)
 *                              .requests(defaultSimRequests())
 *                              .build();
 */
class SweepBuilder
{
  public:
    SweepBuilder &workload(const std::string &name);
    SweepBuilder &workloads(const std::vector<std::string> &names);
    SweepBuilder &allTable3Workloads();

    SweepBuilder &scheme(SchemeKind kind);
    SweepBuilder &schemes(const std::vector<SchemeKind> &kinds);
    /** Scheme names resolved via the EraseSchemeRegistry. */
    SweepBuilder &schemeNames(const std::vector<std::string> &names);
    /** All five schemes in the paper's comparison order. */
    SweepBuilder &allSchemes();

    SweepBuilder &pec(double pec);
    SweepBuilder &pecs(const std::vector<double> &pecs);
    /** The 0.5K / 2.5K / 4.5K conditioning points of section 7. */
    SweepBuilder &paperPecs();

    SweepBuilder &suspension(SuspensionMode mode);
    SweepBuilder &suspensions(const std::vector<SuspensionMode> &modes);

    SweepBuilder &mispredictionRate(double rate);
    SweepBuilder &mispredictionRates(const std::vector<double> &rates);

    SweepBuilder &rberRequirement(int bits);
    SweepBuilder &rberRequirements(const std::vector<int> &bits);

    /** GC victim-selection policy names (ssd/gc.hh registry). */
    SweepBuilder &gcPolicy(const std::string &name);
    SweepBuilder &gcPolicies(const std::vector<std::string> &names);

    /** Wear-leveling policy names (ssd/wear_level.hh registry). */
    SweepBuilder &wearLevel(const std::string &name);
    SweepBuilder &wearLevels(const std::vector<std::string> &names);

    /** SLO enforcement policy names (ssd/config.hh SloPolicy). */
    SweepBuilder &sloPolicy(const std::string &name);
    SweepBuilder &sloPolicies(const std::vector<std::string> &names);

    SweepBuilder &seed(std::uint64_t seed);
    SweepBuilder &seeds(const std::vector<std::uint64_t> &seeds);
    /** n seeds base, base+stride, ... (the benches' repeat idiom). */
    SweepBuilder &repeats(int n, std::uint64_t base = 7,
                          std::uint64_t stride = 1000);

    SweepBuilder &requests(std::uint64_t n);
    SweepBuilder &baseConfig(const SsdConfig &cfg);

    /** Validate and return the spec (fatal on an ill-formed grid). */
    SweepSpec build() const;

  private:
    SweepSpec spec;
};

/**
 * Thread count for sweeps: the AERO_SWEEP_THREADS env when set (fatal if
 * malformed or zero), else std::thread::hardware_concurrency().
 */
int sweepThreads();

class SweepRunner
{
  public:
    /** Called after each point completes (serialized by the runner). */
    using Progress = std::function<void(
        std::size_t done, std::size_t total, const SimResult &latest)>;

    /** @param threads  pool size; 0 means sweepThreads(). */
    explicit SweepRunner(int threads = 0);

    int threads() const { return poolSize; }

    /** Expand and run a spec; results in expand() order. */
    std::vector<SimResult> run(const SweepSpec &spec,
                               const Progress &progress = {}) const;

    /**
     * Checkpointed run: points already journaled in @p checkpoint are
     * spliced back from the journal (never re-simulated) and every
     * newly completed point is journaled before the run moves on. The
     * returned vector is in expand() order and bit-identical to an
     * uninterrupted run() of the same spec at any thread count; the
     * progress callback sees only the points actually simulated.
     *
     * @p shardIndex / @p shardCount restrict the run to the points at
     * expand() indices congruent to shardIndex mod shardCount — the
     * deterministic slice a `--shard i/N` worker owns. Off-shard points
     * are still spliced from the journal when present (a merged
     * directory journal carries every shard's records), but are never
     * simulated here; their slots stay default-constructed otherwise,
     * so a sharded driver must not write artifacts until every shard's
     * records have been merged (checkpoint.cachedCount() == spec
     * size()).
     *
     * When the checkpoint's journal has claims enabled
     * (JournalOptions::claims), each pending point is claimed before
     * simulation; points a live sibling worker owns are skipped — their
     * results arrive through that worker's journal file on the next
     * merge. Progress `total` counts this process's pending points, so
     * with claims active `done` may stop short of `total`.
     */
    std::vector<SimResult> run(const SweepSpec &spec,
                               SweepCheckpoint &checkpoint,
                               const Progress &progress = {},
                               int shardIndex = 0,
                               int shardCount = 1) const;

    /** Run explicit points against a base drive; results in input order. */
    std::vector<SimResult> run(const std::vector<SimPoint> &points,
                               const SsdConfig &base,
                               const Progress &progress = {}) const;

  private:
    int poolSize;
};

/** Progress callback printing "done/total" lines to stderr. */
SweepRunner::Progress stderrProgress();

} // namespace aero

// parallelMap(items, fn, threads = 0): run fn over items on a thread
// pool, results in input order — the generic engine under SweepRunner,
// reusable for any independent per-item experiment (e.g. one
// LifetimeTester run per scheme). Lives in its own self-contained header
// so low-level TUs can use it without the sweep machinery.
#include "exp/sweep_impl.hh"

#endif // AERO_EXP_SWEEP_HH
