#include "exp/checkpoint.hh"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "erase/scheme_registry.hh"
#include "exp/report.hh"

namespace aero
{

namespace
{

constexpr const char *kSchema = "aero-checkpoint/1";

/** FNV-1a 64-bit over @p text, rendered as 16 hex digits. */
std::string
hashHex(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/**
 * Flat expand() index of @p pt on @p spec's grid; fatal when the point
 * does not lie on the grid (cannot happen for a fingerprint-matched
 * journal short of file corruption). Axis doubles compare exactly: the
 * journal round-trips them through the shortest-round-trip serializer.
 */
std::size_t
pointIndex(const SweepSpec &spec, const SimPoint &pt)
{
    const auto axis = [&](const auto &values, const auto &value,
                          const char *name) {
        const auto it =
            std::find(values.begin(), values.end(), value);
        if (it == values.end()) {
            AERO_FATAL("checkpoint record does not lie on the sweep "
                       "grid: no ", name, " axis value matches the "
                       "record (journal corrupt?)");
        }
        return static_cast<std::size_t>(it - values.begin());
    };
    return spec.index(axis(spec.pecs, pt.pec, "pec"),
                      axis(spec.suspensions, pt.suspension, "suspension"),
                      axis(spec.workloads, pt.workload, "workload"),
                      axis(spec.schemes, pt.scheme, "scheme"),
                      axis(spec.mispredictionRates, pt.mispredictionRate,
                           "misprediction-rate"),
                      axis(spec.rberRequirements, pt.rberRequirement,
                           "rber-requirement"),
                      axis(spec.seeds, pt.seed, "seed"));
}

/**
 * Name the first field on which two spec JSON documents disagree, as
 * "key: theirs vs ours"; empty when the documents are equal (the
 * fingerprint then differs through the drive configuration, which the
 * header JSON does not carry).
 */
std::string
describeSpecMismatch(const Json &stored, const Json &current)
{
    std::vector<std::string> keys;
    const auto collect = [&](const Json &doc) {
        for (std::size_t i = 0; i < doc.size(); ++i) {
            const std::string &name = doc.member(i).first;
            if (std::find(keys.begin(), keys.end(), name) == keys.end())
                keys.push_back(name);
        }
    };
    collect(current);
    collect(stored);
    for (const auto &key : keys) {
        const Json *a = stored.find(key);
        const Json *b = current.find(key);
        if (a && b && *a == *b)
            continue;
        return detail::concat(key, ": ", a ? a->dump() : "(absent)",
                              " vs ", b ? b->dump() : "(absent)");
    }
    return "";
}

} // namespace

std::string
SweepCheckpoint::fingerprint(const SweepSpec &spec)
{
    // The report JSON covers the axes/requests/capacity; the drive
    // summary covers the rest of the base configuration, so resuming
    // onto a reconfigured drive cannot silently splice stale rows.
    return hashHex(toJson(spec).dump() + '\n' + spec.base.summary());
}

SweepCheckpoint::SweepCheckpoint(std::string path, const SweepSpec &owner)
    : journalPath(std::move(path)), fp(fingerprint(owner)),
      specJson(toJson(owner)), spec(owner)
{
    results.resize(spec.size());
    present.assign(spec.size(), 0);
    load();
}

SweepCheckpoint::~SweepCheckpoint()
{
    if (out)
        std::fclose(out);
}

bool
SweepCheckpoint::has(std::size_t index) const
{
    return index < present.size() && present[index];
}

const SimResult &
SweepCheckpoint::cached(std::size_t index) const
{
    AERO_CHECK(has(index), "no journaled result at index ", index);
    return results[index];
}

void
SweepCheckpoint::load()
{
    std::string text;
    {
        std::ifstream in(journalPath, std::ios::binary);
        if (!in) {
            // No journal yet: start one.
            openForAppend(0, /*writeHeader=*/true);
            return;
        }
        std::ostringstream content;
        content << in.rdbuf();
        if (in.bad())
            AERO_FATAL("failed reading checkpoint '", journalPath, "'");
        text = content.str();
    }

    // Walk the journal line by line. goodBytes tracks the end of the
    // last intact record so a torn tail can be truncated away before
    // new records are appended after it.
    std::uint64_t goodBytes = 0;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool terminated = end != std::string::npos;
        if (!terminated)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        const std::size_t next = terminated ? end + 1 : end;
        const bool isLast = next >= text.size();
        lineNo += 1;

        Json row;
        Json::ParseError err;
        if (line.empty() || !Json::parse(line, &row, &err)) {
            // Torn-write tolerance covers the final *record* only. A
            // header that does not parse means this is not a journal
            // at all — truncating here would destroy whatever file the
            // caller pointed us at by mistake.
            if (isLast && sawHeader) {
                AERO_WARN("checkpoint '", journalPath,
                          "': dropping torn record on line ", lineNo);
                break;
            }
            AERO_FATAL("checkpoint '", journalPath, "' is ",
                       sawHeader ? "corrupt" : "not a sweep journal",
                       ": line ", lineNo, ": ",
                       line.empty() ? "empty record" : err.toString());
        }

        if (!sawHeader) {
            loadHeader(row, lineNo);
            sawHeader = true;
        } else {
            loadRecord(row, lineNo);
        }
        goodBytes = next;
        start = next;
    }

    openForAppend(goodBytes, /*writeHeader=*/!sawHeader);
}

void
SweepCheckpoint::loadHeader(const Json &row, std::size_t lineNo)
{
    const Json *schema = row.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != kSchema) {
        AERO_FATAL("'", journalPath, "' is not an ", kSchema,
                   " journal (line ", lineNo, ")");
    }
    const Json *storedFp = row.find("fingerprint");
    const Json *storedSpec = row.find("spec");
    if (!storedFp || !storedFp->isString() || !storedSpec ||
        !storedSpec->isObject()) {
        AERO_FATAL("checkpoint '", journalPath,
                   "' has a malformed header (line ", lineNo, ")");
    }
    if (storedFp->asString() != fp) {
        const std::string field =
            describeSpecMismatch(*storedSpec, specJson);
        AERO_FATAL("checkpoint '", journalPath, "' was written for a "
                   "different sweep spec (fingerprint ",
                   storedFp->asString(), ", expected ", fp, "): ",
                   field.empty() ? "base drive configuration differs"
                                 : field);
    }
}

void
SweepCheckpoint::loadRecord(const Json &row, std::size_t lineNo)
{
    const Json *recordFp = row.find("fingerprint");
    const Json *result = row.find("result");
    if (!recordFp || !recordFp->isString() || !result ||
        !result->isObject()) {
        AERO_FATAL("checkpoint '", journalPath,
                   "' has a malformed record on line ", lineNo);
    }
    if (recordFp->asString() != fp) {
        AERO_FATAL("checkpoint '", journalPath, "': record on line ",
                   lineNo, " carries fingerprint ", recordFp->asString(),
                   ", expected ", fp,
                   " — refusing to splice rows from a different sweep");
    }
    const SimResult r = simResultFromJson(*result);
    const std::size_t idx = pointIndex(spec, r.point);
    if (!present[idx])
        loadedCount += 1;
    // Duplicate records can only come from journal surgery; last wins,
    // matching what a replaying reader would observe.
    present[idx] = 1;
    results[idx] = r;
}

void
SweepCheckpoint::openForAppend(std::uint64_t keepBytes, bool writeHeader)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(journalPath, ec);
    if (!ec && size > keepBytes) {
        std::filesystem::resize_file(journalPath, keepBytes, ec);
        if (ec) {
            AERO_FATAL("cannot truncate torn tail of '", journalPath,
                       "': ", ec.message());
        }
    }
    out = std::fopen(journalPath.c_str(), "ab");
    if (!out)
        AERO_FATAL("cannot open checkpoint '", journalPath,
                   "' for appending");
    if (writeHeader) {
        Json header = Json::object();
        header["schema"] = kSchema;
        header["fingerprint"] = fp;
        header["spec"] = specJson;
        append(header);
    }
}

void
SweepCheckpoint::append(const Json &row)
{
    const std::string line = row.dump() + '\n';
    if (std::fwrite(line.data(), 1, line.size(), out) != line.size() ||
        std::fflush(out) != 0) {
        AERO_FATAL("failed writing checkpoint '", journalPath, "'");
    }
}

void
SweepCheckpoint::record(const SimResult &result)
{
    const std::size_t idx = pointIndex(spec, result.point);
    Json row = Json::object();
    row["fingerprint"] = fp;
    row["result"] = toJson(result);
    std::lock_guard<std::mutex> lock(writeMutex);
    append(row);
    if (!present[idx])
        loadedCount += 1;
    present[idx] = 1;
    results[idx] = result;
}

} // namespace aero
