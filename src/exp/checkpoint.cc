#include "exp/checkpoint.hh"

#include <algorithm>

#include "common/logging.hh"
#include "erase/scheme_registry.hh"
#include "exp/report.hh"

namespace aero
{

namespace
{

/**
 * Flat expand() index of @p pt on @p spec's grid; fatal when the point
 * does not lie on the grid (cannot happen for a fingerprint-matched
 * journal short of file corruption). Axis doubles compare exactly: the
 * journal round-trips them through the shortest-round-trip serializer.
 */
std::size_t
pointIndex(const SweepSpec &spec, const SimPoint &pt)
{
    const auto axis = [&](const auto &values, const auto &value,
                          const char *name) {
        const auto it =
            std::find(values.begin(), values.end(), value);
        if (it == values.end()) {
            AERO_FATAL("checkpoint record does not lie on the sweep "
                       "grid: no ", name, " axis value matches the "
                       "record (journal corrupt?)");
        }
        return static_cast<std::size_t>(it - values.begin());
    };
    return spec.index(axis(spec.pecs, pt.pec, "pec"),
                      axis(spec.suspensions, pt.suspension, "suspension"),
                      axis(spec.workloads, pt.workload, "workload"),
                      axis(spec.schemes, pt.scheme, "scheme"),
                      axis(spec.mispredictionRates, pt.mispredictionRate,
                           "misprediction-rate"),
                      axis(spec.rberRequirements, pt.rberRequirement,
                           "rber-requirement"),
                      axis(spec.seeds, pt.seed, "seed"),
                      axis(spec.gcPolicies, pt.gcPolicy, "gc-policy"),
                      axis(spec.wearLevels, pt.wearLevel, "wear-level"));
}

} // namespace

Json
SweepCheckpoint::configOf(const SweepSpec &spec)
{
    Json config = toJson(spec);
    config["drive"] = spec.base.summary();
    return config;
}

SweepCheckpoint::SweepCheckpoint(std::string path, const SweepSpec &owner,
                                 std::string campaignName)
    : owned(std::make_unique<CampaignJournal>(std::move(path),
                                              std::move(campaignName),
                                              configOf(owner))),
      journal(owned.get()), prefix(Json::object()), spec(owner)
{
    load();
}

SweepCheckpoint::SweepCheckpoint(std::string path, const SweepSpec &owner,
                                 std::string campaignName,
                                 JournalOptions options)
    : owned(std::make_unique<CampaignJournal>(std::move(path),
                                              std::move(campaignName),
                                              configOf(owner),
                                              std::move(options))),
      journal(owned.get()), prefix(Json::object()), spec(owner)
{
    load();
}

SweepCheckpoint::SweepCheckpoint(CampaignJournal &shared,
                                 const SweepSpec &owner, Json keyPrefix)
    : journal(&shared), prefix(std::move(keyPrefix)), spec(owner)
{
    load();
}

bool
SweepCheckpoint::has(std::size_t index) const
{
    return index < present.size() && present[index];
}

const SimResult &
SweepCheckpoint::cached(std::size_t index) const
{
    AERO_CHECK(has(index), "no journaled result at index ", index);
    return results[index];
}

bool
SweepCheckpoint::tryClaim(const SimPoint &pt)
{
    return journal->tryClaim(keyOf(pt));
}

Json
SweepCheckpoint::keyOf(const SimPoint &pt) const
{
    Json key = prefix;
    Json point = Json::object();
    point["workload"] = pt.workload;
    point["scheme"] = schemeKindName(pt.scheme);
    point["pec"] = pt.pec;
    point["suspension"] = suspensionModeName(pt.suspension);
    point["misprediction_rate"] = pt.mispredictionRate;
    point["rber_requirement"] = pt.rberRequirement;
    // Off-default only, so pre-PR-8 journals replay against their
    // original keys (see toJson(SimResult) in report.cc).
    if (pt.gcPolicy != "greedy")
        point["gc_policy"] = pt.gcPolicy;
    if (pt.wearLevel != "none")
        point["wear_level"] = pt.wearLevel;
    point["seed"] = pt.seed;
    key["point"] = std::move(point);
    return key;
}

void
SweepCheckpoint::load()
{
    results.resize(spec.size());
    present.assign(spec.size(), 0);
    journal->forEachCached([&](const Json &key, const Json &payload) {
        // Records of other stages sharing this journal carry either a
        // different prefix or extra axes; both fail this filter.
        if (!key.isObject() || key.size() != prefix.size() + 1 ||
            !key.contains("point"))
            return;
        for (std::size_t i = 0; i < prefix.size(); ++i) {
            const auto &[name, value] = prefix.member(i);
            const Json *theirs = key.find(name);
            if (!theirs || *theirs != value)
                return;
        }
        const SimResult r = simResultFromJson(payload);
        if (r.point.requests != spec.requests) {
            AERO_FATAL("checkpoint '", journal->path(),
                       "': journaled point ran ", r.point.requests,
                       " requests, the sweep expects ", spec.requests,
                       " — refusing to splice stale rows");
        }
        const std::size_t idx = pointIndex(spec, r.point);
        if (!present[idx])
            loadedCount += 1;
        present[idx] = 1;
        results[idx] = r;
    });
}

void
SweepCheckpoint::record(const SimResult &result)
{
    const std::size_t idx = pointIndex(spec, result.point);
    journal->record(keyOf(result.point), toJson(result));
    // The journal serializes record(); this counter is only read
    // between runs, and the runner's progress callback (our caller) is
    // already serialized by the progress mutex.
    if (!present[idx])
        loadedCount += 1;
    present[idx] = 1;
    results[idx] = result;
}

} // namespace aero
