#include "exp/sweep.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"
#include "erase/scheme_registry.hh"
#include "exp/checkpoint.hh"
#include "ssd/gc.hh"
#include "ssd/wear_level.hh"
#include "workload/presets.hh"

namespace aero
{

namespace detail
{

int
resolvePoolSize(int threads, std::size_t items)
{
    if (threads <= 0)
        threads = sweepThreads();
    if (static_cast<std::size_t>(threads) > items)
        threads = static_cast<int>(items);
    return threads < 1 ? 1 : threads;
}

} // namespace detail

int
sweepThreads()
{
    if (const char *env = std::getenv("AERO_SWEEP_THREADS")) {
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(env, &end, 10);
        if (*env == '\0' || end == nullptr || *end != '\0' ||
            errno == ERANGE || v <= 0) {
            AERO_FATAL("AERO_SWEEP_THREADS must be a positive integer, "
                       "got '", env, "'");
        }
        return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::size_t
SweepSpec::size() const
{
    return pecs.size() * suspensions.size() * workloads.size() *
           schemes.size() * mispredictionRates.size() *
           rberRequirements.size() * gcPolicies.size() *
           wearLevels.size() * sloPolicies.size() * seeds.size();
}

std::vector<SimPoint>
SweepSpec::expand() const
{
    std::vector<SimPoint> points;
    points.reserve(size());
    for (const double pec : pecs) {
        for (const auto susp : suspensions) {
            for (const auto &wl : workloads) {
                for (const auto scheme : schemes) {
                    for (const double mis : mispredictionRates) {
                        for (const int rber : rberRequirements) {
                            for (const auto &gc : gcPolicies) {
                                for (const auto &wear : wearLevels) {
                                  for (const auto &slo : sloPolicies) {
                                    for (const auto seed : seeds) {
                                        SimPoint pt;
                                        pt.workload = wl;
                                        pt.scheme = scheme;
                                        pt.pec = pec;
                                        pt.suspension = susp;
                                        pt.mispredictionRate = mis;
                                        pt.rberRequirement = rber;
                                        pt.gcPolicy = gc;
                                        pt.wearLevel = wear;
                                        pt.sloPolicy = slo;
                                        pt.requests = requests;
                                        pt.seed = seed;
                                        points.push_back(pt);
                                    }
                                  }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return points;
}

std::size_t
SweepSpec::index(std::size_t pec, std::size_t susp, std::size_t wl,
                 std::size_t scheme, std::size_t mis, std::size_t rber,
                 std::size_t seed, std::size_t gc, std::size_t wear,
                 std::size_t slo) const
{
    AERO_CHECK(pec < pecs.size() && susp < suspensions.size() &&
                   wl < workloads.size() && scheme < schemes.size() &&
                   mis < mispredictionRates.size() &&
                   rber < rberRequirements.size() &&
                   gc < gcPolicies.size() && wear < wearLevels.size() &&
                   slo < sloPolicies.size() && seed < seeds.size(),
               "sweep axis index out of range");
    std::size_t idx = pec;
    idx = idx * suspensions.size() + susp;
    idx = idx * workloads.size() + wl;
    idx = idx * schemes.size() + scheme;
    idx = idx * mispredictionRates.size() + mis;
    idx = idx * rberRequirements.size() + rber;
    idx = idx * gcPolicies.size() + gc;
    idx = idx * wearLevels.size() + wear;
    idx = idx * sloPolicies.size() + slo;
    idx = idx * seeds.size() + seed;
    return idx;
}

SweepBuilder &
SweepBuilder::workload(const std::string &name)
{
    spec.workloads = {name};
    return *this;
}

SweepBuilder &
SweepBuilder::workloads(const std::vector<std::string> &names)
{
    spec.workloads = names;
    return *this;
}

SweepBuilder &
SweepBuilder::allTable3Workloads()
{
    spec.workloads.clear();
    for (const auto &w : table3Workloads())
        spec.workloads.push_back(w.name);
    return *this;
}

SweepBuilder &
SweepBuilder::scheme(SchemeKind kind)
{
    spec.schemes = {kind};
    return *this;
}

SweepBuilder &
SweepBuilder::schemes(const std::vector<SchemeKind> &kinds)
{
    spec.schemes = kinds;
    return *this;
}

SweepBuilder &
SweepBuilder::schemeNames(const std::vector<std::string> &names)
{
    spec.schemes.clear();
    for (const auto &name : names)
        spec.schemes.push_back(schemeKindFromName(name));
    return *this;
}

SweepBuilder &
SweepBuilder::allSchemes()
{
    spec.schemes = aero::allSchemes();
    return *this;
}

SweepBuilder &
SweepBuilder::pec(double pec)
{
    spec.pecs = {pec};
    return *this;
}

SweepBuilder &
SweepBuilder::pecs(const std::vector<double> &pecs)
{
    spec.pecs = pecs;
    return *this;
}

SweepBuilder &
SweepBuilder::paperPecs()
{
    spec.pecs = paperPecPoints();
    return *this;
}

SweepBuilder &
SweepBuilder::suspension(SuspensionMode mode)
{
    spec.suspensions = {mode};
    return *this;
}

SweepBuilder &
SweepBuilder::suspensions(const std::vector<SuspensionMode> &modes)
{
    spec.suspensions = modes;
    return *this;
}

SweepBuilder &
SweepBuilder::mispredictionRate(double rate)
{
    spec.mispredictionRates = {rate};
    return *this;
}

SweepBuilder &
SweepBuilder::mispredictionRates(const std::vector<double> &rates)
{
    spec.mispredictionRates = rates;
    return *this;
}

SweepBuilder &
SweepBuilder::rberRequirement(int bits)
{
    spec.rberRequirements = {bits};
    return *this;
}

SweepBuilder &
SweepBuilder::rberRequirements(const std::vector<int> &bits)
{
    spec.rberRequirements = bits;
    return *this;
}

SweepBuilder &
SweepBuilder::gcPolicy(const std::string &name)
{
    spec.gcPolicies = {name};
    return *this;
}

SweepBuilder &
SweepBuilder::gcPolicies(const std::vector<std::string> &names)
{
    spec.gcPolicies = names;
    return *this;
}

SweepBuilder &
SweepBuilder::wearLevel(const std::string &name)
{
    spec.wearLevels = {name};
    return *this;
}

SweepBuilder &
SweepBuilder::wearLevels(const std::vector<std::string> &names)
{
    spec.wearLevels = names;
    return *this;
}

SweepBuilder &
SweepBuilder::sloPolicy(const std::string &name)
{
    spec.sloPolicies = {name};
    return *this;
}

SweepBuilder &
SweepBuilder::sloPolicies(const std::vector<std::string> &names)
{
    spec.sloPolicies = names;
    return *this;
}

SweepBuilder &
SweepBuilder::seed(std::uint64_t seed)
{
    spec.seeds = {seed};
    return *this;
}

SweepBuilder &
SweepBuilder::seeds(const std::vector<std::uint64_t> &seeds)
{
    spec.seeds = seeds;
    return *this;
}

SweepBuilder &
SweepBuilder::repeats(int n, std::uint64_t base, std::uint64_t stride)
{
    AERO_CHECK(n > 0, "repeats() needs n > 0");
    spec.seeds.clear();
    for (int i = 0; i < n; ++i)
        spec.seeds.push_back(base + stride * static_cast<std::uint64_t>(i));
    return *this;
}

SweepBuilder &
SweepBuilder::requests(std::uint64_t n)
{
    spec.requests = n;
    return *this;
}

SweepBuilder &
SweepBuilder::baseConfig(const SsdConfig &cfg)
{
    spec.base = cfg;
    return *this;
}

SweepSpec
SweepBuilder::build() const
{
    if (spec.workloads.empty())
        AERO_FATAL("sweep has no workloads");
    if (spec.schemes.empty())
        AERO_FATAL("sweep has no schemes");
    if (spec.pecs.empty())
        AERO_FATAL("sweep has no PEC points");
    if (spec.suspensions.empty())
        AERO_FATAL("sweep has no suspension modes");
    if (spec.mispredictionRates.empty())
        AERO_FATAL("sweep has no misprediction rates");
    if (spec.rberRequirements.empty())
        AERO_FATAL("sweep has no RBER requirements");
    if (spec.gcPolicies.empty())
        AERO_FATAL("sweep has no GC policies");
    if (spec.wearLevels.empty())
        AERO_FATAL("sweep has no wear-leveling policies");
    if (spec.sloPolicies.empty())
        AERO_FATAL("sweep has no SLO policies");
    if (spec.seeds.empty())
        AERO_FATAL("sweep has no seeds");
    if (spec.requests == 0)
        AERO_FATAL("sweep has zero requests per point");
    // Fail on a typo'd workload before hours of simulation, not after.
    for (const auto &name : spec.workloads)
        (void)workloadByName(name);
    // Same for typo'd policy names: both registries are fatal on unknown.
    for (const auto &name : spec.gcPolicies)
        (void)makeGcPolicy(name);
    for (const auto &name : spec.wearLevels)
        (void)makeWearLevelPolicy(name);
    for (const auto &name : spec.sloPolicies)
        (void)sloPolicyFromName(name);
    return spec;
}

SweepRunner::SweepRunner(int threads)
    : poolSize(threads <= 0 ? sweepThreads() : threads)
{
}

std::vector<SimResult>
SweepRunner::run(const SweepSpec &spec, const Progress &progress) const
{
    return run(spec.expand(), spec.base, progress);
}

std::vector<SimResult>
SweepRunner::run(const SweepSpec &spec, SweepCheckpoint &checkpoint,
                 const Progress &progress, int shardIndex,
                 int shardCount) const
{
    AERO_CHECK(shardCount >= 1 && shardIndex >= 0 &&
                   shardIndex < shardCount,
               "sweep shard must satisfy 0 <= index < count, got ",
               shardIndex, "/", shardCount);
    const auto points = spec.expand();
    std::vector<SimResult> results(points.size());
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (checkpoint.has(i)) {
            results[i] = checkpoint.cached(i);
        } else if (i % static_cast<std::size_t>(shardCount) ==
                   static_cast<std::size_t>(shardIndex)) {
            pending.push_back(i);
        }
    }
    if (pending.empty())
        return results;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;  // guarded by progressMutex
    std::mutex progressMutex;
    const auto worker = [&] {
        for (std::size_t k; (k = next.fetch_add(1)) < pending.size();) {
            const std::size_t i = pending[k];
            // Claim before simulating: a point a live sibling worker
            // owns would be wasted work (the journal merge keeps one
            // record anyway, so correctness never depends on this).
            if (!checkpoint.tryClaim(points[i]))
                continue;
            results[i] = runSimPoint(points[i], spec.base);
            // Journal before reporting progress: once a point has been
            // announced, a crash must not lose it. Counting inside the
            // lock keeps reported progress moving forward only.
            std::lock_guard<std::mutex> lock(progressMutex);
            checkpoint.record(results[i]);
            if (progress)
                progress(++done, pending.size(), results[i]);
        }
    };
    const int pool = detail::resolvePoolSize(poolSize, pending.size());
    if (pool <= 1) {
        worker();
        return results;
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(pool));
    for (int t = 0; t < pool; ++t)
        workers.emplace_back(worker);
    for (auto &w : workers)
        w.join();
    return results;
}

std::vector<SimResult>
SweepRunner::run(const std::vector<SimPoint> &points, const SsdConfig &base,
                 const Progress &progress) const
{
    std::vector<SimResult> results(points.size());
    if (points.empty())
        return results;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;  // guarded by progressMutex
    std::mutex progressMutex;
    const auto worker = [&] {
        for (std::size_t i; (i = next.fetch_add(1)) < points.size();) {
            results[i] = runSimPoint(points[i], base);
            if (progress) {
                // Count inside the lock so reported progress only
                // moves forward.
                std::lock_guard<std::mutex> lock(progressMutex);
                progress(++done, points.size(), results[i]);
            }
        }
    };
    const int pool = detail::resolvePoolSize(poolSize, points.size());
    if (pool <= 1) {
        worker();
        return results;
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(pool));
    for (int t = 0; t < pool; ++t)
        workers.emplace_back(worker);
    for (auto &w : workers)
        w.join();
    return results;
}

SweepRunner::Progress
stderrProgress()
{
    return [](std::size_t done, std::size_t total, const SimResult &latest) {
        std::fprintf(stderr, "  [%zu/%zu] %s %s pec=%.0f seed=%llu\n", done,
                     total, latest.point.workload.c_str(),
                     schemeKindName(latest.point.scheme), latest.point.pec,
                     static_cast<unsigned long long>(latest.point.seed));
    };
}

} // namespace aero
