/**
 * @file
 * A minimal JSON value type with a serializer and a strict parser.
 *
 * Objects are insertion-ordered, so emitted keys are stable across runs
 * and `parse(dump(x)) == x` round-trips preserve key order. The type is
 * the backbone of every experiment artifact (`aero-sweep/1`,
 * `aero-devchar/1`) and of the `aero_diff` regression gate that compares
 * two such artifacts.
 *
 * Non-finite policy: JSON has no NaN/inf tokens. dump() serializes any
 * non-finite double as `null` (never a bare `nan`/`inf` token), and the
 * parser consequently reads such cells back as null. Consumers that need
 * to distinguish "NaN" from "absent" must encode it themselves (e.g. as a
 * string); the diff engine treats null-vs-null as equal and null-vs-number
 * as a mismatch.
 */

#ifndef AERO_EXP_JSON_HH
#define AERO_EXP_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace aero
{

/** JSON document node: null, bool, number, string, array, or object. */
class Json
{
  public:
    /**
     * Integer-valued numbers keep their exact 64-bit representation
     * (Integer/Unsigned) instead of collapsing to double, so `seed` and
     * `erases` columns survive round-trips bit-exactly.
     */
    enum class Type
    {
        Null, Bool, Number, Integer, Unsigned, String, Array, Object
    };

    Json() = default;  // null
    Json(bool b) : kind(Type::Bool), boolean(b) {}
    Json(double d) : kind(Type::Number), number(d) {}
    Json(int i) : Json(static_cast<std::int64_t>(i)) {}
    Json(std::int64_t i) : kind(Type::Integer), integer(i) {}
    Json(std::uint64_t u) : kind(Type::Unsigned), uinteger(u) {}
    Json(std::string s) : kind(Type::String), text(std::move(s)) {}
    Json(const char *s) : Json(std::string(s)) {}

    static Json object();
    static Json array();

    /** Object access: inserts a null member on first use of a key. */
    Json &operator[](const std::string &key);

    /** Array append. */
    Json &push(Json value);

    Type type() const { return kind; }
    bool isNull() const { return kind == Type::Null; }
    bool isBool() const { return kind == Type::Bool; }
    bool isString() const { return kind == Type::String; }
    bool isArray() const { return kind == Type::Array; }
    bool isObject() const { return kind == Type::Object; }
    /** Number, Integer, or Unsigned. */
    bool isNumeric() const;
    /** Integer or Unsigned (exact 64-bit payload, not a double). */
    bool isIntegral() const;

    /** @name Checked accessors (fatal on a type mismatch) */
    /** @{ */
    bool asBool() const;
    /** Numeric value as double (any of the three numeric types). */
    double asDouble() const;
    std::int64_t asInt64() const;
    std::uint64_t asUint64() const;
    const std::string &asString() const;
    /** @} */

    /** Array length or object member count (0 for scalars). */
    std::size_t size() const;
    /** Array element (fatal when out of range or not an array). */
    const Json &at(std::size_t i) const;
    /** Object member by position, in insertion order. */
    const std::pair<std::string, Json> &member(std::size_t i) const;
    /** Object member by key; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;
    /** Object member by key; fatal when absent (for strict decoders). */
    const Json &get(const std::string &key) const;
    bool contains(const std::string &key) const { return find(key); }

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Parse failure: 1-based line/column of the offending character. */
    struct ParseError
    {
        std::string message;
        std::size_t line = 0;
        std::size_t column = 0;
        std::size_t offset = 0;

        /** "line L, column C: message" (for logs and CLI output). */
        std::string toString() const;
    };

    /**
     * Strict RFC 8259 parse of a complete document. Returns false and
     * fills @p err (when given) on malformed input; @p out is left null.
     * Duplicate object keys keep the last value.
     */
    static bool parse(const std::string &text, Json *out,
                      ParseError *err = nullptr);

    /** parse() or die with the error position (@p what names the input). */
    static Json parseOrDie(const std::string &text,
                           const std::string &what = "JSON");

    /**
     * Deep structural equality. Numeric nodes compare by value across
     * Integer/Unsigned/Number (so a round-tripped uint64 equals the
     * Integer the parser produced); NaN compares unequal to everything,
     * per IEEE. Objects must match in key order as well as content.
     */
    friend bool operator==(const Json &a, const Json &b);
    friend bool operator!=(const Json &a, const Json &b)
    {
        return !(a == b);
    }

  private:
    void write(std::string &out, int indent, int depth) const;

    Type kind = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::int64_t integer = 0;
    std::uint64_t uinteger = 0;
    std::string text;
    std::vector<Json> items;
    std::vector<std::pair<std::string, Json>> memberList;
};

} // namespace aero

#endif // AERO_EXP_JSON_HH
