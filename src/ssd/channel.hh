/**
 * @file
 * Shared channel bus between the chips of one channel.
 *
 * Legacy arbitration keeps the original single-field model: a transfer
 * reserves the bus by advancing `busyUntil`, so contention is folded into
 * closed-form latency arithmetic at issue time (and pre-PR-8 behaviour is
 * reproduced bit for bit).
 *
 * Queued arbitration models the bus as a resource with per-class FIFO
 * grant queues: a chip *requests* the bus for a transfer (or an erase
 * command issue), waits its turn, and is granted by a ChannelGrant event
 * when the previous owner releases. Grants drain strictly by class
 * priority — host reads > host writes > GC copies > erase commands — and
 * FIFO within a class, so host and reclamation traffic genuinely contend
 * and the wait each class suffers is measured into SsdMetrics.
 */

#ifndef AERO_SSD_CHANNEL_HH
#define AERO_SSD_CHANNEL_HH

#include <array>
#include <deque>

#include "sim/event_queue.hh"
#include "ssd/metrics.hh"

namespace aero
{

class ChipAgent;

/** Grant-priority classes of queued arbitration, highest first. */
enum class BusClass : std::uint8_t
{
    HostRead = 0,
    HostWrite = 1,
    GcCopy = 2,
    EraseCmd = 3,
};

constexpr int kBusClasses = 4;

class Channel
{
  public:
    /** Legacy arbitration: end of the last reserved transfer slot. */
    Tick busyUntil = 0;

    /** Wire the queued-arbitration machinery (FTL does this at mount). */
    void init(int index, EventQueue *eq_, SsdMetrics *metrics_);

    int index() const { return idx; }

    /**
     * Queued arbitration: request the bus. Grants immediately when the
     * bus is free, otherwise enqueues; the agent's channelGranted() runs
     * at grant time and returns the tick it releases the bus.
     */
    void request(ChipAgent &agent, BusClass cls);

    /** Nothing owned, nothing waiting? */
    bool quiet() const;

  private:
    friend class EventQueue;  //!< tagged-event dispatch entry point

    struct Waiter
    {
        ChipAgent *agent = nullptr;
        Tick since = 0;
    };

    /** ChannelGrant dispatch target: the bus was released. */
    void onGrantDone();
    void grantTo(ChipAgent &agent, BusClass cls, Tick since);

    std::array<std::deque<Waiter>, kBusClasses> waiters;
    bool owned = false;
    int idx = 0;
    EventQueue *eq = nullptr;
    SsdMetrics *metrics = nullptr;
};

} // namespace aero

#endif // AERO_SSD_CHANNEL_HH
