/**
 * @file
 * Shared channel bus between the chips of one channel.
 *
 * Legacy arbitration keeps the original single-field model: a transfer
 * reserves the bus by advancing `busyUntil`, so contention is folded into
 * closed-form latency arithmetic at issue time (and pre-PR-8 behaviour is
 * reproduced bit for bit).
 *
 * Queued arbitration models the bus as a resource with per-class FIFO
 * grant queues: a chip *requests* the bus for a transfer (or an erase
 * command issue), waits its turn, and is granted by a ChannelGrant event
 * when the previous owner releases. Grants drain strictly by class
 * priority — host reads > host writes > GC copies > erase commands — and
 * FIFO within a class, so host and reclamation traffic genuinely contend
 * and the wait each class suffers is measured into SsdMetrics.
 *
 * With WFQ enabled (SloPolicy::Wfq / ThrottleWfq), the two *host*
 * classes swap their FIFO for start-time fair queuing: each request is
 * tagged at enqueue with its tenant's virtual start time (the later of
 * the channel's virtual clock and the tenant's last finish tag; finish
 * advances by quantum/weight), and the grant picks the waiter with the
 * lowest tag, ties broken by arrival. Class priority is untouched — a
 * queued host read still beats any host write — so WFQ divides the
 * *host* share of the bus by weight while GC copies and erase commands
 * stay strict FIFO below. A single-tenant run produces tags that are
 * monotone in arrival order, making WFQ grant-for-grant identical to
 * the FIFO it replaces.
 */

#ifndef AERO_SSD_CHANNEL_HH
#define AERO_SSD_CHANNEL_HH

#include <array>
#include <deque>

#include "sim/event_queue.hh"
#include "ssd/metrics.hh"

namespace aero
{

class ChipAgent;

/** Grant-priority classes of queued arbitration, highest first. */
enum class BusClass : std::uint8_t
{
    HostRead = 0,
    HostWrite = 1,
    GcCopy = 2,
    EraseCmd = 3,
};

constexpr int kBusClasses = 4;

/** WFQ virtual-time quantum: finish tags advance by kWfqQuantum/weight
 *  per grant, so a weight-w tenant accrues virtual time 1/w as fast. */
constexpr std::uint64_t kWfqQuantum = 1ULL << 20;

class Channel
{
  public:
    /** Legacy arbitration: end of the last reserved transfer slot. */
    Tick busyUntil = 0;

    /** Wire the queued-arbitration machinery (FTL does this at mount). */
    void init(int index, EventQueue *eq_, SsdMetrics *metrics_);

    int index() const { return idx; }

    /**
     * Queued arbitration: request the bus. Grants immediately when the
     * bus is free, otherwise enqueues; the agent's channelGranted() runs
     * at grant time and returns the tick it releases the bus. `tenant`
     * only matters under WFQ and only for the host classes.
     */
    void request(ChipAgent &agent, BusClass cls, TenantId tenant = 0);

    /**
     * Turn on weighted-fair queuing for the host classes. `weights` is
     * indexed by tenant; tenants beyond its end weigh 1. Must be set
     * before the first request().
     */
    void enableWfq(std::vector<std::uint32_t> weights);

    bool wfqEnabled() const { return wfq; }

    /** Nothing owned, nothing waiting? */
    bool quiet() const;

  private:
    friend class EventQueue;  //!< tagged-event dispatch entry point

    struct Waiter
    {
        ChipAgent *agent = nullptr;
        Tick since = 0;
        std::uint64_t tag = 0;   //!< WFQ virtual start time
        std::uint64_t seq = 0;   //!< arrival order; breaks tag ties
        TenantId tenant = 0;
    };

    /** ChannelGrant dispatch target: the bus was released. */
    void onGrantDone();
    void grantTo(const Waiter &w, BusClass cls);

    std::uint64_t weightOf(TenantId tenant) const;

    std::array<std::deque<Waiter>, kBusClasses> waiters;
    bool owned = false;
    int idx = 0;
    EventQueue *eq = nullptr;
    SsdMetrics *metrics = nullptr;

    /** @name WFQ state (SFQ: Goyal et al.) */
    /** @{ */
    bool wfq = false;
    std::vector<std::uint32_t> weights;    //!< per tenant; default 1
    std::vector<std::uint64_t> finishTag;  //!< per tenant, lazily grown
    std::uint64_t vtime = 0;               //!< virtual clock (host classes)
    std::uint64_t nextWaiterSeq = 0;
    /** @} */
};

} // namespace aero

#endif // AERO_SSD_CHANNEL_HH
