/**
 * @file
 * Greedy garbage collection (the paper's Table 2 GC policy [77]): the
 * victim is the full block with the fewest valid pages in the plane that
 * fell below the free-block watermark. The migration/erase orchestration
 * lives in the FTL; this module holds the policy and job bookkeeping.
 */

#ifndef AERO_SSD_GC_HH
#define AERO_SSD_GC_HH

#include "ssd/block_manager.hh"
#include "ssd/mapping.hh"

namespace aero
{

/** One in-flight GC operation on a plane. */
struct GcJob
{
    int chip = -1;
    int plane = -1;
    BlockId victim = kInvalidBlock;
    int nextPage = 0;       //!< scan cursor over the victim's pages
    int migrated = 0;       //!< pages actually copied
    bool eraseIssued = false;
};

class GreedyGcPolicy
{
  public:
    /**
     * Pick the full block with the fewest valid pages.
     * @return kInvalidBlock when the plane has no full blocks.
     */
    static BlockId pickVictim(const PageMapping &mapping,
                              const BlockManager &blocks, int chip,
                              int plane);
};

} // namespace aero

#endif // AERO_SSD_GC_HH
