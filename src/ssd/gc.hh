/**
 * @file
 * Garbage-collection victim selection behind a scoring-policy interface.
 *
 * Since PR 8 a policy no longer scans the plane itself: the LineManager
 * (ssd/line_manager.hh) keeps every Full block in a per-plane priority
 * queue keyed by the policy's score and updates it in O(log n) on each
 * page invalidation, so victim selection is a heap peek instead of the
 * old O(blocks) rescan. Policies therefore only define an ordering:
 * score() (lower is better) plus a tieBreak() key, with the block id as
 * the final tie-breaker so the order is total and selection is
 * deterministic.
 *
 * Registered policies:
 *  - greedy:       fewest valid pages (the paper's Table 2 policy [77]);
 *                  ties fall to the lowest block id, reproducing the
 *                  pre-PR-8 scan exactly.
 *  - cost-benefit: migration cost over reclaimed space, weighted by the
 *                  block's erase count so worn blocks are cycled less
 *                  (Kawaguchi-style, with wear standing in for age);
 *                  ties prefer the oldest fill.
 *  - fifo-log:     strict log order — the block whose current fill was
 *                  opened first, independent of valid-page count. The
 *                  old "fifo" policy used the numeric block id, which
 *                  breaks down as soon as an erased block is refilled;
 *                  the allocation stamp survives reuse cycles.
 *
 * The migration/erase orchestration lives in the FTL; this module holds
 * the policies and job bookkeeping.
 */

#ifndef AERO_SSD_GC_HH
#define AERO_SSD_GC_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace aero
{

/** One in-flight GC (or wear-leveling) operation on a plane. */
struct GcJob
{
    int chip = -1;
    int plane = -1;
    BlockId victim = kInvalidBlock;
    int nextPage = 0;       //!< scan cursor over the victim's pages
    int migrated = 0;       //!< pages actually copied
    bool eraseIssued = false;
    bool wearLevel = false; //!< cold-data relocation, not reclamation
};

/** Everything a policy may score a Full block by. */
struct GcLineInfo
{
    BlockId block = kInvalidBlock;
    int validPages = 0;
    int pagesPerBlock = 0;
    std::uint64_t openSeq = 0;     //!< drive-wide stamp of the current fill
    std::uint64_t eraseCount = 0;  //!< completed erases of this block
};

/**
 * Victim-selection policy: a deterministic ordering over Full blocks.
 * Lower (score, tieBreak, block) wins.
 */
class GcPolicy
{
  public:
    virtual ~GcPolicy() = default;

    /** Victim badness; lower is better. Must be a pure function. */
    virtual double score(const GcLineInfo &line) const = 0;

    /** Secondary key when scores tie exactly. */
    virtual std::uint64_t
    tieBreak(const GcLineInfo &line) const
    {
        return line.openSeq;
    }

    /** Stable registry name ("greedy", "cost-benefit", "fifo-log"). */
    virtual const char *name() const = 0;
};

/** Fewest valid pages; ties fall to the lowest block id. */
class GreedyGcPolicy : public GcPolicy
{
  public:
    double
    score(const GcLineInfo &line) const override
    {
        return static_cast<double>(line.validPages);
    }

    std::uint64_t
    tieBreak(const GcLineInfo &line) const override
    {
        return line.block;
    }

    const char *name() const override { return "greedy"; }
};

/** Wear-weighted cost/benefit; ties prefer the oldest fill. */
class CostBenefitGcPolicy : public GcPolicy
{
  public:
    double
    score(const GcLineInfo &line) const override
    {
        // cost (pages to migrate) over benefit (pages reclaimed, +1 so a
        // fully-valid block stays finite), scaled up with wear so heavily
        // cycled blocks become unattractive victims.
        const double cost = static_cast<double>(line.validPages);
        const double benefit =
            static_cast<double>(line.pagesPerBlock - line.validPages + 1);
        const double wear = 1.0 + static_cast<double>(line.eraseCount);
        return cost / benefit * wear;
    }

    const char *name() const override { return "cost-benefit"; }
};

/** Oldest fill first (true log order, robust to block reuse). */
class FifoLogGcPolicy : public GcPolicy
{
  public:
    double
    score(const GcLineInfo &line) const override
    {
        return static_cast<double>(line.openSeq);
    }

    std::uint64_t
    tieBreak(const GcLineInfo &line) const override
    {
        return line.block;
    }

    const char *name() const override { return "fifo-log"; }
};

/**
 * Instantiate a policy by registry name; fatal listing valid names.
 * "fifo" is accepted as an alias for "fifo-log".
 */
std::unique_ptr<GcPolicy> makeGcPolicy(const std::string &name);

/** Comma-separated list of registered policy names. */
const char *gcPolicyNames();

} // namespace aero

#endif // AERO_SSD_GC_HH
