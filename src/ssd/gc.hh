/**
 * @file
 * Garbage-collection victim selection behind a policy interface. The
 * default GreedyGcPolicy is the paper's Table 2 GC policy [77]: the
 * victim is the full block with the fewest valid pages in the plane that
 * fell below the free-block watermark. The migration/erase orchestration
 * lives in the FTL; this module holds the policies and job bookkeeping.
 */

#ifndef AERO_SSD_GC_HH
#define AERO_SSD_GC_HH

#include <memory>
#include <string>

#include "ssd/block_manager.hh"
#include "ssd/mapping.hh"

namespace aero
{

/** One in-flight GC operation on a plane. */
struct GcJob
{
    int chip = -1;
    int plane = -1;
    BlockId victim = kInvalidBlock;
    int nextPage = 0;       //!< scan cursor over the victim's pages
    int migrated = 0;       //!< pages actually copied
    bool eraseIssued = false;
};

/** Victim-selection policy. Implementations must be deterministic. */
class GcPolicy
{
  public:
    virtual ~GcPolicy() = default;

    /**
     * Pick the victim block among the plane's full blocks.
     * @return kInvalidBlock when the plane has no full blocks.
     */
    virtual BlockId pickVictim(const PageMapping &mapping,
                               const BlockManager &blocks, int chip,
                               int plane) const = 0;

    /** Stable registry name ("greedy", "fifo", ...). */
    virtual const char *name() const = 0;
};

/** Full block with the fewest valid pages; first-lowest wins ties. */
class GreedyGcPolicy : public GcPolicy
{
  public:
    BlockId pickVictim(const PageMapping &mapping,
                       const BlockManager &blocks, int chip,
                       int plane) const override;
    const char *name() const override { return "greedy"; }
};

/**
 * Oldest full block (lowest block id), regardless of valid-page count.
 * A deliberately naive baseline for write-amplification comparisons.
 */
class FifoGcPolicy : public GcPolicy
{
  public:
    BlockId pickVictim(const PageMapping &mapping,
                       const BlockManager &blocks, int chip,
                       int plane) const override;
    const char *name() const override { return "fifo"; }
};

/** Instantiate a policy by registry name; fatal listing valid names. */
std::unique_ptr<GcPolicy> makeGcPolicy(const std::string &name);

/** Comma-separated list of registered policy names. */
const char *gcPolicyNames();

} // namespace aero

#endif // AERO_SSD_GC_HH
