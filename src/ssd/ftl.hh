/**
 * @file
 * The flash translation layer: page-level mapping, round-robin write
 * allocation across planes, greedy GC with watermark triggering, stalled
 * write handling, and request-completion accounting. Extends the
 * conventional page-level FTL exactly where the paper's AERO-FTL does: the
 * erase path is delegated to a pluggable EraseScheme per chip.
 */

#ifndef AERO_SSD_FTL_HH
#define AERO_SSD_FTL_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ssd/block_manager.hh"
#include "ssd/chip_agent.hh"
#include "ssd/line_manager.hh"
#include "ssd/mapping.hh"
#include "ssd/wear_level.hh"
#include "workload/trace.hh"

namespace aero
{

class Ftl : public FtlCallbacks
{
  public:
    Ftl(const SsdConfig &cfg, EventQueue &eq);
    ~Ftl() override;

    /** Age every block to the configured initial PEC (conditioning). */
    void preAge(double pec);

    /** Map and (functionally) program the logical space, without timing. */
    void prefill();

    /**
     * Steady-state preconditioning: `overwrites` random logical pages are
     * rewritten functionally (no timing), with inline functional GC, so
     * the drive starts dirty and at the GC watermark.
     */
    void warmup(std::uint64_t overwrites);

    std::uint64_t warmupErases() const { return warmupEraseCount; }

    /** Submit one trace record at the current simulation time. */
    void submit(const TraceRecord &rec);

    /** All submitted requests completed? */
    bool drained() const { return inflight.empty() && !anyGcActive(); }

    SsdMetrics &metrics() { return stats; }
    const SsdConfig &config() const { return cfg; }
    NandChip &chipAt(int i);
    EraseScheme &schemeAt(int i);
    ChipAgent &agentAt(int i);
    const PageMapping &pageMapping() const { return mapping; }
    const BlockManager &blockManager() const { return blocks; }
    const LineManager &lineManager() const { return *lines; }

    /** @name FtlCallbacks */
    /** @{ */
    void onPageOpDone(const PageOp &op) override;
    void onEraseDone(int chip, BlockId block, const EraseOutcome &outcome,
                     GcJob *job) override;
    bool eraseUrgent(int chip, BlockId block) override;
    /** @} */

  private:
    friend class EventQueue;  //!< tagged-event dispatch entry point

    struct InflightRequest
    {
        IoOp op;
        Tick arrival;
        std::uint32_t remaining;
        TenantId tenant;
    };

    struct StalledWrite
    {
        Lpn lpn;
        std::uint64_t requestId;
        TenantId tenant;
    };

    /** Validate the drive geometry before any member sizes off it. */
    static SsdConfig validated(SsdConfig cfg);

    void submitReadPage(Lpn lpn, std::uint64_t request_id, TenantId tenant,
                        bool burst = false);
    /** Dispatch every agent the current read burst touched, in order. */
    void flushReadBurst();
    /** @return false if no plane had space (write stalled). */
    bool submitWritePage(Lpn lpn, std::uint64_t request_id, TenantId tenant);
    /** Map lpn -> ppn and mirror both deltas into the line manager. */
    void remap(Lpn lpn, Ppn ppn);
    void functionalGc(int chip, int plane);
    void issueGcWrite(GcJob *job, Lpn lpn);
    void completeRequestPage(std::uint64_t request_id);
    /** Kernel dispatch target: host-overhead completion fired. */
    void onHostPageDone(std::uint64_t request_id);
    void maybeStartGc(int chip, int plane);
    void maybeStartWearLevel(int chip, int plane);
    void gcStep(GcJob *job);
    void retryStalledWrites();
    bool anyGcActive() const { return activeGcJobs > 0; }
    std::size_t planeKey(int chip, int plane) const;

    SsdConfig cfg;
    EventQueue &eq;
    std::vector<NandChip> chips;
    std::vector<std::unique_ptr<EraseScheme>> schemes;
    std::vector<Channel> channels;
    std::vector<std::unique_ptr<ChipAgent>> agents;
    PageMapping mapping;
    BlockManager blocks;
    SsdMetrics stats;
    std::unique_ptr<GcPolicy> gcPolicy;
    std::unique_ptr<WearLevelPolicy> wlPolicy;
    std::unique_ptr<LineManager> lines;

    /** @name Read-burst admission scratch (see flushReadBurst) */
    /** @{ */
    std::vector<int> burstChips;     //!< chips touched, in first-touch order
    std::vector<char> burstTouched;  //!< per-chip membership flag
    /** @} */

    std::unordered_map<std::uint64_t, InflightRequest> inflight;
    std::uint64_t nextRequestId = 1;
    std::deque<StalledWrite> stalledWrites;

    std::vector<std::unique_ptr<GcJob>> gcJobs;   //!< slot per plane
    int activeGcJobs = 0;
    int writePointer = 0;   //!< round-robin (chip, plane) cursor
    std::uint64_t warmupEraseCount = 0;
};

} // namespace aero

#endif // AERO_SSD_FTL_HH
