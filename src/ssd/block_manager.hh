/**
 * @file
 * Physical block allocation: per-(chip, plane) free pools and open write
 * points. Blocks move Free -> Open -> Full -> (GC erase) -> Free.
 */

#ifndef AERO_SSD_BLOCK_MANAGER_HH
#define AERO_SSD_BLOCK_MANAGER_HH

#include <vector>

#include "ssd/config.hh"

namespace aero
{

enum class BlockState : std::uint8_t { Free, Open, Full };

class BlockManager
{
  public:
    explicit BlockManager(const SsdConfig &cfg);

    int planeOf(BlockId block) const
    {
        return static_cast<int>(block) / blocksPerPlane;
    }

    int freeBlocks(int chip, int plane) const;
    int minFreeBlocks(int chip) const;

    BlockState state(int chip, BlockId block) const;

    /**
     * Allocate the next page of the open block of (chip, plane), opening
     * a fresh block from the free pool when needed. One free block per
     * plane is reserved for GC destinations: user allocations cannot take
     * the last free block (for_gc = false), which guarantees GC always
     * finds a relocation target and the drive cannot wedge.
     * @return true and fills block/page, or false if the plane is out of
     *         space (caller must wait for GC).
     */
    bool allocate(int chip, int plane, BlockId &block, int &page,
                  bool for_gc = false);

    /** Free blocks a user allocation may still open. */
    static constexpr int kGcReservedBlocks = 1;

    /** Pages already allocated in the open block (block must be Open). */
    int openPageCursor(int chip, int plane) const;

    /** Return an erased block to the free pool. */
    void onBlockErased(int chip, BlockId block);

    /** Full blocks of a plane (GC victim candidates). */
    std::vector<BlockId> fullBlocks(int chip, int plane) const;

    int chips() const { return numChips; }
    int planes() const { return planesPerChip; }

  private:
    struct Plane
    {
        std::vector<BlockId> freeList;
        BlockId open = kInvalidBlock;       //!< user write point
        int cursor = 0;
        BlockId openGc = kInvalidBlock;     //!< GC relocation write point
        int cursorGc = 0;
    };

    std::size_t planeIndex(int chip, int plane) const;
    std::size_t blockIndex(int chip, BlockId block) const;

    int numChips;
    int planesPerChip;
    int blocksPerPlane;
    int pagesPerBlock;
    std::vector<Plane> planesState;
    std::vector<BlockState> blockStates;
};

} // namespace aero

#endif // AERO_SSD_BLOCK_MANAGER_HH
