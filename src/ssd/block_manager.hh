/**
 * @file
 * Physical block allocation: per-(chip, plane) free pools and open write
 * points. Blocks move Free -> Open -> Full -> (GC erase) -> Free.
 *
 * The manager also owns wear accounting (per-block erase counts since
 * mount) and reports structural transitions to an optional LineManager
 * observer so the GC victim heaps stay incremental. Which free block a
 * plane opens next is delegated to an optional WearLevelPolicy; without
 * one, reuse is LIFO exactly as before.
 */

#ifndef AERO_SSD_BLOCK_MANAGER_HH
#define AERO_SSD_BLOCK_MANAGER_HH

#include <vector>

#include "ssd/config.hh"

namespace aero
{

class LineManager;
class WearLevelPolicy;

enum class BlockState : std::uint8_t { Free, Open, Full };

class BlockManager
{
  public:
    explicit BlockManager(const SsdConfig &cfg);

    /** Wire the victim-heap observer (FTL does this once at mount). */
    void setLineManager(LineManager *lines_) { lines = lines_; }

    /** Wire the free-block selection policy (null = LIFO reuse). */
    void setWearPolicy(const WearLevelPolicy *policy) { wearPolicy = policy; }

    int planeOf(BlockId block) const
    {
        return static_cast<int>(block) / blocksPerPlane;
    }

    int freeBlocks(int chip, int plane) const;
    int minFreeBlocks(int chip) const;

    BlockState state(int chip, BlockId block) const;

    /**
     * Allocate the next page of the open block of (chip, plane), opening
     * a fresh block from the free pool when needed. One free block per
     * plane is reserved for GC destinations: user allocations cannot take
     * the last free block (for_gc = false), which guarantees GC always
     * finds a relocation target and the drive cannot wedge.
     * @return true and fills block/page, or false if the plane is out of
     *         space (caller must wait for GC).
     */
    bool allocate(int chip, int plane, BlockId &block, int &page,
                  bool for_gc = false);

    /** Free blocks a user allocation may still open. */
    static constexpr int kGcReservedBlocks = 1;

    /** Pages already allocated in the open block (block must be Open). */
    int openPageCursor(int chip, int plane) const;

    /** Return an erased block to the free pool (bumps its erase count). */
    void onBlockErased(int chip, BlockId block);

    /** Full blocks of a plane (GC victim candidates). */
    std::vector<BlockId> fullBlocks(int chip, int plane) const;

    /** @name Wear accounting (erase cycles since mount) */
    /** @{ */
    std::uint64_t eraseCount(int chip, BlockId block) const;
    std::uint64_t maxEraseCount(int chip, int plane) const;
    std::uint64_t minEraseCount(int chip, int plane) const;
    std::uint64_t totalErases() const { return totalEraseCount; }
    /** @} */

    int chips() const { return numChips; }
    int planes() const { return planesPerChip; }

  private:
    struct Plane
    {
        std::vector<BlockId> freeList;
        BlockId open = kInvalidBlock;       //!< user write point
        int cursor = 0;
        BlockId openGc = kInvalidBlock;     //!< GC relocation write point
        int cursorGc = 0;
    };

    /** Detach one free block per the wear policy (default: the back). */
    BlockId takeFreeBlock(int chip, Plane &ps);

    std::size_t planeIndex(int chip, int plane) const;
    std::size_t blockIndex(int chip, BlockId block) const;

    int numChips;
    int planesPerChip;
    int blocksPerPlane;
    int pagesPerBlock;
    std::vector<Plane> planesState;
    std::vector<BlockState> blockStates;
    std::vector<std::uint64_t> eraseCounts;  //!< per (chip, block)
    std::uint64_t totalEraseCount = 0;
    LineManager *lines = nullptr;
    const WearLevelPolicy *wearPolicy = nullptr;
};

} // namespace aero

#endif // AERO_SSD_BLOCK_MANAGER_HH
