#include "ssd/metrics.hh"

#include <sstream>

namespace aero
{

std::string
SsdMetrics::summary() const
{
    std::ostringstream os;
    os << "reads " << reads << " (avg "
       << readLatency.mean() / static_cast<double>(kUs) << " us, p99.99 "
       << ticksToUs(readLatency.percentile(0.9999)) << " us, p99.9999 "
       << ticksToUs(readLatency.percentile(0.999999)) << " us)\n"
       << "writes " << writes << " (avg "
       << writeLatency.mean() / static_cast<double>(kUs) << " us)\n"
       << "IOPS " << iops() << ", WA " << writeAmplification() << "\n"
       << "erases " << erases << " (avg " << avgEraseLatencyMs()
       << " ms, " << eraseSuspensions << " suspensions), GC "
       << gcInvocations << " jobs / " << gcMigratedPages << " pages\n";
    if (wlInvocations > 0) {
        os << "wear leveling " << wlInvocations << " jobs / "
           << wlMigratedPages << " pages\n";
    }
    if (hostChannelGrants + gcChannelGrants > 0) {
        os << "channel waits: host " << avgHostChannelWaitUs()
           << " us avg, GC " << avgGcChannelWaitUs()
           << " us avg, max util " << maxChannelUtilization() << "\n";
    }
    if (throttleDeferrals > 0) {
        os << "SLO throttle: " << throttleDeferrals
           << " deferrals, " << ticksToMs(throttleDeferredTicks)
           << " ms total parked\n";
    }
    return os.str();
}

} // namespace aero
