#include "ssd/channel.hh"

#include "common/logging.hh"
#include "ssd/chip_agent.hh"

namespace aero
{

void
Channel::init(int index, EventQueue *eq_, SsdMetrics *metrics_)
{
    idx = index;
    eq = eq_;
    metrics = metrics_;
}

bool
Channel::quiet() const
{
    if (owned)
        return false;
    for (const auto &q : waiters) {
        if (!q.empty())
            return false;
    }
    return true;
}

void
Channel::request(ChipAgent &agent, BusClass cls)
{
    AERO_CHECK(eq != nullptr, "channel used before init()");
    if (!owned) {
        grantTo(agent, cls, eq->now());
        return;
    }
    waiters[static_cast<int>(cls)].push_back(Waiter{&agent, eq->now()});
}

void
Channel::grantTo(ChipAgent &agent, BusClass cls, Tick since)
{
    const Tick now = eq->now();
    const Tick wait = now - since;
    switch (cls) {
      case BusClass::HostRead:
      case BusClass::HostWrite:
        metrics->hostChannelWaitTicks += wait;
        metrics->hostChannelGrants += 1;
        break;
      case BusClass::GcCopy:
        metrics->gcChannelWaitTicks += wait;
        metrics->gcChannelGrants += 1;
        break;
      case BusClass::EraseCmd:
        metrics->eraseChannelWaitTicks += wait;
        metrics->eraseChannelGrants += 1;
        break;
    }
    const Tick release = agent.channelGranted();
    AERO_CHECK(release >= now, "channel released before grant");
    if (static_cast<std::size_t>(idx) < metrics->channelBusyTicks.size())
        metrics->channelBusyTicks[idx] += release - now;
    owned = true;
    eq->scheduleChannelGrantAt(release, *this);
}

void
Channel::onGrantDone()
{
    owned = false;
    for (auto &q : waiters) {
        if (q.empty())
            continue;
        const Waiter w = q.front();
        q.pop_front();
        const BusClass cls =
            static_cast<BusClass>(static_cast<int>(&q - waiters.data()));
        grantTo(*w.agent, cls, w.since);
        return;
    }
}

} // namespace aero
