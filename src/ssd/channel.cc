#include "ssd/channel.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ssd/chip_agent.hh"

namespace aero
{

void
Channel::init(int index, EventQueue *eq_, SsdMetrics *metrics_)
{
    idx = index;
    eq = eq_;
    metrics = metrics_;
}

bool
Channel::quiet() const
{
    if (owned)
        return false;
    for (const auto &q : waiters) {
        if (!q.empty())
            return false;
    }
    return true;
}

void
Channel::enableWfq(std::vector<std::uint32_t> weights_)
{
    wfq = true;
    weights = std::move(weights_);
}

std::uint64_t
Channel::weightOf(TenantId tenant) const
{
    if (tenant < weights.size() && weights[tenant] != 0)
        return weights[tenant];
    return 1;
}

void
Channel::request(ChipAgent &agent, BusClass cls, TenantId tenant)
{
    AERO_CHECK(eq != nullptr, "channel used before init()");
    Waiter w{&agent, eq->now(), 0, nextWaiterSeq++, tenant};
    if (wfq &&
        (cls == BusClass::HostRead || cls == BusClass::HostWrite)) {
        // SFQ: stamp the virtual start time at *arrival*, even for an
        // immediate grant, so a backlogged tenant's tags keep advancing
        // relative to everyone else's.
        if (tenant >= finishTag.size())
            finishTag.resize(static_cast<std::size_t>(tenant) + 1, 0);
        const std::uint64_t start = std::max(vtime, finishTag[tenant]);
        finishTag[tenant] = start + kWfqQuantum / weightOf(tenant);
        w.tag = start;
    }
    if (!owned) {
        grantTo(w, cls);
        return;
    }
    waiters[static_cast<int>(cls)].push_back(w);
}

void
Channel::grantTo(const Waiter &w, BusClass cls)
{
    const Tick now = eq->now();
    const Tick wait = now - w.since;
    const bool host =
        cls == BusClass::HostRead || cls == BusClass::HostWrite;
    switch (cls) {
      case BusClass::HostRead:
      case BusClass::HostWrite:
        metrics->hostChannelWaitTicks += wait;
        metrics->hostChannelGrants += 1;
        break;
      case BusClass::GcCopy:
        metrics->gcChannelWaitTicks += wait;
        metrics->gcChannelGrants += 1;
        break;
      case BusClass::EraseCmd:
        metrics->eraseChannelWaitTicks += wait;
        metrics->eraseChannelGrants += 1;
        break;
    }
    if (wfq && host)
        vtime = std::max(vtime, w.tag);
    const Tick release = w.agent->channelGranted();
    AERO_CHECK(release >= now, "channel released before grant");
    if (static_cast<std::size_t>(idx) < metrics->channelBusyTicks.size())
        metrics->channelBusyTicks[idx] += release - now;
    if (wfq && host && metrics->tenantTrackingEnabled() &&
        w.tenant < metrics->tenants.size()) {
        metrics->tenants[w.tenant].channelGrants += 1;
        metrics->tenants[w.tenant].channelHeldTicks += release - now;
    }
    owned = true;
    eq->scheduleChannelGrantAt(release, *this);
}

void
Channel::onGrantDone()
{
    owned = false;
    for (auto &q : waiters) {
        if (q.empty())
            continue;
        const BusClass cls =
            static_cast<BusClass>(static_cast<int>(&q - waiters.data()));
        // WFQ host classes: grant the lowest virtual start tag, arrival
        // order on ties. FIFO otherwise (seq is monotone, so picking the
        // minimum seq *is* the front).
        std::size_t pick = 0;
        if (wfq &&
            (cls == BusClass::HostRead || cls == BusClass::HostWrite)) {
            for (std::size_t i = 1; i < q.size(); ++i) {
                if (q[i].tag < q[pick].tag ||
                    (q[i].tag == q[pick].tag && q[i].seq < q[pick].seq))
                    pick = i;
            }
        }
        const Waiter w = q[pick];
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
        grantTo(w, cls);
        return;
    }
}

} // namespace aero
