#include "ssd/block_manager.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ssd/line_manager.hh"
#include "ssd/wear_level.hh"

namespace aero
{

BlockManager::BlockManager(const SsdConfig &cfg)
    : numChips(cfg.totalChips()), planesPerChip(cfg.geometry.planes),
      blocksPerPlane(cfg.geometry.blocksPerPlane),
      pagesPerBlock(cfg.geometry.pagesPerBlock),
      planesState(static_cast<std::size_t>(numChips) * planesPerChip),
      blockStates(static_cast<std::size_t>(numChips) * planesPerChip *
                      blocksPerPlane,
                  BlockState::Free),
      eraseCounts(blockStates.size(), 0)
{
    for (int c = 0; c < numChips; ++c) {
        for (int p = 0; p < planesPerChip; ++p) {
            auto &plane = planesState[planeIndex(c, p)];
            plane.freeList.reserve(blocksPerPlane);
            // Populate in reverse so allocation proceeds from block 0 up.
            for (int b = blocksPerPlane - 1; b >= 0; --b) {
                plane.freeList.push_back(
                    static_cast<BlockId>(p * blocksPerPlane + b));
            }
        }
    }
}

int
BlockManager::freeBlocks(int chip, int plane) const
{
    return static_cast<int>(
        planesState[planeIndex(chip, plane)].freeList.size());
}

int
BlockManager::minFreeBlocks(int chip) const
{
    int min_free = blocksPerPlane;
    for (int p = 0; p < planesPerChip; ++p)
        min_free = std::min(min_free, freeBlocks(chip, p));
    return min_free;
}

BlockState
BlockManager::state(int chip, BlockId block) const
{
    return blockStates[blockIndex(chip, block)];
}

BlockId
BlockManager::takeFreeBlock(int chip, Plane &ps)
{
    std::size_t slot = ps.freeList.size() - 1;
    if (wearPolicy)
        slot = wearPolicy->chooseFreeSlot(ps.freeList, chip, *this);
    AERO_CHECK(slot < ps.freeList.size(), "wear policy chose slot ", slot,
               " outside the free list");
    const BlockId block = ps.freeList[slot];
    ps.freeList.erase(ps.freeList.begin() +
                      static_cast<std::ptrdiff_t>(slot));
    return block;
}

bool
BlockManager::allocate(int chip, int plane, BlockId &block, int &page,
                       bool for_gc)
{
    auto &ps = planesState[planeIndex(chip, plane)];
    // GC relocations use their own write point so that a victim's live
    // pages always fit the block GC opened for them; user writes keep a
    // block in reserve for exactly that purpose.
    BlockId &open = for_gc ? ps.openGc : ps.open;
    int &cursor = for_gc ? ps.cursorGc : ps.cursor;
    if (open == kInvalidBlock) {
        const auto reserve =
            for_gc ? 0u : static_cast<std::size_t>(kGcReservedBlocks);
        if (ps.freeList.size() <= reserve)
            return false;
        open = takeFreeBlock(chip, ps);
        cursor = 0;
        blockStates[blockIndex(chip, open)] = BlockState::Open;
        if (lines)
            lines->onBlockOpened(chip, open);
    }
    block = open;
    page = cursor++;
    if (cursor == pagesPerBlock) {
        blockStates[blockIndex(chip, open)] = BlockState::Full;
        if (lines)
            lines->onBlockFull(chip, open);
        open = kInvalidBlock;
        cursor = 0;
    }
    return true;
}

int
BlockManager::openPageCursor(int chip, int plane) const
{
    const auto &ps = planesState[planeIndex(chip, plane)];
    AERO_CHECK(ps.open != kInvalidBlock, "no open block");
    return ps.cursor;
}

void
BlockManager::onBlockErased(int chip, BlockId block)
{
    auto &st = blockStates[blockIndex(chip, block)];
    AERO_CHECK(st == BlockState::Full,
               "erased block was not in Full state");
    st = BlockState::Free;
    eraseCounts[blockIndex(chip, block)] += 1;
    totalEraseCount += 1;
    if (lines)
        lines->onBlockErased(chip, block);
    const int plane = planeOf(block);
    planesState[planeIndex(chip, plane)].freeList.push_back(block);
}

std::vector<BlockId>
BlockManager::fullBlocks(int chip, int plane) const
{
    std::vector<BlockId> out;
    for (int b = 0; b < blocksPerPlane; ++b) {
        const auto id = static_cast<BlockId>(plane * blocksPerPlane + b);
        if (state(chip, id) == BlockState::Full)
            out.push_back(id);
    }
    return out;
}

std::uint64_t
BlockManager::eraseCount(int chip, BlockId block) const
{
    return eraseCounts[blockIndex(chip, block)];
}

std::uint64_t
BlockManager::maxEraseCount(int chip, int plane) const
{
    std::uint64_t max_ec = 0;
    for (int b = 0; b < blocksPerPlane; ++b) {
        const auto id = static_cast<BlockId>(plane * blocksPerPlane + b);
        max_ec = std::max(max_ec, eraseCount(chip, id));
    }
    return max_ec;
}

std::uint64_t
BlockManager::minEraseCount(int chip, int plane) const
{
    std::uint64_t min_ec = ~0ULL;
    for (int b = 0; b < blocksPerPlane; ++b) {
        const auto id = static_cast<BlockId>(plane * blocksPerPlane + b);
        min_ec = std::min(min_ec, eraseCount(chip, id));
    }
    return min_ec;
}

std::size_t
BlockManager::planeIndex(int chip, int plane) const
{
    AERO_CHECK(chip >= 0 && chip < numChips, "chip out of range");
    AERO_CHECK(plane >= 0 && plane < planesPerChip, "plane out of range");
    return static_cast<std::size_t>(chip) * planesPerChip + plane;
}

std::size_t
BlockManager::blockIndex(int chip, BlockId block) const
{
    AERO_CHECK(block < static_cast<BlockId>(planesPerChip * blocksPerPlane),
               "block out of range");
    return static_cast<std::size_t>(chip) * planesPerChip * blocksPerPlane +
           block;
}

} // namespace aero
