/**
 * @file
 * Simulated-SSD configuration, mirroring the paper's Table 2. Two presets:
 * paper() is the full 1-TB drive; bench() is a topology-identical,
 * capacity-reduced drive so the 11-workload x 3-PEC x 5-scheme sweep runs
 * in minutes while preserving the contention behaviour that drives read
 * tail latency (same channel/chip/plane counts, same timings, same
 * over-provisioning ratio).
 */

#ifndef AERO_SSD_CONFIG_HH
#define AERO_SSD_CONFIG_HH

#include "erase/scheme.hh"
#include "nand/nand_chip.hh"
#include "workload/trace_io/tenant.hh"

namespace aero
{

/** Erase-suspension policy (section 7.3 and Fig. 15). */
enum class SuspensionMode
{
    None,         //!< reads wait for the ongoing erase *loop* to finish
    MidSegment,   //!< practical erase suspension: preempt within a loop
};

/** Stable name for reports and CLIs ("none" / "mid-segment"). */
const char *suspensionModeName(SuspensionMode mode);

/** Inverse of suspensionModeName(); fatal listing the valid names. */
SuspensionMode suspensionModeFromName(const std::string &name);

/**
 * Channel/die arbitration model (PR 8).
 *
 * Legacy is the original closed-form reservation: a transfer claims the
 * channel with `busyUntil = max(ready, busyUntil) + xfer` arithmetic, so
 * contention is resolved at issue time and nothing ever queues. Queued
 * models the bus explicitly: transfers and erase command issue wait in
 * per-channel priority FIFOs (host reads > host writes > GC copies >
 * erase commands) and are granted by ChannelGrant events, so host and
 * reclamation traffic genuinely contend and the wait is measurable
 * (SsdMetrics host/GC channel-wait counters). Legacy stays the default:
 * every pre-PR-8 golden artifact is bit-identical under it.
 */
enum class Arbitration
{
    Legacy,   //!< closed-form busyUntil reservation (default)
    Queued,   //!< event-driven per-channel grant queues
};

/** Stable name for reports and CLIs ("legacy" / "queued"). */
const char *arbitrationName(Arbitration mode);

/** Inverse of arbitrationName(); fatal listing the valid names. */
Arbitration arbitrationFromName(const std::string &name);

/**
 * Per-tenant SLO enforcement policy (PR 10). `Throttle` gates trace
 * admission through per-tenant token buckets (TracePump defers
 * over-budget requests to the bucket refill tick — never drops, never
 * reorders within a tenant). `Wfq` arbitrates the queued channel's
 * host classes by per-tenant start-time-fair virtual tags weighted by
 * TenantSlo::weight; it composes with — never overrides — the
 * HostRead > HostWrite > GcCopy > EraseCmd class priorities, and so
 * requires Arbitration::Queued. None is the default: enforcement off,
 * every pre-PR-10 golden artifact bit-identical.
 */
enum class SloPolicy
{
    None,         //!< accounting only (default)
    Throttle,     //!< token-bucket admission throttling
    Wfq,          //!< weighted-fair channel scheduling
    ThrottleWfq,  //!< both
};

/** Stable name ("none" / "throttle" / "wfq" / "throttle+wfq"). */
const char *sloPolicyName(SloPolicy policy);

/** Inverse of sloPolicyName(); fatal listing the valid names. */
SloPolicy sloPolicyFromName(const std::string &name);

/** Does the policy include token-bucket admission throttling? */
constexpr bool
sloPolicyThrottles(SloPolicy policy)
{
    return policy == SloPolicy::Throttle ||
           policy == SloPolicy::ThrottleWfq;
}

/** Does the policy include weighted-fair channel scheduling? */
constexpr bool
sloPolicyWeights(SloPolicy policy)
{
    return policy == SloPolicy::Wfq || policy == SloPolicy::ThrottleWfq;
}

struct SsdConfig
{
    /** @name Topology (Table 2) */
    /** @{ */
    int channels = 8;
    int chipsPerChannel = 2;
    ChipGeometry geometry{4, 497, 2112};
    std::uint32_t pageSizeKB = 16;
    double opRatio = 0.20;           //!< over-provisioning
    ChipType chipType = ChipType::Tlc3d48L;
    /** @} */

    /** @name Erase scheme under test */
    /** @{ */
    SchemeKind scheme = SchemeKind::Baseline;
    SchemeOptions schemeOptions;
    /** @} */

    /** @name Timing */
    /** @{ */
    Tick channelXferPerPage = 13 * kUs;  //!< 16 KiB over ~1.2 GB/s ONFI
    Tick hostOverhead = 5 * kUs;         //!< NVMe/PCIe + FTL fixed cost
    /** Queued arbitration: channel time to issue one erase command. */
    Tick channelCmdOverhead = 1 * kUs;
    /** @} */

    /** @name Scheduling */
    /** @{ */
    SuspensionMode suspension = SuspensionMode::MidSegment;
    Arbitration arbitration = Arbitration::Legacy;
    /** Time to quiesce the erase voltage before the chip is usable. */
    Tick suspendEntryLatency = 60 * kUs;
    Tick suspendResumeOverhead = 100 * kUs;
    int gcLowWatermark = 3;    //!< free blocks/plane that trigger GC
    int gcHighWatermark = 5;   //!< free blocks/plane where GC stops
    std::string gcPolicy = "greedy";  //!< victim selection (ssd/gc.hh)
    std::string wearLevel = "none";   //!< WL policy (ssd/wear_level.hh)
    /** Static WL: erase-count spread that triggers cold migration. */
    int wlEraseDelta = 8;
    SloPolicy sloPolicy = SloPolicy::None;  //!< tenant SLO enforcement
    /** Per-tenant budgets/weights/targets; tenants the spec does not
     *  name run unthrottled with weight 1. Ignored when sloPolicy is
     *  None or the spec is empty. */
    TenantSloSpec slo;
    /** @} */

    /** @name Conditioning */
    /** @{ */
    double initialPec = 0.0;   //!< pre-age all blocks to this PEC
    double prefillFraction = 1.0;  //!< logical space written before run
    /**
     * Random overwrites (fraction of logical pages) applied functionally
     * after prefill, with inline GC, so timed runs start from a
     * steady-state dirty drive whose planes sit at the GC watermark.
     */
    double warmupOverwriteFraction = 0.3;
    std::uint64_t seed = 2024;
    /** @} */

    /** @name Derived quantities */
    /** @{ */
    int totalChips() const { return channels * chipsPerChannel; }
    int blocksPerChip() const { return geometry.totalBlocks(); }
    std::uint64_t
    physicalPages() const
    {
        return static_cast<std::uint64_t>(totalChips()) *
               blocksPerChip() * geometry.pagesPerBlock;
    }
    std::uint64_t
    logicalPages() const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(physicalPages()) * (1.0 - opRatio));
    }
    std::uint64_t
    capacityBytes() const
    {
        return logicalPages() * pageSizeKB * kKiB;
    }
    /** @} */

    /** Full Table 2 drive: 1024 GB logical. */
    static SsdConfig paper();
    /** Scaled drive (~13 GB logical) for tests and benches. */
    static SsdConfig bench();
    /** Tiny drive for unit tests. */
    static SsdConfig tiny();

    /** Human-readable Table 2 style summary. */
    std::string summary() const;
};

} // namespace aero

#endif // AERO_SSD_CONFIG_HH
