#include "ssd/wear_level.hh"

#include "common/logging.hh"
#include "ssd/block_manager.hh"

namespace aero
{

std::size_t
WearLevelPolicy::chooseFreeSlot(const std::vector<BlockId> &freeList,
                                int chip, const BlockManager &blocks) const
{
    (void)chip;
    (void)blocks;
    AERO_CHECK(!freeList.empty(), "chooseFreeSlot on empty free list");
    return freeList.size() - 1;  // LIFO: the most recently freed block
}

BlockId
WearLevelPolicy::pickColdVictim(int chip, int plane,
                                const BlockManager &blocks,
                                int eraseDelta) const
{
    (void)chip;
    (void)plane;
    (void)blocks;
    (void)eraseDelta;
    return kInvalidBlock;
}

std::size_t
DynamicWearLevelPolicy::chooseFreeSlot(const std::vector<BlockId> &freeList,
                                       int chip,
                                       const BlockManager &blocks) const
{
    AERO_CHECK(!freeList.empty(), "chooseFreeSlot on empty free list");
    std::size_t best = 0;
    std::uint64_t best_ec = blocks.eraseCount(chip, freeList[0]);
    BlockId best_block = freeList[0];
    for (std::size_t i = 1; i < freeList.size(); ++i) {
        const std::uint64_t ec = blocks.eraseCount(chip, freeList[i]);
        if (ec < best_ec || (ec == best_ec && freeList[i] < best_block)) {
            best = i;
            best_ec = ec;
            best_block = freeList[i];
        }
    }
    return best;
}

BlockId
StaticWearLevelPolicy::pickColdVictim(int chip, int plane,
                                      const BlockManager &blocks,
                                      int eraseDelta) const
{
    // Spread = most-worn block anywhere in the plane vs. the least-worn
    // *Full* block: cold data parks on young blocks and keeps them out of
    // the erase rotation, which is exactly what static WL breaks up.
    BlockId coldest = kInvalidBlock;
    std::uint64_t coldest_ec = 0;
    for (const BlockId b : blocks.fullBlocks(chip, plane)) {
        const std::uint64_t ec = blocks.eraseCount(chip, b);
        if (coldest == kInvalidBlock || ec < coldest_ec ||
            (ec == coldest_ec && b < coldest)) {
            coldest = b;
            coldest_ec = ec;
        }
    }
    if (coldest == kInvalidBlock)
        return kInvalidBlock;
    const std::uint64_t max_ec = blocks.maxEraseCount(chip, plane);
    if (max_ec < coldest_ec + static_cast<std::uint64_t>(eraseDelta))
        return kInvalidBlock;
    return coldest;
}

std::unique_ptr<WearLevelPolicy>
makeWearLevelPolicy(const std::string &name)
{
    if (name == "none")
        return std::make_unique<NoneWearLevelPolicy>();
    if (name == "static")
        return std::make_unique<StaticWearLevelPolicy>();
    if (name == "dynamic")
        return std::make_unique<DynamicWearLevelPolicy>();
    AERO_FATAL("unknown wear-level policy '", name,
               "' (valid: ", wearLevelPolicyNames(), ")");
}

const char *
wearLevelPolicyNames()
{
    return "none, static, dynamic";
}

} // namespace aero
