/**
 * @file
 * Wear-leveling policies behind the same string registry pattern as the
 * GC policies and erase schemes, so "wear level" is a sweep-grid axis.
 *
 *  - none:    the pre-PR-8 behaviour, bit for bit. Free blocks are
 *             reused LIFO and no data ever moves for wear reasons.
 *  - dynamic: wear-aware allocation — every time a plane opens a fresh
 *             block it takes the least-erased free block instead of the
 *             most recently freed one, spreading writes without any
 *             extra copies.
 *  - static:  cold-data migration — after a GC erase, if the plane's
 *             erase-count spread exceeds SsdConfig::wlEraseDelta, the
 *             least-worn Full block (cold data pinning a young block) is
 *             relocated and erased so it rejoins the rotation. Costs
 *             copies (tracked as wlMigratedPages) but levels even
 *             never-overwritten data.
 */

#ifndef AERO_SSD_WEAR_LEVEL_HH
#define AERO_SSD_WEAR_LEVEL_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace aero
{

class BlockManager;

class WearLevelPolicy
{
  public:
    virtual ~WearLevelPolicy() = default;

    /** Stable registry name ("none", "static", "dynamic"). */
    virtual const char *name() const = 0;

    /**
     * Index into `freeList` of the block to open next. The default (the
     * last slot) reproduces the LIFO reuse the BlockManager always had.
     */
    virtual std::size_t
    chooseFreeSlot(const std::vector<BlockId> &freeList, int chip,
                   const BlockManager &blocks) const;

    /**
     * After a GC erase on (chip, plane): the cold Full block to relocate
     * for wear reasons, or kInvalidBlock to do nothing.
     */
    virtual BlockId
    pickColdVictim(int chip, int plane, const BlockManager &blocks,
                   int eraseDelta) const;
};

/** No wear awareness at all (legacy behaviour). */
class NoneWearLevelPolicy : public WearLevelPolicy
{
  public:
    const char *name() const override { return "none"; }
};

/** Least-erased free block first. */
class DynamicWearLevelPolicy : public WearLevelPolicy
{
  public:
    const char *name() const override { return "dynamic"; }

    std::size_t
    chooseFreeSlot(const std::vector<BlockId> &freeList, int chip,
                   const BlockManager &blocks) const override;
};

/** Cold-data migration off lightly-worn blocks. */
class StaticWearLevelPolicy : public WearLevelPolicy
{
  public:
    const char *name() const override { return "static"; }

    BlockId
    pickColdVictim(int chip, int plane, const BlockManager &blocks,
                   int eraseDelta) const override;
};

/** Instantiate a policy by registry name; fatal listing valid names. */
std::unique_ptr<WearLevelPolicy>
makeWearLevelPolicy(const std::string &name);

/** Comma-separated list of registered policy names. */
const char *wearLevelPolicyNames();

} // namespace aero

#endif // AERO_SSD_WEAR_LEVEL_HH
