/**
 * @file
 * Per-chip command scheduling.
 *
 * Each NAND chip executes one operation at a time. The agent holds
 * priority queues (user reads > user writes > GC page ops > erase) and
 * models channel contention for data transfers.
 *
 * An erase *operation* is atomic at the chip interface: once issued, its
 * loops run back to back with no dispatch points in between (the loop
 * staircase is chip-internal). The only preemption mechanism is erase
 * suspension [13]: a user read arriving mid-erase suspends the operation
 * after a voltage-quiesce entry latency, queued reads are serviced, and
 * the erase resumes with a re-ramp penalty. Practical suspension is
 * limited (kMaxSuspensionsPerOp, default 1): once exhausted, later reads
 * wait for the whole remaining operation -- which is exactly why AERO's
 * shorter erase operations shrink the read tail (Figs. 14/15).
 *
 * Completions are tagged kernel events (sim/event.hh) carrying this
 * agent; suspension cancels the in-flight segment event explicitly
 * through its EventId instead of the old version-counter idiom.
 */

#ifndef AERO_SSD_CHIP_AGENT_HH
#define AERO_SSD_CHIP_AGENT_HH

#include <deque>
#include <memory>
#include <optional>

#include "erase/scheme.hh"
#include "sim/event_queue.hh"
#include "ssd/channel.hh"
#include "ssd/config.hh"
#include "ssd/gc.hh"
#include "ssd/metrics.hh"

namespace aero
{

/** Callbacks from agents into the FTL. */
class FtlCallbacks
{
  public:
    virtual ~FtlCallbacks() = default;
    virtual void onPageOpDone(const PageOp &op) = 0;
    virtual void onEraseDone(int chip, BlockId block,
                             const EraseOutcome &outcome, GcJob *job) = 0;
    /** Is the erase for `block`'s plane urgent (plane out of space)? */
    virtual bool eraseUrgent(int chip, BlockId block) = 0;
};

class ChipAgent
{
  public:
    ChipAgent(int chip_idx, NandChip &chip, EraseScheme &scheme,
              EventQueue &eq, const SsdConfig &cfg, Channel &channel,
              FtlCallbacks &ftl, SsdMetrics &metrics);

    void enqueue(const PageOp &op);

    /**
     * Burst admission: queue the op (including any suspension side
     * effect) without a dispatch pass. The caller must flush() after the
     * burst — one dispatch per touched agent instead of one per page.
     */
    void enqueueDeferred(const PageOp &op);
    void flush() { dispatch(); }

    void enqueueErase(BlockId block, GcJob *job);

    bool idle() const;
    std::size_t queuedOps() const;

    /** Suspensions allowed per erase operation (practical limit). */
    static constexpr int kMaxSuspensionsPerOp = 2;

  private:
    friend class EventQueue;  //!< tagged-event dispatch entry points
    friend class Channel;     //!< grants call channelGranted()

    struct ActiveErase
    {
        std::unique_ptr<EraseSession> session;
        BlockId block = kInvalidBlock;
        GcJob *job = nullptr;
        EraseSegment seg;          //!< segment currently executing/paused
        bool paused = false;
        Tick pausedRemaining = 0;
        int suspensionsThisOp = 0;
    };

    /** Queued arbitration: where the op in flight stands. */
    enum class Phase : std::uint8_t
    {
        None,          //!< no queued-mode op in flight
        Sense,         //!< read: on-die sense running
        AwaitBus,      //!< page op waiting in the channel grant queue
        Xfer,          //!< transfer (+ on-die program) scheduled
        EraseAwaitBus, //!< erase command issue waiting for the channel
    };

    bool queued() const { return cfg.arbitration == Arbitration::Queued; }
    BusClass busClassOf(const PageOp &op) const;

    void push(const PageOp &op);
    void dispatch();
    void startRead(PageOp op);
    void startWrite(PageOp op);
    void startEraseWork();
    void resumeErase();
    void finishEraseSegment();

    /**
     * Channel grant (queued mode): start the transfer (or erase command)
     * this agent was waiting on. @return the tick the bus is released.
     */
    Tick channelGranted();

    /** @name Kernel dispatch targets (EventQueue::step() switch) */
    /** @{ */
    void onChipOpComplete(const PageOp &op);
    void onEraseSegmentDone();
    void onSuspendQuiesced();
    void onDieOpComplete();
    /** @} */

    int chipIdx;
    NandChip &nand;
    EraseScheme &scheme;
    EventQueue &eq;
    const SsdConfig &cfg;
    Channel &channel;
    FtlCallbacks &ftl;
    SsdMetrics &metrics;

    std::deque<PageOp> readQ;
    std::deque<PageOp> writeQ;
    std::deque<PageOp> gcQ;
    std::deque<std::pair<BlockId, GcJob *>> eraseQ;
    std::optional<ActiveErase> erase;

    bool busy = false;
    bool inEraseSegment = false;
    Tick opEnd = 0;
    EventId pendingOp;  //!< completion event of the op in flight

    /** @name Queued-arbitration in-flight state */
    /** @{ */
    Phase phase = Phase::None;
    PageOp curOp;       //!< the page op crossing sense/bus/transfer phases
    /** @} */
};

} // namespace aero

#endif // AERO_SSD_CHIP_AGENT_HH
