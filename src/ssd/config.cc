#include "ssd/config.hh"

#include <sstream>

#include "common/logging.hh"

namespace aero
{

const char *
suspensionModeName(SuspensionMode mode)
{
    switch (mode) {
      case SuspensionMode::None: return "none";
      case SuspensionMode::MidSegment: return "mid-segment";
    }
    return "unknown";
}

SuspensionMode
suspensionModeFromName(const std::string &name)
{
    if (name == "none" || name == "off")
        return SuspensionMode::None;
    if (name == "mid-segment" || name == "on")
        return SuspensionMode::MidSegment;
    AERO_FATAL("unknown suspension mode: '", name,
               "' (valid names: none, mid-segment)");
}

const char *
arbitrationName(Arbitration mode)
{
    switch (mode) {
      case Arbitration::Legacy: return "legacy";
      case Arbitration::Queued: return "queued";
    }
    return "unknown";
}

Arbitration
arbitrationFromName(const std::string &name)
{
    if (name == "legacy")
        return Arbitration::Legacy;
    if (name == "queued")
        return Arbitration::Queued;
    AERO_FATAL("unknown arbitration mode: '", name,
               "' (valid names: legacy, queued)");
}

const char *
sloPolicyName(SloPolicy policy)
{
    switch (policy) {
      case SloPolicy::None: return "none";
      case SloPolicy::Throttle: return "throttle";
      case SloPolicy::Wfq: return "wfq";
      case SloPolicy::ThrottleWfq: return "throttle+wfq";
    }
    return "unknown";
}

SloPolicy
sloPolicyFromName(const std::string &name)
{
    if (name == "none")
        return SloPolicy::None;
    if (name == "throttle")
        return SloPolicy::Throttle;
    if (name == "wfq")
        return SloPolicy::Wfq;
    if (name == "throttle+wfq")
        return SloPolicy::ThrottleWfq;
    AERO_FATAL("unknown SLO policy: '", name,
               "' (valid names: none, throttle, wfq, throttle+wfq)");
}

SsdConfig
SsdConfig::paper()
{
    SsdConfig c;
    c.channels = 8;
    c.chipsPerChannel = 2;
    c.geometry = ChipGeometry{4, 497, 2112};
    return c;
}

SsdConfig
SsdConfig::bench()
{
    SsdConfig c;
    c.channels = 8;
    c.chipsPerChannel = 2;
    c.geometry = ChipGeometry{4, 32, 128};
    return c;
}

SsdConfig
SsdConfig::tiny()
{
    SsdConfig c;
    c.channels = 2;
    c.chipsPerChannel = 1;
    c.geometry = ChipGeometry{2, 16, 32};
    c.opRatio = 0.45;
    return c;
}

std::string
SsdConfig::summary() const
{
    std::ostringstream os;
    os << "SSD configuration:\n"
       << "  capacity:        "
       << capacityBytes() / (1024.0 * 1024.0 * 1024.0) << " GiB logical ("
       << opRatio * 100.0 << "% OP)\n"
       << "  topology:        " << channels << " channels x "
       << chipsPerChannel << " chips x " << geometry.planes << " planes x "
       << geometry.blocksPerPlane << " blocks x " << geometry.pagesPerBlock
       << " pages x " << pageSizeKB << " KiB\n"
       << "  chip type:       " << chipTypeName(chipType) << "\n"
       << "  erase scheme:    " << schemeKindName(scheme) << "\n"
       << "  suspension:      "
       << (suspension == SuspensionMode::MidSegment ? "enabled"
                                                    : "disabled")
       << "\n"
       << "  arbitration:     " << arbitrationName(arbitration) << "\n"
       << "  GC policy:       " << gcPolicy << "\n"
       << "  wear leveling:   " << wearLevel << "\n"
       << "  initial PEC:     " << initialPec << "\n";
    if (sloPolicy != SloPolicy::None)
        os << "  SLO policy:      " << sloPolicyName(sloPolicy) << " ("
           << renderTenantSloSpec(slo) << ")\n";
    return os.str();
}

} // namespace aero
